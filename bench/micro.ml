(* Bechamel micro-benchmarks of the solver kernels and substrates: one
   Test.make per experiment family, all run from the same executable as the
   paper-figure harness. Reported as mean ns/run from the OLS fit. *)

open Bechamel
module Solver = Geacc_core.Solver
module Synthetic = Geacc_datagen.Synthetic

let small_instance =
  lazy
    (Synthetic.generate ~seed:1
       {
         Synthetic.default with
         Synthetic.n_events = 20;
         n_users = 100;
       })

let tiny_instance =
  lazy
    (Synthetic.generate ~seed:1
       {
         Synthetic.default with
         Synthetic.n_events = 5;
         n_users = 12;
         event_capacity = Synthetic.Cap_uniform 5;
         user_capacity = Synthetic.Cap_uniform 2;
       })

let solver_test name algorithm instance_lazy =
  Test.make ~name
    (Staged.stage (fun () ->
         let instance = Lazy.force instance_lazy in
         ignore (Solver.run algorithm instance)))

let heap_test =
  Test.make ~name:"binary-heap push/pop 1k"
    (Staged.stage (fun () ->
         let h = Geacc_pqueue.Binary_heap.create ~cmp:Int.compare () in
         for i = 0 to 999 do
           Geacc_pqueue.Binary_heap.push h ((i * 7919) mod 1000)
         done;
         while not (Geacc_pqueue.Binary_heap.is_empty h) do
           ignore (Geacc_pqueue.Binary_heap.pop_exn h)
         done))

let float_heap_test =
  Test.make ~name:"float-int-heap push/drop 1k"
    (Staged.stage (fun () ->
         let h = Geacc_pqueue.Float_int_heap.create () in
         for i = 0 to 999 do
           Geacc_pqueue.Float_int_heap.push h
             (float_of_int ((i * 7919) mod 1000))
             i
         done;
         let acc = ref 0 in
         while not (Geacc_pqueue.Float_int_heap.is_empty h) do
           acc := !acc + Geacc_pqueue.Float_int_heap.min_payload h;
           Geacc_pqueue.Float_int_heap.drop_min h
         done;
         ignore !acc))

(* Dijkstra over a ring-with-chords residual network: every node has a few
   outgoing arcs, so the run exercises the heap, the arc walk and the
   reduced-cost arithmetic — the exact inner loop of the min-cost-flow
   solver. *)
let dijkstra_graph =
  lazy
    (let n = 1000 in
     let g = Geacc_flow.Graph.create ~num_nodes:n in
     for v = 0 to n - 1 do
       let add d cost =
         ignore
           (Geacc_flow.Graph.add_arc g ~src:v ~dst:((v + d) mod n) ~capacity:2
              ~cost)
       in
       add 1 1.0;
       add 7 (3.0 +. float_of_int (v mod 5));
       add 131 (10.0 +. float_of_int (v mod 11))
     done;
     g)

let dijkstra_test =
  Test.make ~name:"dijkstra (1k nodes, 3k arcs)"
    (Staged.stage (fun () ->
         let g = Lazy.force dijkstra_graph in
         ignore
           (Geacc_flow.Shortest_path.dijkstra g ~source:0 ~stop_at:(500) ())))

let kd_test =
  let points =
    Array.init 2000 (fun i ->
        Array.init 8 (fun k -> float_of_int ((i * (k + 13)) mod 997)))
  in
  let tree = lazy (Geacc_index.Kd_tree.build points) in
  Test.make ~name:"kd-tree 10-NN query (2k pts, d=8)"
    (Staged.stage (fun () ->
         let tree = Lazy.force tree in
         ignore
           (Geacc_index.Kd_tree.nearest tree
              (Array.init 8 (fun k -> float_of_int (100 * k)))
              ~k:10)))

(* Multicore substrate: the two parallelised construction kernels at jobs=1
   (exact sequential path, the no-regression guard) and jobs=4 (domain-pool
   path; gains scale with hardware threads). Outputs are byte-identical by
   the pool's determinism contract — only the timing may differ. *)
let mcf_instance =
  lazy
    (Synthetic.generate ~seed:1
       { Synthetic.default with Synthetic.n_events = 100; n_users = 1000 })

let mcf_build_test ~jobs =
  Test.make ~name:(Printf.sprintf "MCF network build (100x1000) jobs=%d" jobs)
    (Staged.stage (fun () ->
         let instance = Lazy.force mcf_instance in
         ignore (Geacc_core.Mincostflow.build_network ~jobs instance)))

(* Dense vs similarity-pruned construction at jobs=1, isolating the
   network-build strategies the solver chooses between. *)
let mcf_build_network_test network =
  Test.make
    ~name:
      (Printf.sprintf "MCF %s network build (100x1000)"
         (Geacc_core.Mincostflow.network_name network))
    (Staged.stage (fun () ->
         let instance = Lazy.force mcf_instance in
         ignore (Geacc_core.Mincostflow.build_network ~jobs:1 ~network instance)))

let kd_build_points =
  lazy
    (Array.init 50_000 (fun i ->
         Array.init 8 (fun k -> float_of_int ((i * (k + 13)) mod 9973))))

let kd_build_test ~jobs =
  Test.make ~name:(Printf.sprintf "kd-tree build (50k pts, d=8) jobs=%d" jobs)
    (Staged.stage (fun () ->
         let points = Lazy.force kd_build_points in
         ignore (Geacc_index.Kd_tree.build ~jobs points)))

(* Budget polling overhead: the same solver run with a disarmed budget
   (the default) and with an armed budget whose deadline is far away, so
   every iteration pays the cooperative poll but the run never degrades.
   Comparing against the plain variants above measures the robustness
   layer's hot-loop tax (target: <= 2%, see EXPERIMENTS.md). *)
let armed_solver_test name algorithm instance_lazy =
  Test.make ~name
    (Staged.stage (fun () ->
         let instance = Lazy.force instance_lazy in
         let deadline = Geacc_robust.Budget.create ~timeout_s:3600. () in
         ignore (Solver.run ~deadline algorithm instance)))

let tests =
  Test.make_grouped ~name:"geacc"
    [
      solver_test "Greedy-GEACC (20x100)" Solver.Greedy small_instance;
      solver_test "MinCostFlow-GEACC (20x100)" Solver.Min_cost_flow
        small_instance;
      solver_test "Random-V (20x100)" Solver.Random_v small_instance;
      solver_test "Prune-GEACC (5x12)" Solver.Prune tiny_instance;
      armed_solver_test "MinCostFlow-GEACC armed budget (20x100)"
        Solver.Min_cost_flow small_instance;
      armed_solver_test "Prune-GEACC armed budget (5x12)" Solver.Prune
        tiny_instance;
      heap_test;
      float_heap_test;
      dijkstra_test;
      kd_test;
      mcf_build_test ~jobs:1;
      mcf_build_test ~jobs:4;
      mcf_build_network_test Geacc_core.Mincostflow.Dense;
      mcf_build_network_test Geacc_core.Mincostflow.Sparse;
      kd_build_test ~jobs:1;
      kd_build_test ~jobs:4;
    ]

let run () =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.6) ~kde:None () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      tests
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Geacc_util.Table.create ~title:"Micro-benchmarks (Bechamel, OLS fit)"
      ~headers:[ "benchmark"; "ns/run" ]
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] ->
          Geacc_util.Table.add_row table [ name; Printf.sprintf "%.0f" ns ]
      | _ -> Geacc_util.Table.add_row table [ name; "n/a" ])
    results;
  Geacc_util.Table.print table
