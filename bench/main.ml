(* Benchmark driver: regenerates every table/figure of the paper's
   evaluation (Section V).

   Usage:
     dune exec bench/main.exe                 # all experiments, quick profile
     dune exec bench/main.exe -- fig3-v fig6-search
     dune exec bench/main.exe -- --full       # paper-scale sweeps (slow)
     dune exec bench/main.exe -- --trials 5 fig3-cf
     dune exec bench/main.exe -- --list       # experiment ids *)

let usage () =
  print_endline
    "usage: main.exe [--full] [--trials N] [--jobs N] [--list] [EXPERIMENT...]";
  print_endline "experiments:";
  List.iter
    (fun (id, doc, _) -> Printf.printf "  %-12s %s\n" id doc)
    Experiments.all;
  Printf.printf "  %-12s %s\n" "micro" "Bechamel micro-benchmarks of the kernels"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = ref false and trials = ref Experiments.default_trials in
  let jobs = ref (Geacc_par.Pool.default_jobs ()) in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--trials" :: n :: rest ->
        (match int_of_string_opt n with
        | Some t when t >= 1 -> trials := t
        | _ ->
            prerr_endline "--trials expects a positive integer";
            exit 1);
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            prerr_endline "--jobs expects a positive integer";
            exit 1);
        parse rest
    | ("--list" | "--help" | "-h") :: _ ->
        usage ();
        exit 0
    | id :: rest ->
        selected := id :: !selected;
        parse rest
  in
  parse args;
  (* Solver-internal ambient parallelism (e.g. the MCF cost table) follows
     the same knob as the sweeps; inside a sweep region it degrades to
     sequential, outside (fig5, ablations) it applies directly. *)
  Geacc_par.Pool.set_default_jobs !jobs;
  let profile =
    { Experiments.full = !full; trials = !trials; jobs = !jobs }
  in
  let to_run =
    match List.rev !selected with
    | [] -> List.map (fun (id, _, _) -> id) Experiments.all @ [ "micro" ]
    | ids -> ids
  in
  let started = Unix.gettimeofday () in
  List.iter
    (fun id ->
      if id = "micro" then Micro.run ()
      else
        match List.find_opt (fun (i, _, _) -> i = id) Experiments.all with
        | Some (_, _, run) -> run profile
        | None ->
            Printf.eprintf "unknown experiment %S\n" id;
            usage ();
            exit 1)
    to_run;
  Printf.printf "total bench time: %.1f s\n"
    (Unix.gettimeofday () -. started)
