(* Paper-figure experiments (Section V). Each [run] prints, per metric, a
   table whose rows are the sweep points and whose columns are the
   algorithms — the series of the corresponding figure. The [quick] profile
   (default) shrinks the most expensive sweep points so the whole suite
   terminates in minutes; [--full] restores the paper's TABLE III values. *)

open Geacc_core
open Geacc_util
module Synthetic = Geacc_datagen.Synthetic
module Meetup = Geacc_datagen.Meetup
module Harness = Geacc_bench.Harness
module Pool = Geacc_par.Pool

type profile = { full : bool; trials : int; jobs : int }

let default_trials = 3

(* The four algorithms of Fig 3 / Fig 4. *)
let fig34_algorithms =
  [ Solver.Greedy; Solver.Min_cost_flow; Solver.Random_v; Solver.Random_u ]

let metrics = [ `Maxsum; `Time_ms; `Memory_mb ]

let print_sweep_tables ~title ~xlabel ~rows ~algorithms =
  (* [rows]: (x label, aggregates in [algorithms] order). *)
  List.iter
    (fun metric ->
      let table =
        Table.create
          ~title:(Printf.sprintf "%s — %s" title (Harness.metric_label metric))
          ~headers:(xlabel :: List.map Solver.name algorithms)
      in
      List.iter
        (fun (x, aggregates) ->
          Table.add_float_row table ~label:x
            (List.map (Harness.metric metric) aggregates))
        rows;
      Table.print table)
    metrics

(* Generic sweep over pre-labelled instance families, averaged trials. The
   (point, seed) grid is flattened and distributed over the domain pool;
   every cell's work is a function of its (point, seed) coordinates alone,
   and per-point aggregation folds trials in seed order, so the printed
   tables are identical for every [profile.jobs]. *)
let labelled_sweep ~profile ~title ~xlabel ~points
    ?(algorithms = fig34_algorithms) () =
  let points = Array.of_list points in
  let n_points = Array.length points and trials = profile.trials in
  let cells = Array.init n_points (fun _ -> Array.make trials [||]) in
  (* Progress goes out before the fan-out: a chunk body writing to stderr
     would interleave nondeterministically across domains (and trips the
     effects analyzer's par-nondet rule). *)
  Printf.eprintf "[bench] %s: %s in {%s}\n%!" title xlabel
    (String.concat ", " (Array.to_list (Array.map fst points)));
  Pool.parallel_for ~jobs:profile.jobs ~n:(n_points * trials) (fun i ->
      let p = i / trials and t = i mod trials in
      let _, make_instance = points.(p) in
      let seed = t + 1 in
      cells.(p).(t) <-
        Array.of_list
          (List.map
             (* race: ok — measure's only mutable reaches are Audit.fail's counter (audits abort the run on any violation) and the domain-dependent peak sampler, whose mode each row reports explicitly *)
             (fun a -> Harness.measure ~seed a (fun () -> make_instance ~seed))
             algorithms));
  let rows =
    Array.to_list
      (Array.mapi
         (fun p (label, _) -> (label, Harness.aggregate cells.(p)))
         points)
  in
  print_sweep_tables ~title ~xlabel ~rows ~algorithms

(* Quick-profile base: the paper's defaults with |U| scaled down so that
   MinCostFlow-GEACC (quartic) stays tractable across the sweeps. *)
let base_config profile =
  if profile.full then Synthetic.default
  else { Synthetic.default with Synthetic.n_users = 400 }

let synth_point cfg = fun ~seed -> Synthetic.generate ~seed cfg

(* -- Fig 3: cardinality, dimensionality, conflict-set size ------------- *)

let fig3_v profile =
  let base = base_config profile in
  let xs = [ 20; 50; 100; 200; 500 ] in
  labelled_sweep ~profile ~title:"Fig 3 (col 1): varying |V|" ~xlabel:"|V|"
    ~points:
      (List.map
         (fun n ->
           (string_of_int n, synth_point { base with Synthetic.n_events = n }))
         xs)
    ()

let fig3_u profile =
  let base = base_config profile in
  let xs =
    if profile.full then [ 100; 200; 500; 1000; 2000; 5000 ]
    else [ 100; 200; 500; 1000 ]
  in
  labelled_sweep ~profile ~title:"Fig 3 (col 2): varying |U|" ~xlabel:"|U|"
    ~points:
      (List.map
         (fun n ->
           (string_of_int n, synth_point { base with Synthetic.n_users = n }))
         xs)
    ()

let fig3_d profile =
  let base = base_config profile in
  let xs = [ 2; 5; 10; 15; 20 ] in
  labelled_sweep ~profile ~title:"Fig 3 (col 3): varying dimensionality d"
    ~xlabel:"d"
    ~points:
      (List.map
         (fun d -> (string_of_int d, synth_point { base with Synthetic.dim = d }))
         xs)
    ()

let fig3_cf profile =
  let base = base_config profile in
  let xs = [ 0.; 0.25; 0.5; 0.75; 1. ] in
  labelled_sweep ~profile
    ~title:"Fig 3 (col 4): varying conflict ratio |CF|/(|V|(|V|-1)/2)"
    ~xlabel:"|CF| ratio"
    ~points:
      (List.map
         (fun r ->
           ( Printf.sprintf "%.2f" r,
             synth_point { base with Synthetic.conflict_ratio = r } ))
         xs)
    ()

(* -- Fig 4: capacities, distributions, real dataset -------------------- *)

let fig4_cv profile =
  let base = base_config profile in
  let xs = [ 10; 20; 50; 100; 200 ] in
  labelled_sweep ~profile ~title:"Fig 4 (col 1): varying max c_v"
    ~xlabel:"max c_v"
    ~points:
      (List.map
         (fun c ->
           ( string_of_int c,
             synth_point
               { base with Synthetic.event_capacity = Synthetic.Cap_uniform c }
           ))
         xs)
    ()

let fig4_cu profile =
  let base = base_config profile in
  let xs = [ 2; 4; 6; 8; 10 ] in
  labelled_sweep ~profile ~title:"Fig 4 (col 2): varying max c_u"
    ~xlabel:"max c_u"
    ~points:
      (List.map
         (fun c ->
           ( string_of_int c,
             synth_point
               { base with Synthetic.user_capacity = Synthetic.Cap_uniform c }
           ))
         xs)
    ()

let fig4_dist profile =
  let base =
    {
      (base_config profile) with
      Synthetic.attrs = Synthetic.Attr_zipf 1.3;
      event_capacity = Synthetic.Cap_normal (25., 12.5);
      user_capacity = Synthetic.Cap_normal (2., 1.);
    }
  in
  let xs = if profile.full then [ 20; 50; 100; 200; 500 ] else [ 20; 50; 100; 200 ] in
  labelled_sweep ~profile
    ~title:"Fig 4 (col 3): Zipf attributes + Normal capacities, varying |V|"
    ~xlabel:"|V|"
    ~points:
      (List.map
         (fun n ->
           (string_of_int n, synth_point { base with Synthetic.n_events = n }))
         xs)
    ()

let fig4_real profile =
  let xs = [ 0.; 0.25; 0.5; 0.75; 1. ] in
  labelled_sweep ~profile
    ~title:"Fig 4 (col 4): real dataset (simulated Meetup, Auckland)"
    ~xlabel:"|CF| ratio"
    ~points:
      (List.map
         (fun r ->
           ( Printf.sprintf "%.2f" r,
             fun ~seed ->
               Meetup.generate ~seed ~conflict_ratio:r Meetup.auckland ))
         xs)
    ()

(* -- Fig 5a,b: scalability of Greedy-GEACC ----------------------------- *)

let fig5_scalability profile =
  let vs = if profile.full then [ 100; 200; 500; 1000 ] else [ 100; 200; 500 ] in
  let us =
    if profile.full then [ 10_000; 25_000; 50_000; 75_000; 100_000 ]
    else [ 10_000; 25_000; 50_000 ]
  in
  let time_table =
    Table.create ~title:"Fig 5a: Greedy-GEACC scalability — time (ms)"
      ~headers:("|U|" :: List.map (fun v -> Printf.sprintf "|V|=%d" v) vs)
  and mem_table =
    Table.create ~title:"Fig 5b: Greedy-GEACC scalability — memory (MB)"
      ~headers:("|U|" :: List.map (fun v -> Printf.sprintf "|V|=%d" v) vs)
  in
  List.iter
    (fun n_users ->
      Printf.eprintf "[bench] fig5-scal: |U| = %d\n%!" n_users;
      let cells =
        List.map
          (fun n_events ->
            let cfg =
              {
                Synthetic.default with
                Synthetic.n_events;
                n_users;
                event_capacity = Synthetic.Cap_uniform 200;
              }
            in
            Harness.measure Solver.Greedy (fun () ->
                Synthetic.generate ~seed:1 cfg))
          vs
      in
      Table.add_row time_table
        (string_of_int n_users
        :: List.map
             (fun (m : Harness.measurement) ->
               Printf.sprintf "%.4g" (m.Harness.wall_s *. 1000.))
             cells);
      Table.add_row mem_table
        (string_of_int n_users
        :: List.map
             (fun (m : Harness.measurement) ->
               Printf.sprintf "%.4g"
                 (float_of_int m.Harness.live_bytes /. (1024. *. 1024.)))
             cells))
    us;
  Table.print time_table;
  Table.print mem_table

(* -- Fig 5c,d: approximation quality against the exact optimum --------- *)

let exact_budget = 25_000_000

let fig5_approx profile =
  (* Exact search is worst-case exponential and some (ratio, seed) points
     genuinely explode, so the optimum is computed with the tightened bound
     under a visit budget; ratios average only the seeds whose search
     provably completed (the "exact seeds" column). *)
  let base =
    {
      Synthetic.default with
      Synthetic.n_events = 5;
      n_users = 15;
      event_capacity = Synthetic.Cap_uniform 10;
    }
  in
  let trials = Stdlib.max profile.trials 5 in
  let table =
    Table.create
      ~title:
        "Fig 5c: MaxSum vs optimal (|V|=5, |U|=15, c_v~U[1,10]; optimum by \
         exact search, budget-limited seeds excluded)"
      ~headers:
        [ "|CF| ratio"; "Greedy/Opt"; "MCF/Opt"; "mean Optimal";
          "exact seeds" ]
  in
  let time_table =
    Table.create ~title:"Fig 5d: mean running time (ms) of the same runs"
      ~headers:
        [ "|CF| ratio"; "Greedy-GEACC"; "MinCostFlow-GEACC"; "Exact" ]
  in
  List.iter
    (fun r ->
      Printf.eprintf "[bench] fig5-approx: |CF| ratio = %.2f\n%!" r;
      let cfg = { base with Synthetic.conflict_ratio = r } in
      let greedy_ratio = Stats.create ()
      and mcf_ratio = Stats.create ()
      and opts = Stats.create ()
      and t_greedy = Stats.create ()
      and t_mcf = Stats.create ()
      and t_exact = Stats.create () in
      for seed = 1 to trials do
        let instance = Synthetic.generate ~seed cfg in
        let greedy, tg = Measure.time (fun () -> Greedy.solve instance) in
        let mcf, tm = Measure.time (fun () -> Mincostflow.solve instance) in
        let (opt, st), te =
          Measure.time (fun () ->
              Exact.solve ~tighten:true ~budget:exact_budget instance)
        in
        Stats.add t_greedy (tg *. 1000.);
        Stats.add t_mcf (tm *. 1000.);
        Stats.add t_exact (te *. 1000.);
        if not st.Exact.exhausted_budget then begin
          let o = Matching.maxsum opt in
          Stats.add opts o;
          Stats.add greedy_ratio (Matching.maxsum greedy /. o);
          Stats.add mcf_ratio (Matching.maxsum mcf /. o)
        end
      done;
      Table.add_row table
        [
          Printf.sprintf "%.2f" r;
          Printf.sprintf "%.3f" (Stats.mean greedy_ratio);
          Printf.sprintf "%.3f" (Stats.mean mcf_ratio);
          Printf.sprintf "%.4f" (Stats.mean opts);
          Printf.sprintf "%d/%d" (Stats.count opts) trials;
        ];
      Table.add_float_row time_table
        ~label:(Printf.sprintf "%.2f" r)
        [ Stats.mean t_greedy; Stats.mean t_mcf; Stats.mean t_exact ])
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  Table.print table;
  Table.print time_table

(* -- Fig 6: effectiveness of pruning ----------------------------------- *)

let fig6_exhaustive_budget = 80_000_000

let fig6_settings profile =
  (* Exhaustive search explodes combinatorially; these sizes let it finish
     (or hit a generous budget) per sweep point. *)
  if profile.full then (5, 8, 5, 2) else (5, 7, 5, 2)

let fig6_prune_depth profile =
  let trials = Stdlib.max profile.trials 3 in
  let table =
    Table.create
      ~title:
        "Fig 6a: Prune-GEACC averaged depth at pruning (|V|=5, c_v~U[1,10]; \
         dashes in the paper = max depth)"
      ~headers:
        [ "|CF| ratio"; "avg depth |U|=10"; "max depth |U|=10";
          "avg depth |U|=15"; "max depth |U|=15" ]
  in
  List.iter
    (fun r ->
      let cells =
        List.concat_map
          (fun n_users ->
            let s_avg = Stats.create () and s_max = Stats.create () in
            for seed = 1 to trials do
              let cfg =
                {
                  Synthetic.default with
                  Synthetic.n_events = 5;
                  n_users;
                  event_capacity = Synthetic.Cap_uniform 10;
                  conflict_ratio = r;
                }
              in
              let _, st = Exact.solve (Synthetic.generate ~seed cfg) in
              if st.Exact.prunes > 0 then
                Stats.add s_avg
                  (float_of_int st.Exact.prune_depth_total
                  /. float_of_int st.Exact.prunes);
              Stats.add s_max (float_of_int st.Exact.max_depth)
            done;
            [
              Printf.sprintf "%.1f" (Stats.mean s_avg);
              Printf.sprintf "%.0f" (Stats.mean s_max);
            ])
          [ 10; 15 ]
      in
      Table.add_row table (Printf.sprintf "%.2f" r :: cells))
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  Table.print table

let fig6_vs_exhaustive profile =
  let n_events, n_users, cv, cu = fig6_settings profile in
  let headers =
    [ "|CF| ratio"; "Prune time (ms)"; "Exhaustive time (ms)";
      "Prune complete"; "Exhaustive complete"; "Prune invoked";
      "Exhaustive invoked"; "budget hit" ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 6b-d: Prune-GEACC vs exhaustive search (|V|=%d, |U|=%d, \
            c_v~U[1,%d], c_u~U[1,%d])"
           n_events n_users cv cu)
      ~headers
  in
  List.iter
    (fun r ->
      Printf.eprintf "[bench] fig6: |CF| ratio = %.2f\n%!" r;
      let cfg =
        {
          Synthetic.default with
          Synthetic.n_events;
          n_users;
          event_capacity = Synthetic.Cap_uniform cv;
          user_capacity = Synthetic.Cap_uniform cu;
          conflict_ratio = r;
        }
      in
      let instance = Synthetic.generate ~seed:1 cfg in
      let (m1, st1), t_prune = Measure.time (fun () -> Exact.solve instance) in
      let (m2, st2), t_exh =
        Measure.time (fun () ->
            Exact.solve ~pruning:false ~warm_start:false
              ~budget:fig6_exhaustive_budget instance)
      in
      (* Both must agree on the optimum when neither was budget-limited. *)
      if not st2.Exact.exhausted_budget then
        assert (Float.abs (Matching.maxsum m1 -. Matching.maxsum m2) < 1e-6);
      Table.add_row table
        [
          Printf.sprintf "%.2f" r;
          Printf.sprintf "%.2f" (t_prune *. 1000.);
          Printf.sprintf "%.2f" (t_exh *. 1000.);
          string_of_int st1.Exact.complete_searches;
          string_of_int st2.Exact.complete_searches;
          string_of_int st1.Exact.invocations;
          string_of_int st2.Exact.invocations;
          string_of_bool st2.Exact.exhausted_budget;
        ])
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  Table.print table

(* -- Ablations (beyond the paper): design-choice studies ---------------- *)

(* Greedy-GEACC's lazy NN-stream enumeration vs materialising and sorting
   all |V|x|U| pairs. Same arrangement by construction; the ablation
   quantifies the time/memory gap that justifies the index machinery. *)
let ablation_greedy profile =
  let us =
    if profile.full then [ 1_000; 5_000; 10_000; 25_000; 50_000 ]
    else [ 1_000; 5_000; 10_000 ]
  in
  let table =
    Table.create
      ~title:
        "Ablation: Greedy-GEACC heap+NN-streams vs naive sort-all-pairs \
         (|V|=100)"
      ~headers:
        [ "|U|"; "stream time (ms)"; "naive time (ms)"; "stream mem (MB)";
          "naive mem (MB)"; "MaxSum equal" ]
  in
  List.iter
    (fun n_users ->
      Printf.eprintf "[bench] ablation-greedy: |U| = %d\n%!" n_users;
      let cfg = { Synthetic.default with Synthetic.n_users } in
      let make () = Synthetic.generate ~seed:1 cfg in
      let m1, t1 = Measure.time (fun () -> Greedy.solve (make ())) in
      let _, mem1, _ =
        Measure.run_with_peak (fun () -> Greedy.solve (make ()))
      in
      let m2, t2 = Measure.time (fun () -> Greedy_naive.solve (make ())) in
      let _, mem2, _ =
        Measure.run_with_peak (fun () -> Greedy_naive.solve (make ()))
      in
      Table.add_row table
        [
          string_of_int n_users;
          Printf.sprintf "%.1f" (t1 *. 1000.);
          Printf.sprintf "%.1f" (t2 *. 1000.);
          Printf.sprintf "%.1f" (float_of_int mem1 /. 1048576.);
          Printf.sprintf "%.1f" (float_of_int mem2 /. 1048576.);
          string_of_bool
            (Float.abs (Matching.maxsum m1 -. Matching.maxsum m2) < 1e-9);
        ])
    us;
  Table.print table

(* Prune-GEACC's two ingredients — the Lemma 6 bound and the Greedy warm
   start — toggled independently. *)
let ablation_prune profile =
  let n_events, n_users, cv, cu = fig6_settings profile in
  let cfg =
    {
      Synthetic.default with
      Synthetic.n_events;
      n_users;
      event_capacity = Synthetic.Cap_uniform cv;
      user_capacity = Synthetic.Cap_uniform cu;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: exact-search ingredients (|V|=%d, |U|=%d); mean of 3 \
            seeds" n_events n_users)
      ~headers:[ "variant"; "invocations"; "complete"; "time (ms)" ]
  in
  let variants =
    [
      ("bound + warm start + user-side bound", `Tightened);
      ("bound + warm start (Prune-GEACC)", `Config (true, true));
      ("bound only", `Config (true, false));
      ("no bound (exhaustive)", `Config (false, false));
    ]
  in
  List.iter
    (fun (label, variant) ->
      Printf.eprintf "[bench] ablation-prune: %s\n%!" label;
      let inv = Stats.create ()
      and complete = Stats.create ()
      and time = Stats.create () in
      for seed = 1 to 3 do
        let t = Synthetic.generate ~seed cfg in
        let (_, st), secs =
          Measure.time (fun () ->
              match variant with
              | `Tightened ->
                  Exact.solve ~tighten:true ~budget:fig6_exhaustive_budget t
              | `Config (pruning, warm_start) ->
                  Exact.solve ~pruning ~warm_start
                    ~budget:fig6_exhaustive_budget t)
        in
        Stats.add inv (float_of_int st.Exact.invocations);
        Stats.add complete (float_of_int st.Exact.complete_searches);
        Stats.add time (secs *. 1000.)
      done;
      Table.add_row table
        [
          label;
          Printf.sprintf "%.0f" (Stats.mean inv);
          Printf.sprintf "%.0f" (Stats.mean complete);
          Printf.sprintf "%.1f" (Stats.mean time);
        ])
    variants;
  Table.print table

(* The index backends the paper names as candidates (kd-tree stand-in for
   best-first search, VA-File, iDistance) against the linear-scan baseline:
   identical arrangements by construction, differing sigma(S) costs. *)
let ablation_index profile =
  let cfg =
    if profile.full then { Synthetic.default with Synthetic.n_users = 2000 }
    else { Synthetic.default with Synthetic.n_users = 1000 }
  in
  let table =
    Table.create
      ~title:
        (Format.asprintf
           "Ablation: NN index backends under Greedy-GEACC (%a)"
           Synthetic.pp_config cfg)
      ~headers:
        [ "backend"; "time (ms)"; "mem (MB)"; "MaxSum" ]
  in
  List.iter
    (fun (b : Geacc_index.Nn_backend.t) ->
      Printf.eprintf "[bench] ablation-index: %s\n%!" b.Geacc_index.Nn_backend.name;
      let make () = Synthetic.generate ~seed:1 ~backend:b cfg in
      let m, secs = Measure.time (fun () -> Greedy.solve (make ())) in
      let _, mem, _ =
        Measure.run_with_peak (fun () -> Greedy.solve (make ()))
      in
      Table.add_row table
        [
          b.Geacc_index.Nn_backend.name;
          Printf.sprintf "%.1f" (secs *. 1000.);
          Printf.sprintf "%.1f" (float_of_int mem /. 1048576.);
          Printf.sprintf "%.2f" (Matching.maxsum m);
        ])
    Geacc_index.Nn_backend.all;
  Table.print table

(* Local-search post-optimisation: how much of the greedy-vs-optimal gap
   the replace moves recover (extension beyond the paper). *)
let ablation_local_search profile =
  let trials = Stdlib.max profile.trials 10 in
  let cfg =
    {
      Synthetic.default with
      Synthetic.n_events = 5;
      n_users = 12;
      event_capacity = Synthetic.Cap_uniform 5;
      user_capacity = Synthetic.Cap_uniform 2;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: local-search post-optimisation (|V|=5, |U|=12, %d \
            seeds)" trials)
      ~headers:
        [ "|CF| ratio"; "Greedy/Opt"; "Greedy+LS/Opt"; "gap closed (%)" ]
  in
  List.iter
    (fun r ->
      let g = Stats.create () and ls = Stats.create () and opt = Stats.create () in
      for seed = 1 to trials do
        let t =
          Synthetic.generate ~seed { cfg with Synthetic.conflict_ratio = r }
        in
        let o, st = Exact.solve ~tighten:true ~budget:exact_budget t in
        if not st.Exact.exhausted_budget then begin
          Stats.add g (Matching.maxsum (Greedy.solve t));
          Stats.add ls (Matching.maxsum (Local_search.solve t));
          Stats.add opt (Matching.maxsum o)
        end
      done;
      let g = Stats.mean g and ls = Stats.mean ls and opt = Stats.mean opt in
      let gap_closed =
        if opt -. g < 1e-9 then 100. else 100. *. (ls -. g) /. (opt -. g)
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" r;
          Printf.sprintf "%.4f" (g /. opt);
          Printf.sprintf "%.4f" (ls /. opt);
          Printf.sprintf "%.1f" gap_closed;
        ])
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  Table.print table

(* Online arrivals vs the offline algorithms: the price of irrevocable,
   on-arrival decisions (extension beyond the paper). *)
let ablation_online profile =
  let trials = Stdlib.max profile.trials 10 in
  let cfg =
    {
      Synthetic.default with
      Synthetic.n_events = 5;
      n_users = 12;
      event_capacity = Synthetic.Cap_uniform 5;
      user_capacity = Synthetic.Cap_uniform 2;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: online arrivals vs offline (|V|=5, |U|=12, %d seeds)"
           trials)
      ~headers:[ "|CF| ratio"; "Online/Opt"; "Greedy/Opt"; "Online/Greedy" ]
  in
  List.iter
    (fun r ->
      let online = Stats.create ()
      and greedy = Stats.create ()
      and opt = Stats.create () in
      for seed = 1 to trials do
        let t =
          Synthetic.generate ~seed { cfg with Synthetic.conflict_ratio = r }
        in
        let o, st = Exact.solve ~tighten:true ~budget:exact_budget t in
        if not st.Exact.exhausted_budget then begin
          let rng = Rng.create ~seed in
          Stats.add online
            (Matching.maxsum (Online.solve_random_order ~rng t));
          Stats.add greedy (Matching.maxsum (Greedy.solve t));
          Stats.add opt (Matching.maxsum o)
        end
      done;
      let online = Stats.mean online
      and greedy = Stats.mean greedy
      and opt = Stats.mean opt in
      Table.add_row table
        [
          Printf.sprintf "%.2f" r;
          Printf.sprintf "%.4f" (online /. opt);
          Printf.sprintf "%.4f" (greedy /. opt);
          Printf.sprintf "%.4f" (online /. greedy);
        ])
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  Table.print table

(* -- Sparse vs dense flow network (CSR core) ---------------------------- *)

(* Machine-readable comparison of the similarity-pruned sparse network
   against the paper's dense one, written to BENCH_sparse.json: per cell,
   wall time, peak live heap, (v,u) arc counts and MaxSum for both
   constructions, plus the instance's measured zero-similarity pair
   fraction. Equation-1 similarity virtually never produces zero-sim pairs
   (its cutoff is the attribute-space diameter), so the *-tight cells
   re-wrap the same entities under a euclidean profile with range T/8 —
   there distances beyond the cutoff underflow to similarity exactly 0 and
   the sparse builder visibly prunes (the Zipf cell clears 50% zero-sim
   because Zipf mass piles up near 0 while the tail sits far away). *)

let sparse_cell ~name instance =
  let n_v = Instance.n_events instance
  and n_u = Instance.n_users instance in
  let zero = ref 0 in
  for v = 0 to n_v - 1 do
    for u = 0 to n_u - 1 do
      if not (Instance.sim instance ~v ~u > 0.) then incr zero
    done
  done;
  let zero_frac = float_of_int !zero /. float_of_int (n_v * n_u) in
  (* A cell with no zero-similarity pairs gives the sparse builder nothing
     to prune: dense and sparse emit the same arcs, so the dense-vs-sparse
     speedup expectation is waived there (uniform-eq1 by construction —
     equation-1 similarity's cutoff is the attribute-space diameter). The
     cell still runs and still gates MaxSum equality and the int kernel;
     only the speedup reading is exempt, and the JSON says so explicitly
     so downstream gates key off [speedup_expected] instead of guessing
     from the ratio. *)
  let no_prune = !zero = 0 in
  let run ~cost_kernel network =
    (* Best-of-3 wall time: the solves are CPU-bound and side-effect
       free, so the minimum is the least-noise estimator — single-shot
       timings on shared CI runners swing by 2x and would drown the
       kernel and network ratios the cell exists to track. *)
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let (m, stats), wall_s =
        Measure.time (fun () ->
            Mincostflow.solve_with_stats ~network ~cost_kernel instance)
      in
      if wall_s < !best then begin
        best := wall_s;
        result := Some (m, stats)
      end
    done;
    let m, stats = Option.get !result in
    let _, peak_bytes, peak_mode =
      Measure.run_with_peak (fun () ->
          Mincostflow.solve_with_stats ~network ~cost_kernel instance)
    in
    (m, stats, !best, peak_bytes, peak_mode)
  in
  (* Dense vs sparse both on the float kernel, so the cell keeps measuring
     the network construction alone; the int-vs-float comparison below
     pins the network to sparse and varies only the kernel. *)
  let dm, ds, dt, dmem, dmode =
    run ~cost_kernel:Mincostflow.Float_kernel Mincostflow.Dense
  in
  let sm, ss, st, smem, smode =
    run ~cost_kernel:Mincostflow.Float_kernel Mincostflow.Sparse
  in
  let im, is_, it, imem, imode =
    run ~cost_kernel:Mincostflow.Int_kernel Mincostflow.Sparse
  in
  let dsum = Matching.maxsum dm
  and ssum = Matching.maxsum sm
  and isum = Matching.maxsum im in
  let bits_equal = Int64.bits_of_float dsum = Int64.bits_of_float ssum in
  let int_bits_equal = Int64.bits_of_float ssum = Int64.bits_of_float isum in
  if not bits_equal then
    Printf.eprintf "[bench] sparse-flow %s: MAXSUM MISMATCH %.17g vs %.17g\n%!"
      name dsum ssum;
  if not int_bits_equal then
    Printf.eprintf
      "[bench] sparse-flow %s: INT-KERNEL MAXSUM MISMATCH %.17g vs %.17g\n%!"
      name ssum isum;
  Printf.eprintf
    "[bench] sparse-flow %s: zero-sim %.0f%%, arcs %d -> %d, %.1f ms -> %.1f \
     ms; int kernel %.1f ms (%.2fx%s)\n\
     %!"
    name (100. *. zero_frac) ds.Mincostflow.pair_arcs ss.Mincostflow.pair_arcs
    (dt *. 1000.) (st *. 1000.) (it *. 1000.)
    (st /. Float.max it 1e-9)
    (if is_.Mincostflow.int_fallback then ", fell back" else "");
  if no_prune then
    Printf.eprintf
      "[bench] sparse-flow %s: no-prune cell (0%% zero-sim) — dense-vs-sparse \
       speedup expectation waived\n\
       %!"
      name;
  Printf.sprintf
    {|    {
      "name": "%s",
      "n_events": %d,
      "n_users": %d,
      "dim": %d,
      "zero_sim_fraction": %.6f,
      "dense": { "wall_s": %.6f, "peak_bytes": %d, "peak_mode": "%s", "pair_arcs": %d, "maxsum": %.17g },
      "sparse": { "wall_s": %.6f, "peak_bytes": %d, "peak_mode": "%s", "pair_arcs": %d, "maxsum": %.17g },
      "sparse_int": { "wall_s": %.6f, "peak_bytes": %d, "peak_mode": "%s", "maxsum": %.17g, "kernel_used": "%s", "int_fallback": %b },
      "arc_reduction": %.6f,
      "speedup": %.4f,
      "speedup_expected": %b,
      "speedup_note": "%s",
      "int_speedup": %.4f,
      "maxsum_bits_equal": %b,
      "int_maxsum_bits_equal": %b
    }|}
    name n_v n_u (Instance.dim instance) zero_frac dt dmem
    (Measure.peak_mode_label dmode) ds.Mincostflow.pair_arcs dsum st smem
    (Measure.peak_mode_label smode) ss.Mincostflow.pair_arcs ssum it imem
    (Measure.peak_mode_label imode) isum
    (Mincostflow.kernel_name is_.Mincostflow.kernel_used)
    is_.Mincostflow.int_fallback
    (1.
    -. float_of_int ss.Mincostflow.pair_arcs
       /. float_of_int (Stdlib.max 1 ds.Mincostflow.pair_arcs))
    (dt /. Float.max st 1e-9)
    (not no_prune)
    (if no_prune then
       "no zero-sim pairs: nothing to prune, dense-vs-sparse speedup \
        expectation waived"
     else "")
    (st /. Float.max it 1e-9)
    bits_equal int_bits_equal

let sparse_flow profile =
  let n_users = if profile.full then 1000 else 400 in
  let base = { Synthetic.default with Synthetic.n_users } in
  (* [denom] sets the re-wrapped profile's range to T/denom; in d = 20 the
     pairwise distances concentrate sharply, so each attribute model needs
     its own denominator to land between the degenerate 0% and 100%
     extremes (tuned empirically on seed 1). *)
  let tight denom instance =
    Instance.create
      ~sim:
        (Similarity.euclidean ~dim:(Instance.dim instance)
           ~range:(base.Synthetic.t_max /. denom))
      ~events:(Instance.events instance)
      ~users:(Instance.users instance)
      ~conflicts:(Instance.conflicts instance)
      ()
  in
  let cells =
    [
      ("uniform-eq1", Synthetic.generate ~seed:1 base);
      ( "uniform-tight",
        tight 2.4 (Synthetic.generate ~seed:1 base) );
      ( "normal-tight",
        tight 2.4
          (Synthetic.generate ~seed:1
             { base with Synthetic.attrs = Synthetic.Attr_normal_mixture }) );
      ( "zipf-tight",
        tight 12.
          (Synthetic.generate ~seed:1
             { base with Synthetic.attrs = Synthetic.Attr_zipf 1.3 }) );
    ]
  in
  let rows =
    List.map (fun (name, instance) -> sparse_cell ~name instance) cells
  in
  let oc = open_out "BENCH_sparse.json" in
  Printf.fprintf oc
    {|{
  "experiment": "sparse-flow",
  "profile": "%s",
  "jobs": %d,
  "cells": [
%s
  ]
}
|}
    (if profile.full then "full" else "quick")
    profile.jobs
    (String.concat ",\n" rows);
  close_out oc;
  Printf.eprintf "[bench] sparse-flow: wrote BENCH_sparse.json\n%!"

(* -- Serving loop: replay latency and journal overhead ------------------ *)

(* Machine-readable profile of `geacc serve` on a generated Meetup trace,
   written to BENCH_serve.json. Three cells: incremental repair (the
   default), full replay every batch, and incremental without journal
   fsyncs. Per cell, total wall time, batch-latency p50/p99, journal time,
   and the final digest/MaxSum — the incremental and full cells must agree
   bit-for-bit (the crash-safety tests enforce the same invariant; here it
   guards the measurement's meaning). The headline ratio is full/incremental
   mean batch latency: the dirty-suffix repair must not regress to
   re-serving everyone. *)

module Serve_loop = Geacc_serve.Serve_loop
module Trace_gen = Geacc_datagen.Trace_gen

let serve_temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "geacc_bench_serve_%d_%d" (Unix.getpid ()) !counter)
    in
    Unix.mkdir path 0o700;
    path

let rec serve_rm_rf path =
  if Sys.is_directory path then begin
    Array.iter
      (fun e -> serve_rm_rf (Filename.concat path e))
      (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (p *. float_of_int n)))

let serve_cell ~name ~mode ~fsync trace =
  let dir = serve_temp_dir () in
  Fun.protect
    ~finally:(fun () -> serve_rm_rf dir)
    (fun () ->
      let config =
        { (Serve_loop.default ~state_dir:dir) with Serve_loop.mode; fsync }
      in
      let out = open_out Filename.null in
      let result, wall_s =
        Fun.protect
          ~finally:(fun () -> close_out out)
          (fun () -> Measure.time (fun () -> Serve_loop.run config ~out trace))
      in
      match result with
      | Error e ->
          Printf.eprintf "[bench] serve-replay %s: FAILED %s\n%!" name
            (Geacc_robust.Error.to_string e);
          exit 1
      | Ok report ->
          let lat = Array.of_list report.Serve_loop.latencies_s in
          Array.sort compare lat;
          let mean =
            if Array.length lat = 0 then nan
            else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
          in
          Printf.eprintf
            "[bench] serve-replay %s: %d batches, mean %.3f ms, p99 %.3f ms, \
             journal %.1f ms\n\
             %!"
            name report.Serve_loop.applied (mean *. 1000.)
            (percentile lat 0.99 *. 1000.)
            (report.Serve_loop.journal_s *. 1000.);
          ( report,
            mean,
            Printf.sprintf
              {|    {
      "name": "%s",
      "wall_s": %.6f,
      "batches": %d,
      "applied": %d,
      "full_replays": %d,
      "snapshots": %d,
      "latency_mean_s": %.6f,
      "latency_p50_s": %.6f,
      "latency_p99_s": %.6f,
      "journal_s": %.6f,
      "maxsum": %.17g,
      "digest": "%s"
    }|}
              name wall_s report.Serve_loop.batches report.Serve_loop.applied
              report.Serve_loop.full_replays report.Serve_loop.snapshots mean
              (percentile lat 0.5) (percentile lat 0.99)
              report.Serve_loop.journal_s report.Serve_loop.maxsum
              report.Serve_loop.digest ))

let serve_replay profile =
  let city =
    if profile.full then Meetup.vancouver else Meetup.auckland
  in
  let trace = Trace_gen.generate ~seed:1 ~city () in
  Printf.eprintf "[bench] serve-replay: %s trace, %d batches\n%!"
    city.Meetup.name
    (List.length trace.Geacc_serve.Trace.batches);
  let inc, inc_mean, inc_row =
    serve_cell ~name:"incremental" ~mode:Serve_loop.Incremental ~fsync:true
      trace
  in
  let full, full_mean, full_row =
    serve_cell ~name:"full" ~mode:Serve_loop.Full ~fsync:true trace
  in
  let nofsync, _, nofsync_row =
    serve_cell ~name:"incremental-nofsync" ~mode:Serve_loop.Incremental
      ~fsync:false trace
  in
  let bits_equal =
    Int64.bits_of_float inc.Serve_loop.maxsum
    = Int64.bits_of_float full.Serve_loop.maxsum
    && inc.Serve_loop.digest = full.Serve_loop.digest
  in
  if not bits_equal then begin
    Printf.eprintf
      "[bench] serve-replay: INCREMENTAL/FULL DIVERGED (%s vs %s)\n%!"
      inc.Serve_loop.digest full.Serve_loop.digest;
    exit 1
  end;
  let speedup = full_mean /. Float.max inc_mean 1e-9 in
  let fsync_overhead_s =
    inc.Serve_loop.journal_s -. nofsync.Serve_loop.journal_s
  in
  Printf.eprintf
    "[bench] serve-replay: incremental %.2fx faster per batch, fsync \
     overhead %.1f ms\n\
     %!"
    speedup (fsync_overhead_s *. 1000.);
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    {|{
  "experiment": "serve-replay",
  "profile": "%s",
  "city": "%s",
  "incremental_speedup": %.4f,
  "fsync_overhead_s": %.6f,
  "digests_equal": %b,
  "cells": [
%s
  ]
}
|}
    (if profile.full then "full" else "quick")
    city.Meetup.name speedup fsync_overhead_s bits_equal
    (String.concat ",\n" [ inc_row; full_row; nofsync_row ]);
  close_out oc;
  Printf.eprintf "[bench] serve-replay: wrote BENCH_serve.json\n%!"

(* -- registry ----------------------------------------------------------- *)

let all : (string * string * (profile -> unit)) list =
  [
    ("fig3-v", "Fig 3 col 1: MaxSum/time/memory vs |V|", fig3_v);
    ("fig3-u", "Fig 3 col 2: MaxSum/time/memory vs |U|", fig3_u);
    ("fig3-d", "Fig 3 col 3: MaxSum/time/memory vs d", fig3_d);
    ("fig3-cf", "Fig 3 col 4: MaxSum/time/memory vs |CF|", fig3_cf);
    ("fig4-cv", "Fig 4 col 1: MaxSum/time/memory vs max c_v", fig4_cv);
    ("fig4-cu", "Fig 4 col 2: MaxSum/time/memory vs max c_u", fig4_cu);
    ("fig4-dist", "Fig 4 col 3: Zipf/Normal distributions", fig4_dist);
    ("fig4-real", "Fig 4 col 4: simulated Meetup (Auckland)", fig4_real);
    ("fig5-scal", "Fig 5a,b: Greedy-GEACC scalability", fig5_scalability);
    ("fig5-approx", "Fig 5c,d: approximation quality vs exact", fig5_approx);
    ("fig6-depth", "Fig 6a: average pruned depth", fig6_prune_depth);
    ("fig6-search", "Fig 6b-d: Prune vs exhaustive search", fig6_vs_exhaustive);
    ( "ablation-greedy",
      "Ablation: NN-stream greedy vs sort-all-pairs greedy",
      ablation_greedy );
    ( "ablation-prune",
      "Ablation: Lemma 6 bound and warm start toggled",
      ablation_prune );
    ( "ablation-ls",
      "Ablation: local-search post-optimisation of Greedy",
      ablation_local_search );
    ( "ablation-index",
      "Ablation: kd / linear / VA-File / iDistance backends",
      ablation_index );
    ( "ablation-online",
      "Ablation: online arrivals vs offline algorithms",
      ablation_online );
    ( "sparse-flow",
      "Sparse vs dense flow network: arcs/time/memory, BENCH_sparse.json",
      sparse_flow );
    ( "serve-replay",
      "Serving loop: batch latency, journal overhead, BENCH_serve.json",
      serve_replay );
  ]
