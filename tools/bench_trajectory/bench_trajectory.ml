(* bench_trajectory — fold bench JSON artifacts into a wall-time trajectory.

   Usage:
     bench_trajectory --sha SHA [--trajectory FILE] [--threshold PCT]
       BENCH_*.json...

   Each input artifact is scanned for every object carrying a numeric
   "wall_s" field; the dotted path to the object (array elements named by
   their "name" member when they have one) identifies the cell. A cell
   that also carries "peak_bytes" contributes its peak-heap measurement
   alongside, together with its "peak_mode" ("exact" from the alarm-driven
   sampler, "gc-delta" from the cheap fallback — see Measure.with_peak).
   One snapshot per artifact — { sha; experiment; cells } — is appended to
   the trajectory file (default BENCH_TRAJECTORY.json), so successive CI
   runs accumulate a per-commit history of every timed cell.

   Before appending, each new snapshot is compared against the most recent
   prior snapshot of the same experiment: any cell whose wall time or peak
   heap grew by more than the threshold (default 25%) prints a
   `::warning::` line in GitHub problem-matcher syntax, and so does any
   previously-tracked cell that the new artifact no longer carries — a
   renamed or silently-dropped bench cell would otherwise vanish from the
   history without anyone noticing. Peak-heap cells
   are only compared when BOTH sides were measured in "exact" mode —
   gc-delta numbers are Gc-sampling noise, and comparing them against
   exact ones manufactures spurious regressions, so mixed or gc-delta
   pairs are skipped. Regressions warn — bench numbers on shared CI
   runners are too noisy to gate a merge on — so the exit status is 0
   unless an artifact cannot be read or parsed. *)

(* -- Minimal JSON (stdlib only) ---------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  (* Bench artifacts are ASCII; keep the escape verbatim
                     rather than decoding surrogate pairs. *)
                  if !pos + 4 > n then fail "truncated \\u escape";
                  Buffer.add_string buf "\\u";
                  Buffer.add_string buf (String.sub s !pos 4);
                  pos := !pos + 4
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print_json buf indent = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          print_json buf (indent + 2) v)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  \"";
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          print_json buf (indent + 2) v)
        members;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'

let json_to_string v =
  let buf = Buffer.create 1024 in
  print_json buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

(* -- Cell extraction ---------------------------------------------------- *)

(* Every object carrying a numeric "wall_s" leaf, addressed by its dotted
   path. Array elements carrying a string "name" member are addressed by
   that name (stable across reordering); anonymous elements fall back to
   their index. A sibling "peak_bytes" rides along with its "peak_mode"
   (artifacts written before the mode tag are treated as exact, which is
   what they were). *)
type cell = { path : string; wall : float; peak : (float * string) option }

let collect_cells root =
  let cells = ref [] in
  let rec go path v =
    match v with
    | Obj members ->
        (match List.assoc_opt "wall_s" members with
        | Some (Num wall) ->
            let peak =
              match
                ( List.assoc_opt "peak_bytes" members,
                  List.assoc_opt "peak_mode" members )
              with
              | Some (Num p), Some (Str mode) -> Some (p, mode)
              | Some (Num p), _ -> Some (p, "exact")
              | _ -> None
            in
            cells :=
              { path = String.concat "." (List.rev path); wall; peak }
              :: !cells
        | _ -> ());
        List.iter
          (fun (k, v') ->
            match (k, v') with "wall_s", Num _ -> () | _ -> go (k :: path) v')
          members
    | Arr items ->
        List.iteri
          (fun i v' ->
            let seg =
              match member "name" v' with
              | Some (Str name) -> name
              | _ -> string_of_int i
            in
            go (seg :: path) v')
          items
    | _ -> ()
  in
  go [] root;
  List.rev !cells

let experiment_of ~path root =
  match member "experiment" root with
  | Some (Str e) -> e
  | _ ->
      let base = Filename.remove_extension (Filename.basename path) in
      if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
        String.sub base 6 (String.length base - 6)
      else base

(* -- Trajectory file ---------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_trajectory path =
  if Sys.file_exists path then
    match member "snapshots" (parse_json (read_file path)) with
    | Some (Arr snaps) -> snaps
    | _ -> failwith (path ^ ": expected an object with a \"snapshots\" array")
  else []

let snapshot_cells snap =
  match member "cells" snap with Some (Obj members) -> members | _ -> []

let last_snapshot_for ~experiment snaps =
  List.fold_left
    (fun acc snap ->
      match member "experiment" snap with
      | Some (Str e) when e = experiment -> Some snap
      | _ -> acc)
    None snaps

(* -- Regression check --------------------------------------------------- *)

(* Stored cell values are a bare Num (wall time only — the pre-peak
   snapshot shape, still written for cells without a peak measurement) or
   an object carrying wall_s plus peak_bytes/peak_mode. *)
let stored_wall = function
  | Num f -> Some f
  | Obj _ as o -> (
      match member "wall_s" o with Some (Num f) -> Some f | _ -> None)
  | _ -> None

let stored_peak = function
  | Obj _ as o -> (
      match (member "peak_bytes" o, member "peak_mode" o) with
      | Some (Num p), Some (Str mode) -> Some (p, mode)
      | Some (Num p), _ -> Some (p, "exact")
      | _ -> None)
  | _ -> None

let warn_regressions ~threshold ~experiment ~prev_sha prev_cells new_cells =
  let any = ref false in
  let grew before now =
    before > 0. && now > before *. (1. +. (threshold /. 100.))
  in
  List.iter
    (fun c ->
      match List.assoc_opt c.path prev_cells with
      | None -> ()
      | Some prev ->
          (match stored_wall prev with
          | Some before when grew before c.wall ->
              any := true;
              Printf.printf
                "::warning title=bench regression::%s %s wall time %.6fs -> \
                 %.6fs (+%.0f%% vs %s, threshold %.0f%%)\n"
                experiment c.path before c.wall
                (100. *. ((c.wall /. before) -. 1.))
                prev_sha threshold
          | _ -> ());
          (* Peak heap is only comparable exact-vs-exact: gc-delta numbers
             are sampling noise, so any gc-delta side skips the check. *)
          (match (stored_peak prev, c.peak) with
          | Some (before, "exact"), Some (now, "exact") when grew before now ->
              any := true;
              Printf.printf
                "::warning title=bench regression::%s %s peak heap %.0fB -> \
                 %.0fB (+%.0f%% vs %s, threshold %.0f%%)\n"
                experiment c.path before now
                (100. *. ((now /. before) -. 1.))
                prev_sha threshold
          | _ -> ()))
    new_cells;
  (* The reverse pass: cells the previous snapshot tracked but the new
     artifact no longer carries. Renames and accidental drops both land
     here; either way the trajectory is about to lose a series. *)
  List.iter
    (fun (path, _) ->
      if not (List.exists (fun c -> c.path = path) new_cells) then begin
        any := true;
        Printf.printf
          "::warning title=bench cell disappeared::%s %s was tracked at %s \
           but is missing from this run's artifact\n"
          experiment path prev_sha
      end)
    prev_cells;
  !any

(* -- Driver ------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: bench_trajectory --sha SHA [--trajectory FILE] [--threshold \
     PCT] BENCH_*.json...";
  exit 2

let () =
  let sha = ref None in
  let trajectory = ref "BENCH_TRAJECTORY.json" in
  let threshold = ref 25. in
  let inputs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--sha" :: v :: rest ->
        sha := Some v;
        parse_args rest
    | "--trajectory" :: v :: rest ->
        trajectory := v;
        parse_args rest
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> threshold := f
        | _ -> usage ());
        parse_args rest
    | ("--sha" | "--trajectory" | "--threshold") :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | file :: rest ->
        inputs := file :: !inputs;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let sha = match !sha with Some s -> s | None -> usage () in
  let inputs = List.rev !inputs in
  if inputs = [] then usage ();
  let snaps = ref (load_trajectory !trajectory) in
  let failures = ref 0 in
  List.iter
    (fun path ->
      match parse_json (read_file path) with
      | exception Sys_error msg ->
          incr failures;
          Printf.eprintf "bench_trajectory: %s\n" msg
      | exception Parse_error msg ->
          incr failures;
          Printf.eprintf "bench_trajectory: %s: %s\n" path msg
      | root ->
          let experiment = experiment_of ~path root in
          let cells = collect_cells root in
          (match last_snapshot_for ~experiment !snaps with
          | Some prev ->
              let prev_sha =
                match member "sha" prev with Some (Str s) -> s | _ -> "?"
              in
              let (_ : bool) =
                warn_regressions ~threshold:!threshold ~experiment ~prev_sha
                  (snapshot_cells prev) cells
              in
              ()
          | None -> ());
          let cell_value c =
            match c.peak with
            | None -> Num c.wall
            | Some (p, mode) ->
                Obj
                  [
                    ("wall_s", Num c.wall);
                    ("peak_bytes", Num p);
                    ("peak_mode", Str mode);
                  ]
          in
          let snap =
            Obj
              [
                ("sha", Str sha);
                ("experiment", Str experiment);
                ( "cells",
                  Obj (List.map (fun c -> (c.path, cell_value c)) cells) );
              ]
          in
          snaps := !snaps @ [ snap ];
          Printf.printf "recorded %s: %d cell(s) at %s\n" experiment
            (List.length cells) sha)
    inputs;
  let oc = open_out_bin !trajectory in
  output_string oc (json_to_string (Obj [ ("snapshots", Arr !snaps) ]));
  close_out oc;
  (* Regressions only warn; unreadable artifacts are real CI failures. *)
  exit (if !failures > 0 then 1 else 0)
