(* Shared plumbing for the two analyzer stages: geacc_lint (parsetree pass)
   and geacc_analyze (typedtree/.cmt pass). One diagnostic shape, one
   suppression-tag parser, one pair of output formats, one directory walk —
   so the two tools cannot drift apart on spans, tags or report syntax. *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

(* ---------- path predicates ---------- *)

let has_segment path seg =
  List.exists (String.equal seg) (String.split_on_char '/' path)

let contains_marker path marker =
  (* Substring search is enough: markers are unambiguous path infixes. *)
  let lp = String.length path and lm = String.length marker in
  let rec at i =
    i + lm <= lp && (String.equal (String.sub path i lm) marker || at (i + 1))
  in
  at 0

(* ---------- file discovery ---------- *)

let rec walk ~skip_dir dir acc =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then
        if skip_dir name then acc else walk ~skip_dir path acc
      else path :: acc)
    acc entries

let read_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  (content, Array.of_list (String.split_on_char '\n' content))

(* ---------- suppression tags ---------- *)

(* Both stages share one tag grammar: a comment containing "<tag>: ok" on
   the offending line or the line directly above suppresses the diagnostic.
   geacc_lint recognises the tag "lint", geacc_analyze the tag "alloc"; a
   caller passes every tag it honours. *)

let line_has_tag ~tags lines l =
  l >= 1
  && l <= Array.length lines
  && List.exists
       (fun tag -> contains_marker lines.(l - 1) (tag ^ ": ok"))
       tags

let suppressed ~tags lines l =
  line_has_tag ~tags lines l || line_has_tag ~tags lines (l - 1)

(* ---------- reasoned suppression tags and licences ---------- *)

(* geacc_effects tags must justify themselves: "<tag>: ok — <reason>". A
   bare "<tag>: ok" is itself a diagnostic (suppress-no-reason), so an
   exemption can never silently outlive its justification. geacc_bounds
   reuses the same grammar with the marker "bounds: proved" — a licence
   rather than a suppression, since the analyzer re-verifies the claim —
   so both go through the generic marker machinery below. *)

type tag_status = No_tag | Tag_with_reason | Tag_without_reason

let find_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec at i =
    if i + lb > ls then None
    else if String.equal (String.sub s i lb) sub then Some i
    else at (i + 1)
  in
  at 0

let line_marker_status ~marker lines l =
  if l < 1 || l > Array.length lines then No_tag
  else
    let line = lines.(l - 1) in
    match find_sub line marker with
    | None -> No_tag
    | Some i ->
        let start = i + String.length marker in
        let rest = String.sub line start (String.length line - start) in
        (* The reason ends where the comment does; dashes and punctuation
           alone are not a reason. *)
        let rest =
          match find_sub rest "*)" with
          | Some j -> String.sub rest 0 j
          | None -> rest
        in
        let is_word c =
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9')
        in
        if String.exists is_word rest then Tag_with_reason
        else Tag_without_reason

let line_tag_status ~tag lines l = line_marker_status ~marker:(tag ^ ": ok") lines l

(* Same placement grammar as [suppressed]: the offending line or the line
   directly above, nearest line wins. Returns the matched line alongside
   the status so licence consumers can track which markers were used
   (geacc_bounds reports the unused ones as orphans). *)
let reasoned_marker_status ~marker lines l =
  match line_marker_status ~marker lines l with
  | No_tag -> (line_marker_status ~marker lines (l - 1), l - 1)
  | s -> (s, l)

let reasoned_tag_status ~tag lines l =
  fst (reasoned_marker_status ~marker:(tag ^ ": ok") lines l)

(* ---------- output ---------- *)

type format = Text | Json

let sort_diagnostics diags =
  List.sort
    (fun a b ->
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c
        else
          let c = Int.compare a.col b.col in
          if c <> 0 then c else String.compare a.rule b.rule)
    diags

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Emits the (sorted) report and returns the exit status the tool should
   use: 0 when clean, 1 when any diagnostic was reported. In [Text] a clean
   run prints "<tool>: clean" so logs state the pass ran; in [Json] the
   report is always a (possibly empty) array, machine-consumable either
   way. *)
let emit ~format ~tool diags =
  let diags = sort_diagnostics diags in
  (match format with
  | Text ->
      List.iter
        (fun d ->
          Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col d.rule
            d.message)
        diags;
      if diags = [] then Printf.printf "%s: clean\n" tool
  | Json ->
      let item d =
        Printf.sprintf
          "  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
           \"%s\", \"message\": \"%s\"}"
          (json_escape d.file) d.line d.col (json_escape d.rule)
          (json_escape d.message)
      in
      print_string
        (match diags with
        | [] -> "[]\n"
        | _ -> "[\n" ^ String.concat ",\n" (List.map item diags) ^ "\n]\n"));
  if diags = [] then 0 else 1

(* ---------- command line ---------- *)

(* Every stage accepts:  TOOL [--format text|json] [--list-rules] DIR...
   [--list-rules] prints the tool's rule ids one per line and exits 0, so
   CI problem-matcher configs and docs can be checked against the binaries
   instead of drifting silently. *)
let parse_argv ~tool ?(rules = []) argv =
  let usage () =
    Printf.eprintf "usage: %s [--format text|json] [--list-rules] DIR...\n"
      tool;
    exit 2
  in
  let rec go fmt roots = function
    | [] -> (fmt, List.rev roots)
    | "--list-rules" :: _ ->
        List.iter print_endline rules;
        exit 0
    | "--format" :: v :: rest -> (
        match v with
        | "text" -> go Text roots rest
        | "json" -> go Json roots rest
        | _ -> usage ())
    | "--format" :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | dir :: rest -> go fmt (dir :: roots) rest
  in
  let fmt, roots =
    match Array.to_list argv with _ :: rest -> go Text [] rest | [] -> usage ()
  in
  if roots = [] then usage ();
  List.iter
    (fun r ->
      if not (Sys.file_exists r && Sys.is_directory r) then begin
        Printf.eprintf "%s: not a directory: %s\n" tool r;
        exit 2
      end)
    roots;
  (fmt, roots)
