(* geacc_lint — stage 1 of the project analyzer: compiler-libs parse trees.
   Stage 2 (geacc_analyze) works on typedtrees; see that file and DESIGN.md
   §7. Shared span/suppression/report plumbing lives in Lint_core.

   Usage: geacc_lint [--format text|json] DIR...

   Walks every directory given on the command line, parses each [.ml]/[.mli]
   with the compiler's own parser and each [dune] file with a minimal sexp
   reader, and reports typed diagnostics with file:line:col spans:

   - [obj-magic]            any use of [Obj.magic], anywhere.
   - [poly-compare]         polymorphic structural comparison in the hot-path
                            libraries (lib/flow, lib/pqueue, lib/index): the
                            bare [compare]/[Stdlib.compare], or [=]/[<>]
                            applied to a syntactically non-scalar operand
                            (constructor application, tuple, record, list,
                            string/float literal, [infinity]/[nan]).
   - [missing-mli]          a [lib/**/*.ml] without a sibling [.mli].
   - [partial-raise]        [failwith]/[assert false] in library code.
   - [dune-unused-dep]      a [(libraries ...)] entry whose module is never
                            referenced by the stanza's own modules.
   - [dune-undeclared-dep]  a referenced module that belongs to a known
                            library the stanza does not declare.
   - [parse-error]          a file the compiler's parser rejects.

   A diagnostic is suppressed when the offending line, or the line above it,
   carries the tag [lint: ok] inside a comment. Directories named [_build],
   [.git] or [fixtures] are skipped, so cram tests can lay out deliberately
   broken trees. Exit status: 0 clean, 1 diagnostics reported, 2 usage. *)

let hot_path_markers = [ "lib/flow/"; "lib/pqueue/"; "lib/index/" ]
let suppression_tags = [ "lint" ]

type rule =
  | Obj_magic
  | Poly_compare
  | Missing_mli
  | Partial_raise
  | Dune_unused_dep
  | Dune_undeclared_dep
  | Parse_error

let rule_id = function
  | Obj_magic -> "obj-magic"
  | Poly_compare -> "poly-compare"
  | Missing_mli -> "missing-mli"
  | Partial_raise -> "partial-raise"
  | Dune_unused_dep -> "dune-unused-dep"
  | Dune_undeclared_dep -> "dune-undeclared-dep"
  | Parse_error -> "parse-error"

module StringSet = Set.Make (String)

(* ---------- file discovery ---------- *)

let skip_dir name =
  List.exists (String.equal name) [ "_build"; "fixtures" ]
  || (String.length name > 0 && name.[0] = '.')

let is_hot_path path =
  List.exists (Lint_core.contains_marker path) hot_path_markers

let is_lib_code path = Lint_core.has_segment path "lib"

(* ---------- AST scan ---------- *)

let rec longident_root = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> longident_root l
  | Longident.Lapply (l, _) -> longident_root l

let is_module_root s =
  String.length s > 0 && Char.uppercase_ascii s.[0] = s.[0]
  && Char.lowercase_ascii s.[0] <> s.[0]

(* Operands whose comparison with [=] is structural on a non-scalar (or a
   float, where [Float.equal]/[Float.compare] is wanted anyway). *)
let composite_operand (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct (_, Some _) -> true
  | Pexp_tuple _ -> true
  | Pexp_record _ -> true
  | Pexp_array _ -> true
  | Pexp_constant (Pconst_string _) -> true
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Lident ("infinity" | "neg_infinity" | "nan"); _ } ->
      true
  | _ -> false

type scan_ctx = {
  sc_file : string;
  sc_lines : string array;
  sc_hot : bool;
  sc_lib : bool;
  mutable sc_refs : StringSet.t;
  mutable sc_diags : Lint_core.diagnostic list;
}

let report ctx (loc : Location.t) rule message =
  let p = loc.loc_start in
  let line = p.pos_lnum and col = p.pos_cnum - p.pos_bol in
  if not (Lint_core.suppressed ~tags:suppression_tags ctx.sc_lines line) then
    ctx.sc_diags <-
      { Lint_core.file = ctx.sc_file; line; col; rule = rule_id rule; message }
      :: ctx.sc_diags

let record_ref ctx lid =
  let root = longident_root lid in
  if is_module_root root then ctx.sc_refs <- StringSet.add root ctx.sc_refs

let scan_iterator ctx =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        record_ref ctx txt;
        match txt with
        | Ldot (Lident "Obj", "magic") ->
            report ctx loc Obj_magic "Obj.magic defeats the type system"
        | Lident "compare" | Ldot (Lident "Stdlib", "compare") ->
            if ctx.sc_hot then
              report ctx loc Poly_compare
                "polymorphic compare in a hot path; use a monomorphic \
                 comparison (Int.compare, Float.compare, ...)"
        | Lident "failwith" | Ldot (Lident "Stdlib", "failwith") ->
            if ctx.sc_lib then
              report ctx loc Partial_raise
                "failwith in library code; return a result or tag the line \
                 with (* lint: ok *)"
        | _ -> ())
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc };
            _ },
          args )
      when ctx.sc_hot && List.exists (fun (_, a) -> composite_operand a) args
      ->
        report ctx loc Poly_compare
          (Printf.sprintf
             "polymorphic (%s) on a non-scalar operand in a hot path; use a \
              monomorphic equality"
             op)
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        if ctx.sc_lib then
          report ctx e.pexp_loc Partial_raise
            "assert false in library code; make the case impossible or tag \
             the line with (* lint: ok *)"
    | Pexp_construct ({ txt; _ }, _) -> record_ref ctx txt
    | _ -> ());
    default_iterator.expr it e
  in
  let pat it (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, _) -> record_ref ctx txt
    | _ -> ());
    default_iterator.pat it p
  in
  let typ it (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> record_ref ctx txt
    | _ -> ());
    default_iterator.typ it t
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; _ } -> record_ref ctx txt
    | _ -> ());
    default_iterator.module_expr it m
  in
  let module_type it (m : Parsetree.module_type) =
    (match m.pmty_desc with
    | Pmty_ident { txt; _ } -> record_ref ctx txt
    | _ -> ());
    default_iterator.module_type it m
  in
  let open_description it (o : Parsetree.open_description) =
    record_ref ctx o.popen_expr.txt;
    default_iterator.open_description it o
  in
  {
    default_iterator with
    expr;
    pat;
    typ;
    module_expr;
    module_type;
    open_description;
  }

let scan_source path =
  let content, lines = Lint_core.read_lines path in
  let ctx =
    {
      sc_file = path;
      sc_lines = lines;
      sc_hot = is_hot_path path;
      sc_lib = is_lib_code path;
      sc_refs = StringSet.empty;
      sc_diags = [];
    }
  in
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf path;
  (try
     let it = scan_iterator ctx in
     if Filename.check_suffix path ".mli" then
       it.signature it (Parse.interface lexbuf)
     else it.structure it (Parse.implementation lexbuf)
   with exn ->
     let line, col =
       match Location.error_of_exn exn with
       | Some (`Ok { Location.main = { loc; _ }; _ }) ->
           (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
       | _ -> (1, 0)
     in
     ctx.sc_diags <-
       { Lint_core.file = path; line; col; rule = rule_id Parse_error;
         message = "the compiler's parser rejects this file" }
       :: ctx.sc_diags);
  (ctx.sc_refs, ctx.sc_diags)

(* ---------- dune files: minimal sexp reader ---------- *)

type sexp = Atom of string * int | SList of sexp list * int

let parse_sexps content =
  let n = String.length content in
  let pos = ref 0 and line = ref 1 in
  let peek () = if !pos < n then Some content.[!pos] else None in
  let advance () =
    if !pos < n then begin
      if content.[!pos] = '\n' then incr line;
      incr pos
    end
  in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blank ()
    | Some ';' ->
        let rec to_eol () =
          match peek () with
          | Some '\n' | None -> ()
          | Some _ ->
              advance ();
              to_eol ()
        in
        to_eol ();
        skip_blank ()
    | _ -> ()
  in
  let read_string () =
    let b = Buffer.create 16 in
    advance () (* opening quote *);
    let rec go () =
      match peek () with
      | None -> ()
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char b c;
              advance ()
          | None -> ());
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let read_atom () =
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';') | None -> ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec read_one () =
    skip_blank ();
    match peek () with
    | None -> None
    | Some '(' ->
        let l = !line in
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_blank ();
          match peek () with
          | Some ')' -> advance ()
          | None -> ()
          | Some _ -> (
              match read_one () with
              | Some s ->
                  items := s :: !items;
                  items_loop ()
              | None -> ())
        in
        items_loop ();
        Some (SList (List.rev !items, l))
    | Some ')' ->
        advance ();
        read_one ()
    | Some '"' ->
        let l = !line in
        Some (Atom (read_string (), l))
    | Some _ ->
        let l = !line in
        Some (Atom (read_atom (), l))
  in
  let rec all acc =
    match read_one () with None -> List.rev acc | Some s -> all (s :: acc)
  in
  all []

type stanza = {
  st_dir : string;
  st_file : string;
  st_line : int;
  st_kind : string;
  st_name : string option;       (* (name ...) for libraries *)
  st_libraries : (string * int) list;
  st_modules : string list option;  (* None = all modules in the directory *)
}

let field_atoms = function
  | SList (Atom (_, _) :: rest, _) ->
      List.filter_map
        (function
          | Atom (a, l) -> Some (a, l)
          | SList (Atom ("re_export", _) :: Atom (a, l) :: _, _) -> Some (a, l)
          | SList _ -> None)
        rest
  | _ -> []

let find_field fields key =
  List.find_opt
    (function SList (Atom (k, _) :: _, _) -> String.equal k key | _ -> false)
    fields

let stanzas_of_dune path =
  let content, _ = Lint_core.read_lines path in
  let dir = Filename.dirname path in
  List.filter_map
    (function
      | SList (Atom (kind, _) :: fields, line)
        when List.exists (String.equal kind)
               [ "library"; "executable"; "executables"; "test"; "tests" ] ->
          let name =
            match find_field fields "name" with
            | Some (SList (_ :: Atom (n, _) :: _, _)) -> Some n
            | _ -> None
          in
          let libraries =
            match find_field fields "libraries" with
            | Some f ->
                List.filter
                  (fun (a, _) -> String.length a > 0 && a.[0] <> ':')
                  (field_atoms f)
            | None -> []
          in
          let modules =
            match find_field fields "modules" with
            | Some f ->
                let atoms = List.map fst (field_atoms f) in
                if List.exists (fun a -> String.length a > 0 && a.[0] = ':') atoms
                then None
                else Some atoms
            | None -> None
          in
          Some
            {
              st_dir = dir;
              st_file = path;
              st_line = line;
              st_kind = kind;
              st_name = name;
              st_libraries = libraries;
              st_modules = modules;
            }
      | _ -> None)
    (parse_sexps content)

(* ---------- dune dependency cross-check ---------- *)

(* External libraries this project may pull in, keyed by the top module they
   expose. Internal geacc libraries are discovered from the scanned dune
   stanzas, so fixture trees with fresh library names work too. *)
let external_lib_modules =
  [
    ("fmt", "Fmt");
    ("fmt.tty", "Fmt_tty");
    ("fmt.cli", "Fmt_cli");
    ("logs", "Logs");
    ("logs.fmt", "Logs_fmt");
    ("logs.cli", "Logs_cli");
    ("cmdliner", "Cmdliner");
    ("alcotest", "Alcotest");
    ("qcheck-core", "QCheck");
    ("qcheck-alcotest", "QCheck_alcotest");
    ("bechamel", "Bechamel");
    ("unix", "Unix");
  ]

(* Libraries that are legitimate dependencies without any module reference
   (runtime/linking requirements). *)
let unused_allowlist = [ "threads.posix" ]

let lib_module_table stanzas =
  let discovered =
    List.filter_map
      (fun s ->
        match (s.st_kind, s.st_name) with
        | "library", Some n -> Some (n, String.capitalize_ascii n)
        | _ -> None)
      stanzas
  in
  discovered @ external_lib_modules

let check_stanza table files refs_of_file stanza =
  let dir_files =
    List.filter
      (fun f ->
        String.equal (Filename.dirname f) stanza.st_dir
        && (Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"))
      files
  in
  let selected =
    match stanza.st_modules with
    | None -> dir_files
    | Some mods ->
        let wanted =
          List.map (fun m -> String.lowercase_ascii m) mods
        in
        List.filter
          (fun f ->
            let base =
              String.lowercase_ascii (Filename.remove_extension (Filename.basename f))
            in
            List.exists (String.equal base) wanted)
          dir_files
  in
  let refs =
    List.fold_left
      (fun acc f -> StringSet.union acc (refs_of_file f))
      StringSet.empty selected
  in
  let own_module =
    match stanza.st_name with
    | Some n -> Some (String.capitalize_ascii n)
    | None -> None
  in
  let diag line rule message =
    { Lint_core.file = stanza.st_file; line; col = 0; rule = rule_id rule;
      message }
  in
  let unused =
    List.filter_map
      (fun (lib, line) ->
        if List.exists (String.equal lib) unused_allowlist then None
        else
          match List.assoc_opt lib table with
          | Some m when not (StringSet.mem m refs) ->
              Some
                (diag line Dune_unused_dep
                   (Printf.sprintf
                      "library %s is declared but module %s is never \
                       referenced by this stanza"
                      lib m))
          | _ -> None)
      stanza.st_libraries
  in
  let declared = List.map fst stanza.st_libraries in
  let undeclared =
    StringSet.fold
      (fun m acc ->
        if Some m = own_module then acc
        else
          match
            List.find_opt (fun (_, m') -> String.equal m m') table
          with
          | Some (lib, _) when not (List.exists (String.equal lib) declared)
            ->
              diag stanza.st_line Dune_undeclared_dep
                (Printf.sprintf
                   "module %s is referenced but library %s is not declared in \
                    (libraries ...)"
                   m lib)
              :: acc
          | _ -> acc)
      refs []
  in
  unused @ undeclared

(* ---------- missing .mli ---------- *)

let check_missing_mli files =
  List.filter_map
    (fun f ->
      if
        Filename.check_suffix f ".ml"
        && is_lib_code f
        && not (List.exists (String.equal (f ^ "i")) files)
      then
        Some
          {
            Lint_core.file = f;
            line = 1;
            col = 0;
            rule = rule_id Missing_mli;
            message =
              "library module without an interface; add a matching .mli";
          }
      else None)
    files

(* ---------- driver ---------- *)

let () =
  let rules =
    List.map rule_id
      [
        Obj_magic; Poly_compare; Missing_mli; Partial_raise; Dune_unused_dep;
        Dune_undeclared_dep; Parse_error;
      ]
  in
  let format, roots = Lint_core.parse_argv ~tool:"geacc_lint" ~rules Sys.argv in
  let files = List.concat_map (fun r -> Lint_core.walk ~skip_dir r []) roots in
  let sources =
    List.filter
      (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
      files
  in
  let dune_files =
    List.filter (fun f -> String.equal (Filename.basename f) "dune") files
  in
  let refs_tbl = Hashtbl.create 64 in
  let source_diags =
    List.concat_map
      (fun f ->
        let refs, diags = scan_source f in
        Hashtbl.replace refs_tbl f refs;
        diags)
      sources
  in
  let refs_of_file f =
    match Hashtbl.find_opt refs_tbl f with
    | Some r -> r
    | None -> StringSet.empty
  in
  let stanzas = List.concat_map stanzas_of_dune dune_files in
  let table = lib_module_table stanzas in
  let dune_diags =
    List.concat_map (check_stanza table sources refs_of_file) stanzas
  in
  let diags = source_diags @ dune_diags @ check_missing_mli sources in
  exit (Lint_core.emit ~format ~tool:"geacc_lint" diags)
