(* geacc_effects — stage 3 of the project analyzer: interprocedural effect
   pass over typedtree (.cmt) artifacts.

   Usage: geacc_effects [--format text|json] DIR...

   Stage 1 (geacc_lint) checks surface hygiene, stage 2 (geacc_analyze)
   checks per-expression properties inside hot loops. This stage computes a
   per-function *effect summary* — writes-shared-mutable,
   reads-nondeterminism-source, polls-budget, raises, allocates-in-loop —
   and closes it over the project call graph with a bounded fixpoint, then
   enforces the three contracts PRs 3–5 introduced in prose:

   - [par-shared-write]    (R) a chunk body passed to [parallel_for] /
                           [parallel_map_chunked] / [parallel_reduce] writes
                           captured mutable state — a ref / record field /
                           Bytes / Bigarray it did not create inside the
                           chunk, or (transitively) module-level mutable
                           state. Per-index writes into a captured array are
                           the pool's sanctioned output pattern and stay
                           allowed.
   - [par-nondet]          (R) a chunk body observes an ambient
                           nondeterminism source: the global Random state,
                           the domain identity, wall clocks, std-channel
                           output, hashtable iteration order, or physical
                           equality on a boxed type — directly or through a
                           callee (clocks and hashtable iteration are
                           checked at the chunk itself only).
   - [poll-missing]        (P) an outermost while-loop or recursive function
                           under lib/core// lib/flow never reaches
                           [Budget.check] / [Budget.check_now] in its body's
                           call closure, so the loop cannot be cancelled by
                           a deadline.
   - [csr-mirror-write]    (T) a direct write to a [Graph.t] arc-store or
                           CSR-mirror field ([csr_cost], [csr_cap], [cap_],
                           ...) outside the trusted lib/flow + lib/check
                           modules, which would desynchronise the positional
                           mirror behind [Graph.push]'s back.
   - [suppress-no-reason]  a suppression tag with no justification text.
   - [cmt-error]           a [.cmt] the compiler's reader rejects.

   Suppression grammar (on the offending line or the line above):
     (* race: ok — <reason> *)    for par-shared-write / par-nondet
     (* poll: ok — <reason> *)    for poll-missing
     (* mirror: ok — <reason> *)  for csr-mirror-write
   The reason is mandatory; a bare tag reports suppress-no-reason instead.
   Exit status: 0 clean, 1 diagnostics reported, 2 usage. *)

(* ---------- scopes ---------- *)

(* (P) is scoped to the solver kernels that own deadlines; (T) trusts the
   flow layer itself plus the audit layer (which corrupts deliberately). *)
let poll_markers = [ "lib/core/"; "lib/flow/" ]
let mirror_trusted_markers = [ "lib/flow/"; "lib/check/" ]

let in_poll_scope path =
  List.exists (Lint_core.contains_marker path) poll_markers

let mirror_trusted path =
  List.exists (Lint_core.contains_marker path) mirror_trusted_markers

(* Fields of Graph.t whose coherence Graph.push / reset_flow maintain: the
   arc store and its positional CSR mirror. *)
let graph_protected_fields =
  [
    "next"; "dst_"; "cap_"; "initial_cap"; "cost_"; "count";
    "csr_count"; "csr_offset"; "csr_dst"; "csr_cost"; "csr_cap";
    "csr_arc"; "arc_pos";
  ]

(* ---------- diagnostics ---------- *)

let diags : Lint_core.diagnostic list ref = ref []

let lines_cache : (string, string array) Hashtbl.t = Hashtbl.create 32

let source_lines file =
  match Hashtbl.find_opt lines_cache file with
  | Some l -> l
  | None ->
      let l = try snd (Lint_core.read_lines file) with Sys_error _ -> [||] in
      Hashtbl.replace lines_cache file l;
      l

let tag_of_rule = function
  | "par-shared-write" | "par-nondet" -> "race"
  | "poll-missing" -> "poll"
  | "csr-mirror-write" -> "mirror"
  | rule -> rule

let report (loc : Location.t) rule message =
  if not loc.loc_ghost then begin
    let p = loc.loc_start in
    let line = p.pos_lnum and col = p.pos_cnum - p.pos_bol in
    let add rule message =
      diags :=
        { Lint_core.file = p.pos_fname; line; col; rule; message } :: !diags
    in
    let tag = tag_of_rule rule in
    match
      Lint_core.reasoned_tag_status ~tag (source_lines p.pos_fname) line
    with
    | Lint_core.Tag_with_reason -> ()
    | Lint_core.Tag_without_reason ->
        add "suppress-no-reason"
          (Printf.sprintf
             "suppression tag \"%s: ok\" carries no reason; write (* %s: ok \
              — <why this is sound> *)"
             tag tag)
    | Lint_core.No_tag -> add rule message
  end

(* ---------- module / path naming (shared shape with geacc_analyze) ----- *)

let norm_unit m =
  let n = String.length m in
  let rec find i =
    if i < 0 then None
    else if m.[i] = '_' && m.[i + 1] = '_' then Some (i + 2)
    else find (i - 1)
  in
  match if n < 2 then None else find (n - 2) with
  | Some i -> String.sub m i (n - i)
  | None -> m

let ref_target ~unit_name ~aliases path =
  match path with
  | Path.Pident id -> Some (unit_name, Ident.name id)
  | Path.Pdot (m, name) ->
      let base = norm_unit (Path.last m) in
      let base =
        match Hashtbl.find_opt aliases base with
        | Some real -> real
        | None -> base
      in
      Some (base, name)
  | _ -> None

(* ---------- effect summaries ---------- *)

(* Effects are tracked at top-level definitions; nested closures fold into
   the enclosing definition's summary. [d_*] fields are direct effects from
   this definition's own body, [t_*] the transitive closure over project
   callees, each holding the *root* definition responsible plus a human
   description, so diagnostics can name the end of the chain. *)
type def = {
  mutable d_refs : (string * string) list;
  mutable d_write : string option;
  mutable d_nondet : string option;
  mutable d_polls : bool;
  mutable d_raises : bool;
  mutable d_alloc_loop : bool;
  mutable t_write : ((string * string) * string) option;
  mutable t_nondet : ((string * string) * string) option;
  mutable t_polls : bool;
  mutable t_raises : bool;
}

let defs : (string * string, def) Hashtbl.t = Hashtbl.create 256

(* Ambient nondeterminism observed through a resolved (module, name) call.
   These propagate through the call graph: a chunk body inherits them from
   any project function it reaches. *)
let nondet_source = function
  | ( "Random",
      ( "self_init" | "init" | "full_init" | "bits" | "int" | "full_int"
      | "int32" | "int64" | "nativeint" | "float" | "bool" | "bits32"
      | "bits64" ) ) ->
      Some "uses the global Random state"
  | "Domain", ("self" | "is_main_domain") -> Some "reads the domain identity"
  | ("Printf" | "Format"), ("printf" | "eprintf") ->
      Some "writes to the process std channels"
  | ( "Stdlib",
      ( "print_string" | "print_bytes" | "print_int" | "print_float"
      | "print_char" | "print_endline" | "print_newline" | "prerr_string"
      | "prerr_bytes" | "prerr_int" | "prerr_float" | "prerr_char"
      | "prerr_endline" | "prerr_newline" ) ) ->
      Some "writes to the process std channels"
  | _ -> None

(* Clock reads and hashtable iteration are flagged only when they appear in
   the chunk body itself: transitively every measurement harness reads the
   clock by design, and hashtable iteration over a callee's own local table
   is reproducible. *)
let clock_source = function
  | "Sys", "time" | "Unix", ("gettimeofday" | "time") -> true
  | _ -> false

let hashtbl_iteration = function
  | "Hashtbl", ("iter" | "fold") -> true
  | _ -> false

let hashtbl_mutator = function
  | ( "Hashtbl",
      ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace")
    ) ->
      true
  | _ -> false

let budget_poll = function
  | "Budget", ("check" | "check_now") -> true
  | _ -> false

let raising_call = function
  | "Stdlib", ("raise" | "raise_notrace" | "failwith" | "invalid_arg") -> true
  | _ -> false

(* Mutation primitives, by what they write. Array stores are deliberately
   absent from the violation classes: writing a captured array at the
   chunk's own indices is the pool's sanctioned output pattern (kd-tree
   build, bench grids), and index ownership is not statically decidable
   here. *)
let ref_write_prims = [ "%setfield0"; "%incr"; "%decr" ]
let bytes_write_prims = [ "%bytes_safe_set"; "%bytes_unsafe_set" ]
let array_write_prims =
  [
    "%array_safe_set"; "%array_unsafe_set"; "%floatarray_safe_set";
    "%floatarray_unsafe_set";
  ]

let bigarray_write_prim name =
  String.length name >= 13 && String.sub name 0 13 = "%caml_ba_set_"
  || String.length name >= 20 && String.sub name 0 20 = "%caml_ba_unsafe_set_"

let raise_prims = [ "%raise"; "%reraise"; "%raise_notrace" ]

(* ---------- typedtree helpers ---------- *)

let parallel_combinators =
  [ "parallel_for"; "parallel_map_chunked"; "parallel_reduce" ]

let is_parallel_combinator (f : Typedtree.expression) =
  match f.exp_desc with
  | Typedtree.Texp_ident (path, _, _) ->
      List.exists (String.equal (Path.last path)) parallel_combinators
  | _ -> false

let combinator_name (f : Typedtree.expression) =
  match f.exp_desc with
  | Typedtree.Texp_ident (path, _, _) -> Path.last path
  | _ -> "parallel combinator"

(* The head identifier of a write target: [a.b.(i).c <- e] writes through
   [a]. [Head_remote] is a cross-module access — module-level mutable state
   by construction; [Head_opaque] a computed target we cannot attribute
   (skipped: precision over recall). *)
type head = Head_local of Ident.t | Head_remote of string | Head_opaque

let rec write_head (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> Head_local id
  | Typedtree.Texp_ident (p, _, _) -> Head_remote (Path.name p)
  | Typedtree.Texp_field (b, _, _) -> write_head b
  | Typedtree.Texp_apply
      ( {
          exp_desc =
            Typedtree.Texp_ident
              ( _,
                _,
                {
                  val_kind =
                    Types.Val_prim
                      {
                        Primitive.prim_name =
                          "%array_safe_get" | "%array_unsafe_get" | "%field0";
                        _;
                      };
                  _;
                } );
          _;
        },
        (_, Some a) :: _ ) ->
      write_head a
  | _ -> Head_opaque

let head_display = function
  | Head_local id -> Ident.name id
  | Head_remote name -> name
  | Head_opaque -> "<computed>"

(* Physical equality only tells on boxed values; on immediates it is just
   [=]. *)
let immediate_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      List.exists (Path.same p)
        [ Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit ]
  | _ -> false

let cmp_arg_type fn_ty =
  match Types.get_desc fn_ty with
  | Types.Tarrow (_, t1, _, _) -> Some t1
  | _ -> None

let is_graph_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (Path.Pdot (m, _), _, _) ->
      String.equal (norm_unit (Path.last m)) "Graph"
  | _ -> false

(* ---------- per-cmt scan state ---------- *)

(* A chunk context is one function literal passed to a pool combinator; its
   table holds every identifier bound inside the chunk (its parameters and
   local lets) — anything else the body touches is captured. *)
type chunk_ctx = {
  c_comb : string;
  c_locals : (string, unit) Hashtbl.t; (* Ident.unique_name *)
}

(* A poll-coverage obligation: one while-loop or one recursive binding
   group. Compliance is resolved after the fixpoint, so a loop may satisfy
   (P) through any project function it references. *)
type loop_rec = {
  l_loc : Location.t;
  l_file : string;
  l_start : int;
  l_end : int;
  l_kind : string;
  mutable l_poll : bool;
  mutable l_callees : (string * string) list;
}

(* A project call made from inside a chunk body, checked against the
   callee's transitive summary after the fixpoint. *)
type chunk_call = {
  cc_target : string * string;
  cc_site : Location.t;
  cc_comb : string;
}

let loops : loop_rec list ref = ref []
let chunk_calls : chunk_call list ref = ref []

type scan_state = {
  ss_unit : string;
  ss_aliases : (string, string) Hashtbl.t;
  mutable ss_def : def option;
  mutable ss_def_locals : (string, unit) Hashtbl.t;
  mutable ss_chunks : chunk_ctx list; (* innermost first *)
  mutable ss_loops : loop_rec list; (* open loops, innermost first *)
  mutable ss_loop_depth : int; (* while/for/rec nesting, for alloc bit *)
}

let st_target st path =
  ref_target ~unit_name:st.ss_unit ~aliases:st.ss_aliases path

let bind_ident st id =
  let key = Ident.unique_name id in
  Hashtbl.replace st.ss_def_locals key ();
  match st.ss_chunks with
  | c :: _ -> Hashtbl.replace c.c_locals key ()
  | [] -> ()

let chunk_local st id =
  match st.ss_chunks with
  | c :: _ -> Hashtbl.mem c.c_locals (Ident.unique_name id)
  | [] -> true

let def_local st id = Hashtbl.mem st.ss_def_locals (Ident.unique_name id)

let set_def_write st desc =
  match st.ss_def with
  | Some d when d.d_write = None -> d.d_write <- Some desc
  | _ -> ()

let set_def_nondet st desc =
  match st.ss_def with
  | Some d when d.d_nondet = None -> d.d_nondet <- Some desc
  | _ -> ()

let set_def_polls st =
  match st.ss_def with Some d -> d.d_polls <- true | None -> ()

let set_def_raises st =
  match st.ss_def with Some d -> d.d_raises <- true | None -> ()

let note_loop_poll st =
  List.iter (fun l -> l.l_poll <- true) st.ss_loops

let note_callee st key =
  (match st.ss_def with
  | Some d -> if not (List.mem key d.d_refs) then d.d_refs <- key :: d.d_refs
  | None -> ());
  List.iter
    (fun l -> if not (List.mem key l.l_callees) then l.l_callees <- key :: l.l_callees)
    st.ss_loops

let in_chunk st = st.ss_chunks <> []

(* ---------- the three rule families, at one expression ---------- *)

(* (T) fires on any untrusted write through a Graph.t protected field,
   whether as a record-field store or an element store into the field's
   array. *)
let check_mirror_setfield (recd : Typedtree.expression) lbl_name loc =
  if
    List.exists (String.equal lbl_name) graph_protected_fields
    && is_graph_type recd.exp_type
    && not (mirror_trusted loc.Location.loc_start.Lexing.pos_fname)
  then
    report loc "csr-mirror-write"
      (Printf.sprintf
         "direct write through Graph.%s outside lib/flow//lib/check \
          desynchronises the CSR positional mirror; go through Graph.push / \
          reset_flow or the audit layer"
         lbl_name)

let check_mirror_array_store (arr : Typedtree.expression) loc =
  match arr.exp_desc with
  | Typedtree.Texp_field (recd, _, lbl) ->
      check_mirror_setfield recd lbl.Types.lbl_name loc
  | _ -> ()

(* (R), direct form: a mutation primitive inside a chunk body whose target
   was not bound inside the chunk. *)
let check_chunk_write st ~what target loc =
  match target with
  | Head_local id when chunk_local st id -> ()
  | h ->
      let comb =
        match st.ss_chunks with c :: _ -> c.c_comb | [] -> "parallel chunk"
      in
      report loc "par-shared-write"
        (Printf.sprintf
           "the chunk body passed to %s writes %s (%s) it captured; chunks \
            may only write chunk-local state or their own cells of a shared \
            array"
           comb what (head_display h))

let check_chunk_nondet st desc loc =
  let comb =
    match st.ss_chunks with c :: _ -> c.c_comb | [] -> "parallel chunk"
  in
  report loc "par-nondet"
    (Printf.sprintf
       "the chunk body passed to %s %s; chunk results must be a function of \
        the chunk index alone"
       comb desc)

(* ---------- scan ---------- *)

let scan_structure ~unit_name str =
  let st =
    {
      ss_unit = unit_name;
      ss_aliases = Hashtbl.create 8;
      ss_def = None;
      ss_def_locals = Hashtbl.create 64;
      ss_chunks = [];
      ss_loops = [];
      ss_loop_depth = 0;
    }
  in
  List.iter
    (fun (si : Typedtree.structure_item) ->
      match si.str_desc with
      | Tstr_module
          { mb_id = Some id; mb_expr = { mod_desc = Tmod_ident (p, _); _ }; _ }
        ->
          Hashtbl.replace st.ss_aliases (Ident.name id)
            (norm_unit (Path.last p))
      | _ -> ())
    str.Typedtree.str_items;
  let open Tast_iterator in
  (* Walk a binding group as one poll obligation when any right-hand side is
     a function: the group recursion is the loop. *)
  let rec_group it (vbs : Typedtree.value_binding list) =
    let is_fun (vb : Typedtree.value_binding) =
      match vb.vb_expr.exp_desc with
      | Typedtree.Texp_function _ -> true
      | _ -> false
    in
    let file =
      match vbs with
      | vb :: _ -> vb.vb_loc.loc_start.pos_fname
      | [] -> ""
    in
    let wrap body =
      if List.exists is_fun vbs && in_poll_scope file then begin
        let start =
          List.fold_left
            (fun acc (vb : Typedtree.value_binding) ->
              Stdlib.min acc vb.vb_loc.loc_start.pos_cnum)
            max_int vbs
        and stop =
          List.fold_left
            (fun acc (vb : Typedtree.value_binding) ->
              Stdlib.max acc vb.vb_loc.loc_end.pos_cnum)
            min_int vbs
        in
        let names =
          String.concat "/"
            (List.filter_map
               (fun (vb : Typedtree.value_binding) ->
                 match vb.vb_pat.pat_desc with
                 | Typedtree.Tpat_var (id, _) -> Some (Ident.name id)
                 | _ -> None)
               vbs)
        in
        let l =
          {
            l_loc = (List.hd vbs).vb_loc;
            l_file = file;
            l_start = start;
            l_end = stop;
            l_kind = Printf.sprintf "recursive function %s" names;
            l_poll = false;
            l_callees = [];
          }
        in
        loops := l :: !loops;
        st.ss_loops <- l :: st.ss_loops;
        st.ss_loop_depth <- st.ss_loop_depth + 1;
        body ();
        st.ss_loop_depth <- st.ss_loop_depth - 1;
        st.ss_loops <- List.tl st.ss_loops
      end
      else body ()
    in
    wrap (fun () ->
        List.iter (fun vb -> default_iterator.value_binding it vb) vbs)
  in
  let pat : type k. iterator -> k Typedtree.general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Typedtree.Tpat_var (id, _) -> bind_ident st id
    | Typedtree.Tpat_alias (_, id, _) -> bind_ident st id
    | _ -> ());
    default_iterator.pat it p
  in
  let expr it (e : Typedtree.expression) =
    (* Effects and edges carried by a bare identifier reference. *)
    (match e.exp_desc with
    | Texp_ident (path, _, vd) -> (
        match st_target st path with
        | None -> ()
        | Some key ->
            (* Externals (Val_prim) are classified — Sys.time and
               Unix.gettimeofday are externals — but never become call-graph
               edges: a primitive has no project summary to propagate. *)
            let is_prim =
              match vd.Types.val_kind with
              | Types.Val_prim _ -> true
              | _ -> false
            in
            if not is_prim then begin
              (match path with
              | Path.Pident id when def_local st id -> ()
              | _ -> note_callee st key);
              if budget_poll key then begin
                set_def_polls st;
                note_loop_poll st
              end;
              if raising_call key then set_def_raises st
            end;
            (match nondet_source key with
            | Some desc ->
                set_def_nondet st desc;
                if in_chunk st then check_chunk_nondet st desc e.exp_loc
            | None -> ());
            if in_chunk st then begin
              if clock_source key then
                check_chunk_nondet st "reads a wall clock" e.exp_loc;
              if hashtbl_iteration key then
                check_chunk_nondet st
                  "iterates a hashtable (unspecified order)" e.exp_loc;
              if
                (not is_prim)
                && not
                     (budget_poll key || clock_source key
                    || hashtbl_iteration key)
              then
                chunk_calls :=
                  {
                    cc_target = key;
                    cc_site = e.exp_loc;
                    cc_comb =
                      (match st.ss_chunks with
                      | c :: _ -> c.c_comb
                      | [] -> "parallel chunk");
                  }
                  :: !chunk_calls
            end)
    | _ -> ());
    (* Allocation-in-loop summary bit (informational; geacc_analyze owns the
       per-site diagnostics). *)
    (if st.ss_loop_depth > 0 then
       match e.exp_desc with
       | Texp_tuple _ | Texp_record _ | Texp_array (_ :: _) | Texp_function _
       | Texp_lazy _ ->
           (match st.ss_def with
           | Some d -> d.d_alloc_loop <- true
           | None -> ())
       | _ -> ());
    match e.exp_desc with
    | Texp_setfield (recd, _, lbl, v) ->
        check_mirror_setfield recd lbl.Types.lbl_name e.exp_loc;
        let head = write_head recd in
        (match head with
        | Head_local id when def_local st id -> ()
        | h ->
            set_def_write st
              (Printf.sprintf "writes the mutable field %s.%s"
                 (head_display h) lbl.Types.lbl_name));
        if in_chunk st then
          check_chunk_write st
            ~what:(Printf.sprintf "the record field %s" lbl.Types.lbl_name)
            head e.exp_loc;
        it.expr it recd;
        it.expr it v
    | Texp_apply
        ( ({
             exp_desc =
               Texp_ident (_, _, { val_kind = Types.Val_prim prim; _ });
             exp_type;
             _;
           } as f),
          args ) ->
        let name = prim.Primitive.prim_name in
        let first_arg =
          match args with (_, Some a) :: _ -> Some a | _ -> None
        in
        (match first_arg with
        | Some a when List.mem name ref_write_prims ->
            let head = write_head a in
            (match head with
            | Head_local id when def_local st id -> ()
            | h ->
                set_def_write st
                  (Printf.sprintf "writes the ref %s" (head_display h)));
            if in_chunk st then
              check_chunk_write st ~what:"the ref" head e.exp_loc
        | Some a when List.mem name bytes_write_prims ->
            if in_chunk st then
              check_chunk_write st ~what:"the Bytes buffer" (write_head a)
                e.exp_loc
        | Some a when bigarray_write_prim name ->
            if in_chunk st then
              check_chunk_write st ~what:"the Bigarray" (write_head a)
                e.exp_loc
        | Some a when List.mem name array_write_prims ->
            check_mirror_array_store a e.exp_loc
        | _ -> ());
        (match name with
        | "%eq" | "%noteq" when in_chunk st -> (
            match cmp_arg_type f.exp_type with
            | Some t when not (immediate_type t) ->
                check_chunk_nondet st
                  "compares boxed values physically (address identity)"
                  e.exp_loc
            | _ -> ())
        | _ -> ());
        if List.mem name raise_prims then set_def_raises st;
        ignore exp_type;
        it.expr it f;
        List.iter
          (fun ((_, a) : _ * Typedtree.expression option) ->
            match a with Some a -> it.expr it a | None -> ())
          args
    | Texp_apply
        ( ({ exp_desc = Texp_ident (path, _, { val_kind = Types.Val_reg; _ }); _ }
           as f),
          ((_, Some tbl) :: _ as args) )
      when (match st_target st path with
           | Some key -> hashtbl_mutator key
           | None -> false) ->
        (* Hashtbl mutation is a shared write exactly when the table itself
           is shared; a table the function (or chunk) made for itself is
           plain local state. *)
        let head = write_head tbl in
        (match head with
        | Head_local id when def_local st id -> ()
        | h ->
            set_def_write st
              (Printf.sprintf "mutates the hashtable %s" (head_display h)));
        if in_chunk st then
          check_chunk_write st ~what:"the hashtable" head e.exp_loc;
        it.expr it f;
        List.iter
          (fun ((_, a) : _ * Typedtree.expression option) ->
            match a with Some a -> it.expr it a | None -> ())
          args
    | Texp_apply (f, args) when is_parallel_combinator f ->
        it.expr it f;
        let comb = combinator_name f in
        List.iter
          (fun ((_, arg) : _ * Typedtree.expression option) ->
            match arg with
            | Some ({ exp_desc = Texp_function _; _ } as a) ->
                let ctx = { c_comb = comb; c_locals = Hashtbl.create 16 } in
                st.ss_chunks <- ctx :: st.ss_chunks;
                it.expr it a;
                st.ss_chunks <- List.tl st.ss_chunks
            | Some a -> it.expr it a
            | None -> ())
          args
    | Texp_while (cond, body) ->
        let file = e.exp_loc.loc_start.pos_fname in
        let with_loop body_f =
          if in_poll_scope file then begin
            let l =
              {
                l_loc = e.exp_loc;
                l_file = file;
                l_start = e.exp_loc.loc_start.pos_cnum;
                l_end = e.exp_loc.loc_end.pos_cnum;
                l_kind = "while loop";
                l_poll = false;
                l_callees = [];
              }
            in
            loops := l :: !loops;
            st.ss_loops <- l :: st.ss_loops;
            body_f ();
            st.ss_loops <- List.tl st.ss_loops
          end
          else body_f ()
        in
        st.ss_loop_depth <- st.ss_loop_depth + 1;
        with_loop (fun () ->
            it.expr it cond;
            it.expr it body);
        st.ss_loop_depth <- st.ss_loop_depth - 1
    | Texp_for (id, _, lo, hi, _, body) ->
        bind_ident st id;
        it.expr it lo;
        it.expr it hi;
        st.ss_loop_depth <- st.ss_loop_depth + 1;
        it.expr it body;
        st.ss_loop_depth <- st.ss_loop_depth - 1
    | Texp_let (Recursive, vbs, body) ->
        rec_group it vbs;
        it.expr it body
    | _ -> default_iterator.expr it e
  in
  let structure_item it (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_value (rf, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let name =
              match vb.vb_pat.pat_desc with
              | Typedtree.Tpat_var (id, _) -> Ident.name id
              | _ -> Printf.sprintf "(top:%d)" vb.vb_loc.loc_start.pos_lnum
            in
            let d =
              {
                d_refs = [];
                d_write = None;
                d_nondet = None;
                d_polls = false;
                d_raises = false;
                d_alloc_loop = false;
                t_write = None;
                t_nondet = None;
                t_polls = false;
                t_raises = false;
              }
            in
            if not (Hashtbl.mem defs (unit_name, name)) then
              Hashtbl.add defs (unit_name, name) d;
            let saved_def = st.ss_def and saved_locals = st.ss_def_locals in
            st.ss_def <- Some d;
            st.ss_def_locals <- Hashtbl.create 64;
            (match rf with
            | Asttypes.Recursive -> rec_group it [ vb ]
            | Asttypes.Nonrecursive -> it.expr it vb.vb_expr);
            st.ss_def <- saved_def;
            st.ss_def_locals <- saved_locals)
          vbs
    | _ -> default_iterator.structure_item it si
  in
  let it = { default_iterator with expr; pat; structure_item } in
  it.structure it str

let scan_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ ->
      diags :=
        {
          Lint_core.file = path;
          line = 1;
          col = 0;
          rule = "cmt-error";
          message = "the compiler's cmt reader rejects this file";
        }
        :: !diags
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          scan_structure ~unit_name:(norm_unit cmt.cmt_modname) str
      | _ -> ())

(* ---------- bounded interprocedural fixpoint ---------- *)

(* Propagates polls-budget, writes-shared and nondeterminism through the
   project call graph. The iteration count is bounded by the graph's
   longest acyclic chain; the explicit cap keeps a pathological (or
   adversarial) graph from stalling the build, at worst under-reporting
   transitive effects. *)
let fixpoint_bound = 64

let run_fixpoint () =
  let changed = ref true and iters = ref 0 in
  while !changed && !iters < fixpoint_bound do
    changed := false;
    incr iters;
    Hashtbl.iter
      (fun key d ->
        List.iter
          (fun callee ->
            match Hashtbl.find_opt defs callee with
            | None -> ()
            | Some c ->
                let c_write =
                  match c.d_write with
                  | Some desc -> Some (callee, desc)
                  | None -> c.t_write
                in
                if d.d_write = None && d.t_write = None && c_write <> None
                then begin
                  d.t_write <- c_write;
                  changed := true
                end;
                let c_nondet =
                  match c.d_nondet with
                  | Some desc -> Some (callee, desc)
                  | None -> c.t_nondet
                in
                if d.d_nondet = None && d.t_nondet = None && c_nondet <> None
                then begin
                  d.t_nondet <- c_nondet;
                  changed := true
                end;
                if (not d.t_polls) && (c.d_polls || c.t_polls) then begin
                  d.t_polls <- true;
                  changed := true
                end;
                if (not d.t_raises) && (c.d_raises || c.t_raises) then begin
                  d.t_raises <- true;
                  changed := true
                end)
          d.d_refs;
        ignore key)
      defs
  done

(* ---------- resolution: chunk calls (R, transitive) ---------- *)

let resolve_chunk_calls () =
  List.iter
    (fun cc ->
      match Hashtbl.find_opt defs cc.cc_target with
      | None -> ()
      | Some c ->
          let m, n = cc.cc_target in
          let via (rm, rn) =
            if String.equal rm m && String.equal rn n then
              Printf.sprintf "%s.%s" m n
            else Printf.sprintf "%s.%s (via %s.%s)" rm rn m n
          in
          (match
             match c.d_write with
             | Some desc -> Some ((m, n), desc)
             | None -> c.t_write
           with
          | Some (root, desc) ->
              report cc.cc_site "par-shared-write"
                (Printf.sprintf
                   "the chunk body passed to %s reaches %s, which %s; \
                    shared writes make the parallel region racy"
                   cc.cc_comb (via root) desc)
          | None -> ());
          match
            match c.d_nondet with
            | Some desc -> Some ((m, n), desc)
            | None -> c.t_nondet
          with
          | Some (root, desc) ->
              report cc.cc_site "par-nondet"
                (Printf.sprintf
                   "the chunk body passed to %s reaches %s, which %s; \
                    chunk results must be a function of the chunk index \
                    alone"
                   cc.cc_comb (via root) desc)
          | None -> ())
    !chunk_calls

(* ---------- resolution: poll coverage (P) ---------- *)

(* Only outermost obligations are examined: a loop nested inside another
   collected loop is covered by the outer loop's verdict (its poll, its tag,
   or its diagnostic). *)
let resolve_loops () =
  let all = !loops in
  let contains a b =
    (* strict containment, same file *)
    String.equal a.l_file b.l_file
    && a.l_start <= b.l_start && b.l_end <= a.l_end
    && (a.l_start < b.l_start || b.l_end < a.l_end)
  in
  List.iter
    (fun l ->
      let nested = List.exists (fun outer -> contains outer l) all in
      if not nested then begin
        let compliant =
          l.l_poll
          || List.exists
               (fun key ->
                 match Hashtbl.find_opt defs key with
                 | Some c -> c.d_polls || c.t_polls
                 | None -> false)
               l.l_callees
        in
        if not compliant then
          report l.l_loc "poll-missing"
            (Printf.sprintf
               "this %s never reaches Budget.check/check_now in its call \
                closure, so a deadline cannot cancel it; poll the budget or \
                tag (* poll: ok — <reason> *)"
               l.l_kind)
      end)
    all

(* ---------- debug summary dump ---------- *)

(* GEACC_EFFECTS_SUMMARY=1 prints the closed per-function lattice element —
   the full five-component summary, including the bits no rule consumes yet
   (raises, allocates-in-loop) — for rule debugging and for eyeballing what
   a future rule would see. *)
let dump_summaries () =
  let rows =
    Hashtbl.fold (fun (m, n) d acc -> ((m, n), d) :: acc) defs []
  in
  let rows =
    List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) rows
  in
  List.iter
    (fun ((m, n), d) ->
      let writes =
        match (d.d_write, d.t_write) with
        | Some w, _ -> "writes(" ^ w ^ ")"
        | None, Some ((rm, rn), _) ->
            Printf.sprintf "writes(via %s.%s)" rm rn
        | None, None -> "-"
      and nondet =
        match (d.d_nondet, d.t_nondet) with
        | Some s, _ -> "nondet(" ^ s ^ ")"
        | None, Some ((rm, rn), _) ->
            Printf.sprintf "nondet(via %s.%s)" rm rn
        | None, None -> "-"
      in
      Printf.eprintf "%s.%s: %s %s polls=%b raises=%b alloc_in_loop=%b\n" m n
        writes nondet
        (d.d_polls || d.t_polls)
        (d.d_raises || d.t_raises)
        d.d_alloc_loop)
    rows

(* ---------- driver ---------- *)

let () =
  let rules =
    [
      "par-shared-write"; "par-nondet"; "poll-missing"; "csr-mirror-write";
      "suppress-no-reason"; "cmt-error";
    ]
  in
  let format, roots =
    Lint_core.parse_argv ~tool:"geacc_effects" ~rules Sys.argv
  in
  let skip_dir name = String.equal name ".git" in
  let files = List.concat_map (fun r -> Lint_core.walk ~skip_dir r []) roots in
  let cmts =
    List.sort_uniq String.compare
      (List.filter (fun f -> Filename.check_suffix f ".cmt") files)
  in
  List.iter scan_cmt cmts;
  run_fixpoint ();
  (match Sys.getenv_opt "GEACC_EFFECTS_SUMMARY" with
  | Some "1" -> dump_summaries ()
  | _ -> ());
  resolve_chunk_calls ();
  resolve_loops ();
  let deduped = List.sort_uniq Stdlib.compare !diags in
  exit (Lint_core.emit ~format ~tool:"geacc_effects" deduped)
