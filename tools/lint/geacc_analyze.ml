(* geacc_analyze — stage 2 of the project analyzer: typedtree (.cmt) pass.

   Usage: geacc_analyze [--format text|json] DIR...

   Walks the given directories for [.cmt] files (dune writes them under
   [.objs/byte] / [.eobjs/byte]; [dune build @analyze] wires this up) and
   runs three rule families the parsetree stage (geacc_lint) cannot see,
   because they need types, resolved paths, or the cross-module view:

   - [hot-loop-alloc]     per-iteration allocation inside the hot loops —
                          [while]/[for] bodies, [let rec] function bodies
                          and [parallel_for]/[parallel_map_chunked]/
                          [parallel_reduce] chunk bodies (which run once per
                          chunk) of the hot-path modules (lib/flow,
                          lib/pqueue, lib/index/kd_tree, lib/par):
                          tuple/record/array/constructor
                          and polymorphic-variant blocks, closures, partial
                          applications, lazy blocks, ref cells, let-bound
                          floats boxed by a non-[@inline] call, and
                          polymorphic-compare uses whose instantiated type
                          the compiler cannot specialize.
   - [unsafe-reachable]   cross-module call-graph reachability: any
                          [unsafe_*] function reachable from code under
                          [lib/] or [bin/] outside [lib/check] (the audit
                          layer owns deliberate corruption; everything else
                          must go through checked APIs).
   - [missing-inline]     advisory: a definition of at most five lines is
                          called from a flagged hot loop but carries no
                          [@inline] (reported once, at the definition).
   - [cmt-error]          a [.cmt] the compiler's reader rejects.

   A diagnostic is suppressed by the tag [alloc: ok] in a comment on the
   offending line or the line above (the tag grammar is shared with
   geacc_lint's [lint: ok] — see Lint_core.suppressed). Exit status:
   0 clean, 1 diagnostics reported, 2 usage. *)

(* The hot-loop rule is scoped to the paper's inner-loop modules; the
   reachability rule is scoped to all library and binary code. *)
let hot_markers =
  [ "lib/flow/"; "lib/pqueue/"; "lib/index/kd_tree"; "lib/par/" ]
let scope_markers = [ "lib/"; "bin/" ]
let trusted_markers = [ "lib/check/" ]
let suppression_tags = [ "alloc" ]
let inline_advisory_max_lines = 5

let is_hot path = List.exists (Lint_core.contains_marker path) hot_markers
let in_scope path = List.exists (Lint_core.contains_marker path) scope_markers
let is_trusted path = List.exists (Lint_core.contains_marker path) trusted_markers
let is_unsafe_name name =
  String.length name >= 7 && String.equal (String.sub name 0 7) "unsafe_"

(* ---------- diagnostics ---------- *)

let diags : Lint_core.diagnostic list ref = ref []

let lines_cache : (string, string array) Hashtbl.t = Hashtbl.create 32

let source_lines file =
  match Hashtbl.find_opt lines_cache file with
  | Some l -> l
  | None ->
      let l = try snd (Lint_core.read_lines file) with Sys_error _ -> [||] in
      Hashtbl.replace lines_cache file l;
      l

let report (loc : Location.t) rule message =
  if not loc.loc_ghost then begin
    let p = loc.loc_start in
    let line = p.pos_lnum and col = p.pos_cnum - p.pos_bol in
    if
      not
        (Lint_core.suppressed ~tags:suppression_tags
           (source_lines p.pos_fname) line)
    then
      diags :=
        { Lint_core.file = p.pos_fname; line; col; rule; message } :: !diags
  end

(* ---------- module / path naming ---------- *)

(* "Geacc_flow__Graph" -> "Graph", "Dune__exe__Geacc_cli" -> "Geacc_cli":
   strip everything up to the last "__" so wrapped-library prefixes and
   dune's executable mangling never leak into call-graph keys. *)
let norm_unit m =
  let n = String.length m in
  let rec find i =
    if i < 0 then None
    else if m.[i] = '_' && m.[i + 1] = '_' then Some (i + 2)
    else find (i - 1)
  in
  match if n < 2 then None else find (n - 2) with
  | Some i -> String.sub m i (n - i)
  | None -> m

(* A value reference as a (module, name) call-graph key. [Pident] is a
   same-unit (or local) name; [Pdot] a cross-module access, keyed by the
   last module component so both an alias path (Geacc_flow.Graph.cost) and
   a mangled direct path (Geacc_flow__Graph.cost) land on "Graph".
   [aliases] maps the unit's own module aliases (module Heap =
   Geacc_pqueue.Float_int_heap) to the real unit name. *)
let ref_target ~unit_name ~aliases path =
  match path with
  | Path.Pident id -> Some (unit_name, Ident.name id)
  | Path.Pdot (m, name) ->
      let base = norm_unit (Path.last m) in
      let base =
        match Hashtbl.find_opt aliases base with
        | Some real -> real
        | None -> base
      in
      Some (base, name)
  | _ -> None

(* ---------- call graph ---------- *)

type def = {
  d_unit : string;
  d_name : string;
  d_file : string;
  d_loc : Location.t;
  d_lines : int;
  d_inline : bool;
  mutable d_refs : (string * string * Location.t) list;
}

let defs : (string * string, def) Hashtbl.t = Hashtbl.create 256

(* Deferred findings that need the finished definition table: [@inline]
   advisories (is the callee small and un-annotated?) and boxed-float
   bindings (an [@inline] callee is assumed to unbox after inlining). *)
type pending =
  | Advisory of {
      target : (string * string) option;
      caller : (string * string) option;
      site : Location.t;
    }
  | Boxed_float of {
      target : (string * string) option;
      display : string;
      site : Location.t;
    }

let pendings : pending list ref = ref []

(* ---------- typedtree helpers ---------- *)

let has_inline_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "inline" | "ocaml.inline" -> true
      | _ -> false)
    attrs

let rec pat_var_name (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some (Ident.name id)
  | Typedtree.Tpat_alias (p, _, _) -> pat_var_name p
  | _ -> None

let loc_eq (a : Location.t) (b : Location.t) =
  a.loc_start.pos_cnum = b.loc_start.pos_cnum
  && a.loc_end.pos_cnum = b.loc_end.pos_cnum
  && String.equal a.loc_start.pos_fname b.loc_start.pos_fname

let is_float_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* Types at which the compiler specializes the polymorphic comparison
   primitives away from the generic runtime fallback. *)
let cmp_specializable ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      List.exists (Path.same p)
        [
          Predef.path_int;
          Predef.path_char;
          Predef.path_bool;
          Predef.path_unit;
          Predef.path_float;
          Predef.path_string;
          Predef.path_bytes;
          Predef.path_int32;
          Predef.path_int64;
          Predef.path_nativeint;
        ]
  | _ -> false

let cmp_arg_type fn_ty =
  match Types.get_desc fn_ty with
  | Types.Tarrow (_, t1, _, _) -> Some t1
  | _ -> None

(* A chunk body handed to the domain pool runs once per chunk — a loop in
   disguise — so function-literal arguments of these combinators are walked
   as loop context (the lambda's parameter spine itself is allocated once
   per call, not per chunk, and stays cold). *)
let parallel_combinators =
  [ "parallel_for"; "parallel_map_chunked"; "parallel_reduce" ]

let is_parallel_combinator (f : Typedtree.expression) =
  match f.exp_desc with
  | Typedtree.Texp_ident (path, _, _) ->
      List.exists (String.equal (Path.last path)) parallel_combinators
  | _ -> false

(* The typer wraps an argument [e] passed to an optional parameter as
   [Some e] sharing [e]'s exact location; a [Some] the programmer wrote
   strictly contains its payload. Only the former is skipped. *)
let is_optional_arg_wrap (e : Typedtree.expression)
    (cd : Types.constructor_description) args =
  String.equal cd.Types.cstr_name "Some"
  &&
  match args with
  | [ (a : Typedtree.expression) ] -> loc_eq e.Typedtree.exp_loc a.exp_loc
  | _ -> false

(* ---------- per-cmt scan ---------- *)

type scan_state = {
  ss_unit : string;
  ss_aliases : (string, string) Hashtbl.t; (* module alias -> real unit *)
  mutable ss_defs : def list; (* stack: innermost enclosing definition *)
  mutable ss_loop : int; (* while/for/let-rec nesting depth *)
}

let st_target st path =
  ref_target ~unit_name:st.ss_unit ~aliases:st.ss_aliases path

let alloc loc message = report loc "hot-loop-alloc" message

(* The leading Texp_function spine of a recursive binding is the function's
   own parameter list — allocated once at the binding, not once per
   recursive call — so only the spine's leaf bodies (and guards) are
   hot-loop contexts. *)
let rec walk_rec_body st (it : Tast_iterator.iterator)
    (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.iter
        (fun (c : _ Typedtree.case) ->
          (match c.c_guard with
          | Some g ->
              st.ss_loop <- st.ss_loop + 1;
              it.expr it g;
              st.ss_loop <- st.ss_loop - 1
          | None -> ());
          walk_rec_body st it c.c_rhs)
        cases
  | _ ->
      st.ss_loop <- st.ss_loop + 1;
      it.expr it e;
      st.ss_loop <- st.ss_loop - 1

let check_apply st (e : Typedtree.expression) (f : Typedtree.expression) args
    =
  let partial_by_label = List.exists (fun (_, a) -> a = None) args in
  let arrow_result =
    match Types.get_desc e.exp_type with
    | Types.Tarrow _ -> true
    | _ -> false
  in
  if partial_by_label || arrow_result then
    alloc e.exp_loc
      "partial application allocates a closure on every iteration of this \
       hot loop; pass all arguments or hoist it";
  match f.exp_desc with
  | Texp_ident (path, _, vd) -> (
      match vd.Types.val_kind with
      | Types.Val_prim prim -> (
          match prim.Primitive.prim_name with
          | "%makemutable" ->
              alloc f.exp_loc
                "a ref cell is allocated on every iteration of this hot \
                 loop; hoist the ref out of the loop"
          | "%compare" | "%equal" | "%notequal" | "%lessthan" | "%lessequal"
          | "%greaterthan" | "%greaterequal" -> (
              match cmp_arg_type f.exp_type with
              | Some t1 when not (cmp_specializable t1) ->
                  alloc f.exp_loc
                    "polymorphic comparison cannot be specialized at this \
                     type and falls back to the generic runtime; use a \
                     monomorphic comparison"
              | _ -> ())
          | _ -> ())
      | _ -> (
          let target = st_target st path in
          (match target with
          | Some ("Stdlib", (("min" | "max") as n)) ->
              alloc f.exp_loc
                (Printf.sprintf
                   "Stdlib.%s compares with the polymorphic runtime; use \
                    Int.%s / Float.%s (or an explicit if)"
                   n n n)
          | _ -> ());
          let caller =
            match st.ss_defs with
            | d :: _ -> Some (d.d_unit, d.d_name)
            | [] -> None
          in
          pendings :=
            Advisory { target; caller; site = f.exp_loc } :: !pendings))
  | _ -> ()

let check_hot_expr st (e : Typedtree.expression) =
  let loc = e.exp_loc in
  match e.exp_desc with
  | Texp_tuple _ ->
      alloc loc
        "a tuple is allocated on every iteration of this hot loop; return \
         components separately or tag (* alloc: ok *)"
  | Texp_construct (_, cd, args)
    when args <> [] && not (is_optional_arg_wrap e cd args) ->
      alloc loc
        (Printf.sprintf
           "constructor %s allocates a block on every iteration of this \
            hot loop"
           cd.Types.cstr_name)
  | Texp_variant (_, Some _) ->
      alloc loc
        "a polymorphic-variant block is allocated on every iteration of \
         this hot loop"
  | Texp_record _ ->
      alloc loc
        "a record is allocated on every iteration of this hot loop"
  | Texp_array (_ :: _) ->
      alloc loc
        "an array is allocated on every iteration of this hot loop"
  | Texp_function _ ->
      alloc loc
        "a closure is allocated on every iteration of this hot loop; hoist \
         it out of the loop or iterate without a callback"
  | Texp_lazy _ ->
      alloc loc
        "a lazy block is allocated on every iteration of this hot loop"
  | Texp_apply (f, args) -> check_apply st e f args
  | _ -> ()

(* A float-typed binding whose right-hand side is a call to an ordinary
   (non-primitive) function: the callee returns a boxed float, and unless
   it is [@inline] the box survives the binding. Resolved after the
   definition table is complete. *)
let check_boxed_float st (vb : Typedtree.value_binding) =
  if is_float_type vb.vb_pat.pat_type then
    match vb.vb_expr.exp_desc with
    | Texp_apply
        ( { exp_desc = Texp_ident (path, _, { val_kind = Types.Val_reg; _ });
            _ },
          _ )
      when is_float_type vb.vb_expr.exp_type ->
        pendings :=
          Boxed_float
            {
              target = st_target st path;
              display = Path.name path;
              site = vb.vb_loc;
            }
          :: !pendings
    | _ -> ()

let scan_structure ~unit_name str =
  let st =
    {
      ss_unit = unit_name;
      ss_aliases = Hashtbl.create 8;
      ss_defs = [];
      ss_loop = 0;
    }
  in
  (* Module aliases are bound before any use in well-typed code, but collect
     them in a first pass anyway so reference normalisation cannot depend on
     item order. *)
  List.iter
    (fun (si : Typedtree.structure_item) ->
      match si.str_desc with
      | Tstr_module
          { mb_id = Some id; mb_expr = { mod_desc = Tmod_ident (p, _); _ }; _ }
        ->
          Hashtbl.replace st.ss_aliases (Ident.name id)
            (norm_unit (Path.last p))
      | _ -> ())
    str.Typedtree.str_items;
  let record_edge path (vd : Types.value_description) loc =
    match st.ss_defs with
    | [] -> ()
    | d :: _ -> (
        match vd.Types.val_kind with
        | Types.Val_prim _ -> ()
        | _ -> (
            match st_target st path with
            | Some (m, name) -> d.d_refs <- (m, name, loc) :: d.d_refs
            | None -> ()))
  in
  let open Tast_iterator in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (path, _, vd) -> record_edge path vd e.exp_loc
    | _ -> ());
    if st.ss_loop > 0 && is_hot e.exp_loc.loc_start.pos_fname then
      check_hot_expr st e;
    match e.exp_desc with
    | Texp_while (cond, body) ->
        (* The condition re-evaluates on every iteration, so it is loop
           context too (unlike a for-loop's bounds, evaluated once). *)
        st.ss_loop <- st.ss_loop + 1;
        it.expr it cond;
        it.expr it body;
        st.ss_loop <- st.ss_loop - 1
    | Texp_for (_, _, lo, hi, _, body) ->
        it.expr it lo;
        it.expr it hi;
        st.ss_loop <- st.ss_loop + 1;
        it.expr it body;
        st.ss_loop <- st.ss_loop - 1
    | Texp_let (Recursive, vbs, body) ->
        List.iter
          (fun (vb : Typedtree.value_binding) -> walk_rec_body st it vb.vb_expr)
          vbs;
        it.expr it body
    | Texp_apply (f, args) when is_parallel_combinator f ->
        it.expr it f;
        List.iter
          (fun ((_, arg) : _ * Typedtree.expression option) ->
            match arg with
            | Some a -> (
                match a.exp_desc with
                | Texp_function _ -> walk_rec_body st it a
                | _ -> it.expr it a)
            | None -> ())
          args
    | _ -> default_iterator.expr it e
  in
  let value_binding it (vb : Typedtree.value_binding) =
    if st.ss_loop > 0 && is_hot vb.vb_loc.loc_start.pos_fname then
      check_boxed_float st vb;
    default_iterator.value_binding it vb
  in
  let structure_item it (si : Typedtree.structure_item) =
    match si.str_desc with
    | Tstr_value (rf, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let name =
              match pat_var_name vb.vb_pat with
              | Some n -> n
              | None ->
                  Printf.sprintf "(top:%d)" vb.vb_loc.loc_start.pos_lnum
            in
            let d =
              {
                d_unit = unit_name;
                d_name = name;
                d_file = vb.vb_loc.loc_start.pos_fname;
                d_loc = vb.vb_loc;
                d_lines =
                  vb.vb_loc.loc_end.pos_lnum - vb.vb_loc.loc_start.pos_lnum
                  + 1;
                d_inline = has_inline_attr vb.vb_attributes;
                d_refs = [];
              }
            in
            if not (Hashtbl.mem defs (unit_name, name)) then
              Hashtbl.add defs (unit_name, name) d;
            st.ss_defs <- d :: st.ss_defs;
            (match rf with
            | Asttypes.Recursive -> walk_rec_body st it vb.vb_expr
            | Asttypes.Nonrecursive -> it.expr it vb.vb_expr);
            st.ss_defs <- List.tl st.ss_defs)
          vbs
    | _ -> default_iterator.structure_item it si
  in
  let it = { default_iterator with expr; value_binding; structure_item } in
  it.structure it str

let scan_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ ->
      diags :=
        {
          Lint_core.file = path;
          line = 1;
          col = 0;
          rule = "cmt-error";
          message = "the compiler's cmt reader rejects this file";
        }
        :: !diags
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          scan_structure ~unit_name:(norm_unit cmt.cmt_modname) str
      | _ -> ())

(* ---------- resolution: advisories, boxed floats ---------- *)

let resolve_pendings () =
  let advised = Hashtbl.create 16 in
  List.iter
    (function
      | Advisory { target = Some key; caller; site } -> (
          match Hashtbl.find_opt defs key with
          | Some d
            when (not d.d_inline)
                 && d.d_lines <= inline_advisory_max_lines
                 && caller <> Some key
                 && not (Hashtbl.mem advised key) ->
              Hashtbl.replace advised key ();
              report d.d_loc "missing-inline"
                (Printf.sprintf
                   "%s.%s (%d lines) is called from a hot loop at %s:%d but \
                    carries no [@inline]; add [@inline] (and [@unboxed] on \
                    any single-field wrapper it involves)"
                   (fst key) (snd key) d.d_lines site.loc_start.pos_fname
                   site.loc_start.pos_lnum)
          | _ -> ())
      | Advisory _ -> ()
      | Boxed_float { target; display; site } ->
          let callee_inlined =
            match target with
            | Some key -> (
                match Hashtbl.find_opt defs key with
                | Some d -> d.d_inline
                | None -> false)
            | None -> false
          in
          if not callee_inlined then
            report site "hot-loop-alloc"
              (Printf.sprintf
                 "the float returned by %s is boxed when let-bound in a hot \
                  loop; mark the callee [@inline], inline the computation, \
                  or tag (* alloc: ok *)"
                 display))
    !pendings

(* ---------- resolution: unsafe reachability ---------- *)

(* Breadth-first over the call graph from every definition under lib/ or
   bin/ outside lib/check. Definitions owned by lib/check are trusted and
   not expanded; a traversed cross-module edge to an [unsafe_*] name is a
   violation (same-module uses are the defining module's own business). *)
let check_unsafe_reachability () =
  let queue = Queue.create () in
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key d ->
      if in_scope d.d_file && not (is_trusted d.d_file) then begin
        Hashtbl.replace seen key ();
        Queue.add d queue
      end)
    defs;
  (* A call site carrying a stage-4 bounds licence is exempt: geacc_bounds
     owns re-proving (or rejecting) the licence on every @bounds run, so
     flagging it here would force a second, redundant exemption channel. *)
  let bounds_licensed (loc : Location.t) =
    let p = loc.loc_start in
    match
      Lint_core.reasoned_marker_status ~marker:"bounds: proved"
        (source_lines p.pos_fname) p.pos_lnum
    with
    | Lint_core.Tag_with_reason, _ -> true
    | _ -> false
  in
  while not (Queue.is_empty queue) do
    let d = Queue.pop queue in
    List.iter
      (fun (m, name, loc) ->
        if
          is_unsafe_name name
          && (not (String.equal m d.d_unit))
          && not (bounds_licensed loc)
        then
          report loc "unsafe-reachable"
            (Printf.sprintf
               "%s.%s is reachable from %s.%s, outside lib/check; only the \
                audit layer may use unsafe APIs"
               m name d.d_unit d.d_name)
        else
          match Hashtbl.find_opt defs (m, name) with
          | Some callee
            when (not (is_trusted callee.d_file))
                 && not (Hashtbl.mem seen (m, name)) ->
              Hashtbl.replace seen (m, name) ();
              Queue.add callee queue
          | _ -> ())
      d.d_refs
  done

(* ---------- driver ---------- *)

let () =
  let rules =
    [ "hot-loop-alloc"; "unsafe-reachable"; "missing-inline"; "cmt-error" ]
  in
  let format, roots =
    Lint_core.parse_argv ~tool:"geacc_analyze" ~rules Sys.argv
  in
  let skip_dir name = String.equal name ".git" in
  let files = List.concat_map (fun r -> Lint_core.walk ~skip_dir r []) roots in
  let cmts =
    List.sort_uniq String.compare
      (List.filter (fun f -> Filename.check_suffix f ".cmt") files)
  in
  List.iter scan_cmt cmts;
  resolve_pendings ();
  check_unsafe_reachability ();
  let deduped = List.sort_uniq Stdlib.compare !diags in
  exit (Lint_core.emit ~format ~tool:"geacc_analyze" deduped)
