(* geacc_bounds — stage 4 of the project analyzer: bounds-proof pass.

   Usage: geacc_bounds [--format text|json] [--list-rules] DIR...

   Walks the given directories for [.cmt] files and runs an interval /
   affine abstract interpretation over every definition in scope (lib/,
   bin/, bench/ outside the trusted dirs lib/check and lib/unsafe). Every
   array index site — checked or unsafe — is classified as

     proved        0 <= i < Array.length a follows from the facts in scope
     unknown       the analyzer cannot decide (fine for checked accesses)
     out-of-bounds the index is provably negative or provably >= length

   and every *unsafe* site ([%array_unsafe_get/set] primitives, i.e.
   [Geacc_unsafe.unsafe_get/set] and [Array.unsafe_*], plus calls to
   [unsafe_*]-named functions) must carry a licence comment

     (* bounds: proved — <invariant the proof rests on> *)

   on its line or the line directly above. A licensed site the analyzer
   can no longer prove is a hard finding (the licence went stale), as is
   an unlicensed site, a bare licence without a reason, or a licence
   attached to no unsafe site.

   The abstract domain is deliberately small: affine forms [k*s + c] over
   single symbolic values, interval bounds kept as *lists* of affine
   conjuncts, and an append-only per-definition fact base of
   [affine <= affine] pairs discovered from asserts, guards and seeded
   structural invariants. The seeds (Graph CSR geometry, Float_int_heap
   size/capacity) are exactly the invariants Audit.Flow.check_csr and
   Float_int_heap.check_invariant re-verify at runtime — the proofs are
   conditional on them, the audits keep them honest. See DESIGN.md §13.

   Rules: bounds-unlicensed, bounds-unproved, bounds-out-of-bounds,
   bounds-unsafe-def, bounds-orphan-licence, cmt-error. Exit status:
   0 clean, 1 findings, 2 usage. *)

let scope_markers = [ "lib/"; "bin/"; "bench/" ]
let trusted_markers = [ "lib/check/"; "lib/unsafe/" ]
let licence_marker = "bounds: proved"

let rules =
  [
    "bounds-unlicensed"; "bounds-unproved"; "bounds-out-of-bounds";
    "bounds-unsafe-def"; "bounds-orphan-licence"; "cmt-error";
  ]

let in_scope path = List.exists (Lint_core.contains_marker path) scope_markers
let is_trusted path = List.exists (Lint_core.contains_marker path) trusted_markers
let analyzed path = in_scope path && not (is_trusted path)

let is_unsafe_name name =
  String.length name >= 7 && String.equal (String.sub name 0 7) "unsafe_"

(* ---------- diagnostics, source lines, licences ---------- *)

let diags : Lint_core.diagnostic list ref = ref []
let reporting = ref true

let lines_cache : (string, string array) Hashtbl.t = Hashtbl.create 32

let source_lines file =
  match Hashtbl.find_opt lines_cache file with
  | Some l -> l
  | None ->
      let l = try snd (Lint_core.read_lines file) with Sys_error _ -> [||] in
      Hashtbl.replace lines_cache file l;
      l

let report (loc : Location.t) rule message =
  if !reporting && not loc.loc_ghost then begin
    let p = loc.loc_start in
    diags :=
      {
        Lint_core.file = p.pos_fname;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule;
        message;
      }
      :: !diags
  end

(* Licence lines that justified at least one unsafe site; anything else
   carrying the marker is an orphan. *)
let consumed : (string * int, unit) Hashtbl.t = Hashtbl.create 64
let seen_files : (string, unit) Hashtbl.t = Hashtbl.create 32

type licence = L_none | L_bare | L_reasoned

let licence_at (loc : Location.t) =
  let p = loc.loc_start in
  let status, mline =
    Lint_core.reasoned_marker_status ~marker:licence_marker
      (source_lines p.pos_fname) p.pos_lnum
  in
  match status with
  | Lint_core.No_tag -> L_none
  | Lint_core.Tag_without_reason ->
      if !reporting then Hashtbl.replace consumed (p.pos_fname, mline) ();
      L_bare
  | Lint_core.Tag_with_reason ->
      if !reporting then Hashtbl.replace consumed (p.pos_fname, mline) ();
      L_reasoned

(* Classification counters for GEACC_BOUNDS_SUMMARY. *)
type counters = { mutable proved : int; mutable unknown : int }

let counters : (string, counters) Hashtbl.t = Hashtbl.create 16

let count file proved =
  if !reporting then begin
    let c =
      match Hashtbl.find_opt counters file with
      | Some c -> c
      | None ->
          let c = { proved = 0; unknown = 0 } in
          Hashtbl.replace counters file c;
          c
    in
    if proved then c.proved <- c.proved + 1 else c.unknown <- c.unknown + 1
  end

(* ---------- the abstract domain ---------- *)

(* [k * s + c]; [k = 0] is the constant [c] (s is then meaningless). A
   symbol denotes one immutable value observed during the run of the
   definition under analysis — a parameter, an array length, one read of a
   mutable field. Mutation never changes a symbol; it makes the *binding*
   point at a new one. *)
type affine = { k : int; s : int; c : int }

(* GEACC_BOUNDS_DEBUG=1 dumps the abstract state at unproved reasoned
   sites; =2 additionally dumps every site and every fact as it lands. *)
let debug, debug_all =
  match Sys.getenv_opt "GEACC_BOUNDS_DEBUG" with
  | Some "" | None -> (false, false)
  | Some "2" -> (true, true)
  | Some _ -> (true, false)

let const n = { k = 0; s = 0; c = n }
let is_const a = a.k = 0
let sym s = { k = 1; s; c = 0 }
let aff_shift a n = { a with c = a.c + n }

let aff_add a b =
  if a.k = 0 then Some (aff_shift b a.c)
  else if b.k = 0 then Some (aff_shift a b.c)
  else if a.s = b.s then
    let k = a.k + b.k in
    if k = 0 then Some (const (a.c + b.c))
    else Some { k; s = a.s; c = a.c + b.c }
  else None

let aff_neg a = { k = -a.k; s = a.s; c = -a.c }

let aff_mul a n =
  if n = 0 then Some (const 0)
  else if a.k = 0 then Some (const (a.c * n))
  else Some { k = a.k * n; s = a.s; c = a.c * n }

(* Interval with conjunctive bound lists: every [lo] satisfies [lo <= v],
   every [hi] satisfies [v <= hi]. Exact values carry the same affine on
   both sides. *)
type ival = { los : affine list; his : affine list }

let of_aff a = { los = [ a ]; his = [ a ] }
let iv_int n = of_aff (const n)

let bound_cap = 8

let dedup_bounds l =
  let rec go acc = function
    | [] -> List.rev acc
    | b :: rest ->
        if List.exists (fun b' -> b' = b) acc then go acc rest
        else go (b :: acc) rest
  in
  let l = go [] l in
  if List.length l <= bound_cap then l
  else List.filteri (fun i _ -> i < bound_cap) l

let mk_iv los his = { los = dedup_bounds los; his = dedup_bounds his }

let aff_str a =
  if a.k = 0 then string_of_int a.c
  else if a.k = 1 && a.c = 0 then Printf.sprintf "s%d" a.s
  else if a.k = 1 then Printf.sprintf "s%d%+d" a.s a.c
  else Printf.sprintf "%d*s%d%+d" a.k a.s a.c

let iv_str iv =
  Printf.sprintf "[%s .. %s]"
    (String.concat "," (List.map aff_str iv.los))
    (String.concat "," (List.map aff_str iv.his))

let exact_of iv =
  match (iv.los, iv.his) with
  | l :: _, h :: _ when l = h -> Some l
  | _ ->
      List.find_opt (fun l -> List.exists (fun h -> h = l) iv.his) iv.los

let iv_add a b =
  let comb xs ys =
    List.concat_map (fun x -> List.filter_map (fun y -> aff_add x y) ys) xs
  in
  mk_iv (comb a.los b.los) (comb a.his b.his)

let iv_neg a = mk_iv (List.map aff_neg a.his) (List.map aff_neg a.los)
let iv_sub a b = iv_add a (iv_neg b)
let iv_shift a n = iv_add a (iv_int n)

let iv_mul_const a n =
  if n >= 0 then
    mk_iv
      (List.filter_map (fun l -> aff_mul l n) a.los)
      (List.filter_map (fun h -> aff_mul h n) a.his)
  else
    mk_iv
      (List.filter_map (fun h -> aff_mul h n) a.his)
      (List.filter_map (fun l -> aff_mul l n) a.los)

(* ---------- values and environments ---------- *)

module SMap = Map.Make (String)

type value =
  | Int of ival
  | Arr of int (* array token *)
  | Root of string (* record / abstract value with field snapshots *)
  | RefCell of string (* local ref cell, key into env.refs *)
  | RefVal of value (* freshly built [ref e], before being let-bound *)
  | Fun
  | Top

(* Array tokens: identity and length are immutable, so tokens live in
   global (per-cmt) tables and survive every havoc. [tok_content] holds an
   invariant-typed element range (e.g. csr_dst holds node ids); it is
   cleared when the array is passed to an unknown mutator. *)
let tok_counter = ref 0
let sym_counter = ref 0
let tok_len : (int, int) Hashtbl.t = Hashtbl.create 64
let tok_content : (int, ival) Hashtbl.t = Hashtbl.create 16

let fresh_sym () =
  incr sym_counter;
  !sym_counter

type env = {
  vars : value SMap.t; (* immutable bindings *)
  refs : value SMap.t; (* contents of local ref cells *)
  paths : (value * bool) SMap.t; (* "root#field" snapshot, is-mutable *)
  facts : (affine * affine) list; (* append-only: a <= b *)
  csr : unit SMap.t; (* Graph roots with csr_valid known to hold *)
  dead : bool; (* control cannot reach here *)
}

let empty_env =
  {
    vars = SMap.empty;
    refs = SMap.empty;
    paths = SMap.empty;
    facts = [];
    csr = SMap.empty;
    dead = false;
  }

(* The fact base is append-only and deduplicated; the cap bounds the
   entailment search on pathological definitions (sound: dropping a fact
   only loses precision). *)
let facts_cap = 512

let add_fact env a b =
  if env.dead then env
  else if List.exists (fun f -> f = (a, b)) env.facts then env
  else if List.length env.facts >= facts_cap then env
  else begin
    if debug_all then
      Printf.eprintf "DEBUG fact %s <= %s\n" (aff_str a) (aff_str b);
    { env with facts = (a, b) :: env.facts }
  end

let fresh_tok env =
  incr tok_counter;
  let t = !tok_counter in
  let ls = fresh_sym () in
  Hashtbl.replace tok_len t ls;
  (t, add_fact env (const 0) (sym ls))

let len_sym t = Hashtbl.find tok_len t
let len_aff t = sym (len_sym t)

(* ---------- the entailment engine ---------- *)

(* [le facts a b] tries to prove [a <= b]. Base cases compare matching
   shapes; the shift rules rewrite through a fact whose side matches the
   goal's (k, s) pair; the scaled-nonneg rule discharges [n <= k*s + c]
   from [0 <= s] when k > 0 and n <= c. Depth-limited with memoisation —
   the chains the kernels need are 2–5 facts long. *)
let max_depth = 5

let le facts a b =
  let memo : (affine * affine * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec go depth a b =
    if depth < 0 then false
    else if is_const a && is_const b then a.c <= b.c
    else if (not (is_const a)) && a.k = b.k && a.s = b.s then a.c <= b.c
    else
      match Hashtbl.find_opt memo (a, b, depth) with
      | Some r -> r
      | None ->
          (* Pessimistic seed cuts cycles through the same subgoal. *)
          Hashtbl.replace memo (a, b, depth) false;
          let r =
            (is_const a && b.k > 0 && a.c <= b.c
            && go (depth - 1) (const 0) (sym b.s))
            || List.exists
                 (fun (p, q) ->
                   (not (is_const p))
                   && p.k = a.k && p.s = a.s
                   && go (depth - 1) (aff_shift q (a.c - p.c)) b)
                 facts
            || List.exists
                 (fun (p, q) ->
                   (not (is_const q))
                   && q.k = b.k && q.s = b.s
                   && go (depth - 1) a (aff_shift p (b.c - q.c)))
                 facts
          in
          Hashtbl.replace memo (a, b, depth) r;
          r
  in
  go max_depth a b

(* v >= n, i.e. some lower bound dominates the constant. *)
let iv_ge facts iv n = List.exists (fun l -> le facts (const n) l) iv.los

(* v <= b for an affine b. *)
let iv_le_aff facts iv b = List.exists (fun h -> le facts h b) iv.his

let iv_ge_aff facts iv b = List.exists (fun l -> le facts b l) iv.los

(* ---------- joins ---------- *)

let join_iv fa fb a b =
  (* An unchanged value joining with itself stays itself — without this
     shortcut the weakening candidates below would grow the bound lists at
     every join until the cap evicts the bounds that matter. *)
  if a.los = b.los && a.his = b.his then a
  else
  (* Candidate bounds are both sides' bounds plus their one-step
     weakenings: a branch that stepped an index (i := parent) typically
     satisfies the other branch's bound shifted by one, and the weakened
     form is the loop invariant worth keeping. A candidate survives only
     if *both* branches entail it under their own facts. Originals come
     first so the bound cap evicts weakenings, never shared bounds. *)
  let cand_his =
    a.his @ b.his @ List.map (fun h -> aff_shift h 1) (a.his @ b.his)
  in
  let cand_los =
    (* Seed the constant floors too: "i >= 0" across a join of [i := 2i+1]
       with [i unchanged] is entailed by both sides' facts without being in
       either side's bound list. *)
    a.los @ b.los
    @ List.map (fun l -> aff_shift l (-1)) (a.los @ b.los)
    @ [ const 0; const 1 ]
  in
  mk_iv
    (List.filter
       (fun l ->
         List.exists (fun la -> le fa l la) a.los
         && List.exists (fun lb -> le fb l lb) b.los)
       cand_los)
    (List.filter
       (fun h ->
         List.exists (fun ha -> le fa ha h) a.his
         && List.exists (fun hb -> le fb hb h) b.his)
       cand_his)

let rec join_value fa fb va vb =
  match (va, vb) with
  | Int a, Int b -> Int (join_iv fa fb a b)
  | Arr a, Arr b when a = b -> Arr a
  | Arr a, Arr b ->
      (* Two different arrays joining: the result is *some* array, so give
         it a fresh token (unknown length) rather than collapsing to Top —
         a later [assert (Array.length x = n)] can still pin it down. *)
      incr tok_counter;
      let t = !tok_counter in
      Hashtbl.replace tok_len t (fresh_sym ());
      if debug_all then
        Printf.eprintf "DEBUG join Arr#%d/Arr#%d -> Arr#%d(|.|=s%d)\n" a b t
          (len_sym t);
      Arr t
  | RefVal a, RefVal b -> RefVal (join_value fa fb a b)
  | _ -> if va = vb then va else Top

let inter_facts f1 f2 =
  List.filter (fun f -> List.exists (fun f' -> f' = f) f2) f1

let join_env e1 e2 =
  if e1.dead then e2
  else if e2.dead then e1
  else
    let meet merge m1 m2 =
      SMap.merge
        (fun _ a b ->
          match (a, b) with Some a, Some b -> merge a b | _ -> None)
        m1 m2
    in
    {
      vars = meet (fun a b -> Some (join_value e1.facts e2.facts a b)) e1.vars e2.vars;
      refs = meet (fun a b -> Some (join_value e1.facts e2.facts a b)) e1.refs e2.refs;
      paths =
        meet
          (fun (a, m) (b, _) -> Some (join_value e1.facts e2.facts a b, m))
          e1.paths e2.paths;
      facts = inter_facts e1.facts e2.facts;
      csr = meet (fun () () -> Some ()) e1.csr e2.csr;
      dead = false;
    }

(* ---------- havoc ---------- *)

let havoc_root env root =
  {
    env with
    paths =
      SMap.filter
        (fun key (_, mut) ->
          not
            (mut
            && (String.equal key root
               || (String.length key > String.length root
                  && String.sub key 0 (String.length root + 1) = root ^ "#"))))
        env.paths;
    csr = SMap.remove root env.csr;
  }

(* An unknown call: every ref cell and every mutable snapshot may have
   changed. Immutable bindings, array identities/lengths and the facts —
   which describe values, not bindings — survive. *)
let full_havoc env =
  {
    env with
    refs = SMap.empty;
    paths = SMap.filter (fun _ (_, mut) -> not mut) env.paths;
    csr = SMap.empty;
  }

let root_of_value = function Root r -> Some r | _ -> None

(* ---------- types ---------- *)

let type_is p ty =
  match Types.get_desc ty with
  | Types.Tconstr (q, _, _) -> Path.same p q
  | _ -> false

let is_int_type = type_is Predef.path_int

(* "Geacc_flow__Graph" -> "Graph" (same normalisation as stage 2/3). *)
let norm_unit m =
  let n = String.length m in
  let rec find i =
    if i < 0 then None
    else if m.[i] = '_' && m.[i + 1] = '_' then Some (i + 2)
    else find (i - 1)
  in
  match if n < 2 then None else find (n - 2) with
  | Some i -> String.sub m i (n - i)
  | None -> m

(* The record type a label belongs to, as "Unit.t" — keys the seeded
   invariant tables. *)
let label_type_key ~unit_name (lbl : Types.label_description) =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (p, _, _) -> (
      let tname = Path.last p in
      match p with
      | Path.Pdot (m, _) -> Some (norm_unit (Path.last m) ^ "." ^ tname)
      | Path.Pident _ -> Some (unit_name ^ "." ^ tname)
      | _ -> None)
  | _ -> None

let ref_target ~unit_name ~aliases path =
  match path with
  | Path.Pident id -> Some (unit_name, Ident.name id)
  | Path.Pdot (m, name) ->
      let base = norm_unit (Path.last m) in
      let base =
        match Hashtbl.find_opt aliases base with
        | Some real -> real
        | None -> base
      in
      Some (base, name)
  | _ -> None

(* ---------- per-cmt scan state ---------- *)

type scan_state = {
  ss_unit : string;
  ss_aliases : (string, string) Hashtbl.t;
}

let stdlib_units =
  [
    "Stdlib"; "Array"; "List"; "Float"; "Int"; "Char"; "String"; "Bytes";
    "Queue"; "Stack"; "Hashtbl"; "Map"; "Set"; "Buffer"; "Printf"; "Format";
    "Option"; "Result"; "Sys"; "Gc"; "Random"; "Filename"; "Fun"; "Seq";
    "Lazy"; "Either"; "Bool"; "Domain"; "Atomic"; "Mutex"; "Condition";
  ]

let noreturn_names = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace"; "exit" ]

(* ---------- slots: where a comparison refinement is written back ---------- *)

type slot = S_none | S_var of string | S_ref of string | S_path of string

let store_slot env slot iv =
  match slot with
  | S_none -> env
  | S_var n -> { env with vars = SMap.add n (Int iv) env.vars }
  | S_ref r -> { env with refs = SMap.add r (Int iv) env.refs }
  | S_path k -> (
      match SMap.find_opt k env.paths with
      | Some (_, mut) -> { env with paths = SMap.add k (Int iv, mut) env.paths }
      | None -> env)

(* ---------- default values by type ---------- *)

let root_counter = ref 0

let fresh_root () =
  incr root_counter;
  Printf.sprintf "\xcf\x81%d" !root_counter

(* An unknown value of type [ty]: ints get a fresh exact symbol (so later
   guards can pin them down), arrays a fresh token, abstract/record types a
   fresh root, arrows a closure marker. *)
let rec default_value env ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> (env, Fun)
  | Types.Tconstr (p, _, _) when Path.same p Predef.path_int ->
      (env, Int (of_aff (sym (fresh_sym ()))))
  | Types.Tconstr (p, _, _) when Path.same p Predef.path_array ->
      let t, env = fresh_tok env in
      (env, Arr t)
  | Types.Tconstr (p, _, _)
    when Path.same p Predef.path_float || Path.same p Predef.path_bool
         || Path.same p Predef.path_unit || Path.same p Predef.path_string
         || Path.same p Predef.path_char ->
      (env, Top)
  | Types.Tconstr _ -> (env, Root (fresh_root ()))
  | Types.Tlink t | Types.Tsubst (t, _) -> default_value env t
  | _ -> (env, Top)

(* ---------- seeded structural invariants ---------- *)

(* Get-or-create one field snapshot. Content seeding (for freshly created
   tokens only) is the caller's business. *)
let get_path env root field ~mut kind =
  let key = root ^ "#" ^ field in
  match SMap.find_opt key env.paths with
  | Some (v, _) -> (env, v)
  | None ->
      let env, v =
        match kind with
        | `Int -> (env, Int (of_aff (sym (fresh_sym ()))))
        | `Arr ->
            let t, env = fresh_tok env in
            (env, Arr t)
        | `Top -> (env, Top)
      in
      ({ env with paths = SMap.add key (v, mut) env.paths }, v)

let exact_int = function Int iv -> exact_of iv | _ -> None
let tok_of = function Arr t -> Some t | _ -> None

let seed_content v lo hi =
  (* Only seed content on tokens this materialisation created — a token
     that arrived from elsewhere may be any array. *)
  match tok_of v with
  | Some t when not (Hashtbl.mem tok_content t) ->
      Hashtbl.replace tok_content t (mk_iv [ lo ] [ hi ])
  | _ -> ()

let fact_le env va vb =
  match (va, vb) with Some a, Some b -> add_fact env a b | _ -> env

let len_of v = Option.map len_aff (tok_of v)

(* Graph core: num_nodes/count/head plus the five arc-store arrays, with
   the invariants from graph.ml's header. Idempotent — existing snapshots
   (including ones from a literal record construction) are reused. *)
let materialize_graph env r =
  let env, nv = get_path env r "num_nodes" ~mut:false `Int in
  let env, cv = get_path env r "count" ~mut:true `Int in
  let env, head = get_path env r "head" ~mut:false `Arr in
  let env, next = get_path env r "next" ~mut:true `Arr in
  let env, dst_ = get_path env r "dst_" ~mut:true `Arr in
  let env, cap_ = get_path env r "cap_" ~mut:true `Arr in
  let env, icap = get_path env r "initial_cap" ~mut:true `Arr in
  let env, cost_ = get_path env r "cost_" ~mut:true `Arr in
  let env, icost_ = get_path env r "icost_" ~mut:true `Arr in
  let n = exact_int nv and c = exact_int cv in
  let env = fact_le env (Some (const 0)) n in
  let env = fact_le env (Some (const 0)) c in
  let env = fact_le env c (len_of next) in
  let env = fact_le env c (len_of dst_) in
  let env = fact_le env c (len_of cap_) in
  let env = fact_le env c (len_of icap) in
  let env = fact_le env c (len_of cost_) in
  let env = fact_le env c (len_of icost_) in
  let env = fact_le env n (len_of head) in
  let env = fact_le env (len_of head) n in
  (match (n, c) with
  | Some n, Some c ->
      seed_content dst_ (const 0) (aff_shift n (-1));
      seed_content head (const (-1)) (aff_shift c (-1));
      seed_content next (const (-1)) (aff_shift c (-1))
  | _ -> ());
  env

(* CSR geometry, valid only while [csr_valid t] — callers establish that
   via finalize_csr, an explicit csr_valid guard, or a callee assert. *)
let seed_csr env r =
  let env = materialize_graph env r in
  let env, off = get_path env r "csr_offset" ~mut:true `Arr in
  let env, cdst = get_path env r "csr_dst" ~mut:true `Arr in
  let env, ccost = get_path env r "csr_cost" ~mut:true `Arr in
  let env, cicost = get_path env r "csr_icost" ~mut:true `Arr in
  let env, ccap = get_path env r "csr_cap" ~mut:true `Arr in
  let env, carc = get_path env r "csr_arc" ~mut:true `Arr in
  let env, apos = get_path env r "arc_pos" ~mut:true `Arr in
  let n = exact_int (snd (get_path env r "num_nodes" ~mut:false `Int)) in
  let c = exact_int (snd (get_path env r "count" ~mut:true `Int)) in
  let np1 = Option.map (fun a -> aff_shift a 1) n in
  let env = fact_le env np1 (len_of off) in
  let env = fact_le env (len_of off) np1 in
  let env = fact_le env c (len_of cdst) in
  let env = fact_le env c (len_of ccost) in
  let env = fact_le env c (len_of cicost) in
  let env = fact_le env c (len_of ccap) in
  let env = fact_le env c (len_of carc) in
  let env = fact_le env c (len_of apos) in
  (match (n, c) with
  | Some n, Some c ->
      seed_content cdst (const 0) (aff_shift n (-1));
      seed_content off (const 0) c;
      seed_content carc (const 0) (aff_shift c (-1));
      seed_content apos (const 0) (aff_shift c (-1))
  | _ -> ());
  { env with csr = SMap.add r () env.csr }

let csr_known env r = SMap.mem r env.csr

(* Heap core: [0 <= size <= |keys| = |payloads|], runtime-verified by
   Float_int_heap.check_invariant. *)
let materialize_heap env r =
  let env, sv = get_path env r "size" ~mut:true `Int in
  let env, kv = get_path env r "keys" ~mut:true `Arr in
  let env, pv = get_path env r "payloads" ~mut:true `Arr in
  let s = exact_int sv in
  let env = fact_le env (Some (const 0)) s in
  let env = fact_le env s (len_of kv) in
  let env = fact_le env (len_of kv) (len_of pv) in
  let env = fact_le env (len_of pv) (len_of kv) in
  env

(* Bucket-queue core: the three per-bucket columns have exactly 64
   ([Int_bucket_queue.buckets]) slots, fixed at creation. The per-bucket
   length invariant [0 <= lens.(b) <= |keys.(b)| = |payloads.(b)|] lives
   in nested arrays this domain cannot index, so the queue re-checks it
   with runtime asserts at each unsafe site (and in check_invariant);
   the asserts are what the licences there cite. *)
let materialize_bucket env r =
  let env, sv = get_path env r "size" ~mut:true `Int in
  let env, lv = get_path env r "last" ~mut:true `Int in
  let env, kv = get_path env r "keys" ~mut:false `Arr in
  let env, pv = get_path env r "payloads" ~mut:false `Arr in
  let env, ev = get_path env r "lens" ~mut:false `Arr in
  let env = fact_le env (Some (const 0)) (exact_int sv) in
  let env = fact_le env (Some (const 0)) (exact_int lv) in
  let b64 = Some (const 64) in
  let env = fact_le env (len_of kv) b64 in
  let env = fact_le env b64 (len_of kv) in
  let env = fact_le env (len_of pv) b64 in
  let env = fact_le env b64 (len_of pv) in
  let env = fact_le env (len_of ev) b64 in
  let env = fact_le env b64 (len_of ev) in
  env

(* ---------- typedtree helpers ---------- *)

let prim_name (vd : Types.value_description) =
  match vd.Types.val_kind with
  | Types.Val_prim p -> Some p.Primitive.prim_name
  | _ -> None

let is_bool_constr (e : Typedtree.expression) name =
  match e.exp_desc with
  | Typedtree.Texp_construct (_, cd, []) -> String.equal cd.Types.cstr_name name
  | _ -> false

(* ---------- site classification ---------- *)

(* GEACC_BOUNDS_DEBUG=1 dumps the abstract state at every reasoned licence
   the analyzer fails to re-prove — the first tool to reach for when a
   kernel change makes @bounds go red. *)
let value_str = function
  | Int iv -> "Int " ^ iv_str iv
  | Arr t -> Printf.sprintf "Arr#%d(|.|=s%d)" t (len_sym t)
  | Root r -> "Root " ^ r
  | RefCell r -> "RefCell " ^ r
  | RefVal _ -> "RefVal"
  | Fun -> "Fun"
  | Top -> "Top"

let debug_site env (loc : Location.t) arr_v idx_v =
  let p = loc.loc_start in
  Printf.eprintf "DEBUG %s:%d:%d\n  arr = %s\n  idx = %s\n  facts:\n"
    p.Lexing.pos_fname p.pos_lnum
    (p.pos_cnum - p.pos_bol)
    (value_str arr_v) (value_str idx_v);
  List.iter
    (fun (a, b) -> Printf.eprintf "    %s <= %s\n" (aff_str a) (aff_str b))
    env.facts

(* Every array index site is classified from the facts in scope. Checked
   sites only feed the summary counters (unless provably out of bounds);
   unsafe sites additionally must carry a reasoned licence the analyzer can
   re-prove. *)
let classify_site env (loc : Location.t) ~unsafe arr_v idx_v =
  let file = loc.loc_start.Lexing.pos_fname in
  if debug_all && !reporting then debug_site env loc arr_v idx_v;
  let proved, oob =
    match (arr_v, idx_v) with
    | Arr t, Int iv ->
        let lenm1 = aff_shift (len_aff t) (-1) in
        ( iv_ge env.facts iv 0 && iv_le_aff env.facts iv lenm1,
          iv_le_aff env.facts iv (const (-1))
          || List.exists (fun l -> le env.facts (len_aff t) l) iv.los )
    | _, Int iv -> (false, iv_le_aff env.facts iv (const (-1)))
    | _ -> (false, false)
  in
  if oob then
    report loc "bounds-out-of-bounds" "index is provably outside the array";
  if unsafe then begin
    match licence_at loc with
    | L_none ->
        report loc "bounds-unlicensed"
          "unsafe array access without a `bounds: proved — <reason>` licence"
    | L_bare ->
        report loc "bounds-unlicensed"
          "unsafe array access under a bare licence (no invariant stated)"
    | L_reasoned ->
        if proved then count file true
        else if not oob then begin
          if debug && !reporting then debug_site env loc arr_v idx_v;
          report loc "bounds-unproved"
            "stale licence: the analyzer cannot re-prove this unsafe access"
        end
  end
  else count file proved

(* ---------- pattern binding ---------- *)

let bind_name env name v =
  match v with
  | RefVal inner ->
      {
        env with
        vars = SMap.add name (RefCell name) env.vars;
        refs = SMap.add name inner env.refs;
      }
  | _ -> { env with vars = SMap.add name v env.vars }

(* Field reads materialise the per-type seeded invariants before handing
   back the snapshot. *)
let read_label ss env r (lbl : Types.label_description) =
  let env =
    match label_type_key ~unit_name:ss.ss_unit lbl with
    | Some "Graph.t" -> materialize_graph env r
    | Some "Float_int_heap.t" -> materialize_heap env r
    | Some "Int_bucket_queue.t" -> materialize_bucket env r
    | _ -> env
  in
  let key = r ^ "#" ^ lbl.Types.lbl_name in
  match SMap.find_opt key env.paths with
  | Some (v, _) -> (env, v)
  | None ->
      let mut = lbl.Types.lbl_mut = Asttypes.Mutable in
      let env, v = default_value env lbl.Types.lbl_arg in
      ({ env with paths = SMap.add key (v, mut) env.paths }, v)

let rec bind_pattern :
    type k. scan_state -> env -> k Typedtree.general_pattern -> value -> env =
 fun ss env pat v ->
  match pat.pat_desc with
  | Typedtree.Tpat_any -> env
  | Typedtree.Tpat_var (id, _) -> bind_name env (Ident.name id) v
  | Typedtree.Tpat_alias (p, id, _) ->
      bind_pattern ss (bind_name env (Ident.name id) v) p v
  | Typedtree.Tpat_value arg -> bind_pattern ss env (arg :> Typedtree.pattern) v
  | Typedtree.Tpat_exception p -> bind_pattern ss env p Top
  | Typedtree.Tpat_or (p, _, _) -> bind_pattern ss env p v
  | Typedtree.Tpat_tuple ps ->
      List.fold_left (fun env p -> bind_default_pat ss env p) env ps
  | Typedtree.Tpat_construct (_, _, ps, _) ->
      List.fold_left (fun env p -> bind_default_pat ss env p) env ps
  | Typedtree.Tpat_variant (_, Some p, _) -> bind_default_pat ss env p
  | Typedtree.Tpat_array ps ->
      List.fold_left (fun env p -> bind_default_pat ss env p) env ps
  | Typedtree.Tpat_lazy p -> bind_default_pat ss env p
  | Typedtree.Tpat_record (fields, _) ->
      List.fold_left
        (fun env (_, lbl, p) ->
          match root_of_value v with
          | Some r ->
              let env, fv = read_label ss env r lbl in
              bind_pattern ss env p fv
          | None -> bind_default_pat ss env p)
        env fields
  | _ -> env

and bind_default_pat :
    type k. scan_state -> env -> k Typedtree.general_pattern -> env =
 fun ss env p ->
  let env, v = default_value env p.pat_type in
  bind_pattern ss env p v

(* ---------- loop stability ---------- *)

(* A binding is stable through a loop body when it denotes the same value
   shape at head and end: same exact symbol for ints (narrowing only adds
   bounds, so the exact pair survives), same token for arrays, same root
   for abstract values. *)
let value_stable hv ev =
  match (hv, ev) with
  | Int a, Int b -> (
      match exact_of a with
      | Some x ->
          List.exists (fun l -> l = x) b.los && List.exists (fun h -> h = x) b.his
      | None -> false)
  | Arr a, Arr b -> a = b
  | Root a, Root b -> String.equal a b
  | RefCell a, RefCell b -> String.equal a b
  | Fun, Fun | Top, Top -> true
  | _ -> false

let compare_prims =
  [
    "%lessthan"; "%lessequal"; "%greaterthan"; "%greaterequal"; "%equal";
    "%notequal"; "%eq"; "%noteq";
  ]

(* ---------- the evaluator ---------- *)

let rec eval ss env (e : Typedtree.expression) : env * value =
  if env.dead then (env, Top)
  else
    match e.exp_desc with
    | Typedtree.Texp_ident (path, _, vd) -> (
        match prim_name vd with
        | Some _ -> (env, Fun)
        | None -> (
            match path with
            | Path.Pident id -> (
                match SMap.find_opt (Ident.name id) env.vars with
                | Some v -> (env, v)
                | None -> default_value env e.exp_type)
            | _ -> default_value env e.exp_type))
    | Typedtree.Texp_constant (Asttypes.Const_int n) -> (env, Int (iv_int n))
    | Typedtree.Texp_constant _ -> (env, Top)
    | Typedtree.Texp_let (_, vbs, body) ->
        let env =
          List.fold_left
            (fun env (vb : Typedtree.value_binding) ->
              let env, v = eval ss env vb.vb_expr in
              bind_pattern ss env vb.vb_pat v)
            env vbs
        in
        eval ss env body
    | Typedtree.Texp_function { cases; _ } ->
        closure_cases ss env cases;
        (env, Fun)
    | Typedtree.Texp_lazy body ->
        ignore (eval ss (closure_env env) body);
        (env, Fun)
    | Typedtree.Texp_apply (f, args) -> eval_apply ss env e f args
    | Typedtree.Texp_match (scrut, cases, _) ->
        let env, sv = eval ss env scrut in
        eval_cases ss env cases sv
    | Typedtree.Texp_try (body, handlers) ->
        let envb, vb = eval ss env body in
        let envh, vh = eval_cases ss (full_havoc env) handlers Top in
        (join_env envb envh, join_value envb.facts envh.facts vb vh)
    | Typedtree.Texp_ifthenelse (c, t, fo) -> (
        let envt = cond ss env c true in
        let envf = cond ss env c false in
        let envt, vt = eval ss envt t in
        match fo with
        | Some f ->
            let envf, vf = eval ss envf f in
            (join_env envt envf, join_value envt.facts envf.facts vt vf)
        | None -> (join_env envt envf, Top))
    | Typedtree.Texp_sequence (a, b) ->
        let env, _ = eval ss env a in
        eval ss env b
    | Typedtree.Texp_while (guard, body) -> while_fix ss env guard body
    | Typedtree.Texp_for (id, _, lo, hi, dir, body) ->
        for_fix ss env id lo hi dir body
    | Typedtree.Texp_assert (e', _) ->
        if is_bool_constr e' "false" then ({ env with dead = true }, Top)
        else (cond ss env e' true, Top)
    | Typedtree.Texp_field (b, _, lbl) -> (
        let env, bv = eval ss env b in
        match root_of_value bv with
        | Some r -> read_label ss env r lbl
        | None -> default_value env e.exp_type)
    | Typedtree.Texp_setfield (b, _, lbl, rhs) -> (
        let env, rv = eval ss env rhs in
        let env, bv = eval ss env b in
        match root_of_value bv with
        | Some r ->
            (* Store-forward: the snapshot is exactly what was written.
               Any csr claim about this root is gone. *)
            ( {
                env with
                paths =
                  SMap.add (r ^ "#" ^ lbl.Types.lbl_name) (rv, true) env.paths;
                csr = SMap.remove r env.csr;
              },
              Top )
        | None -> (env, Top))
    | Typedtree.Texp_record { fields; extended_expression; _ } ->
        let env =
          match extended_expression with
          | Some b -> fst (eval ss env b)
          | None -> env
        in
        let r = fresh_root () in
        let env =
          Array.fold_left
            (fun env (lbl, def) ->
              match def with
              | Typedtree.Kept _ -> env
              | Typedtree.Overridden (_, fe) ->
                  let env, fv = eval ss env fe in
                  let mut = lbl.Types.lbl_mut = Asttypes.Mutable in
                  {
                    env with
                    paths =
                      SMap.add (r ^ "#" ^ lbl.Types.lbl_name) (fv, mut) env.paths;
                  })
            env fields
        in
        (env, Root r)
    | Typedtree.Texp_array es ->
        let env =
          List.fold_left (fun env x -> fst (eval ss env x)) env es
        in
        let t, env = fresh_tok env in
        let n = const (List.length es) in
        let env = add_fact env (len_aff t) n in
        let env = add_fact env n (len_aff t) in
        (env, Arr t)
    | Typedtree.Texp_construct (_, _, es) | Typedtree.Texp_tuple es ->
        let env = List.fold_left (fun env x -> fst (eval ss env x)) env es in
        (env, Top)
    | Typedtree.Texp_variant (_, eo) ->
        let env = match eo with Some x -> fst (eval ss env x) | None -> env in
        (env, Top)
    | Typedtree.Texp_open (_, body) -> eval ss env body
    | _ -> (full_havoc env, Top)

and eval_list ss env es =
  let env, rev =
    List.fold_left
      (fun (env, acc) x ->
        let env, v = eval ss env x in
        (env, v :: acc))
      (env, []) es
  in
  (env, List.rev rev)

and eval_cases :
    type k. scan_state -> env -> k Typedtree.case list -> value -> env * value =
 fun ss env cases sv ->
  let results =
    List.filter_map
      (fun (c : k Typedtree.case) ->
        let benv = bind_pattern ss env c.c_lhs sv in
        let benv =
          match c.c_guard with Some g -> cond ss benv g true | None -> benv
        in
        let renv, rv = eval ss benv c.c_rhs in
        if renv.dead then None else Some (renv, rv))
      cases
  in
  match results with
  | [] -> ({ env with dead = true }, Top)
  | (e0, v0) :: rest ->
      List.fold_left
        (fun (ea, va) (eb, vb) ->
          (join_env ea eb, join_value ea.facts eb.facts va vb))
        (e0, v0) rest

(* A closure escapes: its body runs at some unknown later time, so it sees
   the havocked view of the world (facts and immutable bindings survive;
   ref cells and mutable snapshots do not). *)
and closure_env env = { (full_havoc env) with refs = SMap.empty }

and closure_cases : type k. scan_state -> env -> k Typedtree.case list -> unit =
 fun ss env cases ->
  let cenv = closure_env env in
  List.iter
    (fun (c : k Typedtree.case) ->
      let benv = bind_default_pat ss cenv c.c_lhs in
      let benv =
        match c.c_guard with Some g -> cond ss benv g true | None -> benv
      in
      ignore (eval ss benv c.c_rhs))
    cases

(* Evaluate a comparison operand, remembering where a refinement can be
   written back: a plain variable, a ref deref [!r], or a field [t.f]. *)
and eval_operand ss env (e : Typedtree.expression) : env * value * slot =
  let fallback env =
    let env, v = eval ss env e in
    (env, v, S_none)
  in
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, vd) when prim_name vd = None -> (
      let n = Ident.name id in
      match SMap.find_opt n env.vars with
      | Some (Int iv) -> (env, Int iv, S_var n)
      | _ -> fallback env)
  | Typedtree.Texp_apply
      ({ exp_desc = Typedtree.Texp_ident (_, _, vd); _ }, [ (_, Some r) ])
    when prim_name vd = Some "%field0" -> (
      match r.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
          match SMap.find_opt (Ident.name id) env.vars with
          | Some (RefCell rc) -> (
              match SMap.find_opt rc env.refs with
              | Some (Int iv) -> (env, Int iv, S_ref rc)
              | Some v -> (env, v, S_none)
              | None ->
                  let env, v = default_value env e.exp_type in
                  let env = { env with refs = SMap.add rc v env.refs } in
                  (env, v, match v with Int _ -> S_ref rc | _ -> S_none))
          | _ -> fallback env)
      | _ -> fallback env)
  | Typedtree.Texp_field (b, _, lbl) -> (
      match b.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _) -> (
          match SMap.find_opt (Ident.name id) env.vars with
          | Some (Root r) ->
              let env, v = read_label ss env r lbl in
              let key = r ^ "#" ^ lbl.Types.lbl_name in
              (env, v, match v with Int _ -> S_path key | _ -> S_none)
          | _ -> fallback env)
      | _ -> fallback env)
  | _ -> fallback env

(* Narrow both operands of an integer relation and record the fact when
   both sides are exact. *)
and apply_rel env (va, sa) rel (vb, sb) =
  match (va, vb) with
  | Int a, Int b -> (
      let ea = exact_of a and eb = exact_of b in
      match rel with
      | `Lt -> (
          let env =
            store_slot env sa
              (mk_iv a.los (List.map (fun h -> aff_shift h (-1)) b.his @ a.his))
          in
          let env =
            store_slot env sb
              (mk_iv (List.map (fun l -> aff_shift l 1) a.los @ b.los) b.his)
          in
          match (ea, eb) with
          | Some x, Some y -> add_fact env (aff_shift x 1) y
          | _ -> env)
      | `Le -> (
          let env = store_slot env sa (mk_iv a.los (b.his @ a.his)) in
          let env = store_slot env sb (mk_iv (a.los @ b.los) b.his) in
          match (ea, eb) with
          | Some x, Some y -> add_fact env x y
          | _ -> env)
      | `Eq -> (
          let env = store_slot env sa (mk_iv (b.los @ a.los) (b.his @ a.his)) in
          let env = store_slot env sb (mk_iv (a.los @ b.los) (a.his @ b.his)) in
          match (ea, eb) with
          | Some x, Some y -> add_fact (add_fact env x y) y x
          | _ -> env)
      | `Ne ->
          let refine env (v, s) other =
            match exact_of other with
            | None -> env
            | Some ew ->
                if iv_ge_aff env.facts v ew then
                  let env =
                    match exact_of v with
                    | Some x -> add_fact env (aff_shift ew 1) x
                    | None -> env
                  in
                  store_slot env s (mk_iv (aff_shift ew 1 :: v.los) v.his)
                else if iv_le_aff env.facts v ew then
                  let env =
                    match exact_of v with
                    | Some x -> add_fact env x (aff_shift ew (-1))
                    | None -> env
                  in
                  store_slot env s (mk_iv v.los (aff_shift ew (-1) :: v.his))
                else env
          in
          refine (refine env (a, sa) b) (b, sb) a)
  | _ -> env

(* Narrow one argument expression into [lo, hi] — the caller-side echo of
   a callee assert (asserts are compiled in; the call returning at all
   establishes the range). *)
and narrow_arg ss env ex lo hi =
  let env, v, s = eval_operand ss env ex in
  match v with
  | Int iv ->
      let los = match lo with Some l -> l :: iv.los | None -> iv.los in
      let his = match hi with Some h -> h :: iv.his | None -> iv.his in
      let env = store_slot env s (mk_iv los his) in
      let env = fact_le env lo (exact_of iv) in
      fact_le env (exact_of iv) hi
  | _ -> env

(* Evaluate a boolean expression for its refinements under the given
   branch sense. Anything unrecognised is evaluated for effects only. *)
and cond ss env (e : Typedtree.expression) bsense : env =
  if env.dead then env
  else
    match e.exp_desc with
    | Typedtree.Texp_construct (_, cd, []) when cd.Types.cstr_name = "true" ->
        if bsense then env else { env with dead = true }
    | Typedtree.Texp_construct (_, cd, []) when cd.Types.cstr_name = "false" ->
        if bsense then { env with dead = true } else env
    | Typedtree.Texp_apply
        (({ exp_desc = Typedtree.Texp_ident (path, _, vd); _ } as _f), args)
      -> (
        let argl = List.filter_map snd args in
        match (prim_name vd, argl) with
        | Some "%boolnot", [ a ] -> cond ss env a (not bsense)
        | Some "%sequand", [ a; b ] ->
            if bsense then cond ss (cond ss env a true) b true
            else
              join_env (cond ss env a false)
                (cond ss (cond ss env a true) b false)
        | Some "%sequor", [ a; b ] ->
            if bsense then
              join_env (cond ss env a true)
                (cond ss (cond ss env a false) b true)
            else cond ss (cond ss env a false) b false
        | Some p, [ a; b ] when List.mem p compare_prims ->
            let env, va, sa = eval_operand ss env a in
            let env, vb, sb = eval_operand ss env b in
            if debug_all then
              Printf.eprintf "DEBUG cond %s sense=%b int=%b a=%s b=%s\n" p
                bsense
                (is_int_type a.exp_type)
                (value_str va) (value_str vb);
            if not (is_int_type a.exp_type) then env
            else
              let rel d sw =
                let x = (va, sa) and y = (vb, sb) in
                let x, y = if sw then (y, x) else (x, y) in
                apply_rel env x d y
              in
              (match (p, bsense) with
              | "%lessthan", true | "%greaterequal", false -> rel `Lt false
              | "%greaterthan", true | "%lessequal", false -> rel `Lt true
              | "%lessequal", true | "%greaterthan", false -> rel `Le false
              | "%greaterequal", true | "%lessthan", false -> rel `Le true
              | ("%equal" | "%eq"), true | ("%notequal" | "%noteq"), false ->
                  rel `Eq false
              | _ -> rel `Ne false)
        | None, _ -> (
            match ref_target ~unit_name:ss.ss_unit ~aliases:ss.ss_aliases path with
            | Some ("Graph", "csr_valid") -> (
                match argl with
                | [ g ] -> (
                    let env, gv = eval ss env g in
                    match root_of_value gv with
                    | Some r when bsense -> seed_csr env r
                    | _ -> env)
                | _ -> fst (eval ss env e))
            | Some ("Float_int_heap", "is_empty") -> (
                match argl with
                | [ t ] -> (
                    let env, tv = eval ss env t in
                    match root_of_value tv with
                    | Some r -> (
                        let env = materialize_heap env r in
                        let key = r ^ "#size" in
                        match SMap.find_opt key env.paths with
                        | Some (Int iv, mut) ->
                            if bsense then
                              let env =
                                fact_le env (exact_of iv) (Some (const 0))
                              in
                              {
                                env with
                                paths =
                                  SMap.add key
                                    (Int (mk_iv iv.los (const 0 :: iv.his)), mut)
                                    env.paths;
                              }
                            else
                              let env =
                                match exact_of iv with
                                | Some x -> add_fact env (const 1) x
                                | None -> env
                              in
                              {
                                env with
                                paths =
                                  SMap.add key
                                    (Int (mk_iv (const 1 :: iv.los) iv.his), mut)
                                    env.paths;
                              }
                        | _ -> env)
                    | None -> env)
                | _ -> fst (eval ss env e))
            | _ -> fst (eval ss env e))
        | Some p, args ->
            if debug_all then
              Printf.eprintf "DEBUG cond-skip prim=%s arity=%d\n" p
                (List.length args);
            fst (eval ss env e))
    | _ -> fst (eval ss env e)

and eval_apply ss env e (f : Typedtree.expression) args =
  let argl = List.filter_map snd args in
  let partial = List.exists (fun (_, a) -> a = None) args in
  match f.exp_desc with
  | Typedtree.Texp_ident (path, _, vd) -> (
      match prim_name vd with
      | Some p when not partial ->
          (* Licence discipline keys off the *name*, not the primitive:
             under `--profile safe` the Geacc_unsafe externals map to the
             checked primitives, and @bounds must still consume and
             re-prove their licences identically in both profiles. *)
          let licensed = is_unsafe_name (Path.last path) in
          call_prim ss env e ~licensed p argl
      | Some _ ->
          let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
          (env, Fun)
      | None -> (
          match ref_target ~unit_name:ss.ss_unit ~aliases:ss.ss_aliases path with
          | Some (base, name) when not partial ->
              call_named ss env e (base, name) argl
          | _ ->
              let env =
                List.fold_left (fun env a -> fst (eval ss env a)) env argl
              in
              if partial then (env, Fun) else unknown_call_evaluated ss env e))
  | _ ->
      let env, _ = eval ss env f in
      let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
      if partial then (env, Fun) else unknown_call_evaluated ss env e

(* ---------- primitives ---------- *)

and call_prim ss env e ?(licensed = false) p argl =
  let arith2 op =
    match argl with
    | [ a; b ] -> (
        let env, va = eval ss env a in
        let env, vb = eval ss env b in
        match (va, vb) with
        | Int ia, Int ib -> (env, op env ia ib)
        | _ -> (env, Top))
    | _ ->
        let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
        (env, Top)
  in
  match p with
  | "%array_safe_get" | "%array_unsafe_get" | "%string_safe_get"
  | "%string_unsafe_get" | "%bytes_safe_get" | "%bytes_unsafe_get" -> (
      match argl with
      | [ ae; ie ] -> (
          let env, av = eval ss env ae in
          let env, iv = eval ss env ie in
          let arraylike = p = "%array_safe_get" || p = "%array_unsafe_get" in
          let unsafe =
            licensed
            || p = "%array_unsafe_get"
            || p = "%string_unsafe_get"
            || p = "%bytes_unsafe_get"
          in
          if arraylike || unsafe then
            classify_site env e.exp_loc ~unsafe av iv;
          match av with
          | Arr t when arraylike -> (
              match Hashtbl.find_opt tok_content t with
              | Some c -> (env, Int c)
              | None -> default_value env e.exp_type)
          | _ -> default_value env e.exp_type)
      | _ ->
          let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
          default_value env e.exp_type)
  | "%array_safe_set" | "%array_unsafe_set" | "%bytes_safe_set"
  | "%bytes_unsafe_set" -> (
      match argl with
      | [ ae; ie; ve ] ->
          let env, av = eval ss env ae in
          let env, iv = eval ss env ie in
          let env, _ = eval ss env ve in
          let unsafe =
            licensed || p = "%array_unsafe_set" || p = "%bytes_unsafe_set"
          in
          classify_site env e.exp_loc ~unsafe av iv;
          (match av with Arr t -> Hashtbl.remove tok_content t | _ -> ());
          (env, Top)
      | _ ->
          let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
          (env, Top))
  | "%array_length" -> (
      match argl with
      | [ ae ] -> (
          let env, av = eval ss env ae in
          match av with
          | Arr t ->
              let env = add_fact env (const 0) (len_aff t) in
              (env, Int (of_aff (len_aff t)))
          | _ -> default_value env e.exp_type)
      | _ -> (env, Top))
  | "caml_make_vect" | "caml_make_float_vect" | "caml_array_make" -> (
      match argl with
      | ne :: rest -> (
          let env, nv = eval ss env ne in
          let env =
            List.fold_left (fun env a -> fst (eval ss env a)) env rest
          in
          let t, env = fresh_tok env in
          match nv with
          | Int iv ->
              let env =
                List.fold_left
                  (fun env l -> add_fact env l (len_aff t))
                  env iv.los
              in
              let env =
                List.fold_left
                  (fun env h -> add_fact env (len_aff t) h)
                  env iv.his
              in
              (env, Arr t)
          | _ -> (env, Arr t))
      | [] -> (env, Top))
  | "%makemutable" -> (
      match argl with
      | [ ie ] ->
          let env, v = eval ss env ie in
          (env, RefVal v)
      | _ -> (env, Top))
  | "%field0" -> (
      match argl with
      | [ re ] -> (
          let env, rv = eval ss env re in
          match rv with
          | RefCell r -> (
              match SMap.find_opt r env.refs with
              | Some v -> (env, v)
              | None ->
                  let env, v = default_value env e.exp_type in
                  ({ env with refs = SMap.add r v env.refs }, v))
          | RefVal v -> (env, v)
          | _ -> default_value env e.exp_type)
      | _ -> (env, Top))
  | "%setfield0" -> (
      match argl with
      | [ re; ve ] -> (
          let env, rv = eval ss env re in
          let env, v = eval ss env ve in
          match rv with
          | RefCell r -> ({ env with refs = SMap.add r v env.refs }, Top)
          | _ -> (env, Top))
      | _ -> (env, Top))
  | "%incr" | "%decr" -> (
      match argl with
      | [ re ] -> (
          let env, rv = eval ss env re in
          match rv with
          | RefCell r -> (
              let d = if p = "%incr" then 1 else -1 in
              match SMap.find_opt r env.refs with
              | Some (Int iv) ->
                  ( { env with refs = SMap.add r (Int (iv_shift iv d)) env.refs },
                    Top )
              | _ -> ({ env with refs = SMap.add r Top env.refs }, Top))
          | _ -> (env, Top))
      | _ -> (env, Top))
  | "%addint" -> arith2 (fun _ a b -> Int (iv_add a b))
  | "%subint" -> arith2 (fun _ a b -> Int (iv_sub a b))
  | "%succint" -> (
      match argl with
      | [ a ] -> (
          let env, va = eval ss env a in
          match va with Int iv -> (env, Int (iv_shift iv 1)) | _ -> (env, Top))
      | _ -> (env, Top))
  | "%predint" -> (
      match argl with
      | [ a ] -> (
          let env, va = eval ss env a in
          match va with
          | Int iv -> (env, Int (iv_shift iv (-1)))
          | _ -> (env, Top))
      | _ -> (env, Top))
  | "%negint" -> (
      match argl with
      | [ a ] -> (
          let env, va = eval ss env a in
          match va with Int iv -> (env, Int (iv_neg iv)) | _ -> (env, Top))
      | _ -> (env, Top))
  | "%mulint" ->
      arith2 (fun _ a b ->
          match (exact_of a, exact_of b) with
          | Some x, _ when is_const x -> Int (iv_mul_const b x.c)
          | _, Some y when is_const y -> Int (iv_mul_const a y.c)
          | _ -> Top)
  | "%divint" ->
      (* Only the nonneg-by-positive-constant case: 0 <= a/d <= max a. *)
      arith2 (fun env a b ->
          match exact_of b with
          | Some d when is_const d && d.c >= 1 && iv_ge env.facts a 0 ->
              Int (mk_iv [ const 0 ] a.his)
          | _ -> Top)
  | "%modint" ->
      arith2 (fun env a b ->
          match exact_of b with
          | Some d when is_const d && d.c >= 1 && iv_ge env.facts a 0 ->
              Int (mk_iv [ const 0 ] [ const (d.c - 1) ])
          | _ -> Top)
  | "%apply" -> (
      match argl with
      | [ fe; xe ] -> eval_apply ss env e fe [ (Asttypes.Nolabel, Some xe) ]
      | _ -> (env, Top))
  | "%revapply" -> (
      match argl with
      | [ xe; fe ] -> eval_apply ss env e fe [ (Asttypes.Nolabel, Some xe) ]
      | _ -> (env, Top))
  | "%identity" | "%opaque" -> (
      match argl with
      | [ a ] -> eval ss env a
      | _ -> (env, Top))
  | "%ignore" ->
      let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
      (env, Top)
  | "%raise" | "%reraise" | "%raise_notrace" ->
      let env = List.fold_left (fun env a -> fst (eval ss env a)) env argl in
      ({ env with dead = true }, Top)
  | _ ->
      (* Unknown primitive: evaluate, be pessimistic about array contents
         (caml_array_blit and friends mutate elements in place), return by
         type. Primitives never touch our record snapshots. *)
      let env, avs = eval_list ss env argl in
      List.iter
        (fun v -> match v with Arr t -> Hashtbl.remove tok_content t | _ -> ())
        avs;
      default_value env e.exp_type

(* ---------- named calls: models, stdlib, unknown ---------- *)

and call_named ss env e (base, name) argl =
  (* Contract-licence discipline for unsafe_* calls. The csr slice
     accessors get a sharper, csr-aware check in the Graph model. *)
  let is_csr_accessor =
    String.length name >= 11 && String.sub name 0 11 = "unsafe_csr_"
  in
  if is_unsafe_name name && not is_csr_accessor then begin
    let file = e.exp_loc.Location.loc_start.Lexing.pos_fname in
    match licence_at e.exp_loc with
    | L_none ->
        report e.exp_loc "bounds-unlicensed"
          (Printf.sprintf
             "call to %s without a `bounds: proved — <contract>` licence" name)
    | L_bare ->
        report e.exp_loc "bounds-unlicensed"
          (Printf.sprintf "call to %s under a bare licence (no contract stated)"
             name)
    | L_reasoned -> count file true
  end;
  match base with
  | "Graph" -> (
      match graph_model ss env e name argl with
      | Some r -> r
      | None -> unknown_call ss env e argl)
  | "Float_int_heap" -> (
      match heap_model ss env e name argl with
      | Some r -> r
      | None -> unknown_call ss env e argl)
  | "Int_bucket_queue" -> (
      match bucket_model ss env e name argl with
      | Some r -> r
      | None -> unknown_call ss env e argl)
  | "Point" when name = "dim" -> (
      match argl with
      | [ pe ] -> (
          let env, pv = eval ss env pe in
          match pv with
          | Arr t ->
              let env = add_fact env (const 0) (len_aff t) in
              (env, Int (of_aff (len_aff t)))
          | _ -> default_value env e.exp_type)
      | _ -> unknown_call ss env e argl)
  | _ when List.mem base stdlib_units ->
      if List.mem name noreturn_names then begin
        let env, _ = eval_list ss env argl in
        ({ env with dead = true }, Top)
      end
      else stdlib_generic ss env e argl
  | _ when List.mem name noreturn_names ->
      let env, _ = eval_list ss env argl in
      ({ env with dead = true }, Top)
  | _ -> unknown_call ss env e argl

(* A stdlib call never captures our records: it may mutate what it was
   handed (havoc Root args, drop array content claims, forget ref-cell
   contents) but the rest of the world survives. A function argument can
   call back into anything — full havoc. *)
and stdlib_generic ss env e argl =
  let env, avs = eval_list ss env argl in
  let env =
    List.fold_left
      (fun env v ->
        match v with
        | Root r -> havoc_root env r
        | Arr t ->
            Hashtbl.remove tok_content t;
            env
        | RefCell r -> { env with refs = SMap.remove r env.refs }
        | _ -> env)
      env avs
  in
  let env = if List.exists (fun v -> v = Fun) avs then full_havoc env else env in
  default_value env e.exp_type

and unknown_call ss env e argl =
  let env, _ = eval_list ss env argl in
  unknown_call_evaluated ss env e

and unknown_call_evaluated _ss env (e : Typedtree.expression) =
  let env = full_havoc env in
  default_value env e.exp_type

(* ---------- the Graph model ---------- *)

(* Caller-side summaries of Geacc_flow.Graph. The narrowings echo the
   callee's own asserts (check_arc / check_pos / the out_begin asserts);
   push/reset_flow/unsafe_set_residual_capacity are benign: they touch
   only capacity cells, never the counts or the field bindings. *)
and graph_model ss env e name argl =
  let ret_default env = Some (default_value env e.exp_type) in
  let with_root k =
    match argl with
    | ge :: rest -> (
        let env, gv = eval ss env ge in
        match root_of_value gv with
        | Some r -> k env r rest
        | None ->
            let env =
              List.fold_left (fun env a -> fst (eval ss env a)) env rest
            in
            ret_default env)
    | [] -> ret_default env
  in
  let counts env r =
    let env = materialize_graph env r in
    let env, nv = get_path env r "num_nodes" ~mut:false `Int in
    let env, cv = get_path env r "count" ~mut:true `Int in
    (env, exact_int nv, exact_int cv)
  in
  let pred = Option.map (fun x -> aff_shift x (-1)) in
  let narrow1 env rest lo hi =
    match rest with
    | a :: more ->
        let env = narrow_arg ss env a lo hi in
        List.fold_left (fun env x -> fst (eval ss env x)) env more
    | [] -> env
  in
  let clear_content env r fields =
    List.iter
      (fun f ->
        match SMap.find_opt (r ^ "#" ^ f) env.paths with
        | Some (Arr t, _) -> Hashtbl.remove tok_content t
        | _ -> ())
      fields
  in
  let bounds lo hi = Int (mk_iv (Option.to_list lo) (Option.to_list hi)) in
  match name with
  | "create" ->
      let env, avs = eval_list ss env argl in
      let r = fresh_root () in
      let env =
        match avs with
        | (Int _ as nv) :: _ ->
            {
              env with
              paths =
                SMap.add (r ^ "#count")
                  (Int (iv_int 0), true)
                  (SMap.add (r ^ "#num_nodes") (nv, false) env.paths);
            }
        | _ -> env
      in
      Some (env, Root r)
  | "node_count" ->
      with_root (fun env r rest ->
          let env = materialize_graph env r in
          let env, nv = get_path env r "num_nodes" ~mut:false `Int in
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          Some (env, nv))
  | "arc_count" ->
      with_root (fun env r rest ->
          let env = materialize_graph env r in
          let env, cv = get_path env r "count" ~mut:true `Int in
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          Some (env, cv))
  | "check_arc" ->
      with_root (fun env r rest ->
          let env, _, c = counts env r in
          Some (narrow1 env rest (Some (const 0)) (pred c), Top))
  | "check_pos" ->
      with_root (fun env r rest ->
          let env = seed_csr env r in
          let env, _, c = counts env r in
          Some (narrow1 env rest (Some (const 0)) (pred c), Top))
  | "partner" -> (
      (* partner a = a lxor 1: pairs 2k <-> 2k+1, so any [0, count) range
         is preserved (documented pairing assumption, see DESIGN.md §13). *)
      match argl with
      | [ a ] ->
          let env, va = eval ss env a in
          Some (env, va)
      | _ -> None)
  | "dst" | "src" ->
      with_root (fun env r rest ->
          let env, n, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          Some (env, bounds (Some (const 0)) (pred n)))
  | "cost" | "icost" ->
      with_root (fun env r rest ->
          let env, _, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          ret_default env)
  | "residual_capacity" | "initial_capacity" | "flow" ->
      with_root (fun env r rest ->
          let env, _, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          ret_default env)
  | "excess" ->
      with_root (fun env r rest ->
          let env, n, _ = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred n) in
          ret_default env)
  | "csr_valid" ->
      with_root (fun env r rest ->
          let env = materialize_graph env r in
          ignore r;
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          Some (env, Top))
  | "push" | "unsafe_set_residual_capacity" ->
      with_root (fun env r rest ->
          let env, _, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          clear_content env r [ "cap_"; "csr_cap" ];
          Some (env, Top))
  | "reset_flow" ->
      with_root (fun env r rest ->
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          clear_content env r [ "cap_"; "csr_cap" ];
          Some (env, Top))
  | "add_arc" | "add_half" ->
      with_root (fun env r rest ->
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          ret_default (havoc_root env r))
  | "reserve" | "ensure_capacity" ->
      with_root (fun env r rest ->
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          Some (havoc_root env r, Top))
  | "finalize_csr" ->
      with_root (fun env r rest ->
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          Some (seed_csr (havoc_root env r) r, Top))
  | "first_out_arc" ->
      with_root (fun env r rest ->
          let env, n, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred n) in
          Some (env, bounds (Some (const (-1))) (pred c)))
  | "next_out_arc" ->
      with_root (fun env r rest ->
          let env, _, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          Some (env, bounds (Some (const (-1))) (pred c)))
  | "out_begin" | "out_end" ->
      with_root (fun env r rest ->
          let env = seed_csr env r in
          let env, n, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred n) in
          Some (env, bounds (Some (const 0)) c))
  | "pos_dst" ->
      with_root (fun env r rest ->
          let env = seed_csr env r in
          let env, n, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          Some (env, bounds (Some (const 0)) (pred n)))
  | "pos_cost" | "pos_icost" | "pos_residual_capacity" ->
      with_root (fun env r rest ->
          let env = seed_csr env r in
          let env, _, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          ret_default env)
  | "pos_arc" | "arc_position" ->
      with_root (fun env r rest ->
          let env = seed_csr env r in
          let env, _, c = counts env r in
          let env = narrow1 env rest (Some (const 0)) (pred c) in
          Some (env, bounds (Some (const 0)) (pred c)))
  | "unsafe_csr_dst" | "unsafe_csr_cost" | "unsafe_csr_icost" | "unsafe_csr_cap"
  | "unsafe_csr_arc" ->
      with_root (fun env r rest ->
          (* The licence must hold *at the call*: the caller owes the
             analyzer an established csr_valid (finalize_csr or a guard)
             on this root. The callee's own assert then re-seeds. *)
          let file = e.exp_loc.Location.loc_start.Lexing.pos_fname in
          (match licence_at e.exp_loc with
          | L_none ->
              report e.exp_loc "bounds-unlicensed"
                (Printf.sprintf
                   "call to Graph.%s without a `bounds: proved — <reason>` \
                    licence"
                   name)
          | L_bare ->
              report e.exp_loc "bounds-unlicensed"
                (Printf.sprintf
                   "call to Graph.%s under a bare licence (no reason stated)"
                   name)
          | L_reasoned ->
              if csr_known env r then count file true
              else
                report e.exp_loc "bounds-unproved"
                  (Printf.sprintf
                     "stale licence: csr_valid not established for this graph \
                      before Graph.%s"
                     name));
          let env = seed_csr env r in
          let field = String.sub name 7 (String.length name - 7) in
          let env, v = get_path env r field ~mut:true `Arr in
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          Some (env, v))
  | "iter_out_arcs" | "fold_forward_arcs" ->
      with_root (fun env _r rest ->
          let env =
            List.fold_left (fun env x -> fst (eval ss env x)) env rest
          in
          ret_default (full_havoc env))
  | _ -> None

(* ---------- the Float_int_heap model ---------- *)

and heap_model ss env e name argl =
  let ret_default env = Some (default_value env e.exp_type) in
  let with_root k =
    match argl with
    | te :: rest -> (
        let env, tv = eval ss env te in
        let env, rest_env_done =
          ( List.fold_left (fun env a -> fst (eval ss env a)) env rest,
            () )
        in
        ignore rest_env_done;
        match root_of_value tv with
        | Some r -> k env r
        | None -> ret_default env)
    | [] -> ret_default env
  in
  match name with
  | "create" ->
      let env, _ = eval_list ss env argl in
      Some (env, Root (fresh_root ()))
  | "push" | "drop_min" | "clear" ->
      with_root (fun env r -> Some (havoc_root env r, Top))
  | "pop" -> with_root (fun env r -> ret_default (havoc_root env r))
  | "grow" ->
      with_root (fun env r ->
          let env = havoc_root env r in
          let env = materialize_heap env r in
          let env, sv = get_path env r "size" ~mut:true `Int in
          let env, kv = get_path env r "keys" ~mut:true `Arr in
          let env =
            fact_le env (exact_int sv)
              (Option.map (fun l -> aff_shift l (-1)) (len_of kv))
          in
          Some (env, Top))
  | "length" ->
      with_root (fun env r ->
          let env = materialize_heap env r in
          let env, sv = get_path env r "size" ~mut:true `Int in
          Some (env, sv))
  | "is_empty" | "check_invariant" -> with_root (fun env _r -> Some (env, Top))
  | "min_key" -> with_root (fun env _r -> Some (env, Top))
  | "min_payload" -> with_root (fun env _r -> ret_default env)
  | _ -> None

(* ---------- the Int_bucket_queue model ---------- *)

(* Caller-side (and intra-module helper-call) summaries of the radix
   bucket queue. The mutators havoc only the queue root — CSR claims on
   other roots survive the Dijkstra pop/push cycle, which is the whole
   point: the integer kernel must not lose its licences to the queue.
   [bucket_index] is pure and its result lies in [0, 64), the documented
   msb bound the 64-slot columns of [materialize_bucket] are sized for. *)
and bucket_model ss env e name argl =
  let ret_default env = Some (default_value env e.exp_type) in
  let with_root k =
    match argl with
    | te :: rest -> (
        let env, tv = eval ss env te in
        let env =
          List.fold_left (fun env a -> fst (eval ss env a)) env rest
        in
        match root_of_value tv with
        | Some r -> k env r
        | None -> ret_default env)
    | [] -> ret_default env
  in
  match name with
  | "create" ->
      let env, _ = eval_list ss env argl in
      Some (env, Root (fresh_root ()))
  | "bucket_index" ->
      let env, _ = eval_list ss env argl in
      Some (env, Int (mk_iv [ const 0 ] [ const 63 ]))
  | "push" | "drop_min" | "clear" | "append" | "ensure_min" ->
      with_root (fun env r -> Some (havoc_root env r, Top))
  | "pop" -> with_root (fun env r -> ret_default (havoc_root env r))
  | "length" ->
      with_root (fun env r ->
          let env = materialize_bucket env r in
          let env, sv = get_path env r "size" ~mut:true `Int in
          Some (env, sv))
  | "is_empty" | "check_invariant" -> with_root (fun env _r -> Some (env, Top))
  | "min_key" | "min_payload" -> with_root (fun env r -> ret_default (havoc_root env r))
  | _ -> None

(* ---------- loops ---------- *)

(* The loop fixpoint. Every Int-valued ref is re-bound at the loop head to
   a fresh exact symbol constrained by candidate bounds; exactness keeps
   derived quantities (at, 2*at+1, 2*at+2) correlated affines over the
   same symbol, which the narrowing facts then relate to the seeds.
   Candidates must hold at entry (so zero-iteration paths stay sound) and
   are verified to be re-established at the end of every body run; paths /
   csr claims survive only if stable through the body. The body is
   re-analyzed silently until the candidate set converges, then once more
   with reporting on. *)
and loop_fix _ss env0 ~entry_facts ?(exclude = -1) run_body =
  let saved = !reporting in
  reporting := false;
  let mark = !sym_counter in
  let aff_stable a = is_const a || (a.s <= mark && a.s <> exclude) in
  let pool =
    let add _ v acc =
      match exact_int v with
      | Some a
        when aff_stable a
             && (not (List.exists (fun x -> x = a) acc))
             && List.length acc < 24 ->
          a :: acc
      | _ -> acc
    in
    let acc = SMap.fold add env0.vars [] in
    let acc = SMap.fold add env0.refs acc in
    SMap.fold (fun k (v, _) acc -> add k v acc) env0.paths acc
  in
  let init_cands v =
    match v with
    | Int iv ->
        let los0 = List.filter aff_stable iv.los in
        let his0 = List.filter aff_stable iv.his in
        let los0 =
          if
            List.exists (fun l -> le entry_facts (const 0) l) iv.los
            && not (List.exists (fun l -> l = const 0) los0)
          then const 0 :: los0
          else los0
        in
        let his0 =
          List.fold_left
            (fun acc a ->
              let try_add acc cand =
                if
                  List.exists (fun h -> le entry_facts h cand) iv.his
                  && not (List.exists (fun x -> x = cand) acc)
                then cand :: acc
                else acc
              in
              try_add (try_add acc a) (aff_shift a (-1)))
            his0 pool
        in
        Some (los0, his0)
    | _ -> None
  in
  let cands = ref (SMap.filter_map (fun _ v -> init_cands v) env0.refs) in
  let nonint =
    SMap.filter (fun _ v -> match v with Int _ -> false | _ -> true) env0.refs
  in
  let unstable = ref SMap.empty in
  let kept_paths = ref (SMap.map (fun _ -> ()) env0.paths) in
  let kept_csr = ref env0.csr in
  let build_head () =
    let env =
      {
        env0 with
        paths = SMap.filter (fun k _ -> SMap.mem k !kept_paths) env0.paths;
        csr = !kept_csr;
      }
    in
    let env =
      SMap.fold
        (fun r (los, his) env ->
          let s = sym (fresh_sym ()) in
          let env = { env with refs = SMap.add r (Int (of_aff s)) env.refs } in
          let env = List.fold_left (fun env l -> add_fact env l s) env los in
          List.fold_left (fun env h -> add_fact env s h) env his)
        !cands env
    in
    SMap.fold
      (fun r v env ->
        let v = if SMap.mem r !unstable then Top else v in
        { env with refs = SMap.add r v env.refs })
      nonint env
  in
  let changed = ref true in
  let rounds = ref 0 in
  let head = ref (build_head ()) in
  while !changed && !rounds < 12 do
    incr rounds;
    changed := false;
    let h = !head in
    let e = run_body h in
    if not e.dead then begin
      cands :=
        SMap.mapi
          (fun r (los, his) ->
            match SMap.find_opt r e.refs with
            | Some (Int iv) ->
                let los' = List.filter (fun l -> iv_ge_aff e.facts iv l) los in
                let his' = List.filter (fun h -> iv_le_aff e.facts iv h) his in
                if
                  List.length los' <> List.length los
                  || List.length his' <> List.length his
                then changed := true;
                (los', his')
            | _ ->
                if los <> [] || his <> [] then changed := true;
                ([], []))
          !cands;
      SMap.iter
        (fun r v ->
          if not (SMap.mem r !unstable) then
            let hv =
              match SMap.find_opt r h.refs with Some v' -> v' | None -> v
            in
            match SMap.find_opt r e.refs with
            | Some ev when value_stable hv ev -> ()
            | _ ->
                unstable := SMap.add r () !unstable;
                changed := true)
        nonint;
      kept_paths :=
        SMap.filter
          (fun k () ->
            match SMap.find_opt k env0.paths with
            | Some (_, false) -> true
            | Some (hv0, true) -> (
                let hv =
                  match SMap.find_opt k h.paths with
                  | Some (v, _) -> v
                  | None -> hv0
                in
                match SMap.find_opt k e.paths with
                | Some (ev, _) ->
                    if value_stable hv ev then true
                    else begin
                      changed := true;
                      false
                    end
                | None ->
                    changed := true;
                    false)
            | None -> false)
          !kept_paths;
      let csr' = SMap.filter (fun r () -> SMap.mem r e.csr) !kept_csr in
      if SMap.cardinal csr' <> SMap.cardinal !kept_csr then changed := true;
      kept_csr := csr'
    end;
    if !changed then head := build_head ()
  done;
  reporting := saved;
  let h = !head in
  ignore (run_body h);
  h

and while_fix ss env guard body =
  let head =
    loop_fix ss env ~entry_facts:env.facts (fun h ->
        let h = cond ss h guard true in
        fst (eval ss h body))
  in
  (cond ss head guard false, Top)

and for_fix ss env id lo hi dir body =
  let env, lov = eval ss env lo in
  let env, hiv = eval ss env hi in
  let entry_facts = env.facts in
  let s = sym (fresh_sym ()) in
  let lob, hib =
    match dir with
    | Asttypes.Upto -> (lov, hiv)
    | Asttypes.Downto -> (hiv, lov)
  in
  let benv = bind_name env (Ident.name id) (Int (of_aff s)) in
  let benv =
    match lob with
    | Int iv -> List.fold_left (fun e' l -> add_fact e' l s) benv iv.los
    | _ -> benv
  in
  let benv =
    match hib with
    | Int iv -> List.fold_left (fun e' h -> add_fact e' s h) benv iv.his
    | _ -> benv
  in
  let head =
    loop_fix ss benv ~entry_facts ~exclude:s.s (fun h -> fst (eval ss h body))
  in
  (* The loop-variable range holds only if the loop ran: strip it from the
     exit environment (zero-iteration soundness). *)
  let strip =
    List.filter (fun (a, b) ->
        not ((a.k <> 0 && a.s = s.s) || (b.k <> 0 && b.s = s.s)))
  in
  ({ head with facts = strip head.facts }, Top)

(* ---------- structure scan ---------- *)

let report_file path rule message =
  diags :=
    { Lint_core.file = path; line = 1; col = 0; rule; message } :: !diags

let register_module ss (mb : Typedtree.module_binding) =
  match (mb.mb_id, mb.mb_expr.mod_desc) with
  | Some id, Typedtree.Tmod_ident (p, _) ->
      Hashtbl.replace ss.ss_aliases (Ident.name id) (norm_unit (Path.last p))
  | _ -> ()

let rec scan_structure ss (str : Typedtree.structure) =
  (* Module aliases first, so forward references resolve. *)
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_module mb -> register_module ss mb
      | Typedtree.Tstr_recmodule mbs -> List.iter (register_module ss) mbs
      | _ -> ())
    str.str_items;
  List.iter (scan_item ss) str.str_items

and scan_item ss (item : Typedtree.structure_item) =
  match item.str_desc with
  | Typedtree.Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          (match vb.vb_pat.pat_desc with
          | Typedtree.Tpat_var (id, _) when is_unsafe_name (Ident.name id) -> (
              match licence_at vb.vb_pat.pat_loc with
              | L_reasoned -> ()
              | L_bare | L_none ->
                  report vb.vb_pat.pat_loc "bounds-unsafe-def"
                    (Printf.sprintf
                       "definition of %s needs a `bounds: proved — <contract>` \
                        licence stating what callers owe"
                       (Ident.name id)))
          | _ -> ());
          try ignore (eval ss empty_env vb.vb_expr)
          with exn ->
            report vb.vb_loc "cmt-error"
              (Printf.sprintf "analysis failed: %s" (Printexc.to_string exn)))
        vbs
  | Typedtree.Tstr_eval (e, _) -> (
      try ignore (eval ss empty_env e)
      with exn ->
        report e.exp_loc "cmt-error"
          (Printf.sprintf "analysis failed: %s" (Printexc.to_string exn)))
  | Typedtree.Tstr_module mb -> scan_module ss mb
  | Typedtree.Tstr_recmodule mbs -> List.iter (scan_module ss) mbs
  | _ -> ()

and scan_module ss (mb : Typedtree.module_binding) =
  match mb.mb_expr.mod_desc with
  | Typedtree.Tmod_structure str -> scan_structure ss str
  | Typedtree.Tmod_constraint (me, _, _, _) -> (
      match me.mod_desc with
      | Typedtree.Tmod_structure str -> scan_structure ss str
      | _ -> ())
  | _ -> ()

let scan_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      report_file path "cmt-error"
        (Printf.sprintf "cannot read cmt: %s" (Printexc.to_string exn))
  | cmt -> (
      match cmt.Cmt_format.cmt_sourcefile with
      | Some src when analyzed src -> (
          Hashtbl.replace seen_files src ();
          match cmt.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str ->
              let ss =
                {
                  ss_unit = norm_unit cmt.Cmt_format.cmt_modname;
                  ss_aliases = Hashtbl.create 8;
                }
              in
              scan_structure ss str
          | _ -> ())
      | _ -> ())

(* ---------- driver ---------- *)

let () =
  let format, roots =
    Lint_core.parse_argv ~tool:"geacc_bounds" ~rules Sys.argv
  in
  let files =
    List.concat_map
      (fun r -> Lint_core.walk ~skip_dir:(fun d -> String.equal d ".git") r [])
      roots
  in
  let cmts =
    List.sort_uniq String.compare
      (List.filter (fun f -> Filename.check_suffix f ".cmt") files)
  in
  List.iter scan_cmt cmts;
  (* Orphan licences: a `bounds: proved` line no unsafe site consumed. *)
  Hashtbl.iter
    (fun src () ->
      Array.iteri
        (fun i line ->
          if
            Lint_core.contains_marker line licence_marker
            && not (Hashtbl.mem consumed (src, i + 1))
          then
            diags :=
              {
                Lint_core.file = src;
                line = i + 1;
                col = 0;
                rule = "bounds-orphan-licence";
                message =
                  "licence justifies no unsafe site (stale or misplaced)";
              }
              :: !diags)
        (source_lines src))
    seen_files;
  if Sys.getenv_opt "GEACC_BOUNDS_SUMMARY" = Some "1" then begin
    let entries = Hashtbl.fold (fun f c acc -> (f, c) :: acc) counters [] in
    List.iter
      (fun (f, c) ->
        Printf.eprintf "%s: %d proved, %d unknown\n" f c.proved c.unknown)
      (List.sort compare entries)
  end;
  let uniq = List.sort_uniq compare !diags in
  exit (Lint_core.emit ~format ~tool:"geacc_bounds" uniq)
