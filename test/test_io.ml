(* Serialisation: round-trips, format fidelity, malformed-input errors. *)

open Geacc_core
module Io = Geacc_io.Instance_io
module Synthetic = Geacc_datagen.Synthetic

let instances_equal a b =
  Instance.n_events a = Instance.n_events b
  && Instance.n_users a = Instance.n_users b
  && Array.for_all2
       (fun (x : Entity.t) (y : Entity.t) ->
         x.Entity.capacity = y.Entity.capacity && x.Entity.attrs = y.Entity.attrs)
       (Instance.events a) (Instance.events b)
  && Array.for_all2
       (fun (x : Entity.t) (y : Entity.t) ->
         x.Entity.capacity = y.Entity.capacity && x.Entity.attrs = y.Entity.attrs)
       (Instance.users a) (Instance.users b)
  &&
  let pairs cf =
    let acc = ref [] in
    Conflict.iter_pairs cf (fun v w -> acc := (v, w) :: !acc);
    List.sort compare !acc
  in
  pairs (Instance.conflicts a) = pairs (Instance.conflicts b)
  && Similarity.spec (Instance.similarity a)
     = Similarity.spec (Instance.similarity b)

let test_instance_roundtrip () =
  let t =
    Synthetic.generate ~seed:1
      { Synthetic.default with Synthetic.n_events = 10; n_users = 25; dim = 3 }
  in
  let t' = Io.load_instance (Io.save_instance t) in
  Alcotest.(check bool) "round-trip preserves everything" true
    (instances_equal t t');
  (* Similarities agree numerically on a sample pair. *)
  Alcotest.(check (float 1e-12)) "sim identical" (Instance.sim t ~v:3 ~u:7)
    (Instance.sim t' ~v:3 ~u:7)

let test_instance_roundtrip_other_sims () =
  let mk sim =
    let e = [| Entity.make ~id:0 ~attrs:[| 0.25; 0.5 |] ~capacity:2 |] in
    let u =
      [|
        Entity.make ~id:0 ~attrs:[| 0.5; 0.5 |] ~capacity:1;
        Entity.make ~id:1 ~attrs:[| 0.; 1. |] ~capacity:1;
      |]
    in
    Instance.create ~sim ~events:e ~users:u
      ~conflicts:(Conflict.create ~n_events:1) ()
  in
  List.iter
    (fun sim ->
      let t = mk sim in
      Alcotest.(check bool)
        (Similarity.name sim ^ " round-trips")
        true
        (instances_equal t (Io.load_instance (Io.save_instance t))))
    [ Similarity.gaussian ~sigma:0.7; Similarity.cosine ]

let test_custom_sim_not_serialisable () =
  let sim = Similarity.custom ~name:"opaque" (fun _ _ -> 1.) in
  let e = [| Entity.make ~id:0 ~attrs:[| 0. |] ~capacity:1 |] in
  let t =
    Instance.create ~sim ~events:e ~users:e
      ~conflicts:(Conflict.create ~n_events:1) ()
  in
  Alcotest.(check bool) "custom similarity rejected" true
    (try
       ignore (Io.save_instance t);
       false
     with Invalid_argument _ -> true)

let test_file_roundtrip () =
  let t =
    Synthetic.generate ~seed:2
      { Synthetic.default with Synthetic.n_events = 5; n_users = 8; dim = 2 }
  in
  let path = Filename.temp_file "geacc_test" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write_instance ~path t;
      Alcotest.(check bool) "file round-trip" true
        (instances_equal t (Io.read_instance ~path)))

let test_pairs_roundtrip () =
  let pairs = [ (0, 3); (2, 1); (4, 4) ] in
  Alcotest.(check (list (pair int int))) "pairs round-trip" pairs
    (Io.load_pairs (Io.save_pairs pairs));
  Alcotest.(check (list (pair int int))) "empty matching" []
    (Io.load_pairs (Io.save_pairs []))

let test_comments_and_blanks_ignored () =
  let text =
    "# a comment\n\ngeacc-matching 1\n  pairs 1  \n# another\n3 4\n\n"
  in
  Alcotest.(check (list (pair int int))) "lenient whitespace" [ (3, 4) ]
    (Io.load_pairs text)

let expect_parse_error text =
  try
    ignore (Io.load_pairs text);
    false
  with Io.Parse_error _ -> true

let expect_instance_error text =
  try
    ignore (Io.load_instance text);
    false
  with Io.Parse_error _ -> true

let test_malformed_inputs () =
  Alcotest.(check bool) "bad magic" true (expect_parse_error "nonsense 1\npairs 0\n");
  Alcotest.(check bool) "missing count" true
    (expect_parse_error "geacc-matching 1\npairs\n");
  Alcotest.(check bool) "non-integer pair" true
    (expect_parse_error "geacc-matching 1\npairs 1\nx y\n");
  Alcotest.(check bool) "truncated" true
    (expect_parse_error "geacc-matching 1\npairs 2\n0 0\n");
  Alcotest.(check bool) "trailing garbage" true
    (expect_parse_error "geacc-matching 1\npairs 1\n0 0\nleftover\n")

let test_malformed_instances () =
  Alcotest.(check bool) "bad sim" true
    (expect_instance_error "geacc-instance 1\nsim nonsense\nevents 0\nusers 0\nconflicts 0\n");
  Alcotest.(check bool) "bad entity line" true
    (expect_instance_error
       "geacc-instance 1\nsim euclidean 1 1\nevents 1\nnot-a-number 0.5\nusers 0\nconflicts 0\n");
  Alcotest.(check bool) "conflict out of range" true
    (expect_instance_error
       "geacc-instance 1\nsim euclidean 1 1\nevents 1\n1 0.5\nusers 1\n1 0.5\nconflicts 1\n0 5\n");
  Alcotest.(check bool) "missing section" true
    (expect_instance_error "geacc-instance 1\nsim euclidean 1 1\nusers 0\n")

(* Hardened instance validation: each rejection carries the offending line
   and a message precise enough to pin. *)
let expect_instance_error_message text ~line ~needle =
  match Io.load_instance text with
  | _ -> Alcotest.failf "accepted instance with %s" needle
  | exception Io.Parse_error { line = l; message } ->
      Alcotest.(check int) (needle ^ ": line") line l;
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" message needle)
        true (contains message needle)

let test_rejects_non_finite_attributes () =
  List.iter
    (fun bad ->
      expect_instance_error_message
        (Printf.sprintf
           "geacc-instance 1\nsim euclidean 1 1\nevents 1\n1 %s\nusers 1\n1 \
            0.5\nconflicts 0\n"
           bad)
        ~line:4 ~needle:"not finite")
    [ "nan"; "inf"; "-inf" ]

let test_rejects_negative_capacity () =
  expect_instance_error_message
    "geacc-instance 1\nsim euclidean 1 1\nevents 1\n-2 0.5\nusers 1\n1 0.5\nconflicts 0\n"
    ~line:4 ~needle:"capacity -2 is negative"

let two_event_prefix =
  "geacc-instance 1\nsim euclidean 1 1\nevents 2\n1 0.5\n1 0.25\nusers 1\n1 0.5\nconflicts "

let test_rejects_bad_conflicts () =
  expect_instance_error_message
    (two_event_prefix ^ "1\n0 0\n")
    ~line:9 ~needle:"conflicts with itself";
  expect_instance_error_message
    (two_event_prefix ^ "1\n0 2\n")
    ~line:9 ~needle:"out of range";
  expect_instance_error_message
    (two_event_prefix ^ "1\n-1 0\n")
    ~line:9 ~needle:"out of range";
  expect_instance_error_message
    (two_event_prefix ^ "2\n0 1\n1 0\n")
    ~line:10 ~needle:"duplicate conflict pair"

let test_result_api () =
  (match Io.load_instance_result "geacc-instance 1\nsim nonsense\n" with
  | Error (Geacc_robust.Error.Parse_error { line; _ }) ->
      Alcotest.(check int) "error line" 2 line
  | Error e ->
      Alcotest.failf "unexpected error %s" (Geacc_robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "bad instance accepted");
  match Io.read_instance_result ~path:"/nonexistent/geacc.inst" with
  | Error (Geacc_robust.Error.Io_error { path; _ }) ->
      Alcotest.(check string) "path carried" "/nonexistent/geacc.inst" path
  | Error e ->
      Alcotest.failf "unexpected error %s" (Geacc_robust.Error.to_string e)
  | Ok _ -> Alcotest.fail "nonexistent file read"

let test_parse_error_carries_line () =
  try
    ignore (Io.load_pairs "geacc-matching 1\npairs 1\nbad line\n")
  with Io.Parse_error { line; _ } ->
    Alcotest.(check int) "line number" 3 line

let suite =
  [
    Alcotest.test_case "instance round-trip" `Quick test_instance_roundtrip;
    Alcotest.test_case "other similarities round-trip" `Quick
      test_instance_roundtrip_other_sims;
    Alcotest.test_case "custom sim not serialisable" `Quick
      test_custom_sim_not_serialisable;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "pairs round-trip" `Quick test_pairs_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick
      test_comments_and_blanks_ignored;
    Alcotest.test_case "malformed matchings" `Quick test_malformed_inputs;
    Alcotest.test_case "malformed instances" `Quick test_malformed_instances;
    Alcotest.test_case "parse error line numbers" `Quick
      test_parse_error_carries_line;
    Alcotest.test_case "rejects non-finite attributes" `Quick
      test_rejects_non_finite_attributes;
    Alcotest.test_case "rejects negative capacities" `Quick
      test_rejects_negative_capacity;
    Alcotest.test_case "rejects bad conflict pairs" `Quick
      test_rejects_bad_conflicts;
    Alcotest.test_case "result api" `Quick test_result_api;
  ]
