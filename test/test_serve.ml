(* Crash-safe serving loop: journal framing and recovery, snapshots,
   admission control, incremental repair equivalence, and the crash-injection
   sweep asserting that recovery from any checkpoint reaches the digest of an
   uninterrupted run.

   Everything runs on tiny Meetup-shaped traces; wall-clock deadlines are
   never armed — budget expiry goes through [timeout.<stage>@N] fault-plan
   entries so the degradations replay identically on every run. *)

module Serve = Geacc_serve
module Trace = Serve.Trace
module Journal = Serve.Journal
module Snapshot = Serve.Snapshot
module Admission = Serve.Admission
module Serve_state = Serve.Serve_state
module Serve_loop = Serve.Serve_loop
module Trace_gen = Geacc_datagen.Trace_gen
module Meetup = Geacc_datagen.Meetup
module Fault = Geacc_robust.Fault
module Error = Geacc_robust.Error

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let path = Filename.temp_file "geacc_serve" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let null_out f =
  let out = open_out Filename.null in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> f out)

let tiny_city = { Meetup.name = "tiny"; n_events = 8; n_users = 48 }

let tiny_trace ?(seed = 5) () =
  Trace_gen.generate ~seed ~city:tiny_city ~arrivals_per_batch:2 ~churn:0.15 ()

let run_ok config trace =
  null_out (fun out ->
      match Serve_loop.run config ~out trace with
      | Ok report -> report
      | Error e -> Alcotest.failf "serve failed: %s" (Error.to_string e))

(* -- Trace ------------------------------------------------------------- *)

let test_trace_roundtrip () =
  let trace = tiny_trace () in
  let text = Trace.save trace in
  match Trace.parse text with
  | Error e -> Alcotest.failf "re-parse failed: %s" (Error.to_string e)
  | Ok back ->
      Alcotest.(check string) "save/parse/save fixpoint" text (Trace.save back)

let test_trace_groups () =
  let batch seq ts = { Trace.seq; ts; tier = Trace.Must; ops = [] } in
  let groups =
    Trace.groups [ batch 1 0.; batch 2 0.; batch 3 1.; batch 4 2.; batch 5 2. ]
  in
  Alcotest.(check (list (list int)))
    "consecutive equal-ts runs"
    [ [ 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (List.map (List.map (fun (b : Trace.batch) -> b.Trace.seq)) groups)

let test_batch_roundtrip () =
  let batch =
    {
      Trace.seq = 3;
      ts = 1.25;
      tier = Trace.Should;
      ops =
        [
          Trace.User_arrive { capacity = 2; attrs = [| 0.5; 0.25 |] };
          Trace.Event_capacity { v = 1; capacity = 7 };
          Trace.Conflict_add (0, 2);
          Trace.User_depart 0;
          Trace.Event_close 1;
          Trace.Stats;
        ];
    }
  in
  match Trace.parse_batch (Trace.batch_to_string batch) with
  | Error e -> Alcotest.failf "parse_batch: %s" (Error.to_string e)
  | Ok back ->
      Alcotest.(check string)
        "block fixpoint"
        (Trace.batch_to_string batch)
        (Trace.batch_to_string back)

(* -- Journal ----------------------------------------------------------- *)

let payloads = [ "alpha"; ""; "batch 3 1.5 must\nstats\nend" ]

let write_journal dir =
  let path = Filename.concat dir "journal.wal" in
  let j = Journal.open_for_append ~path () in
  List.iteri (fun i payload -> Journal.append j ~seq:(i + 1) ~payload) payloads;
  Journal.close j;
  path

let test_journal_roundtrip () =
  with_tmpdir (fun dir ->
      let path = write_journal dir in
      match Journal.recover ~path () with
      | Error e -> Alcotest.failf "recover: %s" (Error.to_string e)
      | Ok { Journal.records; torn_bytes } ->
          Alcotest.(check int) "no torn tail" 0 torn_bytes;
          Alcotest.(check (list (pair int string)))
            "records round-trip"
            (List.mapi (fun i p -> (i + 1, p)) payloads)
            (List.map
               (fun (r : Journal.record) -> (r.Journal.seq, r.Journal.payload))
               records))

let test_journal_missing_is_empty () =
  with_tmpdir (fun dir ->
      match Journal.recover ~path:(Filename.concat dir "none.wal") () with
      | Ok { Journal.records = []; torn_bytes = 0 } -> ()
      | Ok _ -> Alcotest.fail "expected empty recovery"
      | Error e -> Alcotest.failf "recover: %s" (Error.to_string e))

let test_journal_torn_tail_dropped () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "journal.wal" in
      let j = Journal.open_for_append ~path () in
      Journal.append j ~seq:1 ~payload:"first";
      Journal.append j ~seq:2 ~payload:"second";
      (try
         Fault.with_plan "io.short_write@1" (fun () ->
             Journal.append j ~seq:3 ~payload:"torn away")
       with Fault.Injected { point } ->
         Alcotest.(check string) "short write fired" "io.short_write" point);
      Journal.close j;
      (match Journal.recover ~path () with
      | Error e -> Alcotest.failf "recover: %s" (Error.to_string e)
      | Ok { Journal.records; torn_bytes } ->
          Alcotest.(check bool) "tail was torn" true (torn_bytes > 0);
          Alcotest.(check (list int))
            "intact prefix survives" [ 1; 2 ]
            (List.map (fun (r : Journal.record) -> r.Journal.seq) records));
      (* The torn bytes were truncated in place: appending works again and a
         second recovery is clean. *)
      let j = Journal.open_for_append ~path () in
      Journal.append j ~seq:3 ~payload:"third";
      Journal.close j;
      match Journal.recover ~path () with
      | Ok { Journal.records; torn_bytes } ->
          Alcotest.(check int) "clean after truncate" 0 torn_bytes;
          Alcotest.(check (list int))
            "resumed seq" [ 1; 2; 3 ]
            (List.map (fun (r : Journal.record) -> r.Journal.seq) records)
      | Error e -> Alcotest.failf "second recover: %s" (Error.to_string e))

let test_journal_corruption_rejected () =
  with_tmpdir (fun dir ->
      let path = write_journal dir in
      Fault.with_plan "journal.corrupt@1" (fun () ->
          match Journal.recover ~path () with
          | Error (Error.Parse_error { message; _ }) ->
              Alcotest.(check bool)
                (Printf.sprintf "crc named (%s)" message)
                true
                (String.length message > 0
                && String.sub message 0 3 = "jou")
          | Error e ->
              Alcotest.failf "wrong error: %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "corrupt record accepted"))

let test_journal_seq_regression_rejected () =
  with_tmpdir (fun dir ->
      let path = Filename.concat dir "journal.wal" in
      let j = Journal.open_for_append ~path () in
      Journal.append j ~seq:2 ~payload:"x";
      Journal.append j ~seq:1 ~payload:"y";
      Journal.close j;
      match Journal.recover ~path () with
      | Error (Error.Parse_error _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
      | Ok _ -> Alcotest.fail "seq regression accepted")

(* -- State + snapshot -------------------------------------------------- *)

let built_state () =
  let trace = tiny_trace () in
  let state = Serve_state.create ~sim:trace.Trace.sim in
  List.iter
    (fun batch ->
      match Serve_state.apply_batch state batch with
      | Ok () ->
          let r =
            Serve_state.repair state ~deadline:Geacc_robust.Budget.unlimited
          in
          Serve_state.commit state r
      | Error e -> Alcotest.failf "apply: %s" (Error.to_string e))
    trace.Trace.batches;
  state

let test_state_save_load () =
  let state = built_state () in
  match Serve_state.load (Serve_state.save state) with
  | Error e -> Alcotest.failf "load: %s" (Error.to_string e)
  | Ok back ->
      Alcotest.(check string)
        "digest survives the round-trip" (Serve_state.digest state)
        (Serve_state.digest back);
      Alcotest.(check int) "seq" (Serve_state.seq state) (Serve_state.seq back);
      Alcotest.(check int)
        "cursor" (Serve_state.cursor state) (Serve_state.cursor back)

let test_snapshot_roundtrip () =
  with_tmpdir (fun dir ->
      let state = built_state () in
      let path = Filename.concat dir "snapshot.geacc" in
      Alcotest.(check bool) "absent before" false (Snapshot.exists ~path);
      Snapshot.save ~path state;
      Alcotest.(check bool) "present after" true (Snapshot.exists ~path);
      match Snapshot.load ~path with
      | Error e -> Alcotest.failf "load: %s" (Error.to_string e)
      | Ok back ->
          Alcotest.(check string)
            "digest survives" (Serve_state.digest state)
            (Serve_state.digest back))

let test_snapshot_corruption_rejected () =
  with_tmpdir (fun dir ->
      let state = built_state () in
      let path = Filename.concat dir "snapshot.geacc" in
      Snapshot.save ~path state;
      let text =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Flip one payload byte well past the header lines. *)
      let b = Bytes.of_string text in
      let pos = Bytes.length b - 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Snapshot.load ~path with
      | Error (Error.Parse_error _) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Error.to_string e)
      | Ok _ -> Alcotest.fail "corrupt snapshot accepted")

let test_state_rejects_bad_batches () =
  let trace = tiny_trace () in
  let state = Serve_state.create ~sim:trace.Trace.sim in
  let apply seq ops =
    Serve_state.apply_batch state
      { Trace.seq; ts = 0.; tier = Trace.Must; ops }
  in
  let expect_error what = function
    | Error (Error.Invalid_input _) -> ()
    | Error e -> Alcotest.failf "%s: wrong error %s" what (Error.to_string e)
    | Ok () -> Alcotest.failf "%s accepted" what
  in
  expect_error "unknown user id" (apply 1 [ Trace.User_depart 0 ]);
  (match
     apply 1
       [
         Trace.User_arrive { capacity = 1; attrs = [| 1.; 0. |] };
         Trace.Event_open { capacity = 2; attrs = [| 1.; 0. |] };
       ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid batch rejected: %s" (Error.to_string e));
  expect_error "seq replay" (apply 1 [ Trace.Stats ]);
  expect_error "double depart"
    (apply 2 [ Trace.User_depart 0; Trace.User_depart 0 ]);
  expect_error "self conflict" (apply 2 [ Trace.Conflict_add (0, 0) ]);
  expect_error "dim mismatch"
    (apply 2 [ Trace.User_arrive { capacity = 1; attrs = [| 1. |] } ])

(* -- Admission --------------------------------------------------------- *)

let batch seq tier = { Trace.seq; ts = 0.; tier; ops = [] }

let decisions plan = List.map snd plan

let test_admission_tier_order () =
  (* Tier outranks arrival order: the Should arriving last still beats the
     Optional arriving first for the single non-must slot. *)
  let group =
    [
      batch 1 Trace.Optional;
      batch 2 Trace.Must;
      batch 3 Trace.Should;
      batch 4 Trace.Should;
    ]
  in
  let plan = Admission.plan ~queue_cap:2 ~degraded:false group in
  Alcotest.(check (list string))
    "one slot left after the must, shoulds first"
    [ "shed"; "admit"; "admit"; "shed" ]
    (List.map Admission.decision_name (decisions plan))

let test_admission_must_overflows () =
  let group = [ batch 1 Trace.Must; batch 2 Trace.Must; batch 3 Trace.Must ] in
  let plan = Admission.plan ~queue_cap:1 ~degraded:false group in
  Alcotest.(check (list string))
    "musts are never shed"
    [ "admit"; "admit"; "admit" ]
    (List.map Admission.decision_name (decisions plan))

let test_admission_degraded_sheds_optional () =
  let group = [ batch 1 Trace.Optional; batch 2 Trace.Optional ] in
  let ok = Admission.plan ~queue_cap:10 ~degraded:false group in
  let bad = Admission.plan ~queue_cap:10 ~degraded:true group in
  Alcotest.(check (list string))
    "healthy admits" [ "admit"; "admit" ]
    (List.map Admission.decision_name (decisions ok));
  Alcotest.(check (list string))
    "degraded sheds every optional" [ "shed"; "shed" ]
    (List.map Admission.decision_name (decisions bad))

(* -- Serving loop ------------------------------------------------------ *)

let test_incremental_equals_full () =
  let trace = tiny_trace () in
  let digest_of mode =
    with_tmpdir (fun dir ->
        let config =
          { (Serve_loop.default ~state_dir:dir) with Serve_loop.mode }
        in
        let report = run_ok config trace in
        Alcotest.(check int) "clean run" 0 (Serve_loop.exit_status report);
        (report.Serve_loop.digest, Int64.bits_of_float report.Serve_loop.maxsum))
  in
  let di, mi = digest_of Serve_loop.Incremental in
  let df, mf = digest_of Serve_loop.Full in
  Alcotest.(check string) "digest bit-identical" df di;
  Alcotest.(check int64) "maxsum bit-identical" mf mi

(* Shedding a state-changing batch shifts every later arrival's id, which
   cascades into apply errors — realistic, but noise here. These tests pin
   the degraded/shed exit path in isolation, so the trace is all-must (never
   shed) with stats-only lower-tier probes appended where needed. *)
let all_must trace =
  {
    trace with
    Trace.batches =
      List.map
        (fun (b : Trace.batch) -> { b with Trace.tier = Trace.Must })
        trace.Trace.batches;
  }

let test_deadline_degrades () =
  (* Expiring both repair stages on their first poll degrades every batch
     that has users to serve; the dirty bound still rolls forward, and exit
     status maps to 3. *)
  let trace = all_must (tiny_trace ()) in
  with_tmpdir (fun dir ->
      let config = Serve_loop.default ~state_dir:dir in
      let report =
        Fault.with_plan "timeout.repair@1,timeout.repair-full@1" (fun () ->
            run_ok config trace)
      in
      Alcotest.(check int) "no errors" 0 report.Serve_loop.errors;
      Alcotest.(check bool)
        "some batches degraded" true
        (report.Serve_loop.degraded_batches > 0);
      Alcotest.(check int) "exit degraded" 3 (Serve_loop.exit_status report))

let test_shed_exit_status () =
  let trace = all_must (tiny_trace ()) in
  (* A stats-only optional probe sharing the final timestamp: with one
     queue slot the must in its group wins and the probe is shed, losing
     no state. *)
  let last = List.nth trace.Trace.batches (List.length trace.Trace.batches - 1) in
  let probe =
    {
      Trace.seq = last.Trace.seq + 1;
      ts = last.Trace.ts;
      tier = Trace.Optional;
      ops = [ Trace.Stats ];
    }
  in
  let trace = { trace with Trace.batches = trace.Trace.batches @ [ probe ] } in
  with_tmpdir (fun dir ->
      let config =
        { (Serve_loop.default ~state_dir:dir) with Serve_loop.queue_cap = 1 }
      in
      let report = run_ok config trace in
      Alcotest.(check int) "no errors" 0 report.Serve_loop.errors;
      Alcotest.(check int) "exactly the probe shed" 1 report.Serve_loop.shed;
      Alcotest.(check int) "exit shed" 3 (Serve_loop.exit_status report))

let test_offline_mode_runs_clean () =
  let trace = tiny_trace () in
  with_tmpdir (fun dir ->
      let config =
        {
          (Serve_loop.default ~state_dir:dir) with
          Serve_loop.mode = Serve_loop.Offline;
        }
      in
      let report = run_ok config trace in
      Alcotest.(check int) "clean run" 0 (Serve_loop.exit_status report);
      Alcotest.(check int)
        "everything applied" report.Serve_loop.batches
        report.Serve_loop.applied)

(* -- Crash sweep ------------------------------------------------------- *)

(* The crash-safety contract: a run killed at ANY [serve.crash] checkpoint
   (post-journal-append, post-commit, around the snapshot rename, after the
   journal truncate) recovers on restart to exactly the digest an
   uninterrupted run reaches. A small snapshot interval makes the sweep
   cross several snapshot/truncate cycles. *)

let sweep_config dir =
  { (Serve_loop.default ~state_dir:dir) with Serve_loop.snapshot_every = 7 }

let test_crash_sweep () =
  let trace = tiny_trace ~seed:9 () in
  let reference =
    with_tmpdir (fun dir ->
        (run_ok (sweep_config dir) trace).Serve_loop.digest)
  in
  let checkpoints =
    with_tmpdir (fun dir ->
        Fault.with_plan "serve.crash@999999" (fun () ->
            ignore (run_ok (sweep_config dir) trace);
            Fault.hits "serve.crash"))
  in
  Alcotest.(check bool)
    (Printf.sprintf "checkpoints cover the trace (%d)" checkpoints)
    true
    (checkpoints > 2 * List.length trace.Trace.batches);
  for n = 1 to checkpoints do
    with_tmpdir (fun dir ->
        let crashed =
          Fault.with_plan
            (Printf.sprintf "serve.crash@%d" n)
            (fun () ->
              try
                ignore (run_ok (sweep_config dir) trace);
                false
              with Fault.Injected { point = "serve.crash" } -> true)
        in
        Alcotest.(check bool)
          (Printf.sprintf "crash %d fired" n)
          true crashed;
        let report = run_ok (sweep_config dir) trace in
        Alcotest.(check string)
          (Printf.sprintf "recovery from crash %d reaches the reference" n)
          reference report.Serve_loop.digest)
  done

let parsed_trace lines =
  match Trace.parse (String.concat "\n" (lines @ [ "" ])) with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace parse: %s" (Error.to_string e)

(* A rejected batch is journaled (journal-before-apply) without advancing
   the applied seq. Admission must therefore filter on the highest
   journaled seq: filtering on the applied seq would re-journal the
   rejected tail batch with a duplicate seq on the first restart, and the
   journal's strict-monotonicity check would permanently refuse the state
   directory on the second. *)
let test_rejected_tail_survives_restarts () =
  let trace =
    parsed_trace
      [
        "geacc-trace 1";
        "sim euclidean 2 1";
        "batch 1 0 must";
        "event-open 1 1 0";
        "user-arrive 1 0.9 0.1";
        "end";
        "batch 2 1 must";
        "user-depart 7";
        "end";
      ]
  in
  with_tmpdir (fun dir ->
      let config = Serve_loop.default ~state_dir:dir in
      let first = run_ok config trace in
      Alcotest.(check int) "tail batch rejected" 1 first.Serve_loop.errors;
      let second = run_ok config trace in
      Alcotest.(check int)
        "restart skips the journaled reject" 0 second.Serve_loop.errors;
      Alcotest.(check int) "both batches skipped" 2 second.Serve_loop.skipped;
      (* The critical step: a third run's journal recovery must still
         succeed — a duplicate seq would brick it here. *)
      let third = run_ok config trace in
      Alcotest.(check string)
        "digest stable across restarts" second.Serve_loop.digest
        third.Serve_loop.digest)

(* The snapshot cadence counts journal appends, so a stream of rejected
   batches (which never advance [applied]) still truncates the journal. *)
let test_rejected_batches_bound_the_journal () =
  let bad seq =
    [ Printf.sprintf "batch %d %d must" seq (seq - 1); "user-depart 7"; "end" ]
  in
  let trace =
    parsed_trace
      ([
         "geacc-trace 1";
         "sim euclidean 2 1";
         "batch 1 0 must";
         "event-open 1 1 0";
         "user-arrive 1 0.9 0.1";
         "end";
       ]
      @ List.concat_map bad [ 2; 3; 4; 5; 6; 7 ])
  in
  with_tmpdir (fun dir ->
      let config =
        {
          (Serve_loop.default ~state_dir:dir) with
          Serve_loop.snapshot_every = 2;
        }
      in
      let first = run_ok config trace in
      Alcotest.(check int) "rejects counted" 6 first.Serve_loop.errors;
      Alcotest.(check int)
        "snapshots kept firing" 3 first.Serve_loop.snapshots;
      let second = run_ok config trace in
      Alcotest.(check int)
        "bounded backlog on restart" 1 second.Serve_loop.replayed;
      Alcotest.(check int)
        "nothing re-admitted" 7 second.Serve_loop.skipped;
      Alcotest.(check string)
        "digest stable" first.Serve_loop.digest second.Serve_loop.digest)

(* Snapshots can now be taken while a repair is pending, so the dirty
   bound must survive the save/load round-trip — otherwise recovery would
   replay from the stale cursor, above the first changed walk. *)
let test_state_dirty_survives_save_load () =
  let state = built_state () in
  let attrs =
    match Serve_state.instance state with
    | Some inst -> (Geacc_core.Instance.users inst).(0).Geacc_core.Entity.attrs
    | None -> Alcotest.fail "built state has no instance"
  in
  let apply seq ops =
    match
      Serve_state.apply_batch state { Trace.seq; ts = 0.; tier = Trace.Must; ops }
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "apply: %s" (Error.to_string e)
  in
  let u = Serve_state.n_users state in
  apply (Serve_state.seq state + 1) [ Trace.User_arrive { capacity = 1; attrs } ];
  Serve_state.commit state
    (Serve_state.repair state ~deadline:Geacc_robust.Budget.unlimited);
  (* Depart the newest user without repairing: dirty sits below cursor. *)
  apply (Serve_state.seq state + 1) [ Trace.User_depart u ];
  Alcotest.(check int) "dirty below cursor" u (Serve_state.dirty_from state);
  match Serve_state.load (Serve_state.save state) with
  | Error e -> Alcotest.failf "load: %s" (Error.to_string e)
  | Ok back ->
      Alcotest.(check int)
        "dirty bound survives the round-trip"
        (Serve_state.dirty_from state)
        (Serve_state.dirty_from back)

let test_recovery_is_idempotent () =
  (* Re-running the full trace against an already-complete state skips every
     batch and changes nothing. *)
  let trace = tiny_trace () in
  with_tmpdir (fun dir ->
      let config = Serve_loop.default ~state_dir:dir in
      let first = run_ok config trace in
      let second = run_ok config trace in
      Alcotest.(check string)
        "digest unchanged" first.Serve_loop.digest second.Serve_loop.digest;
      Alcotest.(check int) "nothing re-applied" 0 second.Serve_loop.applied;
      Alcotest.(check int)
        "everything skipped" first.Serve_loop.batches
        second.Serve_loop.skipped)

let suite =
  [
    Alcotest.test_case "trace: save/parse fixpoint" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace: ts groups" `Quick test_trace_groups;
    Alcotest.test_case "trace: batch block round-trip" `Quick
      test_batch_roundtrip;
    Alcotest.test_case "journal: round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal: missing file is empty" `Quick
      test_journal_missing_is_empty;
    Alcotest.test_case "journal: torn tail dropped" `Quick
      test_journal_torn_tail_dropped;
    Alcotest.test_case "journal: crc corruption rejected" `Quick
      test_journal_corruption_rejected;
    Alcotest.test_case "journal: seq regression rejected" `Quick
      test_journal_seq_regression_rejected;
    Alcotest.test_case "state: save/load round-trip" `Quick test_state_save_load;
    Alcotest.test_case "state: invalid batches rejected" `Quick
      test_state_rejects_bad_batches;
    Alcotest.test_case "snapshot: round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: corruption rejected" `Quick
      test_snapshot_corruption_rejected;
    Alcotest.test_case "admission: tier outranks arrival" `Quick
      test_admission_tier_order;
    Alcotest.test_case "admission: musts always pass" `Quick
      test_admission_must_overflows;
    Alcotest.test_case "admission: degraded sheds optionals" `Quick
      test_admission_degraded_sheds_optional;
    Alcotest.test_case "loop: incremental == full" `Quick
      test_incremental_equals_full;
    Alcotest.test_case "loop: deadline degrades (exit 3)" `Quick
      test_deadline_degrades;
    Alcotest.test_case "loop: shed maps to exit 3" `Quick test_shed_exit_status;
    Alcotest.test_case "loop: offline mode" `Quick test_offline_mode_runs_clean;
    Alcotest.test_case "loop: re-run is idempotent" `Quick
      test_recovery_is_idempotent;
    Alcotest.test_case "loop: rejected tail survives restarts" `Quick
      test_rejected_tail_survives_restarts;
    Alcotest.test_case "loop: rejects still truncate the journal" `Quick
      test_rejected_batches_bound_the_journal;
    Alcotest.test_case "state: dirty bound survives save/load" `Quick
      test_state_dirty_survives_save_load;
    Alcotest.test_case "crash sweep: every checkpoint recovers" `Slow
      test_crash_sweep;
  ]
