(* Robustness layer: budgets, fault injection, structured errors, the
   fallback chain, and the anytime behaviour of the budget-aware solvers.

   Wall-clock deadlines are inherently racy in tests, so every timeout here
   is forced deterministically — either [Budget.create ~expire_after_polls]
   directly or a [timeout.<stage>@N] fault-plan entry. *)

open Geacc_core
module Robust = Geacc_robust
module Budget = Robust.Budget
module Fault = Robust.Fault
module Error = Robust.Error
module Chain = Robust.Chain
module Audit = Geacc_check.Audit
module Synthetic = Geacc_datagen.Synthetic

let cfg =
  {
    Synthetic.default with
    Synthetic.n_events = 5;
    n_users = 12;
    dim = 2;
    event_capacity = Synthetic.Cap_uniform 3;
    user_capacity = Synthetic.Cap_uniform 2;
    conflict_ratio = 0.4;
  }

let instance ?(seed = 11) () = Synthetic.generate ~seed cfg

(* Small enough for the unpruned exhaustive search to finish quickly —
   used wherever a chain headed by Exhaustive runs without a deadline. *)
let tiny_cfg =
  { cfg with Synthetic.n_events = 4; n_users = 8 }

let tiny_instance () = Synthetic.generate ~seed:11 tiny_cfg

let feasible m = Validate.check_matching m = []

(* -- Budget ----------------------------------------------------------- *)

let test_budget_unlimited () =
  Alcotest.(check bool) "disarmed" false (Budget.armed Budget.unlimited);
  for _ = 1 to 1000 do
    Alcotest.(check bool) "never expires" false (Budget.check Budget.unlimited)
  done;
  Alcotest.(check bool) "remaining infinite" true
    (Budget.remaining_s Budget.unlimited = infinity)

let test_budget_zero_timeout_expires_immediately () =
  let b = Budget.create ~timeout_s:0. () in
  Alcotest.(check bool) "first poll expires" true (Budget.check b);
  Alcotest.(check bool) "sticky" true (Budget.check b);
  Alcotest.(check bool) "expired flag" true (Budget.expired b);
  Alcotest.(check (float 0.)) "no time remaining" 0. (Budget.remaining_s b)

let test_budget_batches_clock_reads () =
  let b = Budget.create ~poll_every:10 ~timeout_s:3600. () in
  for _ = 1 to 100 do
    ignore (Budget.check b)
  done;
  Alcotest.(check int) "all polls counted" 100 (Budget.polls b);
  (* First poll reads the clock, then one read per 10 polls. *)
  Alcotest.(check bool)
    (Printf.sprintf "few clock reads (%d)" (Budget.clock_reads b))
    true
    (Budget.clock_reads b <= 11)

let test_budget_expire_after_polls () =
  let b = Budget.create ~expire_after_polls:5 ~timeout_s:3600. () in
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "poll %d alive" i) false
      (Budget.check b)
  done;
  Alcotest.(check bool) "poll 5 expires" true (Budget.check b);
  Alcotest.(check bool) "sticky after forced expiry" true (Budget.check b)

let test_budget_forced_expiry_applies_to_check_now () =
  let b = Budget.create ~expire_after_polls:2 ~timeout_s:3600. () in
  Alcotest.(check bool) "first check_now alive" false (Budget.check_now b);
  Alcotest.(check bool) "second check_now expires" true (Budget.check_now b)

let test_budget_expire_propagates () =
  let b = Budget.create ~timeout_s:3600. () in
  Budget.expire b;
  Alcotest.(check bool) "forced" true (Budget.check b);
  (* The shared disarmed budget must be immune. *)
  Budget.expire Budget.unlimited;
  Alcotest.(check bool) "unlimited immune" false (Budget.expired Budget.unlimited)

let test_budget_rejects_bad_params () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "poll_every 0" true
    (invalid (fun () -> Budget.create ~poll_every:0 ~timeout_s:1. ()));
  Alcotest.(check bool) "expire_after_polls 0" true
    (invalid (fun () -> Budget.create ~expire_after_polls:0 ~timeout_s:1. ()))

(* -- Fault ------------------------------------------------------------ *)

let test_fault_plan_parse_errors () =
  let bad s = match Fault.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "uppercase point" true (bad "IO.truncate");
  Alcotest.(check bool) "zero trigger" true (bad "p@0");
  Alcotest.(check bool) "non-numeric trigger" true (bad "p@x");
  Alcotest.(check bool) "missing point" true (bad "@1");
  (* Blank entries (trailing/doubled commas) are tolerated, not errors. *)
  Alcotest.(check bool) "blank entries skipped" true
    (match Fault.parse "a,,b," with Ok _ -> true | Error _ -> false);
  Alcotest.(check bool) "empty plan ok" true
    (match Fault.parse "" with Ok _ -> true | Error _ -> false)

let test_fault_every_hit () =
  Fault.with_plan "x.y" (fun () ->
      Alcotest.(check bool) "hit 1" true (Fault.fire "x.y");
      Alcotest.(check bool) "hit 2" true (Fault.fire "x.y");
      Alcotest.(check bool) "other point silent" false (Fault.fire "x.z");
      Alcotest.(check int) "hits counted" 2 (Fault.hits "x.y");
      Alcotest.(check int) "fires counted" 2 (Fault.fires ()))

let test_fault_nth_hit_only () =
  Fault.with_plan "p@2" (fun () ->
      Alcotest.(check bool) "hit 1 silent" false (Fault.fire "p");
      Alcotest.(check bool) "hit 2 fires" true (Fault.fire "p");
      Alcotest.(check bool) "hit 3 silent" false (Fault.fire "p");
      Alcotest.(check int) "one fire" 1 (Fault.fires ()))

let test_fault_from_nth_hit () =
  Fault.with_plan "p@2+" (fun () ->
      Alcotest.(check bool) "hit 1 silent" false (Fault.fire "p");
      Alcotest.(check bool) "hit 2 fires" true (Fault.fire "p");
      Alcotest.(check bool) "hit 3 fires" true (Fault.fire "p"))

let test_fault_param () =
  Fault.with_plan "timeout.prune@7,timeout.greedy" (fun () ->
      Alcotest.(check (option int)) "parameter read" (Some 7)
        (Fault.param "timeout.prune");
      Alcotest.(check (option int)) "bare entry is 1" (Some 1)
        (Fault.param "timeout.greedy");
      Alcotest.(check (option int)) "absent" None
        (Fault.param "timeout.mincostflow");
      Alcotest.(check int) "param counts no hit" 0 (Fault.hits "timeout.prune"))

let test_fault_inject_raises () =
  Fault.with_plan "boom" (fun () ->
      match Fault.inject "boom" with
      | () -> Alcotest.fail "expected Injected"
      | exception Fault.Injected { point } ->
          Alcotest.(check string) "point carried" "boom" point)

let test_fault_inactive_is_silent () =
  Alcotest.(check bool) "no plan" false (Fault.active ());
  Alcotest.(check bool) "fire without plan" false (Fault.fire "anything");
  Fault.with_plan "x" (fun () ->
      Alcotest.(check bool) "plan active" true (Fault.active ()));
  Alcotest.(check bool) "restored" false (Fault.active ())

let test_fault_bad_plan_rejected () =
  Alcotest.(check bool) "with_plan validates" true
    (try Fault.with_plan "P@" (fun () -> false)
     with Invalid_argument _ -> true)

(* -- Error ------------------------------------------------------------ *)

let test_error_renderings () =
  let check want e = Alcotest.(check string) want want (Error.to_string e) in
  check "parse error at line 3: bad token"
    (Error.Parse_error { line = 3; message = "bad token" });
  check "parse error: unexpected end of input"
    (Error.Parse_error { line = 0; message = "unexpected end of input" });
  check "io error on x.inst: No such file"
    (Error.Io_error { path = "x.inst"; message = "No such file" });
  check "invalid order: user id 9 appears twice"
    (Error.Invalid_input { what = "order"; message = "user id 9 appears twice" });
  check "timeout after 0.500s in stage prune"
    (Error.Timeout { stage = "prune"; elapsed_s = 0.5 });
  check "all 3 stages failed; last (greedy): boom"
    (Error.Exhausted { stages = 3; last = "greedy"; detail = "boom" })

(* -- Chain (generic engine, int stages) ------------------------------- *)

let const_stage ~name ?(complete = true) value =
  Chain.stage ~name (fun (_ : unit) ~budget:_ -> { Chain.value; complete })

let failing_stage ~name exn =
  Chain.stage ~name (fun (_ : unit) ~budget:_ -> raise exn)

let ok = function
  | Ok o -> o
  | Error e -> Alcotest.failf "chain failed: %s" (Error.to_string e)

let test_chain_head_completes () =
  let o = ok (Chain.run [ const_stage ~name:"a" 1; const_stage ~name:"b" 2 ] ()) in
  Alcotest.(check int) "head value" 1 o.Chain.value;
  Alcotest.(check bool) "complete" true (o.Chain.status = Chain.Complete);
  Alcotest.(check string) "stage" "a" o.Chain.stage;
  Alcotest.(check int) "one stage tried" 1 o.Chain.stages_tried;
  Alcotest.(check int) "no fallbacks" 0 o.Chain.fallbacks;
  Alcotest.(check (option string)) "no reason" None o.Chain.reason

let test_chain_falls_back_on_timeout () =
  let o =
    ok
      (Chain.run
         [ const_stage ~name:"a" ~complete:false 1; const_stage ~name:"b" 2 ]
         ())
  in
  (* Default [better] never replaces: the degraded head candidate wins, but
     the run is Degraded because the head did not complete. *)
  Alcotest.(check int) "incumbent kept" 1 o.Chain.value;
  Alcotest.(check bool) "degraded" true (o.Chain.status = Chain.Degraded);
  Alcotest.(check int) "fallback taken" 1 o.Chain.fallbacks;
  Alcotest.(check (option string)) "reason names the timeout"
    (Some "stage a timed out") o.Chain.reason

let test_chain_better_replaces_candidate () =
  let o =
    ok
      (Chain.run
         ~better:(fun incumbent candidate -> candidate > incumbent)
         [ const_stage ~name:"a" ~complete:false 1; const_stage ~name:"b" 2 ]
         ())
  in
  Alcotest.(check int) "better candidate wins" 2 o.Chain.value;
  Alcotest.(check string) "from stage b" "b" o.Chain.stage;
  (* Still degraded: the winning value is not the head stage's complete run. *)
  Alcotest.(check bool) "degraded" true (o.Chain.status = Chain.Degraded)

let test_chain_fault_falls_through () =
  let o =
    ok
      (Chain.run
         [ failing_stage ~name:"a" (Failure "boom"); const_stage ~name:"b" 2 ]
         ())
  in
  Alcotest.(check int) "tail value" 2 o.Chain.value;
  Alcotest.(check int) "fault counted" 1 o.Chain.faults;
  Alcotest.(check int) "no retries (not transient)" 0 o.Chain.retries;
  Alcotest.(check bool) "degraded" true (o.Chain.status = Chain.Degraded)

let test_chain_retries_transient_fault () =
  let attempts = ref 0 in
  let flaky =
    Chain.stage ~name:"flaky" (fun () ~budget:_ ->
        incr attempts;
        if !attempts = 1 then raise (Fault.Injected { point = "test" });
        { Chain.value = 7; complete = true })
  in
  let o = ok (Chain.run ~max_retries:1 [ flaky ] ()) in
  Alcotest.(check int) "second attempt succeeded" 7 o.Chain.value;
  Alcotest.(check bool) "complete" true (o.Chain.status = Chain.Complete);
  Alcotest.(check int) "one retry" 1 o.Chain.retries;
  Alcotest.(check int) "one fault" 1 o.Chain.faults;
  Alcotest.(check int) "two attempts traced" 2 (List.length o.Chain.trace)

let test_chain_exhausted () =
  match
    Chain.run
      [ failing_stage ~name:"a" (Failure "x"); failing_stage ~name:"b" (Failure "y") ]
      ()
  with
  | Ok _ -> Alcotest.fail "expected Exhausted"
  | Error (Error.Exhausted { stages; last; _ }) ->
      Alcotest.(check int) "both tried" 2 stages;
      Alcotest.(check string) "last stage named" "b" last
  | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e)

let test_chain_empty_is_invalid () =
  match Chain.run ([] : (unit, int) Chain.stage list) () with
  | Error (Error.Invalid_input { what; _ }) ->
      Alcotest.(check string) "names the chain" "chain" what
  | Ok _ | Error _ -> Alcotest.fail "expected Invalid_input"

let test_chain_overall_timeout_without_candidate () =
  match Chain.run ~timeout_s:0. [ const_stage ~name:"a" 1 ] () with
  | Error (Error.Timeout _) -> ()
  | Ok _ -> Alcotest.fail "expected Timeout"
  | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e)

let test_chain_stage_budget_forced_by_plan () =
  (* A [timeout.<stage>@N] plan entry arms the stage budget even when no
     wall-clock timeout is set; the stage sees it expire on poll N. *)
  Fault.with_plan "timeout.probe@3" (fun () ->
      let observed = ref (-1) in
      let probe =
        Chain.stage ~name:"probe" (fun () ~budget ->
            let n = ref 0 in
            while not (Budget.check budget) do
              incr n
            done;
            observed := !n;
            { Chain.value = 0; complete = false })
      in
      let o = ok (Chain.run [ probe; const_stage ~name:"b" 1 ] ()) in
      Alcotest.(check int) "expired on forced poll" 2 !observed;
      Alcotest.(check bool) "degraded" true (o.Chain.status = Chain.Degraded))

(* -- Anytime solvers under forced deadlines --------------------------- *)

(* A budget that expires after [n] polls; the huge wall-clock timeout keeps
   the clock out of the decision. *)
let forced_budget n = Budget.create ~expire_after_polls:n ~timeout_s:1e9 ()

let test_exact_degraded_is_feasible () =
  Audit.with_enabled true (fun () ->
      List.iter
        (fun (label, pruning) ->
          let t = instance () in
          let deadline = forced_budget 3 in
          let m, stats =
            Exact.solve ~pruning ~warm_start:false ~deadline t
          in
          Alcotest.(check bool) (label ^ " timed out") true stats.Exact.timed_out;
          Alcotest.(check bool) (label ^ " budget exhausted counts") true
            stats.Exact.exhausted_budget;
          Alcotest.(check bool) (label ^ " degraded feasible") true (feasible m))
        [ ("prune", true); ("exhaustive", false) ])

let test_exact_degraded_never_worse_than_warm_start () =
  (* With warm start on, the incumbent begins at Greedy's matching; a
     deadline firing right after the warm start still returns at least it.
     The warm start shares the deadline's polls, so first measure how many
     polls a full greedy run costs and expire just after that. *)
  let t = instance () in
  let probe = Budget.create ~timeout_s:1e9 () in
  let greedy_m, complete = Greedy.solve_anytime ~deadline:probe t in
  Alcotest.(check bool) "probe run completes" true complete;
  let m =
    Exact.solve_prune
      ~deadline:(forced_budget (Budget.polls probe + 2))
      t
  in
  Alcotest.(check bool) "degraded >= greedy" true
    (Matching.maxsum m >= Matching.maxsum greedy_m -. 1e-9)

let test_greedy_anytime_prefix_feasible () =
  Audit.with_enabled true (fun () ->
      let t = instance () in
      let m, complete = Greedy.solve_anytime ~deadline:(forced_budget 2) t in
      Alcotest.(check bool) "stopped early" false complete;
      Alcotest.(check bool) "prefix feasible" true (feasible m);
      let full = Greedy.solve t in
      Alcotest.(check bool) "prefix no larger than full run" true
        (Matching.size m <= Matching.size full))

let test_mincostflow_partial_flow_feasible () =
  Audit.with_enabled true (fun () ->
      let t = instance () in
      let m, stats =
        Mincostflow.solve_with_stats ~deadline:(forced_budget 2) t
      in
      Alcotest.(check bool) "timed out" true stats.Mincostflow.timed_out;
      Alcotest.(check bool) "partial flow resolves feasibly" true (feasible m))

let test_solver_run_threads_deadline () =
  List.iter
    (fun a ->
      let m = Solver.run ~deadline:(forced_budget 2) a (instance ()) in
      Alcotest.(check bool)
        (Solver.short_name a ^ " feasible under deadline")
        true (feasible m))
    [ Solver.Greedy; Solver.Min_cost_flow; Solver.Prune; Solver.Exhaustive ]

(* -- Anytime fallback chain over real solvers ------------------------- *)

let anytime_ok = function
  | Ok (r : Anytime.report) -> r
  | Error e -> Alcotest.failf "anytime failed: %s" (Error.to_string e)

let test_anytime_complete_without_budget () =
  let r = anytime_ok (Anytime.solve (tiny_instance ())) in
  Alcotest.(check bool) "complete" true (r.Anytime.status = Chain.Complete);
  Alcotest.(check bool) "head algorithm" true
    (r.Anytime.algorithm = Solver.Exhaustive);
  Alcotest.(check int) "single stage" 1 r.Anytime.stages_tried;
  Alcotest.(check bool) "optimal = prune" true
    (Float.abs
       (Matching.maxsum r.Anytime.matching
       -. Matching.maxsum (Exact.solve_prune (tiny_instance ())))
    <= 1e-9)

let test_anytime_degrades_through_chain () =
  (* Force both exact stages to expire almost immediately; the chain must
     fall through and still return a feasible, audited matching. *)
  Audit.with_enabled true (fun () ->
      Fault.with_plan "timeout.exhaustive@2,timeout.prune@2" (fun () ->
          let r = anytime_ok (Anytime.solve (instance ())) in
          Alcotest.(check bool) "degraded" true
            (r.Anytime.status = Chain.Degraded);
          Alcotest.(check bool) "reason present" true (r.Anytime.reason <> None);
          Alcotest.(check bool) "fell through to a later stage" true
            (r.Anytime.fallbacks >= 1);
          Alcotest.(check bool) "feasible" true (feasible r.Anytime.matching)))

let test_anytime_every_stage_deadline () =
  (* Each budget-aware stage alone, under a forced stage deadline: the
     degraded checkpoint must pass the audited feasibility gate (the stage
     would Fault otherwise, and the chain would return an error). *)
  Audit.with_enabled true (fun () ->
      List.iter
        (fun a ->
          let name = Solver.short_name a in
          Fault.with_plan (Printf.sprintf "timeout.%s@2" name) (fun () ->
              let r = anytime_ok (Anytime.solve ~algorithms:[ a ] (instance ())) in
              Alcotest.(check bool) (name ^ " degraded") true
                (r.Anytime.status = Chain.Degraded);
              Alcotest.(check bool) (name ^ " feasible") true
                (feasible r.Anytime.matching)))
        [ Solver.Exhaustive; Solver.Prune; Solver.Min_cost_flow; Solver.Greedy ])

let test_anytime_retries_alloc_fault () =
  Fault.with_plan "mcf.alloc@1" (fun () ->
      let r =
        anytime_ok
          (Anytime.solve ~max_retries:1
             ~algorithms:[ Solver.Min_cost_flow ] (instance ()))
      in
      Alcotest.(check bool) "retry recovered" true
        (r.Anytime.status = Chain.Complete);
      Alcotest.(check int) "one retry" 1 r.Anytime.retries;
      Alcotest.(check int) "one fault" 1 r.Anytime.faults)

let test_anytime_exhausted_on_persistent_fault () =
  Fault.with_plan "mcf.alloc" (fun () ->
      match
        Anytime.solve ~max_retries:2 ~algorithms:[ Solver.Min_cost_flow ]
          (instance ())
      with
      | Error (Error.Exhausted { last; _ }) ->
          Alcotest.(check string) "last stage" "mincostflow" last
      | Ok _ -> Alcotest.fail "expected Exhausted"
      | Error e -> Alcotest.failf "unexpected error %s" (Error.to_string e))

let test_anytime_fault_then_fallback () =
  (* Persistent flow fault, greedy tail: the chain must abandon the flow
     stage after its retries and serve greedy's complete answer. *)
  Fault.with_plan "mcf.alloc" (fun () ->
      let r =
        anytime_ok
          (Anytime.solve ~max_retries:1
             ~algorithms:[ Solver.Min_cost_flow; Solver.Greedy ] (instance ()))
      in
      Alcotest.(check bool) "served by greedy" true
        (r.Anytime.algorithm = Solver.Greedy);
      Alcotest.(check bool) "degraded (head faulted)" true
        (r.Anytime.status = Chain.Degraded);
      Alcotest.(check bool) "feasible" true (feasible r.Anytime.matching))

(* -- Injected data faults --------------------------------------------- *)

let test_sim_fault_injection () =
  let t = instance () in
  Fault.with_plan "sim.nan@1" (fun () ->
      Alcotest.(check bool) "first sim read is NaN" true
        (Float.is_nan (Instance.sim t ~v:0 ~u:0));
      Alcotest.(check bool) "second sim read is clean" true
        (Float.is_finite (Instance.sim t ~v:0 ~u:0)));
  Fault.with_plan "sim.huge@1" (fun () ->
      Alcotest.(check bool) "oversized similarity" true
        (Instance.sim t ~v:0 ~u:0 >= 1e300))

let test_io_fault_injection () =
  let t = instance () in
  let path = Filename.temp_file "geacc_robust" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Geacc_io.Instance_io.write_instance ~path t;
      List.iter
        (fun plan ->
          Fault.with_plan plan (fun () ->
              match Geacc_io.Instance_io.read_instance_result ~path with
              | Error (Error.Parse_error _) -> ()
              | Error e ->
                  Alcotest.failf "%s: unexpected error %s" plan
                    (Error.to_string e)
              | Ok _ -> Alcotest.failf "%s: corrupt file accepted" plan))
        [ "io.truncate"; "io.corrupt" ];
      (* Without a plan the same file loads cleanly. *)
      match Geacc_io.Instance_io.read_instance_result ~path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "clean read failed: %s" (Error.to_string e))

let suite =
  [
    Alcotest.test_case "budget: unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "budget: zero timeout" `Quick
      test_budget_zero_timeout_expires_immediately;
    Alcotest.test_case "budget: batched clock reads" `Quick
      test_budget_batches_clock_reads;
    Alcotest.test_case "budget: forced poll expiry" `Quick
      test_budget_expire_after_polls;
    Alcotest.test_case "budget: forced expiry in check_now" `Quick
      test_budget_forced_expiry_applies_to_check_now;
    Alcotest.test_case "budget: external expire" `Quick
      test_budget_expire_propagates;
    Alcotest.test_case "budget: parameter validation" `Quick
      test_budget_rejects_bad_params;
    Alcotest.test_case "fault: plan parse errors" `Quick
      test_fault_plan_parse_errors;
    Alcotest.test_case "fault: every hit" `Quick test_fault_every_hit;
    Alcotest.test_case "fault: nth hit only" `Quick test_fault_nth_hit_only;
    Alcotest.test_case "fault: from nth hit" `Quick test_fault_from_nth_hit;
    Alcotest.test_case "fault: parameter entries" `Quick test_fault_param;
    Alcotest.test_case "fault: inject raises" `Quick test_fault_inject_raises;
    Alcotest.test_case "fault: inactive is free" `Quick
      test_fault_inactive_is_silent;
    Alcotest.test_case "fault: bad plan rejected" `Quick
      test_fault_bad_plan_rejected;
    Alcotest.test_case "error: stable renderings" `Quick test_error_renderings;
    Alcotest.test_case "chain: head completes" `Quick test_chain_head_completes;
    Alcotest.test_case "chain: timeout falls back" `Quick
      test_chain_falls_back_on_timeout;
    Alcotest.test_case "chain: better replaces" `Quick
      test_chain_better_replaces_candidate;
    Alcotest.test_case "chain: fault falls through" `Quick
      test_chain_fault_falls_through;
    Alcotest.test_case "chain: transient retry" `Quick
      test_chain_retries_transient_fault;
    Alcotest.test_case "chain: exhausted" `Quick test_chain_exhausted;
    Alcotest.test_case "chain: empty invalid" `Quick test_chain_empty_is_invalid;
    Alcotest.test_case "chain: overall timeout" `Quick
      test_chain_overall_timeout_without_candidate;
    Alcotest.test_case "chain: plan-forced stage budget" `Quick
      test_chain_stage_budget_forced_by_plan;
    Alcotest.test_case "exact: degraded feasible" `Quick
      test_exact_degraded_is_feasible;
    Alcotest.test_case "exact: degraded >= warm start" `Quick
      test_exact_degraded_never_worse_than_warm_start;
    Alcotest.test_case "greedy: anytime prefix" `Quick
      test_greedy_anytime_prefix_feasible;
    Alcotest.test_case "mincostflow: partial flow" `Quick
      test_mincostflow_partial_flow_feasible;
    Alcotest.test_case "solver: run threads deadline" `Quick
      test_solver_run_threads_deadline;
    Alcotest.test_case "anytime: complete" `Quick
      test_anytime_complete_without_budget;
    Alcotest.test_case "anytime: degrades through chain" `Quick
      test_anytime_degrades_through_chain;
    Alcotest.test_case "anytime: every stage deadline" `Quick
      test_anytime_every_stage_deadline;
    Alcotest.test_case "anytime: transient alloc retry" `Quick
      test_anytime_retries_alloc_fault;
    Alcotest.test_case "anytime: exhausted" `Quick
      test_anytime_exhausted_on_persistent_fault;
    Alcotest.test_case "anytime: fault then fallback" `Quick
      test_anytime_fault_then_fallback;
    Alcotest.test_case "faults: sim injection" `Quick test_sim_fault_injection;
    Alcotest.test_case "faults: io injection" `Quick test_io_fault_injection;
  ]
