(* Solver behaviour on structured cases: maximality, Lemma 1, exact-search
   agreement, budget anytime behaviour, baseline feasibility, dispatch. *)

open Geacc_core
module Rng = Geacc_util.Rng
module Synthetic = Geacc_datagen.Synthetic

let small_cfg =
  {
    Synthetic.default with
    Synthetic.n_events = 4;
    n_users = 8;
    dim = 2;
    event_capacity = Synthetic.Cap_uniform 3;
    user_capacity = Synthetic.Cap_uniform 2;
  }

let feasible m = Validate.check_matching m = []

(* -- Greedy -- *)

let test_greedy_feasible_and_maximal () =
  for seed = 1 to 20 do
    let t = Synthetic.generate ~seed small_cfg in
    let m = Greedy.solve t in
    Alcotest.(check bool) "feasible" true (feasible m);
    (* Maximality (Lemma 5): no unmatched pair can be added. *)
    for v = 0 to Instance.n_events t - 1 do
      for u = 0 to Instance.n_users t - 1 do
        if not (Matching.mem m ~v ~u) then
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: pair (%d,%d) not addable" seed v u)
            true
            (Matching.check_add m ~v ~u <> None)
      done
    done
  done

let test_greedy_deterministic () =
  let t = Synthetic.generate ~seed:5 small_cfg in
  let m1 = Greedy.solve t and m2 = Greedy.solve t in
  Alcotest.(check bool) "same pairs" true (Matching.pairs m1 = Matching.pairs m2)

let test_greedy_zero_capacity () =
  let sim = Similarity.euclidean ~dim:1 ~range:1. in
  let events = [| Entity.make ~id:0 ~attrs:[| 0.5 |] ~capacity:0 |] in
  let users = [| Entity.make ~id:0 ~attrs:[| 0.5 |] ~capacity:3 |] in
  let t =
    Instance.create ~sim ~events ~users
      ~conflicts:(Conflict.create ~n_events:1) ()
  in
  Alcotest.(check int) "zero-capacity event never matched" 0
    (Matching.size (Greedy.solve t))

let test_greedy_full_conflict_one_event_per_user () =
  let t =
    Synthetic.generate ~seed:2
      { small_cfg with Synthetic.conflict_ratio = 1. }
  in
  let m = Greedy.solve t in
  Alcotest.(check bool) "feasible" true (feasible m);
  for u = 0 to Instance.n_users t - 1 do
    Alcotest.(check bool) "at most one event with CF complete" true
      (List.length (Matching.user_events m u) <= 1)
  done

(* -- MinCostFlow -- *)

let test_mcf_feasible () =
  for seed = 1 to 10 do
    let t = Synthetic.generate ~seed small_cfg in
    Alcotest.(check bool) "feasible" true (feasible (Mincostflow.solve t))
  done

let test_mcf_optimal_without_conflicts () =
  (* Lemma 1: with CF = empty, MinCostFlow-GEACC returns an optimum. *)
  for seed = 1 to 10 do
    let t =
      Synthetic.generate ~seed { small_cfg with Synthetic.conflict_ratio = 0. }
    in
    let mcf = Mincostflow.solve t in
    let opt, stats = Exact.solve t in
    Alcotest.(check bool) "exact search completed" false
      stats.Exact.exhausted_budget;
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "seed %d: MCF = OPT when CF is empty" seed)
      (Matching.maxsum opt) (Matching.maxsum mcf)
  done

let test_mcf_stats () =
  let t = Synthetic.generate ~seed:1 small_cfg in
  let m, stats = Mincostflow.solve_with_stats t in
  Alcotest.(check bool) "flow at least matching size" true
    (stats.Mincostflow.flow_value >= Matching.size m);
  Alcotest.(check int) "dropped = flow pairs - kept pairs"
    (stats.Mincostflow.flow_value - Matching.size m)
    stats.Mincostflow.dropped_pairs;
  Alcotest.(check bool) "augmentations cover flow" true
    (stats.Mincostflow.augmentations >= 1)

let test_mcf_flow_bounded_by_capacity () =
  let t = Synthetic.generate ~seed:3 small_cfg in
  let _, stats = Mincostflow.solve_with_stats t in
  let bound =
    Stdlib.min (Instance.sum_event_capacity t) (Instance.sum_user_capacity t)
  in
  Alcotest.(check bool) "flow within Delta_max" true
    (stats.Mincostflow.flow_value <= bound)

(* -- Exact search -- *)

let test_exact_prune_equals_exhaustive () =
  for seed = 1 to 8 do
    let t = Synthetic.generate ~seed small_cfg in
    let p = Exact.solve_prune t in
    let e = Exact.solve_exhaustive t in
    Alcotest.(check bool) "both feasible" true (feasible p && feasible e);
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "seed %d: prune = exhaustive optimum" seed)
      (Matching.maxsum e) (Matching.maxsum p)
  done

let test_exact_dominates_approximations () =
  for seed = 1 to 8 do
    let t = Synthetic.generate ~seed small_cfg in
    let opt = Matching.maxsum (Exact.solve_prune t) in
    Alcotest.(check bool) "opt >= greedy" true
      (opt +. 1e-9 >= Matching.maxsum (Greedy.solve t));
    Alcotest.(check bool) "opt >= mcf" true
      (opt +. 1e-9 >= Matching.maxsum (Mincostflow.solve t))
  done

let test_exact_budget_anytime () =
  let t = Synthetic.generate ~seed:4 small_cfg in
  let full, full_stats = Exact.solve ~pruning:false ~warm_start:false t in
  let budgeted, stats =
    Exact.solve ~pruning:false ~warm_start:false
      ~budget:(full_stats.Exact.invocations / 10)
      t
  in
  Alcotest.(check bool) "budget flag" true stats.Exact.exhausted_budget;
  Alcotest.(check bool) "budget respected" true
    (stats.Exact.invocations <= (full_stats.Exact.invocations / 10) + 1);
  Alcotest.(check bool) "anytime result feasible" true (feasible budgeted);
  Alcotest.(check bool) "anytime <= optimum" true
    (Matching.maxsum budgeted <= Matching.maxsum full +. 1e-9)

let test_exact_pruning_reduces_work () =
  let t = Synthetic.generate ~seed:6 small_cfg in
  let _, pruned = Exact.solve t in
  let _, exhaustive = Exact.solve ~pruning:false ~warm_start:false t in
  Alcotest.(check bool) "fewer invocations with pruning" true
    (pruned.Exact.invocations < exhaustive.Exact.invocations);
  Alcotest.(check bool) "fewer complete searches with pruning" true
    (pruned.Exact.complete_searches <= exhaustive.Exact.complete_searches);
  Alcotest.(check bool) "prunes recorded" true (pruned.Exact.prunes > 0);
  Alcotest.(check bool) "exhaustive never prunes" true
    (exhaustive.Exact.prunes = 0)

let test_exact_without_warm_start_agrees () =
  let t = Synthetic.generate ~seed:7 small_cfg in
  let a = Exact.solve t in
  let b = Exact.solve ~warm_start:false t in
  Alcotest.(check (float 1e-9)) "same optimum either way"
    (Matching.maxsum (fst a)) (Matching.maxsum (fst b))

let test_exact_empty_instance () =
  let sim = Similarity.euclidean ~dim:1 ~range:1. in
  let users = [| Entity.make ~id:0 ~attrs:[| 0. |] ~capacity:1 |] in
  let t =
    Instance.create ~sim ~events:[||] ~users
      ~conflicts:(Conflict.create ~n_events:0) ()
  in
  let m, stats = Exact.solve t in
  Alcotest.(check int) "no events, empty matching" 0 (Matching.size m);
  Alcotest.(check int) "no recursion" 0 stats.Exact.invocations

(* -- Random baselines -- *)

let test_random_baselines_feasible () =
  for seed = 1 to 10 do
    let t = Synthetic.generate ~seed small_cfg in
    let rng = Rng.create ~seed in
    Alcotest.(check bool) "random-v feasible" true
      (feasible (Random_baseline.random_v ~rng t));
    Alcotest.(check bool) "random-u feasible" true
      (feasible (Random_baseline.random_u ~rng t))
  done

let test_random_deterministic_per_seed () =
  let t = Synthetic.generate ~seed:1 small_cfg in
  let run () = Random_baseline.random_v ~rng:(Rng.create ~seed:9) t in
  Alcotest.(check bool) "same seed, same matching" true
    (Matching.pairs (run ()) = Matching.pairs (run ()));
  let other = Random_baseline.random_v ~rng:(Rng.create ~seed:10) t in
  Alcotest.(check bool) "different seed, (almost surely) different" true
    (Matching.pairs other <> Matching.pairs (run ()))

(* -- Solver dispatch -- *)

let test_solver_names_roundtrip () =
  List.iter
    (fun a ->
      match Solver.of_string (Solver.short_name a) with
      | Ok a' -> Alcotest.(check bool) "roundtrip" true (a = a')
      | Error e -> Alcotest.fail e)
    Solver.all;
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Solver.of_string "nope"));
  Alcotest.(check bool) "case-insensitive" true
    (Solver.of_string "GREEDY" = Ok Solver.Greedy)

let test_solver_run_dispatch () =
  let t = Synthetic.generate ~seed:2 small_cfg in
  List.iter
    (fun a ->
      let m = Solver.run a t in
      Alcotest.(check bool)
        (Printf.sprintf "%s output feasible" (Solver.name a))
        true (feasible m))
    Solver.all;
  Alcotest.(check bool) "exactness flags" true
    (Solver.is_exact Solver.Prune && not (Solver.is_exact Solver.Greedy))

(* -- audit-instrumented runs -- *)

let test_all_solvers_under_audit () =
  (* Every solver once with the audit layer live, so the mcf/greedy/exact
     hook points run against healthy instances (zero violations expected).
     [GEACC_AUDIT=1 dune runtest] additionally flips the gate for every
     other test in the binary. *)
  let t = Synthetic.generate ~seed:11 small_cfg in
  Geacc_check.Audit.with_enabled true (fun () ->
      List.iter
        (fun a ->
          let m = Solver.run a t in
          Alcotest.(check bool)
            (Printf.sprintf "%s feasible under audit" (Solver.name a))
            true (feasible m))
        Solver.all)

let suite =
  [
    Alcotest.test_case "greedy feasible and maximal" `Quick
      test_greedy_feasible_and_maximal;
    Alcotest.test_case "greedy deterministic" `Quick test_greedy_deterministic;
    Alcotest.test_case "greedy zero capacity" `Quick test_greedy_zero_capacity;
    Alcotest.test_case "greedy under complete CF" `Quick
      test_greedy_full_conflict_one_event_per_user;
    Alcotest.test_case "mcf feasible" `Quick test_mcf_feasible;
    Alcotest.test_case "mcf optimal when CF empty (Lemma 1)" `Quick
      test_mcf_optimal_without_conflicts;
    Alcotest.test_case "mcf stats" `Quick test_mcf_stats;
    Alcotest.test_case "mcf flow within Delta_max" `Quick
      test_mcf_flow_bounded_by_capacity;
    Alcotest.test_case "prune = exhaustive" `Quick
      test_exact_prune_equals_exhaustive;
    Alcotest.test_case "exact dominates approximations" `Quick
      test_exact_dominates_approximations;
    Alcotest.test_case "exact budget anytime" `Quick test_exact_budget_anytime;
    Alcotest.test_case "pruning reduces work" `Quick
      test_exact_pruning_reduces_work;
    Alcotest.test_case "warm start irrelevant to optimum" `Quick
      test_exact_without_warm_start_agrees;
    Alcotest.test_case "exact on empty instance" `Quick
      test_exact_empty_instance;
    Alcotest.test_case "random baselines feasible" `Quick
      test_random_baselines_feasible;
    Alcotest.test_case "random deterministic per seed" `Quick
      test_random_deterministic_per_seed;
    Alcotest.test_case "solver name roundtrip" `Quick
      test_solver_names_roundtrip;
    Alcotest.test_case "solver dispatch" `Quick test_solver_run_dispatch;
    Alcotest.test_case "all solvers under audit" `Quick
      test_all_solvers_under_audit;
  ]
