(* Differential fuzzing across all solvers.

   ~200 seeded random instances (sizes small enough for the exact searches),
   every [Solver.algorithm] on each. Invariants checked per instance:

   - every algorithm's matching passes the independent [Validate] check;
   - the exact solvers agree with each other and dominate every
     approximation/baseline on MaxSum;
   - the heap greedy and the sort-all-pairs naive greedy produce identical
     arrangements (shared tie-breaking contract, see Greedy_naive docs).

   Deterministic: instance shapes are derived from a seeded RNG, and every
   solver consumes a freshly-seeded RNG of its own. *)

open Geacc_core
module Synthetic = Geacc_datagen.Synthetic
module Rng = Geacc_util.Rng

let n_instances = 200

let config_of rng =
  {
    Synthetic.default with
    Synthetic.n_events = Rng.int_in rng 2 4;
    n_users = Rng.int_in rng 3 8;
    dim = Rng.int_in rng 1 3;
    t_max = 100.;
    event_capacity = Synthetic.Cap_uniform (Rng.int_in rng 1 3);
    user_capacity = Synthetic.Cap_uniform (Rng.int_in rng 1 2);
    conflict_ratio = Rng.float rng 0.6;
  }

let exact = [ Solver.Prune; Solver.Exhaustive ]

let check_instance ~seed t =
  let label a = Printf.sprintf "seed %d %s" seed (Solver.short_name a) in
  let results =
    List.map
      (fun a ->
        let rng = Rng.create ~seed:(seed + 7919) in
        let m = Solver.run ~rng a t in
        (a, m))
      Solver.all
  in
  (* 1. Feasibility, for every algorithm. *)
  List.iter
    (fun (a, m) ->
      match Validate.check_matching m with
      | [] -> ()
      | violations ->
          Alcotest.failf "%s: %d feasibility violations" (label a)
            (List.length violations))
    results;
  (* 2. The exact solvers agree and dominate everything else. *)
  let maxsum a = Matching.maxsum (List.assoc a results) in
  let opt = maxsum Solver.Prune in
  Alcotest.(check (float 1e-6))
    (Printf.sprintf "seed %d: prune = exhaustive" seed)
    opt
    (maxsum Solver.Exhaustive);
  List.iter
    (fun (a, m) ->
      if not (List.mem a exact) then
        let got = Matching.maxsum m in
        if got > opt +. 1e-6 then
          Alcotest.failf "%s: beats the optimum (%.9f > %.9f)" (label a) got
            opt)
    results;
  (* 3. Identical greedy arrangements, not just equal objectives. *)
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "seed %d: greedy = naive greedy" seed)
    (Matching.pairs (List.assoc Solver.Greedy results))
    (Matching.pairs (List.assoc Solver.Greedy_naive results))

let test_differential () =
  let shape_rng = Rng.create ~seed:20150413 in
  for seed = 1 to n_instances do
    let t = Synthetic.generate ~seed (config_of shape_rng) in
    check_instance ~seed t
  done

let suite =
  [ Alcotest.test_case "200-instance differential sweep" `Slow test_differential ]
