(* Differential fuzzing across all solvers.

   ~200 seeded random instances (sizes small enough for the exact searches),
   every [Solver.algorithm] on each. Invariants checked per instance:

   - every algorithm's matching passes the independent [Validate] check;
   - the exact solvers agree with each other and dominate every
     approximation/baseline on MaxSum;
   - the heap greedy and the sort-all-pairs naive greedy produce identical
     arrangements (shared tie-breaking contract, see Greedy_naive docs).

   Deterministic: instance shapes are derived from a seeded RNG, and every
   solver consumes a freshly-seeded RNG of its own. *)

open Geacc_core
module Synthetic = Geacc_datagen.Synthetic
module Rng = Geacc_util.Rng

let n_instances = 200

let config_of rng =
  {
    Synthetic.default with
    Synthetic.n_events = Rng.int_in rng 2 4;
    n_users = Rng.int_in rng 3 8;
    dim = Rng.int_in rng 1 3;
    t_max = 100.;
    event_capacity = Synthetic.Cap_uniform (Rng.int_in rng 1 3);
    user_capacity = Synthetic.Cap_uniform (Rng.int_in rng 1 2);
    conflict_ratio = Rng.float rng 0.6;
  }

let exact = [ Solver.Prune; Solver.Exhaustive ]

(* GEACC_FUZZ_DIGEST=<path>: write a canonical digest of the sweep — per
   seed and solver, MaxSum as exact float bits plus the matched pairs.
   The safe/default profile differential CI job runs the sweep once per
   profile and byte-compares the two files: licensed unsafe_* kernels and
   their checked `--profile safe` twins must produce identical
   arrangements, not merely close objectives. *)
let digest_out = Sys.getenv_opt "GEACC_FUZZ_DIGEST"
let digest_buf = Buffer.create 256

let record_digest ~seed results =
  match digest_out with
  | None -> ()
  | Some _ ->
      List.iter
        (fun (a, m) ->
          Buffer.add_string digest_buf
            (Printf.sprintf "%d %s %Lx |%s\n" seed (Solver.short_name a)
               (Int64.bits_of_float (Matching.maxsum m))
               (String.concat ";"
                  (List.map
                     (fun (v, u) -> Printf.sprintf "%d,%d" v u)
                     (Matching.pairs m)))))
        results

let write_digest () =
  match digest_out with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      output_string oc (Buffer.contents digest_buf);
      close_out oc

let check_instance ~seed t =
  let label a = Printf.sprintf "seed %d %s" seed (Solver.short_name a) in
  let results =
    List.map
      (fun a ->
        let rng = Rng.create ~seed:(seed + 7919) in
        let m = Solver.run ~rng a t in
        (a, m))
      Solver.all
  in
  record_digest ~seed results;
  (* 1. Feasibility, for every algorithm. *)
  List.iter
    (fun (a, m) ->
      match Validate.check_matching m with
      | [] -> ()
      | violations ->
          Alcotest.failf "%s: %d feasibility violations" (label a)
            (List.length violations))
    results;
  (* 2. The exact solvers agree and dominate everything else. *)
  let maxsum a = Matching.maxsum (List.assoc a results) in
  let opt = maxsum Solver.Prune in
  Alcotest.(check (float 1e-6))
    (Printf.sprintf "seed %d: prune = exhaustive" seed)
    opt
    (maxsum Solver.Exhaustive);
  List.iter
    (fun (a, m) ->
      if not (List.mem a exact) then
        let got = Matching.maxsum m in
        if got > opt +. 1e-6 then
          Alcotest.failf "%s: beats the optimum (%.9f > %.9f)" (label a) got
            opt)
    results;
  (* 3. Identical greedy arrangements, not just equal objectives. *)
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "seed %d: greedy = naive greedy" seed)
    (Matching.pairs (List.assoc Solver.Greedy results))
    (Matching.pairs (List.assoc Solver.Greedy_naive results))

let test_differential () =
  let shape_rng = Rng.create ~seed:20150413 in
  for seed = 1 to n_instances do
    let t = Synthetic.generate ~seed (config_of shape_rng) in
    check_instance ~seed t
  done;
  write_digest ()

(* ---------- dense vs sparse flow networks ---------- *)

(* The sparse (similarity-pruned) network must match the paper's dense one
   on the objective: bit-identical MaxSum and Validate-clean — per
   attribute model (uniform / Zipf / normal mixture) and for jobs ∈
   {1, 2, 4}. The pair sets themselves may legitimately differ: both flows
   are min-cost of the same value, and when several augmenting paths tie,
   the dense network's extra (never-augmented) arcs can steer Dijkstra to a
   different optimum among equals. Instances come in two flavours:
   Equation-1 similarity (cutoff = attribute-space diameter, so nothing
   prunes) and a re-wrap of the same entities under a range/4 euclidean
   profile, which drives a large fraction of pairs to similarity exactly 0
   and makes the pruning path do real work. *)
let tighten instance =
  Instance.create
    ~sim:
      (Similarity.euclidean ~dim:(Instance.dim instance)
         ~range:(Synthetic.default.Synthetic.t_max /. 4.))
    ~events:(Instance.events instance)
    ~users:(Instance.users instance)
    ~conflicts:(Instance.conflicts instance)
    ()

let test_dense_sparse_identical () =
  let attr_models =
    [
      ("uniform", Synthetic.Attr_uniform);
      ("zipf", Synthetic.Attr_zipf 1.3);
      ("normal", Synthetic.Attr_normal_mixture);
    ]
  in
  let jobs_under_test = [ 1; 2; 4 ] in
  let pruned_pairs_seen = ref 0 in
  List.iter
    (fun (model_name, attrs) ->
      for seed = 1 to 8 do
        let cfg =
          {
            Synthetic.default with
            Synthetic.n_events = 3 + (seed mod 4);
            n_users = 10 + (3 * seed);
            dim = 1 + (seed mod 3);
            attrs;
            event_capacity = Synthetic.Cap_uniform 3;
            user_capacity = Synthetic.Cap_uniform 2;
            conflict_ratio = 0.3;
          }
        in
        let base = Synthetic.generate ~seed cfg in
        List.iter
          (fun (flavour, instance) ->
            let label fmt =
              Printf.ksprintf
                (fun s ->
                  Printf.sprintf "%s/%s seed=%d %s" model_name flavour seed s)
                fmt
            in
            let reference, ref_stats =
              Mincostflow.solve_with_stats ~jobs:1
                ~network:Mincostflow.Dense instance
            in
            let ref_bits = Int64.bits_of_float (Matching.maxsum reference) in
            List.iter
              (fun jobs ->
                let m, stats =
                  Mincostflow.solve_with_stats ~jobs
                    ~network:Mincostflow.Sparse instance
                in
                (match Validate.check_matching m with
                | [] -> ()
                | violations ->
                    Alcotest.failf "%s: %d violations"
                      (label "jobs=%d" jobs)
                      (List.length violations));
                Alcotest.(check int64)
                  (label "maxsum bits, jobs=%d" jobs)
                  ref_bits
                  (Int64.bits_of_float (Matching.maxsum m));
                if stats.Mincostflow.pair_arcs > stats.Mincostflow.dense_pairs
                then
                  Alcotest.failf "%s: sparse has more arcs than dense"
                    (label "jobs=%d" jobs);
                pruned_pairs_seen :=
                  !pruned_pairs_seen + stats.Mincostflow.dropped_pairs)
              jobs_under_test;
            ignore ref_stats)
          [ ("eq1", base); ("tight", tighten base) ]
      done)
    attr_models;
  (* The sweep is only meaningful if the pruning path actually fired. *)
  if !pruned_pairs_seen = 0 then
    Alcotest.fail "no pair was ever pruned — tight instances too loose"

(* ---------- integer vs float cost kernels ---------- *)

(* The exactness contract of DESIGN.md §15, checked end to end: on the
   same network the integer and float SSP kernels must produce matchings
   with bit-identical MaxSum, the certified integer run must never fall
   back, and a guard shrunk to 0 (via GEACC_INT_KERNEL_GUARD) must force
   every integer run through the verified float-recompute path while
   still returning the float kernel's exact result. Re-uses the
   dense/sparse sweep's instance flavours so both the no-prune (eq1) and
   heavily-pruned (tight) cost distributions are covered. *)
let test_int_float_kernels () =
  let certified = ref 0 in
  let with_guard v f =
    (match v with
    | Some g -> Unix.putenv "GEACC_INT_KERNEL_GUARD" (string_of_int g)
    | None -> Unix.putenv "GEACC_INT_KERNEL_GUARD" "");
    Fun.protect ~finally:(fun () -> Unix.putenv "GEACC_INT_KERNEL_GUARD" "") f
  in
  for seed = 1 to 6 do
    let cfg =
      {
        Synthetic.default with
        Synthetic.n_events = 3 + (seed mod 4);
        n_users = 12 + (4 * seed);
        dim = 1 + (seed mod 3);
        attrs = (if seed mod 2 = 0 then Synthetic.Attr_zipf 1.3 else Synthetic.Attr_uniform);
        event_capacity = Synthetic.Cap_uniform 3;
        user_capacity = Synthetic.Cap_uniform 2;
        conflict_ratio = 0.3;
      }
    in
    let base = Synthetic.generate ~seed cfg in
    List.iter
      (fun (flavour, instance) ->
        let label fmt =
          Printf.ksprintf
            (fun s -> Printf.sprintf "%s seed=%d %s" flavour seed s)
            fmt
        in
        let reference, ref_stats =
          Mincostflow.solve_with_stats ~jobs:1
            ~cost_kernel:Mincostflow.Float_kernel instance
        in
        Alcotest.(check bool)
          (label "float run never falls back")
          false ref_stats.Mincostflow.int_fallback;
        let ref_bits = Int64.bits_of_float (Matching.maxsum reference) in
        (* Certified integer run: same MaxSum to the bit, no fallback. *)
        let m, stats =
          Mincostflow.solve_with_stats ~jobs:1
            ~cost_kernel:Mincostflow.Int_kernel instance
        in
        (match Validate.check_matching m with
        | [] -> ()
        | violations ->
            Alcotest.failf "%s: %d violations" (label "int kernel")
              (List.length violations));
        (* The exactness contract (Mcf.solve_int): flow value and total
           cost bit-equal; among exactly tied trees the kernels may route
           different equal-cost paths, so MaxSum — a sum of true sims
           over the chosen pairs — is only tie-equivalent, not bitwise. *)
        Alcotest.(check int)
          (label "int = float flow value")
          ref_stats.Mincostflow.flow_value stats.Mincostflow.flow_value;
        Alcotest.(check int64)
          (label "int = float flow cost bits")
          (Int64.bits_of_float ref_stats.Mincostflow.flow_cost)
          (Int64.bits_of_float stats.Mincostflow.flow_cost);
        Alcotest.(check (float 1e-6))
          (label "int = float maxsum (tie-equivalent)")
          (Matching.maxsum reference) (Matching.maxsum m);
        if not stats.Mincostflow.int_fallback then incr certified;
        Alcotest.(check string)
          (label "kernel actually used")
          (if stats.Mincostflow.int_fallback then "float" else "int")
          (Mincostflow.kernel_name stats.Mincostflow.kernel_used);
        (* Guard forced to 0: the integer run must leave the certified
           regime on pass one, recompute in float, and still agree. *)
        with_guard (Some 0) (fun () ->
            let m', stats' =
              Mincostflow.solve_with_stats ~jobs:1
                ~cost_kernel:Mincostflow.Int_kernel instance
            in
            Alcotest.(check bool)
              (label "guard=0 forces the fallback")
              true stats'.Mincostflow.int_fallback;
            Alcotest.(check string)
              (label "guard=0 accepted kernel")
              "float"
              (Mincostflow.kernel_name stats'.Mincostflow.kernel_used);
            (match Validate.check_matching m' with
            | [] -> ()
            | violations ->
                Alcotest.failf "%s: %d violations" (label "fallback")
                  (List.length violations));
            Alcotest.(check int64)
              (label "fallback maxsum bits")
              ref_bits
              (Int64.bits_of_float (Matching.maxsum m'))))
      [ ("eq1", base); ("tight", tighten base) ]
  done;
  (* The sweep must exercise the certified path, not just the fallback. *)
  if !certified = 0 then
    Alcotest.fail "no integer run stayed in the certified regime"

let suite =
  [
    Alcotest.test_case "200-instance differential sweep" `Slow
      test_differential;
    Alcotest.test_case "dense vs sparse networks identical" `Slow
      test_dense_sparse_identical;
    Alcotest.test_case "int vs float cost kernels identical" `Slow
      test_int_float_kernels;
  ]
