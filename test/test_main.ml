let () =
  Alcotest.run "geacc"
    [
      ("rng", Test_rng.suite);
      ("dist", Test_dist.suite);
      ("stats", Test_stats.suite);
      ("table", Test_table.suite);
      ("pqueue", Test_pqueue.suite);
      ("flow", Test_flow.suite);
      ("csr", Test_csr.suite);
      ("index", Test_index.suite);
      ("backends", Test_backends.suite);
      ("core-model", Test_core_model.suite);
      ("algorithms", Test_algorithms.suite);
      ("audit", Test_audit.suite);
      ("paper-example", Test_paper_example.suite);
      ("properties", Test_properties.suite);
      ("extensions", Test_extensions.suite);
      ("datagen", Test_datagen.suite);
      ("io", Test_io.suite);
      ("bench-util", Test_bench_util.suite);
      ("robust", Test_robust.suite);
      ("serve", Test_serve.suite);
      ("par", Test_par.suite);
      ("fuzz", Test_fuzz.suite);
    ]
