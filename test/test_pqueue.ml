(* Priority queues: heap-sort behaviour, invariants, cross-implementation
   agreement, plus QCheck properties. *)

open Geacc_pqueue

let int_cmp = Int.compare

let test_binary_basic () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  Alcotest.(check bool) "fresh heap empty" true (Binary_heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Binary_heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Binary_heap.pop h);
  Binary_heap.push h 5;
  Binary_heap.push h 1;
  Binary_heap.push h 3;
  Alcotest.(check int) "length" 3 (Binary_heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Binary_heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 3; 5 ]
    (Binary_heap.pop_all_sorted h)

let test_binary_exn () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  Alcotest.check_raises "peek_exn empty"
    (Invalid_argument "Binary_heap.peek_exn: empty heap") (fun () ->
      ignore (Binary_heap.peek_exn h));
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Binary_heap.pop_exn: empty heap") (fun () ->
      ignore (Binary_heap.pop_exn h))

let test_binary_of_array () =
  let a = [| 9; 2; 7; 2; 0; -3; 11 |] in
  let h = Binary_heap.of_array ~cmp:int_cmp a in
  Alcotest.(check bool) "heapify invariant" true (Binary_heap.check_invariant h);
  let expected = Array.to_list (Array.copy a) |> List.sort compare in
  Alcotest.(check (list int)) "heapify drains sorted" expected
    (Binary_heap.pop_all_sorted h);
  Alcotest.(check (array int)) "input untouched" [| 9; 2; 7; 2; 0; -3; 11 |] a

let test_binary_duplicates () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  List.iter (Binary_heap.push h) [ 4; 4; 4; 1; 1 ];
  Alcotest.(check (list int)) "duplicates kept" [ 1; 1; 4; 4; 4 ]
    (Binary_heap.pop_all_sorted h)

let test_binary_max_heap () =
  let h = Binary_heap.create ~cmp:(fun a b -> Int.compare b a) () in
  List.iter (Binary_heap.push h) [ 2; 9; 4 ];
  Alcotest.(check (option int)) "flipped cmp gives max" (Some 9)
    (Binary_heap.pop h)

let test_binary_clear () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  List.iter (Binary_heap.push h) [ 1; 2; 3 ];
  Binary_heap.clear h;
  Alcotest.(check bool) "cleared" true (Binary_heap.is_empty h);
  Binary_heap.push h 10;
  Alcotest.(check (option int)) "usable after clear" (Some 10)
    (Binary_heap.pop h)

let test_pairing_basic () =
  let h = Pairing_heap.of_list ~cmp:int_cmp [ 5; 1; 3 ] in
  Alcotest.(check int) "length" 3 (Pairing_heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Pairing_heap.peek h);
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ]
    (Pairing_heap.to_sorted_list h);
  (* Persistence: the original heap is unchanged by pop. *)
  (match Pairing_heap.pop h with
  | Some (x, rest) ->
      Alcotest.(check int) "popped min" 1 x;
      Alcotest.(check int) "rest smaller" 2 (Pairing_heap.length rest);
      Alcotest.(check int) "original untouched" 3 (Pairing_heap.length h)
  | None -> Alcotest.fail "expected an element");
  ()

let test_pairing_merge () =
  let a = Pairing_heap.of_list ~cmp:int_cmp [ 4; 8 ]
  and b = Pairing_heap.of_list ~cmp:int_cmp [ 1; 6 ] in
  let m = Pairing_heap.merge a b in
  Alcotest.(check (list int)) "merged sorted" [ 1; 4; 6; 8 ]
    (Pairing_heap.to_sorted_list m)

let test_pairing_deep () =
  (* A long ascending push sequence produces a degenerate spine; draining
     must not overflow the stack. *)
  let h =
    List.fold_left Pairing_heap.push
      (Pairing_heap.empty ~cmp:int_cmp)
      (List.init 200_000 (fun i -> i))
  in
  Alcotest.(check int) "length" 200_000 (Pairing_heap.length h);
  match Pairing_heap.pop h with
  | Some (x, _) -> Alcotest.(check int) "min" 0 x
  | None -> Alcotest.fail "non-empty"

let test_float_int_heap () =
  let h = Float_int_heap.create () in
  Alcotest.(check bool) "empty" true (Float_int_heap.is_empty h);
  Float_int_heap.push h 2.5 1;
  Float_int_heap.push h 0.5 2;
  Float_int_heap.push h 1.5 3;
  Alcotest.(check int) "length" 3 (Float_int_heap.length h);
  let keys = ref [] in
  let rec drain () =
    match Float_int_heap.pop h with
    | None -> ()
    | Some (k, _) ->
        keys := k :: !keys;
        drain ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "ascending keys" [ 0.5; 1.5; 2.5 ]
    (List.rev !keys)

let test_bucket_basic () =
  let q = Int_bucket_queue.create () in
  Alcotest.(check bool) "empty" true (Int_bucket_queue.is_empty q);
  Alcotest.(check (option (pair int int))) "pop empty" None
    (Int_bucket_queue.pop q);
  Int_bucket_queue.push q 25 1;
  Int_bucket_queue.push q 5 2;
  Int_bucket_queue.push q 15 3;
  Alcotest.(check int) "length" 3 (Int_bucket_queue.length q);
  Alcotest.(check bool) "invariant" true (Int_bucket_queue.check_invariant q);
  Alcotest.(check (option (pair int int))) "first" (Some (5, 2))
    (Int_bucket_queue.pop q);
  (* Monotone contract: pushing below the floor (5) raises. *)
  Alcotest.check_raises "below floor"
    (Invalid_argument "Int_bucket_queue.push: key below the monotone floor")
    (fun () -> Int_bucket_queue.push q 4 9);
  Int_bucket_queue.push q 5 4;
  Alcotest.(check int) "min key" 5 (Int_bucket_queue.min_key q);
  Alcotest.(check int) "min payload" 4 (Int_bucket_queue.min_payload q);
  Int_bucket_queue.drop_min q;
  Alcotest.(check (option (pair int int))) "then 15" (Some (15, 3))
    (Int_bucket_queue.pop q);
  Alcotest.(check (option (pair int int))) "then 25" (Some (25, 1))
    (Int_bucket_queue.pop q);
  Alcotest.(check bool) "drained" true (Int_bucket_queue.is_empty q)

let test_bucket_one_bucket () =
  (* Empty key range: every entry shares one key, so all of them live in
     bucket 0 and pops never re-deal. *)
  let q = Int_bucket_queue.create () in
  for p = 0 to 99 do
    Int_bucket_queue.push q 42 p
  done;
  Alcotest.(check bool) "invariant" true (Int_bucket_queue.check_invariant q);
  let seen = ref [] in
  let rec drain () =
    match Int_bucket_queue.pop q with
    | None -> ()
    | Some (k, p) ->
        Alcotest.(check int) "constant key" 42 k;
        seen := p :: !seen;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "every payload once"
    (List.init 100 Fun.id)
    (List.sort compare !seen)

let test_bucket_clear_reuse () =
  let q = Int_bucket_queue.create () in
  Int_bucket_queue.push q 1000 1;
  ignore (Int_bucket_queue.pop q);
  (* The floor is now 1000; clear must reset it so small keys work again. *)
  Int_bucket_queue.clear q;
  Alcotest.(check bool) "cleared" true (Int_bucket_queue.is_empty q);
  Int_bucket_queue.push q 3 7;
  Alcotest.(check (option (pair int int))) "usable after clear" (Some (3, 7))
    (Int_bucket_queue.pop q)

(* QCheck properties *)

let prop_binary_sorts =
  QCheck.Test.make ~name:"binary heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Binary_heap.create ~cmp:int_cmp () in
      List.iter (Binary_heap.push h) xs;
      Binary_heap.pop_all_sorted h = List.sort compare xs)

let prop_implementations_agree =
  QCheck.Test.make ~name:"binary and pairing heaps agree" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let b = Binary_heap.of_array ~cmp:int_cmp (Array.of_list xs) in
      let p = Pairing_heap.of_list ~cmp:int_cmp xs in
      Binary_heap.pop_all_sorted b = Pairing_heap.to_sorted_list p)

let prop_float_int_matches_sort =
  QCheck.Test.make ~name:"float-int heap drains keys sorted" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.) small_int))
    (fun kvs ->
      let h = Float_int_heap.create () in
      List.iter (fun (k, v) -> Float_int_heap.push h k v) kvs;
      let rec drain acc =
        match Float_int_heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare (List.map fst kvs))

let prop_bucket_matches_float_heap =
  (* Random monotone streams: interleave pushes (key = current floor + a
     small delta, keeping the bucket queue's contract satisfied) with
     pops, mirrored into a Float_int_heap. Popped key sequences must be
     identical, and the popped (key, payload) multisets must agree —
     payload order among equal keys is unspecified in both structures, so
     ties are normalised by sorting. *)
  QCheck.Test.make ~name:"bucket queue matches float-int heap" ~count:300
    QCheck.(list (option (pair (int_bound 1000) small_int)))
    (fun ops ->
      let q = Int_bucket_queue.create () in
      let h = Float_int_heap.create () in
      let floor = ref 0 and next = ref 0 in
      let bucket_pops = ref [] and heap_pops = ref [] in
      let keys_agree = ref true in
      List.iter
        (function
          | Some (delta, _tag) ->
              let k = !floor + delta in
              let p = !next in
              incr next;
              Int_bucket_queue.push q k p;
              Float_int_heap.push h (float_of_int k) p
          | None -> (
              match (Int_bucket_queue.pop q, Float_int_heap.pop h) with
              | None, None -> ()
              | Some (kq, pq), Some (kh, ph) ->
                  floor := kq;
                  if float_of_int kq <> kh then keys_agree := false;
                  bucket_pops := (kq, pq) :: !bucket_pops;
                  heap_pops := (int_of_float kh, ph) :: !heap_pops
              | _ -> keys_agree := false))
        ops;
      let rec drain_q () =
        match Int_bucket_queue.pop q with
        | None -> ()
        | Some (k, p) ->
            bucket_pops := (k, p) :: !bucket_pops;
            drain_q ()
      in
      let rec drain_h () =
        match Float_int_heap.pop h with
        | None -> ()
        | Some (k, p) ->
            heap_pops := (int_of_float k, p) :: !heap_pops;
            drain_h ()
      in
      drain_q ();
      drain_h ();
      !keys_agree
      && Int_bucket_queue.check_invariant q
      && List.map fst (List.rev !bucket_pops)
         = List.map fst (List.rev !heap_pops)
      && List.sort compare !bucket_pops = List.sort compare !heap_pops)

let prop_interleaved_ops =
  (* Random push/pop interleavings preserve the heap invariant. *)
  QCheck.Test.make ~name:"binary heap invariant under interleaving" ~count:100
    QCheck.(list (option small_int))
    (fun ops ->
      let h = Binary_heap.create ~cmp:int_cmp () in
      List.iter
        (function
          | Some x -> Binary_heap.push h x
          | None -> ignore (Binary_heap.pop h))
        ops;
      Binary_heap.check_invariant h)

let suite =
  [
    Alcotest.test_case "binary basic" `Quick test_binary_basic;
    Alcotest.test_case "binary exn" `Quick test_binary_exn;
    Alcotest.test_case "binary of_array" `Quick test_binary_of_array;
    Alcotest.test_case "binary duplicates" `Quick test_binary_duplicates;
    Alcotest.test_case "binary max-heap" `Quick test_binary_max_heap;
    Alcotest.test_case "binary clear" `Quick test_binary_clear;
    Alcotest.test_case "pairing basic" `Quick test_pairing_basic;
    Alcotest.test_case "pairing merge" `Quick test_pairing_merge;
    Alcotest.test_case "pairing deep spine" `Quick test_pairing_deep;
    Alcotest.test_case "float-int heap" `Quick test_float_int_heap;
    Alcotest.test_case "bucket queue basic" `Quick test_bucket_basic;
    Alcotest.test_case "bucket queue one bucket" `Quick test_bucket_one_bucket;
    Alcotest.test_case "bucket queue clear reuse" `Quick
      test_bucket_clear_reuse;
    QCheck_alcotest.to_alcotest prop_binary_sorts;
    QCheck_alcotest.to_alcotest prop_bucket_matches_float_heap;
    QCheck_alcotest.to_alcotest prop_implementations_agree;
    QCheck_alcotest.to_alcotest prop_float_int_matches_sort;
    QCheck_alcotest.to_alcotest prop_interleaved_ops;
  ]
