(* QCheck properties over random GEACC instances: feasibility of every
   solver, the paper's approximation-ratio theorems, Lemma 1, and exact
   search agreement. Instance sizes stay tiny because properties compare
   against the exact optimum. *)

open Geacc_core
module Synthetic = Geacc_datagen.Synthetic

(* A random tiny instance described by generator parameters. *)
type params = {
  seed : int;
  n_events : int;
  n_users : int;
  cv : int;
  cu : int;
  ratio_idx : int;  (* index into the ratio grid *)
}

let ratios = [| 0.; 0.25; 0.5; 0.75; 1. |]

let params_gen =
  QCheck.Gen.(
    map
      (fun (seed, n_events, n_users, cv, cu, ratio_idx) ->
        { seed; n_events; n_users; cv; cu; ratio_idx })
      (tup6 (int_bound 9999) (int_range 1 4) (int_range 1 6) (int_range 1 3)
         (int_range 1 2) (int_bound 4)))

let params_print p =
  Printf.sprintf "{seed=%d |V|=%d |U|=%d cv<=%d cu<=%d cf=%.2f}" p.seed
    p.n_events p.n_users p.cv p.cu ratios.(p.ratio_idx)

let params_arb = QCheck.make ~print:params_print params_gen

let instance_of p =
  Synthetic.generate ~seed:p.seed
    {
      Synthetic.default with
      Synthetic.n_events = p.n_events;
      n_users = p.n_users;
      dim = 2;
      event_capacity = Synthetic.Cap_uniform p.cv;
      user_capacity = Synthetic.Cap_uniform p.cu;
      conflict_ratio = ratios.(p.ratio_idx);
    }

let feasible m = Validate.check_matching m = []

let prop_all_solvers_feasible =
  QCheck.Test.make ~name:"every solver returns a feasible arrangement"
    ~count:100 params_arb (fun p ->
      let t = instance_of p in
      List.for_all (fun a -> feasible (Solver.run a t)) Solver.all)

let prop_greedy_ratio =
  (* Theorem 3: Greedy >= OPT / (1 + max c_u). *)
  QCheck.Test.make ~name:"Greedy-GEACC approximation ratio (Theorem 3)"
    ~count:100 params_arb (fun p ->
      let t = instance_of p in
      let opt = Matching.maxsum (Exact.solve_prune t) in
      let greedy = Matching.maxsum (Greedy.solve t) in
      let alpha = float_of_int (Instance.max_user_capacity t) in
      greedy +. 1e-9 >= opt /. (1. +. alpha))

let prop_mcf_ratio =
  (* Theorem 2: MinCostFlow >= OPT / max c_u. *)
  QCheck.Test.make ~name:"MinCostFlow-GEACC approximation ratio (Theorem 2)"
    ~count:100 params_arb (fun p ->
      let t = instance_of p in
      let opt = Matching.maxsum (Exact.solve_prune t) in
      let mcf = Matching.maxsum (Mincostflow.solve t) in
      let alpha = float_of_int (Stdlib.max 1 (Instance.max_user_capacity t)) in
      mcf +. 1e-9 >= opt /. alpha)

let prop_mcf_optimal_no_conflicts =
  (* Lemma 1 / Corollary 1 at CF = empty set. *)
  QCheck.Test.make ~name:"MinCostFlow-GEACC is optimal when CF is empty"
    ~count:80 params_arb (fun p ->
      let t = instance_of { p with ratio_idx = 0 } in
      let opt = Matching.maxsum (Exact.solve_prune t) in
      let mcf = Matching.maxsum (Mincostflow.solve t) in
      Float.abs (opt -. mcf) < 1e-6)

let prop_prune_equals_exhaustive =
  QCheck.Test.make ~name:"Prune-GEACC finds the exhaustive optimum" ~count:60
    params_arb (fun p ->
      let t = instance_of p in
      let a = Matching.maxsum (Exact.solve_prune t) in
      let b = Matching.maxsum (Exact.solve_exhaustive t) in
      Float.abs (a -. b) < 1e-6)

let prop_greedy_maximal =
  QCheck.Test.make ~name:"Greedy-GEACC output is maximal (Lemma 5)" ~count:100
    params_arb (fun p ->
      let t = instance_of p in
      let m = Greedy.solve t in
      let ok = ref true in
      for v = 0 to Instance.n_events t - 1 do
        for u = 0 to Instance.n_users t - 1 do
          if (not (Matching.mem m ~v ~u)) && Matching.check_add m ~v ~u = None
          then ok := false
        done
      done;
      !ok)

let prop_exact_upper_bounds_all =
  QCheck.Test.make ~name:"no solver beats the exact optimum" ~count:60
    params_arb (fun p ->
      let t = instance_of p in
      let opt = Matching.maxsum (Exact.solve_prune t) in
      List.for_all
        (fun a -> Matching.maxsum (Solver.run a t) <= opt +. 1e-6)
        Solver.all)

let prop_conflict_free_users =
  (* Directly re-check the defining constraint on every solver's output. *)
  QCheck.Test.make ~name:"no user ever holds two conflicting events"
    ~count:80 params_arb (fun p ->
      let t = instance_of p in
      let cf = Instance.conflicts t in
      List.for_all
        (fun a ->
          let m = Solver.run a t in
          let ok = ref true in
          for u = 0 to Instance.n_users t - 1 do
            let events = Matching.user_events m u in
            List.iter
              (fun v1 ->
                List.iter
                  (fun v2 -> if v1 < v2 && Conflict.mem cf v1 v2 then ok := false)
                  events)
              events
          done;
          !ok)
        Solver.all)

let prop_maxsum_counts_positive_sims =
  QCheck.Test.make ~name:"MaxSum equals the sum of matched similarities"
    ~count:80 params_arb (fun p ->
      let t = instance_of p in
      List.for_all
        (fun a ->
          let m = Solver.run a t in
          Float.abs (Matching.maxsum m -. Matching.maxsum_recomputed m) < 1e-6)
        [ Solver.Greedy; Solver.Min_cost_flow; Solver.Prune ])

let suite =
  List.map (fun cell -> QCheck_alcotest.to_alcotest cell)
    [
      prop_all_solvers_feasible;
      prop_greedy_ratio;
      prop_mcf_ratio;
      prop_mcf_optimal_no_conflicts;
      prop_prune_equals_exhaustive;
      prop_greedy_maximal;
      prop_exact_upper_bounds_all;
      prop_conflict_free_users;
      prop_maxsum_counts_positive_sims;
    ]
