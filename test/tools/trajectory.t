Bench trajectory: append wall-time and peak-heap snapshots keyed by
SHA, warn on regressions beyond the threshold.

A first artifact in the shape experiments.ml writes (nested per-cell
objects, cells named by their "name" member):

  $ cat > BENCH_sparse.json <<'EOF'
  > {
  >   "experiment": "sparse-flow",
  >   "profile": "quick",
  >   "jobs": 4,
  >   "cells": [
  >     {
  >       "name": "uniform-eq1",
  >       "dense": { "wall_s": 0.100000, "peak_bytes": 1000, "peak_mode": "exact", "pair_arcs": 40000, "maxsum": 12.5 },
  >       "sparse": { "wall_s": 0.050000, "peak_bytes": 900, "peak_mode": "exact", "pair_arcs": 39000, "maxsum": 12.5 }
  >     }
  >   ]
  > }
  > EOF

The first run has no prior snapshot to compare against — it just records:

  $ geacc_bench_trajectory --sha aaa1111 BENCH_sparse.json
  recorded sparse-flow: 2 cell(s) at aaa1111

  $ cat BENCH_TRAJECTORY.json
  {
    "snapshots": [
      {
        "sha": "aaa1111",
        "experiment": "sparse-flow",
        "cells": {
          "cells.uniform-eq1.dense": {
            "wall_s": 0.1,
            "peak_bytes": 1000,
            "peak_mode": "exact"
          },
          "cells.uniform-eq1.sparse": {
            "wall_s": 0.05,
            "peak_bytes": 900,
            "peak_mode": "exact"
          }
        }
      }
    ]
  }

A second run where the sparse cell got 3x slower (beyond the default 25%
threshold) while dense stayed put — one warning, exit 0 (bench noise
must not fail CI):

  $ cat > BENCH_sparse.json <<'EOF'
  > {
  >   "experiment": "sparse-flow",
  >   "cells": [
  >     {
  >       "name": "uniform-eq1",
  >       "dense": { "wall_s": 0.101000 },
  >       "sparse": { "wall_s": 0.150000 }
  >     }
  >   ]
  > }
  > EOF
  $ geacc_bench_trajectory --sha bbb2222 BENCH_sparse.json
  ::warning title=bench regression::sparse-flow cells.uniform-eq1.sparse wall time 0.050000s -> 0.150000s (+200% vs aaa1111, threshold 25%)
  recorded sparse-flow: 2 cell(s) at bbb2222

A third run compares against the most recent snapshot (bbb2222, not
aaa1111), and a custom threshold tightens the gate:

  $ cat > BENCH_sparse.json <<'EOF'
  > {
  >   "experiment": "sparse-flow",
  >   "cells": [
  >     {
  >       "name": "uniform-eq1",
  >       "dense": { "wall_s": 0.112000 },
  >       "sparse": { "wall_s": 0.150000 }
  >     }
  >   ]
  > }
  > EOF
  $ geacc_bench_trajectory --sha ccc3333 --threshold 10 BENCH_sparse.json
  ::warning title=bench regression::sparse-flow cells.uniform-eq1.dense wall time 0.101000s -> 0.112000s (+11% vs bbb2222, threshold 10%)
  recorded sparse-flow: 2 cell(s) at ccc3333

The trajectory now holds all three snapshots in order:

  $ grep '"sha"' BENCH_TRAJECTORY.json
        "sha": "aaa1111",
        "sha": "bbb2222",
        "sha": "ccc3333",

Snapshots of other experiments do not cross-contaminate the comparison —
a fresh experiment records without warnings even though sparse-flow
history exists:

  $ cat > BENCH_other.json <<'EOF'
  > { "rows": [ { "wall_s": 9.0 } ] }
  > EOF
  $ geacc_bench_trajectory --sha ddd4444 BENCH_other.json
  recorded other: 1 cell(s) at ddd4444

Peak-heap cells are gated too, but only exact-vs-exact: a gc-delta
measurement on either side is Gc-sampling noise, so those comparisons
are skipped rather than warned on. Baseline — one exact cell, one
gc-delta cell, one exact cell that will later degrade to gc-delta:

  $ cat > BENCH_peak.json <<'EOF'
  > {
  >   "experiment": "peak-demo",
  >   "cells": [
  >     { "name": "k", "run": { "wall_s": 1.0, "peak_bytes": 1000, "peak_mode": "exact" } },
  >     { "name": "g", "run": { "wall_s": 1.0, "peak_bytes": 1000, "peak_mode": "gc-delta" } },
  >     { "name": "m", "run": { "wall_s": 1.0, "peak_bytes": 1000, "peak_mode": "exact" } }
  >   ]
  > }
  > EOF
  $ geacc_bench_trajectory --sha fff6666 BENCH_peak.json
  recorded peak-demo: 3 cell(s) at fff6666

All three peaks double (well past 25%), wall times hold still. Only the
exact-vs-exact cell warns; the gc-delta cell and the mode-flipped cell
are skipped:

  $ cat > BENCH_peak.json <<'EOF'
  > {
  >   "experiment": "peak-demo",
  >   "cells": [
  >     { "name": "k", "run": { "wall_s": 1.0, "peak_bytes": 2000, "peak_mode": "exact" } },
  >     { "name": "g", "run": { "wall_s": 1.0, "peak_bytes": 2000, "peak_mode": "gc-delta" } },
  >     { "name": "m", "run": { "wall_s": 1.0, "peak_bytes": 2000, "peak_mode": "gc-delta" } }
  >   ]
  > }
  > EOF
  $ geacc_bench_trajectory --sha ggg7777 BENCH_peak.json
  ::warning title=bench regression::peak-demo cells.k.run peak heap 1000B -> 2000B (+100% vs fff6666, threshold 25%)
  recorded peak-demo: 3 cell(s) at ggg7777

An unreadable artifact is a hard failure (CI must notice), unlike a
regression:

  $ echo 'not json' > BENCH_bad.json
  $ geacc_bench_trajectory --sha eee5555 BENCH_bad.json
  bench_trajectory: BENCH_bad.json: expected null at byte 0
  [1]

Missing --sha is a usage error:

  $ geacc_bench_trajectory BENCH_sparse.json
  usage: bench_trajectory --sha SHA [--trajectory FILE] [--threshold PCT] BENCH_*.json...
  [2]
