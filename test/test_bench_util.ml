(* Measurement utilities and the experiment harness. *)

open Geacc_util
module Synthetic = Geacc_datagen.Synthetic
module Harness = Geacc_bench.Harness
module Solver = Geacc_core.Solver

let test_time () =
  let x, elapsed = Measure.time (fun () -> Array.init 100_000 Fun.id) in
  Alcotest.(check int) "result returned" 100_000 (Array.length x);
  Alcotest.(check bool) "non-negative duration" true (elapsed >= 0.)

let test_run_reports_retained () =
  let x, sample = Measure.run (fun () -> Array.make 500_000 0.) in
  Alcotest.(check int) "result returned" 500_000 (Array.length x);
  (* 500k floats = ~4MB retained. *)
  Alcotest.(check bool) "retained growth visible" true
    (sample.Measure.live_bytes > 3_000_000);
  Alcotest.(check bool) "time recorded" true (sample.Measure.wall_s >= 0.)

let test_run_with_peak_sees_retained () =
  let x, peak, mode = Measure.run_with_peak (fun () -> Array.make 500_000 0.) in
  Alcotest.(check int) "result returned" 500_000 (Array.length x);
  Alcotest.(check bool) "peak covers the retained array" true
    (peak > 3_000_000);
  (* The test runner calls from the main domain, so the sampler mode — not
     the worker-domain Gc-delta fallback — must be reported. *)
  Alcotest.(check string) "mode" "exact" (Measure.peak_mode_label mode)

let test_run_with_peak_propagates_exceptions () =
  Alcotest.check_raises "exception passes through" Exit (fun () ->
      ignore (Measure.run_with_peak (fun () -> raise Exit)))

let tiny_cfg =
  {
    Synthetic.default with
    Synthetic.n_events = 3;
    n_users = 6;
    dim = 2;
    event_capacity = Synthetic.Cap_uniform 2;
    user_capacity = Synthetic.Cap_uniform 2;
  }

let test_harness_measure () =
  let make () = Synthetic.generate ~seed:1 tiny_cfg in
  let m = Harness.measure Solver.Greedy make in
  Alcotest.(check bool) "pairs matched" true (m.Harness.matched_pairs > 0);
  Alcotest.(check bool) "maxsum positive" true (m.Harness.maxsum > 0.);
  Alcotest.(check bool) "time non-negative" true (m.Harness.wall_s >= 0.);
  Alcotest.(check string) "peak mode recorded" "exact"
    (Measure.peak_mode_label m.Harness.peak_mode)

let test_harness_average_deterministic_algorithms () =
  let make ~seed = Synthetic.generate ~seed tiny_cfg in
  let aggregates =
    Harness.average ~trials:3 ~make_instance:make
      [ Solver.Greedy; Solver.Prune ]
  in
  match aggregates with
  | [ greedy; prune ] ->
      Alcotest.(check int) "trials recorded" 3 greedy.Harness.trials;
      Alcotest.(check bool) "prune >= greedy on average" true
        (prune.Harness.mean_maxsum +. 1e-9 >= greedy.Harness.mean_maxsum)
  | _ -> Alcotest.fail "two aggregates expected"

let test_metric_projection () =
  let agg =
    {
      Harness.algorithm = Solver.Greedy;
      trials = 1;
      mean_maxsum = 2.5;
      mean_wall_s = 0.25;
      mean_live_bytes = 2. *. 1024. *. 1024.;
    }
  in
  Alcotest.(check (float 1e-9)) "maxsum" 2.5 (Harness.metric `Maxsum agg);
  Alcotest.(check (float 1e-9)) "ms" 250. (Harness.metric `Time_ms agg);
  Alcotest.(check (float 1e-9)) "mb" 2. (Harness.metric `Memory_mb agg);
  Alcotest.(check string) "label" "MaxSum" (Harness.metric_label `Maxsum)

let suite =
  [
    Alcotest.test_case "time" `Quick test_time;
    Alcotest.test_case "run reports retained memory" `Quick
      test_run_reports_retained;
    Alcotest.test_case "peak covers retained" `Quick
      test_run_with_peak_sees_retained;
    Alcotest.test_case "peak propagates exceptions" `Quick
      test_run_with_peak_propagates_exceptions;
    Alcotest.test_case "harness measure" `Quick test_harness_measure;
    Alcotest.test_case "harness average" `Quick
      test_harness_average_deterministic_algorithms;
    Alcotest.test_case "metric projection" `Quick test_metric_projection;
  ]
