(* CSR finalization invariants on the flow graph:

   - offsets are monotone, contiguous, and cover every arc exactly once;
   - positions and arc ids are mutually inverse permutations, and the
     per-node position order reproduces the linked-list traversal order
     exactly (same arc ids, same sequence);
   - the positional capacity mirror tracks [push] / residual-capacity
     writes and [reset_flow];
   - adding an arc invalidates the CSR and re-finalizing repairs it;
   - shortest-path/flow results are unchanged by when (or how often)
     finalization runs. *)

module Graph = Geacc_flow.Graph
module Shortest_path = Geacc_flow.Shortest_path
module Maxflow = Geacc_flow.Maxflow
module Rng = Geacc_util.Rng

(* A random multigraph with parallel arcs and isolated nodes — the shapes
   that stress offset bookkeeping. *)
let random_graph ~seed ~nodes ~arcs =
  let rng = Rng.create ~seed in
  let g = Graph.create ~num_nodes:nodes in
  Graph.reserve g ~arcs;
  for _ = 1 to arcs do
    let s = Rng.int rng nodes and d = Rng.int rng nodes in
    let (_ : Graph.arc) =
      Graph.add_arc g ~src:s ~dst:d
        ~capacity:(1 + Rng.int rng 4)
        ~cost:(Rng.float rng 1.)
    in
    ()
  done;
  g

let check_csr_structure ~label g =
  let n = Graph.node_count g and m = Graph.arc_count g in
  Alcotest.(check bool) (label ^ ": csr_valid") true (Graph.csr_valid g);
  Alcotest.(check int) (label ^ ": offsets start at 0") 0
    (if n = 0 then 0 else Graph.out_begin g 0);
  for v = 0 to n - 1 do
    if Graph.out_end g v < Graph.out_begin g v then
      Alcotest.failf "%s: node %d range reversed" label v;
    if v + 1 < n && Graph.out_end g v <> Graph.out_begin g (v + 1) then
      Alcotest.failf "%s: gap between node %d and %d" label v (v + 1)
  done;
  if n > 0 then
    Alcotest.(check int) (label ^ ": offsets cover all arcs") m
      (Graph.out_end g (n - 1));
  (* Positions <-> arc ids are inverse permutations, and every positional
     accessor agrees with its arc-indexed counterpart. *)
  let seen = Array.make m false in
  for v = 0 to n - 1 do
    for p = Graph.out_begin g v to Graph.out_end g v - 1 do
      let a = Graph.pos_arc g p in
      if a < 0 || a >= m then Alcotest.failf "%s: arc id out of range" label;
      if seen.(a) then Alcotest.failf "%s: arc %d appears twice" label a;
      seen.(a) <- true;
      Alcotest.(check int)
        (Printf.sprintf "%s: arc_position inverse of pos_arc (p=%d)" label p)
        p (Graph.arc_position g a);
      Alcotest.(check int)
        (Printf.sprintf "%s: pos %d src" label p)
        v (Graph.src g a);
      Alcotest.(check int)
        (Printf.sprintf "%s: pos %d dst" label p)
        (Graph.dst g a) (Graph.pos_dst g p);
      Alcotest.(check int64)
        (Printf.sprintf "%s: pos %d cost bits" label p)
        (Int64.bits_of_float (Graph.cost g a))
        (Int64.bits_of_float (Graph.pos_cost g p));
      Alcotest.(check int)
        (Printf.sprintf "%s: pos %d residual cap" label p)
        (Graph.residual_capacity g a)
        (Graph.pos_residual_capacity g p)
    done
  done;
  Array.iteri
    (fun a covered ->
      if not covered then Alcotest.failf "%s: arc %d missing from CSR" label a)
    seen

let test_structure () =
  List.iter
    (fun (seed, nodes, arcs) ->
      let g = random_graph ~seed ~nodes ~arcs in
      Graph.finalize_csr g;
      check_csr_structure
        ~label:(Printf.sprintf "seed=%d n=%d m=%d" seed nodes arcs)
        g)
    [ (1, 1, 0); (2, 5, 1); (3, 9, 40); (4, 30, 200); (5, 12, 12) ]

let test_matches_linked_list_order () =
  let g = random_graph ~seed:6 ~nodes:15 ~arcs:80 in
  Graph.finalize_csr g;
  for v = 0 to Graph.node_count g - 1 do
    (* Walk the intrusive adjacency list and the CSR range in lockstep:
       the CSR must replay the exact traversal the solvers used before. *)
    let p = ref (Graph.out_begin g v) in
    Graph.iter_out_arcs g v (fun a ->
        Alcotest.(check int)
          (Printf.sprintf "node %d position %d arc id" v !p)
          a (Graph.pos_arc g !p);
        incr p);
    Alcotest.(check int)
      (Printf.sprintf "node %d arc range exhausted" v)
      (Graph.out_end g v) !p
  done

let test_residual_pairing_preserved () =
  let g = random_graph ~seed:7 ~nodes:10 ~arcs:60 in
  Graph.finalize_csr g;
  for a = 0 to Graph.arc_count g - 1 do
    (* Arc ids survive CSR finalization, so the partner is still a lxor 1
       and forward arcs are still the even ids. *)
    let b = a lxor 1 in
    Alcotest.(check int)
      (Printf.sprintf "arc %d partner dst is own src" a)
      (Graph.src g a)
      (Graph.dst g b);
    let pa = Graph.arc_position g a and pb = Graph.arc_position g b in
    if pa = pb then Alcotest.failf "arc %d shares a position with partner" a
  done

let test_push_updates_mirror () =
  let g = Graph.create ~num_nodes:4 in
  let a0 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:3 ~cost:0.5 in
  let a1 = Graph.add_arc g ~src:1 ~dst:2 ~capacity:2 ~cost:0.25 in
  let _a2 = Graph.add_arc g ~src:2 ~dst:3 ~capacity:1 ~cost:0.125 in
  Graph.finalize_csr g;
  Graph.push g a0 2;
  Graph.push g a1 1;
  check_csr_structure ~label:"after push" g;
  Alcotest.(check int) "pushed flow visible positionally" 1
    (Graph.pos_residual_capacity g (Graph.arc_position g a0));
  Alcotest.(check int) "reverse arc gained capacity" 2
    (Graph.pos_residual_capacity g (Graph.arc_position g (a0 lxor 1)));
  (* Cancel one unit over the reverse arc: both mirrors move again. *)
  Graph.push g (a0 lxor 1) 1;
  check_csr_structure ~label:"after reverse push" g;
  Graph.unsafe_set_residual_capacity g a1 2;
  Graph.unsafe_set_residual_capacity g (a1 lxor 1) 0;
  check_csr_structure ~label:"after raw write" g;
  Graph.reset_flow g;
  check_csr_structure ~label:"after reset_flow" g;
  Alcotest.(check int) "reset restores initial capacity" 3
    (Graph.pos_residual_capacity g (Graph.arc_position g a0))

let test_add_arc_invalidates () =
  let g = Graph.create ~num_nodes:3 in
  let (_ : Graph.arc) =
    Graph.add_arc g ~src:0 ~dst:1 ~capacity:1 ~cost:0.
  in
  Graph.finalize_csr g;
  Alcotest.(check bool) "valid after finalize" true (Graph.csr_valid g);
  let (_ : Graph.arc) =
    Graph.add_arc g ~src:1 ~dst:2 ~capacity:1 ~cost:0.
  in
  Alcotest.(check bool) "stale after add_arc" false (Graph.csr_valid g);
  Graph.finalize_csr g;
  check_csr_structure ~label:"re-finalized" g

let test_flow_round_trip () =
  (* A 2x2 transport instance driven through the CSR-backed solvers: the
     cheapest augmenting path is s->1->3->t (0.1), then s->2->4->t (0.2)
     after one unit is pushed along the first. *)
  let g = Graph.create ~num_nodes:6 in
  let s = 0 and t = 5 in
  let (_ : Graph.arc) = Graph.add_arc g ~src:s ~dst:1 ~capacity:2 ~cost:0. in
  let (_ : Graph.arc) = Graph.add_arc g ~src:s ~dst:2 ~capacity:2 ~cost:0. in
  let (_ : Graph.arc) =
    Graph.add_arc g ~src:1 ~dst:3 ~capacity:1 ~cost:0.1
  in
  let (_ : Graph.arc) =
    Graph.add_arc g ~src:1 ~dst:4 ~capacity:1 ~cost:0.4
  in
  let (_ : Graph.arc) =
    Graph.add_arc g ~src:2 ~dst:4 ~capacity:2 ~cost:0.2
  in
  let (_ : Graph.arc) = Graph.add_arc g ~src:3 ~dst:t ~capacity:2 ~cost:0. in
  let (_ : Graph.arc) = Graph.add_arc g ~src:4 ~dst:t ~capacity:2 ~cost:0. in
  let augment_cheapest expected_cost =
    let r = Shortest_path.dijkstra g ~source:s () in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "path cost %g" expected_cost)
      expected_cost r.Shortest_path.dist.(t);
    (* Walk parents back from the sink pushing one unit. *)
    let v = ref t in
    while !v <> s do
      let a = r.Shortest_path.parent_arc.(!v) in
      Graph.push g a 1;
      v := Graph.src g a
    done
  in
  augment_cheapest 0.1;
  check_csr_structure ~label:"after first augmentation" g;
  augment_cheapest 0.2;
  check_csr_structure ~label:"after second augmentation" g;
  let b = Shortest_path.bellman_ford g ~source:s in
  (match b with
  | None -> Alcotest.fail "unexpected negative cycle"
  | Some r ->
      Alcotest.(check (float 1e-12))
        "bellman-ford agrees on residual" 0.2
        r.Shortest_path.dist.(t));
  Graph.reset_flow g;
  check_csr_structure ~label:"after reset" g;
  let flow_only = Maxflow.solve g ~source:s ~sink:t in
  Alcotest.(check int) "max flow via BFS" 3 flow_only;
  check_csr_structure ~label:"after maxflow" g

let suite =
  [
    Alcotest.test_case "offsets/permutation structure" `Quick test_structure;
    Alcotest.test_case "CSR replays linked-list order" `Quick
      test_matches_linked_list_order;
    Alcotest.test_case "residual pairing preserved" `Quick
      test_residual_pairing_preserved;
    Alcotest.test_case "push keeps positional mirror in sync" `Quick
      test_push_updates_mirror;
    Alcotest.test_case "add_arc invalidates, re-finalize repairs" `Quick
      test_add_arc_invalidates;
    Alcotest.test_case "flow solvers round-trip on CSR" `Quick
      test_flow_round_trip;
  ]
