(* Extensions: the naive greedy oracle and local-search improvement. *)

open Geacc_core
module Synthetic = Geacc_datagen.Synthetic

let cfg =
  {
    Synthetic.default with
    Synthetic.n_events = 5;
    n_users = 10;
    dim = 2;
    event_capacity = Synthetic.Cap_uniform 4;
    user_capacity = Synthetic.Cap_uniform 2;
  }

let test_naive_equals_heap_greedy () =
  (* The two implementations process pairs in the same order, so their
     arrangements are identical — not just equal in MaxSum. *)
  for seed = 1 to 30 do
    let t = Synthetic.generate ~seed cfg in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "seed %d identical matchings" seed)
      (Matching.pairs (Greedy_naive.solve t))
      (Matching.pairs (Greedy.solve t))
  done

let test_naive_equals_heap_greedy_larger () =
  let t =
    Synthetic.generate ~seed:7
      { Synthetic.default with Synthetic.n_events = 30; n_users = 120 }
  in
  Alcotest.(check (list (pair int int)))
    "identical at moderate scale"
    (Matching.pairs (Greedy_naive.solve t))
    (Matching.pairs (Greedy.solve t))

let test_local_search_never_worse () =
  for seed = 1 to 20 do
    let t = Synthetic.generate ~seed cfg in
    let m = Greedy.solve t in
    let before = Matching.maxsum m in
    let stats = Local_search.improve m in
    Alcotest.(check bool) "no violations" true (Validate.check_matching m = []);
    Alcotest.(check bool) "gained >= 0" true (stats.Local_search.gained >= -1e-9);
    Alcotest.(check (float 1e-9)) "gained is the delta"
      (Matching.maxsum m -. before)
      stats.Local_search.gained
  done

let test_local_search_bounded_by_optimum () =
  for seed = 1 to 15 do
    let t = Synthetic.generate ~seed cfg in
    let opt = Matching.maxsum (Exact.solve_prune t) in
    let ls = Matching.maxsum (Local_search.solve t) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: greedy <= greedy+ls <= opt" seed)
      true
      (ls <= opt +. 1e-6 && ls +. 1e-9 >= Matching.maxsum (Greedy.solve t))
  done

let test_local_search_actually_improves_something () =
  (* Over a batch of random instances where greedy is suboptimal, the
     replace move must close part of the gap at least once — otherwise the
     optimiser is a no-op and this test fails loudly. *)
  let improved = ref false in
  for seed = 1 to 40 do
    let t = Synthetic.generate ~seed cfg in
    let greedy = Matching.maxsum (Greedy.solve t) in
    let ls = Matching.maxsum (Local_search.solve t) in
    if ls > greedy +. 1e-9 then improved := true
  done;
  Alcotest.(check bool) "local search improves some instance" true !improved

let test_local_search_fixpoint_on_optimal () =
  (* Feeding it an optimal matching must change nothing. *)
  let t = Synthetic.generate ~seed:3 cfg in
  let m = Exact.solve_prune t in
  let before = Matching.maxsum m in
  let stats = Local_search.improve m in
  Alcotest.(check (float 1e-9)) "unchanged" before (Matching.maxsum m);
  Alcotest.(check (float 1e-9)) "no gain" 0. stats.Local_search.gained

let test_local_search_respects_rounds () =
  let t = Synthetic.generate ~seed:4 cfg in
  let m = Greedy.solve t in
  let stats = Local_search.improve ~max_rounds:1 m in
  Alcotest.(check bool) "round cap" true (stats.Local_search.rounds <= 1);
  Alcotest.(check bool) "bad cap rejected" true
    (try
       ignore (Local_search.improve ~max_rounds:0 m);
       false
     with Invalid_argument _ -> true)

(* [Online.solve] reports bad orders as a structured [Error]; the tests for
   well-formed orders unwrap it. *)
let online_exn ?order t =
  match Online.solve ?order t with
  | Ok m -> m
  | Error e -> Alcotest.failf "online: %s" (Geacc_robust.Error.to_string e)

let test_online_feasible_any_order () =
  let rng = Geacc_util.Rng.create ~seed:5 in
  for seed = 1 to 15 do
    let t = Synthetic.generate ~seed cfg in
    let m = Online.solve_random_order ~rng t in
    Alcotest.(check bool) "feasible" true (Validate.check_matching m = [])
  done

let test_online_default_order_deterministic () =
  let t = Synthetic.generate ~seed:2 cfg in
  Alcotest.(check (list (pair int int)))
    "ascending arrivals reproducible"
    (Matching.pairs (online_exn t))
    (Matching.pairs (online_exn t))

let test_online_bounded_by_optimum () =
  for seed = 1 to 10 do
    let t = Synthetic.generate ~seed cfg in
    let opt = Matching.maxsum (Exact.solve_prune t) in
    let online = Matching.maxsum (online_exn t) in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: online <= opt" seed)
      true
      (online <= opt +. 1e-6)
  done

let test_online_each_user_served_greedily () =
  (* The first arrival faces a fresh system: it must receive its top
     feasible events. *)
  let t = Synthetic.generate ~seed:3 cfg in
  let m = online_exn t in
  let u = 0 in
  let got = List.sort compare (Matching.user_events m u) in
  let expected =
    (* Walk user 0's ranks over a fresh matching. *)
    let fresh = Matching.create t in
    let rec walk rank acc =
      if Matching.remaining_user_capacity fresh u = 0 then acc
      else
        match Instance.user_neighbor t ~u ~rank with
        | None -> acc
        | Some (v, _) -> (
            match Matching.add fresh ~v ~u with
            | Ok _ -> walk (rank + 1) (v :: acc)
            | Error _ -> walk (rank + 1) acc)
    in
    List.sort compare (walk 1 [])
  in
  Alcotest.(check (list int)) "first arrival gets its best" expected got

let test_online_rejects_bad_order () =
  let t = Synthetic.generate ~seed:4 cfg in
  let expect_invalid label order =
    match Online.solve ~order t with
    | Ok _ -> Alcotest.failf "%s: accepted a bad order" label
    | Error (Geacc_robust.Error.Invalid_input { what; _ }) ->
        Alcotest.(check string) (label ^ " names order") "order" what
    | Error e ->
        Alcotest.failf "%s: unexpected error %s" label
          (Geacc_robust.Error.to_string e)
  in
  expect_invalid "wrong length" [| 0 |];
  expect_invalid "duplicate ids" (Array.make (Instance.n_users t) 0);
  expect_invalid "out of range"
    (Array.init (Instance.n_users t) (fun i ->
         if i = 0 then Instance.n_users t else i))

let suite =
  [
    Alcotest.test_case "naive greedy = heap greedy" `Quick
      test_naive_equals_heap_greedy;
    Alcotest.test_case "online feasible" `Quick test_online_feasible_any_order;
    Alcotest.test_case "online deterministic" `Quick
      test_online_default_order_deterministic;
    Alcotest.test_case "online bounded by optimum" `Quick
      test_online_bounded_by_optimum;
    Alcotest.test_case "online serves arrivals greedily" `Quick
      test_online_each_user_served_greedily;
    Alcotest.test_case "online rejects bad orders" `Quick
      test_online_rejects_bad_order;
    Alcotest.test_case "naive greedy = heap greedy (larger)" `Quick
      test_naive_equals_heap_greedy_larger;
    Alcotest.test_case "local search never worse" `Quick
      test_local_search_never_worse;
    Alcotest.test_case "local search bounded by optimum" `Quick
      test_local_search_bounded_by_optimum;
    Alcotest.test_case "local search improves something" `Quick
      test_local_search_actually_improves_something;
    Alcotest.test_case "local search fixpoint on optimal" `Quick
      test_local_search_fixpoint_on_optimal;
    Alcotest.test_case "local search round cap" `Quick
      test_local_search_respects_rounds;
  ]
