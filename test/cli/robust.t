Robustness features of the geacc CLI: time-budgeted anytime solving, the
fallback chain, deterministic fault injection and the degraded exit code.
All timeouts below are forced through GEACC_FAULTS (timeout.<stage>@N =
the stage's budget expires on poll N), so every run is reproducible; only
the timing lines/columns vary and are globbed or filtered out.

  $ geacc generate --out small.inst --events 6 --users 12 --dim 2 --cv-max 3 --cu-max 2 --conflict-ratio 0.5 --seed 7 2> /dev/null
  wrote small.inst: |V|=6 |U|=12 d=2 sum(c_v)=14 sum(c_u)=21 max(c_u)=2 CF(8 pairs, ratio 0.533) sim=euclidean(d=2,T=10000)

A budgeted run that completes within its deadline is a normal success.

  $ geacc solve -i small.inst -a greedy --timeout 100 2> /dev/null | grep -v '^time:'
  algorithm: Greedy-GEACC
  MaxSum: 11.194629
  matched pairs: 14
  status: complete

Forcing both exact stages to time out mid-search makes the chain fall back
to MinCostFlow; the served matching is still feasible, the result is
reported degraded, the stderr summary counts the fallbacks, and the exit
code is 3 (feasible but degraded) — with audits on, so every degraded
checkpoint was re-validated before being served.

  $ GEACC_FAULTS='timeout.exhaustive@2,timeout.prune@2' GEACC_AUDIT=1 geacc solve -i small.inst --fallback -o degraded.match > degraded.out 2> degraded.err; echo "exit=$?"
  exit=3
  $ grep -v '^time:' degraded.out
  algorithm: MinCostFlow-GEACC
  MaxSum: 9.330672
  matched pairs: 11
  status: degraded (stage exhaustive timed out)
  wrote matching to degraded.match
  $ grep '^anytime:' degraded.err
  anytime: status=degraded stage=mincostflow stages-tried=3 fallbacks=2 retries=0 faults=0 injected-faults=0 audit-violations=0
  $ grep -E '^(exhaustive|prune|mincostflow)' degraded.err | awk '{print $1, $2, $3}'
  exhaustive 1 timed
  prune 1 timed
  mincostflow 1 completed

The degraded matching must validate clean against the instance.

  $ geacc validate -i small.inst -m degraded.match
  feasible: 11 pairs, MaxSum 9.330672

A transient allocation fault in the flow-network build is retried and the
run still completes (exit 0); the summary records the retry and the fired
injection.

  $ GEACC_FAULTS='mcf.alloc@1' geacc solve -i small.inst -a mincostflow --timeout 100 --max-retries 1 > retry.out 2> retry.err; echo "exit=$?"
  exit=0
  $ grep '^status:' retry.out
  status: complete
  $ grep '^anytime:' retry.err
  anytime: status=complete stage=mincostflow stages-tried=1 fallbacks=0 retries=1 faults=1 injected-faults=1 audit-violations=0

A persistent fault with no fallback exhausts the chain (exit 1).

  $ GEACC_FAULTS='mcf.alloc' geacc solve -i small.inst -a mincostflow --timeout 100 --max-retries 2 2>&1 >/dev/null | tail -1;
  geacc: all 1 stages failed; last (mincostflow): Fault.Injected at point mcf.alloc

A malformed fault plan is refused up front rather than silently ignored.

  $ GEACC_FAULTS='BAD' geacc info -i small.inst
  geacc: malformed GEACC_FAULTS: bad fault point "BAD"
  [1]

Injected file corruption surfaces as a precise parse error (exit 1), never
as a half-built instance.

  $ GEACC_FAULTS='io.truncate' geacc info -i small.inst
  geacc: parse error: unexpected end of input
  [1]
  $ GEACC_FAULTS='io.corrupt' geacc info -i small.inst
  geacc: parse error at line 2: expected a number, got "1x000"
  [1]

The online solver reports non-permutation arrival orders as structured
input errors (exit 1) — wrong length, duplicates — and serves valid ones.

  $ geacc solve -i small.inst -a online --order 0,1,2
  geacc: invalid order: length 3 differs from |U| = 12
  [1]
  $ geacc solve -i small.inst -a online --order 0,0,1,2,3,4,5,6,7,8,9,10
  geacc: invalid order: user id 0 appears twice
  [1]
  $ geacc solve -i small.inst -a online --order 11,10,9,8,7,6,5,4,3,2,1,0
  algorithm: Online-Greedy
  MaxSum: 10.574453
  matched pairs: 14
  $ geacc solve -i small.inst -a greedy --order 0,1
  geacc: --order only applies to --algorithm online
  [1]

An infeasible matching file still maps to the dedicated exit code 2.

  $ printf 'geacc-matching 1\npairs 2\n0 0\n0 0\n' > bad.match
  $ geacc validate -i small.inst -m bad.match
  violation: duplicate pair (v0,u0)
  geacc: 1 violations
  [2]
