The crash-safe serving loop: journal + snapshot recovery, incremental
repair, admission control and the degraded exit-code contract. Everything
below is deterministic — faults and deadlines are forced through
GEACC_FAULTS, never wall clocks.

A hand-written five-batch trace over a 2-d instance: two events and three
users arrive, a conflict surfaces, one user churns out. Batches 3 and 4
share a timestamp, so they contend for admission as one group.

  $ cat > tiny.trace <<'EOF'
  > geacc-trace 1
  > sim euclidean 2 1
  > batch 1 0 must
  > event-open 2 1 0
  > event-open 1 0 1
  > user-arrive 1 0.9 0.1
  > user-arrive 1 0.2 0.8
  > end
  > batch 2 1 must
  > user-arrive 1 0.5 0.5
  > conflict-add 0 1
  > stats
  > end
  > batch 3 2 should
  > user-arrive 1 0.8 0.2
  > event-capacity 1 2
  > end
  > batch 4 2 optional
  > stats
  > end
  > batch 5 3 must
  > user-depart 0
  > event-close 0
  > stats
  > end
  > EOF

A clean run serves every batch, snapshots on the configured cadence, and
exits 0. The transcript is the service log: per-batch acks with the replay
origin, stats probes, and a final digest.

  $ geacc serve --trace tiny.trace --state st --snapshot-every 2 --digest ref.digest
  start seq 0 journal 0 digest a641af1052e0113c
  ok 1 from 0 pairs 2 maxsum 1.7
  ok 2 from 0 pairs 3 maxsum 2.2
  stats 2 health ok users 3/3 events 2/2 conflicts 1 pairs 3 maxsum 2.2
  snapshot 2
  ok 3 from 0 pairs 4 maxsum 2.4
  ok 4 from 4 pairs 4 maxsum 2.4
  stats 4 health ok users 4/4 events 2/2 conflicts 1 pairs 4 maxsum 2.4
  snapshot 4
  ok 5 from 0 pairs 2 maxsum 1.3
  stats 5 health ok users 3/4 events 1/2 conflicts 1 pairs 2 maxsum 1.3
  done seq 5 applied 5 degraded 0 shed 0 errors 0 digest 92ddd963c40aa879
  serve: batches=5 admitted=5 shed=0 skipped=0 applied=5 errors=0 degraded=0 full-replays=4 snapshots=2 retries=0 replayed=0 injected-faults=0

Re-running the same trace against the surviving state is idempotent: every
batch is skipped by its journal sequence number and the digest is unchanged.

  $ geacc serve --trace tiny.trace --state st --snapshot-every 2 --digest again.digest
  start seq 5 journal 1 digest 92ddd963c40aa879
  done seq 5 applied 0 degraded 0 shed 0 errors 0 digest 92ddd963c40aa879
  serve: batches=5 admitted=0 shed=0 skipped=5 applied=0 errors=0 degraded=0 full-replays=0 snapshots=0 retries=0 replayed=1 injected-faults=0
  $ cmp ref.digest again.digest && echo same
  same

A crash injected at the third checkpoint kills the run (exit 1) after the
journal append but before the acknowledgement.

  $ GEACC_FAULTS='serve.crash@3' geacc serve --trace tiny.trace --state crashed --snapshot-every 2
  start seq 0 journal 0 digest a641af1052e0113c
  ok 1 from 0 pairs 2 maxsum 1.7
  geacc: injected crash at serve.crash
  [1]

Restarting replays the snapshot + journal and finishes the trace; the final
digest is bit-identical to the uninterrupted run's. The two records already
in the journal count toward the snapshot cadence, so the first batch served
after recovery crosses it and truncates the backlog straight away.

  $ geacc serve --trace tiny.trace --state crashed --snapshot-every 2 --digest recovered.digest
  start seq 2 journal 2 digest 2d6f68fa2e7033bf
  ok 3 from 0 pairs 4 maxsum 2.4
  snapshot 3
  ok 4 from 4 pairs 4 maxsum 2.4
  stats 4 health ok users 4/4 events 2/2 conflicts 1 pairs 4 maxsum 2.4
  ok 5 from 0 pairs 2 maxsum 1.3
  stats 5 health ok users 3/4 events 1/2 conflicts 1 pairs 2 maxsum 1.3
  snapshot 5
  done seq 5 applied 3 degraded 0 shed 0 errors 0 digest 92ddd963c40aa879
  serve: batches=5 admitted=3 shed=0 skipped=2 applied=3 errors=0 degraded=0 full-replays=2 snapshots=2 retries=0 replayed=2 injected-faults=0
  $ cmp ref.digest recovered.digest && echo same
  same

A journal record whose checksum does not match is interior corruption, not
a torn tail: recovery refuses to guess and the server will not start.

  $ GEACC_FAULTS='serve.crash@5' geacc serve --trace tiny.trace --state corrupt >/dev/null
  geacc: injected crash at serve.crash
  [1]
  $ GEACC_FAULTS='journal.corrupt@1' geacc serve --trace tiny.trace --state corrupt
  geacc: parse error at line 2: journal record 1: crc mismatch (stored eb28b7a8, computed 4bc101eb)
  [1]

A batch the state rejects is journaled before validation runs, so a
restart must not journal it again: admission skips everything at or below
the highest journaled seq, not merely the highest applied one. (Filtering
on the applied seq would append a duplicate seq on the second run and the
strict-monotonicity check would refuse the whole journal on the third —
a permanently bricked state directory.)

  $ cat > reject.trace <<'EOF'
  > geacc-trace 1
  > sim euclidean 2 1
  > batch 1 0 must
  > event-open 1 1 0
  > user-arrive 1 0.9 0.1
  > end
  > batch 2 1 must
  > user-depart 7
  > end
  > EOF
  $ geacc serve --trace reject.trace --state rej 2>/dev/null
  start seq 0 journal 0 digest a641af1052e0113c
  ok 1 from 0 pairs 1 maxsum 0.9
  error 2 invalid batch 2: user id 7 out of range [0, 1)
  done seq 1 applied 1 degraded 0 shed 0 errors 1 digest c0d37afc545ac249
  [1]
  $ geacc serve --trace reject.trace --state rej 2>/dev/null
  start seq 1 journal 2 digest c0d37afc545ac249
  done seq 1 applied 0 degraded 0 shed 0 errors 0 digest c0d37afc545ac249
  $ geacc serve --trace reject.trace --state rej 2>/dev/null
  start seq 1 journal 2 digest c0d37afc545ac249
  done seq 1 applied 0 degraded 0 shed 0 errors 0 digest c0d37afc545ac249

Admission control: with one queue slot, the should-tier batch in the shared
group wins it and the optional stats probe is shed. Shedding is a visible
degradation — exit 3.

  $ geacc serve --trace tiny.trace --state shed --queue-cap 1 2>/dev/null
  start seq 0 journal 0 digest a641af1052e0113c
  ok 1 from 0 pairs 2 maxsum 1.7
  ok 2 from 0 pairs 3 maxsum 2.2
  stats 2 health ok users 3/3 events 2/2 conflicts 1 pairs 3 maxsum 2.2
  ok 3 from 0 pairs 4 maxsum 2.4
  shed 4 optional
  ok 5 from 0 pairs 2 maxsum 1.3
  stats 5 health ok users 3/4 events 1/2 conflicts 1 pairs 2 maxsum 1.3
  done seq 5 applied 4 degraded 0 shed 1 errors 0 digest 92ddd963c40aa879
  [3]

Deadline pressure: forcing both repair stages' budgets to expire on their
first poll degrades every batch with users to serve (exit 3). The state
still applies and journals — only the arrangement lags.

  $ GEACC_FAULTS='timeout.repair@1,timeout.repair-full@1' geacc serve --trace tiny.trace --state slow 2>/dev/null
  start seq 0 journal 0 digest a641af1052e0113c
  degraded 1 served 0/2 reason stage repair-full timed out
  degraded 2 served 0/3 reason stage repair-full timed out
  stats 2 health degraded users 3/3 events 2/2 conflicts 1 pairs 0 maxsum 0
  degraded 3 served 0/4 reason stage repair-full timed out
  shed 4 optional
  degraded 5 served 0/4 reason stage repair-full timed out
  stats 5 health degraded users 3/4 events 1/2 conflicts 1 pairs 0 maxsum 0
  done seq 5 applied 4 degraded 4 shed 1 errors 0 digest 81d830b6758c95f4
  [3]

The workload generator emits Meetup-shaped traces (TABLE II city
populations) that parse back and serve cleanly.

  $ geacc generate-trace --out auckland.trace --seed 7
  wrote auckland.trace: 67 batches over 37 events, 569 users
  $ head -3 auckland.trace | cut -c1-40
  geacc-trace 1
  sim euclidean 20 1
  batch 1 0 must
  $ geacc serve --trace auckland.trace --state auck --no-fsync >/dev/null 2>auck.err
  $ cut -d' ' -f1-2 auck.err
  serve: batches=67

The instrumented fault points are discoverable.

  $ geacc faults
  io.truncate      drop the second half of a file's bytes after reading
  io.corrupt       flip the first digit of a file's bytes after reading
  io.short_write   journal append writes a torn record, then crashes
  journal.corrupt  flip one payload byte of a journal record on read
  serve.crash      kill the serving loop at the N-th durability checkpoint
  sim.nan          poison a similarity read with NaN
  sim.huge         poison a similarity read with 1e300
  mcf.alloc        fail the flow-network build (canonical transient fault)
  timeout.<stage>  not fired; @N arms the stage's budget to expire on poll N

A malformed fault plan is refused up front.

  $ GEACC_FAULTS='serve.crash@@2' geacc serve --trace tiny.trace --state bad
  geacc: malformed GEACC_FAULTS: bad fault count "@2" in "serve.crash@@2" (want point@N or point@N+, N >= 1)
  [1]

So is an unknown repair mode.

  $ geacc serve --trace tiny.trace --state bad --repair sideways
  geacc: unknown --repair mode "sideways" (incremental, full or offline)
  [1]
