(* Audit layer: every checker fires on a deliberately corrupted structure
   with the exact violation named, stays quiet on healthy structures, and is
   a no-op when auditing is disabled. *)

open Geacc_core
module Audit = Geacc_check.Audit
module Graph = Geacc_flow.Graph
module Binary_heap = Geacc_pqueue.Binary_heap
module Pairing_heap = Geacc_pqueue.Pairing_heap
module Float_int_heap = Geacc_pqueue.Float_int_heap
module Synthetic = Geacc_datagen.Synthetic

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec at i =
    i + ln <= lh && (String.equal (String.sub haystack i ln) needle || at (i + 1))
  in
  at 0

(* Runs the thunk expecting [Audit.Violation]; checks the detail mentions
   the invariant by substring so messages stay precise. *)
let expect_violation name ~detail_part f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Audit.Violation, got a result")
  | exception Audit.Violation { detail; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: detail %S mentions %S" name detail detail_part)
        true
        (contains detail detail_part)

(* -- gating -- *)

let test_gate_toggling () =
  let initial = Audit.enabled () in
  Audit.with_enabled true (fun () ->
      Alcotest.(check bool) "forced on" true (Audit.enabled ());
      Audit.with_enabled false (fun () ->
          Alcotest.(check bool) "nested off" false (Audit.enabled ()));
      Alcotest.(check bool) "restored inner" true (Audit.enabled ()));
  Alcotest.(check bool) "restored" initial (Audit.enabled ());
  (match
     Audit.with_enabled true (fun () -> raise Exit)
   with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check bool) "restored after exception" initial (Audit.enabled ())

(* -- flow network -- *)

(* 0 -> 1 -> 2 -> 3, unit costs, capacity 2 each. *)
let path_graph () =
  let g = Graph.create ~num_nodes:4 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:2 ~cost:1. in
  let a12 = Graph.add_arc g ~src:1 ~dst:2 ~capacity:2 ~cost:1. in
  let a23 = Graph.add_arc g ~src:2 ~dst:3 ~capacity:2 ~cost:1. in
  (g, a01, a12, a23)

let test_flow_conservation () =
  let g, a01, a12, a23 = path_graph () in
  (* Healthy: a full source->sink augmentation conserves flow. *)
  List.iter (fun a -> Graph.push g a 1) [ a01; a12; a23 ];
  Audit.Flow.check_conservation ~site:"test" g ~source:0 ~sink:3;
  (* Corrupt: one extra unit on the middle arc strands excess at node 2. *)
  Graph.push g a12 1;
  expect_violation "conservation" ~detail_part:"violates conservation"
    (fun () -> Audit.Flow.check_conservation ~site:"test" g ~source:0 ~sink:3)

let test_flow_capacity_negative () =
  let g, a01, _, _ = path_graph () in
  Audit.Flow.check_capacity ~site:"test" g;
  Graph.unsafe_set_residual_capacity g a01 (-1);
  expect_violation "negative residual" ~detail_part:"negative residual"
    (fun () -> Audit.Flow.check_capacity ~site:"test" g)

let test_flow_capacity_leak () =
  let g, a01, _, _ = path_graph () in
  (* Residual grows without the partner shrinking: the pair leaks units. *)
  Graph.unsafe_set_residual_capacity g a01 5;
  expect_violation "capacity leak" ~detail_part:"leaks capacity" (fun () ->
      Audit.Flow.check_capacity ~site:"test" g)

let test_flow_reduced_costs () =
  let g, _, _, _ = path_graph () in
  (* Zero potentials on non-negative costs: healthy. *)
  Audit.Flow.check_reduced_costs ~site:"test" g ~potential:(Array.make 4 0.);
  (* A potential spike makes arc 0->1 look like cost 1 + 0 - 5 < 0. *)
  expect_violation "reduced cost" ~detail_part:"negative reduced cost"
    (fun () ->
      Audit.Flow.check_reduced_costs ~site:"test" g
        ~potential:[| 0.; 5.; 0.; 0. |])

(* -- heaps --

   Corruption trick: the heaps order by a caller-supplied comparison, so a
   comparison that reads a mutable flag can be flipped after the structure
   is built, invalidating the heap property without touching internals. *)

let test_binary_heap_invariant () =
  let flip = ref false in
  let cmp a b = if !flip then Int.compare b a else Int.compare a b in
  let h = Binary_heap.create ~cmp () in
  List.iter (Binary_heap.push h) [ 5; 1; 4; 2; 3 ];
  Audit.Heap.check_binary ~site:"test" h;
  flip := true;
  expect_violation "binary heap" ~detail_part:"binary heap order" (fun () ->
      Audit.Heap.check_binary ~site:"test" h)

let test_pairing_heap_invariant () =
  let flip = ref false in
  let cmp a b = if !flip then Int.compare b a else Int.compare a b in
  let h = Pairing_heap.of_list ~cmp [ 5; 1; 4; 2; 3 ] in
  Audit.Heap.check_pairing ~site:"test" h;
  flip := true;
  expect_violation "pairing heap" ~detail_part:"pairing heap" (fun () ->
      Audit.Heap.check_pairing ~site:"test" h)

let test_float_int_heap_invariant () =
  let h = Float_int_heap.create () in
  List.iteri (fun i k -> Float_int_heap.push h k i) [ 0.5; 0.1; 0.9; 0.3 ];
  Audit.Heap.check_float_int ~site:"test" h;
  Alcotest.(check bool) "float-int heap healthy" true
    (Float_int_heap.check_invariant h)

(* -- matchings -- *)

let two_event_instance () =
  let sim = Similarity.euclidean ~dim:1 ~range:1. in
  let events =
    [|
      Entity.make ~id:0 ~attrs:[| 0.2 |] ~capacity:1;
      Entity.make ~id:1 ~attrs:[| 0.8 |] ~capacity:1;
    |]
  in
  let users =
    [|
      Entity.make ~id:0 ~attrs:[| 0.4 |] ~capacity:2;
      Entity.make ~id:1 ~attrs:[| 0.6 |] ~capacity:1;
    |]
  in
  let conflicts = Conflict.of_pairs ~n_events:2 [ (0, 1) ] in
  Instance.create ~sim ~events ~users ~conflicts ()

let test_matching_conflict_detected () =
  let t = two_event_instance () in
  let m = Matching.create t in
  (* Both events to user 0 despite the conflict: only unsafe_add allows it. *)
  Matching.unsafe_add m ~v:0 ~u:0;
  Matching.unsafe_add m ~v:1 ~u:0;
  Audit.with_enabled true (fun () ->
      expect_violation "conflicting assignment" ~detail_part:"conflicting"
        (fun () -> Validate.audit_matching ~site:"test" m))

let test_matching_over_capacity_detected () =
  let t = two_event_instance () in
  let m = Matching.create t in
  (* Event 0 has capacity 1; give it both users. *)
  Matching.unsafe_add m ~v:0 ~u:0;
  Matching.unsafe_add m ~v:0 ~u:1;
  Audit.with_enabled true (fun () ->
      expect_violation "event over capacity" ~detail_part:"over capacity"
        (fun () -> Validate.audit_matching ~site:"test" m))

let test_maxsum_drift_violation () =
  let t = two_event_instance () in
  let m = Matching.create t in
  let (_ : float) = Matching.add_exn m ~v:0 ~u:0 in
  Alcotest.(check bool) "healthy matching has no violations" true
    (Validate.check_matching m = []);
  Matching.unsafe_nudge_maxsum m 0.25;
  (* check_matching reports drift as a violation value, not an exception. *)
  (match Validate.check_matching m with
  | [ Validate.Maxsum_drift { incremental; recomputed } ] ->
      Alcotest.(check (float 1e-9)) "drift delta" 0.25
        (incremental -. recomputed)
  | vs ->
      Alcotest.failf "expected exactly Maxsum_drift, got %d violations"
        (List.length vs));
  Audit.with_enabled true (fun () ->
      expect_violation "drift under audit" ~detail_part:"MaxSum drift"
        (fun () -> Validate.audit_matching ~site:"test" m))

let test_audit_disabled_is_noop () =
  let t = two_event_instance () in
  let m = Matching.create t in
  Matching.unsafe_add m ~v:0 ~u:0;
  Matching.unsafe_add m ~v:1 ~u:0;
  Audit.with_enabled false (fun () ->
      Validate.audit_matching ~site:"test" m;
      Alcotest.(check pass) "no exception when disabled" () ())

(* -- healthy end-to-end runs with auditing on -- *)

let test_healthy_solvers_pass_audit () =
  let cfg =
    {
      Synthetic.default with
      Synthetic.n_events = 5;
      n_users = 10;
      dim = 2;
      event_capacity = Synthetic.Cap_uniform 3;
      user_capacity = Synthetic.Cap_uniform 2;
      conflict_ratio = 0.3;
    }
  in
  Audit.with_enabled true (fun () ->
      for seed = 1 to 5 do
        let t = Synthetic.generate ~seed cfg in
        let greedy = Greedy.solve t in
        let mcf = Mincostflow.solve t in
        let exact, _ = Exact.solve t in
        List.iter
          (fun m ->
            Alcotest.(check bool) "feasible under audit" true
              (Validate.check_matching m = []))
          [ greedy; mcf; exact ]
      done)

let suite =
  [
    Alcotest.test_case "gate toggling" `Quick test_gate_toggling;
    Alcotest.test_case "flow conservation violation" `Quick
      test_flow_conservation;
    Alcotest.test_case "flow negative residual" `Quick
      test_flow_capacity_negative;
    Alcotest.test_case "flow capacity leak" `Quick test_flow_capacity_leak;
    Alcotest.test_case "flow reduced costs" `Quick test_flow_reduced_costs;
    Alcotest.test_case "binary heap invariant" `Quick
      test_binary_heap_invariant;
    Alcotest.test_case "pairing heap invariant" `Quick
      test_pairing_heap_invariant;
    Alcotest.test_case "float-int heap invariant" `Quick
      test_float_int_heap_invariant;
    Alcotest.test_case "matching conflict detected" `Quick
      test_matching_conflict_detected;
    Alcotest.test_case "matching over capacity detected" `Quick
      test_matching_over_capacity_detected;
    Alcotest.test_case "maxsum drift violation" `Quick
      test_maxsum_drift_violation;
    Alcotest.test_case "audit disabled is a no-op" `Quick
      test_audit_disabled_is_noop;
    Alcotest.test_case "healthy solvers pass audit" `Quick
      test_healthy_solvers_pass_audit;
  ]
