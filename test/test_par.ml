(* The domain pool's determinism contract, tested two ways:

   - pool unit tests: chunk coverage, empty ranges, exception choice
     (lowest failing chunk wins), nested-region resolution, reuse after
     completion, failure and shutdown;
   - end-to-end determinism: the MCF network (arc ids, costs), the kd-tree
     (structure, traversal effort, query answers) and the full solvers must
     be byte-identical for jobs ∈ {1, 2, 4}.

   Float equality is checked on the IEEE bit pattern — "byte-identical"
   means exactly that, not approximate agreement. *)

open Geacc_core
module Pool = Geacc_par.Pool
module Graph = Geacc_flow.Graph
module Kd_tree = Geacc_index.Kd_tree
module Synthetic = Geacc_datagen.Synthetic
module Rng = Geacc_util.Rng

let jobs_under_test = [ 1; 2; 4 ]

(* ---------- pool unit tests ---------- *)

let test_empty_range () =
  let hits = ref 0 in
  Pool.parallel_for ~jobs:4 ~n:0 (fun _ -> incr hits);
  Alcotest.(check int) "no iterations for n=0" 0 !hits;
  Alcotest.(check int) "map_chunked n=0 is empty" 0
    (Array.length
       (Pool.parallel_map_chunked ~jobs:4 ~n:0 (fun ~lo:_ ~hi:_ -> ())));
  Alcotest.(check int) "reduce n=0 returns init" 42
    (Pool.parallel_reduce ~jobs:4 ~n:0 ~init:42
       ~fold:(fun acc _ -> acc + 1)
       ~combine:( + ) ())

let test_for_covers_each_index () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          (* Chunks are disjoint index ranges, so the writes race-free
             prove every index ran exactly once. *)
          let hits = Array.make (Stdlib.max n 1) 0 in
          Pool.parallel_for ~jobs ~n (fun i -> hits.(i) <- hits.(i) + 1);
          for i = 0 to n - 1 do
            if hits.(i) <> 1 then
              Alcotest.failf "jobs=%d n=%d: index %d ran %d times" jobs n i
                hits.(i)
          done)
        [ 1; 2; 3; 5; 64; 1000 ])
    jobs_under_test

let test_exception_lowest_chunk_wins () =
  (* Failures fire in two different chunks at every tested job count; the
     exception of the lowest-indexed failing chunk must surface, regardless
     of real-time completion order. *)
  List.iter
    (fun jobs ->
      match
        Pool.parallel_for ~jobs ~n:100 (fun i ->
            if i = 10 || i = 60 then failwith (string_of_int i))
      with
      | () -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check string) (Printf.sprintf "jobs=%d" jobs) "10" msg)
    jobs_under_test

let test_nested_explicit_rejected () =
  Alcotest.check_raises "explicit ~jobs > 1 inside a chunk body"
    (Invalid_argument
       "Pool: nested parallel region (explicit ~jobs > 1 inside a chunk \
        body)")
    (fun () ->
      Pool.parallel_for ~jobs:2 ~n:2 (fun _ ->
          Pool.parallel_for ~jobs:2 ~n:2 (fun _ -> ())))

let test_nested_ambient_degrades () =
  let inner = Atomic.make 0 in
  Pool.with_jobs 4 (fun () ->
      Pool.parallel_for ~n:4 (fun _ ->
          if not (Pool.in_region ()) then
            Alcotest.fail "in_region should hold inside a chunk body";
          (* Ambient nested call: resolves to 1 worker, runs inline. *)
          Pool.parallel_for ~n:8 (fun _ -> Atomic.incr inner)));
  Alcotest.(check bool) "not in_region outside" false (Pool.in_region ());
  Alcotest.(check int) "ambient nested ran all iterations" 32
    (Atomic.get inner)

let test_reuse_after_failure_and_shutdown () =
  (try Pool.parallel_for ~jobs:4 ~n:16 (fun _ -> failwith "boom")
   with Failure _ -> ());
  let hits = Array.make 64 0 in
  Pool.parallel_for ~jobs:4 ~n:64 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check int) "region after a failed region runs fully" 64
    (Array.fold_left ( + ) 0 hits);
  Pool.shutdown ();
  let after = Array.make 64 0 in
  Pool.parallel_for ~jobs:4 ~n:64 (fun i -> after.(i) <- after.(i) + 1);
  Alcotest.(check int) "region after shutdown respawns workers" 64
    (Array.fold_left ( + ) 0 after)

let test_with_jobs_scoping () =
  let before = Pool.default_jobs () in
  Alcotest.(check int) "with_jobs applies inside" 3
    (Pool.with_jobs 3 Pool.default_jobs);
  Alcotest.(check int) "with_jobs restores" before (Pool.default_jobs ());
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Pool: jobs must be >= 1") (fun () ->
      Pool.parallel_for ~jobs:0 ~n:1 (fun _ -> ()))

let test_map_chunked_tiles_range () =
  List.iter
    (fun jobs ->
      let chunks =
        Pool.parallel_map_chunked ~jobs ~n:97 (fun ~lo ~hi -> (lo, hi))
      in
      let next = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: chunks contiguous" jobs)
            !next lo;
          if hi < lo then Alcotest.fail "chunk with hi < lo";
          next := hi)
        chunks;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d: chunks cover [0,n)" jobs)
        97 !next)
    jobs_under_test

let test_reduce_bitwise_identical () =
  let fold acc i = acc +. (sin (float_of_int i) *. 1000.) in
  let sum jobs =
    Pool.parallel_reduce ~jobs ~n:100_000 ~init:0. ~fold ~combine:( +. ) ()
  in
  let reference = Int64.bits_of_float (sum 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check int64)
        (Printf.sprintf "float sum bits, jobs=%d" jobs)
        reference
        (Int64.bits_of_float (sum jobs)))
    jobs_under_test

(* ---------- the seeded counter-example: shared captures diverge -------- *)

(* A deliberately planted shared-capture bug, kept test-only: the chunk
   body below mutates a captured accumulator — exactly the shape
   geacc_effects' [par-shared-write] rule rejects (the [ref_direct]
   fixture in test/lint/effects.t flags this statically). The pool makes
   no ordering promise for such writes, and this test proves the analyzer
   is guarding something real: the order the chunks append in diverges
   between jobs=1 and jobs=4. The @effects alias scans lib/, bin/ and
   bench/, so production code cannot ship this shape; the mutex keeps the
   demonstration a pure ordering nondeterminism rather than a torn
   write. *)
let test_shared_capture_diverges () =
  let order jobs =
    let acc = ref [] in
    let m = Mutex.create () in
    Pool.parallel_for ~jobs ~n:4 (fun i ->
        (* Delay chunk 0 so concurrent runs all but surely finish another
           chunk first; under jobs=1 the delay cannot reorder anything. *)
        if i = 0 then Unix.sleepf 0.02;
        Mutex.lock m;
        acc := i :: !acc;
        Mutex.unlock m);
    List.rev !acc
  in
  Alcotest.(check (list int))
    "jobs=1 appends in the sequential order" [ 0; 1; 2; 3 ] (order 1);
  let rec attempt k =
    if order 4 <> [ 0; 1; 2; 3 ] then ()
    else if k = 0 then
      Alcotest.fail
        "jobs=4 never diverged from the sequential order in 20 runs"
    else attempt (k - 1)
  in
  attempt 20

(* ---------- MCF network determinism ---------- *)

let arc_dump g =
  let b = Buffer.create 4096 in
  Graph.fold_forward_arcs g ~init:() ~f:(fun () a ->
      Buffer.add_string b
        (Printf.sprintf "%d>%d c%d w%h;" (Graph.src g a) (Graph.dst g a)
           (Graph.initial_capacity g a)
           (Graph.cost g a)));
  Buffer.contents b

let test_mcf_network_identical () =
  let instance =
    Synthetic.generate ~seed:7
      { Synthetic.default with Synthetic.n_events = 12; n_users = 90 }
  in
  List.iter
    (fun network ->
      let label fmt =
        Printf.ksprintf
          (fun s ->
            Printf.sprintf "%s %s" (Mincostflow.network_name network) s)
          fmt
      in
      let n1 = Mincostflow.build_network ~jobs:1 ~network instance in
      let reference = arc_dump n1.Mincostflow.graph in
      List.iter
        (fun jobs ->
          let n = Mincostflow.build_network ~jobs ~network instance in
          Alcotest.(check string)
            (label "arc dump, jobs=%d" jobs)
            reference
            (arc_dump n.Mincostflow.graph);
          Alcotest.(check int)
            (label "pair arcs, jobs=%d" jobs)
            n1.Mincostflow.pair_arcs n.Mincostflow.pair_arcs)
        jobs_under_test)
    [ Mincostflow.Dense; Mincostflow.Sparse ]

(* ---------- kd-tree determinism ---------- *)

let test_kd_tree_identical () =
  let rng = Rng.create ~seed:11 in
  (* Large enough that the parallel path actually forks (> 2 x 512). *)
  let points =
    Array.init 5_000 (fun _ -> Array.init 4 (fun _ -> Rng.float rng 100.))
  in
  let query = Array.init 4 (fun k -> 25. *. float_of_int k) in
  let full_traversal_work t =
    let c = Kd_tree.cursor t query ~max_dist:30. () in
    let rec go () = match Kd_tree.next c with Some _ -> go () | None -> () in
    go ();
    Kd_tree.work c
  in
  let reference = Kd_tree.build ~jobs:1 points in
  let ref_dump = Kd_tree.dump reference in
  let ref_nn = Kd_tree.nearest reference query ~k:25 in
  let ref_work = full_traversal_work reference in
  List.iter
    (fun jobs ->
      let t = Kd_tree.build ~jobs points in
      Alcotest.(check string)
        (Printf.sprintf "structural dump, jobs=%d" jobs)
        ref_dump (Kd_tree.dump t);
      Alcotest.(check (array (pair int (float 0.))))
        (Printf.sprintf "25-NN answers, jobs=%d" jobs)
        ref_nn (Kd_tree.nearest t query ~k:25);
      Alcotest.(check int)
        (Printf.sprintf "traversal work, jobs=%d" jobs)
        ref_work (full_traversal_work t))
    jobs_under_test

(* ---------- full-solver determinism ---------- *)

let test_solvers_identical_across_jobs () =
  let algorithms = [ Solver.Greedy; Solver.Min_cost_flow ] in
  for seed = 1 to 8 do
    let cfg =
      {
        Synthetic.default with
        Synthetic.n_events = 8 + seed;
        n_users = 60 + (7 * seed);
        dim = 4;
        conflict_ratio = 0.3;
      }
    in
    (* The instance is generated inside with_jobs so index construction
       follows the same knob as the solve. *)
    let run jobs algorithm =
      Pool.with_jobs jobs (fun () ->
          let instance = Synthetic.generate ~seed cfg in
          let m =
            Solver.run ~rng:(Rng.create ~seed:(seed + 1000)) algorithm
              instance
          in
          (Matching.pairs m, Int64.bits_of_float (Matching.maxsum m)))
    in
    List.iter
      (fun algorithm ->
        let ref_pairs, ref_bits = run 1 algorithm in
        List.iter
          (fun jobs ->
            let pairs, bits = run jobs algorithm in
            Alcotest.(check (list (pair int int)))
              (Printf.sprintf "%s seed=%d jobs=%d: pairs"
                 (Solver.short_name algorithm) seed jobs)
              ref_pairs pairs;
            Alcotest.(check int64)
              (Printf.sprintf "%s seed=%d jobs=%d: maxsum bits"
                 (Solver.short_name algorithm) seed jobs)
              ref_bits bits)
          jobs_under_test)
      algorithms
  done

let suite =
  [
    Alcotest.test_case "empty ranges" `Quick test_empty_range;
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_for_covers_each_index;
    Alcotest.test_case "lowest failing chunk's exception wins" `Quick
      test_exception_lowest_chunk_wins;
    Alcotest.test_case "explicit nested region rejected" `Quick
      test_nested_explicit_rejected;
    Alcotest.test_case "ambient nested call degrades to sequential" `Quick
      test_nested_ambient_degrades;
    Alcotest.test_case "pool reuse after failure and shutdown" `Quick
      test_reuse_after_failure_and_shutdown;
    Alcotest.test_case "with_jobs scoping and validation" `Quick
      test_with_jobs_scoping;
    Alcotest.test_case "map_chunked tiles the range in order" `Quick
      test_map_chunked_tiles_range;
    Alcotest.test_case "parallel_reduce is bitwise jobs-independent" `Quick
      test_reduce_bitwise_identical;
    Alcotest.test_case "shared captures diverge across jobs" `Quick
      test_shared_capture_diverges;
    Alcotest.test_case "MCF network identical across jobs" `Quick
      test_mcf_network_identical;
    Alcotest.test_case "kd-tree identical across jobs" `Quick
      test_kd_tree_identical;
    Alcotest.test_case "solver arrangements identical across jobs" `Quick
      test_solvers_identical_across_jobs;
  ]
