geacc_bounds over .cmt fixtures compiled directly with ocamlc -bin-annot.
The stage-4 pass re-proves every array index site by abstract
interpretation; unsafe_* sites must additionally carry a reasoned
`bounds: proved — <invariant>` licence the analyzer can re-verify.
Scope mirrors the repo: lib/ bin/ bench/ are analyzed, lib/check/ and
lib/unsafe/ are trusted.

-- clean kernels: proved sites under reasoned licences ------------------

A for-loop bound proves `i < |a|`; an equal-length assert transports the
bound to a second array; one licence on the line above covers every
unsafe site on the next line:

  $ mkdir -p proj/lib/flow
  $ cat > proj/lib/flow/kernel.ml <<'EOF'
  > external unsafe_get : 'a array -> int -> 'a = "%array_unsafe_get"
  > external unsafe_set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
  > 
  > let sum a =
  >   let acc = ref 0 in
  >   for i = 0 to Array.length a - 1 do
  >     (* bounds: proved — i < |a| (for-loop bound) *)
  >     acc := !acc + unsafe_get a i
  >   done;
  >   !acc
  > 
  > let fill a v =
  >   for i = 0 to Array.length a - 1 do
  >     (* bounds: proved — i < |a| (for-loop bound) *)
  >     unsafe_set a i v
  >   done
  > 
  > let dot a b =
  >   assert (Array.length b = Array.length a);
  >   let acc = ref 0. in
  >   for i = 0 to Array.length a - 1 do
  >     (* bounds: proved — i < |a| = |b| (asserted above) *)
  >     acc := !acc +. (unsafe_get a i *. unsafe_get b i)
  >   done;
  >   !acc
  > EOF
  $ ocamlc -bin-annot -c proj/lib/flow/kernel.ml
  $ geacc_bounds proj
  geacc_bounds: clean

GEACC_BOUNDS_SUMMARY=1 prints per-file proved/unknown counters (the
checked sites feed the same counters as the licensed unsafe ones):

  $ GEACC_BOUNDS_SUMMARY=1 geacc_bounds proj 2>&1
  geacc_bounds: clean
  proj/lib/flow/kernel.ml: 4 proved, 0 unknown

-- every finding form in one module -------------------------------------

Missing licence, bare licence (no invariant stated), stale licence the
analyzer cannot re-prove, two provably out-of-bounds checked accesses,
an unsafe_* definition without a contract licence, and a licence line no
site consumes:

  $ cat > proj/lib/flow/bad.ml <<'EOF'
  > external unsafe_get : 'a array -> int -> 'a = "%array_unsafe_get"
  > 
  > let first a = unsafe_get a 0
  > 
  > let second a =
  >   (* bounds: proved *)
  >   unsafe_get a 1
  > 
  > let stale a i =
  >   (* bounds: proved — i is always in range (it is not) *)
  >   unsafe_get a i
  > 
  > let off_end a = a.(Array.length a)
  > 
  > let negative a = a.(-1)
  > 
  > let unsafe_frob a i = a.(i)
  > 
  > (* bounds: proved — justifies nothing below *)
  > let unrelated x = x + 1
  > EOF
  $ ocamlc -bin-annot -c proj/lib/flow/bad.ml
  $ geacc_bounds proj
  proj/lib/flow/bad.ml:3:14: [bounds-unlicensed] unsafe array access without a `bounds: proved — <reason>` licence
  proj/lib/flow/bad.ml:7:2: [bounds-unlicensed] unsafe array access under a bare licence (no invariant stated)
  proj/lib/flow/bad.ml:11:2: [bounds-unproved] stale licence: the analyzer cannot re-prove this unsafe access
  proj/lib/flow/bad.ml:13:16: [bounds-out-of-bounds] index is provably outside the array
  proj/lib/flow/bad.ml:15:17: [bounds-out-of-bounds] index is provably outside the array
  proj/lib/flow/bad.ml:17:4: [bounds-unsafe-def] definition of unsafe_frob needs a `bounds: proved — <contract>` licence stating what callers owe
  proj/lib/flow/bad.ml:19:0: [bounds-orphan-licence] licence justifies no unsafe site (stale or misplaced)
  [1]

The same report as machine-readable JSON:

  $ geacc_bounds --format json proj
  [
    {"file": "proj/lib/flow/bad.ml", "line": 3, "col": 14, "rule": "bounds-unlicensed", "message": "unsafe array access without a `bounds: proved — <reason>` licence"},
    {"file": "proj/lib/flow/bad.ml", "line": 7, "col": 2, "rule": "bounds-unlicensed", "message": "unsafe array access under a bare licence (no invariant stated)"},
    {"file": "proj/lib/flow/bad.ml", "line": 11, "col": 2, "rule": "bounds-unproved", "message": "stale licence: the analyzer cannot re-prove this unsafe access"},
    {"file": "proj/lib/flow/bad.ml", "line": 13, "col": 16, "rule": "bounds-out-of-bounds", "message": "index is provably outside the array"},
    {"file": "proj/lib/flow/bad.ml", "line": 15, "col": 17, "rule": "bounds-out-of-bounds", "message": "index is provably outside the array"},
    {"file": "proj/lib/flow/bad.ml", "line": 17, "col": 4, "rule": "bounds-unsafe-def", "message": "definition of unsafe_frob needs a `bounds: proved — <contract>` licence stating what callers owe"},
    {"file": "proj/lib/flow/bad.ml", "line": 19, "col": 0, "rule": "bounds-orphan-licence", "message": "licence justifies no unsafe site (stale or misplaced)"}
  ]
  [1]

-- scope: trusted and out-of-scope trees are skipped --------------------

lib/unsafe/ is where checked/unchecked access is profile-switched — it
is trusted, not analyzed. Paths outside lib/ bin/ bench/ (tools,
tests) are out of scope entirely:

  $ mkdir -p scope/lib/unsafe scope/lib/flow scope/tools
  $ cat > scope/lib/unsafe/geacc_unsafe.ml <<'EOF'
  > external unsafe_get : 'a array -> int -> 'a = "%array_unsafe_get"
  > let grab a = unsafe_get a 42
  > EOF
  $ cp scope/lib/unsafe/geacc_unsafe.ml scope/tools/helper.ml
  $ ocamlc -bin-annot -c scope/lib/unsafe/geacc_unsafe.ml
  $ ocamlc -bin-annot -c scope/tools/helper.ml
  $ geacc_bounds scope
  geacc_bounds: clean

-- safe-profile fallback ------------------------------------------------

Under `--profile safe` the Geacc_unsafe externals compile to the checked
primitives (unsafe_checked.ml maps the same names to %array_safe_get /
%array_safe_set). Licence discipline keys off the unsafe_* *name*, not
the primitive, so the same licences are consumed and re-proved in both
profiles — a proved one stays clean, a stale one still fails:

  $ mkdir -p safep/lib/flow
  $ cat > safep/lib/flow/kernel.ml <<'EOF'
  > external unsafe_get : 'a array -> int -> 'a = "%array_safe_get"
  > 
  > let sum a =
  >   let acc = ref 0 in
  >   for i = 0 to Array.length a - 1 do
  >     (* bounds: proved — i < |a| (for-loop bound) *)
  >     acc := !acc + unsafe_get a i
  >   done;
  >   !acc
  > 
  > let stale a i =
  >   (* bounds: proved — i is always in range (it is not) *)
  >   unsafe_get a i
  > EOF
  $ ocamlc -bin-annot -c safep/lib/flow/kernel.ml
  $ geacc_bounds safep
  safep/lib/flow/kernel.ml:13:2: [bounds-unproved] stale licence: the analyzer cannot re-prove this unsafe access
  [1]

-- CLI -----------------------------------------------------------------

  $ geacc_bounds --list-rules
  bounds-unlicensed
  bounds-unproved
  bounds-out-of-bounds
  bounds-unsafe-def
  bounds-orphan-licence
  cmt-error
  $ geacc_bounds
  usage: geacc_bounds [--format text|json] [--list-rules] DIR...
  [2]
