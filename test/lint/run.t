geacc_lint over a fixture tree seeded with one violation per rule. The tree
is created here at runtime so the real repository stays lint-clean.

A hot-path library module with expression-level violations, no interface,
a dune stanza declaring a dependency it never uses, and a reference to a
library it never declares:

  $ mkdir -p proj/lib/flow
  $ cat > proj/lib/flow/dune <<'EOF'
  > (library
  >  (name demo_flow)
  >  (libraries unix))
  > EOF
  $ cat > proj/lib/flow/bad.ml <<'EOF'
  > let cast (x : int) : float = Obj.magic x
  > let same a b = a = Some b
  > let order : int -> int -> int = compare
  > let boom () = failwith "boom"
  > let nope () = assert false
  > let reported = Alcotest.test_case
  > EOF

A tagged partial raise is suppressed:

  $ cat >> proj/lib/flow/bad.ml <<'EOF'
  > let fatal () = failwith "tagged" (* lint: ok *)
  > EOF

A module with a matching interface is not flagged by missing-mli:

  $ cat > proj/lib/flow/good.ml <<'EOF'
  > let id x = x
  > EOF
  $ cat > proj/lib/flow/good.mli <<'EOF'
  > val id : 'a -> 'a
  > EOF

A file the compiler's parser rejects still produces a span, not a crash:

  $ cat > proj/lib/flow/broken.ml <<'EOF'
  > let oops =
  > EOF

Run the linter; every finding carries a file:line:col span and a rule id:

  $ geacc_lint proj
  proj/lib/flow/bad.ml:1:0: [missing-mli] library module without an interface; add a matching .mli
  proj/lib/flow/bad.ml:1:29: [obj-magic] Obj.magic defeats the type system
  proj/lib/flow/bad.ml:2:17: [poly-compare] polymorphic (=) on a non-scalar operand in a hot path; use a monomorphic equality
  proj/lib/flow/bad.ml:3:32: [poly-compare] polymorphic compare in a hot path; use a monomorphic comparison (Int.compare, Float.compare, ...)
  proj/lib/flow/bad.ml:4:14: [partial-raise] failwith in library code; return a result or tag the line with (* lint: ok *)
  proj/lib/flow/bad.ml:5:14: [partial-raise] assert false in library code; make the case impossible or tag the line with (* lint: ok *)
  proj/lib/flow/broken.ml:1:0: [missing-mli] library module without an interface; add a matching .mli
  proj/lib/flow/broken.ml:2:0: [parse-error] the compiler's parser rejects this file
  proj/lib/flow/dune:1:0: [dune-undeclared-dep] module Alcotest is referenced but library alcotest is not declared in (libraries ...)
  proj/lib/flow/dune:3:0: [dune-unused-dep] library unix is declared but module Unix is never referenced by this stanza
  [1]

The suppression tag must sit on the offending line or the line directly
above it — two lines up is out of range, and the tag is exact ("lint: ok",
not any comment):

  $ mkdir -p span/lib/ok
  $ cat > span/lib/ok/dune <<'EOF'
  > (library
  >  (name demo_span))
  > EOF
  $ cat > span/lib/ok/span.ml <<'EOF'
  > (* lint: ok *)
  > let above_is_fine () = failwith "a"
  > (* lint: ok *)
  > (* too far away *)
  > let two_lines_up () = failwith "b"
  > (* some unrelated comment *)
  > let untagged () = failwith "c"
  > EOF
  $ cat > span/lib/ok/span.mli <<'EOF'
  > val above_is_fine : unit -> 'a
  > val two_lines_up : unit -> 'a
  > val untagged : unit -> 'a
  > EOF
  $ geacc_lint span
  span/lib/ok/span.ml:5:22: [partial-raise] failwith in library code; return a result or tag the line with (* lint: ok *)
  span/lib/ok/span.ml:7:18: [partial-raise] failwith in library code; return a result or tag the line with (* lint: ok *)
  [1]

--format json emits the same diagnostics as a machine-readable array:

  $ geacc_lint --format json span
  [
    {"file": "span/lib/ok/span.ml", "line": 5, "col": 22, "rule": "partial-raise", "message": "failwith in library code; return a result or tag the line with (* lint: ok *)"},
    {"file": "span/lib/ok/span.ml", "line": 7, "col": 18, "rule": "partial-raise", "message": "failwith in library code; return a result or tag the line with (* lint: ok *)"}
  ]
  [1]

A clean tree exits 0:

  $ mkdir -p clean/lib/ok
  $ cat > clean/lib/ok/dune <<'EOF'
  > (library
  >  (name demo_ok))
  > EOF
  $ cat > clean/lib/ok/tidy.ml <<'EOF'
  > let double x = 2 * x
  > EOF
  $ cat > clean/lib/ok/tidy.mli <<'EOF'
  > val double : int -> int
  > EOF
  $ geacc_lint clean
  geacc_lint: clean
