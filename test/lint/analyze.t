geacc_analyze over .cmt fixtures compiled directly with ocamlc -bin-annot.
The trees mimic the repo layout: the hot-loop rules fire only for files
under lib/flow, lib/pqueue, lib/index/kd_tree and lib/par; unsafe_*
reachability is checked for everything under lib/ and bin/ except
lib/check.

A hot module allocating per iteration: a ref cell and a callback closure in
a while body, a boxed float let-bound in a let rec body, and two small
un-annotated helpers called from the loops:

  $ mkdir -p proj/lib/flow
  $ cat > proj/lib/flow/bad.ml <<'EOF'
  > let scale x = 2.0 *. x
  > let consume f = f ()
  > let run xs =
  >   let i = ref 0 in
  >   while !i < Array.length xs do
  >     let seen = ref false in
  >     consume (fun () -> if not !seen then seen := true);
  >     incr i
  >   done;
  >   let rec go j acc =
  >     if j >= Array.length xs then acc
  >     else
  >       let d = scale xs.(j) in
  >       go (j + 1) (acc +. d)
  >   in
  >   go 0 0.
  > EOF
  $ ocamlc -bin-annot -c proj/lib/flow/bad.ml
  $ geacc_analyze proj
  proj/lib/flow/bad.ml:1:0: [missing-inline] Bad.scale (1 lines) is called from a hot loop at proj/lib/flow/bad.ml:13 but carries no [@inline]; add [@inline] (and [@unboxed] on any single-field wrapper it involves)
  proj/lib/flow/bad.ml:2:0: [missing-inline] Bad.consume (1 lines) is called from a hot loop at proj/lib/flow/bad.ml:7 but carries no [@inline]; add [@inline] (and [@unboxed] on any single-field wrapper it involves)
  proj/lib/flow/bad.ml:6:15: [hot-loop-alloc] a ref cell is allocated on every iteration of this hot loop; hoist the ref out of the loop
  proj/lib/flow/bad.ml:7:12: [hot-loop-alloc] a closure is allocated on every iteration of this hot loop; hoist it out of the loop or iterate without a callback
  proj/lib/flow/bad.ml:13:6: [hot-loop-alloc] the float returned by scale is boxed when let-bound in a hot loop; mark the callee [@inline], inline the computation, or tag (* alloc: ok *)
  [1]

The same allocations outside the hot-path modules are not flagged (the
module is under lib/, but not lib/flow, lib/pqueue or lib/index/kd_tree):

  $ mkdir -p proj/lib/model
  $ cp proj/lib/flow/bad.ml proj/lib/model/mild.ml
  $ ocamlc -bin-annot -c proj/lib/model/mild.ml
  $ geacc_analyze proj/lib/model
  geacc_analyze: clean

Cross-module unsafe_* reachability: library code reaching Matching's
unsafe mutator fails at the call site; the same call from lib/check (the
audit layer) is trusted:

  $ mkdir -p proj2/lib/core proj2/lib/flow proj2/lib/check
  $ cat > proj2/lib/core/matching.ml <<'EOF'
  > let slots = Array.make 4 0
  > let unsafe_add i = slots.(i) <- slots.(i) + 1
  > EOF
  $ cat > proj2/lib/flow/uses.ml <<'EOF'
  > let bump () = Matching.unsafe_add 0
  > EOF
  $ cat > proj2/lib/check/audit.ml <<'EOF'
  > let probe () = Matching.unsafe_add 1
  > EOF
  $ ocamlc -bin-annot -c proj2/lib/core/matching.ml
  $ ocamlc -bin-annot -c -I proj2/lib/core proj2/lib/flow/uses.ml
  $ ocamlc -bin-annot -c -I proj2/lib/core proj2/lib/check/audit.ml
  $ geacc_analyze proj2
  proj2/lib/flow/uses.ml:1:14: [unsafe-reachable] Matching.unsafe_add is reachable from Uses.bump, outside lib/check; only the audit layer may use unsafe APIs
  [1]

Removing the library-side caller leaves only the trusted audit use:

  $ rm proj2/lib/flow/uses.cmt
  $ geacc_analyze proj2
  geacc_analyze: clean

An (* alloc: ok *) tag on the offending line or the line above suppresses
the diagnostic:

  $ mkdir -p proj3/lib/pqueue
  $ cat > proj3/lib/pqueue/tagged.ml <<'EOF'
  > let run n =
  >   let acc = ref 0 in
  >   for i = 0 to n do
  >     (* per-iteration scratch, measured harmless — alloc: ok *)
  >     let cell = ref i in
  >     let cell2 = ref i in (* alloc: ok *)
  >     acc := !acc + !cell + !cell2
  >   done;
  >   !acc
  > EOF
  $ ocamlc -bin-annot -c proj3/lib/pqueue/tagged.ml
  $ geacc_analyze proj3
  geacc_analyze: clean

The two stages share the tag grammar but not the tag: "lint: ok" means
nothing to the allocation rules, so the diagnostic survives:

  $ mkdir -p proj4/lib/pqueue
  $ cat > proj4/lib/pqueue/wrong_tag.ml <<'EOF'
  > let run n =
  >   let acc = ref 0 in
  >   for i = 0 to n do
  >     let cell = ref i in (* lint: ok *)
  >     acc := !acc + !cell
  >   done;
  >   !acc
  > EOF
  $ ocamlc -bin-annot -c proj4/lib/pqueue/wrong_tag.ml
  $ geacc_analyze proj4
  proj4/lib/pqueue/wrong_tag.ml:4:15: [hot-loop-alloc] a ref cell is allocated on every iteration of this hot loop; hoist the ref out of the loop
  [1]

--format json emits the same diagnostics as a machine-readable array:

  $ geacc_analyze --format json proj4
  [
    {"file": "proj4/lib/pqueue/wrong_tag.ml", "line": 4, "col": 15, "rule": "hot-loop-alloc", "message": "a ref cell is allocated on every iteration of this hot loop; hoist the ref out of the loop"}
  ]
  [1]

A parallel_for chunk body runs once per chunk, so it is hot-loop context in
lib/par: a closure allocated inside the chunk body is flagged, while the
chunk-body lambda itself (allocated once per parallel_for call) is not.
The same chunk body under a non-hot directory stays unflagged:

  $ mkdir -p proj6/lib/par proj6/lib/model
  $ cat > proj6/lib/par/chunky.ml <<'EOF'
  > let parallel_for ~n body =
  >   for c = 0 to n - 1 do
  >     body c
  >   done
  > 
  > let sum_rows rows out =
  >   parallel_for ~n:(Array.length rows) (fun c ->
  >       let total = ref 0 in
  >       Array.iter (fun x -> total := !total + x) rows.(c);
  >       out.(c) <- !total)
  > EOF
  $ ocamlc -bin-annot -c proj6/lib/par/chunky.ml
  $ geacc_analyze proj6
  proj6/lib/par/chunky.ml:8:18: [hot-loop-alloc] a ref cell is allocated on every iteration of this hot loop; hoist the ref out of the loop
  proj6/lib/par/chunky.ml:9:17: [hot-loop-alloc] a closure is allocated on every iteration of this hot loop; hoist it out of the loop or iterate without a callback
  [1]
  $ cp proj6/lib/par/chunky.ml proj6/lib/model/cold.ml
  $ ocamlc -bin-annot -c proj6/lib/model/cold.ml
  $ geacc_analyze proj6/lib/model
  geacc_analyze: clean

A hot module whose loops keep all state in pre-allocated arrays and
hoisted refs is clean:

  $ mkdir -p proj5/lib/flow
  $ cat > proj5/lib/flow/tidy.ml <<'EOF'
  > let sum xs =
  >   let acc = ref 0.0 in
  >   for i = 0 to Array.length xs - 1 do
  >     acc := !acc +. xs.(i)
  >   done;
  >   !acc
  > EOF
  $ ocamlc -bin-annot -c proj5/lib/flow/tidy.ml
  $ geacc_analyze proj5
  geacc_analyze: clean

A CSR-style adjacency scan — a while loop driving a position cursor
through struct-of-arrays slices — is the hot shape of the flow kernels.
Reading the arrays and mutating hoisted state is clean; allocating
per-position scratch (a ref cell, a callback closure) inside the scan is
flagged like any other hot-loop allocation:

  $ mkdir -p proj7/lib/flow
  $ cat > proj7/lib/flow/csr_scan.ml <<'EOF'
  > let relax off dst cost dist u =
  >   let p = ref off.(u) in
  >   let stop = off.(u + 1) in
  >   while !p < stop do
  >     let v = dst.(!p) in
  >     if dist.(u) +. cost.(!p) < dist.(v) then
  >       dist.(v) <- dist.(u) +. cost.(!p);
  >     incr p
  >   done
  > EOF
  $ ocamlc -bin-annot -c proj7/lib/flow/csr_scan.ml
  $ geacc_analyze proj7
  geacc_analyze: clean

  $ cat > proj7/lib/flow/csr_bad.ml <<'EOF'
  > let consume f = f ()
  > let scan off dst u =
  >   let hits = ref 0 in
  >   let p = ref off.(u) in
  >   let stop = off.(u + 1) in
  >   while !p < stop do
  >     let seen = ref false in
  >     consume (fun () -> if dst.(!p) > u && not !seen then seen := true);
  >     if !seen then incr hits;
  >     incr p
  >   done;
  >   !hits
  > EOF
  $ ocamlc -bin-annot -c proj7/lib/flow/csr_bad.ml
  $ geacc_analyze proj7
  proj7/lib/flow/csr_bad.ml:1:0: [missing-inline] Csr_bad.consume (1 lines) is called from a hot loop at proj7/lib/flow/csr_bad.ml:8 but carries no [@inline]; add [@inline] (and [@unboxed] on any single-field wrapper it involves)
  proj7/lib/flow/csr_bad.ml:7:15: [hot-loop-alloc] a ref cell is allocated on every iteration of this hot loop; hoist the ref out of the loop
  proj7/lib/flow/csr_bad.ml:8:12: [hot-loop-alloc] a closure is allocated on every iteration of this hot loop; hoist it out of the loop or iterate without a callback
  [1]
