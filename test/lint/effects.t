geacc_effects over .cmt fixtures compiled directly with ocamlc -bin-annot.
The trees mimic the repo layout: the poll rule (P) fires only under
lib/core and lib/flow; the mirror rule (T) trusts lib/flow and lib/check;
the race rules (R) apply to any chunk body passed to a pool combinator,
anywhere.

Shared fixtures: a sequential stand-in Pool (the analyzer matches the
combinator *names*), a Budget with the repo's poll entry points, and a
Graph with protected arc-store/CSR-mirror fields:

  $ mkdir -p proj/lib/par proj/lib/robust proj/lib/flow
  $ cat > proj/lib/par/pool.ml <<'EOF'
  > let parallel_for ~n f = for i = 0 to n - 1 do f i done
  > let parallel_map_chunked ~n f = [| f ~lo:0 ~hi:n |]
  > let parallel_reduce ~n f g z = g z (f 0 (n - 1))
  > EOF
  $ cat > proj/lib/robust/budget.ml <<'EOF'
  > type t = { mutable expired : bool }
  > let unlimited = { expired = false }
  > let check t = t.expired
  > let check_now t = t.expired
  > EOF
  $ cat > proj/lib/flow/graph.ml <<'EOF'
  > type t = {
  >   mutable count : int;
  >   mutable csr_cost : float array;
  >   mutable csr_cap : int array;
  >   dst_ : int array;
  > }
  > let create n =
  >   { count = 0; csr_cost = Array.make n 0.;
  >     csr_cap = Array.make n 0; dst_ = Array.make n 0 }
  > let push g a c = g.csr_cap.(a) <- c; g.count <- g.count + 1
  > EOF
  $ ocamlc -bin-annot -c proj/lib/par/pool.ml
  $ ocamlc -bin-annot -c proj/lib/robust/budget.ml
  $ ocamlc -bin-annot -c proj/lib/flow/graph.ml
  $ geacc_effects proj
  geacc_effects: clean

-- (R) race/determinism ------------------------------------------------

Every violation form in one module, interleaved with the two sanctioned
patterns (chunk-local state; per-index stores into a captured array):

  $ mkdir -p proj/bench
  $ cat > proj/bench/races.ml <<'EOF'
  > let total = ref 0
  > let bump () = incr total
  > let log_step i = Printf.eprintf "step %d\n" i
  > type cell = { mutable value : int }
  > let shared_cell = { value = 0 }
  > let shared_tbl : (int, int) Hashtbl.t = Hashtbl.create 8
  > let buf = Bytes.make 8 ' '
  > 
  > let chunk_local_clean out =
  >   Pool.parallel_for ~n:4 (fun i ->
  >       let acc = ref 0 in
  >       for j = 0 to i do acc := !acc + j done;
  >       out.(i) <- !acc)
  > 
  > let ref_direct out =
  >   Pool.parallel_for ~n:4 (fun i -> incr total; out.(i) <- i)
  > 
  > let ref_transitive out =
  >   Pool.parallel_for ~n:4 (fun i -> bump (); out.(i) <- i)
  > 
  > let field_write out =
  >   Pool.parallel_for ~n:4 (fun i -> shared_cell.value <- i; out.(i) <- i)
  > 
  > let bytes_write out =
  >   Pool.parallel_for ~n:4 (fun i -> Bytes.set buf i 'x'; out.(i) <- i)
  > 
  > let tbl_write out =
  >   Pool.parallel_for ~n:4 (fun i -> Hashtbl.replace shared_tbl i i; out.(i) <- i)
  > 
  > let tbl_local_clean out =
  >   Pool.parallel_for ~n:4 (fun i ->
  >       let t = Hashtbl.create 4 in
  >       Hashtbl.replace t i i;
  >       out.(i) <- Hashtbl.length t)
  > 
  > let nondet_random out =
  >   Pool.parallel_for ~n:4 (fun i -> out.(i) <- Random.int 10)
  > 
  > let nondet_transitive out =
  >   Pool.parallel_for ~n:4 (fun i -> log_step i; out.(i) <- i)
  > 
  > let nondet_clock out =
  >   Pool.parallel_for ~n:4 (fun i -> out.(i) <- Sys.time ())
  > 
  > let nondet_tbl_iter out =
  >   Pool.parallel_for ~n:4 (fun i ->
  >       Hashtbl.iter (fun _ v -> out.(i) <- v) shared_tbl)
  > 
  > let phys_eq_boxed (xs : string array) out =
  >   Pool.parallel_for ~n:4 (fun i -> out.(i) <- (xs.(i) == xs.(0)))
  > 
  > let phys_eq_int_clean out =
  >   Pool.parallel_for ~n:4 (fun i -> out.(i) <- (i == 0))
  > EOF
  $ ocamlc -bin-annot -c -I proj/lib/par proj/bench/races.ml
  $ geacc_effects proj/bench
  proj/bench/races.ml:16:35: [par-shared-write] the chunk body passed to parallel_for writes the ref (total) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:19:35: [par-shared-write] the chunk body passed to parallel_for reaches Races.bump, which writes the ref total; shared writes make the parallel region racy
  proj/bench/races.ml:22:35: [par-shared-write] the chunk body passed to parallel_for writes the record field value (shared_cell) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:25:35: [par-shared-write] the chunk body passed to parallel_for writes the Bytes buffer (buf) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:28:35: [par-shared-write] the chunk body passed to parallel_for writes the hashtable (shared_tbl) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:37:46: [par-nondet] the chunk body passed to parallel_for uses the global Random state; chunk results must be a function of the chunk index alone
  proj/bench/races.ml:40:35: [par-nondet] the chunk body passed to parallel_for reaches Races.log_step, which writes to the process std channels; chunk results must be a function of the chunk index alone
  proj/bench/races.ml:43:46: [par-nondet] the chunk body passed to parallel_for reads a wall clock; chunk results must be a function of the chunk index alone
  proj/bench/races.ml:47:6: [par-nondet] the chunk body passed to parallel_for iterates a hashtable (unspecified order); chunk results must be a function of the chunk index alone
  proj/bench/races.ml:50:46: [par-nondet] the chunk body passed to parallel_for compares boxed values physically (address identity); chunk results must be a function of the chunk index alone
  [1]

The other two combinators open chunk contexts the same way:

  $ cat > proj/bench/combs.ml <<'EOF'
  > let hits = ref 0
  > let chunked () =
  >   Pool.parallel_map_chunked ~n:8 (fun ~lo ~hi -> incr hits; hi - lo)
  > let reduced () =
  >   Pool.parallel_reduce ~n:8 (fun lo _hi -> incr hits; lo) (+) 0
  > EOF
  $ ocamlc -bin-annot -c -I proj/lib/par proj/bench/combs.ml
  $ geacc_effects proj/bench
  proj/bench/combs.ml:3:49: [par-shared-write] the chunk body passed to parallel_map_chunked writes the ref (hits) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/combs.ml:5:43: [par-shared-write] the chunk body passed to parallel_reduce writes the ref (hits) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:16:35: [par-shared-write] the chunk body passed to parallel_for writes the ref (total) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:19:35: [par-shared-write] the chunk body passed to parallel_for reaches Races.bump, which writes the ref total; shared writes make the parallel region racy
  proj/bench/races.ml:22:35: [par-shared-write] the chunk body passed to parallel_for writes the record field value (shared_cell) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:25:35: [par-shared-write] the chunk body passed to parallel_for writes the Bytes buffer (buf) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:28:35: [par-shared-write] the chunk body passed to parallel_for writes the hashtable (shared_tbl) it captured; chunks may only write chunk-local state or their own cells of a shared array
  proj/bench/races.ml:37:46: [par-nondet] the chunk body passed to parallel_for uses the global Random state; chunk results must be a function of the chunk index alone
  proj/bench/races.ml:40:35: [par-nondet] the chunk body passed to parallel_for reaches Races.log_step, which writes to the process std channels; chunk results must be a function of the chunk index alone
  proj/bench/races.ml:43:46: [par-nondet] the chunk body passed to parallel_for reads a wall clock; chunk results must be a function of the chunk index alone
  proj/bench/races.ml:47:6: [par-nondet] the chunk body passed to parallel_for iterates a hashtable (unspecified order); chunk results must be a function of the chunk index alone
  proj/bench/races.ml:50:46: [par-nondet] the chunk body passed to parallel_for compares boxed values physically (address identity); chunk results must be a function of the chunk index alone
  [1]

  $ rm proj/bench/races.cmt proj/bench/combs.cmt

-- (P) poll coverage ---------------------------------------------------

A bare while loop in poll scope is the negative fixture; the same loop
polling directly, polling through a helper, or containing its unpolled
loop inside a polled outer loop is compliant. A `let rec ... and ...`
group is one obligation:

  $ mkdir -p proj/lib/core
  $ cat > proj/lib/core/loops.ml <<'EOF'
  > let spin n =
  >   let i = ref 0 in
  >   while !i < n do incr i done;
  >   !i
  > 
  > let polled deadline n =
  >   let i = ref 0 in
  >   while !i < n && not (Budget.check deadline) do incr i done;
  >   !i
  > 
  > let poll_helper deadline = Budget.check_now deadline
  > 
  > let polled_transitively deadline n =
  >   let i = ref 0 in
  >   while !i < n do
  >     if poll_helper deadline then i := n else incr i
  >   done;
  >   !i
  > 
  > let nested_inner_covered deadline grid =
  >   let i = ref 0 in
  >   while (not (Budget.check deadline)) && !i < Array.length grid do
  >     let j = ref 0 in
  >     while !j < Array.length grid.(!i) do
  >       grid.(!i).(!j) <- 0;
  >       incr j
  >     done;
  >     incr i
  >   done
  > 
  > let rec even n = if n = 0 then true else odd (n - 1)
  > and odd n = if n = 0 then false else even (n - 1)
  > 
  > let rec drain deadline n =
  >   if Budget.check deadline || n = 0 then n else drain deadline (n - 1)
  > EOF
  $ ocamlc -bin-annot -c -I proj/lib/robust proj/lib/core/loops.ml
  $ geacc_effects proj/lib/core proj/lib/robust
  proj/lib/core/loops.ml:3:2: [poll-missing] this while loop never reaches Budget.check/check_now in its call closure, so a deadline cannot cancel it; poll the budget or tag (* poll: ok — <reason> *)
  proj/lib/core/loops.ml:31:0: [poll-missing] this recursive function even never reaches Budget.check/check_now in its call closure, so a deadline cannot cancel it; poll the budget or tag (* poll: ok — <reason> *)
  proj/lib/core/loops.ml:32:0: [poll-missing] this recursive function odd never reaches Budget.check/check_now in its call closure, so a deadline cannot cancel it; poll the budget or tag (* poll: ok — <reason> *)
  [1]

The identical module outside the poll scope carries no obligations:

  $ mkdir -p proj/lib/model
  $ cp proj/lib/core/loops.ml proj/lib/model/free.ml
  $ ocamlc -bin-annot -c -I proj/lib/robust proj/lib/model/free.ml
  $ geacc_effects proj/lib/model proj/lib/robust
  geacc_effects: clean

  $ rm proj/lib/core/loops.cmt proj/lib/model/free.cmt

-- (T) CSR mirror safety -----------------------------------------------

Untrusted writes through Graph's protected fields — a record-field store
and an element store into a protected array — are errors; the same writes
from the audit layer (lib/check) and from lib/flow itself are trusted:

  $ mkdir -p proj/lib/check
  $ cat > proj/lib/core/evil.ml <<'EOF'
  > let clobber (g : Graph.t) = g.Graph.count <- 0
  > let poke (g : Graph.t) a = g.Graph.csr_cost.(a) <- 0.
  > EOF
  $ cat > proj/lib/check/audit.ml <<'EOF'
  > let corrupt (g : Graph.t) = g.Graph.count <- 0
  > let poke (g : Graph.t) a = g.Graph.csr_cost.(a) <- 0.
  > EOF
  $ ocamlc -bin-annot -c -I proj/lib/flow proj/lib/core/evil.ml
  $ ocamlc -bin-annot -c -I proj/lib/flow proj/lib/check/audit.ml
  $ geacc_effects proj/lib/core proj/lib/check proj/lib/flow
  proj/lib/core/evil.ml:1:28: [csr-mirror-write] direct write through Graph.count outside lib/flow//lib/check desynchronises the CSR positional mirror; go through Graph.push / reset_flow or the audit layer
  proj/lib/core/evil.ml:2:27: [csr-mirror-write] direct write through Graph.csr_cost outside lib/flow//lib/check desynchronises the CSR positional mirror; go through Graph.push / reset_flow or the audit layer
  [1]

  $ rm proj/lib/core/evil.cmt

-- Suppressions --------------------------------------------------------

Each rule family has a reasoned tag; the reason is mandatory — a bare
"ok" reports suppress-no-reason instead of silently passing:

  $ cat > proj/bench/tags.ml <<'EOF'
  > let total = ref 0
  > 
  > let with_reason out =
  >   Pool.parallel_for ~n:2 (fun i ->
  >       (* race: ok — single writer: n=2 chunks each touch their own half *)
  >       incr total;
  >       out.(i) <- i)
  > 
  > let without_reason out =
  >   Pool.parallel_for ~n:2 (fun i ->
  >       (* race: ok *)
  >       incr total;
  >       out.(i) <- i)
  > EOF
  $ cat > proj/lib/core/tagged.ml <<'EOF'
  > let bounded n =
  >   let i = ref 0 in
  >   (* poll: ok — bounded by n, a small constant at every call site *)
  >   while !i < n do incr i done;
  >   !i
  > 
  > let bounded_bare n =
  >   let i = ref 0 in
  >   (* poll: ok *)
  >   while !i < n do incr i done;
  >   !i
  > 
  > let reset (g : Graph.t) =
  >   (* mirror: ok — the fixture rebuilds the mirror immediately after *)
  >   g.Graph.count <- 0
  > EOF
  $ ocamlc -bin-annot -c -I proj/lib/par proj/bench/tags.ml
  $ ocamlc -bin-annot -c -I proj/lib/flow proj/lib/core/tagged.ml
  $ geacc_effects proj
  proj/bench/tags.ml:12:6: [suppress-no-reason] suppression tag "race: ok" carries no reason; write (* race: ok — <why this is sound> *)
  proj/lib/core/tagged.ml:10:2: [suppress-no-reason] suppression tag "poll: ok" carries no reason; write (* poll: ok — <why this is sound> *)
  [1]

-- JSON report ---------------------------------------------------------

  $ geacc_effects --format json proj/lib/core proj/lib/flow
  [
    {"file": "proj/lib/core/tagged.ml", "line": 10, "col": 2, "rule": "suppress-no-reason", "message": "suppression tag \"poll: ok\" carries no reason; write (* poll: ok — <why this is sound> *)"}
  ]
  [1]

A clean tree still emits a (machine-consumable) empty array:

  $ geacc_effects --format json proj/lib/flow
  []
