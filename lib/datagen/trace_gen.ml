open Geacc_util
open Geacc_core
module Trace = Geacc_serve.Trace

let pick_tier rng =
  let r = Rng.float rng 1. in
  if r < 0.2 then Trace.Must else if r < 0.7 then Trace.Should
  else Trace.Optional

let entity_op mk (e : Entity.t) =
  mk ~capacity:e.Entity.capacity ~attrs:(Array.copy e.Entity.attrs)

let generate ~seed ?(city = Meetup.auckland) ?(conflict_ratio = 0.25)
    ?(arrivals_per_batch = 8) ?(churn = 0.1) () =
  if arrivals_per_batch < 1 then
    invalid_arg "Trace_gen.generate: arrivals_per_batch < 1";
  if churn < 0. then invalid_arg "Trace_gen.generate: negative churn";
  let inst = Meetup.generate ~seed ~conflict_ratio city in
  (* Decorrelated from the seed stream Meetup.generate consumes. *)
  let rng = Rng.create ~seed:(seed lxor 0x7ace5) in
  let events = Instance.events inst and users = Instance.users inst in
  let n_events = Array.length events and n_users = Array.length users in
  let conflicts = ref [] in
  Conflict.iter_pairs (Instance.conflicts inst) (fun v w ->
      conflicts := (v, w) :: !conflicts);
  let conflicts = Array.of_list (List.rev !conflicts) in
  Rng.shuffle_in_place rng conflicts;
  let batches = ref [] and seq = ref 0 and ts = ref 0. in
  let push tier ops =
    incr seq;
    batches := { Trace.seq = !seq; ts = !ts; tier; ops } :: !batches
  in
  let advance_ts () =
    (* A quarter of the batches share the previous timestamp — admission
       groups with real contention. *)
    if Rng.float rng 1. >= 0.25 then ts := !ts +. 0.1 +. Rng.float rng 10.
  in
  (* Half the events exist before the first user shows up; the rest are
     paced to open within roughly the first third of the stream — the
     Meetup regime: events are published early, then arrivals dominate. *)
  let initial_open = max 1 (n_events / 2) in
  push Trace.Must
    (List.init initial_open (fun v ->
         entity_op (fun ~capacity ~attrs -> Trace.Event_open { capacity; attrs })
           events.(v)));
  let opened = ref initial_open in
  let arrived = ref 0 in
  let departed = Array.make n_users false in
  let closed = Array.make (max 1 n_events) false in
  let conflict_cursor = ref 0 in
  let expected_batches =
    max 1 (n_users / max 1 ((1 + (2 * arrivals_per_batch)) / 2))
  in
  let open_deadline = max 1 (expected_batches / 3) in
  let batch_index = ref 0 in
  let live_user () =
    (* A uniformly random arrived, still-present user; None when everyone
       left. Bounded rejection sampling keeps this deterministic-cheap. *)
    let rec go tries =
      if tries = 0 || !arrived = 0 then None
      else
        let u = Rng.int rng !arrived in
        if departed.(u) then go (tries - 1) else Some u
    in
    go 8
  in
  let open_event () =
    let rec go tries =
      if tries = 0 || !opened = 0 then None
      else
        let v = Rng.int rng !opened in
        if closed.(v) then go (tries - 1) else Some v
    in
    go 8
  in
  while !arrived < n_users do
    advance_ts ();
    let burst =
      min (n_users - !arrived) (Rng.int_in rng 1 (2 * arrivals_per_batch))
    in
    let ops = ref [] in
    (* Arrivals, in id order so trace ids equal instance ids. *)
    for _ = 1 to burst do
      ops :=
        entity_op
          (fun ~capacity ~attrs -> Trace.User_arrive { capacity; attrs })
          users.(!arrived)
        :: !ops;
      incr arrived
    done;
    (* Late event openings: enough each batch to exhaust by the deadline. *)
    incr batch_index;
    if !opened < n_events && !batch_index <= open_deadline then begin
      let want =
        let slots = open_deadline - !batch_index + 1 in
        max 1 ((n_events - !opened + slots - 1) / slots)
      in
      for _ = 1 to min want (n_events - !opened) do
        ops :=
          entity_op
            (fun ~capacity ~attrs -> Trace.Event_open { capacity; attrs })
            events.(!opened)
          :: !ops;
        incr opened
      done
    end;
    (* Conflict pairs surface as soon as both endpoints are open — they
       cluster into the event-opening phase, like a published programme's
       schedule clashes. *)
    while
      !conflict_cursor < Array.length conflicts
      && (fun (v, w) -> v < !opened && w < !opened)
           conflicts.(!conflict_cursor)
    do
      let v, w = conflicts.(!conflict_cursor) in
      ops := Trace.Conflict_add (v, w) :: !ops;
      incr conflict_cursor
    done;
    (* Churn. *)
    if Rng.bernoulli rng (min 1. churn) then begin
      match live_user () with
      | Some u ->
          departed.(u) <- true;
          ops := Trace.User_depart u :: !ops
      | None -> ()
    end;
    if Rng.bernoulli rng 0.08 then begin
      match open_event () with
      | Some v ->
          ops :=
            Trace.Event_capacity { v; capacity = Rng.int_in rng 1 50 } :: !ops
      | None -> ()
    end;
    if Rng.bernoulli rng 0.03 then begin
      match open_event () with
      | Some v ->
          closed.(v) <- true;
          ops := Trace.Event_close v :: !ops
      | None -> ()
    end;
    if Rng.bernoulli rng 0.05 then ops := Trace.Stats :: !ops;
    push (pick_tier rng) (List.rev !ops)
  done;
  (* Open any stragglers (with the conflicts they unblock), then a final
     Must probe pinning the end state. *)
  if !opened < n_events then begin
    advance_ts ();
    let ops =
      ref
        (List.rev_map
           (fun i ->
             entity_op
               (fun ~capacity ~attrs -> Trace.Event_open { capacity; attrs })
               events.(i))
           (List.init (n_events - !opened) (fun i -> !opened + i)))
    in
    opened := n_events;
    while !conflict_cursor < Array.length conflicts do
      let v, w = conflicts.(!conflict_cursor) in
      ops := Trace.Conflict_add (v, w) :: !ops;
      incr conflict_cursor
    done;
    push Trace.Must (List.rev !ops)
  end;
  advance_ts ();
  push Trace.Must [ Trace.Stats ];
  { Trace.sim = Instance.similarity inst; batches = List.rev !batches }
