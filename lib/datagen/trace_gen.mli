(** Timestamped workload traces for [geacc serve].

    Builds a {!Geacc_serve.Trace.t} shaped like a live Meetup deployment of
    one of the paper's TABLE II cities: roughly half the events open up
    front and the rest within the first third of the stream (events are
    published early; arrivals dominate the steady state), users arrive in
    bursts (batches sharing a timestamp contend for admission together),
    and churn trickles in — departures, event closures, capacity changes
    and periodic [stats] probes. The instance's conflict pairs surface as
    soon as both endpoints are open, clustering into the event-opening
    phase. Batch tiers are mixed roughly 20% [Must] / 50% [Should] / 30%
    [Optional].

    Everything is driven by [seed]: equal seeds and parameters produce
    byte-equal traces, so tests and benchmarks can pin digests. Generated
    traces always parse back ({!Geacc_serve.Trace.parse}) and apply cleanly
    — ids are emitted in arrival order, tombstoned ids are never reused. *)

val generate :
  seed:int ->
  ?city:Meetup.city ->
  ?conflict_ratio:float ->
  ?arrivals_per_batch:int ->
  ?churn:float ->
  unit ->
  Geacc_serve.Trace.t
(** Defaults: [city = Meetup.auckland], [conflict_ratio = 0.25] (of the
    city's event pairs), [arrivals_per_batch = 8] (the mean burst size),
    [churn = 0.1] (expected departures per batch). The underlying entities
    come from {!Meetup.generate} with the same seed, so a trace replayed to
    the end covers exactly that city's population. *)
