(** Cooperative time budgets for anytime solvers.

    A budget is an absolute deadline plus a cheap polling protocol: the
    solver calls {!check} once per iteration of its hot loop; the budget
    reads the clock only every [poll_every] calls, so an armed budget costs
    one predictable-branch counter decrement per iteration. Once a budget
    reports expiry it stays expired (sticky), which is what lets a solver
    unwind to a consistent checkpoint and return its best feasible result so
    far instead of racing the clock on the way out.

    Clock: [Unix.gettimeofday]. The platform exposes no monotonic clock to
    this OCaml version, so a large backwards wall-clock step can delay an
    expiry; deadlines are best-effort in that one case, and deterministic
    tests use {!create}'s [expire_after_polls] instead of the clock.

    Budgets are single-solver values: {!check} mutates counters and is not
    thread-safe. {!unlimited} is the shared disarmed budget; polling it is a
    single load-and-branch and mutates nothing.

    Polling is a static obligation, not a convention: [geacc_effects]
    ([dune build @effects], rule [poll-missing]) requires every outermost
    loop under [lib/core] / [lib/flow] to reach {!check} or {!check_now}
    in its call closure, so a solver hot loop that cannot be cancelled by
    a deadline fails the build. See DESIGN.md §12. *)

type t

val unlimited : t
(** Never expires. [check unlimited] is [false] forever and keeps no
    counters. *)

val create :
  ?poll_every:int -> ?expire_after_polls:int -> timeout_s:float -> unit -> t
(** A budget expiring [timeout_s] seconds from now. [poll_every] (default
    64) is how many {!check} calls share one clock read. A non-positive
    [timeout_s] expires on the first poll. [expire_after_polls], meant for
    deterministic fault injection, forces expiry on the given (1-based)
    {!check} call regardless of the clock.
    @raise Invalid_argument when [poll_every < 1] or
    [expire_after_polls < 1]. *)

val armed : t -> bool
(** [false] only for {!unlimited}. *)

val check : t -> bool
(** Polls the budget: [true] once the deadline has passed (sticky). Reads
    the clock on the first call and then every [poll_every]-th call. *)

val check_now : t -> bool
(** {!check} with an unconditional clock read — for loops whose iterations
    are expensive enough (e.g. one flow augmentation) that batching clock
    reads would overshoot the deadline. *)

val expired : t -> bool
(** Sticky expiry flag, without polling. *)

val expire : t -> unit
(** Forces expiry (used to propagate a parent deadline into a sub-solver). *)

val remaining_s : t -> float
(** Seconds until the deadline ([infinity] when disarmed, [0.] once
    expired). Reads the clock. *)

val polls : t -> int
(** Number of {!check}/{!check_now} calls so far. *)

val clock_reads : t -> int
(** Number of those polls that actually read the clock. *)

val now_s : unit -> float
(** The budget clock, exposed for elapsed-time accounting in harnesses. *)
