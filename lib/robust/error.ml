type t =
  | Parse_error of { line : int; message : string }
  | Io_error of { path : string; message : string }
  | Invalid_input of { what : string; message : string }
  | Timeout of { stage : string; elapsed_s : float }
  | Exhausted of { stages : int; last : string; detail : string }

let to_string = function
  | Parse_error { line; message } ->
      if line > 0 then Printf.sprintf "parse error at line %d: %s" line message
      else Printf.sprintf "parse error: %s" message
  | Io_error { path; message } -> Printf.sprintf "io error on %s: %s" path message
  | Invalid_input { what; message } ->
      Printf.sprintf "invalid %s: %s" what message
  | Timeout { stage; elapsed_s } ->
      Printf.sprintf "timeout after %.3fs in stage %s" elapsed_s stage
  | Exhausted { stages; last; detail } ->
      Printf.sprintf "all %d stages failed; last (%s): %s" stages last detail

let pp ppf e = Format.pp_print_string ppf (to_string e)
