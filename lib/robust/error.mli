(** Structured errors for the robustness layer.

    One closed error type shared by the IO loaders, the online solver's
    input validation and the fallback harness, so front ends can map every
    failure to a message and an exit code without matching on exception
    strings. Library entry points return [('a, Error.t) result]; raising is
    reserved for programming errors. *)

type t =
  | Parse_error of { line : int; message : string }
      (** Malformed instance/matching text; [line] is 1-based, 0 when the
          input ended early. *)
  | Io_error of { path : string; message : string }
      (** The file could not be read or written. *)
  | Invalid_input of { what : string; message : string }
      (** A structurally valid value that violates a documented precondition
          (e.g. an online arrival order that is not a permutation). [what]
          names the offending argument. *)
  | Timeout of { stage : string; elapsed_s : float }
      (** A deadline expired before any stage produced a usable result. *)
  | Exhausted of { stages : int; last : string; detail : string }
      (** Every stage of a fallback chain failed; [last] names the final
          stage tried and [detail] its failure. *)

val to_string : t -> string
(** One-line rendering, stable enough to pin in cram tests. *)

val pp : Format.formatter -> t -> unit
