(** Declarative fallback chains over anytime stages.

    A chain is an ordered list of stages — typically an expensive exact
    solver first and ever-cheaper approximations after it — run under one
    overall deadline. Each stage receives a {!Budget.t} armed with the
    minimum of its own per-stage timeout and the time remaining overall,
    and returns its result together with a completeness flag ([complete =
    false] means the budget expired and the value is best-so-far). The
    chain stops at the first stage that completes; a stage that times out
    contributes its degraded value as a candidate and the chain falls back
    to the next stage; a stage that raises is a {e fault} — retried with
    backoff when [transient] says so, abandoned for the next stage
    otherwise. The final value is the best candidate seen (per [better]),
    tagged {!Complete} only when the chain's head stage completed, i.e. the
    answer is exactly what a patient run would have produced.

    Fault-plan integration: before arming a stage's budget the chain
    consults [Fault.param "timeout.<stage name>"]; when the plan carries
    such an entry the budget is additionally forced to expire on that poll,
    which makes mid-search deadlines reproducible in CI (see {!Fault}).

    The engine is generic in the problem ['a] and result ['r]: it never
    inspects values, so it lives below the solver libraries and is reused
    by [Geacc_core.Anytime] for matchings. *)

type status = Complete | Degraded

type 'r attempt = { value : 'r; complete : bool }
(** What a stage hands back: its result, and whether it ran to completion
    ([false] = the budget expired and [value] is the best found so far). *)

type ('a, 'r) stage

val stage :
  ?timeout_s:float ->
  ?poll_every:int ->
  name:string ->
  ('a -> budget:Budget.t -> 'r attempt) ->
  ('a, 'r) stage
(** [timeout_s] caps this stage's share of the overall deadline (default:
    no cap beyond the overall remaining time); [poll_every] tunes the
    stage budget's clock-read batching (default 64, use 1 for loops with
    expensive iterations). [name] keys the [timeout.<name>] fault point. *)

val stage_name : ('a, 'r) stage -> string

type verdict =
  | Completed
  | Timed_out
  | Faulted of string  (** The exception, printed. *)

type trace_entry = {
  t_stage : string;
  t_attempt : int;  (** 1-based; > 1 are retries. *)
  t_seconds : float;
  t_verdict : verdict;
}

type 'r outcome = {
  value : 'r;
  status : status;
  reason : string option;  (** Why the result is degraded; [None] when complete. *)
  stage : string;          (** Stage that produced [value]. *)
  stages_tried : int;
  fallbacks : int;         (** Stage-to-stage transitions taken. *)
  retries : int;
  faults : int;            (** Attempts that raised (including retried ones). *)
  elapsed_s : float;
  trace : trace_entry list;  (** Chronological, one entry per attempt. *)
}

val run :
  ?timeout_s:float ->
  ?max_retries:int ->
  ?backoff_s:float ->
  ?transient:(exn -> bool) ->
  ?better:('r -> 'r -> bool) ->
  ('a, 'r) stage list ->
  'a ->
  ('r outcome, Error.t) result
(** Runs the chain on an input. [max_retries] (default 0) bounds retries
    per stage for transient faults, sleeping [backoff_s * attempt] (default
    0) between tries; [transient] defaults to accepting only
    {!Fault.Injected}. [better incumbent candidate] decides whether a later
    candidate replaces the incumbent (default: never — earlier stages win).

    Errors: [Timeout] when the overall deadline expired before any stage
    produced a value; [Exhausted] when every stage faulted;
    [Invalid_input] on an empty chain. *)

val pp_verdict : Format.formatter -> verdict -> unit
