(** Deterministic fault injection.

    Robustness paths — timeouts, fallbacks, retries, parse errors — are
    worthless untested, and untestable if faults only occur under real load.
    This module turns the [GEACC_FAULTS] environment variable into a
    deterministic plan of named {e fault points}: instrumented code asks
    {!fire} whether its point triggers on this particular hit, so a CI run
    with a fixed plan replays the exact same degradation on every run.

    {2 Plan grammar}

    A plan is a comma-separated list of entries (spaces allowed):

    {v
    entry ::= point            fire on every hit
            | point@N          fire on the N-th hit only (1-based)
            | point@N+         fire on every hit from the N-th on
    point ::= [a-z0-9_.-]+
    v}

    Example: [GEACC_FAULTS="mcf.alloc@1,timeout.prune@500"] makes the flow
    network build fail once (a transient fault — a retry succeeds) and
    forces the Prune stage's budget to expire on its 500th poll.

    {2 Conventions}

    Points are lowercase dotted names owned by the instrumented module:
    [io.truncate], [io.corrupt] (instance loading), [io.short_write],
    [journal.corrupt], [serve.crash] (write-ahead journal and serving
    loop), [sim.nan], [sim.huge] (similarity evaluation), [mcf.alloc]
    (flow-network build), and the [timeout.<stage>] family, which is not
    {!fire}d but read through {!param} by the harness to arm budgets with
    [expire_after_polls]. {!known} lists them with one-line descriptions
    (DESIGN.md's fault table mirrors it); [parse] stays permissive — tests
    install throwaway points — but its errors name the offending token.

    The plan is parsed from the environment once, lazily. A malformed plan
    never aborts the process: it is recorded (see {!plan_error}) and treated
    as empty, and front ends surface the error. When no plan is installed,
    {!active} is [false] and every instrumentation guard is one load and
    branch. *)

exception Injected of { point : string }
(** Raised by {!inject}; carries the fault point that fired. Registered with
    [Printexc] for readable reports. *)

type plan

val known : (string * string) list
(** The instrumented fault points with one-line descriptions, in
    documentation order. [timeout.<stage>] stands for the whole parameter
    family. *)

val parse : string -> (plan, string) result
(** Parses the grammar above. [Error] names the offending entry. The empty
    string is the empty plan. *)

val install : plan -> unit
(** Replaces the active plan and resets all hit counters. *)

val clear : unit -> unit
(** Removes the active plan (and any recorded {!plan_error}). *)

val with_plan : string -> (unit -> 'a) -> 'a
(** [with_plan spec f] parses and installs [spec], runs [f], and restores
    the previous plan and counters afterwards (exception-safe).
    @raise Invalid_argument when [spec] does not parse — test-suite use. *)

val plan_error : unit -> string option
(** The parse error of a malformed [GEACC_FAULTS] value, if any. *)

val active : unit -> bool
(** [true] when a non-empty plan is installed. *)

val fire : string -> bool
(** [fire point] counts one hit of [point] and reports whether the plan
    triggers the fault on this hit. Always [false] (and counts nothing)
    when {!active} is [false]. *)

val inject : string -> unit
(** [inject point] raises {!Injected} when [fire point] is [true]. *)

val param : string -> int option
(** The [N] of the plan entry for [point], without counting a hit — for
    points whose entry is a parameter (e.g. [timeout.<stage>@N] = expire on
    poll [N]) rather than a hit trigger. [None] when the plan has no such
    entry; a bare [point] entry reads as [Some 1]. *)

val hits : string -> int
(** Hits counted for [point] since the plan was installed. *)

val fires : unit -> int
(** Total faults fired (across all points) since the plan was installed. *)
