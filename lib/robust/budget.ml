let now_s () = Unix.gettimeofday ()

type t = {
  armed : bool;
  deadline : float;
  poll_every : int;
  expire_after_polls : int;  (* max_int = never *)
  mutable countdown : int;   (* checks left before the next clock read *)
  mutable polls : int;
  mutable clock_reads : int;
  mutable expired : bool;
}

let unlimited =
  {
    armed = false;
    deadline = infinity;
    poll_every = 1;
    expire_after_polls = max_int;
    countdown = 0;
    polls = 0;
    clock_reads = 0;
    expired = false;
  }

let create ?(poll_every = 64) ?(expire_after_polls = max_int) ~timeout_s () =
  if poll_every < 1 then invalid_arg "Budget.create: poll_every < 1";
  if expire_after_polls < 1 then
    invalid_arg "Budget.create: expire_after_polls < 1";
  {
    armed = true;
    deadline = now_s () +. timeout_s;
    poll_every;
    expire_after_polls;
    countdown = 1;  (* read the clock on the very first poll *)
    polls = 0;
    clock_reads = 0;
    expired = false;
  }

let armed t = t.armed
let expired t = t.expired
let expire t = if t.armed then t.expired <- true
let polls t = t.polls
let clock_reads t = t.clock_reads

let read_clock t =
  t.clock_reads <- t.clock_reads + 1;
  t.countdown <- t.poll_every;
  if now_s () >= t.deadline then t.expired <- true

let check t =
  t.expired
  || t.armed
     && begin
          t.polls <- t.polls + 1;
          if t.polls >= t.expire_after_polls then t.expired <- true
          else begin
            t.countdown <- t.countdown - 1;
            if t.countdown <= 0 then read_clock t
          end;
          t.expired
        end

let check_now t =
  t.expired
  || t.armed
     && begin
          t.polls <- t.polls + 1;
          if t.polls >= t.expire_after_polls then t.expired <- true
          else read_clock t;
          t.expired
        end

let remaining_s t =
  if not t.armed then infinity
  else if t.expired then 0.
  else Float.max 0. (t.deadline -. now_s ())
