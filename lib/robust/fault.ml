exception Injected of { point : string }

let () =
  Printexc.register_printer (function
    | Injected { point } ->
        Some (Printf.sprintf "Fault.Injected at point %s" point)
    | _ -> None)

type trigger =
  | At of int        (* fire on the N-th hit only *)
  | From of int      (* fire on every hit >= N *)

type entry = { point : string; trigger : trigger; mutable hits : int }

type plan = entry list

(* -- known instrumented points ---------------------------------------- *)

(* The registry is documentation plus introspection (DESIGN.md's fault
   table is generated from the same names), not an admission filter: tests
   install throwaway points through [with_plan], so [parse] accepts any
   well-formed token and only the error messages lean on the registry. *)
let known =
  [
    ("io.truncate", "drop the second half of a file's bytes after reading");
    ("io.corrupt", "flip the first digit of a file's bytes after reading");
    ("io.short_write", "journal append writes a torn record, then crashes");
    ("journal.corrupt", "flip one payload byte of a journal record on read");
    ("serve.crash", "kill the serving loop at the N-th durability checkpoint");
    ("sim.nan", "poison a similarity read with NaN");
    ("sim.huge", "poison a similarity read with 1e300");
    ("mcf.alloc", "fail the flow-network build (canonical transient fault)");
    ( "timeout.<stage>",
      "not fired; @N arms the stage's budget to expire on poll N" );
  ]

(* -- parsing ---------------------------------------------------------- *)

let valid_point s =
  s <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true | _ -> false)
       s

let parse_entry s =
  let mk point trigger =
    (* Name the offending token, not the whole entry: in a plan like
       "serve.crash@3,IO.corrupt" the complaint must single out
       "IO.corrupt" even though the trigger suffix already parsed. *)
    if valid_point point then Ok { point; trigger; hits = 0 }
    else Error (Printf.sprintf "bad fault point %S" point)
  in
  match String.index_opt s '@' with
  | None -> mk s (From 1)
  | Some i -> (
      let point = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      let n_str, from =
        let l = String.length arg in
        if l > 0 && arg.[l - 1] = '+' then (String.sub arg 0 (l - 1), true)
        else (arg, false)
      in
      match int_of_string_opt n_str with
      | Some n when n >= 1 -> mk point (if from then From n else At n)
      | Some _ | None ->
          Error
            (Printf.sprintf
               "bad fault count %S in %S (want point@N or point@N+, N >= 1)"
               arg s))

let parse spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (( <> ) "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match parse_entry e with
        | Ok entry -> go (entry :: acc) rest
        | Error _ as err -> err)
  in
  go [] entries

(* -- active plan ------------------------------------------------------ *)

let current : plan ref = ref []
let error : string option ref = ref None
let is_active = ref false
let fired = ref 0

let install plan =
  List.iter (fun e -> e.hits <- 0) plan;
  current := plan;
  error := None;
  fired := 0;
  is_active := plan <> []

let clear () =
  current := [];
  error := None;
  fired := 0;
  is_active := false

let () =
  match Sys.getenv_opt "GEACC_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match parse spec with
      | Ok plan -> install plan
      | Error e -> error := Some e)

let plan_error () = !error
let active () = !is_active

let find point = List.find_opt (fun e -> e.point = point) !current

let fire point =
  !is_active
  && (match find point with
     | None -> false
     | Some e ->
         e.hits <- e.hits + 1;
         let hit =
           match e.trigger with At n -> e.hits = n | From n -> e.hits >= n
         in
         if hit then incr fired;
         hit)

let inject point = if fire point then raise (Injected { point })

let param point =
  match find point with
  | None -> None
  | Some { trigger = At n | From n; _ } -> Some n

let hits point = match find point with None -> 0 | Some e -> e.hits

let fires () = !fired

let with_plan spec f =
  match parse spec with
  | Error e -> invalid_arg (Printf.sprintf "Fault.with_plan: %s" e)
  | Ok plan ->
      let saved = !current and saved_error = !error and saved_fired = !fired in
      let saved_hits = List.map (fun e -> (e, e.hits)) saved in
      install plan;
      Fun.protect
        ~finally:(fun () ->
          current := saved;
          error := saved_error;
          fired := saved_fired;
          is_active := saved <> [];
          List.iter (fun (e, h) -> e.hits <- h) saved_hits)
        f
