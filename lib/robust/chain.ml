type status = Complete | Degraded

type 'r attempt = { value : 'r; complete : bool }

type ('a, 'r) stage = {
  name : string;
  timeout_s : float option;
  poll_every : int;
  run : 'a -> budget:Budget.t -> 'r attempt;
}

let stage ?timeout_s ?(poll_every = 64) ~name run =
  { name; timeout_s; poll_every; run }

let stage_name s = s.name

type verdict = Completed | Timed_out | Faulted of string

type trace_entry = {
  t_stage : string;
  t_attempt : int;
  t_seconds : float;
  t_verdict : verdict;
}

type 'r outcome = {
  value : 'r;
  status : status;
  reason : string option;
  stage : string;
  stages_tried : int;
  fallbacks : int;
  retries : int;
  faults : int;
  elapsed_s : float;
  trace : trace_entry list;
}

let pp_verdict ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Timed_out -> Format.pp_print_string ppf "timed out"
  | Faulted e -> Format.fprintf ppf "faulted: %s" e

let default_transient = function Fault.Injected _ -> true | _ -> false

(* The budget a stage attempt runs under: capped by the stage's own timeout
   and by the overall time remaining, and — for deterministic tests — forced
   to expire on poll N when the fault plan carries [timeout.<stage>@N]. *)
let stage_budget stage ~overall =
  let cap =
    match (stage.timeout_s, Budget.armed overall) with
    | None, false -> None
    | Some s, false -> Some s
    | None, true -> Some (Budget.remaining_s overall)
    | Some s, true -> Some (Float.min s (Budget.remaining_s overall))
  in
  let forced_polls = Fault.param ("timeout." ^ stage.name) in
  match (cap, forced_polls) with
  | None, None -> Budget.unlimited
  | _ ->
      Budget.create ~poll_every:stage.poll_every
        ?expire_after_polls:forced_polls
        ~timeout_s:(Option.value cap ~default:1e9)
        ()

let run ?timeout_s ?(max_retries = 0) ?(backoff_s = 0.)
    ?(transient = default_transient) ?(better = fun _ _ -> false) stages input =
  let start = Budget.now_s () in
  let overall =
    match timeout_s with
    | None -> Budget.unlimited
    | Some s -> Budget.create ~poll_every:1 ~timeout_s:s ()
  in
  let trace = ref [] in
  let stages_tried = ref 0 in
  let fallbacks = ref 0 in
  let retries = ref 0 in
  let faults = ref 0 in
  (* Best value so far: (value, producing stage, its index, complete). *)
  let candidate = ref None in
  let last_stage = ref "" in
  let last_detail = ref "no stages" in
  let record stage attempt t0 verdict =
    trace :=
      {
        t_stage = stage.name;
        t_attempt = attempt;
        t_seconds = Budget.now_s () -. t0;
        t_verdict = verdict;
      }
      :: !trace
  in
  let offer value stage index complete =
    match !candidate with
    | None -> candidate := Some (value, stage.name, index, complete)
    | Some (incumbent, _, _, _) ->
        if better incumbent value then
          candidate := Some (value, stage.name, index, complete)
  in
  let rec try_stage index = function
    | [] -> ()
    | stage :: rest ->
        if Budget.check_now overall then ()
        else begin
          incr stages_tried;
          last_stage := stage.name;
          let rec attempt n =
            let budget = stage_budget stage ~overall in
            let t0 = Budget.now_s () in
            match stage.run input ~budget with
            | { value; complete } ->
                record stage n t0 (if complete then Completed else Timed_out);
                offer value stage index complete;
                if complete then `Stop else `Fall_through
            | exception e ->
                let printed = Printexc.to_string e in
                record stage n t0 (Faulted printed);
                incr faults;
                last_detail := printed;
                if transient e && n <= max_retries then begin
                  incr retries;
                  if backoff_s > 0. then Unix.sleepf (backoff_s *. float_of_int n);
                  attempt (n + 1)
                end
                else `Fall_through
          in
          match attempt 1 with
          | `Stop -> ()
          | `Fall_through ->
              if rest <> [] && not (Budget.expired overall) then begin
                incr fallbacks;
                try_stage (index + 1) rest
              end
        end
  in
  if stages = [] then
    Error (Error.Invalid_input { what = "chain"; message = "no stages" })
  else begin
    try_stage 0 stages;
    let elapsed_s = Budget.now_s () -. start in
    let trace = List.rev !trace in
    match !candidate with
    | None ->
        if Budget.expired overall then
          Error (Error.Timeout { stage = !last_stage; elapsed_s })
        else
          Error
            (Error.Exhausted
               { stages = !stages_tried; last = !last_stage; detail = !last_detail })
    | Some (value, stage, index, complete) ->
        let status = if complete && index = 0 then Complete else Degraded in
        let reason =
          match status with
          | Complete -> None
          | Degraded ->
              List.find_map
                (fun t ->
                  match t.t_verdict with
                  | Completed -> None
                  | Timed_out ->
                      Some (Printf.sprintf "stage %s timed out" t.t_stage)
                  | Faulted e ->
                      Some (Printf.sprintf "stage %s faulted: %s" t.t_stage e))
                trace
        in
        Ok
          {
            value;
            status;
            reason;
            stage;
            stages_tried = !stages_tried;
            fallbacks = !fallbacks;
            retries = !retries;
            faults = !faults;
            elapsed_s;
            trace;
          }
  end
