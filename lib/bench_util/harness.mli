(** Experiment harness: run algorithms over instances and aggregate the
    paper's three metrics (MaxSum, running time, memory).

    Each measurement validates the produced arrangement — a benchmark run
    doubles as an end-to-end feasibility check — and repeated trials with
    distinct seeds are averaged, mirroring the paper's averaged plots. *)

type measurement = {
  algorithm : Geacc_core.Solver.algorithm;
  maxsum : float;
  matched_pairs : int;
  wall_s : float;
  live_bytes : int;   (** Peak live-heap growth during the solve call. *)
  peak_mode : [ `Exact | `Gc_delta ];
      (** Which estimator produced [live_bytes]: the main-domain sampler
          ([`Exact]) or the worker-domain retained-growth fallback
          ([`Gc_delta], an underestimate). See
          {!Geacc_util.Measure.run_with_peak}. *)
}

val measure :
  ?seed:int -> Geacc_core.Solver.algorithm ->
  (unit -> Geacc_core.Instance.t) -> measurement
(** Runs the algorithm twice with identical seeds — once timed, once under
    the peak-memory sampler (see {!Geacc_util.Measure.run_with_peak}) — and
    validates the output. The instance thunk is called once per run so that
    each run starts from cold per-instance index caches; pass
    [fun () -> instance] to accept warm caches instead.
    @raise Failure if the output is infeasible. *)

type aggregate = {
  algorithm : Geacc_core.Solver.algorithm;
  trials : int;
  mean_maxsum : float;
  mean_wall_s : float;
  mean_live_bytes : float;
}

val measure_grid :
  ?jobs:int ->
  trials:int ->
  make_instance:(seed:int -> Geacc_core.Instance.t) ->
  Geacc_core.Solver.algorithm list ->
  measurement array array
(** [measure_grid ~trials ~make_instance algos] measures every algorithm on
    [trials] instances (seeds 1..trials); element [(t)(i)] is trial [t+1] of
    the [i]-th algorithm. Trials are distributed over the domain pool
    ([jobs] defaults to {!Geacc_par.Pool.default_jobs}); each trial's seed
    is a function of its index alone, so the grid's contents — modulo wall
    times and worker-domain memory readings, see
    {!Geacc_util.Measure.run_with_peak} — do not depend on the job count. *)

val aggregate : measurement array array -> aggregate list
(** Per-algorithm means of a {!measure_grid} result, folding trials in
    ascending-seed order so the float sums are byte-identical regardless of
    the job count that produced the grid. *)

val average :
  ?jobs:int ->
  trials:int ->
  make_instance:(seed:int -> Geacc_core.Instance.t) ->
  Geacc_core.Solver.algorithm list ->
  aggregate list
(** [average ~trials ~make_instance algos] builds [trials] instances with
    seeds 1..trials and measures every algorithm on each; per-algorithm
    means, in the order given. [{!aggregate} ∘ {!measure_grid}]. *)

val metric :
  [ `Maxsum | `Time_ms | `Memory_mb ] -> aggregate -> float
(** Projects an aggregate onto one of the paper's plot axes. *)

val metric_label : [ `Maxsum | `Time_ms | `Memory_mb ] -> string
