open Geacc_util
open Geacc_core
module Pool = Geacc_par.Pool

type measurement = {
  algorithm : Solver.algorithm;
  maxsum : float;
  matched_pairs : int;
  wall_s : float;
  live_bytes : int;
  peak_mode : [ `Exact | `Gc_delta ];
}

let measure ?(seed = 42) algorithm make_instance =
  (* Timing and peak-memory sampling perturb each other, so the algorithm
     runs twice with identically-seeded generators and fresh instances:
     once timed, once under the memory sampler. *)
  let matching, wall_s =
    Measure.time (fun () ->
        Solver.run ~rng:(Rng.create ~seed) algorithm (make_instance ()))
  in
  let peak_matching, peak_bytes, peak_mode =
    Measure.run_with_peak (fun () ->
        Solver.run ~rng:(Rng.create ~seed) algorithm (make_instance ()))
  in
  assert (Matching.size peak_matching = Matching.size matching);
  (match Validate.check_matching matching with
  | [] -> ()
  | violations ->
      let msg =
        Format.asprintf "%s produced an infeasible arrangement: %a"
          (Solver.name algorithm)
          (Format.pp_print_list ~pp_sep:Format.pp_print_space
             Validate.pp_violation)
          violations
      in
      failwith msg (* lint: ok — infeasible solver output is a fatal bug *));
  {
    algorithm;
    maxsum = Matching.maxsum matching;
    matched_pairs = Matching.size matching;
    wall_s;
    live_bytes = peak_bytes;
    peak_mode;
  }

type aggregate = {
  algorithm : Solver.algorithm;
  trials : int;
  mean_maxsum : float;
  mean_wall_s : float;
  mean_live_bytes : float;
}

let measure_grid ?jobs ~trials ~make_instance algorithms =
  assert (trials >= 1);
  let algos = Array.of_list algorithms in
  let n_alg = Array.length algos in
  assert (n_alg >= 1);
  let grid = Array.make_matrix trials n_alg None in
  (* Each trial is seeded by its own index, so the work a trial does — and
     the instance it builds — is independent of which domain runs it. *)
  Pool.parallel_for ?jobs ~n:trials (fun t ->
      let seed = t + 1 in
      for i = 0 to n_alg - 1 do
        (* race: ok — each (t,i) cell is written exactly once by its own trial; measure's deeper reaches (Audit.fail's counter, the domain-dependent peak sampler) are benign and the peak mode is reported per row *)
        grid.(t).(i) <- Some (measure ~seed algos.(i) (fun () -> make_instance ~seed))
      done);
  Array.map
    (* parallel_for filled every cell before returning — lint: ok *)
    (Array.map (function Some m -> m | None -> assert false))
    grid

let aggregate (grid : measurement array array) =
  let trials = Array.length grid in
  assert (trials >= 1);
  let n_alg = Array.length grid.(0) in
  let stats =
    Array.init n_alg (fun i ->
        (grid.(0).(i).algorithm, Stats.create (), Stats.create (),
         Stats.create ()))
  in
  (* Accumulate in (trial, algorithm) order — the sequential order — so the
     float means are byte-identical however the grid was filled. *)
  for t = 0 to trials - 1 do
    for i = 0 to n_alg - 1 do
      let m = grid.(t).(i) in
      let _, s_max, s_time, s_mem = stats.(i) in
      Stats.add s_max m.maxsum;
      Stats.add s_time m.wall_s;
      Stats.add s_mem (float_of_int m.live_bytes)
    done
  done;
  Array.to_list
    (Array.map
       (fun (algorithm, s_max, s_time, s_mem) ->
         {
           algorithm;
           trials;
           mean_maxsum = Stats.mean s_max;
           mean_wall_s = Stats.mean s_time;
           mean_live_bytes = Stats.mean s_mem;
         })
       stats)

let average ?jobs ~trials ~make_instance algorithms =
  aggregate (measure_grid ?jobs ~trials ~make_instance algorithms)

let metric which agg =
  match which with
  | `Maxsum -> agg.mean_maxsum
  | `Time_ms -> agg.mean_wall_s *. 1000.
  | `Memory_mb -> agg.mean_live_bytes /. (1024. *. 1024.)

let metric_label = function
  | `Maxsum -> "MaxSum"
  | `Time_ms -> "time (ms)"
  | `Memory_mb -> "memory (MB)"
