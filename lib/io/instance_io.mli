(** Plain-text (de)serialisation of instances and matchings.

    Instance format (line-oriented, ['#'] comments and blank lines ignored):
    {v
    geacc-instance 1
    sim euclidean <dim> <range>     # or: sim gaussian <sigma> | sim cosine
    events <n>
    <capacity> <attr_1> ... <attr_d>
    ...
    users <n>
    <capacity> <attr_1> ... <attr_d>
    ...
    conflicts <m>
    <event_id> <event_id>
    ...
    v}

    Matching format:
    {v
    geacc-matching 1
    pairs <k>
    <event_id> <user_id>
    ...
    v}

    Custom similarities are not serialisable: saving such an instance
    raises.

    Loading is strict: beyond shape errors, it rejects non-finite attribute
    values, negative capacities, conflict ids out of range, self-conflicts
    and duplicate conflict pairs, each with the precise 1-based line number
    and offending value — a malformed file must never become a silently
    garbage instance. The [_result] variants report the same failures (and
    unreadable files) as structured [Geacc_robust.Error.t] values for
    callers that must not unwind; the exception API remains for the many
    callers whose inputs are trusted build products.

    Fault points (see [Geacc_robust.Fault]): [io.truncate] drops the second
    half of a file's bytes after reading, [io.corrupt] flips its first
    digit to [x] — both deterministically exercise the parse-error paths
    end-to-end. *)

exception Parse_error of { line : int; message : string }

val sim_header : Geacc_core.Similarity.t -> string
(** The [sim ...] header line (no newline) of the instance format, also
    carried verbatim by the serve-mode trace and snapshot formats.
    @raise Invalid_argument on a custom (non-serialisable) similarity. *)

val parse_sim :
  line:int -> string list -> Geacc_core.Similarity.t
(** Parses the argument tokens of a [sim ...] header ([["euclidean"; d; r]],
    [["gaussian"; s]] or [["cosine"]]), the inverse of {!sim_header}.
    @raise Parse_error (with the given line) on anything else. *)

val save_instance : Geacc_core.Instance.t -> string
val write_instance : path:string -> Geacc_core.Instance.t -> unit

val load_instance : string -> Geacc_core.Instance.t
(** @raise Parse_error on malformed input. *)

val read_instance : path:string -> Geacc_core.Instance.t

val load_instance_result :
  string -> (Geacc_core.Instance.t, Geacc_robust.Error.t) result
(** {!load_instance} with the failure as a value. *)

val read_instance_result :
  path:string -> (Geacc_core.Instance.t, Geacc_robust.Error.t) result
(** {!read_instance} with unreadable-file ([Io_error]) and parse failures
    as values. *)

val save_pairs : (int * int) list -> string
val write_pairs : path:string -> (int * int) list -> unit

val load_pairs : string -> (int * int) list
(** @raise Parse_error on malformed input. *)

val read_pairs : path:string -> (int * int) list
