open Geacc_core
module Fault = Geacc_robust.Fault

exception Parse_error of { line : int; message : string }

let fail ~line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* -- Saving ---------------------------------------------------------- *)

(* Shared with the serve-mode trace/snapshot formats, which carry the same
   `sim ...` header line. *)
let sim_header sim =
  match Similarity.spec sim with
  | Similarity.Spec_euclidean { dim; range } ->
      Printf.sprintf "sim euclidean %d %.17g" dim range
  | Similarity.Spec_gaussian { sigma } ->
      Printf.sprintf "sim gaussian %.17g" sigma
  | Similarity.Spec_cosine -> "sim cosine"
  | Similarity.Spec_custom name ->
      invalid_arg
        (Printf.sprintf "Instance_io: custom similarity %S is not serialisable"
           name)

let save_instance instance =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "geacc-instance 1";
  line "%s" (sim_header (Instance.similarity instance));
  let side name entities =
    line "%s %d" name (Array.length entities);
    Array.iter
      (fun (e : Entity.t) ->
        Buffer.add_string buf (string_of_int e.Entity.capacity);
        Array.iter
          (fun x ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (Printf.sprintf "%.17g" x))
          e.Entity.attrs;
        Buffer.add_char buf '\n')
      entities
  in
  side "events" (Instance.events instance);
  side "users" (Instance.users instance);
  let cf = Instance.conflicts instance in
  line "conflicts %d" (Conflict.cardinal cf);
  Conflict.iter_pairs cf (fun v w -> line "%d %d" v w);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_instance ~path instance = write_file path (save_instance instance)

(* -- Loading --------------------------------------------------------- *)

(* Significant lines with their 1-based numbers; comments/blanks dropped. *)
let significant_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_int ~line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail ~line "expected an integer, got %S" s

let parse_float ~line s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail ~line "expected a number, got %S" s

type cursor = { mutable rest : (int * string) list }

let next_line cur =
  match cur.rest with
  | [] -> fail ~line:0 "unexpected end of input"
  | x :: rest ->
      cur.rest <- rest;
      x

let expect_header cur ~keyword =
  let line, l = next_line cur in
  match tokens l with
  | k :: args when k = keyword -> (line, args)
  | _ -> fail ~line "expected %S section, got %S" keyword l

let parse_sim ~line args =
  match args with
  | [ "euclidean"; d; r ] ->
      Similarity.euclidean ~dim:(parse_int ~line d) ~range:(parse_float ~line r)
  | [ "gaussian"; s ] -> Similarity.gaussian ~sigma:(parse_float ~line s)
  | [ "cosine" ] -> Similarity.cosine
  | _ -> fail ~line "unsupported similarity %S" (String.concat " " args)

let parse_attr ~line s =
  let x = parse_float ~line s in
  if Float.is_finite x then x
  else fail ~line "attribute %S is not finite" s

let parse_capacity ~line s =
  let c = parse_int ~line s in
  if c >= 0 then c else fail ~line "capacity %d is negative" c

let parse_entities cur ~count =
  Array.init count (fun id ->
      let line, l = next_line cur in
      match tokens l with
      | capacity :: attrs when attrs <> [] ->
          Entity.make ~id
            ~attrs:(Array.of_list (List.map (parse_attr ~line) attrs))
            ~capacity:(parse_capacity ~line capacity)
      | _ -> fail ~line "expected `<capacity> <attr...>`, got %S" l)

let load_instance text =
  let cur = { rest = significant_lines text } in
  (let line, l = next_line cur in
   match tokens l with
   | [ "geacc-instance"; "1" ] -> ()
   | _ -> fail ~line "expected `geacc-instance 1` header, got %S" l);
  let sim =
    let line, l = next_line cur in
    match tokens l with
    | "sim" :: args -> parse_sim ~line args
    | _ -> fail ~line "expected `sim ...`, got %S" l
  in
  let parse_side keyword =
    let line, args = expect_header cur ~keyword in
    match args with
    | [ n ] -> parse_entities cur ~count:(parse_int ~line n)
    | _ -> fail ~line "expected `%s <count>`" keyword
  in
  let events = parse_side "events" in
  let users = parse_side "users" in
  let line, args = expect_header cur ~keyword:"conflicts" in
  let n_conflicts =
    match args with
    | [ n ] -> parse_int ~line n
    | _ -> fail ~line "expected `conflicts <count>`"
  in
  let n_events = Array.length events in
  let conflicts = Conflict.create ~n_events in
  for _ = 1 to n_conflicts do
    let line, l = next_line cur in
    match tokens l with
    | [ v; w ] ->
        let v = parse_int ~line v and w = parse_int ~line w in
        if v < 0 || v >= n_events then
          fail ~line "conflict event id %d out of range [0, %d)" v n_events;
        if w < 0 || w >= n_events then
          fail ~line "conflict event id %d out of range [0, %d)" w n_events;
        if v = w then fail ~line "event %d conflicts with itself" v;
        if Conflict.mem conflicts v w then
          fail ~line "duplicate conflict pair (%d, %d)" v w;
        Conflict.add conflicts v w
    | _ -> fail ~line "expected `<event> <event>`, got %S" l
  done;
  (match cur.rest with
  | [] -> ()
  | (line, l) :: _ -> fail ~line "trailing content: %S" l);
  try Instance.create ~sim ~events ~users ~conflicts ()
  with Invalid_argument msg -> fail ~line:0 "%s" msg

(* [io.truncate] and [io.corrupt] mangle the bytes after a successful read,
   simulating a half-written or bit-rotted file: the strict parser above
   must then fail with a precise error rather than build a bad instance. *)
let mangle text =
  let text =
    if Fault.fire "io.truncate" then String.sub text 0 (String.length text / 2)
    else text
  in
  if Fault.fire "io.corrupt" then
    match String.index_opt text '0' with
    | None -> text
    | Some i ->
        let b = Bytes.of_string text in
        Bytes.set b i 'x';
        Bytes.to_string b
  else text

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if Fault.active () then mangle text else text

let read_instance ~path = load_instance (read_file path)

let load_instance_result text =
  match load_instance text with
  | instance -> Ok instance
  | exception Parse_error { line; message } ->
      Error (Geacc_robust.Error.Parse_error { line; message })

let read_instance_result ~path =
  match read_file path with
  | exception Sys_error message ->
      Error (Geacc_robust.Error.Io_error { path; message })
  | text -> load_instance_result text

let save_pairs pairs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "geacc-matching 1\n";
  Buffer.add_string buf (Printf.sprintf "pairs %d\n" (List.length pairs));
  List.iter
    (fun (v, u) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" v u))
    pairs;
  Buffer.contents buf

let write_pairs ~path pairs = write_file path (save_pairs pairs)

let load_pairs text =
  let cur = { rest = significant_lines text } in
  (let line, l = next_line cur in
   match tokens l with
   | [ "geacc-matching"; "1" ] -> ()
   | _ -> fail ~line "expected `geacc-matching 1` header, got %S" l);
  let line, args = expect_header cur ~keyword:"pairs" in
  let count =
    match args with
    | [ n ] -> parse_int ~line n
    | _ -> fail ~line "expected `pairs <count>`"
  in
  let pairs =
    List.init count (fun _ ->
        let line, l = next_line cur in
        match tokens l with
        | [ v; u ] -> (parse_int ~line v, parse_int ~line u)
        | _ -> fail ~line "expected `<event> <user>`, got %S" l)
  in
  (match cur.rest with
  | [] -> ()
  | (line, l) :: _ -> fail ~line "trailing content: %S" l);
  pairs

let read_pairs ~path = load_pairs (read_file path)
