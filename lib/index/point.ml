type t = float array

let dim = Array.length

let[@inline] dist2 a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist a b = sqrt (dist2 a b)

let min_dist2_to_box q ~lo ~hi =
  let acc = ref 0. in
  for i = 0 to Array.length q - 1 do
    let d =
      if q.(i) < lo.(i) then lo.(i) -. q.(i)
      else if q.(i) > hi.(i) then q.(i) -. hi.(i)
      else 0.
    in
    acc := !acc +. (d *. d)
  done;
  !acc

let bounding_box points idxs ~lo ~hi =
  assert (Array.length idxs > 0);
  let d = Array.length lo in
  let first = points.(idxs.(0)) in
  Array.blit first 0 lo 0 d;
  Array.blit first 0 hi 0 d;
  Array.iter
    (fun i ->
      let p = points.(i) in
      for k = 0 to d - 1 do
        if p.(k) < lo.(k) then lo.(k) <- p.(k);
        if p.(k) > hi.(k) then hi.(k) <- p.(k)
      done)
    idxs

let equal a b = a = b

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list p)
