type t = float array

(* The coordinate loops index their arrays through [Geacc_unsafe] under
   stage-4 licences: each function's equal-length assert is the fact the
   @bounds proofs rest on. `--profile safe` compiles the same sites back
   to checked accesses. See DESIGN.md §13. *)
module A = Geacc_unsafe

let dim = Array.length

let[@inline] dist2 a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    (* bounds: proved — i < |a| = |b| (asserted above) *)
    let d = A.unsafe_get a i -. A.unsafe_get b i in
    acc := !acc +. (d *. d)
  done;
  !acc

let dist a b = sqrt (dist2 a b)

let min_dist2_to_box q ~lo ~hi =
  assert (Array.length lo = Array.length q && Array.length hi = Array.length q);
  let acc = ref 0. in
  for i = 0 to Array.length q - 1 do
    let d =
      (* bounds: proved — i < |q| = |lo| = |hi| (asserted above) *)
      if A.unsafe_get q i < A.unsafe_get lo i then
        (* bounds: proved — i < |lo| = |q| (asserted above) *)
        A.unsafe_get lo i -. A.unsafe_get q i
      (* bounds: proved — i < |q| = |hi| (asserted above) *)
      else if A.unsafe_get q i > A.unsafe_get hi i then
        (* bounds: proved — i < |q| = |hi| (asserted above) *)
        A.unsafe_get q i -. A.unsafe_get hi i
      else 0.
    in
    acc := !acc +. (d *. d)
  done;
  !acc

let bounding_box points idxs ~lo ~hi =
  assert (Array.length idxs > 0);
  let d = Array.length lo in
  assert (Array.length hi = d);
  let first = points.(idxs.(0)) in
  Array.blit first 0 lo 0 d;
  Array.blit first 0 hi 0 d;
  Array.iter
    (fun i ->
      let p = points.(i) in
      for k = 0 to d - 1 do
        (* bounds: proved — k < d = |lo| (asserted above); p.(k) stays checked *)
        if p.(k) < A.unsafe_get lo k then A.unsafe_set lo k p.(k);
        (* bounds: proved — k < d = |hi| (asserted above); p.(k) stays checked *)
        if p.(k) > A.unsafe_get hi k then A.unsafe_set hi k p.(k)
      done)
    idxs

let equal a b = a = b

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list p)
