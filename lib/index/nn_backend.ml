type stream = { get : int -> (int * float) option }

type index = {
  size : int;
  stream : query:Point.t -> max_dist:float -> stream;
}

type t = {
  name : string;
  build : Point.t array -> index;
}

let kd_tree =
  {
    name = "kd";
    build =
      (fun points ->
        let tree = Kd_tree.build points in
        {
          size = Array.length points;
          stream =
            (fun ~query ~max_dist ->
              let s =
                if Float.equal max_dist infinity then
                  Nn_stream.create tree query ()
                else Nn_stream.create tree query ~max_dist ()
              in
              { get = (fun rank -> Nn_stream.get s rank) });
        });
  }

let linear =
  {
    name = "linear";
    build =
      (fun points ->
        let idx = Linear_index.create points in
        {
          size = Array.length points;
          stream =
            (fun ~query ~max_dist ->
              (* One full sorted scan, computed lazily on first access. *)
              let sorted =
                lazy
                  (Linear_index.nearest_within idx query
                     ~k:(Array.length points) ~max_dist)
              in
              {
                get =
                  (fun rank ->
                    assert (rank >= 1);
                    let a = Lazy.force sorted in
                    if rank <= Array.length a then Some a.(rank - 1) else None);
              });
        });
  }

let va_file =
  {
    name = "vafile";
    build =
      (fun points ->
        let idx = Va_file.build points in
        {
          size = Va_file.size idx;
          stream =
            (fun ~query ~max_dist ->
              let s = Va_file.stream idx ~query ~max_dist in
              { get = (fun rank -> Va_file.get s rank) });
        });
  }

let i_distance =
  {
    name = "idistance";
    build =
      (fun points ->
        let idx = I_distance.build points in
        {
          size = I_distance.size idx;
          stream =
            (fun ~query ~max_dist ->
              let s = I_distance.stream idx ~query ~max_dist in
              { get = (fun rank -> I_distance.get s rank) });
        });
  }

let all = [ kd_tree; linear; va_file; i_distance ]

let of_string name =
  let name = String.lowercase_ascii name in
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown index backend %S (expected one of: %s)" name
           (String.concat ", " (List.map (fun b -> b.name) all)))
