module Pool = Geacc_par.Pool

(* The box-dimension walks index [lo]/[hi] through [Geacc_unsafe] under
   stage-4 licences: the equal-length asserts are the facts the @bounds
   proofs rest on. Point reads stay checked — their lengths are
   data-dependent. See DESIGN.md §13. *)
module A = Geacc_unsafe

type node = {
  lo : Point.t;
  hi : Point.t;
  kind : kind;
}

and kind =
  | Leaf of int array
  | Inner of node * node

type t = { points : Point.t array; root : node option }

let widest_dimension lo hi =
  assert (Array.length hi = Array.length lo);
  let best = ref 0 and spread = ref (hi.(0) -. lo.(0)) in
  for k = 1 to Array.length lo - 1 do
    (* bounds: proved — k < |lo| = |hi| (asserted above) *)
    let s = A.unsafe_get hi k -. A.unsafe_get lo k in
    if s > !spread then begin
      spread := s;
      best := k
    end
  done;
  !best

(* One comparator shared by the sequential build and the parallel
   skeleton, so the median split is bit-for-bit the same on both paths. *)
let sort_along points dim idxs =
  Array.sort (* construction phase — alloc: ok *)
    (fun i j ->
      let c = Float.compare points.(i).(dim) points.(j).(dim) in
      if c <> 0 then c else Int.compare i j)
    idxs

let rec build_node points leaf_size idxs =
  let d = Array.length points.(idxs.(0)) in
  (* Construction phase: per-node boxes are the point. alloc: ok *)
  let lo = Array.make d 0. and hi = Array.make d 0. in
  Point.bounding_box points idxs ~lo ~hi;
  (* Construction phase: one node per subtree is the point. alloc: ok *)
  if Array.length idxs <= leaf_size then { lo; hi; kind = Leaf idxs }
  else begin
    let dim = widest_dimension lo hi in
    sort_along points dim idxs;
    let mid = Array.length idxs / 2 in
    (* Construction phase: index slices per subtree. alloc: ok *)
    let left = build_node points leaf_size (Array.sub idxs 0 mid) in
    let right =
      build_node points leaf_size
        (Array.sub idxs mid (Array.length idxs - mid))
    in
    (* Construction phase: one node per subtree is the point. alloc: ok *)
    { lo; hi; kind = Inner (left, right) }
  end

(* Parallel bulk build: the top of the tree (the "skeleton") is split
   sequentially with the exact median-split of [build_node]; once a subtree
   falls below the fork cutoff it becomes a task, and the tasks — each an
   ordinary sequential [build_node] over its own index slice — run across
   the domain pool. Because every node's box, split dimension and median
   are pure functions of its index slice, the finished tree is structurally
   identical for every job count. *)
type skeleton =
  | S_task of int
  | S_inner of { lo : Point.t; hi : Point.t; left : skeleton; right : skeleton }

let build_root_parallel points leaf_size idxs ~jobs =
  let tasks = ref [] and n_tasks = ref 0 in
  (* Fork subtree tasks above this size; below it, forking overhead beats
     the work. The cutoff does not influence the resulting tree. *)
  let cutoff = Stdlib.max leaf_size 512 in
  let rec skeleton idxs =
    if Array.length idxs <= cutoff then begin
      let slot = !n_tasks in
      incr n_tasks;
      (* Construction phase: task list cell per fork. alloc: ok *)
      tasks := (slot, idxs) :: !tasks;
      S_task slot (* one leaf marker per fork — alloc: ok *)
    end
    else begin
      let d = Array.length points.(idxs.(0)) in
      (* Construction phase: per-node boxes are the point. alloc: ok *)
      let lo = Array.make d 0. and hi = Array.make d 0. in
      Point.bounding_box points idxs ~lo ~hi;
      let dim = widest_dimension lo hi in
      sort_along points dim idxs;
      let mid = Array.length idxs / 2 in
      (* Construction phase: index slices per subtree. alloc: ok *)
      let left = skeleton (Array.sub idxs 0 mid) in
      let right = skeleton (Array.sub idxs mid (Array.length idxs - mid)) in
      (* Construction phase: one skeleton node per fork point. alloc: ok *)
      S_inner { lo; hi; left; right }
    end
  in
  let sk = skeleton idxs in
  let slices = Array.make !n_tasks [||] in
  List.iter (fun (slot, slice) -> slices.(slot) <- slice) !tasks;
  let built = Array.make !n_tasks None in
  Pool.parallel_for ~jobs ~n:!n_tasks (fun t ->
      (* One subtree per task is the work itself. alloc: ok *)
      built.(t) <- Some (build_node points leaf_size slices.(t)));
  let rec fill = function
    | S_task t ->
        (* parallel_for filled every slot before returning — lint: ok *)
        (match built.(t) with Some n -> n | None -> assert false)
    | S_inner { lo; hi; left; right } ->
        (* Construction phase: one node per fork point. alloc: ok *)
        { lo; hi; kind = Inner (fill left, fill right) }
  in
  fill sk

let build ?(leaf_size = 16) ?jobs points =
  assert (leaf_size >= 1);
  if Array.length points = 0 then { points; root = None }
  else begin
    let d = Array.length points.(0) in
    Array.iter (fun p -> assert (Array.length p = d)) points;
    let n = Array.length points in
    let idxs = Array.init n (fun i -> i) in
    let jobs = Pool.resolve_jobs ?jobs () in
    let root =
      (* Below ~2 fork cutoffs there is nothing to fork. *)
      if jobs = 1 || n <= 2 * Stdlib.max leaf_size 512 then
        build_node points leaf_size idxs
      else build_root_parallel points leaf_size idxs ~jobs
    in
    { points; root = Some root }
  end

(* Structural fingerprint for the determinism tests: hex floats and leaf
   index lists make byte-identical claims checkable as string equality. *)
let dump t =
  let b = Buffer.create 1024 in
  let box p =
    Array.iter (fun x -> Buffer.add_string b (Printf.sprintf "%h;" x)) p
  in
  let rec node n =
    Buffer.add_char b '[';
    box n.lo;
    Buffer.add_char b '|';
    box n.hi;
    Buffer.add_char b ']';
    match n.kind with
    | Leaf idxs ->
        Buffer.add_string b "L(";
        (* Debug/test-only rendering, never on a solver path. alloc: ok *)
        Array.iter (fun i -> Buffer.add_string b (Printf.sprintf "%d," i)) idxs;
        Buffer.add_char b ')'
    | Inner (l, r) ->
        Buffer.add_string b "I(";
        node l;
        Buffer.add_char b ',';
        node r;
        Buffer.add_char b ')'
  in
  (match t.root with None -> Buffer.add_string b "empty" | Some r -> node r);
  Buffer.contents b

let size t = Array.length t.points
let point t i = t.points.(i)

(* Frontier entries are keyed by squared distance. At equal keys, nodes come
   before points (so every point at that distance has been enqueued before
   any is returned) and points tie-break by index — this matches
   Linear_index's (distance, index) order exactly. *)
type entry = { key : float; payload : payload }
and payload = Node of node | Pt of int

let entry_cmp e1 e2 =
  let c = Float.compare e1.key e2.key in
  if c <> 0 then c
  else
    match (e1.payload, e2.payload) with
    | Node _, Pt _ -> -1
    | Pt _, Node _ -> 1
    | Node _, Node _ -> 0
    | Pt i, Pt j -> Int.compare i j

module Heap = Geacc_pqueue.Binary_heap

type cursor = {
  tree : t;
  query : Point.t;
  max_dist2 : float;
  frontier : entry Heap.t;
  mutable yielded : int;
  mutable work : int;  (* frontier operations: a proxy for search effort *)
}

let[@inline] push_node c node =
  let key = Point.min_dist2_to_box c.query ~lo:node.lo ~hi:node.hi in
  c.work <- c.work + 1;
  if key < c.max_dist2 then Heap.push c.frontier { key; payload = Node node }

let cursor t query ?(max_dist = infinity) () =
  let c =
    {
      tree = t;
      query;
      max_dist2 =
        (if Float.equal max_dist infinity then infinity
         else max_dist *. max_dist);
      frontier = Heap.create ~cmp:entry_cmp ();
      yielded = 0;
      work = 0;
    }
  in
  (match t.root with None -> () | Some root -> push_node c root);
  c

let rec next c =
  match Heap.pop c.frontier with
  | None -> None
  | Some { key; payload } ->
      if key >= c.max_dist2 then None
      else begin
        match payload with
        | Pt i ->
            c.yielded <- c.yielded + 1;
            (* The yielded (index, distance) pair is the API. alloc: ok *)
            Some (i, sqrt key)
        | Node { kind = Inner (l, r); _ } ->
            push_node c l;
            push_node c r;
            next c
        | Node { kind = Leaf idxs; _ } ->
            c.work <- c.work + Array.length idxs;
            Array.iter (* captures the cursor — alloc: ok *)
              (fun i ->
                let d2 = Point.dist2 c.query c.tree.points.(i) in
                if d2 < c.max_dist2 then (* frontier entry — alloc: ok *)
                  Heap.push c.frontier { key = d2; payload = Pt i })
              idxs;
            next c
      end

let returned c = c.yielded
let work c = c.work

let nearest t q ~k =
  assert (k >= 0);
  let c = cursor t q () in
  let rec take acc n =
    if n = 0 then List.rev acc
    (* Materialising the k results is the point. alloc: ok *)
    else match next c with None -> List.rev acc | Some x -> take (x :: acc) (n - 1)
  in
  Array.of_list (take [] k)
