(** kd-tree with incremental (best-first) nearest-neighbour enumeration.

    The tree stores axis-aligned bounding boxes per node; a {!cursor}
    implements Hjaltason–Samet distance browsing: a priority queue over
    nodes (keyed by box distance) and points (keyed by true distance) yields
    neighbours one at a time in ascending distance without computing all of
    them. This plays the role of the iDistance / VA-File index in the paper:
    Greedy-GEACC's "next feasible unvisited NN" is one {!next} call (plus
    feasibility filtering by the caller).

    Ties in distance are broken by point index, matching
    {!Linear_index}. *)

type t

val build : ?leaf_size:int -> ?jobs:int -> Point.t array -> t
(** Builds over the (not copied) array; O(n log² n). [leaf_size] is the
    bucket size at leaves (default 16; must be >= 1). All points must share
    one dimension.

    [jobs] (default {!Geacc_par.Pool.default_jobs}) parallelises the bulk
    build: the top of the tree is split sequentially with the usual median
    split, and subtrees below a fork cutoff are built concurrently on the
    domain pool. Every node's bounding box, split dimension and median are
    functions of its index slice alone, so the resulting tree — and every
    traversal of it — is byte-identical for any job count. *)

val dump : t -> string
(** Structural fingerprint: a DFS rendering with hex-float boxes and leaf
    index lists. Two trees over the same points are structurally identical
    iff their dumps are equal — the determinism tests compare these across
    job counts. *)

val size : t -> int
val point : t -> int -> Point.t

val nearest : t -> Point.t -> k:int -> (int * float) array
(** Up to [k] (index, distance) pairs in ascending (distance, index) order. *)

type cursor
(** A stateful enumeration of neighbours of one query point. *)

val cursor : t -> Point.t -> ?max_dist:float -> unit -> cursor
(** Neighbours of the query in ascending distance; enumeration stops (yields
    [None]) once distance >= [max_dist] (default [infinity]). *)

val next : cursor -> (int * float) option
(** The next-nearest not-yet-returned point, or [None] when exhausted. *)

val returned : cursor -> int
(** How many points this cursor has yielded so far. *)

val work : cursor -> int
(** Frontier operations performed so far — a proxy for search effort.
    When this exceeds a small multiple of {!size}, best-first search has
    degenerated (typical in high dimension) and a linear scan would have
    been cheaper; {!Nn_stream} uses this signal to switch regimes. *)
