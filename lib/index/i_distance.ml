type partition = {
  reference : Point.t;
  dists : float array;  (* ascending distance to the reference *)
  ids : int array;      (* parallel point ids *)
}

type t = {
  points : Point.t array;
  partitions : partition array;
}

(* Deterministic farthest-point sampling: start from point 0, repeatedly
   take the point farthest from the chosen set. Gives well-spread
   references without randomness. *)
let choose_references points k =
  let n = Array.length points in
  let refs = Array.make k 0 in
  let closest = Array.make n infinity in
  let update c =
    for i = 0 to n - 1 do
      let d = Point.dist2 points.(i) points.(c) in
      if d < closest.(i) then closest.(i) <- d
    done
  in
  refs.(0) <- 0;
  update 0;
  for r = 1 to k - 1 do
    let best = ref 0 in
    for i = 1 to n - 1 do
      if closest.(i) > closest.(!best) then best := i
    done;
    refs.(r) <- !best;
    update !best
  done;
  refs

let build ?n_references points =
  let n = Array.length points in
  if n = 0 then { points; partitions = [||] }
  else begin
    let k =
      match n_references with
      | Some k ->
          if k < 1 then invalid_arg "I_distance.build: n_references < 1";
          Stdlib.min k n
      | None ->
          Stdlib.max 1 (Stdlib.min 64 (int_of_float (sqrt (float_of_int n))))
    in
    let ref_ids = choose_references points k in
    let references = Array.map (fun i -> points.(i)) ref_ids in
    (* Assign each point to its nearest reference (ties to the first). *)
    let members = Array.make k [] in
    Array.iteri
      (fun i p ->
        let best = ref 0 and best_d = ref infinity in
        Array.iteri
          (fun r reference ->
            let d = Point.dist2 p reference in
            if d < !best_d then begin
              best_d := d;
              best := r
            end)
          references;
        members.(!best) <- (sqrt !best_d, i) :: members.(!best))
      points;
    let partitions =
      Array.map2
        (fun reference member_list ->
          let sorted =
            List.sort
              (fun (d1, i1) (d2, i2) ->
                let c = Float.compare d1 d2 in
                if c <> 0 then c else Int.compare i1 i2)
              member_list
          in
          {
            reference;
            dists = Array.of_list (List.map fst sorted);
            ids = Array.of_list (List.map snd sorted);
          })
        references members
    in
    { points; partitions }
  end

let size t = Array.length t.points
let n_references t = Array.length t.partitions

module Heap = Geacc_pqueue.Binary_heap

type candidate = { dist : float; id : int }

let candidate_cmp c1 c2 =
  let c = Float.compare c1.dist c2.dist in
  if c <> 0 then c else Int.compare c1.id c2.id

(* Per-partition annulus cursor: [left, right) is the explored range of the
   partition's distance-sorted array around the query's key dq. *)
type annulus = { dq : float; mutable left : int; mutable right : int }

type stream = {
  index : t;
  query : Point.t;
  max_dist : float;
  annuli : annulus array;
  candidates : candidate Heap.t;
  mutable radius : float;
  mutable emitted_ids : int array;
  mutable emitted_dists : float array;
  mutable emitted : int;
  mutable evaluations : int;
}

(* Positions with |dist - dq| <= r, i.e. dist in [dq - r, dq + r]. *)
let lowest_in_range dists target =
  (* Smallest index with dists.(i) >= target. *)
  let lo = ref 0 and hi = ref (Array.length dists) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if dists.(mid) >= target then hi := mid else lo := mid + 1
  done;
  !lo

let stream t ~query ~max_dist =
  let annuli =
    Array.map
      (fun p ->
        let dq = Point.dist query p.reference in
        let start = lowest_in_range p.dists dq in
        { dq; left = start; right = start })
      t.partitions
  in
  {
    index = t;
    query;
    max_dist;
    annuli;
    candidates = Heap.create ~cmp:candidate_cmp ();
    radius = 0.;
    emitted_ids = [||];
    emitted_dists = [||];
    emitted = 0;
    evaluations = 0;
  }

let record s id dist =
  if s.emitted = Array.length s.emitted_ids then begin
    let capacity = Stdlib.max 8 (2 * s.emitted) in
    let ids = Array.make capacity 0 and dists = Array.make capacity 0. in
    Array.blit s.emitted_ids 0 ids 0 s.emitted;
    Array.blit s.emitted_dists 0 dists 0 s.emitted;
    s.emitted_ids <- ids;
    s.emitted_dists <- dists
  end;
  s.emitted_ids.(s.emitted) <- id;
  s.emitted_dists.(s.emitted) <- dist;
  s.emitted <- s.emitted + 1

let evaluate s id =
  s.evaluations <- s.evaluations + 1;
  Point.dist s.query s.index.points.(id)

(* Pull every not-yet-explored entry whose annulus key falls within the
   current radius into the candidate heap. *)
let expand s =
  Array.iteri
    (fun r a ->
      let p = s.index.partitions.(r) in
      let n = Array.length p.dists in
      while a.left > 0 && p.dists.(a.left - 1) >= a.dq -. s.radius do
        a.left <- a.left - 1;
        let d = evaluate s p.ids.(a.left) in
        if d < s.max_dist then Heap.push s.candidates { dist = d; id = p.ids.(a.left) }
      done;
      while a.right < n && p.dists.(a.right) <= a.dq +. s.radius do
        let d = evaluate s p.ids.(a.right) in
        if d < s.max_dist then Heap.push s.candidates { dist = d; id = p.ids.(a.right) };
        a.right <- a.right + 1
      done)
    s.annuli

let fully_explored s =
  Array.for_all
    (fun (a : annulus) -> a.left = 0)
    s.annuli
  && Array.for_all2
       (fun (a : annulus) p -> a.right = Array.length p.dists)
       s.annuli s.index.partitions

(* A sensible first radius: the exact distance of some nearby probe point
   (one per partition boundary), so the first expansion is guaranteed to
   capture at least one emittable candidate. *)
let initial_radius s =
  let best = ref infinity in
  Array.iteri
    (fun r a ->
      let p = s.index.partitions.(r) in
      let n = Array.length p.dists in
      let probe pos =
        if pos >= 0 && pos < n then begin
          let d = evaluate s p.ids.(pos) in
          if d < !best then best := d
        end
      in
      probe (a.left - 1);
      probe a.right)
    s.annuli;
  if Float.equal !best infinity then 0. else !best

let produce s =
  if Float.equal s.radius 0. && Heap.is_empty s.candidates then begin
    let r0 = initial_radius s in
    s.radius <- Stdlib.max r0 1e-12;
    expand s
  end;
  let rec emit () =
    match Heap.peek s.candidates with
    | Some { dist; id } when dist <= s.radius || fully_explored s ->
        let (_ : candidate) = Heap.pop_exn s.candidates in
        record s id dist;
        true
    | Some _ | None ->
        if fully_explored s then false
        else if Heap.is_empty s.candidates && s.radius >= s.max_dist then
          (* Every unexplored point is farther than the radius, hence past
             the cutoff: nothing left to emit. *)
          false
        else begin
          s.radius <- s.radius *. 2.;
          expand s;
          emit ()
        end
  in
  emit ()

let rec get s rank =
  assert (rank >= 1);
  if rank <= s.emitted then
    Some (s.emitted_ids.(rank - 1), s.emitted_dists.(rank - 1))
  else if produce s then get s rank
  else None

let evaluations s = s.evaluations
