(** Deterministic domain-pool parallelism (stdlib-only: [Domain] + [Mutex] +
    [Condition]).

    A fixed-size, reusable pool of worker domains behind three data-parallel
    combinators. The design goal is {e determinism first}: for any job
    count, every combinator produces byte-identical results (and raises the
    same exception) as the sequential run, so [--jobs] can never change a
    solver's output — only its wall-clock time. Concretely:

    - {b Static chunking.} An [n]-element range is split into contiguous
      chunks ([chunk c] covers [c*n/k .. (c+1)*n/k - 1]). There is no work
      stealing and no dynamic splitting: which indices land in which chunk
      is a pure function of [(n, k)], never of timing.
    - {b Chunk-ordered merging.} {!parallel_map_chunked} returns chunk
      results in chunk-index order; {!parallel_reduce} combines partial
      accumulators left-to-right in chunk-index order over a chunking that
      depends only on [n] (not on the job count), so even non-associative
      floating-point reductions are byte-identical for every [jobs] value.
    - {b Deterministic exceptions.} Every chunk runs to completion (or to
      its own exception); the exception of the {e lowest-indexed} failing
      chunk is re-raised with its original backtrace, regardless of which
      domain ran it or which failed first in real time.
    - {b jobs = 1 is exactly sequential.} No domain is ever spawned, no
      mutex is taken; the combinators degenerate to plain loops.

    {2 Job-count resolution}

    Every combinator takes [?jobs]. When omitted, the count comes from
    {!default_jobs}: a process-wide override ({!set_default_jobs},
    {!with_jobs}) if installed, else the [GEACC_JOBS] environment variable,
    else 1. Malformed or non-positive [GEACC_JOBS] reads as 1; values are
    clamped to {!max_jobs}.

    {2 Nesting}

    Parallel regions do not nest: worker domains are a single flat pool.
    A combinator called {e from inside} a running chunk body behaves as
    follows:
    - with [?jobs] omitted (ambient parallelism), it degrades to the
      sequential path — outer-level parallelism composes with inner-level
      parallelism by turning the inner level off, deterministically;
    - with an explicit [~jobs] greater than 1, it raises [Invalid_argument]
      ("nested parallel region") — an explicit demand for parallelism that
      cannot be granted is a programming error, not a silent degradation.

    {2 Lifecycle}

    The pool is created lazily on the first region with an effective job
    count above 1, grows to the largest requested size, and is reused by
    every later region (domains block on a condition variable between
    regions). An [at_exit] hook shuts the workers down so the process never
    exits with domains parked on the queue.

    {2 Chunk-body contract (statically enforced)}

    The determinism guarantee holds only if chunk bodies write nothing but
    state owned by their own index/chunk and observe no ambient
    nondeterminism (global [Random] state, domain identity, clocks,
    std-channel output, hashtable iteration order, physical equality on
    boxed values). [geacc_effects] ([dune build @effects]) checks both
    obligations interprocedurally at every call site of the three
    combinators — rules [par-shared-write] and [par-nondet]; see
    DESIGN.md §12. *)

val max_jobs : int
(** Upper clamp on every job count (64). *)

val default_jobs : unit -> int
(** The ambient job count: the {!set_default_jobs} override if installed,
    else [GEACC_JOBS], else 1. Always in [1 .. max_jobs]. *)

val set_default_jobs : int -> unit
(** Installs a process-wide override of the ambient job count (clamped to
    [max_jobs]). @raise Invalid_argument when the argument is < 1. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs j f] runs [f] with the ambient job count overridden to [j],
    restoring the previous override afterwards (exception-safe). *)

val resolve_jobs : ?jobs:int -> unit -> int
(** The effective job count a combinator would use: [jobs] if given (see
    {e Nesting} above for calls inside a running region), else
    {!default_jobs} — or 1 when called inside a running region.
    @raise Invalid_argument on explicit [jobs < 1], or explicit [jobs > 1]
    inside a running region. *)

val parallel_for : ?jobs:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~n f] runs [f i] for every [i] in [0 .. n-1], split into
    [min jobs n] static chunks; within a chunk, indices run in ascending
    order. The body must only write state owned by its own index (or
    chunk); completion of the region establishes a happens-before edge, so
    the caller reads all writes made by every chunk. [n = 0] is a no-op. *)

val parallel_map_chunked :
  ?jobs:int -> n:int -> (lo:int -> hi:int -> 'a) -> 'a array
(** [parallel_map_chunked ~n f] computes [f ~lo ~hi] once per static chunk
    ([lo] inclusive, [hi] exclusive) and returns the results in chunk-index
    order. Chunks are contiguous, disjoint, ascending and cover exactly
    [0 .. n-1], so a concatenation-style merge of the results is
    byte-identical for every job count. Returns [[||]] when [n = 0]. *)

val parallel_reduce :
  ?jobs:int ->
  ?chunk:int ->
  n:int ->
  init:'a ->
  fold:('a -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** [parallel_reduce ~n ~init ~fold ~combine ()] folds every chunk from
    [init] over its indices in ascending order, then combines the chunk
    accumulators left-to-right (in chunk-index order) starting from [init].
    The chunking is [ceil (n / chunk)] fixed-size chunks ([chunk] defaults
    to 1024) — a function of [n] only, {e not} of the job count — so the
    result is byte-identical for every [jobs] value even when [combine] is
    not associative (floating-point sums). [init] must be a neutral element
    of [combine]. Returns [init] when [n = 0]. *)

val in_region : unit -> bool
(** [true] while the calling domain is executing a chunk body of a running
    parallel region (workers and the caller's own chunk alike). *)

val shutdown : unit -> unit
(** Joins and discards all pooled worker domains. The pool respawns lazily
    on the next parallel region, so this is safe to call between regions —
    it exists for the [at_exit] hook and for tests. *)
