(* Fixed-size reusable domain pool with deterministic static chunking.
   See pool.mli for the determinism contract; the short version is that
   every observable result — chunk boundaries, merge order, which exception
   wins — is a pure function of (n, jobs), never of scheduling. *)

let max_jobs = 64

let clamp_jobs j =
  if j < 1 then invalid_arg "Pool: jobs must be >= 1"
  else Stdlib.min j max_jobs

(* GEACC_JOBS is read once, lazily; malformed values read as 1 (the CLI
   front ends validate loudly, the library stays total). *)
let env_jobs =
  lazy
    (match Sys.getenv_opt "GEACC_JOBS" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> Stdlib.min j max_jobs
        | Some _ | None -> 1))

let override : int option ref = ref None

let set_default_jobs j = override := Some (clamp_jobs j)

let default_jobs () =
  match !override with Some j -> j | None -> Lazy.force env_jobs

let with_jobs j f =
  let saved = !override in
  set_default_jobs j;
  Fun.protect ~finally:(fun () -> override := saved) f

(* Each domain knows whether it is currently executing a chunk body; the
   flag drives nested-region resolution (mli §Nesting). *)
let in_region_key = Domain.DLS.new_key (fun () -> ref false)

let in_region () = !(Domain.DLS.get in_region_key)

let resolve_jobs ?jobs () =
  match jobs with
  | Some j ->
      let j = clamp_jobs j in
      if j > 1 && in_region () then
        invalid_arg "Pool: nested parallel region (explicit ~jobs > 1 inside a chunk body)"
      else j
  | None -> if in_region () then 1 else default_jobs ()

(* ---------- the worker pool ---------- *)

type task = unit -> unit

type pool = {
  m : Mutex.t;
  work : Condition.t; (* workers sleep here between regions *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable size : int;
  mutable exit_hooked : bool;
}

let pool =
  {
    m = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    stop = false;
    domains = [];
    size = 0;
    exit_hooked = false;
  }

let worker () =
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.m
    done;
    if Queue.is_empty pool.queue then begin
      (* stop requested and no work left *)
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.m;
      task ()
    end
  done

let shutdown () =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  let domains = pool.domains in
  pool.domains <- [];
  pool.size <- 0;
  Mutex.unlock pool.m;
  List.iter Domain.join domains;
  (* Leave the pool reusable: the next region respawns workers. *)
  Mutex.lock pool.m;
  pool.stop <- false;
  Mutex.unlock pool.m

(* Grow the pool to at least [n] workers. Called from region setup only
   (never from inside a region), under the pool mutex. *)
let ensure_workers n =
  Mutex.lock pool.m;
  if not pool.exit_hooked then begin
    pool.exit_hooked <- true;
    at_exit shutdown
  end;
  while pool.size < n do
    (* Pool growth happens once per process, not per region. alloc: ok *)
    pool.domains <- Domain.spawn worker :: pool.domains;
    pool.size <- pool.size + 1
  done;
  Mutex.unlock pool.m

(* ---------- regions ---------- *)

type region = {
  rm : Mutex.t;
  finished : Condition.t;
  mutable pending : int;
  (* (chunk index, exception, backtrace) of every failed chunk *)
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
}

(* One closure per chunk is the region protocol itself, not a per-element
   cost; the task sets the executing domain's in-region flag around the
   body so nested combinators resolve per the mli. *)
let make_task region chunk idx () =
  let flag = Domain.DLS.get in_region_key in
  flag := true;
  (try chunk idx
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock region.rm;
     region.failures <- (idx, e, bt) :: region.failures;
     Mutex.unlock region.rm);
  flag := false;
  Mutex.lock region.rm;
  region.pending <- region.pending - 1;
  if region.pending = 0 then Condition.signal region.finished;
  Mutex.unlock region.rm

(* The caller drains the shared queue alongside the workers (regions never
   overlap, so everything in the queue belongs to this region), then blocks
   until the last straggler finishes. *)
let rec drain_queue () =
  Mutex.lock pool.m;
  if Queue.is_empty pool.queue then Mutex.unlock pool.m
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.m;
    task ();
    drain_queue ()
  end

let run_region ~workers ~n_chunks chunk =
  ensure_workers workers;
  let region =
    {
      rm = Mutex.create ();
      finished = Condition.create ();
      pending = n_chunks;
      failures = [];
    }
  in
  Mutex.lock pool.m;
  for idx = 0 to n_chunks - 1 do
    (* alloc: ok — one task closure per chunk is the region protocol *)
    Queue.add (make_task region chunk idx) pool.queue
  done;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  drain_queue ();
  Mutex.lock region.rm;
  while region.pending > 0 do
    Condition.wait region.finished region.rm
  done;
  let failures = region.failures in
  Mutex.unlock region.rm;
  (* Deterministic exception choice: the lowest-indexed failing chunk wins,
     regardless of real-time completion order. *)
  match
    List.sort (fun (i, _, _) (j, _, _) -> Int.compare i j) failures
  with
  | [] -> ()
  | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt

(* ---------- combinators ---------- *)

let[@inline] chunk_bounds ~n ~k c = (c * n / k, (c + 1) * n / k)

let parallel_for ?jobs ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative n";
  let k = Stdlib.min (resolve_jobs ?jobs ()) n in
  if k <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else
    run_region ~workers:(k - 1) ~n_chunks:k (fun c ->
        let lo, hi = chunk_bounds ~n ~k c in
        for i = lo to hi - 1 do
          f i
        done)

let parallel_map_chunked ?jobs ~n f =
  if n < 0 then invalid_arg "Pool.parallel_map_chunked: negative n";
  if n = 0 then [||]
  else begin
    let k = Stdlib.min (resolve_jobs ?jobs ()) n in
    if k <= 1 then [| f ~lo:0 ~hi:n |]
    else begin
      let results = Array.make k None in
      run_region ~workers:(k - 1) ~n_chunks:k (fun c ->
          let lo, hi = chunk_bounds ~n ~k c in
          results.(c) <- Some (f ~lo ~hi));
      Array.map
        (* run_region returns only after every chunk ran — lint: ok *)
        (function Some x -> x | None -> assert false)
        results
    end
  end

let parallel_reduce ?jobs ?(chunk = 1024) ~n ~init ~fold ~combine () =
  if n < 0 then invalid_arg "Pool.parallel_reduce: negative n";
  if chunk < 1 then invalid_arg "Pool.parallel_reduce: chunk must be >= 1";
  if n = 0 then init
  else begin
    (* The chunking depends on n only, so partial-accumulator boundaries —
       and therefore float rounding — match for every job count. *)
    let n_chunks = (n + chunk - 1) / chunk in
    let fold_range lo hi =
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := fold !acc i
      done;
      !acc
    in
    let k = Stdlib.min (resolve_jobs ?jobs ()) n_chunks in
    let partials =
      if k <= 1 then
        Array.init n_chunks (fun c ->
            fold_range (c * chunk) (Stdlib.min n ((c + 1) * chunk)))
      else begin
        let results = Array.make n_chunks None in
        run_region ~workers:(k - 1) ~n_chunks (fun c ->
            results.(c) <-
              Some (fold_range (c * chunk) (Stdlib.min n ((c + 1) * chunk))));
        Array.map
          (* run_region returns only after every chunk ran — lint: ok *)
          (function Some x -> x | None -> assert false)
          results
      end
    in
    Array.fold_left combine init partials
  end
