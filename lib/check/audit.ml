exception Violation of { site : string; detail : string }

let () =
  Printexc.register_printer (function
    | Violation { site; detail } ->
        Some (Printf.sprintf "Audit.Violation at %s: %s" site detail)
    | _ -> None)

let state =
  ref
    (match Sys.getenv_opt "GEACC_AUDIT" with
    | None | Some ("" | "0" | "false") -> false
    | Some _ -> true)

let enabled () = !state
let set_enabled b = state := b

let with_enabled b f =
  let saved = !state in
  state := b;
  Fun.protect ~finally:(fun () -> state := saved) f

let violation_count = ref 0

let violations () = !violation_count

let fail ~site detail =
  incr violation_count;
  raise (Violation { site; detail })

let failf ~site fmt = Printf.ksprintf (fail ~site) fmt

module Flow = struct
  module G = Geacc_flow.Graph

  let check_capacity ~site g =
    let m = G.arc_count g in
    let a = ref 0 in
    while !a < m do
      let fwd = !a and bwd = !a + 1 in
      let r_fwd = G.residual_capacity g fwd
      and r_bwd = G.residual_capacity g bwd in
      if r_fwd < 0 then
        failf ~site "arc %d has negative residual capacity %d" fwd r_fwd;
      if r_bwd < 0 then
        failf ~site "residual arc %d has negative capacity %d" bwd r_bwd;
      let total = G.initial_capacity g fwd + G.initial_capacity g bwd in
      if r_fwd + r_bwd <> total then
        failf ~site
          "arc pair %d/%d leaks capacity: residual %d + %d <> initial %d" fwd
          bwd r_fwd r_bwd total;
      let fl = G.flow g fwd in
      if fl < 0 || fl > G.initial_capacity g fwd then
        failf ~site "arc %d carries flow %d outside [0, %d]" fwd fl
          (G.initial_capacity g fwd);
      a := !a + 2
    done

  let check_conservation ~site g ~source ~sink =
    let n = G.node_count g in
    let net = Array.make n 0 in
    G.fold_forward_arcs g ~init:() ~f:(fun () a ->
        let fl = G.flow g a in
        net.(G.dst g a) <- net.(G.dst g a) + fl;
        net.(G.src g a) <- net.(G.src g a) - fl);
    for v = 0 to n - 1 do
      if v <> source && v <> sink && net.(v) <> 0 then
        failf ~site "node %d violates conservation: net inflow %d" v net.(v)
    done;
    if source < n && sink < n && net.(source) + net.(sink) <> 0 then
      failf ~site "source deficit %d does not match sink excess %d"
        (-net.(source)) net.(sink)

  let check_csr ~site g =
    if not (G.csr_valid g) then
      fail ~site "CSR form is stale (arcs added since finalize_csr)";
    let n = G.node_count g and m = G.arc_count g in
    (* Offsets: monotone, starting at 0, covering exactly the arc store. *)
    if n > 0 && G.out_begin g 0 <> 0 then
      failf ~site "CSR offset of node 0 is %d, expected 0" (G.out_begin g 0);
    for v = 0 to n - 1 do
      if G.out_end g v < G.out_begin g v then
        failf ~site "CSR offsets of node %d decrease: [%d, %d)" v
          (G.out_begin g v) (G.out_end g v);
      if v < n - 1 && G.out_end g v <> G.out_begin g (v + 1) then
        failf ~site "CSR offsets leave a gap after node %d: %d <> %d" v
          (G.out_end g v)
          (G.out_begin g (v + 1))
    done;
    if n > 0 && G.out_end g (n - 1) <> m then
      failf ~site "CSR offsets cover %d positions, expected %d arcs"
        (G.out_end g (n - 1))
        m;
    (* Positions: a permutation of the arc ids, each agreeing with the arc
       store on src/dst/cost, with the positional residual capacity
       mirroring the arc-indexed one. *)
    let seen = Array.make (Stdlib.max m 1) false in
    for v = 0 to n - 1 do
      for p = G.out_begin g v to G.out_end g v - 1 do
        let a = G.pos_arc g p in
        if a < 0 || a >= m then
          failf ~site "CSR position %d stores invalid arc id %d" p a;
        if seen.(a) then
          failf ~site "arc %d appears at two CSR positions" a;
        seen.(a) <- true;
        if G.arc_position g a <> p then
          failf ~site "arc %d maps to position %d, stored at %d" a
            (G.arc_position g a) p;
        if G.src g a <> v then
          failf ~site "CSR position %d (node %d) stores arc %d of node %d" p
            v a (G.src g a);
        if G.pos_dst g p <> G.dst g a then
          failf ~site "CSR position %d: dst %d <> arc %d's dst %d" p
            (G.pos_dst g p) a (G.dst g a);
        if
          Int64.bits_of_float (G.pos_cost g p)
          <> Int64.bits_of_float (G.cost g a)
        then
          failf ~site "CSR position %d: cost %h <> arc %d's cost %h" p
            (G.pos_cost g p) a (G.cost g a);
        if G.pos_icost g p <> G.icost g a then
          failf ~site "CSR position %d: icost %d <> arc %d's icost %d" p
            (G.pos_icost g p) a (G.icost g a);
        if G.pos_residual_capacity g p <> G.residual_capacity g a then
          failf ~site
            "CSR position %d: residual capacity %d out of sync with arc %d \
             (%d)"
            p
            (G.pos_residual_capacity g p)
            a
            (G.residual_capacity g a)
      done
    done

  let slack = 1e-6

  let check_reduced_costs ~site g ~potential =
    let m = G.arc_count g in
    for a = 0 to m - 1 do
      if G.residual_capacity g a > 0 then begin
        let rc =
          G.cost g a +. potential.(G.src g a) -. potential.(G.dst g a)
        in
        if rc < -.slack then
          failf ~site "arc %d (%d -> %d) has negative reduced cost %.9f" a
            (G.src g a) (G.dst g a) rc
      end
    done

  (* Integer twin: the quantised potentials telescope exactly, so there is
     no slack — any negative integer reduced cost is a bug. *)
  let check_reduced_costs_int ~site g ~potential =
    let m = G.arc_count g in
    for a = 0 to m - 1 do
      if G.residual_capacity g a > 0 then begin
        let rc =
          G.icost g a + potential.(G.src g a) - potential.(G.dst g a)
        in
        if rc < 0 then
          failf ~site "arc %d (%d -> %d) has negative integer reduced cost %d"
            a (G.src g a) (G.dst g a) rc
      end
    done
end

module Heap = struct
  let check_binary ~site h =
    if not (Geacc_pqueue.Binary_heap.check_invariant h) then
      fail ~site "binary heap order violated"

  let check_pairing ~site h =
    if not (Geacc_pqueue.Pairing_heap.check_invariant h) then
      fail ~site "pairing heap order or size violated"

  let check_float_int ~site h =
    if not (Geacc_pqueue.Float_int_heap.check_invariant h) then
      fail ~site "float-int heap order violated"

  let check_bucket ~site q =
    if not (Geacc_pqueue.Int_bucket_queue.check_invariant q) then
      fail ~site "bucket queue placement or size violated"
end
