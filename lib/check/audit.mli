(** Opt-in runtime invariant audit for the flow/solver hot paths.

    [Validate.check] runs {e after} a solver finishes, which tells you a run
    went wrong but not which step broke it. The audit layer closes that gap:
    algorithms call the checkers below at their mutation points, guarded by
    {!enabled}, so a violated invariant raises {!Violation} at the exact
    augmentation / pop / add that introduced it.

    Auditing is off by default (the guards cost one branch per hook). It is
    switched on for a whole process by setting the [GEACC_AUDIT] environment
    variable to anything but ["0"], [""] or ["false"], or programmatically
    with {!set_enabled} / {!with_enabled} (used by the test suite).

    Checkers for structures owned by [geacc_core] (matchings) live next to
    the structure — see [Validate.audit_matching] — and report through
    {!fail} so every audit failure surfaces as the same exception. *)

exception Violation of { site : string; detail : string }
(** An invariant broke. [site] names the algorithm step that was executing
    (e.g. ["Mcf.solve/augment"]), [detail] says which invariant and where. *)

val enabled : unit -> bool
(** Current gate. Initialised from [GEACC_AUDIT] at startup. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with the gate forced to the given value, restoring the
    previous state afterwards (exception-safe). *)

val violations : unit -> int
(** Process-lifetime count of {!Violation}s raised through {!fail}/{!failf}
    (including ones later caught — e.g. by a fallback harness treating an
    audit failure as a stage fault). Robustness telemetry reports it
    alongside injected-fault counters. *)

val fail : site:string -> string -> 'a
(** Raises {!Violation}. *)

val failf : site:string -> ('a, unit, string, 'b) format4 -> 'a
(** [Printf]-style {!fail}. *)

(** Flow-network invariants, meant to run between augmentations of the
    successive-shortest-path loop. *)
module Flow : sig
  val check_capacity : site:string -> Geacc_flow.Graph.t -> unit
  (** Every arc keeps a non-negative residual capacity, every forward arc
      carries non-negative flow, and each forward/residual pair conserves
      total capacity. *)

  val check_conservation :
    site:string -> Geacc_flow.Graph.t -> source:int -> sink:int -> unit
  (** Net flow is zero at every node other than [source] and [sink], and
      source outflow equals sink inflow. *)

  val check_reduced_costs :
    site:string -> Geacc_flow.Graph.t -> potential:float array -> unit
  (** Johnson reduced cost [cost a + pi(src a) - pi(dst a)] is non-negative
      (within floating-point slack) on every arc with residual capacity —
      the precondition for running Dijkstra on the residual network. *)

  val check_reduced_costs_int :
    site:string -> Geacc_flow.Graph.t -> potential:int array -> unit
  (** Integer twin of {!check_reduced_costs} over the quantised
      {!Geacc_flow.Graph.icost} column — exact, zero slack: the integer
      potential update telescopes without roundoff. *)

  val check_csr :
    site:string -> Geacc_flow.Graph.t -> unit
  (** The CSR form is current and faithful: offsets are monotone and tile
      [\[0, arc_count)], positions are a permutation of the arc ids whose
      dst/cost/icost agree bitwise with the arc store, and the positional
      residual capacities mirror the arc-indexed ones (the invariant
      {!Geacc_flow.Graph.push} maintains in place). Fails when
      {!Geacc_flow.Graph.csr_valid} is false — run it only after
      [finalize_csr]. *)
end

(** Priority-queue structural invariants. *)
module Heap : sig
  val check_binary : site:string -> 'a Geacc_pqueue.Binary_heap.t -> unit
  val check_pairing : site:string -> 'a Geacc_pqueue.Pairing_heap.t -> unit
  val check_float_int : site:string -> Geacc_pqueue.Float_int_heap.t -> unit

  val check_bucket :
    site:string -> Geacc_pqueue.Int_bucket_queue.t -> unit
end
