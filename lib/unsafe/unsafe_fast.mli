(* Unchecked array access for stage-4 licensed sites (default profiles).

   [unsafe_get a i] / [unsafe_set a i v] compile to the raw load/store with
   no bounds check. A call site is only legal under a licence comment
   `(* bounds: proved — <invariant> *)` whose proof the @bounds analyzer
   re-verifies on every build; under `--profile safe` the same names are
   the checked primitives (see unsafe_checked.mli). *)

external unsafe_get : 'a array -> int -> 'a = "%array_unsafe_get"
external unsafe_set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
