(* Checked fallback for stage-4 licensed sites (`--profile safe`).

   Same names as unsafe_fast.mli, but every access is bounds-checked: a
   stale licence that slipped past the analyzer turns into an
   [Invalid_argument] trap instead of memory corruption. *)

external unsafe_get : 'a array -> int -> 'a = "%array_safe_get"
external unsafe_set : 'a array -> int -> 'a -> unit = "%array_safe_set"
