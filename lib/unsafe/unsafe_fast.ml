(* Default-profile implementation of Geacc_unsafe: the unchecked array
   primitives. Every call site of these names must carry a stage-4 licence
   `(* bounds: proved — <invariant> *)` that `dune build @bounds` re-proves
   on every build; the `safe` profile swaps in unsafe_checked.ml, which maps
   the same names to bounds-checked accesses. See DESIGN.md §13. *)

external unsafe_get : 'a array -> int -> 'a = "%array_unsafe_get"
external unsafe_set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
