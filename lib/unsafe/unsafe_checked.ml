(* `--profile safe` implementation of Geacc_unsafe: the same names as
   unsafe_fast.ml, mapped to the bounds-checked primitives. The audited and
   fuzz CI legs build with this profile so every licensed unsafe_* site in
   the kernels runs fully checked; the fuzz-differential job then asserts
   the two profiles produce byte-identical results. See DESIGN.md §13. *)

external unsafe_get : 'a array -> int -> 'a = "%array_safe_get"
external unsafe_set : 'a array -> int -> 'a -> unit = "%array_safe_set"
