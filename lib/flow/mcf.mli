(** Minimum-cost flow by successive shortest paths (SSP) with potentials.

    Each augmentation pushes flow along a minimum-cost residual path, so
    after the k-th unit the network carries a min-cost flow of amount k —
    the per-Δ prefix property MinCostFlow-GEACC relies on (see DESIGN.md §5).
    Negative arc costs are supported: potentials are seeded with one
    Bellman–Ford pass; subsequent iterations use Dijkstra on reduced costs,
    giving O(F · E log V) for total flow F. *)

type outcome = {
  flow : int;            (** Total units routed. *)
  cost : float;          (** Total cost of the routed flow. *)
  augmentations : int;   (** Number of augmenting paths used. *)
  timed_out : bool;      (** [true] when [deadline] expired: the flow is a
                             min-cost flow of its (smaller) amount, not of
                             the requested one. *)
}

exception Negative_cycle
(** Raised when the initial network has a negative-cost cycle reachable from
    the source (min-cost flow is then unbounded below). *)

val solve :
  Graph.t ->
  source:int ->
  sink:int ->
  ?deadline:Geacc_robust.Budget.t ->
  ?target_flow:int ->
  ?should_augment:(path_cost:float -> bool) ->
  ?on_augment:(units:int -> path_cost:float -> [ `Continue | `Stop ]) ->
  ?audit_after_dijkstra:(potential:float array -> unit) ->
  ?audit_after_augment:(unit -> unit) ->
  unit ->
  outcome
(** Augments until the sink is unreachable, [target_flow] is met,
    [should_augment] refuses, [on_augment] answers [`Stop], or [deadline]
    (default: unlimited) expires. The deadline is polled once per iteration,
    {e between} augmentations — an expiry never interrupts a path push, so
    the flow left in the graph is always consistent (capacity- and
    conservation-clean) and optimal for its own amount; the outcome is then
    flagged [timed_out].
    [should_augment] is consulted {e before} pushing along a found path —
    since path costs are non-decreasing across augmentations, refusing once
    ends the run with the flow untouched by that path (this is how
    MinCostFlow-GEACC stops at the Δ maximising MaxSum). [on_augment] fires
    after each augmentation with the units pushed and the (true,
    non-reduced) per-unit path cost. The flow pushed so far stays in the
    graph — read it back with {!Graph.flow}.

    The audit hooks default to no-ops and exist so callers can inject
    invariant checkers (see [Geacc_check.Audit]) without this library
    depending on them: [audit_after_dijkstra] fires once per iteration right
    after the Johnson potentials are updated, [audit_after_augment] after
    each augmentation's flow push. *)
