(** Minimum-cost flow by successive shortest paths (SSP) with potentials.

    Each augmentation pushes flow along a minimum-cost residual path, so
    after the k-th unit the network carries a min-cost flow of amount k —
    the per-Δ prefix property MinCostFlow-GEACC relies on (see DESIGN.md §5).
    Negative arc costs are supported: potentials are seeded with one
    Bellman–Ford pass; subsequent iterations use Dijkstra on reduced costs,
    giving O(F · E log V) for total flow F. *)

type outcome = {
  flow : int;            (** Total units routed. *)
  cost : float;          (** Total cost of the routed flow. *)
  augmentations : int;   (** Number of augmenting paths used. *)
  timed_out : bool;      (** [true] when [deadline] expired: the flow is a
                             min-cost flow of its (smaller) amount, not of
                             the requested one. *)
}

exception Negative_cycle
(** Raised when the initial network has a negative-cost cycle reachable from
    the source (min-cost flow is then unbounded below). *)

val solve :
  Graph.t ->
  source:int ->
  sink:int ->
  ?deadline:Geacc_robust.Budget.t ->
  ?target_flow:int ->
  ?should_augment:(path_cost:float -> bool) ->
  ?on_augment:(units:int -> path_cost:float -> [ `Continue | `Stop ]) ->
  ?audit_after_dijkstra:(potential:float array -> unit) ->
  ?audit_after_augment:(unit -> unit) ->
  unit ->
  outcome
(** Augments until the sink is unreachable, [target_flow] is met,
    [should_augment] refuses, [on_augment] answers [`Stop], or [deadline]
    (default: unlimited) expires. The deadline is polled once per iteration,
    {e between} augmentations — an expiry never interrupts a path push, so
    the flow left in the graph is always consistent (capacity- and
    conservation-clean) and optimal for its own amount; the outcome is then
    flagged [timed_out].
    [should_augment] is consulted {e before} pushing along a found path —
    since path costs are non-decreasing across augmentations, refusing once
    ends the run with the flow untouched by that path (this is how
    MinCostFlow-GEACC stops at the Δ maximising MaxSum). [on_augment] fires
    after each augmentation with the units pushed and the (true,
    non-reduced) per-unit path cost. The flow pushed so far stays in the
    graph — read it back with {!Graph.flow}.

    The audit hooks default to no-ops and exist so callers can inject
    invariant checkers (see [Geacc_check.Audit]) without this library
    depending on them: [audit_after_dijkstra] fires once per iteration right
    after the Johnson potentials are updated, [audit_after_augment] after
    each augmentation's flow push. *)

type int_outcome = {
  iflow : int;           (** Total units routed. *)
  icost : int;           (** Total cost, in quantisation-grid units. *)
  iaugmentations : int;  (** Number of augmenting paths used. *)
  itimed_out : bool;     (** [true] when [deadline] expired (see {!solve}). *)
}

val exactness_guard : int
(** Default [guard] for {!solve_int} ([2^48]): while every potential stays
    below it and the node count below [2^21], every value either kernel
    computes stays below [2^53], where double arithmetic on the [2^30]
    dyadic cost grid is exact. *)

val solve_int :
  Graph.t ->
  source:int ->
  sink:int ->
  ?deadline:Geacc_robust.Budget.t ->
  ?guard:int ->
  ?stop_below:int ->
  ?audit_after_dijkstra:(potential:int array -> unit) ->
  ?audit_after_augment:(unit -> unit) ->
  unit ->
  int_outcome option
(** Integer twin of {!solve}, running {!Shortest_path.dijkstra_int} on the
    quantised {!Graph.icost} column with integer potentials (exact — no
    reduced-cost clamp, no Bellman–Ford seeding: the initial all-zero
    potential must already reduce non-negatively, which holds for the
    assignment networks where every forward cost is [1 - sim >= 0]).

    [stop_below] is the integer form of {!solve}'s [should_augment]: keep
    augmenting while the integer path cost is strictly below it (for the
    MaxSum stop rule [path_cost < 1.], pass the quantisation scale).

    Returns [None] — with partially pushed flow still in the graph, so
    callers must {!Graph.reset_flow} before falling back to the float
    kernel — when the instance leaves the regime where the integer run
    provably mirrors the float one on the same dyadic cost column: a
    capacitated negative-[icost] arc at entry, a node count at or above
    [2^21], or a potential reaching [guard] (default {!exactness_guard};
    tests shrink it to force the fallback path). Within that regime both
    kernels order every cost comparison identically, so a [Some] outcome
    is a min-cost flow of the same value and total cost — to the bit —
    as the float kernel's; among exactly tied shortest-path trees the two
    may pick different (equal-cost) augmenting paths. *)
