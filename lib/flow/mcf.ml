module Budget = Geacc_robust.Budget

(* The potential-update loop and the augmentation walks index their arrays
   through [Geacc_unsafe] under stage-4 licences; the asserts below are the
   facts those proofs rest on. See DESIGN.md §13. *)
module A = Geacc_unsafe

type outcome = {
  flow : int;
  cost : float;
  augmentations : int;
  timed_out : bool;
}

exception Negative_cycle

let has_negative_arc g =
  Graph.fold_forward_arcs g ~init:false ~f:(fun acc a ->
      acc || (Graph.residual_capacity g a > 0 && Graph.cost g a < 0.))

let initial_potential g ~source =
  if not (has_negative_arc g) then Array.make (Graph.node_count g) 0.
  else
    match Shortest_path.bellman_ford g ~source with
    | None -> raise Negative_cycle
    | Some { dist; _ } ->
        (* Unreachable nodes keep potential 0; they have no residual arcs
           from the reachable region, so their reduced costs never matter. *)
        Array.map (fun d -> if Float.equal d infinity then 0. else d) dist

let solve g ~source ~sink ?(deadline = Budget.unlimited) ?target_flow
    ?(should_augment = fun ~path_cost:_ -> true)
    ?(on_augment = fun ~units:_ ~path_cost:_ -> `Continue)
    ?(audit_after_dijkstra = fun ~potential:_ -> ())
    ?(audit_after_augment = fun () -> ()) () =
  assert (source <> sink);
  let n = Graph.node_count g in
  assert (0 <= source && source < n && 0 <= sink && sink < n);
  let pi = initial_potential g ~source in
  assert (Array.length pi = n);
  let total_flow = ref 0 in
  let total_cost = ref 0. in
  let augmentations = ref 0 in
  let want_more () =
    match target_flow with None -> true | Some t -> !total_flow < t
  in
  let continue = ref true in
  let timed_out = ref false in
  (* Scratch refs for the augmentation walks, hoisted out of the loop. *)
  let bottleneck = ref max_int in
  let v = ref sink in
  while !continue && want_more () do
    (* Deadline poll between augmentations: each iteration runs a full
       Dijkstra, so read the clock every time rather than batching. *)
    if Budget.check_now deadline then begin
      timed_out := true;
      continue := false
    end
    else begin
    let { Shortest_path.dist; parent_arc } =
      Shortest_path.dijkstra g ~source ~potential:pi ~stop_at:sink ()
    in
    if Float.equal dist.(sink) infinity then continue := false
    else begin
      (* True source->sink path cost, before the potential update. *)
      let path_cost = dist.(sink) +. pi.(sink) -. pi.(source) in
      if not (should_augment ~path_cost) then continue := false
      else begin
      (* Keep reduced costs non-negative for the next round: cap distance
         contributions at the sink's distance. *)
      let cap = dist.(sink) in
      assert (Array.length dist = Array.length pi);
      for u = 0 to Array.length dist - 1 do
        (* bounds: proved — u < |dist| = |pi| (asserted above) *)
        let d = A.unsafe_get dist u in
        (* bounds: proved — u < |pi| = |dist| (asserted above) *)
        A.unsafe_set pi u (A.unsafe_get pi u +. (if d < cap then d else cap))
      done;
      audit_after_dijkstra ~potential:pi;
      (* Bottleneck along the shortest path. *)
      bottleneck := max_int;
      v := sink;
      assert (Array.length parent_arc = n);
      while !v <> source do
        (* bounds: proved — v stays in [0, n) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
        let a = A.unsafe_get parent_arc !v in
        assert (a >= 0);
        let r = Graph.residual_capacity g a in
        if r < !bottleneck then bottleneck := r;
        v := Graph.src g a
      done;
      let units =
        match target_flow with
        | None -> !bottleneck
        | Some t -> Int.min !bottleneck (t - !total_flow)
      in
      assert (units > 0);
      v := sink;
      while !v <> source do
        (* bounds: proved — v stays in [0, n) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
        let a = A.unsafe_get parent_arc !v in
        Graph.push g a units;
        v := Graph.src g a
      done;
      total_flow := !total_flow + units;
      total_cost := !total_cost +. (float_of_int units *. path_cost);
      incr augmentations;
      audit_after_augment ();
      (match on_augment ~units ~path_cost with
      | `Continue -> ()
      | `Stop -> continue := false)
      end
    end
    end
  done;
  {
    flow = !total_flow;
    cost = !total_cost;
    augmentations = !augmentations;
    timed_out = !timed_out;
  }
