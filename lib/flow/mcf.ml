module Budget = Geacc_robust.Budget

(* The potential-update loop and the augmentation walks index their arrays
   through [Geacc_unsafe] under stage-4 licences; the asserts below are the
   facts those proofs rest on. See DESIGN.md §13. *)
module A = Geacc_unsafe

type outcome = {
  flow : int;
  cost : float;
  augmentations : int;
  timed_out : bool;
}

exception Negative_cycle

let has_negative_arc g =
  Graph.fold_forward_arcs g ~init:false ~f:(fun acc a ->
      acc || (Graph.residual_capacity g a > 0 && Graph.cost g a < 0.))

let initial_potential g ~source =
  if not (has_negative_arc g) then Array.make (Graph.node_count g) 0.
  else
    match Shortest_path.bellman_ford g ~source with
    | None -> raise Negative_cycle
    | Some { dist; _ } ->
        (* Unreachable nodes keep potential 0; they have no residual arcs
           from the reachable region, so their reduced costs never matter. *)
        Array.map (fun d -> if Float.equal d infinity then 0. else d) dist

let solve g ~source ~sink ?(deadline = Budget.unlimited) ?target_flow
    ?(should_augment = fun ~path_cost:_ -> true)
    ?(on_augment = fun ~units:_ ~path_cost:_ -> `Continue)
    ?(audit_after_dijkstra = fun ~potential:_ -> ())
    ?(audit_after_augment = fun () -> ()) () =
  assert (source <> sink);
  let n = Graph.node_count g in
  assert (0 <= source && source < n && 0 <= sink && sink < n);
  let pi = initial_potential g ~source in
  assert (Array.length pi = n);
  let total_flow = ref 0 in
  let total_cost = ref 0. in
  let augmentations = ref 0 in
  let want_more () =
    match target_flow with None -> true | Some t -> !total_flow < t
  in
  let continue = ref true in
  let timed_out = ref false in
  (* Scratch refs for the augmentation walks, hoisted out of the loop. *)
  let bottleneck = ref max_int in
  let v = ref sink in
  while !continue && want_more () do
    (* Deadline poll between augmentations: each iteration runs a full
       Dijkstra, so read the clock every time rather than batching. *)
    if Budget.check_now deadline then begin
      timed_out := true;
      continue := false
    end
    else begin
    let { Shortest_path.dist; parent_arc } =
      Shortest_path.dijkstra g ~source ~potential:pi ~stop_at:sink ()
    in
    if Float.equal dist.(sink) infinity then continue := false
    else begin
      (* True source->sink path cost, before the potential update. *)
      let path_cost = dist.(sink) +. pi.(sink) -. pi.(source) in
      if not (should_augment ~path_cost) then continue := false
      else begin
      (* Keep reduced costs non-negative for the next round: cap distance
         contributions at the sink's distance. *)
      let cap = dist.(sink) in
      assert (Array.length dist = Array.length pi);
      for u = 0 to Array.length dist - 1 do
        (* bounds: proved — u < |dist| = |pi| (asserted above) *)
        let d = A.unsafe_get dist u in
        (* bounds: proved — u < |pi| = |dist| (asserted above) *)
        A.unsafe_set pi u (A.unsafe_get pi u +. (if d < cap then d else cap))
      done;
      audit_after_dijkstra ~potential:pi;
      (* Bottleneck along the shortest path. *)
      bottleneck := max_int;
      v := sink;
      assert (Array.length parent_arc = n);
      while !v <> source do
        (* bounds: proved — v stays in [0, n) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
        let a = A.unsafe_get parent_arc !v in
        assert (a >= 0);
        let r = Graph.residual_capacity g a in
        if r < !bottleneck then bottleneck := r;
        v := Graph.src g a
      done;
      let units =
        match target_flow with
        | None -> !bottleneck
        | Some t -> Int.min !bottleneck (t - !total_flow)
      in
      assert (units > 0);
      v := sink;
      while !v <> source do
        (* bounds: proved — v stays in [0, n) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
        let a = A.unsafe_get parent_arc !v in
        Graph.push g a units;
        v := Graph.src g a
      done;
      total_flow := !total_flow + units;
      total_cost := !total_cost +. (float_of_int units *. path_cost);
      incr augmentations;
      audit_after_augment ();
      (match on_augment ~units ~path_cost with
      | `Continue -> ()
      | `Stop -> continue := false)
      end
    end
    end
  done;
  {
    flow = !total_flow;
    cost = !total_cost;
    augmentations = !augmentations;
    timed_out = !timed_out;
  }

(* ---------- integer kernel ---------- *)

type int_outcome = {
  iflow : int;
  icost : int;          (* total cost in quantisation-grid units *)
  iaugmentations : int;
  itimed_out : bool;
}

let has_negative_int_arc g =
  Graph.fold_forward_arcs g ~init:false ~f:(fun acc a ->
      acc || (Graph.residual_capacity g a > 0 && Graph.icost g a < 0))

(* Magnitude ceiling for the exactness argument: while every potential
   stays below it (and the node count below 2^21), all keys the two
   kernels ever compare stay below 2^53, where double arithmetic on the
   2^30 dyadic grid is exact — the float kernel computes bit-identical
   values, so the kernels order every comparison identically. Grossly
   conservative: potentials grow by at most one path cost (a few grid
   units, ~2^32) per augmentation, so reaching 2^48 would take millions
   of augmentations. *)
let exactness_guard = 1 lsl 48

let solve_int g ~source ~sink ?(deadline = Budget.unlimited)
    ?(guard = exactness_guard) ?stop_below
    ?(audit_after_dijkstra = fun ~potential:_ -> ())
    ?(audit_after_augment = fun () -> ()) () =
  assert (source <> sink);
  let n = Graph.node_count g in
  assert (0 <= source && source < n && 0 <= sink && sink < n);
  (* The integer kernel has no Bellman–Ford twin: it requires the initial
     all-zero potential to already reduce non-negatively, i.e. no
     capacitated forward arc with negative quantised cost. The assignment
     networks satisfy this by construction (costs 1 - sim >= 0); anything
     else is the caller's cue to run the float kernel. The node-count
     bound keeps worst-case keys (n path arcs of at most one grid unit,
     plus two potentials under the guard) inside the exact range. *)
  if has_negative_int_arc g || n >= 1 lsl 21 then None
  else begin
    let pi = Array.make n 0 in
    (* Scratch for every Dijkstra pass, allocated once per solve — unlike
       the float kernel, the passes themselves allocate nothing. *)
    let dist = Array.make n max_int in
    let parent_arc = Array.make n (-1) in
    let queue = Geacc_pqueue.Int_bucket_queue.create () in
    let total_flow = ref 0 in
    let total_cost = ref 0 in
    let augmentations = ref 0 in
    let continue = ref true in
    let timed_out = ref false in
    let uncertain = ref false in
    let bottleneck = ref max_int in
    let pi_max = ref 0 in
    let v = ref sink in
    while !continue do
      (* Deadline poll between augmentations, as in the float loop. *)
      if Budget.check_now deadline then begin
        timed_out := true;
        continue := false
      end
      else begin
        Shortest_path.dijkstra_int g ~source ~pi ~dist ~parent_arc ~queue
          ~stop_at:sink ();
        if dist.(sink) = max_int then continue := false
        else begin
          (* True source->sink path cost, before the potential update —
             exact integer arithmetic, the potentials telescope. The stop
             rule is exact too: the float kernel compares the same dyadic
             value against the same ceiling. *)
          let path_cost = dist.(sink) + pi.(sink) - pi.(source) in
          let stop_here =
            match stop_below with
            | None -> false
            | Some ceiling -> path_cost >= ceiling
          in
          if stop_here then continue := false
          else begin
            let cap = dist.(sink) in
            pi_max := 0;
            assert (Array.length dist = Array.length pi);
            for u = 0 to Array.length dist - 1 do
              (* bounds: proved — u < |dist| = |pi| (asserted above) *)
              let d = A.unsafe_get dist u in
              let np =
                (* bounds: proved — u < |pi| = |dist| (asserted above) *)
                A.unsafe_get pi u + (if d < cap then d else cap)
              in
              if np > !pi_max then pi_max := np;
              (* bounds: proved — u < |pi| = |dist| (asserted above) *)
              A.unsafe_set pi u np
            done;
            if !pi_max >= guard then begin
              (* Potentials left the exact range: the float mirror could
                 round, so the remaining passes are no longer certified.
                 Stop before augmenting along this pass's tree. *)
              uncertain := true;
              continue := false
            end
            else begin
            audit_after_dijkstra ~potential:pi;
            bottleneck := max_int;
            v := sink;
            assert (Array.length parent_arc = n);
            while !v <> source do
              (* bounds: proved — v stays in [0, n) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
              let a = A.unsafe_get parent_arc !v in
              assert (a >= 0);
              let r = Graph.residual_capacity g a in
              if r < !bottleneck then bottleneck := r;
              v := Graph.src g a
            done;
            let units = !bottleneck in
            assert (units > 0);
            v := sink;
            while !v <> source do
              (* bounds: proved — v stays in [0, n) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
              let a = A.unsafe_get parent_arc !v in
              Graph.push g a units;
              v := Graph.src g a
            done;
            total_flow := !total_flow + units;
            total_cost := !total_cost + (units * path_cost);
            incr augmentations;
            audit_after_augment ()
            end
          end
        end
      end
    done;
    if !uncertain then None
    else
      Some
        {
          iflow = !total_flow;
          icost = !total_cost;
          iaugmentations = !augmentations;
          itimed_out = !timed_out;
        }
  end
