type result = { dist : float array; parent_arc : int array }

module Heap = Geacc_pqueue.Float_int_heap

let dijkstra g ~source ?potential ?stop_at () =
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  let settled = Array.make n false in
  (* Specialised inner loop: the potential is always consulted as a plain
     array (all zeros when absent) and the reduced cost is computed inline,
     so each relaxation is three array reads and two float ops — no
     per-node callback closure, no boxed intermediate. Adjacency comes from
     the CSR form: one contiguous position scan per settled node. *)
  let pi =
    match potential with Some pi -> pi | None -> Array.make n 0.
  in
  let stop = match stop_at with Some s -> s | None -> -1 in
  let heap = Heap.create () in
  dist.(source) <- 0.;
  Heap.push heap 0. source;
  let finished = ref false in
  let p = ref 0 in
  (* poll: ok — one Dijkstra pass is the SSP unit of work; Mcf.solve polls before every pass *)
  while not !finished do
    if Heap.is_empty heap then finished := true
    else begin
      let d = Heap.min_key heap in
      let u = Heap.min_payload heap in
      Heap.drop_min heap;
      if not settled.(u) then begin
        settled.(u) <- true;
        assert (d = dist.(u));
        if u = stop then finished := true
        else begin
          p := Graph.out_begin g u;
          let stop_p = Graph.out_end g u in
          while !p < stop_p do
            if Graph.pos_residual_capacity g !p > 0 then begin
              let v = Graph.pos_dst g !p in
              if not settled.(v) then begin
                let rc = Graph.pos_cost g !p +. pi.(u) -. pi.(v) in
                (* Reduced costs must be non-negative; tolerate tiny
                   floating-point slack from potential updates. *)
                let rc = if rc < 0. then (assert (rc > -1e-9); 0.) else rc in
                let nd = d +. rc in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent_arc.(v) <- Graph.pos_arc g !p;
                  Heap.push heap nd v
                end
              end
            end;
            incr p
          done
        end
      end
    end
  done;
  { dist; parent_arc }

let bellman_ford g ~source =
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  dist.(source) <- 0.;
  let changed = ref true in
  let rounds = ref 0 in
  let p = ref 0 in
  (* poll: ok — bounded by n relaxation rounds; run once per network, on the first SSP pass *)
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      if dist.(u) < infinity then begin
        p := Graph.out_begin g u;
        let stop_p = Graph.out_end g u in
        while !p < stop_p do
          if Graph.pos_residual_capacity g !p > 0 then begin
            let v = Graph.pos_dst g !p in
            let nd = dist.(u) +. Graph.pos_cost g !p in
            if nd < dist.(v) -. 1e-12 then begin
              dist.(v) <- nd;
              parent_arc.(v) <- Graph.pos_arc g !p;
              changed := true
            end
          end;
          incr p
        done
      end
    done
  done;
  if !changed then None (* still relaxing after n rounds: negative cycle *)
  else Some { dist; parent_arc }
