type result = { dist : float array; parent_arc : int array }

module Heap = Geacc_pqueue.Float_int_heap

(* The relaxation kernels index the raw CSR slices and the node-indexed
   scratch arrays through [Geacc_unsafe] under stage-4 licences: positions
   come from [out_begin u <= p < out_end u <= arc_count <= |slice|] and
   node ids from [csr_dst] contents, which lie in [0, node_count) —
   invariants the @bounds analyzer seeds from [finalize_csr] and
   Audit.Flow.check_csr verifies at runtime. `--profile safe` compiles the
   same sites back to checked accesses. See DESIGN.md §13. *)
module A = Geacc_unsafe

let dijkstra g ~source ?potential ?stop_at () =
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  let settled = Array.make n false in
  (* Specialised inner loop: the potential is always consulted as a plain
     array (all zeros when absent) and the reduced cost is computed inline,
     so each relaxation is three array reads and two float ops — no
     per-node callback closure, no boxed intermediate. Adjacency comes from
     the CSR form: one contiguous position scan per settled node. *)
  let pi =
    match potential with Some pi -> pi | None -> Array.make n 0.
  in
  assert (Array.length pi = n);
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_dst = Graph.unsafe_csr_dst g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_cost = Graph.unsafe_csr_cost g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_cap = Graph.unsafe_csr_cap g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_arc = Graph.unsafe_csr_arc g in
  let stop = match stop_at with Some s -> s | None -> -1 in
  let heap = Heap.create () in
  dist.(source) <- 0.;
  Heap.push heap 0. source;
  let finished = ref false in
  let p = ref 0 in
  (* poll: ok — one Dijkstra pass is the SSP unit of work; Mcf.solve polls before every pass *)
  while not !finished do
    if Heap.is_empty heap then finished := true
    else begin
      let d = Heap.min_key heap in
      let u = Heap.min_payload heap in
      Heap.drop_min heap;
      if not settled.(u) then begin
        settled.(u) <- true;
        assert (d = dist.(u));
        if u = stop then finished := true
        else begin
          (* The potential is read-only for the whole pass, so the settled
             node's entry is hoisted out of its arc scan. *)
          let pi_u = pi.(u) in
          p := Graph.out_begin g u;
          let stop_p = Graph.out_end g u in
          while !p < stop_p do
            (* bounds: proved — p < out_end <= arc_count <= |csr_cap| *)
            if A.unsafe_get csr_cap !p > 0 then begin
              (* bounds: proved — p < out_end <= arc_count <= |csr_dst| *)
              let v = A.unsafe_get csr_dst !p in
              (* bounds: proved — v = csr_dst.(p) < node_count = |settled| *)
              if not (A.unsafe_get settled v) then begin
                let rc =
                  (* bounds: proved — p < arc_count <= |csr_cost|; v < node_count = |pi| *)
                  A.unsafe_get csr_cost !p +. pi_u -. A.unsafe_get pi v
                in
                (* Reduced costs must be non-negative; tolerate tiny
                   floating-point slack from potential updates. *)
                let rc = if rc < 0. then (assert (rc > -1e-9); 0.) else rc in
                let nd = d +. rc in
                (* bounds: proved — v = csr_dst.(p) < node_count = |dist| *)
                if nd < A.unsafe_get dist v then begin
                  (* bounds: proved — v < node_count = |dist| *)
                  A.unsafe_set dist v nd;
                  (* bounds: proved — v < node_count = |parent_arc|; p < arc_count <= |csr_arc| *)
                  A.unsafe_set parent_arc v (A.unsafe_get csr_arc !p);
                  Heap.push heap nd v
                end
              end
            end;
            incr p
          done
        end
      end
    end
  done;
  { dist; parent_arc }

(* ---------- integer kernel ---------- *)

module Q = Geacc_pqueue.Int_bucket_queue

let dijkstra_int g ~source ~pi ~dist ~parent_arc ~queue ?stop_at () =
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  assert (Array.length pi = n);
  assert (Array.length dist = n);
  assert (Array.length parent_arc = n);
  Array.fill dist 0 n max_int;
  Array.fill parent_arc 0 n (-1);
  Q.clear queue;
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_dst = Graph.unsafe_csr_dst g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_icost = Graph.unsafe_csr_icost g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_cap = Graph.unsafe_csr_cap g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_arc = Graph.unsafe_csr_arc g in
  let stop = match stop_at with Some s -> s | None -> -1 in
  dist.(source) <- 0;
  Q.push queue 0 source;
  (* Tentative distance of the stop node, hoisted for the goal bound: a
     relaxation to [nd > stop_dist] can neither end up on a shortest
     [stop] path nor be expanded before [stop] settles, and since the SSP
     potential update caps every contribution at the stop node's final
     distance, dropping it leaves the potentials — and hence every later
     pass — exactly as the unpruned (float) kernel computes them. Ties
     ([nd = stop_dist]) are kept: zero-reduced-cost suffixes put them on
     shortest stop paths. Without [stop_at] the bound stays [max_int] and
     nothing is pruned. *)
  let stop_dist = ref max_int in
  (* No [settled] array: keys are monotone and strict improvements are the
     only pushes, so per node all queued keys are distinct and exactly one
     equals [dist] — a popped entry is live iff [d = dist.(u)], and a
     settled node can never be re-improved because reduced costs are
     exactly non-negative. *)
  let finished = ref false in
  (* poll: ok — one Dijkstra pass is the SSP unit of work; Mcf.solve polls before every pass *)
  while not !finished do
    if Q.is_empty queue then finished := true
    else begin
      let d = Q.min_key queue in
      let u = Q.min_payload queue in
      Q.drop_min queue;
      if d = dist.(u) then begin
        if u = stop then finished := true
        else begin
          (* The potential is read-only for the whole pass, so the settled
             node's entry is hoisted out of its arc scan. *)
          let pi_u = pi.(u) in
          for p = Graph.out_begin g u to Graph.out_end g u - 1 do
            (* bounds: proved — p < out_end <= arc_count <= |csr_cap| *)
            if A.unsafe_get csr_cap p > 0 then begin
              (* bounds: proved — p < out_end <= arc_count <= |csr_dst| *)
              let v = A.unsafe_get csr_dst p in
              let rc =
                (* bounds: proved — p < arc_count <= |csr_icost|; v < node_count = |pi| *)
                A.unsafe_get csr_icost p + pi_u - A.unsafe_get pi v
              in
              (* Integer reduced costs are exactly non-negative: the SSP
                 potential update telescopes without roundoff, so unlike
                 the float kernel there is no clamp. *)
              assert (rc >= 0);
              let nd = d + rc in
              (* bounds: proved — v = csr_dst.(p) < node_count = |dist| *)
              if nd < A.unsafe_get dist v && nd <= !stop_dist then begin
                (* bounds: proved — v < node_count = |dist| *)
                A.unsafe_set dist v nd;
                (* bounds: proved — v < node_count = |parent_arc|; p < arc_count <= |csr_arc| *)
                A.unsafe_set parent_arc v (A.unsafe_get csr_arc p);
                if v = stop then stop_dist := nd;
                Q.push queue nd v
              end
            end
          done
        end
      end
    end
  done

let bellman_ford g ~source =
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_dst = Graph.unsafe_csr_dst g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_cost = Graph.unsafe_csr_cost g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_cap = Graph.unsafe_csr_cap g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_arc = Graph.unsafe_csr_arc g in
  dist.(source) <- 0.;
  let changed = ref true in
  let rounds = ref 0 in
  let p = ref 0 in
  (* poll: ok — bounded by n relaxation rounds; run once per network, on the first SSP pass *)
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      (* bounds: proved — u < n = |dist| *)
      if A.unsafe_get dist u < infinity then begin
        p := Graph.out_begin g u;
        let stop_p = Graph.out_end g u in
        while !p < stop_p do
          (* bounds: proved — p < out_end <= arc_count <= |csr_cap| *)
          if A.unsafe_get csr_cap !p > 0 then begin
            (* bounds: proved — p < out_end <= arc_count <= |csr_dst| *)
            let v = A.unsafe_get csr_dst !p in
            (* bounds: proved — u < n = |dist|; p < arc_count <= |csr_cost| *)
            let nd = A.unsafe_get dist u +. A.unsafe_get csr_cost !p in
            (* bounds: proved — v = csr_dst.(p) < node_count = |dist| *)
            if nd < A.unsafe_get dist v -. 1e-12 then begin
              (* bounds: proved — v < node_count = |dist| *)
              A.unsafe_set dist v nd;
              (* bounds: proved — v < node_count = |parent_arc|; p < arc_count <= |csr_arc| *)
              A.unsafe_set parent_arc v (A.unsafe_get csr_arc !p);
              changed := true
            end
          end;
          incr p
        done
      end
    done
  done;
  if !changed then None (* still relaxing after n rounds: negative cycle *)
  else Some { dist; parent_arc }
