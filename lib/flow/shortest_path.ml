type result = { dist : float array; parent_arc : int array }

module Heap = Geacc_pqueue.Float_int_heap

let dijkstra g ~source ?potential ?stop_at () =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  let settled = Array.make n false in
  let reduced_cost =
    match potential with
    | None -> fun a -> Graph.cost g a
    | Some pi ->
        fun a -> Graph.cost g a +. pi.(Graph.src g a) -. pi.(Graph.dst g a)
  in
  let heap = Heap.create () in
  dist.(source) <- 0.;
  Heap.push heap 0. source;
  let finished = ref false in
  while not !finished do
    match Heap.pop heap with
    | None -> finished := true
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          assert (Float.equal d dist.(u));
          if (match stop_at with Some s -> Int.equal s u | None -> false)
          then finished := true
          else
            Graph.iter_out_arcs g u (fun a ->
                if Graph.residual_capacity g a > 0 then begin
                  let v = Graph.dst g a in
                  if not settled.(v) then begin
                    let rc = reduced_cost a in
                    (* Reduced costs must be non-negative; tolerate tiny
                       floating-point slack from potential updates. *)
                    let rc = if rc < 0. then (assert (rc > -1e-9); 0.) else rc in
                    let nd = d +. rc in
                    if nd < dist.(v) then begin
                      dist.(v) <- nd;
                      parent_arc.(v) <- a;
                      Heap.push heap nd v
                    end
                  end
                end)
        end
  done;
  { dist; parent_arc }

let bellman_ford g ~source =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  dist.(source) <- 0.;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      if dist.(u) < infinity then
        Graph.iter_out_arcs g u (fun a ->
            if Graph.residual_capacity g a > 0 then begin
              let v = Graph.dst g a in
              let nd = dist.(u) +. Graph.cost g a in
              if nd < dist.(v) -. 1e-12 then begin
                dist.(v) <- nd;
                parent_arc.(v) <- a;
                changed := true
              end
            end)
    done
  done;
  if !changed then None (* still relaxing after n rounds: negative cycle *)
  else Some { dist; parent_arc }
