type result = { dist : float array; parent_arc : int array }

module Heap = Geacc_pqueue.Float_int_heap

let dijkstra g ~source ?potential ?stop_at () =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  let settled = Array.make n false in
  (* Specialised inner loop: the potential is always consulted as a plain
     array (all zeros when absent) and the reduced cost is computed inline,
     so each relaxation is three array reads and two float ops — no
     per-node callback closure, no boxed intermediate. *)
  let pi =
    match potential with Some pi -> pi | None -> Array.make n 0.
  in
  let stop = match stop_at with Some s -> s | None -> -1 in
  let heap = Heap.create () in
  dist.(source) <- 0.;
  Heap.push heap 0. source;
  let finished = ref false in
  let arc = ref (-1) in
  while not !finished do
    if Heap.is_empty heap then finished := true
    else begin
      let d = Heap.min_key heap in
      let u = Heap.min_payload heap in
      Heap.drop_min heap;
      if not settled.(u) then begin
        settled.(u) <- true;
        assert (d = dist.(u));
        if u = stop then finished := true
        else begin
          arc := Graph.first_out_arc g u;
          while !arc >= 0 do
            let a = !arc in
            if Graph.residual_capacity g a > 0 then begin
              let v = Graph.dst g a in
              if not settled.(v) then begin
                let rc = Graph.cost g a +. pi.(u) -. pi.(v) in
                (* Reduced costs must be non-negative; tolerate tiny
                   floating-point slack from potential updates. *)
                let rc = if rc < 0. then (assert (rc > -1e-9); 0.) else rc in
                let nd = d +. rc in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent_arc.(v) <- a;
                  Heap.push heap nd v
                end
              end
            end;
            arc := Graph.next_out_arc g a
          done
        end
      end
    end
  done;
  { dist; parent_arc }

let bellman_ford g ~source =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  dist.(source) <- 0.;
  let changed = ref true in
  let rounds = ref 0 in
  let arc = ref (-1) in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      if dist.(u) < infinity then begin
        arc := Graph.first_out_arc g u;
        while !arc >= 0 do
          let a = !arc in
          if Graph.residual_capacity g a > 0 then begin
            let v = Graph.dst g a in
            let nd = dist.(u) +. Graph.cost g a in
            if nd < dist.(v) -. 1e-12 then begin
              dist.(v) <- nd;
              parent_arc.(v) <- a;
              changed := true
            end
          end;
          arc := Graph.next_out_arc g a
        done
      end
    done
  done;
  if !changed then None (* still relaxing after n rounds: negative cycle *)
  else Some { dist; parent_arc }
