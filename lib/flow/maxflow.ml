(* The BFS arc scan and the augmentation walks index the raw CSR slice and
   the node-indexed scratch arrays through [Geacc_unsafe] under stage-4
   licences (see DESIGN.md §13). The BFS runs inline in the augmentation
   loop rather than as a local closure so the bounds analyzer keeps its
   graph snapshot across rounds — behaviour is unchanged. *)
module A = Geacc_unsafe

let solve g ~source ~sink =
  assert (source <> sink);
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  assert (0 <= source && source < n && 0 <= sink && sink < n);
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_dst = Graph.unsafe_csr_dst g in
  (* bounds: proved — slice fetched under csr_valid (finalize_csr above) *)
  let csr_cap = Graph.unsafe_csr_cap g in
  (* Scratch refs shared across rounds, hoisted out of every loop. *)
  let found = ref true in
  let p = ref 0 in
  let bottleneck = ref max_int in
  let v = ref sink in
  let total = ref 0 in
  (* poll: ok — Edmonds–Karp reference kernel for the test oracle only, never on the deadline-scoped solver path *)
  while !found do
    (* One BFS round over the residual network. *)
    Array.fill visited 0 n false;
    Array.fill parent_arc 0 n (-1);
    Queue.clear queue;
    visited.(source) <- true;
    Queue.add source queue;
    found := false;
    (* poll: ok — one BFS visits each node at most once *)
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      p := Graph.out_begin g u;
      let stop_p = Graph.out_end g u in
      while !p < stop_p do
        (* bounds: proved — p < out_end <= arc_count <= |csr_dst| *)
        let w = A.unsafe_get csr_dst !p in
        (* bounds: proved — w = csr_dst.(p) < node_count = |visited|; p < arc_count <= |csr_cap| *)
        if (not (A.unsafe_get visited w)) && A.unsafe_get csr_cap !p > 0
        then begin
          (* bounds: proved — w < node_count = |visited| *)
          A.unsafe_set visited w true;
          (* bounds: proved — w < node_count = |parent_arc| *)
          A.unsafe_set parent_arc w (Graph.pos_arc g !p);
          if w = sink then found := true else Queue.add w queue
        end;
        incr p
      done
    done;
    if !found then begin
      bottleneck := max_int;
      v := sink;
      while !v <> source do
        (* bounds: proved — v stays in [0, node_count) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
        let a = A.unsafe_get parent_arc !v in
        let r = Graph.residual_capacity g a in
        if r < !bottleneck then bottleneck := r;
        v := Graph.src g a
      done;
      v := sink;
      while !v <> source do
        (* bounds: proved — v stays in [0, node_count) = [0, |parent_arc|): sink is asserted, Graph.src returns node ids *)
        let a = A.unsafe_get parent_arc !v in
        Graph.push g a !bottleneck;
        v := Graph.src g a
      done;
      total := !total + !bottleneck
    end
  done;
  !total
