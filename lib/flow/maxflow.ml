let solve g ~source ~sink =
  assert (source <> sink);
  let n = Graph.node_count g in
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  (* Scratch refs shared across rounds, hoisted out of every loop. *)
  let found = ref false in
  let arc = ref (-1) in
  let bottleneck = ref max_int in
  let v = ref sink in
  let find_path () =
    Array.fill visited 0 n false;
    Array.fill parent_arc 0 n (-1);
    Queue.clear queue;
    visited.(source) <- true;
    Queue.add source queue;
    found := false;
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      arc := Graph.first_out_arc g u;
      while !arc >= 0 do
        let a = !arc in
        let w = Graph.dst g a in
        if (not visited.(w)) && Graph.residual_capacity g a > 0 then begin
          visited.(w) <- true;
          parent_arc.(w) <- a;
          if w = sink then found := true else Queue.add w queue
        end;
        arc := Graph.next_out_arc g a
      done
    done;
    !found
  in
  let total = ref 0 in
  while find_path () do
    bottleneck := max_int;
    v := sink;
    while !v <> source do
      let a = parent_arc.(!v) in
      let r = Graph.residual_capacity g a in
      if r < !bottleneck then bottleneck := r;
      v := Graph.src g a
    done;
    v := sink;
    while !v <> source do
      let a = parent_arc.(!v) in
      Graph.push g a !bottleneck;
      v := Graph.src g a
    done;
    total := !total + !bottleneck
  done;
  !total
