let solve g ~source ~sink =
  assert (source <> sink);
  Graph.finalize_csr g;
  let n = Graph.node_count g in
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  (* Scratch refs shared across rounds, hoisted out of every loop. *)
  let found = ref false in
  let p = ref 0 in
  let bottleneck = ref max_int in
  let v = ref sink in
  let find_path () =
    Array.fill visited 0 n false;
    Array.fill parent_arc 0 n (-1);
    Queue.clear queue;
    visited.(source) <- true;
    Queue.add source queue;
    found := false;
    (* poll: ok — one BFS visits each node at most once *)
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      p := Graph.out_begin g u;
      let stop_p = Graph.out_end g u in
      while !p < stop_p do
        let w = Graph.pos_dst g !p in
        if (not visited.(w)) && Graph.pos_residual_capacity g !p > 0
        then begin
          visited.(w) <- true;
          parent_arc.(w) <- Graph.pos_arc g !p;
          if w = sink then found := true else Queue.add w queue
        end;
        incr p
      done
    done;
    !found
  in
  let total = ref 0 in
  (* poll: ok — Edmonds–Karp reference kernel for the test oracle only, never on the deadline-scoped solver path *)
  while find_path () do
    bottleneck := max_int;
    v := sink;
    while !v <> source do
      let a = parent_arc.(!v) in
      let r = Graph.residual_capacity g a in
      if r < !bottleneck then bottleneck := r;
      v := Graph.src g a
    done;
    v := sink;
    while !v <> source do
      let a = parent_arc.(!v) in
      Graph.push g a !bottleneck;
      v := Graph.src g a
    done;
    total := !total + !bottleneck
  done;
  !total
