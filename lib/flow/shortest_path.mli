(** Single-source shortest paths over the residual network.

    Only arcs with positive residual capacity participate. Both algorithms
    return, per node, the distance and the arc through which the node was
    reached (for path recovery). *)

type result = {
  dist : float array;      (** [infinity] for unreachable nodes. *)
  parent_arc : int array;  (** Arc into the node on a shortest path; -1 at
                               the source and unreachable nodes. *)
}

val dijkstra :
  Graph.t -> source:int -> ?potential:float array -> ?stop_at:int -> unit ->
  result
(** Dijkstra over reduced costs [cost a + pi(src a) - pi(dst a)], which must
    be non-negative for arcs with residual capacity (Johnson's trick). The
    returned distances are the {e reduced} distances; callers converting back
    to true distances add [pi(dst) - pi(source)]. Omitting [potential] runs
    plain Dijkstra and requires non-negative costs. A supplied [potential]
    must have exactly [node_count] entries (asserted at entry; the stage-4
    bounds proofs for the relaxation kernel rest on it).

    With [stop_at] the search halts as soon as that node is settled; its
    distance and parents along its shortest path are exact, while other
    entries are tentative upper bounds, never below [stop_at]'s distance —
    which is exactly the property the min-cost-flow potential update
    [pi(v) <- pi(v) + min(dist(v), dist(stop_at))] needs. *)

val dijkstra_int :
  Graph.t ->
  source:int ->
  pi:int array ->
  dist:int array ->
  parent_arc:int array ->
  queue:Geacc_pqueue.Int_bucket_queue.t ->
  ?stop_at:int ->
  unit ->
  unit
(** Integer twin of {!dijkstra}, running on the {!Graph.icost} column with
    a monotone bucket queue instead of the float heap. Semantics mirror
    {!dijkstra} ([stop_at], reduced distances, tentative non-settled
    entries) with [max_int] standing in for [infinity] and -1 for absent
    parents, plus two exact-arithmetic shortcuts the float kernel cannot
    take: no [settled] array (reduced costs are exactly non-negative, so
    a popped entry is live iff its key equals the node's distance and a
    settled node can never re-improve — asserted, not clamped) and a goal
    bound (relaxations strictly above [stop_at]'s tentative distance are
    dropped; they cannot reach a shortest [stop_at] path, and the SSP
    potential update caps at that distance anyway, so later passes are
    unaffected).

    Exactness contract: when the float cost column stores the {e same}
    dyadic values [icost / 2^30] (the {!Mincostflow} builder's invariant)
    and every key stays below 2^53, the float kernel's arithmetic on
    those costs is exact, so every comparison here orders identically to
    its float twin — the two kernels tie exactly on the same pairs and
    agree strictly everywhere else. {!Mcf.solve_int} enforces the
    magnitude precondition; see DESIGN.md §15.

    [dist], [parent_arc] and [queue] are caller-owned scratch (arrays of
    exactly [node_count] entries, asserted at entry — the stage-4 bounds
    proofs rest on it); the kernel re-initialises them, so one allocation
    serves every pass of an SSP solve. Results are left in
    [dist]/[parent_arc]. *)

val bellman_ford : Graph.t -> source:int -> result option
(** Handles negative costs; [None] if a negative-cost residual cycle is
    reachable from [source]. O(V·E). Used as a test oracle and to initialise
    potentials when negative arcs exist. *)
