(** Single-source shortest paths over the residual network.

    Only arcs with positive residual capacity participate. Both algorithms
    return, per node, the distance and the arc through which the node was
    reached (for path recovery). *)

type result = {
  dist : float array;      (** [infinity] for unreachable nodes. *)
  parent_arc : int array;  (** Arc into the node on a shortest path; -1 at
                               the source and unreachable nodes. *)
}

val dijkstra :
  Graph.t -> source:int -> ?potential:float array -> ?stop_at:int -> unit ->
  result
(** Dijkstra over reduced costs [cost a + pi(src a) - pi(dst a)], which must
    be non-negative for arcs with residual capacity (Johnson's trick). The
    returned distances are the {e reduced} distances; callers converting back
    to true distances add [pi(dst) - pi(source)]. Omitting [potential] runs
    plain Dijkstra and requires non-negative costs. A supplied [potential]
    must have exactly [node_count] entries (asserted at entry; the stage-4
    bounds proofs for the relaxation kernel rest on it).

    With [stop_at] the search halts as soon as that node is settled; its
    distance and parents along its shortest path are exact, while other
    entries are tentative upper bounds, never below [stop_at]'s distance —
    which is exactly the property the min-cost-flow potential update
    [pi(v) <- pi(v) + min(dist(v), dist(stop_at))] needs. *)

val bellman_ford : Graph.t -> source:int -> result option
(** Handles negative costs; [None] if a negative-cost residual cycle is
    reachable from [source]. O(V·E). Used as a test oracle and to initialise
    potentials when negative arcs exist. *)
