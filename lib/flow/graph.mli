(** Residual flow network.

    Arcs carry an integer capacity and a real cost per unit of flow. Every
    call to {!add_arc} also creates the paired residual arc (zero capacity,
    negated cost); pushing flow moves capacity between the pair. Arc ids are
    dense integers; the residual partner of arc [a] is [a lxor 1], forward
    (user-created) arcs are the even ids. *)

type t

type arc = int
(** Arc identifier, index into the graph's arc store. *)

val create : num_nodes:int -> t
(** Network over nodes [0 .. num_nodes-1] with no arcs. *)

val node_count : t -> int

val arc_count : t -> int
(** Number of arcs including residual partners (always even). *)

val reserve : t -> arcs:int -> unit
(** Pre-sizes the arc store for [arcs] further {!add_arc} calls (each takes
    two slots: forward + residual partner), so a bulk construction pays one
    allocation instead of a doubling cascade. Purely an optimisation — arc
    ids and contents are unaffected. *)

val add_arc :
  ?icost:int -> t -> src:int -> dst:int -> capacity:int -> cost:float -> arc
(** Adds a forward arc and its residual partner; returns the forward arc id.
    Requires [capacity >= 0] and valid node ids. [icost] (default 0) is the
    quantised integer twin of [cost], stored in a parallel column for the
    integer SSP kernel; the residual partner carries its negation, exactly
    mirroring the float cost pairing. The graph never relates the two
    columns — the builder owns the quantisation contract. *)

val src : t -> arc -> int
val dst : t -> arc -> int
val cost : t -> arc -> float

val icost : t -> arc -> int
(** Quantised integer cost of an arc (the [icost] given to {!add_arc},
    negated on residual partners). *)

val residual_capacity : t -> arc -> int
(** Remaining capacity of [a] in the residual network. *)

val initial_capacity : t -> arc -> int
(** Capacity of [a] at creation time (0 for residual partners). *)

val unsafe_set_residual_capacity : t -> arc -> int -> unit
(** Overwrites [a]'s residual capacity {e without} touching its partner,
    breaking the pair-conservation invariant. Fault injection for audit
    tests only — never call this from algorithm code. *)

val flow : t -> arc -> int
(** Flow currently carried by a {e forward} arc: capacity moved to its
    residual partner. Requires an even (forward) arc id. *)

val push : t -> arc -> int -> unit
(** [push g a k] sends [k] units along [a]: decreases [a]'s residual
    capacity, increases its partner's. Requires
    [0 <= k <= residual_capacity g a]. *)

val iter_out_arcs : t -> int -> (arc -> unit) -> unit
(** Iterates all arc ids leaving a node (forward and residual alike);
    callers filter by {!residual_capacity}. *)

val first_out_arc : t -> int -> arc
(** First arc leaving a node, or -1 if it has none. With {!next_out_arc}
    this is the closure-free counterpart of {!iter_out_arcs} for hot loops:
    [let a = ref (first_out_arc g u) in while !a >= 0 do ... a :=
    next_out_arc g !a done]. *)

val next_out_arc : t -> arc -> arc
(** Next arc leaving the same node as [a], or -1 at the end of the list. *)

val fold_forward_arcs : t -> init:'a -> f:('a -> arc -> 'a) -> 'a
(** Folds over the user-created (even) arcs in insertion order. *)

(** {2 CSR finalization}

    {!finalize_csr} compacts the arc store into struct-of-arrays
    [dst]/[cost]/[residual_cap] arrays grouped per source node by an offset
    table, so the traversal kernels (Bellman–Ford, Dijkstra, BFS) scan the
    contiguous position range [\[out_begin n, out_end n)] instead of
    chasing [next] links. Arc ids are unchanged — positions carry their arc
    id ({!pos_arc}), the [a lxor 1] residual pairing is untouched, and
    within a node positions enumerate arcs in exactly the order
    {!first_out_arc}/{!next_out_arc} would (descending arc id). {!push},
    {!unsafe_set_residual_capacity} and {!reset_flow} keep the positional
    residual capacities current in place; only {!add_arc} invalidates the
    form (rebuild by calling {!finalize_csr} again). *)

val finalize_csr : t -> unit
(** Builds (or rebuilds) the CSR form. O(nodes + arcs); a no-op when the
    form is already current. *)

val csr_valid : t -> bool
(** [true] when the CSR form reflects the current arc store (no arcs added
    since the last {!finalize_csr}). *)

val out_begin : t -> int -> int
(** First CSR position of the arcs leaving a node. Requires {!csr_valid}. *)

val out_end : t -> int -> int
(** One past the last CSR position of the arcs leaving a node. *)

val pos_dst : t -> int -> int
(** Destination of the arc at a CSR position. *)

val pos_cost : t -> int -> float
(** Cost of the arc at a CSR position. *)

val pos_icost : t -> int -> int
(** Quantised integer cost of the arc at a CSR position. *)

val pos_residual_capacity : t -> int -> int
(** Residual capacity of the arc at a CSR position — kept current by
    {!push}/{!reset_flow} while the form is valid. *)

val pos_arc : t -> int -> arc
(** Arc id stored at a CSR position. *)

val arc_position : t -> arc -> int
(** CSR position of an arc id (inverse of {!pos_arc}). Requires
    {!csr_valid}. *)

(** {3 Raw CSR slices}

    The [unsafe_csr_*] accessors hand the traversal kernels the positional
    arrays themselves: one {!csr_valid} assert at fetch time, then the
    caller indexes positions from [\[out_begin n, out_end n)] ranges with
    no per-access validity or bounds check. Every such index site must
    carry a stage-4 licence [(* bounds: proved — ... *)] that
    [dune build @bounds] re-proves on every build; while {!csr_valid}
    holds, every position below {!arc_count} is in bounds for all four
    slices ([Audit.Flow.check_csr] verifies this at runtime). The slices
    stay current across {!push}/{!reset_flow} and are invalidated by
    {!add_arc}, like every CSR accessor. *)

val unsafe_csr_dst : t -> int array
(** Positional [dst] slice. Requires {!csr_valid}. *)

val unsafe_csr_cost : t -> float array
(** Positional cost slice. Requires {!csr_valid}. *)

val unsafe_csr_icost : t -> int array
(** Positional quantised-integer-cost slice. Requires {!csr_valid}. *)

val unsafe_csr_cap : t -> int array
(** Positional residual-capacity slice. Requires {!csr_valid}. *)

val unsafe_csr_arc : t -> int array
(** Positional arc-id slice. Requires {!csr_valid}. *)

val reset_flow : t -> unit
(** Returns every arc to zero flow. *)

val excess : t -> int -> int
(** Net inflow minus outflow at a node (flow-conservation check hook). *)
