type arc = int

(* Arcs live in parallel growable arrays; arc [a]'s residual partner is
   [a lxor 1]. Adjacency is an intrusive linked list: [head.(n)] is the first
   arc leaving node [n], [next.(a)] the following one, -1 terminates. *)
type t = {
  num_nodes : int;
  head : int array;
  mutable next : int array;
  mutable dst_ : int array;
  mutable cap_ : int array;          (* residual capacity *)
  mutable initial_cap : int array;   (* capacity at creation, for reset/flow *)
  mutable cost_ : float array;
  mutable count : int;
}

let create ~num_nodes =
  assert (num_nodes >= 0);
  {
    num_nodes;
    head = Array.make num_nodes (-1);
    next = [||];
    dst_ = [||];
    cap_ = [||];
    initial_cap = [||];
    cost_ = [||];
    count = 0;
  }

let node_count t = t.num_nodes
let arc_count t = t.count

let ensure_capacity t needed =
  let current = Array.length t.next in
  if needed > current then begin
    let fresh = Stdlib.max needed (Stdlib.max 16 (2 * current)) in
    let grow_int a = Array.append a (Array.make (fresh - current) 0) in
    let grow_float a = Array.append a (Array.make (fresh - current) 0.) in
    t.next <- grow_int t.next;
    t.dst_ <- grow_int t.dst_;
    t.cap_ <- grow_int t.cap_;
    t.initial_cap <- grow_int t.initial_cap;
    t.cost_ <- grow_float t.cost_
  end

let reserve t ~arcs =
  assert (arcs >= 0);
  (* Every add_arc consumes two slots (forward + residual partner). *)
  ensure_capacity t (t.count + (2 * arcs))

let add_half t ~src ~dst ~capacity ~cost =
  let a = t.count in
  ensure_capacity t (a + 1);
  t.dst_.(a) <- dst;
  t.cap_.(a) <- capacity;
  t.initial_cap.(a) <- capacity;
  t.cost_.(a) <- cost;
  t.next.(a) <- t.head.(src);
  t.head.(src) <- a;
  t.count <- a + 1;
  a

let add_arc t ~src ~dst ~capacity ~cost =
  assert (capacity >= 0);
  assert (src >= 0 && src < t.num_nodes && dst >= 0 && dst < t.num_nodes);
  let a = add_half t ~src ~dst ~capacity ~cost in
  let (_ : int) = add_half t ~src:dst ~dst:src ~capacity:0 ~cost:(-.cost) in
  a

let[@inline] partner a = a lxor 1

let[@inline] check_arc t a =
  assert (a >= 0 && a < t.count)

let[@inline] dst t a =
  check_arc t a;
  t.dst_.(a)

let[@inline] src t a =
  check_arc t a;
  (* The source of an arc is the destination of its partner. *)
  t.dst_.(partner a)

let[@inline] cost t a =
  check_arc t a;
  t.cost_.(a)

let[@inline] residual_capacity t a =
  check_arc t a;
  t.cap_.(a)

let initial_capacity t a =
  check_arc t a;
  t.initial_cap.(a)

let unsafe_set_residual_capacity t a k =
  check_arc t a;
  t.cap_.(a) <- k

let flow t a =
  check_arc t a;
  if a land 1 <> 0 then invalid_arg "Graph.flow: residual arc";
  t.initial_cap.(a) - t.cap_.(a)

let[@inline] push t a k =
  check_arc t a;
  assert (0 <= k && k <= t.cap_.(a));
  t.cap_.(a) <- t.cap_.(a) - k;
  t.cap_.(partner a) <- t.cap_.(partner a) + k

(* Closure-free adjacency walk for the hot paths: callers keep one cursor
   in a pre-hoisted ref and step it with [next_out_arc] until -1, instead of
   allocating an [iter_out_arcs] callback per relaxation round. *)
let[@inline] first_out_arc t n =
  assert (n >= 0 && n < t.num_nodes);
  t.head.(n)

let[@inline] next_out_arc t a =
  check_arc t a;
  t.next.(a)

let iter_out_arcs t n f =
  assert (n >= 0 && n < t.num_nodes);
  let a = ref t.head.(n) in
  while !a >= 0 do
    f !a;
    a := t.next.(!a)
  done

let fold_forward_arcs t ~init ~f =
  let acc = ref init in
  let a = ref 0 in
  while !a < t.count do
    acc := f !acc !a;
    a := !a + 2
  done;
  !acc

let reset_flow t = Array.blit t.initial_cap 0 t.cap_ 0 t.count

let excess t n =
  assert (n >= 0 && n < t.num_nodes);
  fold_forward_arcs t ~init:0 ~f:(fun acc a ->
      let fl = flow t a in
      if t.dst_.(a) = n then acc + fl
      else if t.dst_.(partner a) = n then acc - fl
      else acc)
