type arc = int

(* Hot accessors index the parallel arrays through [Geacc_unsafe] under
   stage-4 licences: every licensed index is re-proved by `dune build
   @bounds` from the structural invariants below (seeded for the analyzer,
   runtime-verified by Audit.Flow.check_csr and the construction asserts):

     0 <= count <= |next|, |dst_|, |cap_|, |initial_cap|, |cost_|, |icost_|
     head/next hold arc ids in [-1, count), dst_ holds nodes in [0, num_nodes)
     csr_valid  =>  |csr_offset| = num_nodes + 1,
                    count <= |csr_dst|, |csr_cost|, |csr_icost|, |csr_cap|,
                             |csr_arc|, |arc_pos|,
                    csr_offset values in [0, count],
                    csr_arc/arc_pos a permutation pair of [0, count)

   `--profile safe` compiles the same sites back to checked accesses. *)
module A = Geacc_unsafe

(* Arcs live in parallel growable arrays; arc [a]'s residual partner is
   [a lxor 1]. Adjacency is an intrusive linked list: [head.(n)] is the first
   arc leaving node [n], [next.(a)] the following one, -1 terminates. *)
type t = {
  num_nodes : int;
  head : int array;
  mutable next : int array;
  mutable dst_ : int array;
  mutable cap_ : int array;          (* residual capacity *)
  mutable initial_cap : int array;   (* capacity at creation, for reset/flow *)
  mutable cost_ : float array;
  mutable icost_ : int array;        (* quantised cost twin, see add_arc *)
  mutable count : int;
  (* CSR mirror of the arc store, built by [finalize_csr]: positions are
     grouped per source node ([csr_offset]) and hold per-position copies of
     dst/cost plus the residual capacity, so the traversal kernels scan
     contiguous memory instead of chasing [next] links. [csr_arc] maps a
     position back to its arc id and [arc_pos] inverts it; [csr_count] is
     the arc count the mirror was built for (-1 = never built), so adding
     arcs invalidates it while [push] keeps it current in place. *)
  mutable csr_count : int;
  mutable csr_offset : int array;    (* num_nodes + 1 *)
  mutable csr_dst : int array;
  mutable csr_cost : float array;
  mutable csr_icost : int array;
  mutable csr_cap : int array;
  mutable csr_arc : int array;       (* position -> arc id *)
  mutable arc_pos : int array;       (* arc id -> position *)
}

let create ~num_nodes =
  assert (num_nodes >= 0);
  {
    num_nodes;
    head = Array.make num_nodes (-1);
    next = [||];
    dst_ = [||];
    cap_ = [||];
    initial_cap = [||];
    cost_ = [||];
    icost_ = [||];
    count = 0;
    csr_count = -1;
    csr_offset = [||];
    csr_dst = [||];
    csr_cost = [||];
    csr_icost = [||];
    csr_cap = [||];
    csr_arc = [||];
    arc_pos = [||];
  }

let node_count t = t.num_nodes
let arc_count t = t.count

let ensure_capacity t needed =
  let current = Array.length t.next in
  if needed > current then begin
    let fresh = Stdlib.max needed (Stdlib.max 16 (2 * current)) in
    let grow_int a = Array.append a (Array.make (fresh - current) 0) in
    let grow_float a = Array.append a (Array.make (fresh - current) 0.) in
    t.next <- grow_int t.next;
    t.dst_ <- grow_int t.dst_;
    t.cap_ <- grow_int t.cap_;
    t.initial_cap <- grow_int t.initial_cap;
    t.cost_ <- grow_float t.cost_;
    t.icost_ <- grow_int t.icost_
  end

let reserve t ~arcs =
  assert (arcs >= 0);
  (* Every add_arc consumes two slots (forward + residual partner). *)
  ensure_capacity t (t.count + (2 * arcs))

let add_half t ~src ~dst ~capacity ~cost ~icost =
  let a = t.count in
  ensure_capacity t (a + 1);
  t.dst_.(a) <- dst;
  t.cap_.(a) <- capacity;
  t.initial_cap.(a) <- capacity;
  t.cost_.(a) <- cost;
  t.icost_.(a) <- icost;
  t.next.(a) <- t.head.(src);
  t.head.(src) <- a;
  t.count <- a + 1;
  a

let add_arc ?(icost = 0) t ~src ~dst ~capacity ~cost =
  assert (capacity >= 0);
  assert (src >= 0 && src < t.num_nodes && dst >= 0 && dst < t.num_nodes);
  let a = add_half t ~src ~dst ~capacity ~cost ~icost in
  let (_ : int) =
    add_half t ~src:dst ~dst:src ~capacity:0 ~cost:(-.cost) ~icost:(-icost)
  in
  a

let[@inline] partner a = a lxor 1

let[@inline] check_arc t a =
  assert (a >= 0 && a < t.count)

let[@inline] dst t a =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |dst_| *)
  A.unsafe_get t.dst_ a

let[@inline] src t a =
  check_arc t a;
  (* The source of an arc is the destination of its partner. *)
  (* bounds: proved — arcs are paired, so partner a < count <= |dst_| *)
  A.unsafe_get t.dst_ (partner a)

let[@inline] cost t a =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |cost_| *)
  A.unsafe_get t.cost_ a

let[@inline] icost t a =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |icost_| *)
  A.unsafe_get t.icost_ a

let[@inline] residual_capacity t a =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |cap_| *)
  A.unsafe_get t.cap_ a

let initial_capacity t a =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |initial_cap| *)
  A.unsafe_get t.initial_cap a

let[@inline] csr_valid t = t.csr_count = t.count

(* bounds: proved — fault-injection hook; check_arc guards a, mirror write follows arc_pos permutation *)
let unsafe_set_residual_capacity t a k =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |cap_| *)
  A.unsafe_set t.cap_ a k;
  if csr_valid t then
    (* bounds: proved — a < count <= |arc_pos|, arc_pos.(a) < count <= |csr_cap| *)
    A.unsafe_set t.csr_cap (A.unsafe_get t.arc_pos a) k

let flow t a =
  check_arc t a;
  if a land 1 <> 0 then invalid_arg "Graph.flow: residual arc";
  (* bounds: proved — check_arc gives a < count <= |initial_cap| = |cap_| *)
  A.unsafe_get t.initial_cap a - A.unsafe_get t.cap_ a

let[@inline] push t a k =
  check_arc t a;
  assert (0 <= k && k <= t.cap_.(a));
  let b = partner a in
  (* bounds: proved — check_arc gives a < count <= |cap_| *)
  A.unsafe_set t.cap_ a (A.unsafe_get t.cap_ a - k);
  (* bounds: proved — arcs are paired, so b = partner a < count <= |cap_| *)
  A.unsafe_set t.cap_ b (A.unsafe_get t.cap_ b + k);
  if csr_valid t then begin
    (* bounds: proved — a < count <= |arc_pos|, arc_pos.(a) < count <= |csr_cap| *)
    A.unsafe_set t.csr_cap (A.unsafe_get t.arc_pos a) (A.unsafe_get t.cap_ a);
    (* bounds: proved — b < count <= |arc_pos|, arc_pos.(b) < count <= |csr_cap| *)
    A.unsafe_set t.csr_cap (A.unsafe_get t.arc_pos b) (A.unsafe_get t.cap_ b)
  end

(* Closure-free adjacency walk for the hot paths: callers keep one cursor
   in a pre-hoisted ref and step it with [next_out_arc] until -1, instead of
   allocating an [iter_out_arcs] callback per relaxation round. *)
let[@inline] first_out_arc t n =
  assert (n >= 0 && n < t.num_nodes);
  (* bounds: proved — n < num_nodes = |head| *)
  A.unsafe_get t.head n

let[@inline] next_out_arc t a =
  check_arc t a;
  (* bounds: proved — check_arc gives a < count <= |next| *)
  A.unsafe_get t.next a

let iter_out_arcs t n f =
  assert (n >= 0 && n < t.num_nodes);
  (* bounds: proved — n < num_nodes = |head| *)
  let a = ref (A.unsafe_get t.head n) in
  (* poll: ok — single pass over one node's adjacency list *)
  while !a >= 0 do
    f !a;
    (* [f] may grow the arc store, so the list step stays checked. *)
    a := t.next.(!a)
  done

let fold_forward_arcs t ~init ~f =
  let acc = ref init in
  let a = ref 0 in
  (* poll: ok — single pass over the arc store *)
  while !a < t.count do
    acc := f !acc !a;
    a := !a + 2
  done;
  !acc

(* Degree-counted one-pass construction: count out-degrees, prefix-sum them
   into the offset table, then scatter the arcs. The scatter walks arc ids
   in descending order, so within a node positions hold descending ids —
   exactly the traversal order of the intrusive list ([head] prepends, ids
   grow monotonically) — and every CSR scan visits arcs in the same
   sequence the linked walk did. *)
let finalize_csr t =
  if not (csr_valid t) then begin
    let n = t.num_nodes and m = t.count in
    if Array.length t.csr_offset <> n + 1 then
      t.csr_offset <- Array.make (n + 1) 0
    else Array.fill t.csr_offset 0 (n + 1) 0;
    if Array.length t.csr_arc < m then begin
      t.csr_dst <- Array.make m 0;
      t.csr_cost <- Array.make m 0.;
      t.csr_icost <- Array.make m 0;
      t.csr_cap <- Array.make m 0;
      t.csr_arc <- Array.make m 0;
      t.arc_pos <- Array.make m 0
    end;
    let off = t.csr_offset in
    for a = 0 to m - 1 do
      (* src of arc [a] is the dst of its partner. *)
      let s = t.dst_.(a lxor 1) in
      off.(s + 1) <- off.(s + 1) + 1
    done;
    for i = 1 to n do
      off.(i) <- off.(i) + off.(i - 1)
    done;
    let cursor = Array.make n 0 in
    Array.blit off 0 cursor 0 n;
    for a = m - 1 downto 0 do
      let s = t.dst_.(a lxor 1) in
      let p = cursor.(s) in
      cursor.(s) <- p + 1;
      t.csr_dst.(p) <- t.dst_.(a);
      t.csr_cost.(p) <- t.cost_.(a);
      t.csr_icost.(p) <- t.icost_.(a);
      t.csr_cap.(p) <- t.cap_.(a);
      t.csr_arc.(p) <- a;
      t.arc_pos.(a) <- p
    done;
    t.csr_count <- m
  end

let[@inline] check_pos t p =
  assert (csr_valid t);
  assert (p >= 0 && p < t.count)

let[@inline] out_begin t n =
  assert (csr_valid t);
  assert (n >= 0 && n < t.num_nodes);
  (* bounds: proved — csr_valid gives |csr_offset| = num_nodes + 1 > n *)
  A.unsafe_get t.csr_offset n

let[@inline] out_end t n =
  assert (csr_valid t);
  assert (n >= 0 && n < t.num_nodes);
  (* bounds: proved — csr_valid gives |csr_offset| = num_nodes + 1 > n + 1 - 1 *)
  A.unsafe_get t.csr_offset (n + 1)

let[@inline] pos_dst t p =
  check_pos t p;
  (* bounds: proved — check_pos gives p < count <= |csr_dst| *)
  A.unsafe_get t.csr_dst p

let[@inline] pos_cost t p =
  check_pos t p;
  (* bounds: proved — check_pos gives p < count <= |csr_cost| *)
  A.unsafe_get t.csr_cost p

let[@inline] pos_icost t p =
  check_pos t p;
  (* bounds: proved — check_pos gives p < count <= |csr_icost| *)
  A.unsafe_get t.csr_icost p

let[@inline] pos_residual_capacity t p =
  check_pos t p;
  (* bounds: proved — check_pos gives p < count <= |csr_cap| *)
  A.unsafe_get t.csr_cap p

let[@inline] pos_arc t p =
  check_pos t p;
  (* bounds: proved — check_pos gives p < count <= |csr_arc| *)
  A.unsafe_get t.csr_arc p

let arc_position t a =
  check_arc t a;
  assert (csr_valid t);
  (* bounds: proved — check_arc gives a < count <= |arc_pos| *)
  A.unsafe_get t.arc_pos a

(* Raw CSR slices for the stage-4 licensed kernels: one validity assert at
   fetch time, then the caller indexes positions of [out_begin, out_end)
   ranges directly, each site under its own @bounds licence. The slices
   stay current across [push]/[reset_flow] (in-place updates) and are
   invalidated — like every CSR accessor — by [add_arc]. *)

(* bounds: proved — returns the whole slice; positions < arc_count are in bounds while csr_valid *)
let[@inline] unsafe_csr_dst t =
  assert (csr_valid t);
  t.csr_dst

(* bounds: proved — returns the whole slice; positions < arc_count are in bounds while csr_valid *)
let[@inline] unsafe_csr_cost t =
  assert (csr_valid t);
  t.csr_cost

(* bounds: proved — returns the whole slice; positions < arc_count are in bounds while csr_valid *)
let[@inline] unsafe_csr_icost t =
  assert (csr_valid t);
  t.csr_icost

(* bounds: proved — returns the whole slice; positions < arc_count are in bounds while csr_valid *)
let[@inline] unsafe_csr_cap t =
  assert (csr_valid t);
  t.csr_cap

(* bounds: proved — returns the whole slice; positions < arc_count are in bounds while csr_valid *)
let[@inline] unsafe_csr_arc t =
  assert (csr_valid t);
  t.csr_arc

let reset_flow t =
  Array.blit t.initial_cap 0 t.cap_ 0 t.count;
  if csr_valid t then
    for p = 0 to t.count - 1 do
      (* bounds: proved — p < count <= |csr_cap| = |csr_arc|, csr_arc.(p) < count <= |cap_| *)
      A.unsafe_set t.csr_cap p (A.unsafe_get t.cap_ (A.unsafe_get t.csr_arc p))
    done

let excess t n =
  assert (n >= 0 && n < t.num_nodes);
  fold_forward_arcs t ~init:0 ~f:(fun acc a ->
      let fl = flow t a in
      if t.dst_.(a) = n then acc + fl
      else if t.dst_.(partner a) = n then acc - fl
      else acc)
