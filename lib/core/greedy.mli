(** Greedy-GEACC (paper Algorithm 2, approximation ratio 1/(1+α)).

    Maintains a max-heap of candidate pairs, seeded with each node's nearest
    neighbour on the opposite side; repeatedly pops the globally most
    similar candidate, adds it when feasible, and refills the heap with the
    popped nodes' next feasible unvisited neighbours. Infeasibility is
    monotone during the run (capacities only shrink, assignments only grow),
    so each node keeps a rank cursor that never moves backwards and each
    pair enters the heap at most once — at most |V|·|U| iterations, each
    O(log(|V|+|U|) + σ) where σ is the incremental-NN cost.

    The returned matching is maximal: no feasible pair can be added
    (Lemma 5). Deterministic: ties in similarity break by (event, user)
    id. *)

val solve : Instance.t -> Matching.t

val solve_anytime :
  ?deadline:Geacc_robust.Budget.t -> Instance.t -> Matching.t * bool
(** [solve] under a time budget, polled once per heap pop. On expiry the
    run stops between pops — every pair already matched passed the full
    feasibility check, so the prefix is a feasible (if no longer maximal)
    matching. Returns [(matching, complete)]; [complete = false] means the
    deadline fired first. *)
