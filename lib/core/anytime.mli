(** Deadline-aware solving with a declarative fallback chain.

    The paper's own evaluation (Fig 6) shows the exact solvers blowing up
    super-exponentially while Greedy/MinCostFlow stay cheap — so a serving
    deployment wants "the best answer you can find by the deadline", not
    "the optimal answer whenever it is ready". This module packages the
    anytime solvers behind [Geacc_robust.Chain]: a chain of algorithms is
    tried in order under one overall time budget, each stage either
    completes, contributes a degraded best-so-far matching, or faults and
    falls through; the final matching is the best candidate by MaxSum,
    tagged {!Geacc_robust.Chain.Complete} only when the head stage finished
    untimed. Every stage's output — degraded or not — is audited
    [Validate]-clean under [GEACC_AUDIT=1] before the chain accepts it.

    The default chain is quality-first: {!Solver.Exhaustive} →
    {!Solver.Prune} → {!Solver.Min_cost_flow} → {!Solver.Greedy}. Under a
    tight deadline the expensive heads time out quickly at a consistent
    checkpoint and the tail guarantees a feasible answer (Greedy is
    near-linear; an expired budget still yields its feasible prefix). *)

type report = {
  matching : Matching.t;
  status : Geacc_robust.Chain.status;
  reason : string option;        (** Why degraded; [None] when complete. *)
  algorithm : Solver.algorithm;  (** Stage that produced [matching]. *)
  stages_tried : int;
  fallbacks : int;
  retries : int;
  faults : int;
  elapsed_s : float;
  trace : Geacc_robust.Chain.trace_entry list;
}

val default_chain : Solver.algorithm list
(** [[Exhaustive; Prune; Min_cost_flow; Greedy]]. *)

val stage :
  ?timeout_s:float ->
  ?network:Mincostflow.network ->
  Solver.algorithm ->
  (Instance.t, Matching.t) Geacc_robust.Chain.stage
(** One chain stage running the algorithm under the budget the chain arms
    (named after {!Solver.short_name}, which also keys its
    [timeout.<name>] fault point). Algorithms without budget support run
    to completion and always report complete. [network] selects the flow
    construction of the {!Solver.Min_cost_flow} stage. *)

val solve :
  ?timeout_s:float ->
  ?stage_timeout_s:float ->
  ?max_retries:int ->
  ?backoff_s:float ->
  ?algorithms:Solver.algorithm list ->
  ?network:Mincostflow.network ->
  Instance.t ->
  (report, Geacc_robust.Error.t) result
(** Runs the chain ([algorithms] defaults to {!default_chain}; a singleton
    list gives plain time-budgeted solving). [timeout_s] bounds the whole
    run, [stage_timeout_s] additionally caps each stage, [max_retries] and
    [backoff_s] govern retry of transient faults (see
    {!Geacc_robust.Chain.run}). [network] selects the flow construction of
    any {!Solver.Min_cost_flow} stage (default
    {!Mincostflow.default_network}). Fails with [Timeout] only when no
    stage produced any matching in time, and with [Exhausted] when every
    stage faulted. *)
