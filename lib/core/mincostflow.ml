module Graph = Geacc_flow.Graph
module Mcf = Geacc_flow.Mcf
module Audit = Geacc_check.Audit
module Fault = Geacc_robust.Fault
module Pool = Geacc_par.Pool

type network = Dense | Sparse

let network_name = function Dense -> "dense" | Sparse -> "sparse"

let network_of_string s =
  match String.lowercase_ascii s with
  | "dense" -> Ok Dense
  | "sparse" -> Ok Sparse
  | s -> Error (Printf.sprintf "unknown network %S (expected dense or sparse)" s)

type cost_kernel = Float_kernel | Int_kernel

let kernel_name = function Float_kernel -> "float" | Int_kernel -> "int"

let kernel_of_string s =
  match String.lowercase_ascii s with
  | "float" -> Ok Float_kernel
  | "int" -> Ok Int_kernel
  | s ->
      Error (Printf.sprintf "unknown cost kernel %S (expected float or int)" s)

(* Quantisation grid: costs 1 - sim ∈ [0, 1] round to [0, 2^30] and the
   float column stores the de-quantised grid point q/2^30 — not the raw
   float — so the two columns are the same number in two encodings. Grid
   points are dyadic rationals exactly representable as doubles, and
   while magnitudes stay inside [Mcf.exactness_guard] every sum either
   kernel forms is exact, so the kernels order every comparison
   identically (DESIGN.md §15). Rounding moves each cost by at most
   2^-31 ≈ 5e-10 — the same lossless-in-practice band as the τ = 0
   similarity gate. *)
let cost_scale = 1 lsl 30
let cost_scale_f = float_of_int cost_scale
let quantise c = int_of_float (Float.round (c *. cost_scale_f))
let dequantise q = float_of_int q /. cost_scale_f

(* Process-wide defaults, settable by front ends (mirrors
   [Pool.set_default_jobs]): explicit arguments always win. The initial
   values honour GEACC_NETWORK / GEACC_COST_KERNEL (read once at module
   init) so CI can sweep a whole test binary across networks and kernels
   without per-binary CLI plumbing; malformed values read as the built-in
   default, like GEACC_JOBS (the CLI front ends validate loudly, the
   library stays total). *)
let env_default var of_string fallback =
  match Sys.getenv_opt var with
  | None -> fallback
  | Some s -> ( match of_string (String.trim s) with Ok v -> v | Error _ -> fallback)

let network_default = ref (env_default "GEACC_NETWORK" network_of_string Sparse)
let min_sim_default = ref 0.

let kernel_default =
  ref (env_default "GEACC_COST_KERNEL" kernel_of_string Int_kernel)
let default_network () = !network_default
let set_default_network n = network_default := n
let default_min_sim () = !min_sim_default

let set_default_min_sim s =
  if not (s >= 0. && s <= 1.) then
    invalid_arg "Mincostflow.set_default_min_sim: threshold outside [0, 1]";
  min_sim_default := s

let default_cost_kernel () = !kernel_default
let set_default_cost_kernel k = kernel_default := k

type net = {
  graph : Graph.t;
  source : int;
  sink : int;
  pair_arcs : int;
  dense_pairs : int;
  network_used : network;
}

type stats = {
  flow_value : int;
  flow_cost : float;
  augmentations : int;
  dropped_pairs : int;
  pair_arcs : int;
  dense_pairs : int;
  timed_out : bool;
  kernel_used : cost_kernel;
  int_fallback : bool;
}

(* Node layout: 0 = source; 1..|V| = events; |V|+1..|V|+|U| = users; last =
   sink. *)

(* Sparse-build audit: every (v,u) pair the candidate queries pruned must be
   provably below the similarity gate — an index bug that silently drops a
   matchable pair would otherwise only show up as a worse MaxSum. *)
let audit_pruned_pairs ~site instance g ~min_sim ~n_v ~n_u =
  let emitted = Array.make (Stdlib.max (n_v * n_u) 1) false in
  Graph.fold_forward_arcs g ~init:() ~f:(fun () a ->
      let s = Graph.src g a and d = Graph.dst g a in
      if s >= 1 && s <= n_v && d > n_v && d <= n_v + n_u then
        emitted.(((s - 1) * n_u) + (d - 1 - n_v)) <- true);
  for v = 0 to n_v - 1 do
    for u = 0 to n_u - 1 do
      if not emitted.((v * n_u) + u) then begin
        let s = Instance.sim instance ~v ~u in
        if s > 0. && s >= min_sim then
          Audit.failf ~site
            "pruned pair (%d,%d) has similarity %.17g above the gate \
             (min_sim %.17g)"
            v u s min_sim
      end
    done
  done

let build_network ?jobs ?network ?min_sim instance =
  (* [mcf.alloc] simulates the network arena failing to materialise (the
     arc array is this solver's dominant allocation); the fallback harness
     treats the injected exception as a transient fault. *)
  Fault.inject "mcf.alloc";
  let network =
    match network with Some n -> n | None -> !network_default
  in
  let min_sim =
    match min_sim with Some s -> s | None -> !min_sim_default
  in
  if not (min_sim >= 0. && min_sim <= 1.) then
    invalid_arg "Mincostflow.build_network: min_sim outside [0, 1]";
  (* An active fault plan forces the dense sequential path: the sparse
     builder never evaluates [Instance.sim] (a poisoned value would just
     vanish into the pruned set), so replaying a [sim.*] plan in written
     order requires the dense table, computed sequentially. *)
  let fault = Fault.active () in
  let network = if fault then Dense else network in
  let jobs = if fault then Some 1 else jobs in
  let n_v = Instance.n_events instance and n_u = Instance.n_users instance in
  let source = 0 in
  let event_node v = 1 + v in
  let user_node u = 1 + n_v + u in
  let sink = 1 + n_v + n_u in
  let g = Graph.create ~num_nodes:(sink + 1) in
  let pair_arcs =
    match network with
    | Dense ->
        Graph.reserve g ~arcs:(n_v + (n_v * n_u) + n_u);
        for v = 0 to n_v - 1 do
          ignore
            (Graph.add_arc g ~src:source ~dst:(event_node v)
               ~capacity:(Instance.event_capacity instance v) ~cost:0.)
        done;
        (* The Θ(|V|·|U|) cost table is computed in parallel per user-chunk
           into pre-sized chunk-local buffers (v-major within the chunk). *)
        let cost_chunks =
          Pool.parallel_map_chunked ?jobs ~n:n_u (fun ~lo ~hi ->
              let width = hi - lo in
              let buf = Array.make (n_v * width) 0. in
              for v = 0 to n_v - 1 do
                let base = v * width in
                for u = lo to hi - 1 do
                  (* race: ok — Instance.sim reaches Fault.fire's hit counters only under an installed plan, and fault plans are armed solely by the single-domain robustness tests *)
                  buf.(base + u - lo) <- 1. -. Instance.sim instance ~v ~u
                done
              done;
              (lo, width, buf))
        in
        (* One arc per (v,u) pair, zero-similarity pairs included, as in
           the paper's construction. Emission is sequential and v-major
           with u ascending (chunks are contiguous and ordered), so arc ids
           — and therefore the SSP pivoting order — are identical for every
           job count. *)
        for v = 0 to n_v - 1 do
          for c = 0 to Array.length cost_chunks - 1 do
            let lo, width, buf = cost_chunks.(c) in
            for du = 0 to width - 1 do
              let q = quantise buf.((v * width) + du) in
              ignore
                (Graph.add_arc ~icost:q g ~src:(event_node v)
                   ~dst:(user_node (lo + du)) ~capacity:1
                   ~cost:(dequantise q))
            done
          done
        done;
        n_v * n_u
    | Sparse ->
        (* Similarity-pruned construction: per event, the candidate query
           returns exactly the users above the gate, so the event layer
           emits [Σ_v |cand v|] arcs instead of |V|·|U|. The per-event
           candidate sets are computed in parallel per event-chunk (each
           cell a function of its event id alone, so byte-identical for
           every job count); degree counting then pre-sizes the arc store
           exactly, and the sequential v-major, u-ascending emission fixes
           arc ids by (v, u) rank — identical to the dense layout minus the
           pruned pairs. *)
        Instance.prepare_event_queries instance;
        let cand_chunks =
          Pool.parallel_map_chunked ?jobs ~n:n_v (fun ~lo ~hi ->
              Array.init (hi - lo) (fun i ->
                  (* race: ok — candidate_users opens a fresh stream over the shared read-only index; the only mutable reach is Fault.fire's counters, armed solely by single-domain robustness tests *)
                  Instance.candidate_users instance ~v:(lo + i) ~min_sim))
        in
        let pair_arcs =
          Array.fold_left
            (fun acc chunk ->
              Array.fold_left (fun acc c -> acc + Array.length c) acc chunk)
            0 cand_chunks
        in
        Graph.reserve g ~arcs:(n_v + pair_arcs + n_u);
        for v = 0 to n_v - 1 do
          ignore
            (Graph.add_arc g ~src:source ~dst:(event_node v)
               ~capacity:(Instance.event_capacity instance v) ~cost:0.)
        done;
        Array.iteri
          (fun c chunk ->
            let lo =
              (* Chunks tile [0, n_v) contiguously in order; recover the
                 chunk's base event id from the preceding chunk sizes. *)
              let base = ref 0 in
              for i = 0 to c - 1 do
                base := !base + Array.length cand_chunks.(i)
              done;
              !base
            in
            Array.iteri
              (fun i candidates ->
                let v = lo + i in
                Array.iter
                  (fun (u, s) ->
                    let q = quantise (1. -. s) in
                    ignore
                      (Graph.add_arc ~icost:q g ~src:(event_node v)
                         ~dst:(user_node u) ~capacity:1
                         ~cost:(dequantise q)))
                  candidates)
              chunk)
          cand_chunks;
        if Audit.enabled () then
          audit_pruned_pairs ~site:"Mincostflow.build_network/sparse"
            instance g ~min_sim ~n_v ~n_u;
        pair_arcs
  in
  for u = 0 to n_u - 1 do
    ignore
      (Graph.add_arc g ~src:(user_node u) ~dst:sink
         ~capacity:(Instance.user_capacity instance u) ~cost:0.)
  done;
  {
    graph = g;
    source;
    sink;
    pair_arcs;
    dense_pairs = n_v * n_u;
    network_used = network;
  }

let solve_with_stats ?deadline ?jobs ?network ?min_sim ?cost_kernel instance
    =
  let n_v = Instance.n_events instance in
  let n_u = Instance.n_users instance in
  let kernel =
    match cost_kernel with Some k -> k | None -> !kernel_default
  in
  let net = build_network ?jobs ?network ?min_sim instance in
  let g = net.graph and source = net.source and sink = net.sink in
  (* A unit of flow adds 1 - path_cost to MaxSum; path costs only grow, so
     stopping before the first non-improving unit lands on the Δ with the
     largest MaxSum (the paper's argmax over Δ_min..Δ_max). *)
  (* Audit hooks fire inside the SSP loop, so a broken invariant names the
     augmentation that introduced it rather than surfacing after the run. *)
  if Audit.enabled () then begin
    Graph.finalize_csr g;
    Audit.Flow.check_csr ~site:"Mincostflow.solve/finalize" g
  end;
  let audit_after_dijkstra ~potential =
    if Audit.enabled () then
      Audit.Flow.check_reduced_costs ~site:"Mincostflow.solve/dijkstra" g
        ~potential
  in
  let audit_after_augment () =
    if Audit.enabled () then begin
      let site = "Mincostflow.solve/augment" in
      Audit.Flow.check_capacity ~site g;
      Audit.Flow.check_conservation ~site g ~source ~sink;
      (* Pushes must have kept the positional residual capacities current. *)
      Audit.Flow.check_csr ~site g
    end
  in
  let audit_after_dijkstra_int ~potential =
    if Audit.enabled () then
      Audit.Flow.check_reduced_costs_int ~site:"Mincostflow.solve/dijkstra-int"
        g ~potential
  in
  let solve_float () =
    Mcf.solve g ~source ~sink ?deadline
      ~should_augment:(fun ~path_cost -> path_cost < 1.)
      ~audit_after_dijkstra ~audit_after_augment ()
  in
  (* Both columns of every arc hold the same dyadic grid value, so within
     the magnitude guard the integer run provably mirrors the float
     kernel's comparisons (DESIGN.md §15); [None] means the instance left
     that regime — discard the partial flow and recompute in float. The
     guard override exists for tests to force this path. *)
  let guard =
    match Sys.getenv_opt "GEACC_INT_KERNEL_GUARD" with
    | Some s -> ( match int_of_string_opt s with Some g -> g | None -> Mcf.exactness_guard)
    | None -> Mcf.exactness_guard
  in
  let outcome, kernel_used, int_fallback =
    match kernel with
    | Float_kernel -> (solve_float (), Float_kernel, false)
    | Int_kernel -> (
        match
          Mcf.solve_int g ~source ~sink ?deadline ~guard
            ~stop_below:cost_scale
            ~audit_after_dijkstra:audit_after_dijkstra_int
            ~audit_after_augment ()
        with
        | Some io ->
            ( {
                Mcf.flow = io.Mcf.iflow;
                cost = float_of_int io.Mcf.icost /. cost_scale_f;
                augmentations = io.Mcf.iaugmentations;
                timed_out = io.Mcf.itimed_out;
              },
              Int_kernel,
              false )
        | None ->
            Graph.reset_flow g;
            (solve_float (), Float_kernel, true))
  in
  (* M_∅: pairs carrying flow with positive similarity. The similarity is
     recovered from the stored arc cost (s = 1 - cost) instead of being
     recomputed; [s > 0] iff [cost < 1], exactly the build-time gate. *)
  let assigned = Array.make n_u [] in
  Graph.fold_forward_arcs g ~init:() ~f:(fun () a ->
      let sv = Graph.src g a in
      if sv >= 1 && sv <= n_v then begin
        let d = Graph.dst g a in
        if d > n_v && d < sink && Graph.flow g a = 1 then begin
          let s = 1. -. Graph.cost g a in
          if s > 0. then begin
            let u = d - 1 - n_v in
            assigned.(u) <- (sv - 1, s) :: assigned.(u)
          end
        end
      end);
  (* Conflict resolution (Algorithm 1, lines 8-14): per user, keep events in
     descending similarity, skipping any that conflict with one already
     kept — a greedy max-weight independent set. *)
  let matching = Matching.create instance in
  let dropped = ref 0 in
  let cf = Instance.conflicts instance in
  (* Kept-set as a bitset, reused across users: the conflict probe per
     candidate is one word-AND scan of the event's conflict row. *)
  let kept = Bitset.create ~bits:n_v in
  Array.iteri
    (fun u events ->
      let sorted =
        List.sort
          (fun (v1, s1) (v2, s2) ->
            let c = Float.compare s2 s1 in
            if c <> 0 then c else Int.compare v1 v2)
          events
      in
      Bitset.clear kept;
      List.iter
        (fun (v, _) ->
          if Bitset.intersects (Conflict.row cf v) kept then incr dropped
          else begin
            Bitset.set kept v;
            let (_ : float) = Matching.add_exn matching ~v ~u in
            ()
          end)
        sorted)
    assigned;
  if outcome.Mcf.timed_out then
    Validate.audit_matching ~site:"Mincostflow.solve/degraded" matching;
  ( matching,
    {
      flow_value = outcome.Mcf.flow;
      flow_cost = outcome.Mcf.cost;
      augmentations = outcome.Mcf.augmentations;
      dropped_pairs = !dropped;
      pair_arcs = net.pair_arcs;
      dense_pairs = net.dense_pairs;
      timed_out = outcome.Mcf.timed_out;
      kernel_used;
      int_fallback;
    } )

let solve ?deadline ?jobs ?network ?min_sim ?cost_kernel instance =
  fst (solve_with_stats ?deadline ?jobs ?network ?min_sim ?cost_kernel instance)
