module Graph = Geacc_flow.Graph
module Mcf = Geacc_flow.Mcf
module Audit = Geacc_check.Audit
module Fault = Geacc_robust.Fault
module Pool = Geacc_par.Pool

type network = Dense | Sparse

let network_name = function Dense -> "dense" | Sparse -> "sparse"

let network_of_string s =
  match String.lowercase_ascii s with
  | "dense" -> Ok Dense
  | "sparse" -> Ok Sparse
  | s -> Error (Printf.sprintf "unknown network %S (expected dense or sparse)" s)

(* Process-wide defaults, settable by front ends (mirrors
   [Pool.set_default_jobs]): explicit arguments always win. *)
let network_default = ref Sparse
let min_sim_default = ref 0.
let default_network () = !network_default
let set_default_network n = network_default := n
let default_min_sim () = !min_sim_default

let set_default_min_sim s =
  if not (s >= 0. && s <= 1.) then
    invalid_arg "Mincostflow.set_default_min_sim: threshold outside [0, 1]";
  min_sim_default := s

type net = {
  graph : Graph.t;
  source : int;
  sink : int;
  pair_arcs : int;
  dense_pairs : int;
  network_used : network;
}

type stats = {
  flow_value : int;
  flow_cost : float;
  augmentations : int;
  dropped_pairs : int;
  pair_arcs : int;
  dense_pairs : int;
  timed_out : bool;
}

(* Node layout: 0 = source; 1..|V| = events; |V|+1..|V|+|U| = users; last =
   sink. *)

(* Sparse-build audit: every (v,u) pair the candidate queries pruned must be
   provably below the similarity gate — an index bug that silently drops a
   matchable pair would otherwise only show up as a worse MaxSum. *)
let audit_pruned_pairs ~site instance g ~min_sim ~n_v ~n_u =
  let emitted = Array.make (Stdlib.max (n_v * n_u) 1) false in
  Graph.fold_forward_arcs g ~init:() ~f:(fun () a ->
      let s = Graph.src g a and d = Graph.dst g a in
      if s >= 1 && s <= n_v && d > n_v && d <= n_v + n_u then
        emitted.(((s - 1) * n_u) + (d - 1 - n_v)) <- true);
  for v = 0 to n_v - 1 do
    for u = 0 to n_u - 1 do
      if not emitted.((v * n_u) + u) then begin
        let s = Instance.sim instance ~v ~u in
        if s > 0. && s >= min_sim then
          Audit.failf ~site
            "pruned pair (%d,%d) has similarity %.17g above the gate \
             (min_sim %.17g)"
            v u s min_sim
      end
    done
  done

let build_network ?jobs ?network ?min_sim instance =
  (* [mcf.alloc] simulates the network arena failing to materialise (the
     arc array is this solver's dominant allocation); the fallback harness
     treats the injected exception as a transient fault. *)
  Fault.inject "mcf.alloc";
  let network =
    match network with Some n -> n | None -> !network_default
  in
  let min_sim =
    match min_sim with Some s -> s | None -> !min_sim_default
  in
  if not (min_sim >= 0. && min_sim <= 1.) then
    invalid_arg "Mincostflow.build_network: min_sim outside [0, 1]";
  (* An active fault plan forces the dense sequential path: the sparse
     builder never evaluates [Instance.sim] (a poisoned value would just
     vanish into the pruned set), so replaying a [sim.*] plan in written
     order requires the dense table, computed sequentially. *)
  let fault = Fault.active () in
  let network = if fault then Dense else network in
  let jobs = if fault then Some 1 else jobs in
  let n_v = Instance.n_events instance and n_u = Instance.n_users instance in
  let source = 0 in
  let event_node v = 1 + v in
  let user_node u = 1 + n_v + u in
  let sink = 1 + n_v + n_u in
  let g = Graph.create ~num_nodes:(sink + 1) in
  let pair_arcs =
    match network with
    | Dense ->
        Graph.reserve g ~arcs:(n_v + (n_v * n_u) + n_u);
        for v = 0 to n_v - 1 do
          ignore
            (Graph.add_arc g ~src:source ~dst:(event_node v)
               ~capacity:(Instance.event_capacity instance v) ~cost:0.)
        done;
        (* The Θ(|V|·|U|) cost table is computed in parallel per user-chunk
           into pre-sized chunk-local buffers (v-major within the chunk). *)
        let cost_chunks =
          Pool.parallel_map_chunked ?jobs ~n:n_u (fun ~lo ~hi ->
              let width = hi - lo in
              let buf = Array.make (n_v * width) 0. in
              for v = 0 to n_v - 1 do
                let base = v * width in
                for u = lo to hi - 1 do
                  (* race: ok — Instance.sim reaches Fault.fire's hit counters only under an installed plan, and fault plans are armed solely by the single-domain robustness tests *)
                  buf.(base + u - lo) <- 1. -. Instance.sim instance ~v ~u
                done
              done;
              (lo, width, buf))
        in
        (* One arc per (v,u) pair, zero-similarity pairs included, as in
           the paper's construction. Emission is sequential and v-major
           with u ascending (chunks are contiguous and ordered), so arc ids
           — and therefore the SSP pivoting order — are identical for every
           job count. *)
        for v = 0 to n_v - 1 do
          for c = 0 to Array.length cost_chunks - 1 do
            let lo, width, buf = cost_chunks.(c) in
            for du = 0 to width - 1 do
              ignore
                (Graph.add_arc g ~src:(event_node v)
                   ~dst:(user_node (lo + du)) ~capacity:1
                   ~cost:buf.((v * width) + du))
            done
          done
        done;
        n_v * n_u
    | Sparse ->
        (* Similarity-pruned construction: per event, the candidate query
           returns exactly the users above the gate, so the event layer
           emits [Σ_v |cand v|] arcs instead of |V|·|U|. The per-event
           candidate sets are computed in parallel per event-chunk (each
           cell a function of its event id alone, so byte-identical for
           every job count); degree counting then pre-sizes the arc store
           exactly, and the sequential v-major, u-ascending emission fixes
           arc ids by (v, u) rank — identical to the dense layout minus the
           pruned pairs. *)
        Instance.prepare_event_queries instance;
        let cand_chunks =
          Pool.parallel_map_chunked ?jobs ~n:n_v (fun ~lo ~hi ->
              Array.init (hi - lo) (fun i ->
                  (* race: ok — candidate_users opens a fresh stream over the shared read-only index; the only mutable reach is Fault.fire's counters, armed solely by single-domain robustness tests *)
                  Instance.candidate_users instance ~v:(lo + i) ~min_sim))
        in
        let pair_arcs =
          Array.fold_left
            (fun acc chunk ->
              Array.fold_left (fun acc c -> acc + Array.length c) acc chunk)
            0 cand_chunks
        in
        Graph.reserve g ~arcs:(n_v + pair_arcs + n_u);
        for v = 0 to n_v - 1 do
          ignore
            (Graph.add_arc g ~src:source ~dst:(event_node v)
               ~capacity:(Instance.event_capacity instance v) ~cost:0.)
        done;
        Array.iteri
          (fun c chunk ->
            let lo =
              (* Chunks tile [0, n_v) contiguously in order; recover the
                 chunk's base event id from the preceding chunk sizes. *)
              let base = ref 0 in
              for i = 0 to c - 1 do
                base := !base + Array.length cand_chunks.(i)
              done;
              !base
            in
            Array.iteri
              (fun i candidates ->
                let v = lo + i in
                Array.iter
                  (fun (u, s) ->
                    ignore
                      (Graph.add_arc g ~src:(event_node v) ~dst:(user_node u)
                         ~capacity:1 ~cost:(1. -. s)))
                  candidates)
              chunk)
          cand_chunks;
        if Audit.enabled () then
          audit_pruned_pairs ~site:"Mincostflow.build_network/sparse"
            instance g ~min_sim ~n_v ~n_u;
        pair_arcs
  in
  for u = 0 to n_u - 1 do
    ignore
      (Graph.add_arc g ~src:(user_node u) ~dst:sink
         ~capacity:(Instance.user_capacity instance u) ~cost:0.)
  done;
  {
    graph = g;
    source;
    sink;
    pair_arcs;
    dense_pairs = n_v * n_u;
    network_used = network;
  }

let solve_with_stats ?deadline ?jobs ?network ?min_sim instance =
  let n_v = Instance.n_events instance in
  let n_u = Instance.n_users instance in
  let net = build_network ?jobs ?network ?min_sim instance in
  let g = net.graph and source = net.source and sink = net.sink in
  (* A unit of flow adds 1 - path_cost to MaxSum; path costs only grow, so
     stopping before the first non-improving unit lands on the Δ with the
     largest MaxSum (the paper's argmax over Δ_min..Δ_max). *)
  (* Audit hooks fire inside the SSP loop, so a broken invariant names the
     augmentation that introduced it rather than surfacing after the run. *)
  if Audit.enabled () then begin
    Graph.finalize_csr g;
    Audit.Flow.check_csr ~site:"Mincostflow.solve/finalize" g
  end;
  let audit_after_dijkstra ~potential =
    if Audit.enabled () then
      Audit.Flow.check_reduced_costs ~site:"Mincostflow.solve/dijkstra" g
        ~potential
  in
  let audit_after_augment () =
    if Audit.enabled () then begin
      let site = "Mincostflow.solve/augment" in
      Audit.Flow.check_capacity ~site g;
      Audit.Flow.check_conservation ~site g ~source ~sink;
      (* Pushes must have kept the positional residual capacities current. *)
      Audit.Flow.check_csr ~site g
    end
  in
  let outcome =
    Mcf.solve g ~source ~sink ?deadline
      ~should_augment:(fun ~path_cost -> path_cost < 1.)
      ~audit_after_dijkstra ~audit_after_augment ()
  in
  (* M_∅: pairs carrying flow with positive similarity. The similarity is
     recovered from the stored arc cost (s = 1 - cost) instead of being
     recomputed; [s > 0] iff [cost < 1], exactly the build-time gate. *)
  let assigned = Array.make n_u [] in
  Graph.fold_forward_arcs g ~init:() ~f:(fun () a ->
      let sv = Graph.src g a in
      if sv >= 1 && sv <= n_v then begin
        let d = Graph.dst g a in
        if d > n_v && d < sink && Graph.flow g a = 1 then begin
          let s = 1. -. Graph.cost g a in
          if s > 0. then begin
            let u = d - 1 - n_v in
            assigned.(u) <- (sv - 1, s) :: assigned.(u)
          end
        end
      end);
  (* Conflict resolution (Algorithm 1, lines 8-14): per user, keep events in
     descending similarity, skipping any that conflict with one already
     kept — a greedy max-weight independent set. *)
  let matching = Matching.create instance in
  let dropped = ref 0 in
  let cf = Instance.conflicts instance in
  Array.iteri
    (fun u events ->
      let sorted =
        List.sort
          (fun (v1, s1) (v2, s2) ->
            let c = Float.compare s2 s1 in
            if c <> 0 then c else Int.compare v1 v2)
          events
      in
      let kept = ref [] in
      List.iter
        (fun (v, _) ->
          if List.exists (fun v' -> Conflict.mem cf v v') !kept then incr dropped
          else begin
            kept := v :: !kept;
            let (_ : float) = Matching.add_exn matching ~v ~u in
            ()
          end)
        sorted)
    assigned;
  if outcome.Mcf.timed_out then
    Validate.audit_matching ~site:"Mincostflow.solve/degraded" matching;
  ( matching,
    {
      flow_value = outcome.Mcf.flow;
      flow_cost = outcome.Mcf.cost;
      augmentations = outcome.Mcf.augmentations;
      dropped_pairs = !dropped;
      pair_arcs = net.pair_arcs;
      dense_pairs = net.dense_pairs;
      timed_out = outcome.Mcf.timed_out;
    } )

let solve ?deadline ?jobs ?network ?min_sim instance =
  fst (solve_with_stats ?deadline ?jobs ?network ?min_sim instance)
