module Graph = Geacc_flow.Graph
module Mcf = Geacc_flow.Mcf
module Audit = Geacc_check.Audit
module Fault = Geacc_robust.Fault
module Pool = Geacc_par.Pool

type stats = {
  flow_value : int;
  flow_cost : float;
  augmentations : int;
  dropped_pairs : int;
  timed_out : bool;
}

(* Node layout: 0 = source; 1..|V| = events; |V|+1..|V|+|U| = users; last =
   sink. *)
let build_network ?jobs instance =
  (* [mcf.alloc] simulates the network arena failing to materialise (the
     Θ(|V|·|U|) arc array is this solver's dominant allocation); the
     fallback harness treats the injected exception as a transient fault. *)
  Fault.inject "mcf.alloc";
  let n_v = Instance.n_events instance and n_u = Instance.n_users instance in
  let source = 0 in
  let event_node v = 1 + v in
  let user_node u = 1 + n_v + u in
  let sink = 1 + n_v + n_u in
  let g = Graph.create ~num_nodes:(sink + 1) in
  Graph.reserve g ~arcs:(n_v + (n_v * n_u) + n_u);
  for v = 0 to n_v - 1 do
    ignore
      (Graph.add_arc g ~src:source ~dst:(event_node v)
         ~capacity:(Instance.event_capacity instance v) ~cost:0.)
  done;
  (* The Θ(|V|·|U|) cost table is computed in parallel per user-chunk into
     pre-sized chunk-local buffers (v-major within the chunk). An active
     fault plan forces the sequential path so the sim.* hit counters replay
     in the exact order the plan was written against. *)
  let jobs = if Fault.active () then Some 1 else jobs in
  let cost_chunks =
    Pool.parallel_map_chunked ?jobs ~n:n_u (fun ~lo ~hi ->
        let width = hi - lo in
        let buf = Array.make (n_v * width) 0. in
        for v = 0 to n_v - 1 do
          let base = v * width in
          for u = lo to hi - 1 do
            buf.(base + u - lo) <- 1. -. Instance.sim instance ~v ~u
          done
        done;
        (lo, width, buf))
  in
  (* One arc per (v,u) pair, zero-similarity pairs included, as in the
     paper's construction. Emission is sequential and v-major with u
     ascending (chunks are contiguous and ordered), so arc ids — and
     therefore the SSP pivoting order — are identical for every job
     count. *)
  let vu_arc = Array.make (n_v * n_u) (-1) in
  for v = 0 to n_v - 1 do
    for c = 0 to Array.length cost_chunks - 1 do
      let lo, width, buf = cost_chunks.(c) in
      for du = 0 to width - 1 do
        let u = lo + du in
        vu_arc.((v * n_u) + u) <-
          Graph.add_arc g ~src:(event_node v) ~dst:(user_node u) ~capacity:1
            ~cost:buf.((v * width) + du)
      done
    done
  done;
  for u = 0 to n_u - 1 do
    ignore
      (Graph.add_arc g ~src:(user_node u) ~dst:sink
         ~capacity:(Instance.user_capacity instance u) ~cost:0.)
  done;
  (g, source, sink, vu_arc)

let solve_with_stats ?deadline ?jobs instance =
  let n_u = Instance.n_users instance in
  let g, source, sink, vu_arc = build_network ?jobs instance in
  (* A unit of flow adds 1 - path_cost to MaxSum; path costs only grow, so
     stopping before the first non-improving unit lands on the Δ with the
     largest MaxSum (the paper's argmax over Δ_min..Δ_max). *)
  (* Audit hooks fire inside the SSP loop, so a broken invariant names the
     augmentation that introduced it rather than surfacing after the run. *)
  let audit_after_dijkstra ~potential =
    if Audit.enabled () then
      Audit.Flow.check_reduced_costs ~site:"Mincostflow.solve/dijkstra" g
        ~potential
  in
  let audit_after_augment () =
    if Audit.enabled () then begin
      let site = "Mincostflow.solve/augment" in
      Audit.Flow.check_capacity ~site g;
      Audit.Flow.check_conservation ~site g ~source ~sink
    end
  in
  let outcome =
    Mcf.solve g ~source ~sink ?deadline
      ~should_augment:(fun ~path_cost -> path_cost < 1.)
      ~audit_after_dijkstra ~audit_after_augment ()
  in
  (* M_∅: pairs carrying flow with positive similarity. *)
  let assigned = Array.make n_u [] in
  for v = 0 to Instance.n_events instance - 1 do
    for u = 0 to n_u - 1 do
      let a = vu_arc.((v * n_u) + u) in
      if Graph.flow g a = 1 then begin
        let s = Instance.sim instance ~v ~u in
        if s > 0. then assigned.(u) <- (v, s) :: assigned.(u)
      end
    done
  done;
  (* Conflict resolution (Algorithm 1, lines 8-14): per user, keep events in
     descending similarity, skipping any that conflict with one already
     kept — a greedy max-weight independent set. *)
  let matching = Matching.create instance in
  let dropped = ref 0 in
  let cf = Instance.conflicts instance in
  Array.iteri
    (fun u events ->
      let sorted =
        List.sort
          (fun (v1, s1) (v2, s2) ->
            let c = Float.compare s2 s1 in
            if c <> 0 then c else Int.compare v1 v2)
          events
      in
      let kept = ref [] in
      List.iter
        (fun (v, _) ->
          if List.exists (fun v' -> Conflict.mem cf v v') !kept then incr dropped
          else begin
            kept := v :: !kept;
            let (_ : float) = Matching.add_exn matching ~v ~u in
            ()
          end)
        sorted)
    assigned;
  if outcome.Mcf.timed_out then
    Validate.audit_matching ~site:"Mincostflow.solve/degraded" matching;
  ( matching,
    {
      flow_value = outcome.Mcf.flow;
      flow_cost = outcome.Mcf.cost;
      augmentations = outcome.Mcf.augmentations;
      dropped_pairs = !dropped;
      timed_out = outcome.Mcf.timed_out;
    } )

let solve ?deadline ?jobs instance =
  fst (solve_with_stats ?deadline ?jobs instance)
