module Budget = Geacc_robust.Budget

type stats = {
  invocations : int;
  complete_searches : int;
  prunes : int;
  prune_depth_total : int;
  max_depth : int;
  exhausted_budget : bool;
  timed_out : bool;
}

exception Budget_exhausted

type searcher = {
  instance : Instance.t;
  order : int array;        (* event ids in descending s_v * c_v *)
  suffix_bound : float array;
      (* suffix_bound.(i) = sum over positions k >= i of s_k * c_k;
         suffix_bound.(|L|) = 0 *)
  user_best : float array;  (* s_u: each user's best similarity *)
  mutable user_slack : float;
      (* sum over users of remaining capacity * s_u — an admissible bound
         on all future gain from the user side (0 when disabled) *)
  tighten : bool;
  current : Matching.t;
  mutable best : Matching.t;
  mutable best_maxsum : float;
  pruning : bool;
  budget : int;
  deadline : Budget.t;
  mutable timed_out : bool;
  mutable invocations : int;
  mutable complete_searches : int;
  mutable prunes : int;
  mutable prune_depth_total : int;
  mutable max_depth : int;
}

let epsilon = 1e-12

let nearest_sim instance v =
  match Instance.event_neighbor instance ~v ~rank:1 with
  | Some (_, s) -> s
  | None -> 0.

let user_nearest_sim instance u =
  match Instance.user_neighbor instance ~u ~rank:1 with
  | Some (_, s) -> s
  | None -> 0.

let build_order instance =
  let n = Instance.n_events instance in
  let weight = Array.init n (fun v ->
      nearest_sim instance v *. float_of_int (Instance.event_capacity instance v))
  in
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun v1 v2 ->
      let c = Float.compare weight.(v2) weight.(v1) in
      if c <> 0 then c else Int.compare v1 v2)
    order;
  let suffix = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. weight.(order.(i))
  done;
  (order, suffix)

let record_depth s depth = if depth > s.max_depth then s.max_depth <- depth

let record_prune s depth =
  s.prunes <- s.prunes + 1;
  s.prune_depth_total <- s.prune_depth_total + depth

(* Has the current matching beaten the incumbent? First-found wins ties so
   the search is deterministic. *)
let complete s =
  s.complete_searches <- s.complete_searches + 1;
  if Matching.maxsum s.current > s.best_maxsum +. epsilon then begin
    s.best <- Matching.copy s.current;
    s.best_maxsum <- Matching.maxsum s.current
  end

(* [search s pos rank depth] decides the state of the pair made of the event
   at position [pos] of the order and its [rank]-th nearest user
   (Algorithm 4); [continue_from] implements lines 6-17, choosing the next
   pair to visit and applying the Lemma 6 bound before descending. *)
let rec search s pos rank depth =
  if s.invocations >= s.budget then raise Budget_exhausted;
  if Budget.check s.deadline then begin
    (* The current/best matchings are only mutated through Matching's
       feasibility-checked interface, so unwinding here leaves [s.best] a
       consistent, feasible checkpoint. *)
    s.timed_out <- true;
    raise Budget_exhausted
  end;
  s.invocations <- s.invocations + 1;
  record_depth s depth;
  let v = s.order.(pos) in
  match Instance.event_neighbor s.instance ~v ~rank with
  | None ->
      (* No pair to decide at this level: the event has fewer than [rank]
         positive-similarity users. Move on to the next event. *)
      next_event s pos depth
  | Some (u, _) ->
      (match Matching.check_add s.current ~v ~u with
      | None ->
          (* State 1: matched. *)
          let (_ : float) = Matching.add_exn s.current ~v ~u in
          Validate.audit_matching ~site:"Exact.search/match" s.current;
          s.user_slack <- s.user_slack -. s.user_best.(u);
          continue_from s pos rank depth;
          s.user_slack <- s.user_slack +. s.user_best.(u);
          Matching.remove_exn s.current ~v ~u
      | Some _ -> ());
      (* State 2: unmatched. *)
      continue_from s pos rank depth

and continue_from s pos rank depth =
  let v = s.order.(pos) in
  let next = Instance.event_neighbor s.instance ~v ~rank:(rank + 1) in
  let capacity_left = Matching.remaining_event_capacity s.current v in
  match next with
  | Some (_, next_sim) when capacity_left > 0 ->
      (* Stay on this event, try its next nearest user. Bound: everything
         still open is at most the later events' s·c plus this event's
         remaining capacity filled at the next user's similarity. *)
      let future =
        let event_side =
          s.suffix_bound.(pos + 1) +. (next_sim *. float_of_int capacity_left)
        in
        if s.tighten then Float.min event_side s.user_slack else event_side
      in
      let bound = Matching.maxsum s.current +. future in
      if (not s.pruning) || bound > s.best_maxsum +. epsilon then
        search s pos (rank + 1) (depth + 1)
      else record_prune s depth
  | Some _ | None -> next_event s pos depth

and next_event s pos depth =
  if pos + 1 >= Array.length s.order then complete s
  else begin
    let future =
      if s.tighten then Float.min s.suffix_bound.(pos + 1) s.user_slack
      else s.suffix_bound.(pos + 1)
    in
    let bound = Matching.maxsum s.current +. future in
    if (not s.pruning) || bound > s.best_maxsum +. epsilon then
      search s (pos + 1) 1 (depth + 1)
    else record_prune s depth
  end

let solve ?(pruning = true) ?warm_start ?(tighten = false) ?budget
    ?(deadline = Budget.unlimited) instance =
  let warm_start = match warm_start with Some w -> w | None -> pruning in
  let order, suffix_bound = build_order instance in
  (* The warm start honours the deadline too: if time is already short the
     incumbent is whatever greedy prefix fits, which is still feasible. *)
  let best =
    if warm_start then fst (Greedy.solve_anytime ~deadline instance)
    else Matching.create instance
  in
  let n_users = Instance.n_users instance in
  let user_best =
    if tighten then Array.init n_users (fun u -> user_nearest_sim instance u)
    else Array.make n_users 0.
  in
  let user_slack =
    if tighten then begin
      let acc = ref 0. in
      for u = 0 to n_users - 1 do
        acc :=
          !acc
          +. (float_of_int (Instance.user_capacity instance u) *. user_best.(u))
      done;
      !acc
    end
    else 0.
  in
  let s =
    {
      instance;
      order;
      suffix_bound;
      user_best;
      user_slack;
      tighten;
      current = Matching.create instance;
      best;
      best_maxsum = Matching.maxsum best;
      pruning;
      budget = (match budget with Some b -> b | None -> max_int);
      deadline;
      timed_out = Budget.expired deadline;
      invocations = 0;
      complete_searches = 0;
      prunes = 0;
      prune_depth_total = 0;
      max_depth = 0;
    }
  in
  let exhausted =
    if Array.length order = 0 || s.timed_out then s.timed_out
    else
      try
        search s 0 1 1;
        false
      with Budget_exhausted -> true
  in
  if s.timed_out then
    Validate.audit_matching ~site:"Exact.solve/degraded" s.best;
  ( s.best,
    {
      invocations = s.invocations;
      complete_searches = s.complete_searches;
      prunes = s.prunes;
      prune_depth_total = s.prune_depth_total;
      max_depth = s.max_depth;
      exhausted_budget = exhausted;
      timed_out = s.timed_out;
    } )

let solve_prune ?deadline instance = fst (solve ?deadline instance)

let solve_exhaustive ?deadline instance =
  fst (solve ~pruning:false ~warm_start:false ?deadline instance)
