(** One entry point over all GEACC algorithms.

    Used by the CLI, the examples and the benchmark harness so that an
    algorithm is a runtime value. The random baselines consume entropy from
    [rng]; the deterministic algorithms ignore it. *)

type algorithm =
  | Greedy          (** Greedy-GEACC, 1/(1+α) approximation. *)
  | Min_cost_flow   (** MinCostFlow-GEACC, 1/α approximation. *)
  | Prune           (** Prune-GEACC exact search. *)
  | Exhaustive      (** Exact search without pruning (Fig 6 baseline). *)
  | Random_v        (** Random baseline iterating over events. *)
  | Random_u        (** Random baseline iterating over users. *)
  | Greedy_naive    (** Sort-all-pairs greedy; identical output to
                        {!Greedy}, ablation baseline. *)
  | Greedy_ls       (** Greedy-GEACC followed by local-search improvement
                        (extension beyond the paper). *)
  | Online          (** Online arrivals in random order, served greedily on
                        arrival (extension beyond the paper); consumes
                        [rng]. *)

val all : algorithm list
(** Every algorithm, approximation algorithms first. *)

val name : algorithm -> string
(** Paper name, e.g. ["Greedy-GEACC"]. *)

val short_name : algorithm -> string
(** CLI/bench identifier, e.g. ["greedy"]. *)

val of_string : string -> (algorithm, string) result
(** Parses a {!short_name} (case-insensitive). *)

val is_exact : algorithm -> bool

val run :
  ?rng:Geacc_util.Rng.t ->
  ?deadline:Geacc_robust.Budget.t ->
  ?network:Mincostflow.network ->
  algorithm ->
  Instance.t ->
  Matching.t
(** Runs the algorithm. [rng] defaults to a fixed seed (42) so that even
    baseline runs are reproducible by default. [deadline] makes the
    budget-aware algorithms ({!Greedy}, {!Min_cost_flow}, {!Prune},
    {!Exhaustive}) anytime — on expiry they return their best feasible
    matching so far; the remaining algorithms already run in (low)
    polynomial time and ignore it. [network] selects the flow-network
    construction of {!Min_cost_flow} (default
    {!Mincostflow.default_network}); the other algorithms ignore it. Use
    {!Anytime.solve} to also learn whether the result was degraded. *)
