(** Online event-participant arrangement (extension beyond the paper).

    In a live EBSN users arrive over time and must be answered immediately;
    the paper's conclusion points at such dynamic settings. This solver
    processes users in an arrival order and irrevocably assigns each, on
    arrival, their most interesting events greedily — best first — until
    the user's capacity is filled or no feasible event remains (event
    capacities deplete as earlier arrivals consume them; conflict
    constraints apply within the user's own assignment).

    The result is feasible by construction but can be far below the offline
    algorithms — early arrivals lock up capacity of broadly popular
    events — which the [ablation-online] benchmark quantifies against
    Greedy-GEACC and the optimum.

    Arrival orders come from callers (ultimately from network input in a
    serving deployment), so a bad order is a data error, not a programming
    error: it is reported as a structured [Error.Invalid_input] naming the
    offending id, never as an exception. *)

val check_order :
  Instance.t -> int array -> (unit, Geacc_robust.Error.t) result
(** [Ok ()] iff the array is a permutation of the user ids. The error
    pinpoints the first problem: wrong length, out-of-range id, or
    duplicated id. *)

val serve_user :
  Matching.t -> Instance.t -> ?deadline:Geacc_robust.Budget.t -> int -> unit
(** Serve one arrival into an arrangement under construction: walk user
    [u]'s neighbour ranks (descending similarity), taking every event that
    is feasible right now, until the user is full or the ranks run out.
    [deadline] is polled before every neighbour step; every prefix of the
    walk leaves the matching feasible, so a cut-short serve is safe.

    This is the repair primitive of the serving loop ([Geacc_serve]): the
    online arrangement is {e prefix-stable} — a user's assignment depends
    only on users served before them — so re-serving a suffix of the
    arrival order reproduces exactly what a full replay would compute. *)

val solve :
  ?order:int array ->
  ?deadline:Geacc_robust.Budget.t ->
  Instance.t ->
  (Matching.t, Geacc_robust.Error.t) result
(** [order] is the arrival permutation of user ids (default: ascending).
    Fails with {!check_order}'s error when [order] is not a permutation.

    [deadline] (default {!Geacc_robust.Budget.unlimited}) is polled before
    every assignment step; on expiry the remaining arrivals are left
    unserved and the (feasible) prefix matching is returned. *)

val solve_random_order :
  ?deadline:Geacc_robust.Budget.t ->
  rng:Geacc_util.Rng.t ->
  Instance.t ->
  Matching.t
(** Arrival order drawn uniformly from the permutations of the users.
    [deadline] as in {!solve}. *)
