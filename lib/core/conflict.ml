module Int_set = Set.Make (Int)

type t = {
  n_events : int;
  adjacency : Int_set.t array;
  (* Bitset twin of [adjacency], one row per event: the feasibility hot
     paths test a whole row against a user's assigned-event bitset with
     one word-AND scan instead of per-pair membership probes. *)
  rows : Bitset.t array;
  mutable cardinal : int;
}

let create ~n_events =
  if n_events < 0 then invalid_arg "Conflict.create: negative n_events";
  {
    n_events;
    adjacency = Array.make n_events Int_set.empty;
    rows = Array.init n_events (fun _ -> Bitset.create ~bits:n_events);
    cardinal = 0;
  }

let n_events t = t.n_events

let check_id t v =
  if v < 0 || v >= t.n_events then
    invalid_arg (Printf.sprintf "Conflict: event id %d out of range" v)

let add t v w =
  check_id t v;
  check_id t w;
  if v = w then invalid_arg "Conflict.add: an event cannot conflict with itself";
  if not (Int_set.mem w t.adjacency.(v)) then begin
    t.adjacency.(v) <- Int_set.add w t.adjacency.(v);
    t.adjacency.(w) <- Int_set.add v t.adjacency.(w);
    Bitset.set t.rows.(v) w;
    Bitset.set t.rows.(w) v;
    t.cardinal <- t.cardinal + 1
  end

let mem t v w =
  check_id t v;
  check_id t w;
  v <> w && Bitset.mem t.rows.(v) w

let row t v =
  check_id t v;
  t.rows.(v)

let cardinal t = t.cardinal

let degree t v =
  check_id t v;
  Int_set.cardinal t.adjacency.(v)

let iter_conflicting t v f =
  check_id t v;
  Int_set.iter f t.adjacency.(v)

let iter_pairs t f =
  Array.iteri
    (fun v set -> Int_set.iter (fun w -> if v < w then f v w) set)
    t.adjacency

let of_pairs ~n_events pairs =
  let t = create ~n_events in
  List.iter (fun (v, w) -> add t v w) pairs;
  t

let ratio t =
  if t.n_events < 2 then 0.
  else
    float_of_int t.cardinal
    /. (float_of_int t.n_events *. float_of_int (t.n_events - 1) /. 2.)

let copy t =
  {
    n_events = t.n_events;
    adjacency = Array.copy t.adjacency;
    rows = Array.map Bitset.copy t.rows;
    cardinal = t.cardinal;
  }

let pp ppf t =
  Format.fprintf ppf "CF(%d pairs, ratio %.3f)" t.cardinal (ratio t)
