(** Exact search: Prune-GEACC (paper Algorithms 3–4) and its unpruned
    exhaustive counterpart.

    The search enumerates, depth-first, the matched/unmatched state of every
    pair (v, u): events in descending [s_v · c_v] order (where [s_v] is the
    similarity of [v]'s nearest user), and for each event its users in
    descending similarity. Pairs with zero similarity are never enumerated —
    they cannot be matched and only loosen the bound.

    With pruning on, a branch is cut when the Lemma 6 upper bound
    [MaxSum(M_visited) + Σ_{k>i} s_k·c_k + sim(v_i,u_ij)·c_remaining(v_i)]
    cannot beat the incumbent, and the incumbent starts at Greedy-GEACC's
    matching instead of the empty one. Comparisons use a 1e-12 slack, so a
    "better" matching within that slack of the incumbent may be pruned —
    tests compare objectives with a coarser tolerance.

    Worst-case exponential; intended for small instances (the paper uses
    |V| = 5, |U| ≤ 15). Two mechanisms make the search anytime: [budget]
    caps the number of search-node visits, and [deadline] (a
    [Geacc_robust.Budget.t]) stops it on a time budget. Both unwind at a
    consistent checkpoint — the incumbent is always a feasible matching
    built through [Matching]'s checked interface — and return the best
    matching found so far. *)

type stats = {
  invocations : int;        (** Search-GEACC calls (Fig 6d). *)
  complete_searches : int;  (** Recursions reaching the deepest level (Fig 6c). *)
  prunes : int;             (** Branches cut by the Lemma 6 bound. *)
  prune_depth_total : int;  (** Σ depth at each prune; mean = Fig 6a. *)
  max_depth : int;          (** Deepest level reached. *)
  exhausted_budget : bool;  (** [true] if the visit budget or the deadline
                                stopped the search (result is then
                                best-so-far, not optimal). *)
  timed_out : bool;         (** [true] if specifically the [deadline]
                                stopped the search. *)
}

val solve :
  ?pruning:bool -> ?warm_start:bool -> ?tighten:bool -> ?budget:int ->
  ?deadline:Geacc_robust.Budget.t ->
  Instance.t -> Matching.t * stats
(** Defaults: [pruning = true], [warm_start = pruning] (seed the incumbent
    with Greedy-GEACC), [tighten = false], no budget, no deadline.

    [tighten] adds a user-side admissible bound (extension beyond the
    paper): future gain is also capped by
    [sum over u of (remaining capacity of u) * (u's best similarity)],
    and a branch is cut when the {e minimum} of the two bounds cannot beat
    the incumbent. The paper's Lemma 6 bound ignores user capacities
    entirely, so it degenerates when the user side binds (small c_u, no
    conflicts); the tightened search returns the same optimum with often
    orders-of-magnitude fewer visits, but its Fig 6 counters are no longer
    comparable to the paper's, hence opt-in. *)

val solve_prune : ?deadline:Geacc_robust.Budget.t -> Instance.t -> Matching.t
(** [solve] with the paper's Prune-GEACC configuration. *)

val solve_exhaustive :
  ?deadline:Geacc_robust.Budget.t -> Instance.t -> Matching.t
(** [solve ~pruning:false ~warm_start:false] — the Fig 6 baseline. *)
