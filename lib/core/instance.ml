module Nn_backend = Geacc_index.Nn_backend

(* Lazily-built neighbour source for one direction of queries (e.g. events
   querying users). [Indexed] serves ranks from an incremental NN stream of
   the instance's index backend per querying node; [Scanned] caches a full
   sorted scan per node (fallback for similarities that are not monotone in
   distance). *)
type source =
  | Indexed of {
      profile : Similarity.profile;
      index : Nn_backend.index;
      streams : Nn_backend.stream option array;  (* per querying node *)
    }
  | Scanned of { sorted : (int * float) array option array }

type t = {
  events : Entity.t array;
  users : Entity.t array;
  conflicts : Conflict.t;
  similarity : Similarity.t;
  backend : Nn_backend.t;
  dim : int;
  mutable event_queries : source option;  (* events asking for users *)
  mutable user_queries : source option;   (* users asking for events *)
}

let create ~sim ?(backend = Nn_backend.kd_tree) ~events ~users ~conflicts () =
  let dim =
    if Array.length events > 0 then Entity.dim events.(0)
    else if Array.length users > 0 then Entity.dim users.(0)
    else invalid_arg "Instance.create: no entities"
  in
  let check_side name side =
    Array.iteri
      (fun i (e : Entity.t) ->
        if e.Entity.id <> i then
          invalid_arg
            (Printf.sprintf "Instance.create: %s id %d at position %d" name
               e.Entity.id i);
        if Entity.dim e <> dim then
          invalid_arg
            (Printf.sprintf "Instance.create: %s %d has dimension %d, expected %d"
               name i (Entity.dim e) dim))
      side
  in
  check_side "event" events;
  check_side "user" users;
  if Conflict.n_events conflicts <> Array.length events then
    invalid_arg "Instance.create: conflict set ranges over a different event count";
  {
    events;
    users;
    conflicts;
    similarity = sim;
    backend;
    dim;
    event_queries = None;
    user_queries = None;
  }

let n_events t = Array.length t.events
let n_users t = Array.length t.users
let event t v = t.events.(v)
let user t u = t.users.(u)
let events t = t.events
let users t = t.users
let conflicts t = t.conflicts
let similarity t = t.similarity
let dim t = t.dim

(* [sim.nan]/[sim.huge] corrupt similarity values at this one chokepoint
   (matching bookkeeping, flow costs and validation all read through here),
   so the audit layer and the fallback harness can be shown catching a
   poisoned objective mid-solve. One flag load when no plan is active. *)
let injected_sim s =
  if Geacc_robust.Fault.fire "sim.nan" then Float.nan
  else if Geacc_robust.Fault.fire "sim.huge" then 1e300
  else s

let sim t ~v ~u =
  let s =
    Similarity.eval t.similarity t.events.(v).Entity.attrs
      t.users.(u).Entity.attrs
  in
  if Geacc_robust.Fault.active () then injected_sim s else s

let event_capacity t v = t.events.(v).Entity.capacity
let user_capacity t u = t.users.(u).Entity.capacity

let sum_capacity side = Array.fold_left (fun acc e -> acc + e.Entity.capacity) 0 side
let max_capacity side = Array.fold_left (fun acc e -> Stdlib.max acc e.Entity.capacity) 0 side

let sum_event_capacity t = sum_capacity t.events
let sum_user_capacity t = sum_capacity t.users
let max_event_capacity t = max_capacity t.events
let max_user_capacity t = max_capacity t.users

let build_source t ~targets =
  match Similarity.dist_profile t.similarity with
  | Some profile ->
      let points = Array.map (fun (e : Entity.t) -> e.Entity.attrs) targets in
      let index = t.backend.Nn_backend.build points in
      let n_queriers =
        if targets == t.users then Array.length t.events else Array.length t.users
      in
      Indexed { profile; index; streams = Array.make n_queriers None }
  | None ->
      let n_queriers =
        if targets == t.users then Array.length t.events else Array.length t.users
      in
      Scanned { sorted = Array.make n_queriers None }

let event_source t =
  match t.event_queries with
  | Some s -> s
  | None ->
      let s = build_source t ~targets:t.users in
      t.event_queries <- Some s;
      s

let user_source t =
  match t.user_queries with
  | Some s -> s
  | None ->
      let s = build_source t ~targets:t.events in
      t.user_queries <- Some s;
      s

let scan_sorted t ~query_is_event ~node =
  let n = if query_is_event then n_users t else n_events t in
  let pairs = ref [] in
  for j = n - 1 downto 0 do
    let s =
      if query_is_event then sim t ~v:node ~u:j else sim t ~v:j ~u:node
    in
    if s > 0. then pairs := (j, s) :: !pairs
  done;
  let a = Array.of_list !pairs in
  Array.sort
    (fun (i1, s1) (i2, s2) ->
      let c = Float.compare s2 s1 in
      if c <> 0 then c else Int.compare i1 i2)
    a;
  a

let neighbor t source ~query_is_event ~node ~rank =
  assert (rank >= 1);
  match source with
  | Indexed { profile; index; streams } ->
      let stream =
        match streams.(node) with
        | Some s -> s
        | None ->
            let query =
              if query_is_event then t.events.(node).Entity.attrs
              else t.users.(node).Entity.attrs
            in
            let s =
              index.Nn_backend.stream ~query
                ~max_dist:profile.Similarity.cutoff
            in
            streams.(node) <- Some s;
            s
      in
      (match stream.Nn_backend.get rank with
      | None -> None
      | Some (idx, dist) ->
          let s = profile.Similarity.sim_of_dist dist in
          (* Monotone profile: once similarity underflows to 0, so do all
             later ranks. *)
          if s > 0. then Some (idx, s) else None)
  | Scanned { sorted } ->
      let a =
        match sorted.(node) with
        | Some a -> a
        | None ->
            let a = scan_sorted t ~query_is_event ~node in
            sorted.(node) <- Some a;
            a
      in
      if rank <= Array.length a then Some a.(rank - 1) else None

let event_neighbor t ~v ~rank =
  neighbor t (event_source t) ~query_is_event:true ~node:v ~rank

let user_neighbor t ~u ~rank =
  neighbor t (user_source t) ~query_is_event:false ~node:u ~rank

let prepare_event_queries t = ignore (event_source t : source)

(* Similarity-pruned candidate set of one event, for the sparse network
   builder: every user with [sim > 0] (and [>= min_sim]), ascending user
   id. Unlike [event_neighbor] this touches no per-node caches — the
   indexed path opens a fresh stream per call and the scanned path computes
   directly — so after [prepare_event_queries] has forced the shared
   (read-only) index, concurrent calls from pool workers are safe.

   The indexed path recovers similarities through the distance profile,
   whose contract ([sim_of_dist (dist lv lu) = eval lv lu]) makes them
   bitwise-identical to [sim t ~v ~u]; monotonicity lets the collection
   stop at the first rank whose similarity falls below the gate. *)
let candidate_users t ~v ~min_sim =
  match t.event_queries with
  | None ->
      invalid_arg "Instance.candidate_users: call prepare_event_queries first"
  | Some (Indexed { profile; index; streams = _ }) ->
      let stream =
        index.Nn_backend.stream ~query:t.events.(v).Entity.attrs
          ~max_dist:profile.Similarity.cutoff
      in
      let acc = ref [] and count = ref 0 in
      (* poll: ok — the stream stops at the first rank below the gate; bounded by the candidate count *)
      let rec go rank =
        match stream.Nn_backend.get rank with
        | None -> ()
        | Some (u, dist) ->
            let s = profile.Similarity.sim_of_dist dist in
            if s > 0. && s >= min_sim then begin
              acc := (u, s) :: !acc;
              incr count;
              go (rank + 1)
            end
      in
      go 1;
      let a = Array.make !count (0, 0.) in
      List.iter
        (fun c ->
          decr count;
          a.(!count) <- c)
        !acc;
      (* Streams yield descending similarity; arc emission wants ascending
         user id. *)
      Array.sort (fun (u1, _) (u2, _) -> Int.compare u1 u2) a;
      a
  | Some (Scanned _) ->
      let n = n_users t in
      let acc = ref [] in
      for u = n - 1 downto 0 do
        let s = sim t ~v ~u in
        if s > 0. && s >= min_sim then acc := (u, s) :: !acc
      done;
      Array.of_list !acc

let side_work = function
  | None -> 0
  | Some (Indexed { streams; _ }) ->
      (* Streams are opaque across backends; count the ones opened. *)
      Array.fold_left
        (fun acc s -> match s with None -> acc | Some _ -> acc + 1)
        0 streams
  | Some (Scanned { sorted }) ->
      Array.fold_left
        (fun acc s -> match s with None -> acc | Some a -> acc + Array.length a)
        0 sorted

let neighbor_work t = (side_work t.event_queries, side_work t.user_queries)

let with_backend t backend =
  { t with backend; event_queries = None; user_queries = None }

(* The prepared query sources depend only on the entities, which are
   unchanged — swapping the conflicts keeps the (expensive) NN state. *)
let with_conflicts t conflicts = { t with conflicts }

let pp_summary ppf t =
  Format.fprintf ppf
    "|V|=%d |U|=%d d=%d sum(c_v)=%d sum(c_u)=%d max(c_u)=%d %a sim=%a"
    (n_events t) (n_users t) t.dim (sum_event_capacity t)
    (sum_user_capacity t) (max_user_capacity t) Conflict.pp t.conflicts
    Similarity.pp t.similarity
