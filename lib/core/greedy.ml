module Heap = Geacc_pqueue.Binary_heap
module Audit = Geacc_check.Audit
module Budget = Geacc_robust.Budget

type candidate = { sim : float; v : int; u : int }

(* Max-heap on similarity; ties by ascending (v,u) for determinism. *)
let candidate_cmp c1 c2 =
  let c = Float.compare c2.sim c1.sim in
  if c <> 0 then c
  else
    let c = Int.compare c1.v c2.v in
    if c <> 0 then c else Int.compare c1.u c2.u

type state = {
  instance : Instance.t;
  matching : Matching.t;
  heap : candidate Heap.t;
  pushed : (int, unit) Hashtbl.t;  (* pairs ever pushed; key v * |U| + u *)
  event_rank : int array;  (* next NN rank to examine per event *)
  user_rank : int array;
}

let pair_key st ~v ~u = (v * Instance.n_users st.instance) + u

let was_pushed st ~v ~u = Hashtbl.mem st.pushed (pair_key st ~v ~u)

let mark_pushed st ~v ~u = Hashtbl.replace st.pushed (pair_key st ~v ~u) ()

(* Would adding {v,u} right now violate a capacity or conflict constraint?
   All three conditions are monotone: once true they stay true, which is
   what lets the rank cursors advance permanently past such neighbours. *)
let infeasible st ~v ~u =
  Matching.remaining_event_capacity st.matching v <= 0
  || Matching.remaining_user_capacity st.matching u <= 0
  || Matching.user_conflicts_with st.matching ~u ~v

(* Advance [v]'s cursor to its next feasible neighbour that has never been
   pushed, and push that pair. Neighbours already pushed (possibly still in
   the heap) are skipped permanently: they will be, or have been, processed
   when popped. *)
let refill_event st v =
  (* poll: ok — the rank cursor only ever advances, so refills are amortized across the popping loop, which polls *)
  let rec scan () =
    match Instance.event_neighbor st.instance ~v ~rank:st.event_rank.(v) with
    | None -> ()
    | Some (u, sim) ->
        if was_pushed st ~v ~u || infeasible st ~v ~u then begin
          st.event_rank.(v) <- st.event_rank.(v) + 1;
          scan ()
        end
        else begin
          mark_pushed st ~v ~u;
          Heap.push st.heap { sim; v; u };
          st.event_rank.(v) <- st.event_rank.(v) + 1
        end
  in
  scan ()

let refill_user st u =
  (* poll: ok — the rank cursor only ever advances, so refills are amortized across the popping loop, which polls *)
  let rec scan () =
    match Instance.user_neighbor st.instance ~u ~rank:st.user_rank.(u) with
    | None -> ()
    | Some (v, sim) ->
        if was_pushed st ~v ~u || infeasible st ~v ~u then begin
          st.user_rank.(u) <- st.user_rank.(u) + 1;
          scan ()
        end
        else begin
          mark_pushed st ~v ~u;
          Heap.push st.heap { sim; v; u };
          st.user_rank.(u) <- st.user_rank.(u) + 1
        end
  in
  scan ()

let solve_anytime ?(deadline = Budget.unlimited) instance =
  let st =
    {
      instance;
      matching = Matching.create instance;
      heap = Heap.create ~cmp:candidate_cmp ();
      pushed = Hashtbl.create 1024;
      event_rank = Array.make (Instance.n_events instance) 1;
      user_rank = Array.make (Instance.n_users instance) 1;
    }
  in
  (* Initialisation (Algorithm 2, lines 1-9): each node contributes its
     first NN pair; duplicate pairs are pushed once. *)
  for v = 0 to Instance.n_events instance - 1 do
    if Instance.event_capacity instance v > 0 then refill_event st v
  done;
  for u = 0 to Instance.n_users instance - 1 do
    if Instance.user_capacity instance u > 0 then refill_user st u
  done;
  (* Iteration (lines 11-23): pop the most similar candidate, match it when
     feasible, then refill from both endpoints that still have capacity.
     The deadline is polled between pops, so every matched pair went through
     the full feasibility check and the prefix stays feasible on expiry. *)
  let rec loop () =
    if Budget.check deadline then false
    else
      match Heap.pop st.heap with
      | None -> true
      | Some { v; u; _ } ->
          (match Matching.add st.matching ~v ~u with
          | Ok _ | Error _ -> ());
          if Matching.remaining_event_capacity st.matching v > 0 then
            refill_event st v;
          if Matching.remaining_user_capacity st.matching u > 0 then
            refill_user st u;
          (* Audit at the step granularity: a conflict or capacity overflow is
             reported at the pop that introduced it, with the heap's structure
             checked alongside the partial matching. *)
          if Audit.enabled () then begin
            Audit.Heap.check_binary ~site:"Greedy.solve/pop" st.heap;
            Validate.audit_matching ~site:"Greedy.solve/pop" st.matching
          end;
          loop ()
  in
  let complete = loop () in
  if not complete then
    Validate.audit_matching ~site:"Greedy.solve/degraded" st.matching;
  (st.matching, complete)

let solve instance = fst (solve_anytime instance)
