type violation =
  | Event_id_out_of_range of int
  | User_id_out_of_range of int
  | Duplicate_pair of int * int
  | Event_over_capacity of { v : int; load : int; capacity : int }
  | User_over_capacity of { u : int; load : int; capacity : int }
  | Non_positive_similarity of int * int
  | Conflicting_assignment of { u : int; v1 : int; v2 : int }
  | Maxsum_drift of { incremental : float; recomputed : float }

let check instance pairs =
  let n_v = Instance.n_events instance and n_u = Instance.n_users instance in
  let violations = ref [] in
  let report x = violations := x :: !violations in
  let in_range = List.filter (fun (v, u) ->
      let ok_v = v >= 0 && v < n_v and ok_u = u >= 0 && u < n_u in
      if not ok_v then report (Event_id_out_of_range v);
      if not ok_u then report (User_id_out_of_range u);
      ok_v && ok_u)
      pairs
  in
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun (v, u) ->
        if Hashtbl.mem seen (v, u) then begin
          report (Duplicate_pair (v, u));
          false
        end
        else begin
          Hashtbl.add seen (v, u) ();
          true
        end)
      in_range
  in
  let event_load = Array.make n_v 0 and user_load = Array.make n_u 0 in
  let user_events = Array.make n_u [] in
  List.iter
    (fun (v, u) ->
      event_load.(v) <- event_load.(v) + 1;
      user_load.(u) <- user_load.(u) + 1;
      user_events.(u) <- v :: user_events.(u);
      if Instance.sim instance ~v ~u <= 0. then
        report (Non_positive_similarity (v, u)))
    unique;
  Array.iteri
    (fun v load ->
      let capacity = Instance.event_capacity instance v in
      if load > capacity then report (Event_over_capacity { v; load; capacity }))
    event_load;
  Array.iteri
    (fun u load ->
      let capacity = Instance.user_capacity instance u in
      if load > capacity then report (User_over_capacity { u; load; capacity }))
    user_load;
  let cf = Instance.conflicts instance in
  Array.iteri
    (fun u vs ->
      let vs = List.sort_uniq compare vs in
      List.iter
        (fun v1 ->
          List.iter
            (fun v2 ->
              if v1 < v2 && Conflict.mem cf v1 v2 then
                report (Conflicting_assignment { u; v1; v2 }))
            vs)
        vs)
    user_events;
  List.rev !violations

let is_feasible instance pairs = check instance pairs = []

let check_matching m =
  let incremental = Matching.maxsum m in
  let recomputed = Matching.maxsum_recomputed m in
  let drift =
    if Float.abs (incremental -. recomputed) > 1e-6 then
      [ Maxsum_drift { incremental; recomputed } ]
    else []
  in
  check (Matching.instance m) (Matching.pairs m) @ drift

let pp_violation ppf = function
  | Event_id_out_of_range v -> Format.fprintf ppf "event id %d out of range" v
  | User_id_out_of_range u -> Format.fprintf ppf "user id %d out of range" u
  | Duplicate_pair (v, u) -> Format.fprintf ppf "duplicate pair (v%d,u%d)" v u
  | Event_over_capacity { v; load; capacity } ->
      Format.fprintf ppf "event %d over capacity (%d > %d)" v load capacity
  | User_over_capacity { u; load; capacity } ->
      Format.fprintf ppf "user %d over capacity (%d > %d)" u load capacity
  | Non_positive_similarity (v, u) ->
      Format.fprintf ppf "pair (v%d,u%d) has non-positive similarity" v u
  | Conflicting_assignment { u; v1; v2 } ->
      Format.fprintf ppf "user %d assigned conflicting events %d and %d" u v1 v2
  | Maxsum_drift { incremental; recomputed } ->
      Format.fprintf ppf "MaxSum drift: incremental %.9f vs recomputed %.9f"
        incremental recomputed

let audit_matching ~site m =
  if Geacc_check.Audit.enabled () then
    match check_matching m with
    | [] -> ()
    | v :: _ as vs ->
        Geacc_check.Audit.failf ~site "%s (first of %d violations)"
          (Format.asprintf "%a" pp_violation v)
          (List.length vs)
