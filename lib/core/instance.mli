(** A GEACC problem instance (paper Definition 5).

    Bundles the event side, the user side, the conflict set and the
    similarity function, and provides the neighbour-enumeration services the
    solvers are built on: the rank-[j] most similar counterpart of a node,
    restricted to strictly positive similarity, in deterministic order
    (descending similarity, ties by id).

    Neighbour enumeration is index-backed: when the similarity has a
    distance profile (see {!Similarity.dist_profile}) a kd-tree per side is
    built lazily and each node materialises only the prefix of neighbours it
    actually visits; otherwise a per-node sorted scan is cached on first
    use. *)

type t

val create :
  sim:Similarity.t ->
  ?backend:Geacc_index.Nn_backend.t ->
  events:Entity.t array ->
  users:Entity.t array ->
  conflicts:Conflict.t ->
  unit ->
  t
(** Validates that all attribute vectors share one dimension, that entity
    ids equal their array positions, and that [conflicts] ranges over the
    event ids. [backend] selects the NN index serving neighbour queries
    (default {!Geacc_index.Nn_backend.kd_tree}); it only applies when the
    similarity has a distance profile. @raise Invalid_argument otherwise. *)

val n_events : t -> int
val n_users : t -> int
val event : t -> int -> Entity.t
val user : t -> int -> Entity.t
val events : t -> Entity.t array
val users : t -> Entity.t array
val conflicts : t -> Conflict.t
val similarity : t -> Similarity.t
val dim : t -> int

val sim : t -> v:int -> u:int -> float
(** Interestingness of event [v] for user [u]. *)

val event_capacity : t -> int -> int
val user_capacity : t -> int -> int
val sum_event_capacity : t -> int
val sum_user_capacity : t -> int
val max_event_capacity : t -> int
(** 0 when there are no events. *)

val max_user_capacity : t -> int
(** The α of the approximation ratios; 0 when there are no users. *)

val event_neighbor : t -> v:int -> rank:int -> (int * float) option
(** [event_neighbor t ~v ~rank] is the [rank]-th (1-based) most similar user
    of event [v] as [(user id, similarity)], considering only users with
    positive similarity. [None] when fewer such users exist. *)

val user_neighbor : t -> u:int -> rank:int -> (int * float) option
(** Symmetric: the [rank]-th most similar event of user [u]. *)

val prepare_event_queries : t -> unit
(** Forces the event-side neighbour source (for indexed similarities: the
    NN index over the users) so that subsequent {!candidate_users} calls
    only read shared state. Must run before querying candidates from pool
    workers — the lazy initialisation itself is not thread-safe. *)

val candidate_users : t -> v:int -> min_sim:float -> (int * float) array
(** The similarity-pruned candidate users of event [v]: every [(u, s)] with
    [s = sim t ~v ~u], [s > 0] and [s >= min_sim], in ascending user id.
    Similarities are bitwise-identical to {!sim} (when no fault plan is
    poisoning it). Unlike {!event_neighbor} this writes no per-node caches:
    after {!prepare_event_queries}, concurrent calls are safe.
    @raise Invalid_argument before {!prepare_event_queries} has run. *)

val with_backend : t -> Geacc_index.Nn_backend.t -> t
(** Same instance data served by a different NN backend, with fresh (cold)
    neighbour caches. The original is untouched. *)

val with_conflicts : t -> Conflict.t -> t
(** The same instance (entities, similarity, prepared neighbour-query
    state all shared) under a different conflict graph. Used by the
    serving layer to refresh its cached instance on conflict-only
    batches without rebuilding the NN index. *)

val neighbor_work : t -> int * int
(** Diagnostic: how many (event-side, user-side) neighbour streams have
    been opened so far by index-backed solvers on this instance (for
    scanned sources: total entries cached). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line description: sizes, capacities, conflict ratio, similarity. *)
