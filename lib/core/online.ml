module Error = Geacc_robust.Error
module Budget = Geacc_robust.Budget

let check_order instance order =
  let n = Instance.n_users instance in
  let invalid message = Error (Error.Invalid_input { what = "order"; message }) in
  if Array.length order <> n then
    invalid
      (Printf.sprintf "length %d differs from |U| = %d" (Array.length order) n)
  else begin
    let seen = Array.make n false in
    let bad = ref None in
    Array.iter
      (fun u ->
        if !bad = None then
          if u < 0 || u >= n then
            bad := Some (Printf.sprintf "user id %d out of range [0, %d)" u n)
          else if seen.(u) then
            bad := Some (Printf.sprintf "user id %d appears twice" u)
          else seen.(u) <- true)
      order;
    match !bad with None -> Ok () | Some message -> invalid message
  end

(* Serve one arrival: walk the user's neighbour ranks (descending
   similarity), taking every event that is feasible right now, until the
   user is full or the ranks run out. *)
let serve_user matching instance ?(deadline = Budget.unlimited) u =
  (* The deadline is polled before each neighbour step: every [add] that ran
     passed the full feasibility check, so the served prefix stays feasible
     when the walk is cut short. *)
  let rec walk rank =
    if
      (not (Budget.check deadline))
      && Matching.remaining_user_capacity matching u > 0
    then
      match Instance.user_neighbor instance ~u ~rank with
      | None -> ()
      | Some (v, _) ->
          (match Matching.add matching ~v ~u with Ok _ | Error _ -> ());
          walk (rank + 1)
  in
  walk 1

let solve_order ?(deadline = Budget.unlimited) instance order =
  let matching = Matching.create instance in
  Array.iter (fun u -> serve_user matching instance ~deadline u) order;
  matching

let solve ?order ?deadline instance =
  match order with
  | None ->
      Ok
        (solve_order ?deadline instance
           (Array.init (Instance.n_users instance) Fun.id))
  | Some o -> (
      match check_order instance o with
      | Ok () -> Ok (solve_order ?deadline instance o)
      | Error _ as e -> e)

let solve_random_order ?deadline ~rng instance =
  let order = Array.init (Instance.n_users instance) Fun.id in
  Geacc_util.Rng.shuffle_in_place rng order;
  (* A shuffled identity array is a permutation by construction, so the
     checked path cannot fail here. *)
  solve_order ?deadline instance order
