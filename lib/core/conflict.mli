(** The conflict set CF: a symmetric relation over event ids.

    Two conflicting events cannot both be assigned to the same user (paper
    Definition 3). Self-conflicts are rejected; adding a pair twice is a
    no-op. Membership is one bit probe; enumeration of a node's
    conflicting events is O(deg). Each event also carries its conflict
    row as a {!Bitset.t} ({!row}), so whole-row feasibility probes are
    word-AND scans. *)

type t

val create : n_events:int -> t
(** Empty relation over event ids [0 .. n_events-1]. *)

val n_events : t -> int

val add : t -> int -> int -> unit
(** [add t v w] marks [{v,w}] conflicting. Requires [v <> w] and both ids in
    range. *)

val mem : t -> int -> int -> bool
(** Symmetric membership; [mem t v v] is [false]. O(1): one word probe of
    the event's conflict row. *)

val row : t -> int -> Bitset.t
(** The bitset of events conflicting with the given one — intersect it
    with an assigned-event bitset for a whole-row feasibility probe. The
    returned set is live (updated by {!add}) and must not be mutated. *)

val cardinal : t -> int
(** Number of (unordered) conflicting pairs. *)

val degree : t -> int -> int

val iter_conflicting : t -> int -> (int -> unit) -> unit
(** All events conflicting with the given one. *)

val iter_pairs : t -> (int -> int -> unit) -> unit
(** Each unordered pair once, with [v < w]. *)

val of_pairs : n_events:int -> (int * int) list -> t

val ratio : t -> float
(** [|CF| / (|V|·(|V|-1)/2)], the x-axis of the paper's conflict sweeps; 0
    when there are fewer than two events. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
