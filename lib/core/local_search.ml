module Budget = Geacc_robust.Budget

type stats = { rounds : int; moves_accepted : int; gained : float }

(* Best feasible pair touching event [v] or user [u] — excluding the
   banned pair — by (sim, v, u) order.

   Candidates come from the instance's NN-index neighbour streams (the same
   query the sparse flow builder uses), which enumerate exactly the
   positive-similarity counterparts in descending similarity with ties by
   id — so zero-similarity pairs, never feasible, are skipped up front, and
   each side's scan can stop as soon as the stream similarity falls
   strictly below the incumbent's (later ranks only get worse). The
   (s, v, u)-max over distinct pairs is unique, so the result is identical
   to the former full |V|+|U| scan. *)
let best_incident m instance ~banned ~v ~u =
  let best = ref None in
  let consider v' u' s =
    if (v', u') <> banned && Matching.check_add m ~v:v' ~u:u' = None then
      match !best with
      | Some (s0, v0, u0) when (s0, -v0, -u0) >= (s, -v', -u') -> ()
      | _ -> best := Some (s, v', u')
  in
  let scan next pair_of =
    (* poll: ok — the scan stops at the incumbent's similarity; bounded by one neighbour stream *)
    let rec go rank =
      match next ~rank with
      | None -> ()
      | Some (j, s) ->
          let beaten =
            match !best with Some (s0, _, _) -> s < s0 | None -> false
          in
          if not beaten then begin
            let v', u' = pair_of j in
            consider v' u' s;
            go (rank + 1)
          end
    in
    go 1
  in
  scan (fun ~rank -> Instance.event_neighbor instance ~v ~rank) (fun j -> (v, j));
  scan (fun ~rank -> Instance.user_neighbor instance ~u ~rank) (fun j -> (j, u));
  !best

(* One replace move: pull (v,u) out, refill greedily from the incident
   pairs — the removed pair itself is banned, otherwise the refill would
   just put it back — and keep the refill only if MaxSum strictly
   improved. *)
let try_replace m instance ~v ~u =
  let before = Matching.maxsum m in
  Matching.remove_exn m ~v ~u;
  let added = ref [] in
  (* poll: ok — every refill step consumes one unit of freed capacity, so the recursion is bounded by c_v + c_u *)
  let rec refill () =
    match best_incident m instance ~banned:(v, u) ~v ~u with
    | Some (_, v', u') ->
        let (_ : float) = Matching.add_exn m ~v:v' ~u:u' in
        added := (v', u') :: !added;
        refill ()
    | None -> ()
  in
  refill ();
  if Matching.maxsum m > before +. 1e-12 then true
  else begin
    (* Revert: drop the refill, restore the original pair. *)
    List.iter (fun (v', u') -> Matching.remove_exn m ~v:v' ~u:u') !added;
    let (_ : float) = Matching.add_exn m ~v ~u in
    false
  end

let add_all_feasible m instance =
  let added = ref 0 in
  for v = 0 to Instance.n_events instance - 1 do
    if Matching.remaining_event_capacity m v > 0 then begin
      (* Only positive-similarity users can ever be added; enumerate them
         through the neighbour stream instead of scanning all of |U|, then
         restore the ascending-user order the full scan attempted adds
         in. *)
      let candidates = ref [] in
      (* poll: ok — one pass over event v's positive-similarity neighbour stream *)
      let rec collect rank =
        match Instance.event_neighbor instance ~v ~rank with
        | None -> ()
        | Some (u, _) ->
            candidates := u :: !candidates;
            collect (rank + 1)
      in
      collect 1;
      let sorted = List.sort Int.compare !candidates in
      List.iter
        (fun u ->
          match Matching.add m ~v ~u with
          | Ok _ -> incr added
          | Error _ -> ())
        sorted
    end
  done;
  !added

let improve ?(max_rounds = 8) ?(deadline = Budget.unlimited) m =
  if max_rounds < 1 then invalid_arg "Local_search.improve: max_rounds < 1";
  let instance = Matching.instance m in
  let initial = Matching.maxsum m in
  let moves = ref 0 in
  let rounds = ref 0 in
  let progressed = ref true in
  (* The deadline is polled between rounds and between replace moves; every
     move either completes (including its revert) or never starts, so the
     matching stays feasible on expiry. *)
  while !progressed && !rounds < max_rounds && not (Budget.check deadline) do
    incr rounds;
    progressed := false;
    if add_all_feasible m instance > 0 then progressed := true;
    List.iter
      (fun (v, u) ->
        (* The pair may already have been displaced by an earlier move. *)
        if
          (not (Budget.check deadline))
          && Matching.mem m ~v ~u
          && try_replace m instance ~v ~u
        then begin
          incr moves;
          progressed := true
        end)
      (Matching.pairs m)
  done;
  {
    rounds = !rounds;
    moves_accepted = !moves;
    gained = Matching.maxsum m -. initial;
  }

let solve ?max_rounds ?deadline instance =
  let m = Greedy.solve instance in
  let (_ : stats) = improve ?max_rounds ?deadline m in
  m
