(** MinCostFlow-GEACC (paper Algorithm 1, approximation ratio 1/α where α =
    max user capacity).

    Step 1 ignores conflicts: the instance becomes a flow network
    (source → events with capacity [c_v], arc per (v,u) pair with capacity 1
    and cost [1 - sim], users → sink with capacity [c_u]) and the paper's
    sweep of min-cost flows over Δ ∈ [Δ_min, Δ_max] is realised as one
    successive-shortest-path run: after the k-th augmentation the network
    carries the min-cost flow of amount k, and since per-unit path costs are
    non-decreasing, MaxSum(Δ) = Δ − cost(Δ) is concave — the run stops just
    before the first unit whose path cost reaches 1, which is exactly the Δ
    maximising MaxSum. The resulting M_∅ is optimal for CF = ∅ (Lemma 1).

    Step 2 restores feasibility: per user, a greedy max-weight independent
    set over their assigned events (keep in descending similarity, skip
    conflicting).

    {2 Dense vs sparse networks}

    The paper's construction gives every (v,u) pair an arc — zero-similarity
    ones included — so the {!Dense} network has Θ(|V|·|U|) arcs (the
    "quartic, not scalable" algorithm). Yet the SSP loop stops before any
    unit whose path cost reaches 1, and a zero-similarity arc costs exactly
    1, so no unit of the final flow ever crosses one: the {!Sparse} network
    drops them up front via the instance's NN-index candidate queries
    ({!Instance.candidate_users}) and produces the same matching on a
    fraction of the arcs. [Sparse] is the default; [min_sim] optionally
    raises the gate from [sim > 0] to [sim >= τ] (a quality/speed knob that
    {e does} change results for τ > 0). *)

type network =
  | Dense   (** One arc per (v,u) pair, as in the paper. *)
  | Sparse  (** Only pairs above the similarity gate (default). *)

val network_name : network -> string
(** ["dense"] / ["sparse"]. *)

val network_of_string : string -> (network, string) result
(** Parses a {!network_name} (case-insensitive). *)

val default_network : unit -> network
(** The network used when the [?network] argument is omitted. Initially
    the [GEACC_NETWORK] environment variable if set to a valid
    {!network_name}, else {!Sparse}; malformed values read as {!Sparse}
    (the env hook exists so CI can sweep whole test binaries — the CLI
    flag validates loudly). *)

val set_default_network : network -> unit
(** Sets the process-wide default (the CLI's [--network] flag). *)

val default_min_sim : unit -> float

val set_default_min_sim : float -> unit
(** Sets the process-wide default similarity gate τ for sparse builds.
    @raise Invalid_argument outside [\[0, 1\]]. *)

(** {2 Cost kernels}

    Arc costs [1 - sim] are rounded to the 2^30 dyadic grid at build time
    and stored twice — the grid point [q / 2^30] in the float column, the
    integer [q] alongside — so the SSP loop can run on either encoding of
    the {e same} numbers: {!Float_kernel} (the reference, float-keyed
    heap) or {!Int_kernel} (integer Dijkstra over a monotone bucket
    queue, exact integer potentials, no float compares). Grid points are
    exactly representable as doubles and, while magnitudes stay inside
    {!Geacc_flow.Mcf.exactness_guard}, every sum either kernel forms is
    exact — the kernels order every cost comparison identically and
    produce min-cost flows of bit-identical value and cost; among exactly
    tied trees they may route equal-cost paths differently. An integer
    run that leaves the guarded regime silently recomputes with the float
    kernel. See DESIGN.md §15. *)

type cost_kernel =
  | Float_kernel  (** Float-keyed Dijkstra, the reference. *)
  | Int_kernel
      (** Quantised integer Dijkstra with verified float fallback
          (default). *)

val kernel_name : cost_kernel -> string
(** ["float"] / ["int"]. *)

val kernel_of_string : string -> (cost_kernel, string) result
(** Parses a {!kernel_name} (case-insensitive). *)

val cost_scale : int
(** The quantisation grid ([2^30]): arc cost [c] rounds to
    [q = round (c * cost_scale)], and {e both} columns store it — the
    integer [q] and the float [q / cost_scale]. *)

val default_cost_kernel : unit -> cost_kernel
(** The kernel used when the [?cost_kernel] argument is omitted.
    Initially the [GEACC_COST_KERNEL] environment variable if set to a
    valid {!kernel_name}, else {!Int_kernel}; malformed values read as
    {!Int_kernel} (the env hook exists so CI can sweep whole test
    binaries — the CLI flag validates loudly). *)

val set_default_cost_kernel : cost_kernel -> unit
(** Sets the process-wide default (the CLI's [--cost-kernel] flag). *)

type net = {
  graph : Geacc_flow.Graph.t;
  source : int;
  sink : int;
  pair_arcs : int;    (** (v,u) arcs actually emitted. *)
  dense_pairs : int;  (** |V|·|U|, what the dense construction would emit. *)
  network_used : network;
      (** The construction that actually ran — {!Dense} when an active
          fault plan forced the dense sequential path. *)
}
(** The Step-1 network. Event [v] is node [1 + v], user [u] is node
    [1 + |V| + u]. *)

type stats = {
  flow_value : int;        (** Δ actually routed (the argmax Δ). *)
  flow_cost : float;       (** Cost of that flow. *)
  augmentations : int;     (** Shortest-path computations that pushed flow. *)
  dropped_pairs : int;     (** Pairs removed by conflict resolution. *)
  pair_arcs : int;         (** (v,u) arcs in the network that was solved. *)
  dense_pairs : int;       (** |V|·|U| for the same instance. *)
  timed_out : bool;        (** [true] when [deadline] stopped the flow sweep
                                early: conflict resolution then ran on a
                                min-cost flow of a smaller Δ, so the result
                                is feasible but may miss the argmax Δ. *)
  kernel_used : cost_kernel;
      (** The kernel that produced the accepted flow — {!Float_kernel}
          when the integer run fell back. *)
  int_fallback : bool;
      (** [true] when an {!Int_kernel} run left the exactness-guarded
          regime and the flow was recomputed in float. *)
}

val build_network :
  ?jobs:int -> ?network:network -> ?min_sim:float -> Instance.t -> net
(** The Step-1 network. [jobs] (default {!Geacc_par.Pool.default_jobs})
    parallelises the construction — the Θ(|V|·|U|) cost table per
    user-chunk for {!Dense}, the candidate queries per event-chunk for
    {!Sparse}; arc emission stays sequential and v-major with u ascending,
    so arc ids — and hence the SSP pivoting order and the final flow — are
    byte-identical for every job count. When a fault plan is active the
    dense sequential path is forced so [sim.*] hit counters replay in plan
    order (the sparse builder never evaluates {!Instance.sim}). Under
    [GEACC_AUDIT=1] a sparse build additionally proves every pruned pair
    sits below the similarity gate. Exposed for the determinism tests,
    audits and benchmarks.
    @raise Geacc_robust.Fault.Injected when the [mcf.alloc] point fires.
    @raise Invalid_argument when [min_sim] is outside [\[0, 1\]]. *)

val solve :
  ?deadline:Geacc_robust.Budget.t ->
  ?jobs:int ->
  ?network:network ->
  ?min_sim:float ->
  ?cost_kernel:cost_kernel ->
  Instance.t ->
  Matching.t
(** [deadline] (default: unlimited) is polled between augmentations of the
    underlying SSP loop; on expiry the partial flow — a valid min-cost flow
    of its own amount — is resolved into a feasible matching as usual.
    [jobs], [network] and [min_sim] are passed to {!build_network};
    [cost_kernel] selects the SSP arithmetic (same matching either way —
    see {!cost_kernel}). The solve itself is sequential and its output
    independent of the job count. *)

val solve_with_stats :
  ?deadline:Geacc_robust.Budget.t ->
  ?jobs:int ->
  ?network:network ->
  ?min_sim:float ->
  ?cost_kernel:cost_kernel ->
  Instance.t ->
  Matching.t * stats
