(** MinCostFlow-GEACC (paper Algorithm 1, approximation ratio 1/α where α =
    max user capacity).

    Step 1 ignores conflicts: the instance becomes a flow network
    (source → events with capacity [c_v], arc per (v,u) pair with capacity 1
    and cost [1 - sim], users → sink with capacity [c_u]) and the paper's
    sweep of min-cost flows over Δ ∈ [Δ_min, Δ_max] is realised as one
    successive-shortest-path run: after the k-th augmentation the network
    carries the min-cost flow of amount k, and since per-unit path costs are
    non-decreasing, MaxSum(Δ) = Δ − cost(Δ) is concave — the run stops just
    before the first unit whose path cost reaches 1, which is exactly the Δ
    maximising MaxSum. The resulting M_∅ is optimal for CF = ∅ (Lemma 1).

    Step 2 restores feasibility: per user, a greedy max-weight independent
    set over their assigned events (keep in descending similarity, skip
    conflicting).

    Every (v,u) arc exists — including zero-similarity ones — so the network
    has Θ(|V|·|U|) arcs; this is the paper's "quartic, not scalable"
    algorithm. *)

type stats = {
  flow_value : int;        (** Δ actually routed (the argmax Δ). *)
  flow_cost : float;       (** Cost of that flow. *)
  augmentations : int;     (** Shortest-path computations that pushed flow. *)
  dropped_pairs : int;     (** Pairs removed by conflict resolution. *)
  timed_out : bool;        (** [true] when [deadline] stopped the flow sweep
                                early: conflict resolution then ran on a
                                min-cost flow of a smaller Δ, so the result
                                is feasible but may miss the argmax Δ. *)
}

val build_network :
  ?jobs:int -> Instance.t -> Geacc_flow.Graph.t * int * int * int array
(** The Step-1 network: [(g, source, sink, vu_arc)] with
    [vu_arc.((v * |U|) + u)] the forward arc id of pair [(v,u)]. [jobs]
    (default {!Geacc_par.Pool.default_jobs}) parallelises the Θ(|V|·|U|)
    similarity/cost table per user-chunk; arc emission stays sequential, so
    arc ids — and hence the SSP pivoting order and the final flow — are
    byte-identical for every job count. When a fault plan is active the
    table is computed sequentially so [sim.*] hit counters replay in plan
    order. Exposed for the determinism tests and audits.
    @raise Geacc_robust.Fault.Injected when the [mcf.alloc] point fires. *)

val solve :
  ?deadline:Geacc_robust.Budget.t -> ?jobs:int -> Instance.t -> Matching.t
(** [deadline] (default: unlimited) is polled between augmentations of the
    underlying SSP loop; on expiry the partial flow — a valid min-cost flow
    of its own amount — is resolved into a feasible matching as usual.
    [jobs] is passed to {!build_network}; the solve itself is sequential
    and its output independent of the job count. *)

val solve_with_stats :
  ?deadline:Geacc_robust.Budget.t ->
  ?jobs:int ->
  Instance.t ->
  Matching.t * stats
