(** Flat bitset over a fixed index range.

    Backs the conflict feasibility probes: conflict rows and per-user
    assigned-event sets are bitsets, so "any conflict between them?"
    is a word-AND scan ({!intersects}) instead of a per-pair membership
    walk. Indices must lie in the [bits] range given at creation —
    unchecked beyond the underlying array bounds. *)

type t

val create : bits:int -> t
(** All-zero set over indices [0 .. bits-1]. *)

val set : t -> int -> unit
val reset : t -> int -> unit
val mem : t -> int -> bool

val intersects : t -> t -> bool
(** [true] iff some index is in both sets. Ranges may differ; the scan
    covers the shorter one. *)

val first_common : t -> t -> int
(** Smallest index in both sets, or -1 when disjoint — the witness for
    error reporting ({!Matching.check_add}'s conflicting event id). *)

val clear : t -> unit

val copy : t -> t
(** Independent copy ({!Matching.copy} / {!Conflict.copy} support). *)
