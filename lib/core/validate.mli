(** Independent feasibility checking.

    Verifies a raw pair list against an instance without trusting
    {!Matching}'s internal invariants — the test suite runs every solver's
    output through this, and the CLI uses it to validate files. *)

type violation =
  | Event_id_out_of_range of int
  | User_id_out_of_range of int
  | Duplicate_pair of int * int
  | Event_over_capacity of { v : int; load : int; capacity : int }
  | User_over_capacity of { u : int; load : int; capacity : int }
  | Non_positive_similarity of int * int
  | Conflicting_assignment of { u : int; v1 : int; v2 : int }
  | Maxsum_drift of { incremental : float; recomputed : float }
      (** The matching's incrementally-maintained MaxSum disagrees with a
          from-scratch recomputation by more than 1e-6. *)

val check : Instance.t -> (int * int) list -> violation list
(** All violations of the pair list, in deterministic order; [] iff the
    arrangement is feasible. *)

val is_feasible : Instance.t -> (int * int) list -> bool

val check_matching : Matching.t -> violation list
(** {!check} on [Matching.pairs], plus an internal-consistency comparison of
    the incremental MaxSum against a recomputation (reported as a trailing
    [Maxsum_drift] violation when they differ beyond 1e-6). *)

val audit_matching : site:string -> Matching.t -> unit
(** Audit hook (see [Geacc_check.Audit]): when auditing is enabled, runs
    {!check_matching} and raises [Geacc_check.Audit.Violation] carrying the
    first violation found. No-op when auditing is disabled. *)

val pp_violation : Format.formatter -> violation -> unit
