(** Local-search post-optimisation of an arrangement (extension beyond the
    paper).

    Starting from any feasible matching (typically Greedy-GEACC's), two
    move types are applied until a fixpoint or the round limit:

    - {b add}: insert any still-feasible pair (a no-op on maximal inputs);
    - {b replace}: remove one matched pair and refill the freed capacity
      with the best feasible pairs, accepting the move only when the total
      strictly improves. Removing a pair can unlock better pairs previously
      blocked by a conflict or a full capacity — exactly the mistakes a
      greedy pass locks in.

    The result never has a lower MaxSum than the input, is always feasible,
    and the procedure terminates: every accepted move strictly increases
    MaxSum, which is bounded, and rounds are capped.

    The ablation benchmark ([ablation-ls]) measures how much of the gap
    between Greedy-GEACC and the optimum this recovers. *)

type stats = {
  rounds : int;           (** Improvement sweeps executed. *)
  moves_accepted : int;   (** Replacements that improved MaxSum. *)
  gained : float;         (** Total MaxSum improvement over the input. *)
}

val improve :
  ?max_rounds:int -> ?deadline:Geacc_robust.Budget.t -> Matching.t -> stats
(** Optimises the matching in place. [max_rounds] defaults to 8.

    [deadline] (default {!Geacc_robust.Budget.unlimited}) is polled between
    rounds and between replace moves; on expiry the sweep stops after the
    in-flight move completes or reverts, so the matching is always left
    feasible — with whatever improvement was banked so far. *)

val solve :
  ?max_rounds:int ->
  ?deadline:Geacc_robust.Budget.t ->
  Instance.t ->
  Matching.t
(** [Greedy.solve] followed by {!improve}. [deadline] only bounds the
    improvement phase. *)
