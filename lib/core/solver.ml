type algorithm =
  | Greedy
  | Min_cost_flow
  | Prune
  | Exhaustive
  | Random_v
  | Random_u
  | Greedy_naive
  | Greedy_ls
  | Online

let all =
  [
    Greedy; Min_cost_flow; Prune; Exhaustive; Random_v; Random_u;
    Greedy_naive; Greedy_ls; Online;
  ]

let name = function
  | Greedy -> "Greedy-GEACC"
  | Min_cost_flow -> "MinCostFlow-GEACC"
  | Prune -> "Prune-GEACC"
  | Exhaustive -> "Exhaustive"
  | Random_v -> "Random-V"
  | Random_u -> "Random-U"
  | Greedy_naive -> "Greedy-GEACC (naive)"
  | Greedy_ls -> "Greedy-GEACC + LS"
  | Online -> "Online-Greedy"

let short_name = function
  | Greedy -> "greedy"
  | Min_cost_flow -> "mincostflow"
  | Prune -> "prune"
  | Exhaustive -> "exhaustive"
  | Random_v -> "random-v"
  | Random_u -> "random-u"
  | Greedy_naive -> "greedy-naive"
  | Greedy_ls -> "greedy-ls"
  | Online -> "online"

let of_string s =
  let s = String.lowercase_ascii s in
  match List.find_opt (fun a -> short_name a = s) all with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %S (expected one of: %s)" s
           (String.concat ", " (List.map short_name all)))

let is_exact = function
  | Prune | Exhaustive -> true
  | Greedy | Min_cost_flow | Random_v | Random_u | Greedy_naive | Greedy_ls
  | Online ->
      false

let run ?rng ?deadline ?network algorithm instance =
  let rng =
    match rng with Some r -> r | None -> Geacc_util.Rng.create ~seed:42
  in
  match algorithm with
  | Greedy -> fst (Greedy.solve_anytime ?deadline instance)
  | Min_cost_flow -> Mincostflow.solve ?deadline ?network instance
  | Prune -> Exact.solve_prune ?deadline instance
  | Exhaustive -> Exact.solve_exhaustive ?deadline instance
  | Random_v -> Random_baseline.random_v ~rng instance
  | Random_u -> Random_baseline.random_u ~rng instance
  | Greedy_naive -> Greedy_naive.solve instance
  | Greedy_ls -> Local_search.solve ?deadline instance
  | Online -> Online.solve_random_order ?deadline ~rng instance
