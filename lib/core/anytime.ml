module Chain = Geacc_robust.Chain

type report = {
  matching : Matching.t;
  status : Chain.status;
  reason : string option;
  algorithm : Solver.algorithm;
  stages_tried : int;
  fallbacks : int;
  retries : int;
  faults : int;
  elapsed_s : float;
  trace : Chain.trace_entry list;
}

let default_chain =
  [ Solver.Exhaustive; Solver.Prune; Solver.Min_cost_flow; Solver.Greedy ]

(* Did the algorithm run to completion under [deadline]? The budget-aware
   solvers report it themselves; the rest never time out. *)
let run_once ?network algorithm instance ~deadline =
  match algorithm with
  | Solver.Exhaustive ->
      let m, stats =
        Exact.solve ~pruning:false ~warm_start:false ~deadline instance
      in
      (m, not stats.Exact.timed_out)
  | Solver.Prune ->
      let m, stats = Exact.solve ~deadline instance in
      (m, not stats.Exact.timed_out)
  | Solver.Min_cost_flow ->
      let m, stats =
        Mincostflow.solve_with_stats ~deadline ?network instance
      in
      (m, not stats.Mincostflow.timed_out)
  | Solver.Greedy -> Greedy.solve_anytime ~deadline instance
  | ( Solver.Random_v | Solver.Random_u | Solver.Greedy_naive
    | Solver.Greedy_ls | Solver.Online ) as a ->
      (Solver.run a instance, true)

let stage ?timeout_s ?network algorithm =
  (* One flow augmentation or exact-search visit can dwarf a greedy pop, so
     batch clock reads only where polls are cheap. *)
  let poll_every =
    match algorithm with
    | Solver.Min_cost_flow -> 1
    | Solver.Prune | Solver.Exhaustive | Solver.Greedy | Solver.Random_v
    | Solver.Random_u | Solver.Greedy_naive | Solver.Greedy_ls
    | Solver.Online ->
        64
  in
  Chain.stage ?timeout_s ~poll_every ~name:(Solver.short_name algorithm)
    (fun instance ~budget ->
      let matching, complete =
        run_once ?network algorithm instance ~deadline:budget
      in
      (* The chain only ever hands out matchings that pass the independent
         feasibility check — a degraded checkpoint that fails here is a bug
         and must surface as a stage fault, not as a served answer. *)
      Validate.audit_matching
        ~site:
          (Printf.sprintf "Anytime.%s/%s" (Solver.short_name algorithm)
             (if complete then "complete" else "degraded"))
        matching;
      { Chain.value = matching; complete })

let solve ?timeout_s ?stage_timeout_s ?max_retries ?backoff_s
    ?(algorithms = default_chain) ?network instance =
  let stages =
    List.map (stage ?timeout_s:stage_timeout_s ?network) algorithms
  in
  let better incumbent candidate =
    Matching.maxsum candidate > Matching.maxsum incumbent +. 1e-12
  in
  match
    Chain.run ?timeout_s ?max_retries ?backoff_s ~better stages instance
  with
  | Error _ as e -> e
  | Ok outcome ->
      let algorithm =
        match Solver.of_string outcome.Chain.stage with
        | Ok a -> a
        | Error _ ->
            (* Stage names come from [Solver.short_name] above, so this is
               unreachable; fall back to the chain tail defensively. *)
            Solver.Greedy
      in
      Ok
        {
          matching = outcome.Chain.value;
          status = outcome.Chain.status;
          reason = outcome.Chain.reason;
          algorithm;
          stages_tried = outcome.Chain.stages_tried;
          fallbacks = outcome.Chain.fallbacks;
          retries = outcome.Chain.retries;
          faults = outcome.Chain.faults;
          elapsed_s = outcome.Chain.elapsed_s;
          trace = outcome.Chain.trace;
        }
