type reject =
  | Event_full
  | User_full
  | Zero_similarity
  | Conflicting_event of int
  | Duplicate

type t = {
  instance : Instance.t;
  present : (int, unit) Hashtbl.t;  (* key: v * n_users + u *)
  event_load : int array;
  user_load : int array;
  user_events : int list array;
  (* Bitset twin of [user_events]: the conflict feasibility probe
     intersects a user's assigned-event set against an event's conflict
     row (one word-AND scan) instead of walking the list per pair. *)
  user_bits : Bitset.t array;
  mutable size : int;
  mutable maxsum : float;
}

let create instance =
  let n_events = Instance.n_events instance in
  {
    instance;
    present = Hashtbl.create 64;
    event_load = Array.make n_events 0;
    user_load = Array.make (Instance.n_users instance) 0;
    user_events = Array.make (Instance.n_users instance) [];
    user_bits =
      Array.init (Instance.n_users instance) (fun _ ->
          Bitset.create ~bits:n_events);
    size = 0;
    maxsum = 0.;
  }

let instance t = t.instance

let key t ~v ~u = (v * Instance.n_users t.instance) + u

let mem t ~v ~u = Hashtbl.mem t.present (key t ~v ~u)

let user_conflicts_with t ~u ~v =
  let cf = Instance.conflicts t.instance in
  Bitset.intersects (Conflict.row cf v) t.user_bits.(u)

let check_add t ~v ~u =
  if mem t ~v ~u then Some Duplicate
  else if t.event_load.(v) >= Instance.event_capacity t.instance v then
    Some Event_full
  else if t.user_load.(u) >= Instance.user_capacity t.instance u then
    Some User_full
  else if Instance.sim t.instance ~v ~u <= 0. then Some Zero_similarity
  else
    let cf = Instance.conflicts t.instance in
    let row = Conflict.row cf v in
    if Bitset.intersects row t.user_bits.(u) then
      (* The witness (smallest conflicting assigned event) is only
         computed on the reject path. *)
      Some (Conflicting_event (Bitset.first_common row t.user_bits.(u)))
    else None

let add t ~v ~u =
  match check_add t ~v ~u with
  | Some reason -> Error reason
  | None ->
      let s = Instance.sim t.instance ~v ~u in
      Hashtbl.replace t.present (key t ~v ~u) ();
      t.event_load.(v) <- t.event_load.(v) + 1;
      t.user_load.(u) <- t.user_load.(u) + 1;
      t.user_events.(u) <- v :: t.user_events.(u);
      Bitset.set t.user_bits.(u) v;
      t.size <- t.size + 1;
      t.maxsum <- t.maxsum +. s;
      Ok s

(* Fault injection for audit tests: perform the bookkeeping of [add] without
   any feasibility check, so tests can build structurally corrupt matchings
   and prove the audit checkers catch them. *)
(* bounds: proved — audit-harness contract: callers pass v < num_events, u < num_users; loads arrays have those lengths *)
let unsafe_add t ~v ~u =
  Hashtbl.replace t.present (key t ~v ~u) ();
  t.event_load.(v) <- t.event_load.(v) + 1;
  t.user_load.(u) <- t.user_load.(u) + 1;
  t.user_events.(u) <- v :: t.user_events.(u);
  Bitset.set t.user_bits.(u) v;
  t.size <- t.size + 1;
  t.maxsum <- t.maxsum +. Instance.sim t.instance ~v ~u

(* bounds: proved — audit-harness contract: touches only the maxsum accumulator, no array access *)
let unsafe_nudge_maxsum t delta = t.maxsum <- t.maxsum +. delta

let reject_to_string = function
  | Event_full -> "event capacity exhausted"
  | User_full -> "user capacity exhausted"
  | Zero_similarity -> "zero similarity"
  | Conflicting_event v -> Printf.sprintf "conflicts with assigned event %d" v
  | Duplicate -> "pair already matched"

let add_exn t ~v ~u =
  match add t ~v ~u with
  | Ok s -> s
  | Error reason ->
      invalid_arg
        (Printf.sprintf "Matching.add_exn (%d,%d): %s" v u
           (reject_to_string reason))

let remove_first x list =
  (* poll: ok — bounded by one user's assignment list (at most c_u events) *)
  let rec go acc = function
    | [] -> invalid_arg "Matching.remove_exn: internal inconsistency"
    | y :: rest when y = x -> List.rev_append acc rest
    | y :: rest -> go (y :: acc) rest
  in
  go [] list

let remove_exn t ~v ~u =
  if not (mem t ~v ~u) then
    invalid_arg (Printf.sprintf "Matching.remove_exn: pair (%d,%d) absent" v u);
  Hashtbl.remove t.present (key t ~v ~u);
  t.event_load.(v) <- t.event_load.(v) - 1;
  t.user_load.(u) <- t.user_load.(u) - 1;
  t.user_events.(u) <- remove_first v t.user_events.(u);
  (* (v,u) pairs are unique, so the user holds no other copy of v. *)
  Bitset.reset t.user_bits.(u) v;
  t.size <- t.size - 1;
  t.maxsum <- t.maxsum -. Instance.sim t.instance ~v ~u

let size t = t.size
let maxsum t = t.maxsum

let pairs t =
  let n_users = Instance.n_users t.instance in
  Hashtbl.fold (fun k () acc -> (k / n_users, k mod n_users) :: acc) t.present []
  |> List.sort compare

let maxsum_recomputed t =
  List.fold_left
    (fun acc (v, u) -> acc +. Instance.sim t.instance ~v ~u)
    0. (pairs t)

let user_events t u = t.user_events.(u)
let event_load t v = t.event_load.(v)
let user_load t u = t.user_load.(u)

let remaining_event_capacity t v =
  Instance.event_capacity t.instance v - t.event_load.(v)

let remaining_user_capacity t u =
  Instance.user_capacity t.instance u - t.user_load.(u)

let copy t =
  {
    instance = t.instance;
    present = Hashtbl.copy t.present;
    event_load = Array.copy t.event_load;
    user_load = Array.copy t.user_load;
    user_events = Array.copy t.user_events;
    user_bits = Array.map Bitset.copy t.user_bits;
    size = t.size;
    maxsum = t.maxsum;
  }

let pp ppf t =
  Format.fprintf ppf "M(|M|=%d, MaxSum=%.4f):" t.size t.maxsum;
  List.iter (fun (v, u) -> Format.fprintf ppf " (v%d,u%d)" v u) (pairs t)
