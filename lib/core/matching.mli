(** An event-participant arrangement M under construction.

    Tracks, incrementally: pair membership, per-side remaining capacities,
    per-user assigned events (for O(deg) conflict checks) and the running
    MaxSum. {!add} enforces every GEACC constraint, so a matching built
    through this interface is feasible by construction; solvers that
    backtrack undo with {!remove_exn}. *)

type t

type reject =
  | Event_full
  | User_full
  | Zero_similarity
  | Conflicting_event of int
      (** The user already holds this conflicting event (the smallest id
          among the conflicting ones they hold). *)
  | Duplicate

val create : Instance.t -> t
(** Empty arrangement for the instance. *)

val instance : t -> Instance.t

val check_add : t -> v:int -> u:int -> reject option
(** [None] iff [{v,u}] can be added right now. *)

val add : t -> v:int -> u:int -> (float, reject) result
(** Adds the pair and returns its similarity, or the reason it is
    infeasible. *)

val add_exn : t -> v:int -> u:int -> float
(** @raise Invalid_argument when the pair is infeasible. *)

val remove_exn : t -> v:int -> u:int -> unit
(** Removes a present pair, restoring capacities and MaxSum.
    @raise Invalid_argument when the pair is absent. *)

val mem : t -> v:int -> u:int -> bool
val size : t -> int

val maxsum : t -> float
(** Incrementally-maintained objective. *)

val maxsum_recomputed : t -> float
(** Objective recomputed from scratch (drift oracle for tests). *)

val user_events : t -> int -> int list
(** Events currently assigned to a user (unspecified order). *)

val event_load : t -> int -> int
val user_load : t -> int -> int
val remaining_event_capacity : t -> int -> int
val remaining_user_capacity : t -> int -> int

val user_conflicts_with : t -> u:int -> v:int -> bool
(** Would assigning event [v] to user [u] clash with an event [u] already
    holds? One word-AND scan of [v]'s conflict row against [u]'s
    assigned-event bitset. *)

val pairs : t -> (int * int) list
(** All matched pairs sorted lexicographically. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit

(** {2 Fault injection}

    Test-only escape hatches for the audit layer: they deliberately corrupt
    a matching so the test suite can prove each checker fires. Never call
    these from solver code. *)

val unsafe_add : t -> v:int -> u:int -> unit
(** [add]'s bookkeeping with {e no} feasibility check: capacity overflows,
    conflicts and duplicates are recorded as-is. *)

val unsafe_nudge_maxsum : t -> float -> unit
(** Shifts the cached incremental MaxSum by a delta, creating drift against
    {!maxsum_recomputed}. *)
