(* Flat bitsets over a fixed index range, 32 bits per word.

   The conflict feasibility probes — "does user u already attend an event
   conflicting with v?" — used to walk an adjacency set per candidate;
   encoding each conflict row and each user's assigned-event set as a
   bitset turns the probe into a word-AND scan over [range/32] ints.
   Words hold 32 bits, not the native 62, so the index split compiles to
   a shift and a mask: ocamlopt will not strength-reduce a division by a
   non-power-of-two width into anything cheaper than an idiv, and the
   split sits on the hot path of every greedy pop and repair step. *)

type t = int array

let width = 32

let create ~bits =
  assert (bits >= 0);
  Array.make ((bits + width - 1) / width) 0

let[@inline] word i = i lsr 5
let[@inline] mask i = 1 lsl (i land 31)

let[@inline] set t i = t.(word i) <- t.(word i) lor mask i
let[@inline] reset t i = t.(word i) <- t.(word i) land lnot (mask i)
let[@inline] mem t i = t.(word i) land mask i <> 0

let[@inline] intersects a b =
  let n = Stdlib.min (Array.length a) (Array.length b) in
  let i = ref 0 in
  let hit = ref false in
  (* poll: ok — at most range/32 words, no allocation *)
  while (not !hit) && !i < n do
    if a.(!i) land b.(!i) <> 0 then hit := true;
    incr i
  done;
  !hit

(* Smallest index set in both, or -1: the witness for error reporting,
   off the hot path (callers probe [intersects] first). *)
let first_common a b =
  let n = Stdlib.min (Array.length a) (Array.length b) in
  let found = ref (-1) in
  let i = ref 0 in
  (* poll: ok — at most range/32 words, no allocation *)
  while !found < 0 && !i < n do
    let w = a.(!i) land b.(!i) in
    if w <> 0 then begin
      (* Lowest set bit of a non-zero word. *)
      let b0 = ref 0 and w = ref w in
      while !w land 1 = 0 do
        incr b0;
        w := !w lsr 1
      done;
      found := (!i * width) + !b0
    end;
    incr i
  done;
  !found

let clear t = Array.fill t 0 (Array.length t) 0
let copy = Array.copy
