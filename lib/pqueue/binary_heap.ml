type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;  (* valid entries in [0, size) *)
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let[@inline] length t = t.size
let[@inline] is_empty t = t.size = 0

let[@inline] swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && t.cmp t.data.(l) t.data.(i) < 0 then l else i in
  let smallest =
    if r < t.size && t.cmp t.data.(r) t.data.(smallest) < 0 then r
    else smallest
  in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let grow t x =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh = Array.make (Stdlib.max 8 (2 * capacity)) x in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let[@inline] push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let of_array ~cmp a =
  let t = { cmp; data = Array.copy a; size = Array.length a } in
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let peek t = if t.size = 0 then None else Some t.data.(0)

let peek_exn t =
  if t.size = 0 then invalid_arg "Binary_heap.peek_exn: empty heap";
  t.data.(0)

let pop_exn t =
  if t.size = 0 then invalid_arg "Binary_heap.pop_exn: empty heap";
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  top

let[@inline] pop t = if t.size = 0 then None else Some (pop_exn t)

let clear t =
  t.data <- [||];
  t.size <- 0

let pop_all_sorted t =
  (* Materialising the result list is this function's purpose. alloc: ok *)
  let rec drain acc = if is_empty t then List.rev acc else drain (pop_exn t :: acc) in
  drain []

let check_invariant t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if t.cmp t.data.((i - 1) / 2) t.data.(i) > 0 then ok := false
  done;
  !ok
