type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable size : int;
}

let create () = { keys = [||]; payloads = [||]; size = 0 }

let[@inline] length t = t.size
let[@inline] is_empty t = t.size = 0

let grow t =
  let capacity = Array.length t.keys in
  if t.size = capacity then begin
    let fresh = Stdlib.max 16 (2 * capacity) in
    let keys = Array.make fresh 0. and payloads = Array.make fresh 0 in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.payloads 0 payloads 0 t.size;
    t.keys <- keys;
    t.payloads <- payloads
  end

let push t key payload =
  grow t;
  (* Sift up with a hole instead of swaps. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.keys.(parent) > key then begin
      t.keys.(!i) <- t.keys.(parent);
      t.payloads.(!i) <- t.payloads.(parent);
      i := parent
    end
    else continue := false
  done;
  t.keys.(!i) <- key;
  t.payloads.(!i) <- payload

(* Unboxed access to the minimum: [min_key]/[min_payload]/[drop_min] let a
   hot loop pop without materialising the [Some (key, payload)] pair that
   [pop] returns. *)

let[@inline] min_key t =
  if t.size = 0 then invalid_arg "Float_int_heap.min_key: empty heap";
  t.keys.(0)

let[@inline] min_payload t =
  if t.size = 0 then invalid_arg "Float_int_heap.min_payload: empty heap";
  t.payloads.(0)

let drop_min t =
  if t.size = 0 then invalid_arg "Float_int_heap.drop_min: empty heap";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    (* Sift the former last element down from the root with a hole. *)
    let key = t.keys.(t.size) and payload = t.payloads.(t.size) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let at = !i in
      let l = (2 * at) + 1 and r = (2 * at) + 2 in
      (* Smaller child if both exist, else the left one; every comparison
         reads the arrays directly so no float is ever bound (and boxed). *)
      let c = if r < t.size && t.keys.(r) < t.keys.(l) then r else l in
      if c < t.size && t.keys.(c) < key then begin
        t.keys.(at) <- t.keys.(c);
        t.payloads.(at) <- t.payloads.(c);
        i := c
      end
      else continue := false
    done;
    t.keys.(!i) <- key;
    t.payloads.(!i) <- payload
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top_key = t.keys.(0) and top_payload = t.payloads.(0) in
    drop_min t;
    Some (top_key, top_payload)
  end

let clear t = t.size <- 0

let check_invariant t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if t.keys.((i - 1) / 2) > t.keys.(i) then ok := false
  done;
  !ok
