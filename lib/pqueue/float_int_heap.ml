(* Array accesses in the sift loops go through [Geacc_unsafe] under
   stage-4 licences: the @bounds analyzer re-proves every licensed index
   from the heap invariant [0 <= size <= |keys| = |payloads|] (seeded at
   every [t.size] read, runtime-verified by [check_invariant]) and the
   [grow] postcondition [size < |keys|]. `--profile safe` compiles the
   same sites back to checked accesses. See DESIGN.md §13. *)
module A = Geacc_unsafe

type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable size : int;
}

let create () = { keys = [||]; payloads = [||]; size = 0 }

let[@inline] length t = t.size
let[@inline] is_empty t = t.size = 0

let grow t =
  let capacity = Array.length t.keys in
  if t.size = capacity then begin
    let fresh = Stdlib.max 16 (2 * capacity) in
    let keys = Array.make fresh 0. and payloads = Array.make fresh 0 in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.payloads 0 payloads 0 t.size;
    t.keys <- keys;
    t.payloads <- payloads
  end

let push t key payload =
  grow t;
  (* Sift up with a hole instead of swaps. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    (* bounds: proved — 0 <= parent < i <= size0 < |keys| after grow *)
    if A.unsafe_get t.keys parent > key then begin
      (* bounds: proved — i <= size0 < |keys|, parent = (i-1)/2 < i *)
      A.unsafe_set t.keys !i (A.unsafe_get t.keys parent);
      (* bounds: proved — i <= size0 < |payloads|, parent = (i-1)/2 < i *)
      A.unsafe_set t.payloads !i (A.unsafe_get t.payloads parent);
      i := parent
    end
    else continue := false
  done;
  (* bounds: proved — 0 <= i <= size0 < |keys| = |payloads| after grow *)
  A.unsafe_set t.keys !i key;
  (* bounds: proved — 0 <= i <= size0 < |payloads| after grow *)
  A.unsafe_set t.payloads !i payload

(* Unboxed access to the minimum: [min_key]/[min_payload]/[drop_min] let a
   hot loop pop without materialising the [Some (key, payload)] pair that
   [pop] returns. *)

let[@inline] min_key t =
  if t.size = 0 then invalid_arg "Float_int_heap.min_key: empty heap";
  (* bounds: proved — size >= 1 and size <= |keys|, so |keys| >= 1 *)
  A.unsafe_get t.keys 0

let[@inline] min_payload t =
  if t.size = 0 then invalid_arg "Float_int_heap.min_payload: empty heap";
  (* bounds: proved — size >= 1 and size <= |payloads|, so |payloads| >= 1 *)
  A.unsafe_get t.payloads 0

let drop_min t =
  if t.size = 0 then invalid_arg "Float_int_heap.drop_min: empty heap";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    (* Sift the former last element down from the root with a hole. *)
    (* bounds: proved — new size = size0 - 1 in [1, |keys| - 1] *)
    let key = A.unsafe_get t.keys t.size in
    (* bounds: proved — new size = size0 - 1 in [1, |payloads| - 1] *)
    let payload = A.unsafe_get t.payloads t.size in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let at = !i in
      let l = (2 * at) + 1 and r = (2 * at) + 2 in
      (* Smaller child if both exist, else the left one; every comparison
         reads the arrays directly so no float is ever bound (and boxed). *)
      let c =
        (* bounds: proved — guard r < size <= |keys| covers l = r - 1 too *)
        if r < t.size && A.unsafe_get t.keys r < A.unsafe_get t.keys l then r
        else l
      in
      (* bounds: proved — guard c < size <= |keys| *)
      if c < t.size && A.unsafe_get t.keys c < key then begin
        (* bounds: proved — at <= size - 1 < |keys|, c < size from the guard *)
        A.unsafe_set t.keys at (A.unsafe_get t.keys c);
        (* bounds: proved — at <= size - 1 < |payloads|, c < size from the guard *)
        A.unsafe_set t.payloads at (A.unsafe_get t.payloads c);
        i := c
      end
      else continue := false
    done;
    (* bounds: proved — i <= size - 1 < |keys| (hole index stays in the heap) *)
    A.unsafe_set t.keys !i key;
    (* bounds: proved — i <= size - 1 < |payloads| (hole index stays in the heap) *)
    A.unsafe_set t.payloads !i payload
  end

let pop t =
  if t.size = 0 then None
  else begin
    (* bounds: proved — size >= 1 and size <= |keys| = |payloads| *)
    let top_key = A.unsafe_get t.keys 0 and top_payload = A.unsafe_get t.payloads 0 in
    drop_min t;
    Some (top_key, top_payload)
  end

let clear t = t.size <- 0

(* Audit hook: beyond heap order this now also re-verifies the structural
   invariant the stage-4 bounds proofs are seeded from. *)
let check_invariant t =
  let ok =
    ref
      (0 <= t.size
      && t.size <= Array.length t.keys
      && Array.length t.keys = Array.length t.payloads)
  in
  for i = 1 to t.size - 1 do
    if t.keys.((i - 1) / 2) > t.keys.(i) then ok := false
  done;
  !ok
