type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable size : int;
}

let create () = { keys = [||]; payloads = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let capacity = Array.length t.keys in
  if t.size = capacity then begin
    let fresh = Stdlib.max 16 (2 * capacity) in
    let keys = Array.make fresh 0. and payloads = Array.make fresh 0 in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.payloads 0 payloads 0 t.size;
    t.keys <- keys;
    t.payloads <- payloads
  end

let push t key payload =
  grow t;
  (* Sift up with a hole instead of swaps. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.keys.(parent) > key then begin
      t.keys.(!i) <- t.keys.(parent);
      t.payloads.(!i) <- t.payloads.(parent);
      i := parent
    end
    else continue := false
  done;
  t.keys.(!i) <- key;
  t.payloads.(!i) <- payload

let pop t =
  if t.size = 0 then None
  else begin
    let top_key = t.keys.(0) and top_payload = t.payloads.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      (* Sift the former last element down from the root with a hole. *)
      let key = t.keys.(t.size) and payload = t.payloads.(t.size) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let skey = ref key in
        if l < t.size && t.keys.(l) < !skey then begin
          smallest := l;
          skey := t.keys.(l)
        end;
        if r < t.size && t.keys.(r) < !skey then smallest := r;
        if !smallest = !i then continue := false
        else begin
          t.keys.(!i) <- t.keys.(!smallest);
          t.payloads.(!i) <- t.payloads.(!smallest);
          i := !smallest
        end
      done;
      t.keys.(!i) <- key;
      t.payloads.(!i) <- payload
    end;
    Some (top_key, top_payload)
  end

let clear t = t.size <- 0

let check_invariant t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if t.keys.((i - 1) / 2) > t.keys.(i) then ok := false
  done;
  !ok
