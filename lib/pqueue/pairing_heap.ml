type 'a node = Leaf | Node of 'a * 'a node list

type 'a t = { cmp : 'a -> 'a -> int; root : 'a node; size : int }

let empty ~cmp = { cmp; root = Leaf; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let[@inline] meld cmp a b =
  match (a, b) with
  | Leaf, n | n, Leaf -> n
  | Node (x, xs), Node (y, ys) ->
      if cmp x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

let push t x =
  { t with root = meld t.cmp (Node (x, [])) t.root; size = t.size + 1 }

let merge a b =
  { a with root = meld a.cmp a.root b.root; size = a.size + b.size }

let peek t = match t.root with Leaf -> None | Node (x, _) -> Some x

(* Two-pass pairing: meld children left-to-right in pairs, then fold the
   results right-to-left. Tail-recursive on the pairing pass so deep heaps
   (degenerate push sequences) cannot overflow the stack. *)
let merge_pairs cmp children =
  let rec pair acc = function
    | [] -> acc
    (* The pairing pass is persistent by design. alloc: ok *)
    | [ x ] -> x :: acc
    | x :: y :: rest -> pair (meld cmp x y :: acc) rest (* alloc: ok *)
  in
  List.fold_left (meld cmp) Leaf (pair [] children)

let[@inline] pop t =
  match t.root with
  | Leaf -> None
  | Node (x, children) ->
      Some (x, { t with root = merge_pairs t.cmp children; size = t.size - 1 })

let of_list ~cmp xs = List.fold_left push (empty ~cmp) xs

let check_invariant t =
  (* Explicit work list: heap order must hold on every parent/child edge and
     the cached size must equal the node count. *)
  let nodes = ref 0 in
  let ordered = ref true in
  let stack = ref [ t.root ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | Leaf :: rest -> stack := rest
    | Node (x, children) :: rest ->
        incr nodes;
        List.iter (* audit-only traversal, not a hot path — alloc: ok *)
          (fun child ->
            match child with
            | Leaf -> ordered := false (* Leaf is never a stored child *)
            | Node (y, _) -> if t.cmp x y > 0 then ordered := false)
          children;
        stack := List.rev_append children rest
  done;
  !ordered && Int.equal !nodes t.size

let to_sorted_list t =
  let rec drain acc t =
    (* Materialising the result list is this function's purpose. alloc: ok *)
    match pop t with None -> List.rev acc | Some (x, t') -> drain (x :: acc) t'
  in
  drain [] t
