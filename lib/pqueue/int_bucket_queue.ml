(* Monotone integer priority queue: a one-level radix heap.

   Dial's classic bucket array needs one bucket per distinct key, which is
   hopeless at the 2^30 cost scale the integer SSP kernel quantises to.
   The radix variant keeps 64 buckets instead: an entry with key [k] lives
   in bucket 0 when [k = last] (the floor — the largest key popped so far)
   and otherwise in bucket [1 + msb (k lxor last)], i.e. buckets group keys
   by the position of their highest bit differing from the floor.

   Pops drain bucket 0; when it is empty, the smallest non-empty bucket
   [b] is scanned once for its minimum [m], the floor advances to [m] and
   the bucket's entries are re-dealt. Every re-dealt entry lands strictly
   below [b]: all keys in bucket [b] agree with each other on bits at and
   above [b - 1] (they share the floor's bits above the differing one and
   all differ from the floor at it), so their xor against the new floor
   has a strictly lower top bit. Each entry therefore moves down at most
   63 times over its lifetime — amortised O(63) per push/pop pair, with no
   float compares and no sift, which is what lets the integer Dijkstra
   beat the binary {!Float_int_heap}.

   The monotonicity contract is Dijkstra's: every pushed key must be at
   least the last popped key (reduced costs are non-negative, so a settled
   node only generates keys at or above its own). [push] enforces it.

   Array accesses in the hot paths go through [Geacc_unsafe] under stage-4
   licences, like the sift loops of [Float_int_heap]. Bucket indices are
   covered by the fixed 64-slot geometry of the three columns; the
   per-bucket length invariant [0 <= lens.(b) <= |keys.(b)| =
   |payloads.(b)|] lives in nested arrays the analyzer's domain cannot
   index, so each unsafe slot access sits under a cheap runtime assert
   restating it — the assert is both the safety net and the fact the
   analyzer re-proves the licence from ([check_invariant] re-checks the
   same invariant wholesale). `--profile safe` compiles the same sites
   back to checked accesses. See DESIGN.md §13. *)

module A = Geacc_unsafe

let buckets = 64

type t = {
  mutable last : int;             (* floor: largest key popped so far *)
  mutable size : int;
  keys : int array array;         (* parallel growable per-bucket stores *)
  payloads : int array array;
  lens : int array;
}

let create () =
  {
    last = 0;
    size = 0;
    keys = Array.make buckets [||];
    payloads = Array.make buckets [||];
    lens = Array.make buckets 0;
  }

let[@inline] length t = t.size
let[@inline] is_empty t = t.size = 0

(* Bucket of key [k] against floor [last]: 0 when equal, else one past the
   position of the highest differing bit (a six-step binary msb search —
   keys are non-negative, so at most bit 61 differs and indices stay below
   [buckets]). *)
let[@inline] bucket_index ~last k =
  let x = k lxor last in
  if x = 0 then 0
  else begin
    let i = ref 1 and x = ref x in
    if !x lsr 32 <> 0 then begin
      i := !i + 32;
      x := !x lsr 32
    end;
    if !x lsr 16 <> 0 then begin
      i := !i + 16;
      x := !x lsr 16
    end;
    if !x lsr 8 <> 0 then begin
      i := !i + 8;
      x := !x lsr 8
    end;
    if !x lsr 4 <> 0 then begin
      i := !i + 4;
      x := !x lsr 4
    end;
    if !x lsr 2 <> 0 then begin
      i := !i + 2;
      x := !x lsr 2
    end;
    if !x lsr 1 <> 0 then incr i;
    !i
  end

let[@inline] append t b key payload =
  (* [b] always comes from [bucket_index], whose result lies in
     [0, buckets) — the size of all three columns. The assert restates
     that against one column; the other two transfer because all three
     have exactly [buckets] slots (a fact the analyzer carries on the
     queue record), keeping the per-push check to a single compare
     chain. *)
  assert (0 <= b && b < Array.length t.lens);
  (* bounds: proved — b < |lens| (entry assert) *)
  let len = A.unsafe_get t.lens b in
  (* bounds: proved — b < |lens| = buckets = |keys| (entry assert) *)
  let ks0 = A.unsafe_get t.keys b in
  if len = Array.length ks0 then begin
    let cap = Stdlib.max 8 (2 * len) in
    let ks = Array.make cap 0 and ps = Array.make cap 0 in
    Array.blit ks0 0 ks 0 len;
    (* bounds: proved — b < |lens| = buckets = |payloads| (entry assert) *)
    Array.blit (A.unsafe_get t.payloads b) 0 ps 0 len;
    (* bounds: proved — b < |lens| = buckets = |keys| (entry assert) *)
    A.unsafe_set t.keys b ks;
    (* bounds: proved — b < |lens| = buckets = |payloads| (entry assert) *)
    A.unsafe_set t.payloads b ps
  end;
  (* bounds: proved — b < |lens| = buckets = |keys| (entry assert) *)
  let ks = A.unsafe_get t.keys b in
  (* bounds: proved — b < |lens| = buckets = |payloads| (entry assert) *)
  let ps = A.unsafe_get t.payloads b in
  (* The per-bucket length invariant, freshly re-established by the
     growth branch; hands the analyzer the slot bounds for the stores. *)
  assert (0 <= len && len < Array.length ks && len < Array.length ps);
  (* bounds: proved — 0 <= len < |ks| (length assert above) *)
  A.unsafe_set ks len key;
  (* bounds: proved — 0 <= len < |ps| (length assert above) *)
  A.unsafe_set ps len payload;
  (* bounds: proved — b < buckets = |lens| (entry assert) *)
  A.unsafe_set t.lens b (len + 1)

let[@inline] push t key payload =
  if key < t.last then
    invalid_arg "Int_bucket_queue.push: key below the monotone floor";
  append t (bucket_index ~last:t.last key) key payload;
  t.size <- t.size + 1

(* Make bucket 0 non-empty (requires [size > 0]): advance the floor to the
   minimum of the smallest non-empty bucket and re-deal its entries. *)
let ensure_min t =
  (* bounds: proved — 0 < buckets = |lens| (fixed geometry) *)
  if A.unsafe_get t.lens 0 = 0 then begin
    let b = ref 1 in
    (* poll: ok — at most [buckets] probes; size > 0 guarantees a hit *)
    while t.lens.(!b) = 0 do
      incr b
    done;
    let b = !b in
    let ks = t.keys.(b) and ps = t.payloads.(b) and n = t.lens.(b) in
    (* Non-empty by the scan above; within capacity is the per-bucket
       invariant. The assert is the analyzer's handle on the scans below. *)
    assert (1 <= n && n <= Array.length ks && n <= Array.length ps);
    (* bounds: proved — 0 < n <= |ks| (length assert above) *)
    let m = ref (A.unsafe_get ks 0) in
    for i = 1 to n - 1 do
      (* bounds: proved — i < n <= |ks| (length assert above) *)
      let k = A.unsafe_get ks i in
      if k < !m then m := k
    done;
    t.last <- !m;
    t.lens.(b) <- 0;
    for i = 0 to n - 1 do
      (* bounds: proved — i < n <= |ks| (length assert above) *)
      let k = A.unsafe_get ks i in
      (* The radix invariant puts every re-dealt entry strictly below
         [b]; [append]'s own entry assert covers the store. *)
      let nb = bucket_index ~last:t.last k in
      (* bounds: proved — i < n <= |ps| (length assert above) *)
      append t nb k (A.unsafe_get ps i)
    done
  end

(* Unboxed access to the minimum, mirroring {!Float_int_heap}: [min_key] /
   [min_payload] / [drop_min] let the Dijkstra loop pop without the
   [Some (key, payload)] allocation of [pop]. The three share the
   [ensure_min] restructure, which is idempotent until the next drop. *)

let[@inline] min_key t =
  if t.size = 0 then invalid_arg "Int_bucket_queue.min_key: empty queue";
  ensure_min t;
  t.last

let min_payload t =
  if t.size = 0 then invalid_arg "Int_bucket_queue.min_payload: empty queue";
  ensure_min t;
  (* bounds: proved — 0 < buckets = |payloads| (fixed geometry) *)
  let ps = A.unsafe_get t.payloads 0 in
  (* bounds: proved — 0 < buckets = |lens| (fixed geometry) *)
  let n = A.unsafe_get t.lens 0 in
  (* Bucket 0 is non-empty after [ensure_min]; within capacity is the
     per-bucket invariant. *)
  assert (1 <= n && n <= Array.length ps);
  (* bounds: proved — 0 <= n - 1 < |ps| (length assert above) *)
  A.unsafe_get ps (n - 1)

let[@inline] drop_min t =
  if t.size = 0 then invalid_arg "Int_bucket_queue.drop_min: empty queue";
  ensure_min t;
  (* bounds: proved — 0 < buckets = |lens| (fixed geometry) *)
  A.unsafe_set t.lens 0 (A.unsafe_get t.lens 0 - 1);
  t.size <- t.size - 1

let pop t =
  if t.size = 0 then None
  else begin
    ensure_min t;
    let len = t.lens.(0) - 1 in
    t.lens.(0) <- len;
    t.size <- t.size - 1;
    Some (t.last, t.payloads.(0).(len))
  end

let clear t =
  t.last <- 0;
  t.size <- 0;
  Array.fill t.lens 0 buckets 0

(* Audit hook: the structural facts the queue's correctness rests on —
   bucket placement of every live entry against the current floor, stored
   lengths within capacity, and the size equal to the bucket total. *)
let check_invariant t =
  let ok = ref (t.size >= 0 && t.last >= 0) in
  let total = ref 0 in
  for b = 0 to buckets - 1 do
    let n = t.lens.(b) in
    if n < 0 || n > Array.length t.keys.(b) || n > Array.length t.payloads.(b)
    then ok := false
    else begin
      total := !total + n;
      for i = 0 to n - 1 do
        let k = t.keys.(b).(i) in
        if k < t.last || bucket_index ~last:t.last k <> b then ok := false
      done
    end
  done;
  !ok && !total = t.size
