(** Monotone integer priority queue (one-level radix heap).

    A Dial-style bucket queue for non-negative integer keys, specialised
    for the monotone access pattern of Dijkstra with integer reduced
    costs: keys pushed after a pop are never below the popped key. Keys
    and payloads live in parallel unboxed per-bucket arrays grouped by
    the highest bit differing from the floor (the last popped key), so a
    push is a shift-count plus an append and a pop amortises to O(63) —
    no float compares, no sift.

    Pushing a key below the current floor raises [Invalid_argument]; the
    integer Dijkstra kernel satisfies the contract by construction
    (non-negative integer reduced costs). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> int -> int -> unit
(** [push t key payload] inserts an entry. Raises [Invalid_argument] when
    [key] is below the floor (the largest key popped so far; 0 on a fresh
    or cleared queue). *)

val pop : t -> (int * int) option
(** Minimum-key entry. Allocates the pair; hot loops should use the
    unboxed triple {!min_key} / {!min_payload} / {!drop_min} instead.
    Payload order among equal keys is unspecified. *)

val min_key : t -> int
(** Key of the minimum entry. Raises [Invalid_argument] on an empty
    queue. *)

val min_payload : t -> int
(** Payload of the minimum entry. Raises [Invalid_argument] on an empty
    queue. *)

val drop_min : t -> unit
(** Removes the minimum entry without returning it. Raises
    [Invalid_argument] on an empty queue. *)

val clear : t -> unit
(** Empties and resets the floor to 0 without releasing storage (cheap
    reuse across Dijkstra runs). *)

val check_invariant : t -> bool
(** [true] iff every live entry sits in the bucket its key selects
    against the current floor, no key is below the floor, and the size
    matches the bucket totals (audit hook). *)
