(** Persistent pairing heap.

    A purely functional min-heap with O(1) [push]/[merge]/[peek] and
    O(log n) amortised [pop]. Used where a persistent frontier is convenient
    (incremental nearest-neighbour search snapshots) and as an independent
    oracle against {!Binary_heap} in tests. *)

type 'a t

val empty : cmp:('a -> 'a -> int) -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
(** O(1): the size is cached. *)

val push : 'a t -> 'a -> 'a t
val merge : 'a t -> 'a t -> 'a t
(** Both heaps must have been created with the same comparison. *)

val peek : 'a t -> 'a option
val pop : 'a t -> ('a * 'a t) option
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list

val check_invariant : 'a t -> bool
(** [true] iff every node orders no later than its children and the cached
    size equals the node count (audit hook). *)
