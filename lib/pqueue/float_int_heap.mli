(** Specialised min-heap of (float key, int payload) pairs.

    Keys and payloads live in parallel unboxed arrays, so pushes allocate no
    tuples — this heap sits on the hot path of Dijkstra inside the min-cost
    flow solver, where the generic {!Binary_heap} would box every entry.
    Semantics mirror {!Binary_heap} with [cmp = Float.compare] on keys
    (payload order among equal keys is unspecified). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> float -> int -> unit

val pop : t -> (float * int) option
(** Minimum-key entry. Allocates the pair; hot loops should use the unboxed
    triple {!min_key} / {!min_payload} / {!drop_min} instead. *)

val min_key : t -> float
(** Key of the minimum entry. Raises [Invalid_argument] on an empty heap. *)

val min_payload : t -> int
(** Payload of the minimum entry. Raises [Invalid_argument] on an empty
    heap. *)

val drop_min : t -> unit
(** Removes the minimum entry without returning it. Raises
    [Invalid_argument] on an empty heap. *)

val clear : t -> unit
(** Empties without releasing storage (cheap reuse across Dijkstra runs). *)

val check_invariant : t -> bool
(** [true] iff every parent key is no larger than its children (audit hook). *)
