(** Specialised min-heap of (float key, int payload) pairs.

    Keys and payloads live in parallel unboxed arrays, so pushes allocate no
    tuples — this heap sits on the hot path of Dijkstra inside the min-cost
    flow solver, where the generic {!Binary_heap} would box every entry.
    Semantics mirror {!Binary_heap} with [cmp = Float.compare] on keys
    (payload order among equal keys is unspecified). *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> float -> int -> unit

val pop : t -> (float * int) option
(** Minimum-key entry. *)

val clear : t -> unit
(** Empties without releasing storage (cheap reuse across Dijkstra runs). *)

val check_invariant : t -> bool
(** [true] iff every parent key is no larger than its children (audit hook). *)
