(** Timestamped event batches: the input language of the serving loop.

    A trace is a similarity header plus an ordered stream of batches. Each
    batch carries a strictly increasing sequence number (the journal's
    idempotency key), a non-decreasing timestamp (batches sharing one
    timestamp arrive together and contend for admission as a group), a
    priority tier for the load-shed policy, and a list of operations.

    Text format (['#'] comments and blank lines ignored):
    {v
    geacc-trace 1
    sim euclidean <dim> <range>        # as in the instance format
    batch <seq> <ts> <must|should|optional>
    user-arrive <capacity> <attr...>
    user-depart <user-id>
    event-open <capacity> <attr...>
    event-close <event-id>
    event-capacity <event-id> <capacity>
    conflict-add <event-id> <event-id>
    stats
    end
    v}

    Entity ids are assigned by arrival order: the i-th [user-arrive] of the
    whole stream creates user [i-1], and likewise for events. Departing or
    closing never reuses ids. Parsing is strict in the [Instance_io] way —
    non-finite attributes, negative capacities and malformed shapes are
    rejected with the precise line — while id range checks belong to
    application time (the state knows the live id space, the parser does
    not). *)

type tier = Must | Should | Optional

val tier_name : tier -> string
(** ["must"] / ["should"] / ["optional"]. *)

type op =
  | User_arrive of { capacity : int; attrs : float array }
  | User_depart of int
  | Event_open of { capacity : int; attrs : float array }
  | Event_close of int
  | Event_capacity of { v : int; capacity : int }
  | Conflict_add of int * int
  | Stats  (** Query: report service statistics; changes no state. *)

type batch = { seq : int; ts : float; tier : tier; ops : op list }

type t = { sim : Geacc_core.Similarity.t; batches : batch list }

val batch_to_string : batch -> string
(** The [batch ... end] block, exactly as parsed — the journal's record
    payload. Round-trips through {!parse_batch}. *)

val parse_batch : string -> (batch, Geacc_robust.Error.t) result
(** Parses one [batch ... end] block (as produced by {!batch_to_string}). *)

val save : t -> string

val write : path:string -> t -> unit

val parse : string -> (t, Geacc_robust.Error.t) result
(** Whole-trace parse; additionally enforces strictly increasing [seq] and
    non-decreasing [ts] across batches. *)

val read : path:string -> (t, Geacc_robust.Error.t) result

val groups : batch list -> batch list list
(** Consecutive batches sharing one timestamp, in order — the admission
    unit. Concatenating the groups restores the input list. *)
