(** The [geacc serve] engine: a crash-safe loop over timestamped batches.

    For every admitted batch the loop (1) appends the batch to the
    write-ahead journal and fsyncs — the durability point — then (2)
    applies it to the state, (3) repairs the arrangement under the batch
    deadline through a [Geacc_robust.Chain] (incremental suffix replay
    first, full replay as fallback; transient faults retried with
    backoff), (4) commits and acknowledges, and (5) once [snapshot_every]
    journal appends have accumulated since the last truncation (recovered
    backlog included) snapshots the state and truncates the journal — the
    cadence counts appends, not applied batches, so rejected and
    repair-failing batches cannot grow the journal without bound. Startup
    recovery loads the snapshot (if any), replays the journal suffix —
    skipping records at or below the snapshot's sequence number and
    re-rejecting invalid batches exactly as the live run did — and repairs
    with an unlimited budget, so a crashed-and-recovered run reaches the
    same digest as an uninterrupted one. Input batches are admitted only
    above the highest {e journaled} sequence number (not merely the
    highest applied one): a rejected batch is journaled without advancing
    the applied seq, and journaling it again on restart would violate the
    journal's strict seq monotonicity.

    Crash checkpoints ([serve.crash@N] kills the N-th): after the journal
    append, after the in-memory commit (pre-ack), around the snapshot
    rename (two, inside [Snapshot.save]) and after the journal truncate.
    [io.short_write] additionally crashes mid-append with a torn record.
    These exceptions propagate out of {!run} — the process {e is} the
    crash site; the recovery fuzz re-runs {!run} against the surviving
    state directory.

    Health: [Healthy] until a batch cannot be completed in time, [Degraded]
    until a batch again completes fully (while degraded, admission sheds
    every [Optional] batch), [Draining] once the input is exhausted. *)

type mode = Incremental | Full | Offline

val mode_name : mode -> string
(** ["incremental"] / ["full"] / ["offline"]. *)

val mode_of_string : string -> mode option

type health = Healthy | Degraded | Draining

val health_name : health -> string
(** ["ok"] / ["degraded"] / ["draining"]. *)

type config = {
  state_dir : string;  (** Holds [journal.wal] and [snapshot.geacc]. *)
  mode : mode;
  dirty_threshold : float;
      (** Fraction of users: when the dirty suffix reaches it, skip the
          incremental stage and replay from 0 directly (default 0.5). *)
  batch_timeout_s : float;  (** Per-batch deadline; [<= 0] = unlimited. *)
  queue_cap : int;  (** Admission bound per timestamp group. *)
  snapshot_every : int;
      (** Snapshot cadence in journal appends since the last truncation;
          [<= 0] = never. *)
  max_retries : int;  (** Chain retries for transient faults. *)
  backoff_s : float;
  fsync : bool;  (** [false] trades durability for journal speed (bench). *)
}

val default : state_dir:string -> config
(** Incremental mode, threshold 0.5, no deadline, queue cap 64, snapshot
    every 32 journal appends, 2 retries, no backoff, fsync on. *)

type report = {
  batches : int;  (** Batches in the input trace. *)
  admitted : int;
  shed : int;
  skipped : int;  (** Already journaled before this run (recovery overlap). *)
  applied : int;
  errors : int;  (** Batches rejected by validation. *)
  degraded_batches : int;
  full_replays : int;  (** Committed repairs that replayed from 0. *)
  snapshots : int;
  retries : int;
  replayed : int;  (** Journal records replayed during startup recovery. *)
  latencies_s : float list;
      (** Per-admitted-batch wall seconds, in batch order. *)
  journal_s : float;  (** Total wall time inside journal appends. *)
  health : health;
  digest : string;
  maxsum : float;
  seq : int;
}

val exit_status : report -> int
(** 0 clean; 3 when anything was degraded or shed (the structured-error
    contract's degraded code); 1 when any batch errored. *)

val run :
  config -> out:out_channel -> Trace.t -> (report, Geacc_robust.Error.t) result
(** Recovers, serves the trace, drains. Emits one line per event on [out]:
    [start], [ok], [degraded], [shed], [error], [stats], [snapshot] and a
    final [done] line (all deterministic — no wall-clock values). [Error]
    is reserved for unrecoverable startup failures: unreadable or corrupt
    snapshot/journal. Crash-injection exceptions propagate. *)
