open Geacc_core
module Budget = Geacc_robust.Budget
module Chain = Geacc_robust.Chain
module Error = Geacc_robust.Error
module Fault = Geacc_robust.Fault

type mode = Incremental | Full | Offline

let mode_name = function
  | Incremental -> "incremental"
  | Full -> "full"
  | Offline -> "offline"

let mode_of_string = function
  | "incremental" -> Some Incremental
  | "full" -> Some Full
  | "offline" -> Some Offline
  | _ -> None

type health = Healthy | Degraded | Draining

let health_name = function
  | Healthy -> "ok"
  | Degraded -> "degraded"
  | Draining -> "draining"

type config = {
  state_dir : string;
  mode : mode;
  dirty_threshold : float;
  batch_timeout_s : float;
  queue_cap : int;
  snapshot_every : int;
  max_retries : int;
  backoff_s : float;
  fsync : bool;
}

let default ~state_dir =
  {
    state_dir;
    mode = Incremental;
    dirty_threshold = 0.5;
    batch_timeout_s = 0.;
    queue_cap = 64;
    snapshot_every = 32;
    max_retries = 2;
    backoff_s = 0.;
    fsync = true;
  }

type report = {
  batches : int;
  admitted : int;
  shed : int;
  skipped : int;
  applied : int;
  errors : int;
  degraded_batches : int;
  full_replays : int;
  snapshots : int;
  retries : int;
  replayed : int;
  latencies_s : float list;
  journal_s : float;
  health : health;
  digest : string;
  maxsum : float;
  seq : int;
}

let exit_status r =
  if r.errors > 0 then 1
  else if r.degraded_batches > 0 || r.shed > 0 then 3
  else 0

let journal_path c = Filename.concat c.state_dir "journal.wal"
let snapshot_path c = Filename.concat c.state_dir "snapshot.geacc"

let ensure_dir path =
  if not (Sys.file_exists path) then Unix.mkdir path 0o755

(* -- Repair dispatch -------------------------------------------------- *)

(* The serving arrangement is canonical (Online greedy in id order), so the
   incremental stage and the full stage compute the same pairs — the chain
   only decides how much gets replayed and what happens under deadline
   pressure or injected faults. Offline mode instead re-solves with the
   anytime chain (MinCostFlow -> Greedy) on every batch: better MaxSum,
   no incrementality. *)

let chain_repair c state ~timeout_s =
  let n = Serve_state.n_users state in
  let from = Serve_state.dirty_from state in
  let want_full =
    c.mode = Full
    || (n > 0 && float_of_int (n - from) >= c.dirty_threshold *. float_of_int n)
  in
  let stage name from =
    Chain.stage ~name (fun state ~budget ->
        let r = Serve_state.repair ?from state ~deadline:budget in
        { Chain.value = r; complete = r.Serve_state.complete })
  in
  let stages =
    if want_full then [ stage "repair-full" (Some 0) ]
    else [ stage "repair" None; stage "repair-full" (Some 0) ]
  in
  let better (a : Serve_state.repair) (b : Serve_state.repair) =
    match (a.Serve_state.matching, b.Serve_state.matching) with
    | Some ma, Some mb ->
        Matching.maxsum_recomputed mb > Matching.maxsum_recomputed ma
    | None, Some _ -> true
    | _, None -> false
  in
  Chain.run ?timeout_s ~max_retries:c.max_retries ~backoff_s:c.backoff_s
    ~better stages state

let offline_repair c state ~timeout_s =
  match Serve_state.instance state with
  | None ->
      Ok
        ( {
            Serve_state.matching = None;
            served_to = 0;
            complete = true;
            replayed_from = 0;
          },
          Chain.Complete,
          None,
          0 )
  | Some inst -> (
      match
        Anytime.solve ?timeout_s ~max_retries:c.max_retries
          ~backoff_s:c.backoff_s
          ~algorithms:[ Solver.Min_cost_flow; Solver.Greedy ]
          inst
      with
      | Error _ as e -> e
      | Ok (rep : Anytime.report) ->
          Ok
            ( {
                Serve_state.matching = Some rep.Anytime.matching;
                served_to = Serve_state.n_users state;
                complete = rep.Anytime.status = Chain.Complete;
                replayed_from = 0;
              },
              rep.Anytime.status,
              rep.Anytime.reason,
              rep.Anytime.retries ))

(* One repair attempt in the configured mode: the repair record, its
   completion status, the degradation reason and the retry count. *)
let attempt_repair c state ~timeout_s =
  match c.mode with
  | Incremental | Full -> (
      match chain_repair c state ~timeout_s with
      | Error _ as e -> e
      | Ok (o : Serve_state.repair Chain.outcome) ->
          Ok (o.Chain.value, o.Chain.status, o.Chain.reason, o.Chain.retries))
  | Offline -> offline_repair c state ~timeout_s

(* -- Startup recovery ------------------------------------------------- *)

(* What recovery hands the loop, beyond the state itself: [replayed]
   journal records were applied (or re-rejected) beyond the snapshot;
   [journaled_seq] is the highest sequence number present in the journal —
   a rejected batch is journaled without advancing the applied seq, so the
   freshness floor must be the max of the two or a restart would append
   the same seq twice and poison the journal's monotonicity check;
   [backlog] is the total record count still in the journal, seeding the
   append-based snapshot cadence so a crash-restart cycle cannot let the
   journal grow without bound. *)

let recover c ~sim =
  ensure_dir c.state_dir;
  let state =
    if Snapshot.exists ~path:(snapshot_path c) then
      Snapshot.load ~path:(snapshot_path c)
    else Ok (Serve_state.create ~sim)
  in
  match state with
  | Error _ as e -> e
  | Ok state -> (
      match Journal.recover ~path:(journal_path c) () with
      | Error _ as e -> e
      | Ok { Journal.records; torn_bytes = _ } ->
          let journaled_seq =
            List.fold_left
              (fun acc (r : Journal.record) -> max acc r.Journal.seq)
              0 records
          in
          let backlog = List.length records in
          let rec replay n = function
            | [] -> Ok (state, n, journaled_seq, backlog)
            | (r : Journal.record) :: rest ->
                if r.Journal.seq <= Serve_state.seq state then replay n rest
                else (
                  match Trace.parse_batch r.Journal.payload with
                  | Error _ as e -> e
                  | Ok batch ->
                      (match Serve_state.apply_batch state batch with
                      | Error _ ->
                          (* The live run journaled this batch, then rejected
                             it; replay rejects it identically. *)
                          ()
                      | Ok () -> (
                          match
                            attempt_repair c state ~timeout_s:None
                          with
                          | Ok (r, _, _, _) -> Serve_state.commit state r
                          | Error _ ->
                              (* No deadline is armed during recovery, so the
                                 chain can only fail through injected faults;
                                 leave the batch uncommitted — the dirty bound
                                 carries it into the next repair. *)
                              ()));
                      replay (n + 1) rest)
          in
          replay 0 records)

(* -- The loop --------------------------------------------------------- *)

let run c ~out trace =
  match recover c ~sim:trace.Trace.sim with
  | Error _ as e -> e
  | Ok (state, replayed, journaled_seq, backlog) ->
      let p fmt = Printf.ksprintf (fun s -> output_string out (s ^ "\n")) fmt in
      p "start seq %d journal %d digest %s" (Serve_state.seq state) replayed
        (Serve_state.digest state);
      let journal =
        Journal.open_for_append ~fsync:c.fsync ~path:(journal_path c) ()
      in
      let timeout_s =
        if c.batch_timeout_s > 0. then Some c.batch_timeout_s else None
      in
      let health = ref Healthy in
      (* Freshness floor: a batch is new only if its seq is above every seq
         already in the journal, not just the applied seq — rejected batches
         journal without applying, and re-journaling one would break the
         journal's strict monotonicity on the next recovery. *)
      let journaled = ref (max journaled_seq (Serve_state.seq state)) in
      (* Snapshot cadence counts journal appends (seeded with the recovered
         backlog), so rejected and repair-failing batches still drive the
         journal toward its next truncation. *)
      let since_snapshot = ref backlog in
      let admitted = ref 0
      and shed = ref 0
      and skipped = ref 0
      and applied = ref 0
      and errors = ref 0
      and degraded_batches = ref 0
      and full_replays = ref 0
      and snapshots = ref 0
      and retries = ref 0 in
      let latencies = ref [] and journal_s = ref 0. in
      let maybe_snapshot seq =
        if c.snapshot_every > 0 && !since_snapshot >= c.snapshot_every then begin
          Snapshot.save ~path:(snapshot_path c) state;
          Journal.truncate journal;
          since_snapshot := 0;
          Fault.inject "serve.crash";
          incr snapshots;
          p "snapshot %d" seq
        end
      in
      let stats_line seq =
        p "stats %d health %s users %d/%d events %d/%d conflicts %d pairs %d \
           maxsum %g"
          seq
          (health_name !health)
          (Serve_state.live_users state)
          (Serve_state.n_users state)
          (Serve_state.live_events state)
          (Serve_state.n_events state)
          (Serve_state.n_conflicts state)
          (List.length (Serve_state.pairs state))
          (Serve_state.maxsum state)
      in
      let serve_batch (batch : Trace.batch) =
        let t0 = Budget.now_s () in
        let j0 = t0 in
        Journal.append journal ~seq:batch.Trace.seq
          ~payload:(Trace.batch_to_string batch);
        journaled := batch.Trace.seq;
        incr since_snapshot;
        journal_s := !journal_s +. (Budget.now_s () -. j0);
        Fault.inject "serve.crash";
        (match Serve_state.apply_batch state batch with
        | Error e ->
            incr errors;
            p "error %d %s" batch.Trace.seq (Error.to_string e)
        | Ok () -> (
            incr applied;
            match attempt_repair c state ~timeout_s with
            | Error e ->
                (* Nothing usable before the deadline (or every stage
                   faulted): the batch stays applied but unserved; the
                   dirty bound rolls into the next batch's repair. *)
                incr degraded_batches;
                health := Degraded;
                p "degraded %d served %d/%d reason %s" batch.Trace.seq
                  (Serve_state.cursor state)
                  (Serve_state.n_users state)
                  (Error.to_string e)
            | Ok (repair, status, reason, stage_retries) -> (
                (match repair.Serve_state.matching with
                | Some m -> Validate.audit_matching ~site:"serve.commit" m
                | None -> ());
                Serve_state.commit state repair;
                retries := !retries + stage_retries;
                if
                  repair.Serve_state.replayed_from = 0
                  && Serve_state.n_users state > 0
                then incr full_replays;
                Fault.inject "serve.crash";
                match status with
                | Chain.Complete ->
                    health := Healthy;
                    p "ok %d from %d pairs %d maxsum %g" batch.Trace.seq
                      repair.Serve_state.replayed_from
                      (List.length (Serve_state.pairs state))
                      (Serve_state.maxsum state)
                | Chain.Degraded ->
                    incr degraded_batches;
                    health := Degraded;
                    p "degraded %d served %d/%d reason %s" batch.Trace.seq
                      (Serve_state.cursor state)
                      (Serve_state.n_users state)
                      (Option.value reason ~default:"deadline"));
            if
              List.exists
                (fun op -> op = Trace.Stats)
                batch.Trace.ops
            then stats_line batch.Trace.seq));
        (* On every path — rejected batches were journaled too, and the
           cadence must truncate that growth as well. A rejected batch
           leaves the state untouched, so the snapshot is consistent. *)
        maybe_snapshot batch.Trace.seq;
        latencies := (Budget.now_s () -. t0) :: !latencies
      in
      List.iter
        (fun group ->
          let fresh, old =
            List.partition
              (fun (b : Trace.batch) -> b.Trace.seq > !journaled)
              group
          in
          skipped := !skipped + List.length old;
          if fresh <> [] then
            List.iter
              (fun ((batch : Trace.batch), decision) ->
                match decision with
                | Admission.Shed ->
                    incr shed;
                    p "shed %d %s" batch.Trace.seq
                      (Trace.tier_name batch.Trace.tier)
                | Admission.Admit ->
                    incr admitted;
                    serve_batch batch)
              (Admission.plan ~queue_cap:c.queue_cap
                 ~degraded:(!health = Degraded) fresh))
        (Trace.groups trace.Trace.batches);
      health := Draining;
      Journal.close journal;
      let digest = Serve_state.digest state in
      p "done seq %d applied %d degraded %d shed %d errors %d digest %s"
        (Serve_state.seq state) !applied !degraded_batches !shed !errors digest;
      Ok
        {
          batches = List.length trace.Trace.batches;
          admitted = !admitted;
          shed = !shed;
          skipped = !skipped;
          applied = !applied;
          errors = !errors;
          degraded_batches = !degraded_batches;
          full_replays = !full_replays;
          snapshots = !snapshots;
          retries = !retries;
          replayed;
          latencies_s = List.rev !latencies;
          journal_s = !journal_s;
          health = !health;
          digest;
          maxsum = Serve_state.maxsum state;
          seq = Serve_state.seq state;
        }
