open Geacc_core
module Instance_io = Geacc_io.Instance_io
module Budget = Geacc_robust.Budget
module Error = Geacc_robust.Error

(* -- Growable arrays (ids are append-only, never reused) -------------- *)

type 'a vec = { mutable data : 'a array; mutable len : int }

let vec_create () = { data = [||]; len = 0 }
let vec_get v i = v.data.(i)
let vec_set v i x = v.data.(i) <- x

let vec_push v x =
  (if v.len = Array.length v.data then begin
     let d = Array.make (max 8 (2 * v.len)) x in
     Array.blit v.data 0 d 0 v.len;
     v.data <- d
   end);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_array v = Array.sub v.data 0 v.len

type t = {
  sim : Similarity.t;
  users : Entity.t vec;
  events : Entity.t vec;
  departed : bool vec;
  closed : bool vec;
  conflict_tbl : (int * int, unit) Hashtbl.t;  (* keys normalised (v < w) *)
  mutable conflict_list : (int * int) list;
  mutable seq : int;
  mutable cursor : int;
  mutable pairs : (int * int) list;  (* committed arrangement, lex order *)
  mutable dirty : int;  (* first possibly-changed user; max_int = clean *)
  mutable cache : Instance.t option;  (* valid for current entities *)
}

let create ~sim =
  {
    sim;
    users = vec_create ();
    events = vec_create ();
    departed = vec_create ();
    closed = vec_create ();
    conflict_tbl = Hashtbl.create 64;
    conflict_list = [];
    seq = 0;
    cursor = 0;
    pairs = [];
    dirty = max_int;
    cache = None;
  }

let seq t = t.seq
let cursor t = t.cursor
let n_users t = t.users.len
let n_events t = t.events.len

let count_live flags =
  let n = ref 0 in
  for i = 0 to flags.len - 1 do
    if not (vec_get flags i) then incr n
  done;
  !n

let live_users t = count_live t.departed
let live_events t = count_live t.closed
let n_conflicts t = Hashtbl.length t.conflict_tbl
let pairs t = t.pairs

(* The entity arrays are copied out (Array.sub), so an instance stays
   consistent after further mutations; only the cache slot is refreshed. *)
let instance t =
  match t.cache with
  | Some _ as s -> s
  | None ->
      if t.users.len = 0 && t.events.len = 0 then None
      else begin
        let conflicts = Conflict.create ~n_events:t.events.len in
        List.iter (fun (v, w) -> Conflict.add conflicts v w) t.conflict_list;
        let inst =
          Instance.create ~sim:t.sim ~events:(vec_to_array t.events)
            ~users:(vec_to_array t.users) ~conflicts ()
        in
        t.cache <- Some inst;
        Some inst
      end

let maxsum t =
  match instance t with
  | None -> 0.
  | Some inst ->
      List.fold_left
        (fun acc (v, u) -> acc +. Instance.sim inst ~v ~u)
        0. t.pairs

let dirty_from t = min (min t.dirty t.cursor) t.users.len

let mark_all_dirty t = t.dirty <- 0

(* -- Applying a batch ------------------------------------------------- *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

let validate t (batch : Trace.batch) =
  if batch.Trace.seq <= t.seq then
    reject "batch seq %d is not above the applied seq %d" batch.Trace.seq t.seq;
  let nu = ref t.users.len and ne = ref t.events.len in
  let dim =
    ref
      (if t.users.len > 0 then Entity.dim (vec_get t.users 0)
       else if t.events.len > 0 then Entity.dim (vec_get t.events 0)
       else -1)
  in
  let dep = Hashtbl.create 4
  and clo = Hashtbl.create 4
  and fresh_conflicts = Hashtbl.create 4 in
  let check_entity ~capacity ~attrs =
    if capacity < 0 then reject "capacity %d is negative" capacity;
    let d = Array.length attrs in
    if d = 0 then reject "empty attribute vector";
    if !dim = -1 then dim := d
    else if d <> !dim then
      reject "attribute dimension %d differs from the instance dimension %d" d
        !dim
  in
  let user_departed u =
    (u < t.users.len && vec_get t.departed u) || Hashtbl.mem dep u
  in
  let event_closed v =
    (v < t.events.len && vec_get t.closed v) || Hashtbl.mem clo v
  in
  let check_event_id v =
    if v < 0 || v >= !ne then reject "event id %d out of range [0, %d)" v !ne
  in
  List.iter
    (fun op ->
      match op with
      | Trace.User_arrive { capacity; attrs } ->
          check_entity ~capacity ~attrs;
          incr nu
      | Trace.User_depart u ->
          if u < 0 || u >= !nu then
            reject "user id %d out of range [0, %d)" u !nu;
          if user_departed u then reject "user %d already departed" u;
          Hashtbl.replace dep u ()
      | Trace.Event_open { capacity; attrs } ->
          check_entity ~capacity ~attrs;
          incr ne
      | Trace.Event_close v ->
          check_event_id v;
          if event_closed v then reject "event %d already closed" v;
          Hashtbl.replace clo v ()
      | Trace.Event_capacity { v; capacity } ->
          check_event_id v;
          if event_closed v then reject "event %d is closed" v;
          if capacity < 0 then reject "capacity %d is negative" capacity
      | Trace.Conflict_add (v, w) ->
          check_event_id v;
          check_event_id w;
          if v = w then reject "event %d conflicts with itself" v;
          let key = (min v w, max v w) in
          if Hashtbl.mem t.conflict_tbl key || Hashtbl.mem fresh_conflicts key
          then reject "duplicate conflict pair (%d, %d)" (fst key) (snd key);
          Hashtbl.replace fresh_conflicts key ()
      | Trace.Stats -> ())
    batch.Trace.ops

let tombstone e = Entity.make ~id:e.Entity.id ~attrs:e.Entity.attrs ~capacity:0

(* Dirty-position rules, one per operation. All bounds lean on two facts:
   the canonical arrangement serves users in ascending id order, and the
   neighbour walk never attempts a zero-similarity event — so an event only
   interacts with its candidate users (sim > 0), and every holder is a
   candidate. Bounds derived from the committed [t.pairs] stay sound even
   when they are stale: below the already-accumulated dirty position the
   stale pairs ARE the canonical prefix, and everything at or above it
   replays anyway.

   - arrival: the new user serves itself; ids below it saw nothing change.
   - departure of u: users below u were served before u existed in their
     view — u never held capacity they competed for — so replay from u.
   - close of v: a candidate that does not hold v either never reached v
     (its walk filled up earlier — ranks are unchanged by the tombstone) or
     was rejected at v and continues identically; only holders change, so
     replay from the smallest holder.
   - capacity decrease to c: the first c holders (in user order) re-acquire
     their seats against only-smaller occupancy; the (c+1)-th holder is the
     first walk that can differ.
   - capacity increase: holders keep their seats; the first candidate NOT
     holding v is the first user the extra room can admit.
   - new conflict (v, w): it can only reject a user attempting one end
     while holding the other, which needs positive similarity to both —
     replay from the smallest common candidate.
   - a new event has no holders yet: its smallest candidate is the first
     user whose walk ranks it. *)

let sorted_holders t v =
  List.sort compare
    (List.filter_map
       (fun (ev, u) -> if ev = v then Some u else None)
       t.pairs)

(* Candidate probes for the dirty bounds. These scan user ids upward and
   stop at the first hit, which is almost always early — building an NN
   index for a single min query would cost more than the whole scan. The
   similarity calls are the same [Similarity.eval] that [Instance.sim]
   performs, so the bounds match what the walk sees bit-for-bit. *)

let sim_positive t ~v ~u =
  Similarity.eval t.sim (vec_get t.events v).Entity.attrs
    (vec_get t.users u).Entity.attrs
  > 0.

let min_candidate t ~v ~skip =
  let n = t.users.len in
  let rec go u =
    if u >= n then None
    else if (not (skip u)) && sim_positive t ~v ~u then Some u
    else go (u + 1)
  in
  go 0

let min_common_candidate t ~v ~w =
  min_candidate t ~v ~skip:(fun u -> not (sim_positive t ~v:w ~u))

let apply_ops t (batch : Trace.batch) =
  (* Queries against the rebuilt instance are deferred past the mutation
     loop; pairs-derived bounds use the committed pairs directly. *)
  let opened = ref [] and grown = ref [] and conflicted = ref [] in
  let dirty = ref max_int in
  let note r = dirty := min !dirty r in
  List.iter
    (fun op ->
      match op with
      | Trace.User_arrive { capacity; attrs } ->
          let id = t.users.len in
          vec_push t.users (Entity.make ~id ~attrs ~capacity);
          vec_push t.departed false;
          note id
      | Trace.User_depart u ->
          vec_set t.departed u true;
          vec_set t.users u (tombstone (vec_get t.users u));
          note u
      | Trace.Event_open { capacity; attrs } ->
          let id = t.events.len in
          vec_push t.events (Entity.make ~id ~attrs ~capacity);
          vec_push t.closed false;
          opened := id :: !opened
      | Trace.Event_close v ->
          vec_set t.closed v true;
          vec_set t.events v (tombstone (vec_get t.events v));
          (match sorted_holders t v with u :: _ -> note u | [] -> ())
      | Trace.Event_capacity { v; capacity } ->
          let e = vec_get t.events v in
          let old = e.Entity.capacity in
          vec_set t.events v
            (Entity.make ~id:v ~attrs:e.Entity.attrs ~capacity);
          if capacity < old then begin
            let holders = sorted_holders t v in
            match List.nth_opt holders capacity with
            | Some u -> note u
            | None -> ()
          end
          else if capacity > old then grown := v :: !grown
      | Trace.Conflict_add (v, w) ->
          let key = (min v w, max v w) in
          Hashtbl.replace t.conflict_tbl key ();
          t.conflict_list <- key :: t.conflict_list;
          conflicted := key :: !conflicted
      | Trace.Stats -> ())
    batch.Trace.ops;
  (* Conflict-only batches keep the cached instance warm: the entities are
     untouched, so instead of a full rebuild (entity copies, conflict
     bitset rows, a cold NN index) the new edges go into a copy of the
     cached conflict graph and the instance is re-wrapped around it —
     handed-out instances stay immutable snapshots, and the prepared
     neighbour-query state carries over. *)
  let entities_unchanged =
    List.for_all
      (fun op ->
        match op with
        | Trace.Conflict_add _ | Trace.Stats -> true
        | _ -> false)
      batch.Trace.ops
  in
  (match (t.cache, entities_unchanged) with
  | Some inst, true ->
      if !conflicted <> [] then begin
        let cf = Conflict.copy (Instance.conflicts inst) in
        List.iter (fun (v, w) -> Conflict.add cf v w) !conflicted;
        t.cache <- Some (Instance.with_conflicts inst cf)
      end
  | _ -> t.cache <- None);
  let no_skip _ = false in
  List.iter
    (fun v ->
      match min_candidate t ~v ~skip:no_skip with
      | Some u -> note u
      | None -> ())
    !opened;
  List.iter
    (fun v ->
      let holds = Hashtbl.create 8 in
      List.iter
        (fun (ev, u) -> if ev = v then Hashtbl.replace holds u ())
        t.pairs;
      match min_candidate t ~v ~skip:(Hashtbl.mem holds) with
      | Some u -> note u
      | None -> ())
    !grown;
  List.iter
    (fun (v, w) ->
      match min_common_candidate t ~v ~w with
      | Some u -> note u
      | None -> ())
    !conflicted;
  t.dirty <- min t.dirty !dirty;
  t.seq <- batch.Trace.seq

let apply_batch t batch =
  match validate t batch with
  | () ->
      apply_ops t batch;
      Ok ()
  | exception Reject message ->
      Error
        (Error.Invalid_input
           { what = Printf.sprintf "batch %d" batch.Trace.seq; message })

(* -- Repair ----------------------------------------------------------- *)

type repair = {
  matching : Matching.t option;
  served_to : int;
  complete : bool;
  replayed_from : int;
}

let serve_range matching inst ~deadline ~from ~upto =
  let rec go u =
    if u >= upto then upto
    else begin
      Online.serve_user matching inst ~deadline u;
      (* Expiry may have cut u's walk short: report u unserved. Re-walking
         a partially served user later skips held events as duplicates and
         resumes exactly where the walk stopped. *)
      if Budget.expired deadline then u else go (u + 1)
    end
  in
  go from

let repair ?from t ~deadline =
  match instance t with
  | None -> { matching = None; served_to = 0; complete = true; replayed_from = 0 }
  | Some inst ->
      let n = t.users.len in
      let from =
        match from with
        | None -> dirty_from t
        | Some f -> min (max f 0) (dirty_from t)
      in
      let matching = Matching.create inst in
      let prefix_ok =
        List.for_all
          (fun (v, u) ->
            u >= from
            ||
            match Matching.add matching ~v ~u with
            | Ok _ -> true
            | Error _ -> false)
          t.pairs
      in
      let matching, from =
        if prefix_ok then (matching, from) else (Matching.create inst, 0)
      in
      let served_to = serve_range matching inst ~deadline ~from ~upto:n in
      {
        matching = Some matching;
        served_to;
        complete = served_to = n;
        replayed_from = from;
      }

let commit t (r : repair) =
  (match r.matching with
  | None -> t.pairs <- []
  | Some m -> t.pairs <- Matching.pairs m);
  t.cursor <- r.served_to;
  t.dirty <- max_int

(* -- Digest ----------------------------------------------------------- *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let digest t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "seq %d cursor %d users %d events %d\n" t.seq t.cursor
    t.users.len t.events.len;
  for u = 0 to t.users.len - 1 do
    Printf.bprintf buf "u %d %b\n" (vec_get t.users u).Entity.capacity
      (vec_get t.departed u)
  done;
  for v = 0 to t.events.len - 1 do
    Printf.bprintf buf "v %d %b\n" (vec_get t.events v).Entity.capacity
      (vec_get t.closed v)
  done;
  List.iter
    (fun (v, w) -> Printf.bprintf buf "cf %d %d\n" v w)
    (List.sort compare t.conflict_list);
  List.iter (fun (v, u) -> Printf.bprintf buf "p %d %d\n" v u) t.pairs;
  Printf.bprintf buf "maxsum %Lx\n" (Int64.bits_of_float (maxsum t));
  Printf.sprintf "%016Lx" (fnv1a64 (Buffer.contents buf))

(* -- Snapshot payload ------------------------------------------------- *)

let flagged_ids flags =
  let acc = ref [] in
  for i = flags.len - 1 downto 0 do
    if vec_get flags i then acc := i :: !acc
  done;
  !acc

let save t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "geacc-serve-state 2\n";
  Printf.bprintf buf "seq %d\n" t.seq;
  Printf.bprintf buf "cursor %d\n" t.cursor;
  (* The dirty bound survives the round-trip: a snapshot can be taken while
     a repair is still pending (rejected or degraded batch in between), and
     dropping the bound would let recovery replay from the stale cursor —
     above the first user whose walk changed. [n_users] stands in for the
     max_int clean marker; [dirty_from] caps there anyway. *)
  Printf.bprintf buf "dirty %d\n" (min t.dirty t.users.len);
  Printf.bprintf buf "%s\n" (Instance_io.sim_header t.sim);
  let inst_text =
    match instance t with None -> "" | Some i -> Instance_io.save_instance i
  in
  Printf.bprintf buf "instance %d\n" (String.length inst_text);
  Buffer.add_string buf inst_text;
  let pairs_text = Instance_io.save_pairs t.pairs in
  Printf.bprintf buf "pairs %d\n" (String.length pairs_text);
  Buffer.add_string buf pairs_text;
  let id_line keyword ids =
    Printf.bprintf buf "%s %d%s\n" keyword (List.length ids)
      (String.concat "" (List.map (Printf.sprintf " %d") ids))
  in
  id_line "departed" (flagged_ids t.departed);
  id_line "closed" (flagged_ids t.closed);
  Buffer.contents buf

exception Fail of { line : int; message : string }

let load text =
  let pos = ref 0 and lineno = ref 0 in
  let len = String.length text in
  let fail fmt =
    Printf.ksprintf (fun message -> raise (Fail { line = !lineno; message })) fmt
  in
  let read_line () =
    incr lineno;
    if !pos >= len then fail "unexpected end of input";
    match String.index_from_opt text !pos '\n' with
    | None -> fail "unexpected end of input"
    | Some nl ->
        let l = String.sub text !pos (nl - !pos) in
        pos := nl + 1;
        l
  in
  let read_blob n =
    if !pos + n > len then fail "embedded section of %d bytes cut short" n;
    let blob = String.sub text !pos n in
    pos := !pos + n;
    String.iter (fun c -> if c = '\n' then incr lineno) blob;
    blob
  in
  let tokens l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let parse_int s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "expected an integer, got %S" s
  in
  let section keyword =
    let l = read_line () in
    match tokens l with
    | [ k; n ] when k = keyword ->
        let n = parse_int n in
        if n < 0 then fail "negative %s length %d" keyword n;
        n
    | _ -> fail "expected `%s <len>`, got %S" keyword l
  in
  let id_section keyword ~bound =
    let l = read_line () in
    match tokens l with
    | k :: n :: ids when k = keyword ->
        let n = parse_int n in
        let ids = List.map parse_int ids in
        if List.length ids <> n then
          fail "%s declares %d ids but lists %d" keyword n (List.length ids);
        List.iter
          (fun i ->
            if i < 0 || i >= bound then
              fail "%s id %d out of range [0, %d)" keyword i bound)
          ids;
        ids
    | _ -> fail "expected `%s <count> <id...>`, got %S" keyword l
  in
  match
    (let l = read_line () in
     match tokens l with
     | [ "geacc-serve-state"; "2" ] -> ()
     | _ -> fail "expected `geacc-serve-state 2` header, got %S" l);
    let seq =
      match tokens (read_line ()) with
      | [ "seq"; n ] ->
          let n = parse_int n in
          if n < 0 then fail "negative seq %d" n;
          n
      | _ -> fail "expected `seq <n>`"
    in
    let cursor =
      match tokens (read_line ()) with
      | [ "cursor"; n ] ->
          let n = parse_int n in
          if n < 0 then fail "negative cursor %d" n;
          n
      | _ -> fail "expected `cursor <n>`"
    in
    let dirty =
      match tokens (read_line ()) with
      | [ "dirty"; n ] ->
          let n = parse_int n in
          if n < 0 then fail "negative dirty bound %d" n;
          n
      | _ -> fail "expected `dirty <n>`"
    in
    let sim =
      match tokens (read_line ()) with
      | "sim" :: args -> (
          try Instance_io.parse_sim ~line:!lineno args
          with Instance_io.Parse_error { line = _; message } ->
            fail "%s" message)
      | _ -> fail "expected `sim ...`"
    in
    let inst_blob = read_blob (section "instance") in
    let pairs_blob = read_blob (section "pairs") in
    let t = create ~sim in
    t.seq <- seq;
    if inst_blob <> "" then begin
      let inst =
        try Instance_io.load_instance inst_blob
        with Instance_io.Parse_error { line; message } ->
          raise
            (Fail { line = !lineno; message = Printf.sprintf
                      "embedded instance (line %d): %s" line message })
      in
      Array.iter
        (fun e ->
          vec_push t.users e;
          vec_push t.departed false)
        (Instance.users inst);
      Array.iter
        (fun e ->
          vec_push t.events e;
          vec_push t.closed false)
        (Instance.events inst);
      Conflict.iter_pairs (Instance.conflicts inst) (fun v w ->
          let key = (v, w) in
          Hashtbl.replace t.conflict_tbl key ();
          t.conflict_list <- key :: t.conflict_list)
    end;
    let pairs =
      try Instance_io.load_pairs pairs_blob
      with Instance_io.Parse_error { line; message } ->
        raise
          (Fail { line = !lineno; message = Printf.sprintf
                    "embedded matching (line %d): %s" line message })
    in
    List.iter
      (fun (v, u) ->
        if v < 0 || v >= t.events.len then
          fail "pair event id %d out of range [0, %d)" v t.events.len;
        if u < 0 || u >= t.users.len then
          fail "pair user id %d out of range [0, %d)" u t.users.len)
      pairs;
    t.pairs <- pairs;
    if cursor > t.users.len then
      fail "cursor %d beyond the %d users" cursor t.users.len;
    t.cursor <- cursor;
    if dirty > t.users.len then
      fail "dirty bound %d beyond the %d users" dirty t.users.len;
    t.dirty <- (if dirty >= t.users.len then max_int else dirty);
    List.iter (fun u -> vec_set t.departed u true) (id_section "departed" ~bound:t.users.len);
    List.iter (fun v -> vec_set t.closed v true) (id_section "closed" ~bound:t.events.len);
    if !pos <> len then begin
      incr lineno;
      fail "trailing content"
    end;
    t
  with
  | t -> Ok t
  | exception Fail { line; message } ->
      Error (Error.Parse_error { line; message })
