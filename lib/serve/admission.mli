(** Admission control over a timestamp group of batches.

    Batches sharing a timestamp arrive together and contend for the bounded
    work queue; the planner decides, purely and deterministically, which to
    run and which to shed:

    - [Must] batches are always admitted — correctness traffic (departures,
      closures) must not be dropped by load shedding;
    - in [Degraded] health every [Optional] batch is shed outright, before
      capacity is even considered;
    - the remaining queue capacity (after the musts) is filled by [Should]
      batches in arrival order, then by surviving [Optional] ones.

    A shed batch is never journaled: the journal records what was applied,
    so replay and live runs shed identically by construction. *)

type decision = Admit | Shed

val decision_name : decision -> string
(** ["admit"] / ["shed"]. *)

val plan :
  queue_cap:int -> degraded:bool -> Trace.batch list ->
  (Trace.batch * decision) list
(** Decisions for one timestamp group, in the group's original order.
    [queue_cap] is the queue bound ([Must] batches are admitted even past
    it); non-positive caps admit only the musts.
    @raise Invalid_argument on an empty group. *)
