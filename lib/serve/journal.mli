(** Write-ahead journal for the serving loop.

    Durability contract: a batch is appended (and fsynced) {e before} it is
    applied to the in-memory state, so after any crash the snapshot plus the
    journal suffix reconstructs exactly the state an uninterrupted run would
    have reached. The format is text-framed and checksummed:

    {v
    geacc-journal 1
    rec <seq> <len> <crc32>
    <payload — exactly len bytes>
    rec ...
    v}

    where [<crc32>] is the IEEE CRC-32 of the payload in [%08x]. Payloads
    are opaque here (the serving loop stores {!Trace.batch_to_string}
    blocks); [seq] must be strictly increasing.

    Recovery distinguishes the two ways a journal goes bad:

    - a {e torn tail} — the file ends mid-record, the signature of a crash
      during {!append} — is expected and recoverable: {!recover} drops the
      incomplete suffix and truncates the file back to its last complete
      record;
    - a {e corrupt interior} — a complete record whose checksum, framing or
      sequence is wrong, the signature of bit rot or foreign writes — is not
      silently repairable and surfaces as a structured error.

    Fault points (see [Geacc_robust.Fault]): [io.short_write] makes
    {!append} write only half of the framed record, sync it, and crash;
    [journal.corrupt] flips one payload byte of the N-th record as
    {!recover} reads it, driving the checksum-rejection path. *)

type t
(** An open journal, positioned for appending. *)

val crc32 : string -> int
(** IEEE CRC-32 (the zlib/PNG polynomial), as a non-negative int. *)

type record = { seq : int; payload : string }

type recovery = {
  records : record list;  (** Every complete, checksummed record, in order. *)
  torn_bytes : int;
      (** Bytes of incomplete tail dropped (0 for a clean shutdown). *)
}

val recover :
  ?deadline:Geacc_robust.Budget.t ->
  path:string ->
  unit ->
  (recovery, Geacc_robust.Error.t) result
(** Reads the journal at [path], truncating any torn tail in place (fsynced)
    so a subsequent {!open_for_append} continues from a clean prefix. A
    missing file is an empty journal. Interior corruption — bad header on a
    complete first line, unparseable record line, checksum mismatch,
    non-increasing [seq] — returns [Error]; so does an expired [deadline]
    (polled once per record). *)

val open_for_append : ?fsync:bool -> path:string -> unit -> t
(** Opens [path] for appending, writing the header if the file is missing or
    empty. [fsync] (default [true]) makes every {!append} and {!truncate}
    flush through to disk; benchmarks disable it to measure the syscall's
    cost. Call after {!recover} — this function does not validate existing
    contents. *)

val append : t -> seq:int -> payload:string -> unit
(** Frames, checksums and appends one record, then syncs. This is the
    serving loop's commit point: once [append] returns, the batch survives
    a crash. *)

val truncate : t -> unit
(** Resets the journal to just its header (after a snapshot made the
    records redundant), syncing the empty state. *)

val close : t -> unit
(** Flushes, syncs and closes. Idempotent. *)
