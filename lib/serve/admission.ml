type decision = Admit | Shed

let decision_name = function Admit -> "admit" | Shed -> "shed"

let plan ~queue_cap ~degraded batches =
  if batches = [] then invalid_arg "Admission.plan: empty group";
  let musts =
    List.length
      (List.filter (fun (b : Trace.batch) -> b.Trace.tier = Trace.Must) batches)
  in
  let slots = ref (max 0 (queue_cap - musts)) in
  let take () =
    if !slots > 0 then begin
      decr slots;
      Admit
    end
    else Shed
  in
  (* Two passes so a Should late in the group outranks an Optional early in
     it: tier order decides first, arrival order only breaks ties. *)
  let should_taken =
    List.map
      (fun (b : Trace.batch) ->
        match b.Trace.tier with Trace.Should -> take () | _ -> Admit)
      batches
  in
  List.map2
    (fun (b : Trace.batch) should_decision ->
      match b.Trace.tier with
      | Trace.Must -> (b, Admit)
      | Trace.Should -> (b, should_decision)
      | Trace.Optional -> (b, if degraded then Shed else take ()))
    batches should_taken
