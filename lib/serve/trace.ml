module Similarity = Geacc_core.Similarity
module Error = Geacc_robust.Error

type tier = Must | Should | Optional

let tier_name = function
  | Must -> "must"
  | Should -> "should"
  | Optional -> "optional"

let tier_of_string = function
  | "must" -> Some Must
  | "should" -> Some Should
  | "optional" -> Some Optional
  | _ -> None

type op =
  | User_arrive of { capacity : int; attrs : float array }
  | User_depart of int
  | Event_open of { capacity : int; attrs : float array }
  | Event_close of int
  | Event_capacity of { v : int; capacity : int }
  | Conflict_add of int * int
  | Stats

type batch = { seq : int; ts : float; tier : tier; ops : op list }

type t = { sim : Similarity.t; batches : batch list }

(* -- printing --------------------------------------------------------- *)

let add_entity buf keyword capacity attrs =
  Buffer.add_string buf keyword;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int capacity);
  Array.iter
    (fun x ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%.17g" x))
    attrs;
  Buffer.add_char buf '\n'

let add_op buf = function
  | User_arrive { capacity; attrs } -> add_entity buf "user-arrive" capacity attrs
  | User_depart u -> Buffer.add_string buf (Printf.sprintf "user-depart %d\n" u)
  | Event_open { capacity; attrs } -> add_entity buf "event-open" capacity attrs
  | Event_close v -> Buffer.add_string buf (Printf.sprintf "event-close %d\n" v)
  | Event_capacity { v; capacity } ->
      Buffer.add_string buf (Printf.sprintf "event-capacity %d %d\n" v capacity)
  | Conflict_add (v, w) ->
      Buffer.add_string buf (Printf.sprintf "conflict-add %d %d\n" v w)
  | Stats -> Buffer.add_string buf "stats\n"

let add_batch buf b =
  Buffer.add_string buf
    (Printf.sprintf "batch %d %.17g %s\n" b.seq b.ts (tier_name b.tier));
  List.iter (add_op buf) b.ops;
  Buffer.add_string buf "end\n"

let batch_to_string b =
  let buf = Buffer.create 256 in
  add_batch buf b;
  Buffer.contents buf

let save t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "geacc-trace 1\n";
  Buffer.add_string buf (Geacc_io.Instance_io.sim_header t.sim);
  Buffer.add_char buf '\n';
  List.iter (add_batch buf) t.batches;
  Buffer.contents buf

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save t))

(* -- parsing ---------------------------------------------------------- *)

exception Fail of { line : int; message : string }

let fail ~line fmt =
  Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt

let significant_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_int ~line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail ~line "expected an integer, got %S" s

let parse_id ~line s =
  let n = parse_int ~line s in
  if n >= 0 then n else fail ~line "id %d is negative" n

let parse_capacity ~line s =
  let c = parse_int ~line s in
  if c >= 0 then c else fail ~line "capacity %d is negative" c

let parse_attr ~line s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> x
  | Some _ -> fail ~line "attribute %S is not finite" s
  | None -> fail ~line "expected a number, got %S" s

let parse_ts ~line s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x && x >= 0. -> x
  | Some _ -> fail ~line "timestamp %S must be finite and non-negative" s
  | None -> fail ~line "expected a timestamp, got %S" s

let parse_op ~line l =
  let entity mk = function
    | capacity :: attrs when attrs <> [] ->
        mk
          ~capacity:(parse_capacity ~line capacity)
          ~attrs:(Array.of_list (List.map (parse_attr ~line) attrs))
    | _ -> fail ~line "expected `<capacity> <attr...>`, got %S" l
  in
  match tokens l with
  | "user-arrive" :: rest ->
      entity (fun ~capacity ~attrs -> User_arrive { capacity; attrs }) rest
  | "event-open" :: rest ->
      entity (fun ~capacity ~attrs -> Event_open { capacity; attrs }) rest
  | [ "user-depart"; u ] -> User_depart (parse_id ~line u)
  | [ "event-close"; v ] -> Event_close (parse_id ~line v)
  | [ "event-capacity"; v; c ] ->
      Event_capacity { v = parse_id ~line v; capacity = parse_capacity ~line c }
  | [ "conflict-add"; v; w ] ->
      let v = parse_id ~line v and w = parse_id ~line w in
      if v = w then fail ~line "event %d conflicts with itself" v;
      Conflict_add (v, w)
  | [ "stats" ] -> Stats
  | _ -> fail ~line "unknown operation %S" l

type cursor = { mutable rest : (int * string) list }

let next_line cur =
  match cur.rest with
  | [] -> fail ~line:0 "unexpected end of input"
  | x :: rest ->
      cur.rest <- rest;
      x

let parse_batch_header ~line l =
  match tokens l with
  | [ "batch"; seq; ts; tier ] -> (
      let seq = parse_int ~line seq in
      if seq < 1 then fail ~line "batch seq %d must be >= 1" seq;
      let ts = parse_ts ~line ts in
      match tier_of_string tier with
      | Some tier -> (seq, ts, tier)
      | None -> fail ~line "unknown tier %S (must, should or optional)" tier)
  | _ -> fail ~line "expected `batch <seq> <ts> <tier>`, got %S" l

let parse_batch_body cur ~seq ~ts ~tier =
  let rec ops acc =
    let line, l = next_line cur in
    if l = "end" then List.rev acc else ops (parse_op ~line l :: acc)
  in
  { seq; ts; tier; ops = ops [] }

let wrap f =
  match f () with
  | v -> Ok v
  | exception Fail { line; message } ->
      Error (Error.Parse_error { line; message })

let parse_batch text =
  wrap (fun () ->
      let cur = { rest = significant_lines text } in
      let line, l = next_line cur in
      let seq, ts, tier = parse_batch_header ~line l in
      let b = parse_batch_body cur ~seq ~ts ~tier in
      (match cur.rest with
      | [] -> ()
      | (line, l) :: _ -> fail ~line "trailing content: %S" l);
      b)

let parse text =
  wrap (fun () ->
      let cur = { rest = significant_lines text } in
      (let line, l = next_line cur in
       match tokens l with
       | [ "geacc-trace"; "1" ] -> ()
       | _ -> fail ~line "expected `geacc-trace 1` header, got %S" l);
      let sim =
        let line, l = next_line cur in
        match tokens l with
        | "sim" :: args -> (
            try Geacc_io.Instance_io.parse_sim ~line args
            with Geacc_io.Instance_io.Parse_error { line; message } ->
              fail ~line "%s" message)
        | _ -> fail ~line "expected `sim ...`, got %S" l
      in
      let rec batches acc ~prev_seq ~prev_ts =
        match cur.rest with
        | [] -> List.rev acc
        | _ ->
            let line, l = next_line cur in
            let seq, ts, tier = parse_batch_header ~line l in
            if seq <= prev_seq then
              fail ~line "batch seq %d is not above the previous seq %d" seq
                prev_seq;
            if ts < prev_ts then
              fail ~line "batch ts %g is below the previous ts %g" ts prev_ts;
            let b = parse_batch_body cur ~seq ~ts ~tier in
            batches (b :: acc) ~prev_seq:seq ~prev_ts:ts
      in
      { sim; batches = batches [] ~prev_seq:0 ~prev_ts:0. })

let read ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error message -> Error (Error.Io_error { path; message })
  | text -> parse text

let groups batches =
  let rec go acc cur cur_ts = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | b :: rest ->
        if cur <> [] && b.ts = cur_ts then go acc (b :: cur) cur_ts rest
        else
          go
            (if cur = [] then acc else List.rev cur :: acc)
            [ b ] b.ts rest
  in
  go [] [] 0. batches
