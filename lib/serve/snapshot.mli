(** Atomic, checksummed state snapshots.

    A snapshot file wraps a {!Serve_state.save} payload in an integrity
    header:

    {v
    geacc-snapshot 1
    crc <crc32 of everything after this line>
    <payload>
    v}

    {!save} is crash-atomic: the bytes go to [<path>.tmp], are fsynced,
    renamed over [path], and the parent directory is fsynced — a crash
    leaves either the old snapshot or the new one, never a torn mix, and
    the checksum catches the remaining bit-rot case at load time. The
    directory fsync orders the rename before the journal truncation that
    follows it, so a power cut cannot surface an old snapshot next to an
    already-emptied journal.

    Crash checkpoints for the recovery fuzz ([serve.crash], counted across
    the serving loop): one after the tmp file is durable but before the
    rename, one after the rename — recovery from the first sees the old
    snapshot plus the full journal, from the second the new snapshot plus a
    not-yet-truncated journal whose records it skips as already applied. *)

val save : path:string -> Serve_state.t -> unit
(** Writes atomically as described. The [.tmp] sibling is transient. *)

val load : path:string -> (Serve_state.t, Geacc_robust.Error.t) result
(** Verifies the checksum, then delegates to {!Serve_state.load}. A missing
    file is an error ([Io_error]); callers treat it as "start empty". *)

val exists : path:string -> bool
