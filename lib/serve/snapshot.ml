module Fault = Geacc_robust.Fault
module Error = Geacc_robust.Error

let header = "geacc-snapshot 1\n"

(* Renaming over [path] is only durable once the parent directory's entry
   is — and the caller truncates the journal right after [save] returns, so
   losing the rename to a power cut while the truncate survives would drop
   every batch since the previous snapshot. Directories cannot be opened
   for writing; a read-only fd is what fsync(2) wants here. Platforms that
   refuse to open or fsync a directory keep the process-crash guarantee. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let save ~path state =
  let payload = Serve_state.save state in
  let text =
    Printf.sprintf "%scrc %08x\n%s" header (Journal.crc32 payload) payload
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc text;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Fault.inject "serve.crash";
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path);
  Fault.inject "serve.crash"

let exists ~path = Sys.file_exists path

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error message -> Error (Error.Io_error { path; message })
  | text -> (
      let hlen = String.length header in
      if
        String.length text < hlen
        || String.sub text 0 hlen <> header
      then
        Error
          (Error.Parse_error
             { line = 1; message = "expected `geacc-snapshot 1` header" })
      else
        match String.index_from_opt text hlen '\n' with
        | None ->
            Error
              (Error.Parse_error
                 { line = 2; message = "expected `crc <hex>` line" })
        | Some nl -> (
            let crc_line = String.sub text hlen (nl - hlen) in
            let payload =
              String.sub text (nl + 1) (String.length text - nl - 1)
            in
            match String.split_on_char ' ' crc_line with
            | [ "crc"; hex ] -> (
                match int_of_string_opt ("0x" ^ hex) with
                | None ->
                    Error
                      (Error.Parse_error
                         { line = 2; message = "bad crc value " ^ hex })
                | Some stored ->
                    let computed = Journal.crc32 payload in
                    if computed <> stored then
                      Error
                        (Error.Parse_error
                           {
                             line = 2;
                             message =
                               Printf.sprintf
                                 "snapshot crc mismatch (stored %08x, \
                                  computed %08x)"
                                 stored computed;
                           })
                    else Serve_state.load payload)
            | _ ->
                Error
                  (Error.Parse_error
                     { line = 2; message = "expected `crc <hex>` line" })))
