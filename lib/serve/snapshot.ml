module Fault = Geacc_robust.Fault
module Error = Geacc_robust.Error

let header = "geacc-snapshot 1\n"

let save ~path state =
  let payload = Serve_state.save state in
  let text =
    Printf.sprintf "%scrc %08x\n%s" header (Journal.crc32 payload) payload
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc text;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Fault.inject "serve.crash";
  Sys.rename tmp path;
  Fault.inject "serve.crash"

let exists ~path = Sys.file_exists path

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error message -> Error (Error.Io_error { path; message })
  | text -> (
      let hlen = String.length header in
      if
        String.length text < hlen
        || String.sub text 0 hlen <> header
      then
        Error
          (Error.Parse_error
             { line = 1; message = "expected `geacc-snapshot 1` header" })
      else
        match String.index_from_opt text hlen '\n' with
        | None ->
            Error
              (Error.Parse_error
                 { line = 2; message = "expected `crc <hex>` line" })
        | Some nl -> (
            let crc_line = String.sub text hlen (nl - hlen) in
            let payload =
              String.sub text (nl + 1) (String.length text - nl - 1)
            in
            match String.split_on_char ' ' crc_line with
            | [ "crc"; hex ] -> (
                match int_of_string_opt ("0x" ^ hex) with
                | None ->
                    Error
                      (Error.Parse_error
                         { line = 2; message = "bad crc value " ^ hex })
                | Some stored ->
                    let computed = Journal.crc32 payload in
                    if computed <> stored then
                      Error
                        (Error.Parse_error
                           {
                             line = 2;
                             message =
                               Printf.sprintf
                                 "snapshot crc mismatch (stored %08x, \
                                  computed %08x)"
                                 stored computed;
                           })
                    else Serve_state.load payload)
            | _ ->
                Error
                  (Error.Parse_error
                     { line = 2; message = "expected `crc <hex>` line" })))
