(** The serving loop's mutable world: a growing instance plus its canonical
    arrangement.

    The state owns dynamic user/event sides (ids assigned by arrival order,
    never reused — departures and closures become capacity-0 {e tombstones},
    so every historical id stays addressable), the conflict set, the
    committed arrangement and the replay bookkeeping ([seq] of the last
    applied batch, [cursor] of the first not-fully-served user).

    {2 The canonical arrangement, and why repair is exact}

    The arrangement maintained is {e defined} as what [Online] greedy
    produces when the current users are served in id order against the
    current events. Because each user's walk depends only on the state left
    by smaller ids (prefix stability), the arrangement after any batch can
    be recomputed from any position [p] that is at or below the first user
    whose walk could have changed: keep the committed pairs of users
    [< p], replay users [>= p]. {!apply_batch} maintains that first-dirty
    bound per operation — an arrival or departure dirties its own id; a
    newly opened event its smallest candidate user (positive similarity); a
    close its smallest holder; a capacity decrease to [c] its [(c+1)]-th
    holder; an increase the smallest candidate not already holding the
    event; a new conflict the smallest user that is a candidate of both
    ends (only such a user can hold one end while attempting the other) —
    so {!repair} from the bound is bit-identical to a full re-solve, which
    is exactly [repair] after {!mark_all_dirty}. Budget expiry mid-repair is
    safe for the same reason: re-walking a partially served user skips its
    held events as duplicates and continues where the walk stopped, so the
    [cursor] marks an exact resume point. *)

type t

val create : sim:Geacc_core.Similarity.t -> t
(** Empty world: no entities, no conflicts, empty arrangement, [seq = 0]. *)

val seq : t -> int
(** Sequence number of the last applied batch (0 initially). *)

val cursor : t -> int
(** First user id not fully served by the committed arrangement
    ([n_users] when the last repair completed). *)

val n_users : t -> int
(** User ids assigned so far, tombstones included. *)

val n_events : t -> int

val live_users : t -> int
(** Users that have arrived and not departed. *)

val live_events : t -> int

val n_conflicts : t -> int

val pairs : t -> (int * int) list
(** The committed arrangement, sorted lexicographically. *)

val instance : t -> Geacc_core.Instance.t option
(** The current world as a solver instance (tombstones included as
    capacity-0 entities), [None] while no entity exists. Cached until the
    next mutation; safe to hold across mutations — the entity arrays are
    copied out. *)

val maxsum : t -> float
(** MaxSum of the committed arrangement, summed in canonical (lex pair)
    order — the value digests and replay-equivalence checks compare. *)

val dirty_from : t -> int
(** The position {!repair} would replay from: the maintained first-dirty
    bound, capped by {!cursor} and [n_users]. Equal to [n_users] when the
    state is clean and fully served. *)

val mark_all_dirty : t -> unit
(** Forces the next {!repair} to replay from 0 (the [--repair full]
    path and the recovery self-check). *)

val apply_batch : t -> Trace.batch -> (unit, Geacc_robust.Error.t) result
(** Validates every operation of the batch against the current state
    (unknown or tombstoned ids, attribute-dimension mismatches, duplicate
    conflicts — arrivals earlier in the batch are visible to later
    operations), then applies them all and advances [seq]. On [Error]
    ([Invalid_input]) the state is untouched: validation precedes every
    mutation, so journal replay rejects exactly the batches the live run
    rejected. *)

type repair = {
  matching : Geacc_core.Matching.t option;
      (** The repaired arrangement ([None] when the world has no
          entities). *)
  served_to : int;  (** First user not fully served; the new cursor. *)
  complete : bool;  (** [served_to = n_users] and no deadline expiry. *)
  replayed_from : int;
      (** Position the replay actually started at (after the defensive
          fallback, if it fired). *)
}

val repair : ?from:int -> t -> deadline:Geacc_robust.Budget.t -> repair
(** Rebuilds the arrangement from [from] (default {!dirty_from}; an
    explicit value is clamped into [[0, dirty_from]], so callers can only
    ask for {e more} replay — [~from:0] is the full re-solve): re-adds
    committed pairs of users below the bound, then serves users from the
    bound onward until
    done or the deadline expires. Defensively falls back to replaying from
    0 should a committed prefix pair fail to re-add (which the dirty-bound
    argument rules out — the fallback turns a latent bug into a slow batch
    instead of a wrong arrangement). Does not mutate the state: call
    {!commit} to adopt the result, or drop it (retries, comparisons). *)

val commit : t -> repair -> unit
(** Adopts a repair: committed pairs, cursor, and the dirty bound is
    cleared. *)

val digest : t -> string
(** FNV-1a 64 over a canonical rendering of the whole state — entities,
    capacities, tombstones, sorted conflicts, pairs, MaxSum bits, [seq] and
    [cursor]. Two states with equal digests went through equivalent
    histories; crash-recovery fuzz compares these. *)

val save : t -> string
(** Snapshot payload: a [geacc-serve-state 2] header,
    [seq]/[cursor]/[dirty]/[sim] lines, then length-prefixed embedded
    [Instance_io] instance and matching texts plus the tombstone id lists.
    The dirty bound is part of the payload because a snapshot may be taken
    while a repair is pending (a rejected or degraded batch since the last
    commit); [n_users] encodes the clean state. *)

val load : string -> (t, Geacc_robust.Error.t) result
(** Inverse of {!save}, strict in the [Instance_io] way. {!dirty_from} of
    the loaded state equals that of the saved one, so recovery repairs
    from the same position the live process would have. *)
