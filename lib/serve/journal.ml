module Fault = Geacc_robust.Fault
module Budget = Geacc_robust.Budget
module Error = Geacc_robust.Error

let header = "geacc-journal 1\n"

(* -- CRC-32 (IEEE), table-driven, plain ints masked below 2^32 -------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* -- Appending -------------------------------------------------------- *)

type t = {
  mutable oc : out_channel;
  path : string;
  fsync : bool;
  mutable closed : bool;
}

let sync oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let open_for_append ?(fsync = true) ~path () =
  let fresh =
    (not (Sys.file_exists path))
    || (let st = Unix.stat path in
        st.Unix.st_size = 0)
  in
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  if fresh then begin
    output_string oc header;
    if fsync then sync oc else flush oc
  end;
  { oc; path; fsync; closed = false }

let frame ~seq payload =
  Printf.sprintf "rec %d %d %08x\n%s\n" seq (String.length payload)
    (crc32 payload) payload

let commit t =
  if t.fsync then sync t.oc else flush t.oc

let append t ~seq ~payload =
  let record = frame ~seq payload in
  if Fault.fire "io.short_write" then begin
    (* A crash mid-write: half the framed bytes reach the disk, then the
       process dies. Recovery must classify this as a torn tail. *)
    output_string t.oc (String.sub record 0 (String.length record / 2));
    sync t.oc;
    raise (Fault.Injected { point = "io.short_write" })
  end;
  output_string t.oc record;
  commit t

let truncate t =
  (* Rewrite rather than ftruncate: an append-mode channel's position would
     be stale, and O_APPEND lands future writes at the new end anyway. *)
  close_out t.oc;
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat ] 0o644 t.path in
  output_string oc header;
  if t.fsync then sync oc else flush oc;
  t.oc <- oc

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.fsync then sync t.oc else flush t.oc;
    close_out t.oc
  end

(* -- Recovery --------------------------------------------------------- *)

type record = { seq : int; payload : string }

type recovery = { records : record list; torn_bytes : int }

let line_of text pos =
  let n = ref 1 in
  for i = 0 to pos - 1 do
    if text.[i] = '\n' then incr n
  done;
  !n

let corrupt ~text ~pos fmt =
  Printf.ksprintf
    (fun message ->
      Error (Error.Parse_error { line = line_of text pos; message }))
    fmt

let truncate_file ~path ~keep =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd keep;
      Unix.fsync fd)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_rec_line l =
  match String.split_on_char ' ' l with
  | [ "rec"; seq; len; crc ] -> (
      match
        (int_of_string_opt seq, int_of_string_opt len, int_of_string_opt ("0x" ^ crc))
      with
      | Some seq, Some len, Some crc when seq >= 1 && len >= 0 ->
          Some (seq, len, crc)
      | _ -> None)
  | _ -> None

let recover ?(deadline = Budget.unlimited) ~path () =
  match
    if not (Sys.file_exists path) then Ok ""
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with
  | (exception Sys_error message) ->
      Error (Error.Io_error { path; message })
  | Error _ as e -> e
  | Ok text -> (
      let len = String.length text in
      let finish ~pos records =
        if pos < len then truncate_file ~path ~keep:pos;
        Ok { records = List.rev records; torn_bytes = len - pos }
      in
      if text = "" then Ok { records = []; torn_bytes = 0 }
      else if len < String.length header then
        if starts_with ~prefix:text header then
          (* A crash before the header finished: torn, start afresh. *)
          finish ~pos:0 []
        else corrupt ~text ~pos:0 "expected `geacc-journal 1` header"
      else if not (starts_with ~prefix:header text) then
        corrupt ~text ~pos:0 "expected `geacc-journal 1` header"
      else
        let rec records acc ~prev_seq pos =
          if Budget.check deadline then
            Error
              (Error.Timeout { stage = "journal-replay"; elapsed_s = 0. })
          else if pos >= len then
            Ok { records = List.rev acc; torn_bytes = 0 }
          else
            match String.index_from_opt text pos '\n' with
            | None -> finish ~pos acc (* torn record line *)
            | Some nl -> (
                let l = String.sub text pos (nl - pos) in
                match parse_rec_line l with
                | None -> corrupt ~text ~pos "bad journal record line %S" l
                | Some (seq, plen, crc) ->
                    if seq <= prev_seq then
                      corrupt ~text ~pos
                        "journal seq %d is not above the previous seq %d" seq
                        prev_seq
                    else if nl + 1 + plen + 1 > len then
                      finish ~pos acc (* torn payload *)
                    else if text.[nl + 1 + plen] <> '\n' then
                      corrupt ~text ~pos
                        "journal record %d: payload not newline-terminated"
                        seq
                    else
                      let payload = String.sub text (nl + 1) plen in
                      let payload =
                        if plen > 0 && Fault.fire "journal.corrupt" then (
                          let b = Bytes.of_string payload in
                          Bytes.set b 0
                            (Char.chr (Char.code (Bytes.get b 0) lxor 1));
                          Bytes.to_string b)
                        else payload
                      in
                      let computed = crc32 payload in
                      if computed <> crc then
                        corrupt ~text ~pos
                          "journal record %d: crc mismatch (stored %08x, \
                           computed %08x)"
                          seq crc computed
                      else
                        records
                          ({ seq; payload } :: acc)
                          ~prev_seq:seq
                          (nl + 1 + plen + 1))
        in
        records [] ~prev_seq:0 (String.length header))
