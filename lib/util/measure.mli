(** Wall-clock and memory measurement around a computation.

    The paper reports running time and memory cost per algorithm run. Wall
    time comes from [Unix.gettimeofday]. Memory is measured two ways:

    - {!run} reports the {e retained} growth of the live heap across the
      call (cheap, but transient working sets — e.g. a flow network freed on
      return — do not show);
    - {!run_with_peak} additionally samples the live heap at every major
      collection during the call via a GC alarm, reporting the {e peak}
      working set. Sampling walks the heap, so the wall time of such a run
      is inflated — use a separate {!time}/{!run} call for timing. *)

type sample = {
  wall_s : float;        (** Elapsed wall-clock seconds. *)
  live_bytes : int;      (** Live-heap growth in bytes (>= 0). *)
  top_heap_bytes : int;  (** Growth of the GC top-heap watermark in bytes. *)
}

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with elapsed seconds. *)

val run : (unit -> 'a) -> 'a * sample
(** [run f] measures [f ()] for time and retained memory. Performs two major
    GCs; use {!time} in tight loops. *)

val run_with_peak : (unit -> 'a) -> 'a * int * [ `Exact | `Gc_delta ]
(** [run_with_peak f] returns [f ()], the peak live-heap growth in bytes
    observed during the call (at major-collection boundaries and at
    return), and the measurement mode that produced the number.

    Multi-domain caveat: the sampler thread and its forced major GCs run
    only when called from the main domain, which reports [`Exact]. On a
    pool worker domain the function degrades to a cheap [Gc.stat]
    live-words delta — no sampler, no [Gc.full_major] (which would stop the
    whole pool) — because the GC counters are process-wide and concurrent
    domains would otherwise be charged to this run; that path reports
    [`Gc_delta]. [`Gc_delta] peaks are underestimates; for faithful peaks,
    measure from the main domain with the pool idle. The tag travels with
    every number so downstream reports (bench JSON rows) can state which
    estimator produced it instead of silently mixing the two. *)

val peak_mode_label : [ `Exact | `Gc_delta ] -> string
(** ["exact"] or ["gc-delta"] — the spelling used in bench JSON rows. *)

val live_bytes : unit -> int
(** Current live heap in bytes after a forced major collection. *)

val pp_sample : Format.formatter -> sample -> unit
