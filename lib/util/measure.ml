type sample = { wall_s : float; live_bytes : int; top_heap_bytes : int }

let word_bytes = Sys.word_size / 8

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  (x, t1 -. t0)

let live_bytes () =
  Gc.full_major ();
  let st = Gc.stat () in
  st.Gc.live_words * word_bytes

let run f =
  Gc.full_major ();
  let before = Gc.stat () in
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let t1 = Unix.gettimeofday () in
  Gc.full_major ();
  let after = Gc.stat () in
  let live = (after.Gc.live_words - before.Gc.live_words) * word_bytes in
  let top = (after.Gc.top_heap_words - before.Gc.top_heap_words) * word_bytes in
  (x, { wall_s = t1 -. t0; live_bytes = Stdlib.max 0 live; top_heap_bytes = Stdlib.max 0 top })

(* GC alarms only fire when a major cycle completes during the call; with a
   large idle heap the collector can pace a short run to zero completed
   cycles and miss the peak entirely. A sampler thread polling [Gc.stat]
   (which walks the heap and counts live words) is slower but
   deterministic. *)
let run_with_peak f =
  if not (Domain.is_main_domain ()) then begin
    (* On a worker domain neither [Gc.full_major] nor a sampler thread is
       safe to pay for: the full major would stop every domain in the pool,
       and [Gc.stat] reports process-wide numbers that other domains keep
       moving, so a "peak" sampled here would attribute their allocation to
       this run. Fall back to the retained-growth delta — an underestimate
       of the true peak, but one that is at least monotone in this run's
       own retention. *)
    let before = (Gc.stat ()).Gc.live_words in
    let x = f () in
    let after = (Gc.stat ()).Gc.live_words in
    (x, Stdlib.max 0 ((after - before) * word_bytes), `Gc_delta)
  end
  else begin
  Gc.full_major ();
  let baseline = (Gc.stat ()).Gc.live_words in
  let peak = ref baseline in
  let observe () =
    let live = (Gc.stat ()).Gc.live_words in
    if live > !peak then peak := live
  in
  let stop = Atomic.make false in
  let sampler =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (* [Gc.stat] walks the whole heap; pace the sampling so that it
             stays a small fraction of the measured run even when the heap
             is large. *)
          let t0 = Unix.gettimeofday () in
          observe ();
          let took = Unix.gettimeofday () -. t0 in
          Thread.delay (Float.max 0.01 (10. *. took))
        done)
      ()
  in
  let x =
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Thread.join sampler)
      f
  in
  (* The final working set may be larger than at the last sample. *)
  observe ();
  (x, Stdlib.max 0 ((!peak - baseline) * word_bytes), `Exact)
  end

let peak_mode_label = function `Exact -> "exact" | `Gc_delta -> "gc-delta"

let pp_sample ppf s =
  Format.fprintf ppf "%.3fms live=%.1fKB top=%.1fKB" (s.wall_s *. 1000.)
    (float_of_int s.live_bytes /. 1024.)
    (float_of_int s.top_heap_bytes /. 1024.)
