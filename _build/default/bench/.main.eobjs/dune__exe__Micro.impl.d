bench/micro.ml: Analyze Array Bechamel Benchmark Geacc_core Geacc_datagen Geacc_index Geacc_pqueue Geacc_util Hashtbl Int Lazy Measure Printf Staged Test Time Toolkit
