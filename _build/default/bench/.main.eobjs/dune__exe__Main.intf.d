bench/main.mli:
