(* The paper's running example (TABLE I, Examples 1-3). The interestingness
   values are given directly, so the instance uses a matrix-backed custom
   similarity: each entity's single attribute is its own id. *)

open Geacc_core

let interest =
  [|
    [| 0.93; 0.43; 0.84; 0.64; 0.65 |];
    [| 0.; 0.35; 0.19; 0.21; 0.4 |];
    [| 0.86; 0.57; 0.78; 0.79; 0.68 |];
  |]

let instance () =
  let sim =
    Similarity.custom ~name:"table1" (fun a b ->
        interest.(int_of_float a.(0)).(int_of_float b.(0)))
  in
  let events =
    Array.of_list
      (List.mapi
         (fun i capacity ->
           Entity.make ~id:i ~attrs:[| float_of_int i |] ~capacity)
         [ 5; 3; 2 ])
  in
  let users =
    Array.of_list
      (List.mapi
         (fun i capacity ->
           Entity.make ~id:i ~attrs:[| float_of_int i |] ~capacity)
         [ 3; 1; 1; 2; 3 ])
  in
  let conflicts = Conflict.of_pairs ~n_events:3 [ (0, 2) ] in
  Instance.create ~sim ~events ~users ~conflicts ()

let check_feasible inst m =
  Alcotest.(check (list (pair int int)))
    "no violations: feasible" []
    (List.map (fun _ -> (0, 0)) (Validate.check_matching m));
  ignore inst

let maxsum = Alcotest.float 1e-9

let test_optimal () =
  let inst = instance () in
  let m, stats = Exact.solve inst in
  check_feasible inst m;
  Alcotest.check maxsum "Example 1 optimal MaxSum" 4.39 (Matching.maxsum m);
  Alcotest.(check bool) "not budget-limited" false stats.Exact.exhausted_budget

let test_exhaustive_agrees () =
  let inst = instance () in
  let m = Exact.solve_exhaustive inst in
  Alcotest.check maxsum "exhaustive finds the same optimum" 4.39
    (Matching.maxsum m)

let test_mincostflow () =
  let inst = instance () in
  let m, stats = Mincostflow.solve_with_stats inst in
  check_feasible inst m;
  Alcotest.check maxsum "Example 2 MinCostFlow-GEACC MaxSum" 4.13
    (Matching.maxsum m);
  Alcotest.(check bool) "conflicts were resolved" true
    (stats.Mincostflow.dropped_pairs > 0)

let test_greedy () =
  let inst = instance () in
  let m = Greedy.solve inst in
  check_feasible inst m;
  Alcotest.check maxsum "Example 3 Greedy-GEACC MaxSum" 4.28
    (Matching.maxsum m)

let test_conflict_respected () =
  let inst = instance () in
  List.iter
    (fun algorithm ->
      let m = Solver.run algorithm inst in
      List.iter
        (fun u ->
          let events = Matching.user_events m u in
          Alcotest.(check bool)
            (Printf.sprintf "%s: user %d not in both v1 and v3"
               (Solver.name algorithm) u)
            false
            (List.mem 0 events && List.mem 2 events))
        [ 0; 1; 2; 3; 4 ])
    Solver.all

let suite =
  [
    Alcotest.test_case "optimal MaxSum is 4.39" `Quick test_optimal;
    Alcotest.test_case "exhaustive agrees with prune" `Quick
      test_exhaustive_agrees;
    Alcotest.test_case "MinCostFlow-GEACC yields 4.13" `Quick test_mincostflow;
    Alcotest.test_case "Greedy-GEACC yields 4.28" `Quick test_greedy;
    Alcotest.test_case "no algorithm assigns conflicting events" `Quick
      test_conflict_respected;
  ]
