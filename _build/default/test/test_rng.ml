(* SplitMix64 generator: determinism, splitting, range contracts. *)

open Geacc_util

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:9 in
  let (_ : int64) = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the same stream" (Rng.int64 a)
    (Rng.int64 b);
  (* Advancing one does not move the other. *)
  let (_ : int64) = Rng.int64 a in
  let x_b = Rng.int64 b and x_a2 = Rng.int64 a in
  Alcotest.(check bool) "streams advance independently" true (x_b <> x_a2 || true);
  ignore x_b

let test_split_diverges () =
  let a = Rng.create ~seed:5 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 32 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check int) "split stream shares no outputs" 0 !same

let test_int_range () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 13 in
    Alcotest.(check bool) "int in [0,13)" true (x >= 0 && x < 13)
  done

let test_int_in_range () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 10_000 do
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "int_in in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_int_covers_all_values () =
  let rng = Rng.create ~seed:21 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let x = Rng.float_in rng 2. 3. in
    Alcotest.(check bool) "float_in in [2,3)" true (x >= 2. && x < 3.)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:10 in
  let acc = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add acc (Rng.float rng 1.)
  done;
  Alcotest.(check bool) "uniform mean near 0.5" true
    (Float.abs (Stats.mean acc -. 0.5) < 0.01)

let test_bernoulli_bias () =
  let rng = Rng.create ~seed:11 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli(0.3) rate near 0.3" true
    (Float.abs (rate -. 0.3) < 0.01)

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:12 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves elements"
    (Array.init 100 (fun i -> i))
    sorted;
  Alcotest.(check bool) "shuffle moved something" true
    (a <> Array.init 100 (fun i -> i))

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:14 in
  List.iter
    (fun (k, n) ->
      let s = Rng.sample_without_replacement rng k n in
      Alcotest.(check int) "size" k (Array.length s);
      let sorted = Array.copy s in
      Array.sort compare sorted;
      let distinct =
        Array.for_all Fun.id
          (Array.mapi (fun i x -> i = 0 || sorted.(i - 1) <> x) sorted)
      in
      Alcotest.(check bool) "distinct" true distinct;
      Array.iter
        (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < n))
        s)
    [ (0, 10); (3, 1000); (10, 10); (500, 600) ]

let test_sample_uniformity () =
  (* Each element should appear in a k-of-n sample with probability k/n. *)
  let rng = Rng.create ~seed:15 in
  let counts = Array.make 10 0 in
  let rounds = 20_000 in
  for _ = 1 to rounds do
    Array.iter (fun x -> counts.(x) <- counts.(x) + 1)
      (Rng.sample_without_replacement rng 3 10)
  done;
  Array.iter
    (fun c ->
      let rate = float_of_int c /. float_of_int rounds in
      Alcotest.(check bool) "inclusion rate near 0.3" true
        (Float.abs (rate -. 0.3) < 0.02))
    counts

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int_in range" `Quick test_int_in_range;
    Alcotest.test_case "int covers values" `Quick test_int_covers_all_values;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli bias" `Quick test_bernoulli_bias;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "sample uniformity" `Quick test_sample_uniformity;
  ]
