(* Distributions: support bounds, moments, Zipf skew, integer conversion. *)

open Geacc_util

let rng () = Rng.create ~seed:77

let sample_many d n =
  let r = rng () in
  let s = Dist.sampler d in
  Array.init n (fun _ -> s r)

let test_uniform_bounds () =
  let xs = sample_many (Dist.uniform 2. 8.) 20_000 in
  Array.iter
    (fun x -> Alcotest.(check bool) "in [2,8]" true (x >= 2. && x <= 8.))
    xs

let test_uniform_moments () =
  let s = Stats.of_array (sample_many (Dist.uniform 0. 10.) 50_000) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (s.Stats.mean -. 5.) < 0.1);
  (* stddev of U[0,10] is 10/sqrt(12) ~ 2.887 *)
  Alcotest.(check bool) "stddev near 2.89" true
    (Float.abs (s.Stats.stddev -. 2.887) < 0.1)

let test_uniform_degenerate () =
  let xs = sample_many (Dist.uniform 3. 3.) 100 in
  Array.iter (fun x -> Alcotest.(check (float 0.) ) "constant" 3. x) xs

let test_normal_truncation () =
  let d = Dist.normal ~mu:5. ~sigma:10. ~lo:0. ~hi:10. () in
  let xs = sample_many d 20_000 in
  Array.iter
    (fun x -> Alcotest.(check bool) "truncated to [0,10]" true (x >= 0. && x <= 10.))
    xs

let test_normal_moments () =
  let d = Dist.normal ~mu:25. ~sigma:12.5 () in
  let s = Stats.of_array (sample_many d 50_000) in
  Alcotest.(check bool) "mean near 25" true (Float.abs (s.Stats.mean -. 25.) < 0.5);
  Alcotest.(check bool) "stddev near 12.5" true
    (Float.abs (s.Stats.stddev -. 12.5) < 0.5)

let test_normal_zero_sigma () =
  let d = Dist.normal ~mu:4. ~sigma:0. () in
  let xs = sample_many d 50 in
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "constant at mu" 4. x) xs

let test_zipf_bounds () =
  let d = Dist.zipf ~n:100 ~lo:0. ~hi:99. () in
  let xs = sample_many d 20_000 in
  Array.iter
    (fun x -> Alcotest.(check bool) "in [0,99]" true (x >= 0. && x <= 99.))
    xs

let test_zipf_skew () =
  (* With exponent 1.3, rank 1 mass is 1/H where H = sum k^-1.3; for n=100
     that is about 0.28 — the first value must dominate. *)
  let d = Dist.zipf ~n:100 ~lo:0. ~hi:99. () in
  let xs = sample_many d 50_000 in
  let first = Array.fold_left (fun acc x -> if x = 0. then acc + 1 else acc) 0 xs in
  let rate = float_of_int first /. 50_000. in
  Alcotest.(check bool) "rank-1 mass in (0.2, 0.4)" true
    (rate > 0.2 && rate < 0.4);
  (* Monotonicity: first decile outweighs last decile by a wide margin. *)
  let low = Array.fold_left (fun a x -> if x < 10. then a + 1 else a) 0 xs
  and high = Array.fold_left (fun a x -> if x >= 90. then a + 1 else a) 0 xs in
  Alcotest.(check bool) "head outweighs tail 10x" true (low > 10 * high)

let test_zipf_single_rank () =
  let d = Dist.zipf ~n:1 ~lo:7. ~hi:9. () in
  let xs = sample_many d 20 in
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "lo for n=1" 7. x) xs

let test_sample_int_rounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Dist.sample_int (Dist.uniform 1. 4.) r in
    Alcotest.(check bool) "rounded into [1,4]" true (x >= 1 && x <= 4)
  done

let test_mean_bounds () =
  Alcotest.(check (pair (float 0.) (float 0.)))
    "uniform support" (1., 5.)
    (Dist.mean_bounds (Dist.uniform 1. 5.));
  let lo, hi = Dist.mean_bounds (Dist.normal ~mu:0. ~sigma:1. ()) in
  Alcotest.(check (float 1e-9)) "default lo = mu-6s" (-6.) lo;
  Alcotest.(check (float 1e-9)) "default hi = mu+6s" 6. hi

let test_pp () =
  Alcotest.(check string) "uniform pp" "Uniform[1,50]"
    (Format.asprintf "%a" Dist.pp (Dist.uniform 1. 50.));
  Alcotest.(check string) "zipf pp" "Zipf(s=1.3,n=10)"
    (Format.asprintf "%a" Dist.pp (Dist.zipf ~n:10 ~lo:0. ~hi:1. ()))

let suite =
  [
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
    Alcotest.test_case "uniform degenerate" `Quick test_uniform_degenerate;
    Alcotest.test_case "normal truncation" `Quick test_normal_truncation;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "normal zero sigma" `Quick test_normal_zero_sigma;
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf single rank" `Quick test_zipf_single_rank;
    Alcotest.test_case "sample_int rounds" `Quick test_sample_int_rounds;
    Alcotest.test_case "mean_bounds" `Quick test_mean_bounds;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
