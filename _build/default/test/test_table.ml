(* ASCII table rendering and CSV escaping. *)

open Geacc_util

let test_render_alignment () =
  let t = Table.create ~title:"T" ~headers:[ "a"; "long-header" ] in
  Table.add_row t [ "xxxx"; "1" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | _title :: header :: _rule :: row :: _ ->
      (* Both columns start at the same offset in header and data rows. *)
      let col2 s =
        let i = String.index s ' ' in
        let rec skip i = if i < String.length s && s.[i] = ' ' then skip (i + 1) else i in
        skip i
      in
      Alcotest.(check int) "column alignment" (col2 header) (col2 row)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "title present" true
    (String.length rendered > 0 && rendered.[0] = 'T')

let test_row_padding () =
  let t = Table.create ~title:"T" ~headers:[ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "padded csv" "a,b,c\n1,,\n" csv

let test_row_too_long () =
  let t = Table.create ~title:"T" ~headers:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: 2 cells but 1 headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_float_row () =
  let t = Table.create ~title:"T" ~headers:[ "x"; "v" ] in
  Table.add_float_row t ~label:"r" [ 3.14159 ];
  Alcotest.(check string) "formatted" "x,v\nr,3.142\n" (Table.to_csv t)

let test_csv_escaping () =
  let t = Table.create ~title:"T" ~headers:[ "name"; "note" ] in
  Table.add_row t [ "a,b"; "say \"hi\"\nok" ];
  Alcotest.(check string) "escaped"
    "name,note\n\"a,b\",\"say \"\"hi\"\"\nok\"\n" (Table.to_csv t)

let suite =
  [
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "row padding" `Quick test_row_padding;
    Alcotest.test_case "row too long rejected" `Quick test_row_too_long;
    Alcotest.test_case "float row formatting" `Quick test_float_row;
    Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
  ]
