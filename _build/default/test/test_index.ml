(* NN indexes: kd-tree vs linear-scan oracle, incremental cursor ordering,
   distance cutoffs, stream memoisation. *)

module Point = Geacc_index.Point
module Linear = Geacc_index.Linear_index
module Kd = Geacc_index.Kd_tree
module Stream = Geacc_index.Nn_stream
module Rng = Geacc_util.Rng

let random_points rng ~n ~d ~range =
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.float rng range))

let test_point_dist () =
  Alcotest.(check (float 1e-9)) "dist2" 25. (Point.dist2 [| 0.; 3. |] [| 4.; 0. |]);
  Alcotest.(check (float 1e-9)) "dist" 5. (Point.dist [| 0.; 3. |] [| 4.; 0. |]);
  Alcotest.(check (float 1e-9)) "zero" 0. (Point.dist [| 1.; 2. |] [| 1.; 2. |])

let test_point_box () =
  let lo = [| 0.; 0. |] and hi = [| 2.; 2. |] in
  Alcotest.(check (float 1e-9)) "inside" 0.
    (Point.min_dist2_to_box [| 1.; 1. |] ~lo ~hi);
  Alcotest.(check (float 1e-9)) "outside corner" 2.
    (Point.min_dist2_to_box [| 3.; 3. |] ~lo ~hi);
  Alcotest.(check (float 1e-9)) "outside edge" 4.
    (Point.min_dist2_to_box [| 1.; 4. |] ~lo ~hi)

let test_bounding_box () =
  let points = [| [| 1.; 5. |]; [| 3.; 2. |]; [| 2.; 7. |] |] in
  let lo = Array.make 2 0. and hi = Array.make 2 0. in
  Point.bounding_box points [| 0; 1; 2 |] ~lo ~hi;
  Alcotest.(check (array (float 0.))) "lo" [| 1.; 2. |] lo;
  Alcotest.(check (array (float 0.))) "hi" [| 3.; 7. |] hi

let test_linear_ordering () =
  let points = [| [| 0. |]; [| 10. |]; [| 3. |]; [| 7. |] |] in
  let idx = Linear.create points in
  let result = Linear.nearest idx [| 4. |] ~k:4 in
  Alcotest.(check (list int)) "ascending distance" [ 2; 3; 0; 1 ]
    (Array.to_list (Array.map fst result))

let test_linear_ties_by_index () =
  let points = [| [| 1. |]; [| -1. |]; [| 1. |] |] in
  let idx = Linear.create points in
  let result = Linear.nearest idx [| 0. |] ~k:3 in
  Alcotest.(check (list int)) "ties broken by id" [ 0; 1; 2 ]
    (Array.to_list (Array.map fst result))

let test_linear_nth () =
  let points = [| [| 0. |]; [| 2. |]; [| 5. |] |] in
  let idx = Linear.create points in
  (match Linear.nth_nearest idx [| 1. |] 2 with
  | Some (i, d) ->
      Alcotest.(check int) "2nd nearest" 1 i;
      Alcotest.(check (float 1e-9)) "distance" 1. d
  | None -> Alcotest.fail "expected a 2nd NN");
  Alcotest.(check bool) "rank beyond size" true
    (Linear.nth_nearest idx [| 1. |] 4 = None)

let test_linear_within () =
  let points = [| [| 0. |]; [| 2. |]; [| 5. |] |] in
  let idx = Linear.create points in
  let r = Linear.nearest_within idx [| 0. |] ~k:3 ~max_dist:5. in
  Alcotest.(check (list int)) "strictly inside cutoff" [ 0; 1 ]
    (Array.to_list (Array.map fst r))

let check_kd_matches_linear ~n ~d ~seed =
  let rng = Rng.create ~seed in
  let points = random_points rng ~n ~d ~range:100. in
  let linear = Linear.create points and tree = Kd.build ~leaf_size:4 points in
  for _ = 1 to 20 do
    let q = Array.init d (fun _ -> Rng.float rng 100.) in
    let k = 1 + Rng.int rng n in
    let expected = Linear.nearest linear q ~k in
    let actual = Kd.nearest tree q ~k in
    Alcotest.(check (list int))
      (Printf.sprintf "k=%d identical neighbour ids" k)
      (Array.to_list (Array.map fst expected))
      (Array.to_list (Array.map fst actual));
    Array.iteri
      (fun i (_, dist) ->
        Alcotest.(check (float 1e-9)) "identical distances" (snd expected.(i))
          dist)
      actual
  done

let test_kd_matches_linear_2d () = check_kd_matches_linear ~n:200 ~d:2 ~seed:1
let test_kd_matches_linear_high_d () = check_kd_matches_linear ~n:150 ~d:20 ~seed:2
let test_kd_matches_linear_1d () = check_kd_matches_linear ~n:50 ~d:1 ~seed:3

let test_kd_empty_and_tiny () =
  let tree = Kd.build [||] in
  Alcotest.(check int) "empty size" 0 (Kd.size tree);
  Alcotest.(check int) "no neighbours" 0 (Array.length (Kd.nearest tree [| 0. |] ~k:3));
  let one = Kd.build [| [| 5. |] |] in
  let r = Kd.nearest one [| 0. |] ~k:5 in
  Alcotest.(check int) "single point" 1 (Array.length r);
  Alcotest.(check int) "its id" 0 (fst r.(0))

let test_kd_duplicate_points () =
  let points = Array.make 10 [| 3.; 3. |] in
  let tree = Kd.build ~leaf_size:2 points in
  let r = Kd.nearest tree [| 3.; 3. |] ~k:10 in
  Alcotest.(check (list int)) "all duplicates, id order"
    (List.init 10 Fun.id)
    (Array.to_list (Array.map fst r))

let test_cursor_streams_in_order () =
  let rng = Rng.create ~seed:4 in
  let points = random_points rng ~n:300 ~d:3 ~range:10. in
  let tree = Kd.build points in
  let c = Kd.cursor tree [| 5.; 5.; 5. |] () in
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Kd.next c with
    | None -> ()
    | Some (_, d) ->
        Alcotest.(check bool) "ascending" true (d >= !last);
        last := d;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "every point enumerated once" 300 !count;
  Alcotest.(check int) "returned counter" 300 (Kd.returned c)

let test_cursor_max_dist () =
  let points = [| [| 0. |]; [| 1. |]; [| 2. |]; [| 5. |] |] in
  let tree = Kd.build points in
  let c = Kd.cursor tree [| 0. |] ~max_dist:2. () in
  let ids = ref [] in
  let rec drain () =
    match Kd.next c with
    | None -> ()
    | Some (i, _) ->
        ids := i :: !ids;
        drain ()
  in
  drain ();
  (* Distance 2 is excluded: the cutoff is exclusive. *)
  Alcotest.(check (list int)) "strictly within" [ 0; 1 ] (List.rev !ids)

let test_stream_random_access () =
  let rng = Rng.create ~seed:5 in
  let points = random_points rng ~n:100 ~d:2 ~range:10. in
  let tree = Kd.build points in
  let linear = Linear.create points in
  let q = [| 3.; 3. |] in
  let s = Stream.create tree q () in
  (* Jump around ranks; results must match the oracle at every rank. *)
  List.iter
    (fun rank ->
      match (Stream.get s rank, Linear.nth_nearest linear q rank) with
      | Some (i, d), Some (i', d') ->
          Alcotest.(check int) (Printf.sprintf "rank %d id" rank) i' i;
          Alcotest.(check (float 1e-9)) "rank distance" d' d
      | None, None -> ()
      | _ -> Alcotest.fail "stream and oracle disagree on existence")
    [ 5; 1; 50; 3; 100; 99; 2 ];
  Alcotest.(check bool) "rank beyond size" true (Stream.get s 101 = None);
  Alcotest.(check int) "known counts materialised prefix" 100 (Stream.known s)

let test_stream_bulk_high_dimension () =
  (* d >= 10 streams start in bulk mode (the kd cursor is bypassed); the
     served order must still match the oracle exactly. *)
  let rng = Rng.create ~seed:7 in
  let points = random_points rng ~n:300 ~d:20 ~range:100. in
  let tree = Kd.build points in
  let linear = Linear.create points in
  let q = Array.init 20 (fun _ -> Rng.float rng 100.) in
  let s = Stream.create tree q () in
  List.iter
    (fun rank ->
      match (Stream.get s rank, Linear.nth_nearest linear q rank) with
      | Some (i, d), Some (i', d') ->
          Alcotest.(check int) (Printf.sprintf "bulk rank %d" rank) i' i;
          Alcotest.(check (float 1e-9)) "bulk distance" d' d
      | None, None -> ()
      | _ -> Alcotest.fail "bulk stream and oracle disagree")
    [ 1; 7; 2; 300; 150; 299; 1 ];
  Alcotest.(check bool) "beyond size" true (Stream.get s 301 = None)

let test_stream_switch_threshold_zero () =
  (* Forcing bulk on first access must not change any answer. *)
  let rng = Rng.create ~seed:8 in
  let points = random_points rng ~n:120 ~d:3 ~range:10. in
  let tree = Kd.build points in
  let q = [| 1.; 2.; 3. |] in
  let lazy_s = Stream.create tree q () in
  let eager_s = Stream.create tree q ~switch_threshold:0 () in
  for rank = 1 to 120 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d agrees across regimes" rank)
      true
      (Stream.get lazy_s rank = Stream.get eager_s rank)
  done

let test_stream_sequential_advance_crosses_switch () =
  (* Rank-by-rank advance across the switch threshold (the Greedy access
     pattern) stays consistent with the oracle. *)
  let rng = Rng.create ~seed:9 in
  let points = random_points rng ~n:200 ~d:4 ~range:10. in
  let tree = Kd.build points in
  let linear = Linear.create points in
  let q = Array.init 4 (fun _ -> Rng.float rng 10.) in
  let s = Stream.create tree q ~switch_threshold:16 () in
  for rank = 1 to 200 do
    match (Stream.get s rank, Linear.nth_nearest linear q rank) with
    | Some (i, _), Some (i', _) ->
        Alcotest.(check int) (Printf.sprintf "rank %d" rank) i' i
    | None, None -> ()
    | _ -> Alcotest.fail "existence disagreement"
  done

let test_stream_cutoff_in_bulk_mode () =
  let points = Array.init 50 (fun i -> Array.make 20 (float_of_int i)) in
  let tree = Kd.build points in
  (* Query at the origin; cutoff excludes points with coordinate >= 5 —
     distance of point i is i * sqrt 20. *)
  let s = Stream.create tree (Array.make 20 0.) ~max_dist:(5. *. sqrt 20.) () in
  Alcotest.(check bool) "rank 5 exists" true (Stream.get s 5 <> None);
  Alcotest.(check bool) "rank 6 beyond cutoff" true (Stream.get s 6 = None)

let test_stream_cutoff () =
  let points = [| [| 0. |]; [| 3. |]; [| 9. |] |] in
  let tree = Kd.build points in
  let s = Stream.create tree [| 0. |] ~max_dist:5. () in
  Alcotest.(check bool) "rank 1" true (Stream.get s 1 <> None);
  Alcotest.(check bool) "rank 2" true (Stream.get s 2 <> None);
  Alcotest.(check bool) "rank 3 beyond cutoff" true (Stream.get s 3 = None)

(* QCheck property: streams agree with the oracle for any (n, d, threshold),
   covering the cursor regime, the bulk regime and the switch between. *)
let prop_stream_matches_oracle =
  QCheck.Test.make ~name:"nn stream = linear oracle across regimes" ~count:60
    QCheck.(triple (int_range 1 80) (int_range 1 24) (int_range 0 30))
    (fun (n, d, threshold) ->
      let rng = Rng.create ~seed:(n + (37 * d) + (1009 * threshold)) in
      let points = random_points rng ~n ~d ~range:50. in
      let tree = Kd.build ~leaf_size:3 points in
      let linear = Linear.create points in
      let q = Array.init d (fun _ -> Rng.float rng 50.) in
      let s = Stream.create tree q ~switch_threshold:threshold () in
      let ok = ref true in
      for rank = 1 to n + 1 do
        let expected = Linear.nth_nearest linear q rank in
        let actual = Stream.get s rank in
        (match (expected, actual) with
        | Some (i, _), Some (i', _) when i = i' -> ()
        | None, None -> ()
        | _ -> ok := false)
      done;
      !ok)

(* QCheck property: kd-tree enumeration = sorted linear distances. *)
let prop_kd_full_enumeration =
  QCheck.Test.make ~name:"kd cursor enumerates exactly the sorted scan"
    ~count:50
    QCheck.(pair (int_range 1 60) (int_range 1 5))
    (fun (n, d) ->
      let rng = Rng.create ~seed:(n + (100 * d)) in
      let points = random_points rng ~n ~d ~range:50. in
      let tree = Kd.build ~leaf_size:3 points in
      let linear = Linear.create points in
      let q = Array.init d (fun _ -> Rng.float rng 50.) in
      let expected = Array.map fst (Linear.nearest linear q ~k:n) in
      let c = Kd.cursor tree q () in
      let actual = Array.init n (fun _ ->
          match Kd.next c with Some (i, _) -> i | None -> -1)
      in
      expected = actual)

let suite =
  [
    Alcotest.test_case "point distances" `Quick test_point_dist;
    Alcotest.test_case "point-box distance" `Quick test_point_box;
    Alcotest.test_case "bounding box" `Quick test_bounding_box;
    Alcotest.test_case "linear ordering" `Quick test_linear_ordering;
    Alcotest.test_case "linear ties by index" `Quick test_linear_ties_by_index;
    Alcotest.test_case "linear nth_nearest" `Quick test_linear_nth;
    Alcotest.test_case "linear nearest_within" `Quick test_linear_within;
    Alcotest.test_case "kd = linear (2d)" `Quick test_kd_matches_linear_2d;
    Alcotest.test_case "kd = linear (d=20)" `Quick test_kd_matches_linear_high_d;
    Alcotest.test_case "kd = linear (1d)" `Quick test_kd_matches_linear_1d;
    Alcotest.test_case "kd empty/tiny" `Quick test_kd_empty_and_tiny;
    Alcotest.test_case "kd duplicate points" `Quick test_kd_duplicate_points;
    Alcotest.test_case "cursor ascending order" `Quick
      test_cursor_streams_in_order;
    Alcotest.test_case "cursor max_dist exclusive" `Quick test_cursor_max_dist;
    Alcotest.test_case "stream random access" `Quick test_stream_random_access;
    Alcotest.test_case "stream cutoff" `Quick test_stream_cutoff;
    Alcotest.test_case "stream bulk (high-d)" `Quick
      test_stream_bulk_high_dimension;
    Alcotest.test_case "stream threshold zero" `Quick
      test_stream_switch_threshold_zero;
    Alcotest.test_case "stream sequential across switch" `Quick
      test_stream_sequential_advance_crosses_switch;
    Alcotest.test_case "stream cutoff in bulk mode" `Quick
      test_stream_cutoff_in_bulk_mode;
    QCheck_alcotest.to_alcotest prop_kd_full_enumeration;
    QCheck_alcotest.to_alcotest prop_stream_matches_oracle;
  ]
