(* Core model: entities, similarities, conflict sets, instances, matchings
   and the independent validator. *)

open Geacc_core
module Rng = Geacc_util.Rng

let close = Alcotest.float 1e-9

(* -- Entity -- *)

let test_entity_make () =
  let e = Entity.make ~id:3 ~attrs:[| 1.; 2. |] ~capacity:4 in
  Alcotest.(check int) "id" 3 e.Entity.id;
  Alcotest.(check int) "capacity" 4 e.Entity.capacity;
  Alcotest.(check int) "dim" 2 (Entity.dim e)

let test_entity_rejects () =
  Alcotest.check_raises "negative id"
    (Invalid_argument "Entity.make: negative id") (fun () ->
      ignore (Entity.make ~id:(-1) ~attrs:[| 0. |] ~capacity:1));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Entity.make: negative capacity") (fun () ->
      ignore (Entity.make ~id:0 ~attrs:[| 0. |] ~capacity:(-1)));
  Alcotest.check_raises "empty attributes"
    (Invalid_argument "Entity.make: empty attributes") (fun () ->
      ignore (Entity.make ~id:0 ~attrs:[||] ~capacity:1))

(* -- Similarity -- *)

let test_euclidean_formula () =
  let sim = Similarity.euclidean ~dim:2 ~range:10. in
  (* Equation (1): 1 - d / sqrt(2 * 100). *)
  Alcotest.check close "identical vectors" 1.
    (Similarity.eval sim [| 1.; 1. |] [| 1.; 1. |]);
  Alcotest.check close "opposite corners" 0.
    (Similarity.eval sim [| 0.; 0. |] [| 10.; 10. |]);
  let d = 5. in
  Alcotest.check close "intermediate"
    (1. -. (d /. sqrt 200.))
    (Similarity.eval sim [| 0.; 0. |] [| 3.; 4. |])

let test_euclidean_profile () =
  let sim = Similarity.euclidean ~dim:4 ~range:100. in
  match Similarity.dist_profile sim with
  | None -> Alcotest.fail "euclidean must expose a profile"
  | Some p ->
      Alcotest.check close "cutoff = sqrt(d T^2)" 200. p.Similarity.cutoff;
      Alcotest.check close "profile at 0" 1. (p.Similarity.sim_of_dist 0.);
      Alcotest.check close "profile at cutoff" 0.
        (p.Similarity.sim_of_dist 200.);
      (* The profile must agree with eval. *)
      let a = [| 1.; 2.; 3.; 4. |] and b = [| 50.; 0.; 9.; 70. |] in
      Alcotest.check close "profile consistent with eval"
        (Similarity.eval sim a b)
        (p.Similarity.sim_of_dist (Geacc_index.Point.dist a b))

let test_gaussian () =
  let sim = Similarity.gaussian ~sigma:2. in
  Alcotest.check close "at zero distance" 1.
    (Similarity.eval sim [| 0. |] [| 0. |]);
  Alcotest.check close "at distance 2 (one sigma)" (exp (-0.5))
    (Similarity.eval sim [| 0. |] [| 2. |]);
  match Similarity.dist_profile sim with
  | Some p ->
      Alcotest.(check bool) "never cuts off" true
        (p.Similarity.cutoff = infinity)
  | None -> Alcotest.fail "gaussian has a profile"

let test_cosine () =
  Alcotest.check close "parallel" 1.
    (Similarity.eval Similarity.cosine [| 1.; 2. |] [| 2.; 4. |]);
  Alcotest.check close "orthogonal" 0.
    (Similarity.eval Similarity.cosine [| 1.; 0. |] [| 0.; 1. |]);
  Alcotest.check close "null vector" 0.
    (Similarity.eval Similarity.cosine [| 0.; 0. |] [| 1.; 1. |]);
  (* Negative cosine clamps to 0: similarities live in [0,1]. *)
  Alcotest.check close "anti-parallel clamps" 0.
    (Similarity.eval Similarity.cosine [| 1. |] [| -1. |]);
  Alcotest.(check bool) "no profile" true
    (Similarity.dist_profile Similarity.cosine = None)

let test_similarity_spec () =
  (match Similarity.spec (Similarity.euclidean ~dim:3 ~range:7.) with
  | Similarity.Spec_euclidean { dim = 3; range } ->
      Alcotest.check close "range" 7. range
  | _ -> Alcotest.fail "euclidean spec");
  match Similarity.spec (Similarity.custom ~name:"x" (fun _ _ -> 0.5)) with
  | Similarity.Spec_custom "x" -> ()
  | _ -> Alcotest.fail "custom spec"

(* -- Conflict -- *)

let test_conflict_basics () =
  let cf = Conflict.create ~n_events:5 in
  Alcotest.(check int) "empty" 0 (Conflict.cardinal cf);
  Conflict.add cf 1 3;
  Alcotest.(check bool) "mem symmetric" true
    (Conflict.mem cf 1 3 && Conflict.mem cf 3 1);
  Alcotest.(check bool) "self never conflicts" false (Conflict.mem cf 2 2);
  Conflict.add cf 3 1;
  Alcotest.(check int) "idempotent add" 1 (Conflict.cardinal cf);
  Alcotest.(check int) "degree" 1 (Conflict.degree cf 1);
  Alcotest.(check int) "degree other side" 1 (Conflict.degree cf 3);
  Alcotest.(check int) "degree untouched" 0 (Conflict.degree cf 0)

let test_conflict_rejects () =
  let cf = Conflict.create ~n_events:3 in
  Alcotest.check_raises "self conflict"
    (Invalid_argument "Conflict.add: an event cannot conflict with itself")
    (fun () -> Conflict.add cf 1 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Conflict: event id 7 out of range") (fun () ->
      Conflict.add cf 0 7)

let test_conflict_iteration () =
  let cf = Conflict.of_pairs ~n_events:4 [ (0, 1); (2, 1); (3, 0) ] in
  let pairs = ref [] in
  Conflict.iter_pairs cf (fun v w -> pairs := (v, w) :: !pairs);
  Alcotest.(check (list (pair int int)))
    "each unordered pair once, v < w"
    [ (0, 1); (0, 3); (1, 2) ]
    (List.sort compare !pairs);
  let neighbours = ref [] in
  Conflict.iter_conflicting cf 1 (fun w -> neighbours := w :: !neighbours);
  Alcotest.(check (list int)) "neighbours of 1" [ 0; 2 ]
    (List.sort compare !neighbours)

let test_conflict_ratio () =
  let cf = Conflict.of_pairs ~n_events:4 [ (0, 1); (2, 3); (0, 3) ] in
  Alcotest.check close "3 of 6 pairs" 0.5 (Conflict.ratio cf);
  Alcotest.check close "degenerate" 0.
    (Conflict.ratio (Conflict.create ~n_events:1))

let test_conflict_copy () =
  let cf = Conflict.of_pairs ~n_events:3 [ (0, 1) ] in
  let copy = Conflict.copy cf in
  Conflict.add copy 1 2;
  Alcotest.(check int) "copy grew" 2 (Conflict.cardinal copy);
  Alcotest.(check int) "original untouched" 1 (Conflict.cardinal cf)

(* -- Instance -- *)

let small_instance () =
  let sim = Similarity.euclidean ~dim:1 ~range:10. in
  let events =
    [|
      Entity.make ~id:0 ~attrs:[| 0. |] ~capacity:2;
      Entity.make ~id:1 ~attrs:[| 10. |] ~capacity:1;
    |]
  in
  let users =
    [|
      Entity.make ~id:0 ~attrs:[| 1. |] ~capacity:1;
      Entity.make ~id:1 ~attrs:[| 9. |] ~capacity:2;
      Entity.make ~id:2 ~attrs:[| 5. |] ~capacity:1;
    |]
  in
  Instance.create ~sim ~events ~users
    ~conflicts:(Conflict.of_pairs ~n_events:2 [ (0, 1) ])
    ()

let test_instance_accessors () =
  let t = small_instance () in
  Alcotest.(check int) "|V|" 2 (Instance.n_events t);
  Alcotest.(check int) "|U|" 3 (Instance.n_users t);
  Alcotest.(check int) "dim" 1 (Instance.dim t);
  Alcotest.(check int) "sum c_v" 3 (Instance.sum_event_capacity t);
  Alcotest.(check int) "sum c_u" 4 (Instance.sum_user_capacity t);
  Alcotest.(check int) "max c_v" 2 (Instance.max_event_capacity t);
  Alcotest.(check int) "max c_u" 2 (Instance.max_user_capacity t);
  Alcotest.check close "sim(0,0) = 1 - 1/10" 0.9 (Instance.sim t ~v:0 ~u:0)

let test_instance_validation () =
  let sim = Similarity.euclidean ~dim:2 ~range:1. in
  let e d = [| Entity.make ~id:0 ~attrs:(Array.make d 0.) ~capacity:1 |] in
  let u = [| Entity.make ~id:0 ~attrs:[| 0.; 0. |] ~capacity:1 |] in
  (* Mismatched dimensions rejected. *)
  Alcotest.(check bool) "dim mismatch" true
    (try
       ignore
         (Instance.create ~sim ~events:(e 3) ~users:u
            ~conflicts:(Conflict.create ~n_events:1) ());
       false
     with Invalid_argument _ -> true);
  (* Misnumbered ids rejected. *)
  let bad = [| Entity.make ~id:5 ~attrs:[| 0.; 0. |] ~capacity:1 |] in
  Alcotest.(check bool) "bad id" true
    (try
       ignore
         (Instance.create ~sim ~events:bad ~users:u
            ~conflicts:(Conflict.create ~n_events:1) ());
       false
     with Invalid_argument _ -> true);
  (* Conflict set over the wrong universe rejected. *)
  Alcotest.(check bool) "conflict universe" true
    (try
       ignore
         (Instance.create ~sim ~events:(e 2) ~users:u
            ~conflicts:(Conflict.create ~n_events:3) ());
       false
     with Invalid_argument _ -> true)

let test_instance_neighbors () =
  let t = small_instance () in
  (* Event 0 at coordinate 0: users sorted by similarity are 0 (at 1),
     2 (at 5), 1 (at 9). *)
  let expect rank id =
    match Instance.event_neighbor t ~v:0 ~rank with
    | Some (u, s) ->
        Alcotest.(check int) (Printf.sprintf "rank %d" rank) id u;
        Alcotest.check close "sim consistent" (Instance.sim t ~v:0 ~u) s
    | None -> Alcotest.fail "missing neighbour"
  in
  expect 1 0;
  expect 2 2;
  expect 3 1;
  Alcotest.(check bool) "rank 4 empty" true
    (Instance.event_neighbor t ~v:0 ~rank:4 = None);
  (* User 2 at coordinate 5 is equidistant from both events: tie broken by
     event id. *)
  match Instance.user_neighbor t ~u:2 ~rank:1 with
  | Some (v, _) -> Alcotest.(check int) "tie by id" 0 v
  | None -> Alcotest.fail "missing neighbour"

let test_instance_neighbors_scanned_backend () =
  (* A custom similarity with no distance profile exercises the sorted-scan
     backend; results must match manual sorting. *)
  let matrix = [| [| 0.2; 0.9; 0. |]; [| 0.5; 0.5; 0.1 |] |] in
  let sim =
    Similarity.custom ~name:"m" (fun a b ->
        matrix.(int_of_float a.(0)).(int_of_float b.(0)))
  in
  let mk n = Array.init n (fun id -> Entity.make ~id ~attrs:[| float_of_int id |] ~capacity:1) in
  let t =
    Instance.create ~sim ~events:(mk 2) ~users:(mk 3)
      ~conflicts:(Conflict.create ~n_events:2) ()
  in
  (match Instance.event_neighbor t ~v:0 ~rank:1 with
  | Some (1, s) -> Alcotest.check close "best user of v0" 0.9 s
  | _ -> Alcotest.fail "wrong 1-NN");
  (* sim = 0 pairs are excluded from enumeration. *)
  Alcotest.(check bool) "v0 has exactly 2 positive neighbours" true
    (Instance.event_neighbor t ~v:0 ~rank:3 = None);
  (* Ties (0.5, 0.5) break by user id. *)
  match Instance.user_neighbor t ~u:0 ~rank:1 with
  | Some (v, _) -> Alcotest.(check int) "user 0 prefers event" 1 v
  | None -> Alcotest.fail "missing"

(* -- Matching -- *)

let test_matching_lifecycle () =
  let t = small_instance () in
  let m = Matching.create t in
  Alcotest.(check int) "empty" 0 (Matching.size m);
  Alcotest.check close "zero maxsum" 0. (Matching.maxsum m);
  let s = Matching.add_exn m ~v:0 ~u:0 in
  Alcotest.check close "returned sim" 0.9 s;
  Alcotest.(check bool) "mem" true (Matching.mem m ~v:0 ~u:0);
  Alcotest.(check int) "loads" 1 (Matching.event_load m 0);
  Alcotest.(check int) "user load" 1 (Matching.user_load m 0);
  Alcotest.(check int) "remaining event cap" 1
    (Matching.remaining_event_capacity m 0);
  Alcotest.(check int) "remaining user cap" 0
    (Matching.remaining_user_capacity m 0);
  Matching.remove_exn m ~v:0 ~u:0;
  Alcotest.(check int) "removed" 0 (Matching.size m);
  Alcotest.check close "maxsum restored" 0. (Matching.maxsum m)

let test_matching_rejections () =
  let t = small_instance () in
  let m = Matching.create t in
  ignore (Matching.add_exn m ~v:0 ~u:0);
  Alcotest.(check bool) "duplicate" true
    (Matching.check_add m ~v:0 ~u:0 = Some Matching.Duplicate);
  (* User 0 has capacity 1. *)
  Alcotest.(check bool) "user full" true
    (Matching.check_add m ~v:1 ~u:0 = Some Matching.User_full);
  (* Conflict: user 1 takes event 0, then event 1 clashes. *)
  ignore (Matching.add_exn m ~v:0 ~u:1);
  Alcotest.(check bool) "conflict" true
    (Matching.check_add m ~v:1 ~u:1 = Some (Matching.Conflicting_event 0));
  (* Event 0 now full (capacity 2). *)
  Alcotest.(check bool) "event full" true
    (Matching.check_add m ~v:0 ~u:2 = Some Matching.Event_full);
  Alcotest.(check bool) "add returns Error" true
    (Matching.add m ~v:0 ~u:2 = Error Matching.Event_full)

let test_matching_zero_similarity () =
  let sim = Similarity.custom ~name:"zero" (fun _ _ -> 0.) in
  let mk n = Array.init n (fun id -> Entity.make ~id ~attrs:[| 0. |] ~capacity:1) in
  let t =
    Instance.create ~sim ~events:(mk 1) ~users:(mk 1)
      ~conflicts:(Conflict.create ~n_events:1) ()
  in
  let m = Matching.create t in
  Alcotest.(check bool) "zero-sim pairs rejected" true
    (Matching.check_add m ~v:0 ~u:0 = Some Matching.Zero_similarity)

let test_matching_copy_independent () =
  let t = small_instance () in
  let m = Matching.create t in
  ignore (Matching.add_exn m ~v:0 ~u:0);
  let c = Matching.copy m in
  ignore (Matching.add_exn c ~v:0 ~u:1);
  Alcotest.(check int) "copy grew" 2 (Matching.size c);
  Alcotest.(check int) "original unchanged" 1 (Matching.size m)

let test_matching_maxsum_consistency () =
  let t = small_instance () in
  let m = Matching.create t in
  ignore (Matching.add_exn m ~v:0 ~u:0);
  ignore (Matching.add_exn m ~v:0 ~u:1);
  ignore (Matching.add_exn m ~v:1 ~u:2);
  Alcotest.(check (float 1e-9)) "incremental = recomputed"
    (Matching.maxsum_recomputed m) (Matching.maxsum m);
  Alcotest.(check (list (pair int int))) "pairs sorted"
    [ (0, 0); (0, 1); (1, 2) ] (Matching.pairs m)

(* -- Validate -- *)

let test_validate_catches_everything () =
  let t = small_instance () in
  let check pairs expected_count =
    Alcotest.(check int)
      (Printf.sprintf "violations of %s"
         (String.concat ";"
            (List.map (fun (v, u) -> Printf.sprintf "(%d,%d)" v u) pairs)))
      expected_count
      (List.length (Validate.check t pairs))
  in
  check [] 0;
  check [ (0, 0) ] 0;
  check [ (9, 0) ] 1 (* event id range *);
  check [ (0, 9) ] 1 (* user id range *);
  check [ (0, 0); (0, 0) ] 1 (* duplicate *);
  check [ (0, 0); (1, 0) ] 2 (* user 0 over capacity AND conflict v0/v1 *);
  check [ (0, 1); (1, 1) ] 1 (* conflict only: user 1 has capacity 2 *);
  check [ (0, 0); (0, 1); (0, 2) ] 1 (* event 0 over capacity 2 *)

let test_validate_is_feasible () =
  let t = small_instance () in
  Alcotest.(check bool) "feasible" true (Validate.is_feasible t [ (0, 0); (1, 1) ]);
  Alcotest.(check bool) "infeasible" false (Validate.is_feasible t [ (0, 0); (0, 0) ])

let suite =
  [
    Alcotest.test_case "entity make" `Quick test_entity_make;
    Alcotest.test_case "entity rejects" `Quick test_entity_rejects;
    Alcotest.test_case "euclidean formula (Eq. 1)" `Quick test_euclidean_formula;
    Alcotest.test_case "euclidean profile" `Quick test_euclidean_profile;
    Alcotest.test_case "gaussian" `Quick test_gaussian;
    Alcotest.test_case "cosine" `Quick test_cosine;
    Alcotest.test_case "similarity spec" `Quick test_similarity_spec;
    Alcotest.test_case "conflict basics" `Quick test_conflict_basics;
    Alcotest.test_case "conflict rejects" `Quick test_conflict_rejects;
    Alcotest.test_case "conflict iteration" `Quick test_conflict_iteration;
    Alcotest.test_case "conflict ratio" `Quick test_conflict_ratio;
    Alcotest.test_case "conflict copy" `Quick test_conflict_copy;
    Alcotest.test_case "instance accessors" `Quick test_instance_accessors;
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "instance neighbours (indexed)" `Quick
      test_instance_neighbors;
    Alcotest.test_case "instance neighbours (scanned)" `Quick
      test_instance_neighbors_scanned_backend;
    Alcotest.test_case "matching lifecycle" `Quick test_matching_lifecycle;
    Alcotest.test_case "matching rejections" `Quick test_matching_rejections;
    Alcotest.test_case "matching zero similarity" `Quick
      test_matching_zero_similarity;
    Alcotest.test_case "matching copy" `Quick test_matching_copy_independent;
    Alcotest.test_case "matching maxsum consistency" `Quick
      test_matching_maxsum_consistency;
    Alcotest.test_case "validate catches violations" `Quick
      test_validate_catches_everything;
    Alcotest.test_case "validate is_feasible" `Quick test_validate_is_feasible;
  ]
