(* Index backends: VA-File and iDistance against the linear oracle, plus
   end-to-end solver agreement across every backend. *)

module Point = Geacc_index.Point
module Linear = Geacc_index.Linear_index
module Va = Geacc_index.Va_file
module Id = Geacc_index.I_distance
module Backend = Geacc_index.Nn_backend
module Rng = Geacc_util.Rng
open Geacc_core
module Synthetic = Geacc_datagen.Synthetic

let random_points rng ~n ~d ~range =
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.float rng range))

(* -- VA-File -- *)

let test_va_build () =
  let rng = Rng.create ~seed:1 in
  let points = random_points rng ~n:100 ~d:5 ~range:10. in
  let t = Va.build points in
  Alcotest.(check int) "size" 100 (Va.size t);
  Alcotest.(check int) "approximation is n*d bytes" 500
    (Va.approximation_bytes t);
  Alcotest.(check bool) "bad bits rejected" true
    (try
       ignore (Va.build ~bits_per_dim:9 points);
       false
     with Invalid_argument _ -> true)

let check_va_against_oracle ~n ~d ~bits ~seed =
  let rng = Rng.create ~seed in
  let points = random_points rng ~n ~d ~range:100. in
  let t = Va.build ~bits_per_dim:bits points in
  let oracle = Linear.create points in
  for _ = 1 to 10 do
    let q = Array.init d (fun _ -> Rng.float rng 100.) in
    let s = Va.stream t ~query:q ~max_dist:infinity in
    for rank = 1 to n do
      match (Va.get s rank, Linear.nth_nearest oracle q rank) with
      | Some (i, dist), Some (i', dist') ->
          Alcotest.(check int) (Printf.sprintf "rank %d id" rank) i' i;
          Alcotest.(check (float 1e-9)) "dist" dist' dist
      | None, None -> ()
      | _ -> Alcotest.fail "existence mismatch"
    done;
    Alcotest.(check bool) "rank n+1 empty" true (Va.get s (n + 1) = None)
  done

let test_va_exact_order () = check_va_against_oracle ~n:80 ~d:4 ~bits:4 ~seed:2
let test_va_one_bit () = check_va_against_oracle ~n:40 ~d:3 ~bits:1 ~seed:3
let test_va_high_d () = check_va_against_oracle ~n:60 ~d:20 ~bits:5 ~seed:4

let test_va_saves_refinements () =
  (* Shallow queries must not refine everything — the point of the index. *)
  let rng = Rng.create ~seed:5 in
  let points = random_points rng ~n:2000 ~d:4 ~range:100. in
  let t = Va.build ~bits_per_dim:6 points in
  let q = Array.init 4 (fun _ -> Rng.float rng 100.) in
  let s = Va.stream t ~query:q ~max_dist:infinity in
  for rank = 1 to 10 do
    ignore (Va.get s rank)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "10-NN refined only %d of 2000" (Va.refinements s))
    true
    (Va.refinements s < 400)

let test_va_cutoff () =
  let points = Array.init 20 (fun i -> [| float_of_int i |]) in
  let t = Va.build points in
  let s = Va.stream t ~query:[| 0. |] ~max_dist:5. in
  let rec count rank =
    if Va.get s rank = None then rank - 1 else count (rank + 1)
  in
  Alcotest.(check int) "exactly points at distance < 5" 5 (count 1)

(* -- iDistance -- *)

let test_idistance_build () =
  let rng = Rng.create ~seed:6 in
  let points = random_points rng ~n:200 ~d:3 ~range:10. in
  let t = Id.build points in
  Alcotest.(check int) "size" 200 (Id.size t);
  Alcotest.(check int) "sqrt-n references" 14 (Id.n_references t);
  let custom = Id.build ~n_references:5 points in
  Alcotest.(check int) "explicit references" 5 (Id.n_references custom)

let check_idistance_against_oracle ~n ~d ~refs ~seed =
  let rng = Rng.create ~seed in
  let points = random_points rng ~n ~d ~range:100. in
  let t = Id.build ?n_references:refs points in
  let oracle = Linear.create points in
  for _ = 1 to 10 do
    let q = Array.init d (fun _ -> Rng.float rng 100.) in
    let s = Id.stream t ~query:q ~max_dist:infinity in
    for rank = 1 to n do
      match (Id.get s rank, Linear.nth_nearest oracle q rank) with
      | Some (i, dist), Some (i', dist') ->
          Alcotest.(check int) (Printf.sprintf "rank %d id" rank) i' i;
          Alcotest.(check (float 1e-9)) "dist" dist' dist
      | None, None -> ()
      | _ -> Alcotest.fail "existence mismatch"
    done
  done

let test_idistance_exact_order () =
  check_idistance_against_oracle ~n:80 ~d:4 ~refs:None ~seed:7

let test_idistance_single_reference () =
  check_idistance_against_oracle ~n:50 ~d:2 ~refs:(Some 1) ~seed:8

let test_idistance_many_references () =
  check_idistance_against_oracle ~n:60 ~d:6 ~refs:(Some 30) ~seed:9

let test_idistance_query_on_point () =
  (* A query sitting exactly on an indexed point: rank 1 is that point at
     distance 0. *)
  let rng = Rng.create ~seed:10 in
  let points = random_points rng ~n:50 ~d:3 ~range:10. in
  let t = Id.build points in
  let s = Id.stream t ~query:(Array.copy points.(17)) ~max_dist:infinity in
  match Id.get s 1 with
  | Some (17, d) -> Alcotest.(check (float 1e-12)) "distance zero" 0. d
  | _ -> Alcotest.fail "expected point 17 first"

let test_idistance_cutoff () =
  let points = Array.init 20 (fun i -> [| float_of_int i |]) in
  let t = Id.build ~n_references:3 points in
  let s = Id.stream t ~query:[| 0. |] ~max_dist:5. in
  let rec count rank =
    if Id.get s rank = None then rank - 1 else count (rank + 1)
  in
  Alcotest.(check int) "cutoff respected" 5 (count 1)

(* -- Backend registry and end-to-end agreement -- *)

let test_backend_of_string () =
  List.iter
    (fun (b : Backend.t) ->
      match Backend.of_string b.Backend.name with
      | Ok b' -> Alcotest.(check string) "roundtrip" b.Backend.name b'.Backend.name
      | Error e -> Alcotest.fail e)
    Backend.all;
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Backend.of_string "quadtree"))

let prop_backends_agree =
  QCheck.Test.make ~name:"all backends yield the oracle's order" ~count:40
    QCheck.(triple (int_range 1 50) (int_range 1 12) (int_bound 999))
    (fun (n, d, seed) ->
      let rng = Rng.create ~seed in
      let points = random_points rng ~n ~d ~range:20. in
      let q = Array.init d (fun _ -> Rng.float rng 20.) in
      let oracle =
        let idx = Linear.create points in
        Array.init n (fun k ->
            match Linear.nth_nearest idx q (k + 1) with
            | Some (i, _) -> i
            | None -> -1)
      in
      List.for_all
        (fun (b : Backend.t) ->
          let index = b.Backend.build points in
          let s = index.Backend.stream ~query:q ~max_dist:infinity in
          let ok = ref true in
          Array.iteri
            (fun k expected ->
              match s.Backend.get (k + 1) with
              | Some (i, _) when i = expected -> ()
              | _ -> ok := false)
            oracle;
          !ok && s.Backend.get (n + 1) = None)
        Backend.all)

let test_solvers_identical_across_backends () =
  (* The backend is an implementation detail: every solver must return the
     same arrangement whatever index serves the streams. *)
  let cfg =
    {
      Synthetic.default with
      Synthetic.n_events = 8;
      n_users = 30;
      dim = 6;
      event_capacity = Synthetic.Cap_uniform 4;
      user_capacity = Synthetic.Cap_uniform 2;
    }
  in
  List.iter
    (fun seed ->
      let reference =
        Matching.pairs (Greedy.solve (Synthetic.generate ~seed cfg))
      in
      let reference_exact =
        Matching.pairs
          (Exact.solve_prune (Synthetic.generate ~seed cfg))
      in
      List.iter
        (fun (b : Backend.t) ->
          let t = Synthetic.generate ~seed ~backend:b cfg in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "greedy via %s (seed %d)" b.Backend.name seed)
            reference
            (Matching.pairs (Greedy.solve t));
          let t2 = Synthetic.generate ~seed ~backend:b cfg in
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "prune via %s (seed %d)" b.Backend.name seed)
            reference_exact
            (Matching.pairs (Exact.solve_prune t2)))
        Backend.all)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "va-file build" `Quick test_va_build;
    Alcotest.test_case "va-file exact order" `Quick test_va_exact_order;
    Alcotest.test_case "va-file 1 bit per dim" `Quick test_va_one_bit;
    Alcotest.test_case "va-file high-d" `Quick test_va_high_d;
    Alcotest.test_case "va-file saves refinements" `Quick
      test_va_saves_refinements;
    Alcotest.test_case "va-file cutoff" `Quick test_va_cutoff;
    Alcotest.test_case "idistance build" `Quick test_idistance_build;
    Alcotest.test_case "idistance exact order" `Quick
      test_idistance_exact_order;
    Alcotest.test_case "idistance single reference" `Quick
      test_idistance_single_reference;
    Alcotest.test_case "idistance many references" `Quick
      test_idistance_many_references;
    Alcotest.test_case "idistance query on a point" `Quick
      test_idistance_query_on_point;
    Alcotest.test_case "idistance cutoff" `Quick test_idistance_cutoff;
    Alcotest.test_case "backend of_string" `Quick test_backend_of_string;
    QCheck_alcotest.to_alcotest prop_backends_agree;
    Alcotest.test_case "solvers identical across backends" `Quick
      test_solvers_identical_across_backends;
  ]
