(* Flow substrate: residual graph mechanics, shortest paths (Dijkstra vs
   Bellman-Ford), Edmonds-Karp, and the SSP min-cost-flow solver checked
   against brute-force assignment enumeration. *)

open Geacc_flow
module Rng = Geacc_util.Rng

let test_graph_basics () =
  let g = Graph.create ~num_nodes:3 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~capacity:5 ~cost:2. in
  let b = Graph.add_arc g ~src:1 ~dst:2 ~capacity:3 ~cost:(-1.) in
  Alcotest.(check int) "node count" 3 (Graph.node_count g);
  Alcotest.(check int) "arcs incl. residuals" 4 (Graph.arc_count g);
  Alcotest.(check int) "src" 0 (Graph.src g a);
  Alcotest.(check int) "dst" 1 (Graph.dst g a);
  Alcotest.(check (float 0.)) "cost" 2. (Graph.cost g a);
  Alcotest.(check (float 0.)) "residual cost negated" (-2.)
    (Graph.cost g (a lxor 1));
  Alcotest.(check int) "residual capacity" 5 (Graph.residual_capacity g a);
  Alcotest.(check int) "partner starts empty" 0
    (Graph.residual_capacity g (a lxor 1));
  Graph.push g a 2;
  Alcotest.(check int) "flow" 2 (Graph.flow g a);
  Alcotest.(check int) "capacity decreased" 3 (Graph.residual_capacity g a);
  Alcotest.(check int) "partner grew" 2 (Graph.residual_capacity g (a lxor 1));
  Graph.push g (a lxor 1) 1;
  Alcotest.(check int) "push back cancels" 1 (Graph.flow g a);
  Graph.reset_flow g;
  Alcotest.(check int) "reset" 0 (Graph.flow g a);
  Alcotest.(check int) "reset partner" 0 (Graph.residual_capacity g (a lxor 1));
  ignore b

let test_graph_excess () =
  let g = Graph.create ~num_nodes:4 in
  let a1 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:2 ~cost:0. in
  let a2 = Graph.add_arc g ~src:1 ~dst:2 ~capacity:2 ~cost:0. in
  Graph.push g a1 2;
  Graph.push g a2 1;
  Alcotest.(check int) "inner node excess" 1 (Graph.excess g 1);
  Alcotest.(check int) "source excess" (-2) (Graph.excess g 0);
  Alcotest.(check int) "sink side" 1 (Graph.excess g 2);
  Alcotest.(check int) "isolated node" 0 (Graph.excess g 3)

(* A small fixed graph with a known shortest-path structure. *)
let diamond () =
  let g = Graph.create ~num_nodes:4 in
  (* 0 -> 1 (1.0), 0 -> 2 (4.0), 1 -> 2 (2.0), 1 -> 3 (6.0), 2 -> 3 (1.0) *)
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:10 ~cost:1.);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~capacity:10 ~cost:4.);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:10 ~cost:2.);
  ignore (Graph.add_arc g ~src:1 ~dst:3 ~capacity:10 ~cost:6.);
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~capacity:10 ~cost:1.);
  g

let test_dijkstra_diamond () =
  let g = diamond () in
  let { Shortest_path.dist; parent_arc } =
    Shortest_path.dijkstra g ~source:0 ()
  in
  Alcotest.(check (array (float 1e-9))) "distances" [| 0.; 1.; 3.; 4. |] dist;
  (* Path to 3 goes through 2. *)
  Alcotest.(check int) "parent of 3 comes from 2" 2
    (Graph.src g parent_arc.(3))

let test_dijkstra_respects_capacity () =
  let g = diamond () in
  (* Saturate 1 -> 2; shortest to 2 becomes the direct 4.0 arc. *)
  Graph.iter_out_arcs g 1 (fun a ->
      if Graph.dst g a = 2 && a land 1 = 0 then Graph.push g a 10);
  let { Shortest_path.dist; _ } = Shortest_path.dijkstra g ~source:0 () in
  Alcotest.(check (float 1e-9)) "rerouted distance" 4. dist.(2)

let test_dijkstra_unreachable () =
  let g = Graph.create ~num_nodes:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1 ~cost:1.);
  let { Shortest_path.dist; _ } = Shortest_path.dijkstra g ~source:0 () in
  Alcotest.(check bool) "node 2 unreachable" true (dist.(2) = infinity)

let test_bellman_ford_negative () =
  let g = Graph.create ~num_nodes:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1 ~cost:5.);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~capacity:1 ~cost:1.);
  ignore (Graph.add_arc g ~src:2 ~dst:1 ~capacity:1 ~cost:(-3.));
  match Shortest_path.bellman_ford g ~source:0 with
  | None -> Alcotest.fail "no negative cycle here"
  | Some { Shortest_path.dist; _ } ->
      Alcotest.(check (float 1e-9)) "negative arc used" (-2.) dist.(1)

let test_bellman_ford_detects_cycle () =
  let g = Graph.create ~num_nodes:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1 ~cost:1.);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:5 ~cost:(-4.));
  ignore (Graph.add_arc g ~src:2 ~dst:1 ~capacity:5 ~cost:1.);
  Alcotest.(check bool) "negative cycle detected" true
    (Shortest_path.bellman_ford g ~source:0 = None)

let random_graph rng ~n ~arcs =
  let g = Graph.create ~num_nodes:n in
  for _ = 1 to arcs do
    let src = Rng.int rng n and dst = Rng.int rng n in
    if src <> dst then
      ignore
        (Graph.add_arc g ~src ~dst
           ~capacity:(1 + Rng.int rng 5)
           ~cost:(Rng.float rng 10.))
  done;
  g

let test_dijkstra_agrees_with_bellman_ford () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 50 do
    let g = random_graph rng ~n:8 ~arcs:20 in
    let d = Shortest_path.dijkstra g ~source:0 () in
    match Shortest_path.bellman_ford g ~source:0 with
    | None -> Alcotest.fail "non-negative costs cannot cycle"
    | Some b ->
        Array.iteri
          (fun i dd ->
            if dd = infinity then
              Alcotest.(check bool)
                "both unreachable" true
                (b.Shortest_path.dist.(i) = infinity)
            else
              Alcotest.(check (float 1e-6))
                "distance agreement" b.Shortest_path.dist.(i) dd)
          d.Shortest_path.dist
  done

let test_maxflow_known () =
  (* Classic: two disjoint augmenting paths plus a cross arc. *)
  let g = Graph.create ~num_nodes:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:3 ~cost:0.);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~capacity:2 ~cost:0.);
  ignore (Graph.add_arc g ~src:1 ~dst:3 ~capacity:2 ~cost:0.);
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~capacity:3 ~cost:0.);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:1 ~cost:0.);
  Alcotest.(check int) "max flow 5" 5 (Maxflow.solve g ~source:0 ~sink:3)

let test_maxflow_conservation () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 30 do
    let g = random_graph rng ~n:7 ~arcs:15 in
    let f = Maxflow.solve g ~source:0 ~sink:6 in
    Alcotest.(check bool) "non-negative value" true (f >= 0);
    for n = 1 to 5 do
      Alcotest.(check int) "conservation at inner nodes" 0 (Graph.excess g n)
    done;
    Alcotest.(check int) "sink receives the flow" f (Graph.excess g 6)
  done

(* Brute-force minimum-cost perfect assignment over permutations. *)
let brute_force_assignment costs =
  let n = Array.length costs in
  let best = ref infinity in
  let rec go used acc i =
    if acc >= !best then ()
    else if i = n then best := acc
    else
      for j = 0 to n - 1 do
        if not used.(j) then begin
          used.(j) <- true;
          go used (acc +. costs.(i).(j)) (i + 1);
          used.(j) <- false
        end
      done
  in
  go (Array.make n false) 0. 0;
  !best

let assignment_graph costs =
  let n = Array.length costs in
  let g = Graph.create ~num_nodes:(2 + (2 * n)) in
  let src = 0 and sink = 1 in
  for i = 0 to n - 1 do
    ignore (Graph.add_arc g ~src ~dst:(2 + i) ~capacity:1 ~cost:0.);
    ignore (Graph.add_arc g ~src:(2 + n + i) ~dst:sink ~capacity:1 ~cost:0.)
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ignore
        (Graph.add_arc g ~src:(2 + i) ~dst:(2 + n + j) ~capacity:1
           ~cost:costs.(i).(j))
    done
  done;
  (g, src, sink)

let test_mcf_matches_brute_force () =
  let rng = Rng.create ~seed:6 in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 4 in
    let costs =
      Array.init n (fun _ -> Array.init n (fun _ -> Rng.float rng 1.))
    in
    let g, source, sink = assignment_graph costs in
    let outcome = Mcf.solve g ~source ~sink () in
    Alcotest.(check int) "perfect assignment" n outcome.Mcf.flow;
    Alcotest.(check (float 1e-6)) "optimal cost" (brute_force_assignment costs)
      outcome.Mcf.cost
  done

let test_mcf_per_unit_prefix () =
  (* After the k-th unit, the flow must be a min-cost flow of value k:
     solving from scratch with target k gives the same cost. *)
  let rng = Rng.create ~seed:7 in
  let n = 4 in
  let costs = Array.init n (fun _ -> Array.init n (fun _ -> Rng.float rng 1.)) in
  let cumulative = ref [] in
  let acc = ref 0. in
  let g, source, sink = assignment_graph costs in
  let (_ : Mcf.outcome) =
    Mcf.solve g ~source ~sink
      ~on_augment:(fun ~units ~path_cost ->
        acc := !acc +. (float_of_int units *. path_cost);
        cumulative := (!acc) :: !cumulative;
        `Continue)
      ()
  in
  List.iteri
    (fun i expected ->
      let k = List.length !cumulative - i in
      let g2, source, sink = assignment_graph costs in
      let outcome = Mcf.solve g2 ~source ~sink ~target_flow:k () in
      Alcotest.(check int) "target reached" k outcome.Mcf.flow;
      Alcotest.(check (float 1e-6)) "prefix optimality" expected
        outcome.Mcf.cost)
    !cumulative

let test_mcf_path_costs_non_decreasing () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 3 in
    let costs = Array.init n (fun _ -> Array.init n (fun _ -> Rng.float rng 1.)) in
    let g, source, sink = assignment_graph costs in
    let last = ref neg_infinity in
    let (_ : Mcf.outcome) =
      Mcf.solve g ~source ~sink
        ~on_augment:(fun ~units:_ ~path_cost ->
          Alcotest.(check bool) "non-decreasing path costs" true
            (path_cost >= !last -. 1e-9);
          last := path_cost;
          `Continue)
        ()
    in
    ()
  done

let test_mcf_should_augment_stops_before_push () =
  let costs = [| [| 0.1; 0.9 |]; [| 0.8; 0.95 |] |] in
  let g, source, sink = assignment_graph costs in
  (* Refuse any path costing more than 0.5: only the 0.1 unit goes through. *)
  let outcome =
    Mcf.solve g ~source ~sink
      ~should_augment:(fun ~path_cost -> path_cost < 0.5)
      ()
  in
  Alcotest.(check int) "one unit" 1 outcome.Mcf.flow;
  Alcotest.(check (float 1e-9)) "its cost" 0.1 outcome.Mcf.cost

let test_mcf_negative_costs () =
  (* A negative-cost arc forces the Bellman-Ford potential bootstrap. *)
  let g = Graph.create ~num_nodes:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1 ~cost:2.);
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~capacity:1 ~cost:0.);
  ignore (Graph.add_arc g ~src:2 ~dst:1 ~capacity:1 ~cost:(-1.5));
  ignore (Graph.add_arc g ~src:1 ~dst:3 ~capacity:2 ~cost:0.);
  let outcome = Mcf.solve g ~source:0 ~sink:3 () in
  Alcotest.(check int) "both units routed" 2 outcome.Mcf.flow;
  Alcotest.(check (float 1e-9)) "cost uses the negative arc" 0.5
    outcome.Mcf.cost

let test_mcf_negative_cycle_raises () =
  let g = Graph.create ~num_nodes:4 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1 ~cost:0.);
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:5 ~cost:(-2.));
  ignore (Graph.add_arc g ~src:2 ~dst:1 ~capacity:5 ~cost:1.);
  ignore (Graph.add_arc g ~src:2 ~dst:3 ~capacity:1 ~cost:0.);
  Alcotest.check_raises "negative cycle" Mcf.Negative_cycle (fun () ->
      ignore (Mcf.solve g ~source:0 ~sink:3 ()))

let test_mcf_agrees_with_maxflow () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 20 do
    let g = random_graph rng ~n:8 ~arcs:18 in
    let g' = Graph.create ~num_nodes:8 in
    (* Duplicate structure for the max-flow oracle. *)
    Graph.fold_forward_arcs g ~init:() ~f:(fun () a ->
        ignore
          (Graph.add_arc g' ~src:(Graph.src g a) ~dst:(Graph.dst g a)
             ~capacity:(Graph.residual_capacity g a) ~cost:0.));
    let mf = Maxflow.solve g' ~source:0 ~sink:7 in
    let outcome = Mcf.solve g ~source:0 ~sink:7 () in
    Alcotest.(check int) "saturating MCF routes the max flow" mf
      outcome.Mcf.flow
  done

let suite =
  [
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "graph excess" `Quick test_graph_excess;
    Alcotest.test_case "dijkstra diamond" `Quick test_dijkstra_diamond;
    Alcotest.test_case "dijkstra respects capacity" `Quick
      test_dijkstra_respects_capacity;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "bellman-ford negative arc" `Quick
      test_bellman_ford_negative;
    Alcotest.test_case "bellman-ford cycle detection" `Quick
      test_bellman_ford_detects_cycle;
    Alcotest.test_case "dijkstra = bellman-ford" `Quick
      test_dijkstra_agrees_with_bellman_ford;
    Alcotest.test_case "maxflow known value" `Quick test_maxflow_known;
    Alcotest.test_case "maxflow conservation" `Quick test_maxflow_conservation;
    Alcotest.test_case "mcf = brute force assignment" `Quick
      test_mcf_matches_brute_force;
    Alcotest.test_case "mcf per-unit prefix optimality" `Quick
      test_mcf_per_unit_prefix;
    Alcotest.test_case "mcf path costs non-decreasing" `Quick
      test_mcf_path_costs_non_decreasing;
    Alcotest.test_case "mcf should_augment pre-push" `Quick
      test_mcf_should_augment_stops_before_push;
    Alcotest.test_case "mcf negative costs" `Quick test_mcf_negative_costs;
    Alcotest.test_case "mcf negative cycle" `Quick
      test_mcf_negative_cycle_raises;
    Alcotest.test_case "mcf saturates to max flow" `Quick
      test_mcf_agrees_with_maxflow;
  ]
