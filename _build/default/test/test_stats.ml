(* Streaming statistics against direct formulas. *)

open Geacc_util

let close = Alcotest.float 1e-9

let test_empty () =
  let t = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count t);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Stats.mean t));
  Alcotest.check close "stddev 0" 0. (Stats.stddev t);
  Alcotest.(check bool) "min is nan" true (Float.is_nan (Stats.min t))

let test_single () =
  let t = Stats.create () in
  Stats.add t 4.5;
  Alcotest.check close "mean" 4.5 (Stats.mean t);
  Alcotest.check close "min" 4.5 (Stats.min t);
  Alcotest.check close "max" 4.5 (Stats.max t);
  Alcotest.check close "stddev of one" 0. (Stats.stddev t)

let test_known_values () =
  let s = Stats.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.check close "mean" 5. s.Stats.mean;
  (* Sample stddev of this classic set: sqrt(32/7). *)
  Alcotest.check close "stddev" (sqrt (32. /. 7.)) s.Stats.stddev;
  Alcotest.check close "min" 2. s.Stats.min;
  Alcotest.check close "max" 9. s.Stats.max;
  Alcotest.check close "sum" 40. s.Stats.sum;
  Alcotest.(check int) "count" 8 s.Stats.count

let test_matches_naive () =
  let rng = Rng.create ~seed:3 in
  let xs = Array.init 1000 (fun _ -> Rng.float_in rng (-100.) 100.) in
  let s = Stats.of_array xs in
  let n = float_of_int (Array.length xs) in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  Alcotest.(check (float 1e-6)) "mean vs naive" mean s.Stats.mean;
  Alcotest.(check (float 1e-6)) "stddev vs naive" (sqrt var) s.Stats.stddev

let test_add_seq () =
  let t = Stats.create () in
  Stats.add_seq t (Seq.init 10 float_of_int);
  Alcotest.(check int) "count" 10 (Stats.count t);
  Alcotest.check close "mean" 4.5 (Stats.mean t)

let test_negative_and_order () =
  let t = Stats.create () in
  List.iter (Stats.add t) [ -3.; 10.; -7.; 0. ];
  Alcotest.check close "min" (-7.) (Stats.min t);
  Alcotest.check close "max" 10. (Stats.max t)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single value" `Quick test_single;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "matches naive formulas" `Quick test_matches_naive;
    Alcotest.test_case "add_seq" `Quick test_add_seq;
    Alcotest.test_case "negatives and extremes" `Quick test_negative_and_order;
  ]
