(* Priority queues: heap-sort behaviour, invariants, cross-implementation
   agreement, plus QCheck properties. *)

open Geacc_pqueue

let int_cmp = Int.compare

let test_binary_basic () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  Alcotest.(check bool) "fresh heap empty" true (Binary_heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Binary_heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Binary_heap.pop h);
  Binary_heap.push h 5;
  Binary_heap.push h 1;
  Binary_heap.push h 3;
  Alcotest.(check int) "length" 3 (Binary_heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Binary_heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 3; 5 ]
    (Binary_heap.pop_all_sorted h)

let test_binary_exn () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  Alcotest.check_raises "peek_exn empty"
    (Invalid_argument "Binary_heap.peek_exn: empty heap") (fun () ->
      ignore (Binary_heap.peek_exn h));
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Binary_heap.pop_exn: empty heap") (fun () ->
      ignore (Binary_heap.pop_exn h))

let test_binary_of_array () =
  let a = [| 9; 2; 7; 2; 0; -3; 11 |] in
  let h = Binary_heap.of_array ~cmp:int_cmp a in
  Alcotest.(check bool) "heapify invariant" true (Binary_heap.check_invariant h);
  let expected = Array.to_list (Array.copy a) |> List.sort compare in
  Alcotest.(check (list int)) "heapify drains sorted" expected
    (Binary_heap.pop_all_sorted h);
  Alcotest.(check (array int)) "input untouched" [| 9; 2; 7; 2; 0; -3; 11 |] a

let test_binary_duplicates () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  List.iter (Binary_heap.push h) [ 4; 4; 4; 1; 1 ];
  Alcotest.(check (list int)) "duplicates kept" [ 1; 1; 4; 4; 4 ]
    (Binary_heap.pop_all_sorted h)

let test_binary_max_heap () =
  let h = Binary_heap.create ~cmp:(fun a b -> Int.compare b a) () in
  List.iter (Binary_heap.push h) [ 2; 9; 4 ];
  Alcotest.(check (option int)) "flipped cmp gives max" (Some 9)
    (Binary_heap.pop h)

let test_binary_clear () =
  let h = Binary_heap.create ~cmp:int_cmp () in
  List.iter (Binary_heap.push h) [ 1; 2; 3 ];
  Binary_heap.clear h;
  Alcotest.(check bool) "cleared" true (Binary_heap.is_empty h);
  Binary_heap.push h 10;
  Alcotest.(check (option int)) "usable after clear" (Some 10)
    (Binary_heap.pop h)

let test_pairing_basic () =
  let h = Pairing_heap.of_list ~cmp:int_cmp [ 5; 1; 3 ] in
  Alcotest.(check int) "length" 3 (Pairing_heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Pairing_heap.peek h);
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ]
    (Pairing_heap.to_sorted_list h);
  (* Persistence: the original heap is unchanged by pop. *)
  (match Pairing_heap.pop h with
  | Some (x, rest) ->
      Alcotest.(check int) "popped min" 1 x;
      Alcotest.(check int) "rest smaller" 2 (Pairing_heap.length rest);
      Alcotest.(check int) "original untouched" 3 (Pairing_heap.length h)
  | None -> Alcotest.fail "expected an element");
  ()

let test_pairing_merge () =
  let a = Pairing_heap.of_list ~cmp:int_cmp [ 4; 8 ]
  and b = Pairing_heap.of_list ~cmp:int_cmp [ 1; 6 ] in
  let m = Pairing_heap.merge a b in
  Alcotest.(check (list int)) "merged sorted" [ 1; 4; 6; 8 ]
    (Pairing_heap.to_sorted_list m)

let test_pairing_deep () =
  (* A long ascending push sequence produces a degenerate spine; draining
     must not overflow the stack. *)
  let h =
    List.fold_left Pairing_heap.push
      (Pairing_heap.empty ~cmp:int_cmp)
      (List.init 200_000 (fun i -> i))
  in
  Alcotest.(check int) "length" 200_000 (Pairing_heap.length h);
  match Pairing_heap.pop h with
  | Some (x, _) -> Alcotest.(check int) "min" 0 x
  | None -> Alcotest.fail "non-empty"

let test_float_int_heap () =
  let h = Float_int_heap.create () in
  Alcotest.(check bool) "empty" true (Float_int_heap.is_empty h);
  Float_int_heap.push h 2.5 1;
  Float_int_heap.push h 0.5 2;
  Float_int_heap.push h 1.5 3;
  Alcotest.(check int) "length" 3 (Float_int_heap.length h);
  let keys = ref [] in
  let rec drain () =
    match Float_int_heap.pop h with
    | None -> ()
    | Some (k, _) ->
        keys := k :: !keys;
        drain ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "ascending keys" [ 0.5; 1.5; 2.5 ]
    (List.rev !keys)

(* QCheck properties *)

let prop_binary_sorts =
  QCheck.Test.make ~name:"binary heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Binary_heap.create ~cmp:int_cmp () in
      List.iter (Binary_heap.push h) xs;
      Binary_heap.pop_all_sorted h = List.sort compare xs)

let prop_implementations_agree =
  QCheck.Test.make ~name:"binary and pairing heaps agree" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let b = Binary_heap.of_array ~cmp:int_cmp (Array.of_list xs) in
      let p = Pairing_heap.of_list ~cmp:int_cmp xs in
      Binary_heap.pop_all_sorted b = Pairing_heap.to_sorted_list p)

let prop_float_int_matches_sort =
  QCheck.Test.make ~name:"float-int heap drains keys sorted" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.) small_int))
    (fun kvs ->
      let h = Float_int_heap.create () in
      List.iter (fun (k, v) -> Float_int_heap.push h k v) kvs;
      let rec drain acc =
        match Float_int_heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare (List.map fst kvs))

let prop_interleaved_ops =
  (* Random push/pop interleavings preserve the heap invariant. *)
  QCheck.Test.make ~name:"binary heap invariant under interleaving" ~count:100
    QCheck.(list (option small_int))
    (fun ops ->
      let h = Binary_heap.create ~cmp:int_cmp () in
      List.iter
        (function
          | Some x -> Binary_heap.push h x
          | None -> ignore (Binary_heap.pop h))
        ops;
      Binary_heap.check_invariant h)

let suite =
  [
    Alcotest.test_case "binary basic" `Quick test_binary_basic;
    Alcotest.test_case "binary exn" `Quick test_binary_exn;
    Alcotest.test_case "binary of_array" `Quick test_binary_of_array;
    Alcotest.test_case "binary duplicates" `Quick test_binary_duplicates;
    Alcotest.test_case "binary max-heap" `Quick test_binary_max_heap;
    Alcotest.test_case "binary clear" `Quick test_binary_clear;
    Alcotest.test_case "pairing basic" `Quick test_pairing_basic;
    Alcotest.test_case "pairing merge" `Quick test_pairing_merge;
    Alcotest.test_case "pairing deep spine" `Quick test_pairing_deep;
    Alcotest.test_case "float-int heap" `Quick test_float_int_heap;
    QCheck_alcotest.to_alcotest prop_binary_sorts;
    QCheck_alcotest.to_alcotest prop_implementations_agree;
    QCheck_alcotest.to_alcotest prop_float_int_matches_sort;
    QCheck_alcotest.to_alcotest prop_interleaved_ops;
  ]
