End-to-end exercise of the geacc CLI: generate, info, solve, validate.

  $ geacc generate --out small.inst --events 6 --users 12 --dim 2 --cv-max 3 --cu-max 2 --conflict-ratio 0.5 --seed 7 2> /dev/null
  wrote small.inst: |V|=6 |U|=12 d=2 sum(c_v)=14 sum(c_u)=21 max(c_u)=2 CF(8 pairs, ratio 0.533) sim=euclidean(d=2,T=10000)

  $ geacc info -i small.inst
  |V|=6 |U|=12 d=2 sum(c_v)=14 sum(c_u)=21 max(c_u)=2 CF(8 pairs, ratio 0.533) sim=euclidean(d=2,T=10000)

Solving with the greedy algorithm produces a feasible matching; timings
vary so only the stable lines are checked.

  $ geacc solve -i small.inst -a greedy -o small.match 2> /dev/null | head -3
  algorithm: Greedy-GEACC
  MaxSum: 11.194629
  matched pairs: 14

  $ geacc validate -i small.inst -m small.match
  feasible: 14 pairs, MaxSum 11.194629

The exact solver agrees with or beats greedy on this tiny instance.

  $ geacc solve -i small.inst -a prune 2> /dev/null | head -2
  algorithm: Prune-GEACC
  MaxSum: 11.261332

A corrupted matching is rejected with violations on stderr.

  $ printf 'geacc-matching 1\npairs 2\n0 0\n0 0\n' > bad.match
  $ geacc validate -i small.inst -m bad.match 2>&1 | head -2
  violation: duplicate pair (v0,u0)
  geacc: 1 violations

Unknown algorithms are reported through cmdliner.

  $ geacc solve -i small.inst -a nope 2>&1 | head -1 | cut -c1-13
  geacc: option

The simulated Meetup generator reproduces TABLE II cardinalities.

  $ geacc generate --out auckland.inst --meetup auckland --seed 1 2> /dev/null
  wrote auckland.inst: |V|=37 |U|=569 d=20 sum(c_v)=943 sum(c_u)=1423 max(c_u)=4 CF(167 pairs, ratio 0.251) sim=euclidean(d=20,T=1)
  $ geacc info -i auckland.inst | cut -d' ' -f1-2
  |V|=37 |U|=569
