  $ geacc generate --out small.inst --events 6 --users 12 --dim 2 --cv-max 3 --cu-max 2 --conflict-ratio 0.5 --seed 7 2> /dev/null
  $ geacc info -i small.inst
  $ geacc solve -i small.inst -a greedy -o small.match 2> /dev/null | head -3
  $ geacc validate -i small.inst -m small.match
  $ geacc solve -i small.inst -a prune 2> /dev/null | head -2
  $ printf 'geacc-matching 1\npairs 2\n0 0\n0 0\n' > bad.match
  $ geacc validate -i small.inst -m bad.match 2>&1 | head -2
  $ geacc solve -i small.inst -a nope 2>&1 | head -1 | cut -c1-13
  $ geacc generate --out auckland.inst --meetup auckland --seed 1 2> /dev/null
  $ geacc info -i auckland.inst | cut -d' ' -f1-2
