test/test_table.ml: Alcotest Geacc_util String Table
