test/test_flow.ml: Alcotest Array Geacc_flow Geacc_util Graph List Maxflow Mcf Shortest_path
