test/test_stats.ml: Alcotest Array Float Geacc_util List Rng Seq Stats
