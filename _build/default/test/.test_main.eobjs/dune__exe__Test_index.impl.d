test/test_index.ml: Alcotest Array Fun Geacc_index Geacc_util List Printf QCheck QCheck_alcotest
