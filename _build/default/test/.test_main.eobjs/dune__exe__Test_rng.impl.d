test/test_rng.ml: Alcotest Array Float Fun Geacc_util List Rng Stats
