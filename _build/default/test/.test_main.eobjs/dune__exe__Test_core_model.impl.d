test/test_core_model.ml: Alcotest Array Conflict Entity Geacc_core Geacc_index Geacc_util Instance List Matching Printf Similarity String Validate
