test/test_properties.ml: Array Conflict Exact Float Geacc_core Geacc_datagen Greedy Instance List Matching Mincostflow Printf QCheck QCheck_alcotest Solver Stdlib Validate
