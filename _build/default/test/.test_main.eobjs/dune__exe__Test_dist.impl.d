test/test_dist.ml: Alcotest Array Dist Float Format Geacc_util Rng Stats
