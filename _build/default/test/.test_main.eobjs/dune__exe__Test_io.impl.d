test/test_io.ml: Alcotest Array Conflict Entity Filename Fun Geacc_core Geacc_datagen Geacc_io Instance List Similarity Sys
