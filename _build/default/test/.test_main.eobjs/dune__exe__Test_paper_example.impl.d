test/test_paper_example.ml: Alcotest Array Conflict Entity Exact Geacc_core Greedy Instance List Matching Mincostflow Printf Similarity Solver Validate
