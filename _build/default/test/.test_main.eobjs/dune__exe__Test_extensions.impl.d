test/test_extensions.ml: Alcotest Array Exact Geacc_core Geacc_datagen Geacc_util Greedy Greedy_naive Instance List Local_search Matching Online Printf Validate
