test/test_bench_util.ml: Alcotest Array Fun Geacc_bench Geacc_core Geacc_datagen Geacc_util Measure
