test/test_datagen.ml: Alcotest Array Conflict Entity Float Geacc_core Geacc_datagen Geacc_util Hashtbl Instance List Printf
