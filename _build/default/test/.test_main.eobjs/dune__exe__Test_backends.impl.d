test/test_backends.ml: Alcotest Array Exact Geacc_core Geacc_datagen Geacc_index Geacc_util Greedy List Matching Printf QCheck QCheck_alcotest Result
