test/test_algorithms.ml: Alcotest Conflict Entity Exact Geacc_core Geacc_datagen Geacc_util Greedy Instance List Matching Mincostflow Printf Random_baseline Result Similarity Solver Stdlib Validate
