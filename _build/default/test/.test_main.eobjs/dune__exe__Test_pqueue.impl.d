test/test_pqueue.ml: Alcotest Array Binary_heap Float_int_heap Geacc_pqueue Int List Pairing_heap QCheck QCheck_alcotest
