(* Workload generators: TABLE II/III conformance, determinism, temporal
   conflict derivation. *)

open Geacc_core
module Synthetic = Geacc_datagen.Synthetic
module Meetup = Geacc_datagen.Meetup
module Temporal = Geacc_datagen.Temporal
module Conflict_gen = Geacc_datagen.Conflict_gen
module Rng = Geacc_util.Rng

(* -- Conflict_gen -- *)

let test_nth_pair_bijective () =
  let n = 7 in
  let seen = Hashtbl.create 32 in
  for k = 0 to (n * (n - 1) / 2) - 1 do
    let v, w = Conflict_gen.nth_pair ~n k in
    Alcotest.(check bool) "ordered" true (0 <= v && v < w && w < n);
    Alcotest.(check bool) "fresh" false (Hashtbl.mem seen (v, w));
    Hashtbl.add seen (v, w) ()
  done;
  Alcotest.(check int) "covers all pairs" (n * (n - 1) / 2)
    (Hashtbl.length seen)

let test_conflict_gen_sizes () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun (ratio, expected) ->
      let cf = Conflict_gen.random (Rng.split rng) ~n_events:10 ~ratio in
      Alcotest.(check int)
        (Printf.sprintf "ratio %.2f" ratio)
        expected (Conflict.cardinal cf))
    [ (0., 0); (0.25, 11); (0.5, 23); (1., 45) ]

(* -- Synthetic (TABLE III) -- *)

let test_synthetic_default_shape () =
  let t = Synthetic.generate ~seed:1 Synthetic.default in
  Alcotest.(check int) "|V|" 100 (Instance.n_events t);
  Alcotest.(check int) "|U|" 1000 (Instance.n_users t);
  Alcotest.(check int) "d" 20 (Instance.dim t);
  (* Conflict ratio 0.25 of 4950 pairs. *)
  Alcotest.(check int) "|CF|" 1238 (Conflict.cardinal (Instance.conflicts t));
  (* Capacities within the paper's ranges and the problem's bounds. *)
  Array.iter
    (fun (e : Entity.t) ->
      Alcotest.(check bool) "c_v in [1,50]" true
        (e.Entity.capacity >= 1 && e.Entity.capacity <= 50))
    (Instance.events t);
  Array.iter
    (fun (u : Entity.t) ->
      Alcotest.(check bool) "c_u in [1,4]" true
        (u.Entity.capacity >= 1 && u.Entity.capacity <= 4))
    (Instance.users t)

let test_synthetic_attr_ranges () =
  List.iter
    (fun attrs ->
      let t =
        Synthetic.generate ~seed:2
          {
            Synthetic.default with
            Synthetic.n_events = 20;
            n_users = 50;
            attrs;
          }
      in
      Array.iter
        (fun (e : Entity.t) ->
          Array.iter
            (fun x ->
              Alcotest.(check bool) "attr in [0,T]" true (x >= 0. && x <= 10000.))
            e.Entity.attrs)
        (Array.append (Instance.events t) (Instance.users t)))
    [
      Synthetic.Attr_uniform;
      Synthetic.Attr_zipf 1.3;
      Synthetic.Attr_normal_mixture;
    ]

let test_synthetic_deterministic () =
  let a = Synthetic.generate ~seed:3 Synthetic.default in
  let b = Synthetic.generate ~seed:3 Synthetic.default in
  Alcotest.(check bool) "same attributes" true
    ((Instance.event a 0).Entity.attrs = (Instance.event b 0).Entity.attrs);
  Alcotest.(check int) "same conflicts"
    (Conflict.cardinal (Instance.conflicts a))
    (Conflict.cardinal (Instance.conflicts b));
  let c = Synthetic.generate ~seed:4 Synthetic.default in
  Alcotest.(check bool) "different seed differs" true
    ((Instance.event a 0).Entity.attrs <> (Instance.event c 0).Entity.attrs)

let test_synthetic_capacity_clamping () =
  (* c_v is clamped to |U| per the problem statement's assumption. *)
  let t =
    Synthetic.generate ~seed:5
      {
        Synthetic.default with
        Synthetic.n_events = 5;
        n_users = 3;
        event_capacity = Synthetic.Cap_uniform 50;
      }
  in
  Array.iter
    (fun (e : Entity.t) ->
      Alcotest.(check bool) "c_v <= |U|" true (e.Entity.capacity <= 3))
    (Instance.events t)

let test_synthetic_normal_capacities_positive () =
  let t =
    Synthetic.generate ~seed:6
      {
        Synthetic.default with
        Synthetic.n_events = 50;
        n_users = 100;
        event_capacity = Synthetic.Cap_normal (25., 12.5);
        user_capacity = Synthetic.Cap_normal (2., 1.);
      }
  in
  Array.iter
    (fun (e : Entity.t) ->
      Alcotest.(check bool) "integer capacity >= 1" true (e.Entity.capacity >= 1))
    (Array.append (Instance.events t) (Instance.users t))

let test_synthetic_validation () =
  Alcotest.(check bool) "bad ratio rejected" true
    (try
       ignore
         (Synthetic.generate ~seed:1
            { Synthetic.default with Synthetic.conflict_ratio = 1.5 });
       false
     with Invalid_argument _ -> true)

(* -- Meetup (TABLE II) -- *)

let test_meetup_city_sizes () =
  List.iter
    (fun (city : Meetup.city) ->
      let t = Meetup.generate ~seed:1 city in
      Alcotest.(check int)
        (city.Meetup.name ^ " |V|")
        city.Meetup.n_events (Instance.n_events t);
      Alcotest.(check int)
        (city.Meetup.name ^ " |U|")
        city.Meetup.n_users (Instance.n_users t);
      Alcotest.(check int) "20 merged tags" 20 (Instance.dim t))
    Meetup.cities

let test_meetup_vectors_normalised () =
  let t = Meetup.generate ~seed:2 Meetup.auckland in
  Array.iter
    (fun (e : Entity.t) ->
      let total = Array.fold_left ( +. ) 0. e.Entity.attrs in
      Alcotest.(check (float 1e-9)) "tag weights sum to 1" 1. total;
      Array.iter
        (fun x -> Alcotest.(check bool) "weight in [0,1]" true (x >= 0. && x <= 1.))
        e.Entity.attrs)
    (Array.append (Instance.events t) (Instance.users t))

let test_meetup_tag_popularity_skew () =
  (* Zipf tag popularity: the most popular merged tag carries far more
     total mass than the least popular. *)
  let t = Meetup.generate ~seed:3 Meetup.singapore in
  let mass = Array.make 20 0. in
  Array.iter
    (fun (u : Entity.t) ->
      Array.iteri (fun i x -> mass.(i) <- mass.(i) +. x) u.Entity.attrs)
    (Instance.users t);
  let sorted = Array.copy mass in
  Array.sort (fun a b -> Float.compare b a) sorted;
  Alcotest.(check bool) "head tag 5x the tail tag" true
    (sorted.(0) > 5. *. sorted.(19))

let test_meetup_capacity_models () =
  let t = Meetup.generate ~seed:4 ~capacities:Meetup.Cap_normal Meetup.auckland in
  Array.iter
    (fun (e : Entity.t) ->
      Alcotest.(check bool) "normal capacities >= 1" true (e.Entity.capacity >= 1))
    (Array.append (Instance.events t) (Instance.users t))

let test_meetup_conflict_ratio () =
  let t = Meetup.generate ~seed:5 ~conflict_ratio:0.5 Meetup.auckland in
  let cf = Instance.conflicts t in
  Alcotest.(check bool) "ratio honoured" true
    (Float.abs (Conflict.ratio cf -. 0.5) < 0.01)

(* -- Temporal -- *)

let sched = Temporal.make

let test_overlap () =
  let a = sched ~start_time:8. ~end_time:12. ()
  and b = sched ~start_time:9. ~end_time:11. ()
  and c = sched ~start_time:12. ~end_time:13. () in
  Alcotest.(check bool) "nested overlap" true (Temporal.overlaps a b);
  Alcotest.(check bool) "touching intervals do not overlap" false
    (Temporal.overlaps a c);
  Alcotest.(check bool) "symmetric" true (Temporal.overlaps b a)

let test_travel_feasibility () =
  (* The intro's scenario: badminton ends 11:00, basketball starts 11:30 at
     a venue one hour away — incompatible; a venue 20 minutes away would be
     fine. *)
  let badminton = sched ~start_time:9. ~end_time:11. ~location:(0., 0.) () in
  let far_court = sched ~start_time:11.5 ~end_time:13.5 ~location:(60., 0.) () in
  let near_court = sched ~start_time:11.5 ~end_time:13.5 ~location:(20., 0.) () in
  Alcotest.(check bool) "one hour away, half-hour gap" false
    (Temporal.compatible ~speed_kmh:60. badminton far_court);
  Alcotest.(check bool) "twenty minutes away" true
    (Temporal.compatible ~speed_kmh:60. badminton near_court);
  Alcotest.(check (float 1e-9)) "travel time" 1.
    (Temporal.travel_time ~speed_kmh:60. badminton far_court)

let test_conflicts_of () =
  let schedules =
    [|
      sched ~start_time:8. ~end_time:12. ();
      sched ~start_time:9. ~end_time:11. ~location:(5., 0.) ();
      sched ~start_time:11.5 ~end_time:13.5 ~location:(5., 60.) ();
      sched ~start_time:20. ~end_time:21. ();
    |]
  in
  let cf = Temporal.conflicts_of ~speed_kmh:60. schedules in
  (* Events 0,1,2 pairwise conflict (see weekend_sports); 3 is free. *)
  Alcotest.(check bool) "0-1" true (Conflict.mem cf 0 1);
  Alcotest.(check bool) "0-2" true (Conflict.mem cf 0 2);
  Alcotest.(check bool) "1-2" true (Conflict.mem cf 1 2);
  Alcotest.(check int) "evening event conflict-free" 0 (Conflict.degree cf 3)

let test_conflicts_superset_of_overlaps () =
  let rng = Rng.create ~seed:6 in
  let schedules = Temporal.random_schedules ~rng ~n:40 () in
  let cf = Temporal.conflicts_of schedules in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i < j && Temporal.overlaps si sj then
            Alcotest.(check bool) "overlapping implies conflicting" true
              (Conflict.mem cf i j))
        schedules)
    schedules

let test_schedule_validation () =
  Alcotest.(check bool) "end before start rejected" true
    (try
       ignore (sched ~start_time:5. ~end_time:4. ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero speed rejected" true
    (try
       ignore
         (Temporal.travel_time ~speed_kmh:0.
            (sched ~start_time:0. ~end_time:1. ())
            (sched ~start_time:2. ~end_time:3. ()));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "nth_pair bijective" `Quick test_nth_pair_bijective;
    Alcotest.test_case "conflict sizes" `Quick test_conflict_gen_sizes;
    Alcotest.test_case "synthetic default (TABLE III)" `Quick
      test_synthetic_default_shape;
    Alcotest.test_case "synthetic attribute ranges" `Quick
      test_synthetic_attr_ranges;
    Alcotest.test_case "synthetic deterministic" `Quick
      test_synthetic_deterministic;
    Alcotest.test_case "synthetic capacity clamping" `Quick
      test_synthetic_capacity_clamping;
    Alcotest.test_case "synthetic normal capacities" `Quick
      test_synthetic_normal_capacities_positive;
    Alcotest.test_case "synthetic validation" `Quick test_synthetic_validation;
    Alcotest.test_case "meetup city sizes (TABLE II)" `Quick
      test_meetup_city_sizes;
    Alcotest.test_case "meetup vectors normalised" `Quick
      test_meetup_vectors_normalised;
    Alcotest.test_case "meetup tag skew" `Quick test_meetup_tag_popularity_skew;
    Alcotest.test_case "meetup capacity models" `Quick
      test_meetup_capacity_models;
    Alcotest.test_case "meetup conflict ratio" `Quick
      test_meetup_conflict_ratio;
    Alcotest.test_case "temporal overlap" `Quick test_overlap;
    Alcotest.test_case "temporal travel feasibility" `Quick
      test_travel_feasibility;
    Alcotest.test_case "temporal conflicts_of" `Quick test_conflicts_of;
    Alcotest.test_case "conflicts superset of overlaps" `Quick
      test_conflicts_superset_of_overlaps;
    Alcotest.test_case "temporal validation" `Quick test_schedule_validation;
  ]
