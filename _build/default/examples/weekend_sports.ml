(* Weekend sports: the paper's motivating scenario from the introduction.

   Bob is recommended three Sunday activities: a hiking trip (8:00-12:00),
   a badminton game (9:00-11:00) and a basketball game (11:30-13:30) on a
   court one hour away from the badminton stadium. All three pairwise
   conflict — hiking overlaps both games, and the half-hour gap after
   badminton is too short to reach the basketball court.

   This example derives the conflict set from real schedules (times,
   venues, travel speed), then contrasts a conflict-oblivious arrangement
   with the conflict-aware one.

   Run with: dune exec examples/weekend_sports.exe *)

open Geacc_core
module Temporal = Geacc_datagen.Temporal

(* Attribute space: enthusiasm for [hiking; racquet sports; ball games]. *)
let dim = 3

let events =
  [|
    ("hiking trip", [| 1.0; 0.1; 0.2 |], 8.0, 12.0, (0., 0.), 10);
    ("badminton game", [| 0.1; 1.0; 0.4 |], 9.0, 11.0, (5., 0.), 4);
    ("basketball game", [| 0.2; 0.4; 1.0 |], 11.5, 13.5, (5., 60.), 10);
  |]

let users =
  [|
    ("Bob", [| 0.9; 0.8; 0.9 |]);     (* the all-round sports enthusiast *)
    ("Alice", [| 1.0; 0.1; 0.0 |]);
    ("Carol", [| 0.0; 0.9; 0.3 |]);
    ("Dave", [| 0.1; 0.2; 1.0 |]);
    ("Erin", [| 0.7; 0.6; 0.1 |]);
    ("Frank", [| 0.3; 0.3; 0.9 |]);
  |]

let schedules =
  Array.map
    (fun (_, _, start_time, end_time, location, _) ->
      Temporal.make ~start_time ~end_time ~location ())
    events

let build_instance ~conflicts =
  let event_entities =
    Array.mapi
      (fun id (_, attrs, _, _, _, capacity) ->
        Entity.make ~id ~attrs ~capacity)
      events
  in
  let user_entities =
    Array.mapi
      (fun id (_, attrs) -> Entity.make ~id ~attrs ~capacity:2)
      users
  in
  Instance.create
    ~sim:(Similarity.euclidean ~dim ~range:1.)
    ~events:event_entities ~users:user_entities ~conflicts ()

let show instance matching =
  Array.iteri
    (fun u (name, _) ->
      let attended =
        Matching.user_events matching u
        |> List.sort compare
        |> List.map (fun v ->
               let title, _, _, _, _, _ = events.(v) in
               Printf.sprintf "%s (sim %.2f)" title
                 (Instance.sim instance ~v ~u))
      in
      Printf.printf "  %-6s -> %s\n" name
        (if attended = [] then "(nothing)" else String.concat ", " attended))
    users;
  Printf.printf "  MaxSum = %.3f\n" (Matching.maxsum matching)

let () =
  (* Conflicts derived from the schedules: driving at 60 km/h, the
     basketball court is an hour from the badminton stadium. *)
  let conflicts = Temporal.conflicts_of ~speed_kmh:60. schedules in
  Printf.printf "Derived conflicts (travel at 60 km/h):\n";
  Conflict.iter_pairs conflicts (fun v w ->
      let t1, _, _, _, _, _ = events.(v) and t2, _, _, _, _, _ = events.(w) in
      Printf.printf "  %s <-> %s\n" t1 t2);
  print_newline ();

  (* What a conflict-oblivious arranger would do. *)
  let oblivious_instance =
    build_instance ~conflicts:(Conflict.create ~n_events:(Array.length events))
  in
  let oblivious = Greedy.solve oblivious_instance in
  Printf.printf "Conflict-OBLIVIOUS arrangement (existing approaches):\n";
  show oblivious_instance oblivious;
  let violations =
    Validate.check (build_instance ~conflicts) (Matching.pairs oblivious)
  in
  Printf.printf "  ... but it is INFEASIBLE: %d violations, e.g. %s\n\n"
    (List.length violations)
    (match violations with
    | v :: _ -> Format.asprintf "%a" Validate.pp_violation v
    | [] -> "(none)");

  (* The conflict-aware arrangement. *)
  let instance = build_instance ~conflicts in
  Printf.printf "Conflict-AWARE arrangement (Greedy-GEACC):\n";
  show instance (Greedy.solve instance);
  print_newline ();
  Printf.printf "Optimal arrangement (Prune-GEACC):\n";
  show instance (Exact.solve_prune instance)
