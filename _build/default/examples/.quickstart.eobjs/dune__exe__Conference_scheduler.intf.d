examples/conference_scheduler.mli:
