examples/weekend_sports.ml: Array Conflict Entity Exact Format Geacc_core Geacc_datagen Greedy Instance List Matching Printf Similarity String Validate
