examples/conference_scheduler.ml: Array Entity Filename Float Format Geacc_core Geacc_datagen Geacc_io Geacc_util Greedy Instance List Matching Printf Similarity Validate
