examples/quickstart.ml: Array Conflict Entity Format Geacc_core Instance List Matching Printf Similarity Solver Validate
