examples/city_meetup.mli:
