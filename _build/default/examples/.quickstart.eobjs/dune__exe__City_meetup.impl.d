examples/city_meetup.ml: Format Geacc_bench Geacc_core Geacc_datagen Geacc_util Instance List Printf Solver
