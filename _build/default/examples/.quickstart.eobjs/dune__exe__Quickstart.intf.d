examples/quickstart.mli:
