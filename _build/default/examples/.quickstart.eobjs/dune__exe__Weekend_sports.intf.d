examples/weekend_sports.mli:
