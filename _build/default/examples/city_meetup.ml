(* City meetup: the paper's real-dataset experiment setting (TABLE II).

   Generates the simulated Meetup dataset for the three cities and compares
   the approximation algorithms and random baselines per city, printing the
   same metrics as the paper's Fig 4 (last column): MaxSum, running time
   and memory.

   MinCostFlow-GEACC is only run on the smaller cities; on Vancouver
   (225 x 2012) it takes minutes, which is precisely the scalability gap
   the paper reports.

   Run with: dune exec examples/city_meetup.exe *)

open Geacc_core
module Meetup = Geacc_datagen.Meetup
module Harness = Geacc_bench.Harness
module Table = Geacc_util.Table

let algorithms_for (city : Meetup.city) =
  let base = [ Solver.Greedy; Solver.Random_v; Solver.Random_u ] in
  if city.Meetup.n_events * city.Meetup.n_users <= 60_000 then
    Solver.Greedy :: Solver.Min_cost_flow
    :: [ Solver.Random_v; Solver.Random_u ]
  else base

let () =
  List.iter
    (fun (city : Meetup.city) ->
      let make_instance () =
        Meetup.generate ~seed:2015 ~conflict_ratio:0.25 city
      in
      let instance = make_instance () in
      let table =
        Table.create
          ~title:
            (Format.asprintf "%s: %a" city.Meetup.name Instance.pp_summary
               instance)
          ~headers:[ "algorithm"; "MaxSum"; "pairs"; "time (ms)"; "mem (KB)" ]
      in
      List.iter
        (fun algorithm ->
          let m = Harness.measure algorithm make_instance in
          Table.add_row table
            [
              Solver.name algorithm;
              Printf.sprintf "%.2f" m.Harness.maxsum;
              string_of_int m.Harness.matched_pairs;
              Printf.sprintf "%.1f" (m.Harness.wall_s *. 1000.);
              Printf.sprintf "%.0f" (float_of_int m.Harness.live_bytes /. 1024.);
            ])
        (algorithms_for city);
      Table.print table)
    Meetup.cities
