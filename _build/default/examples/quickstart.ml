(* Quickstart: the paper's running example (TABLE I).

   Three events, five users, one conflicting event pair. Shows how to build
   an instance with a custom similarity, run every algorithm, and inspect
   the arrangements. Expected numbers (paper Examples 1-3): the optimum is
   4.39, MinCostFlow-GEACC finds 4.13, Greedy-GEACC finds 4.28.

   Run with: dune exec examples/quickstart.exe *)

open Geacc_core

(* TABLE I: interestingness of each event (row) for each user (column). *)
let interest =
  [|
    [| 0.93; 0.43; 0.84; 0.64; 0.65 |];
    [| 0.00; 0.35; 0.19; 0.21; 0.40 |];
    [| 0.86; 0.57; 0.78; 0.79; 0.68 |];
  |]

let event_capacities = [ 5; 3; 2 ]
let user_capacities = [ 3; 1; 1; 2; 3 ]

let build_instance () =
  (* The similarities are given directly by the table rather than derived
     from attribute vectors, so each entity's single attribute is its own
     id and the similarity function is a table lookup. *)
  let sim =
    Similarity.custom ~name:"table1" (fun event_attr user_attr ->
        interest.(int_of_float event_attr.(0)).(int_of_float user_attr.(0)))
  in
  let side capacities =
    Array.of_list
      (List.mapi
         (fun id capacity ->
           Entity.make ~id ~attrs:[| float_of_int id |] ~capacity)
         capacities)
  in
  (* v1 and v3 (ids 0 and 2) conflict: no user may attend both. *)
  let conflicts = Conflict.of_pairs ~n_events:3 [ (0, 2) ] in
  Instance.create ~sim
    ~events:(side event_capacities)
    ~users:(side user_capacities)
    ~conflicts ()

let show_arrangement instance matching =
  List.iter
    (fun (v, u) ->
      Printf.printf "    v%d <- u%d  (sim %.2f)\n" (v + 1) (u + 1)
        (Instance.sim instance ~v ~u))
    (Matching.pairs matching)

let () =
  let instance = build_instance () in
  Format.printf "Instance: %a@.@." Instance.pp_summary instance;
  List.iter
    (fun algorithm ->
      let matching = Solver.run algorithm instance in
      assert (Validate.check_matching matching = []);
      Printf.printf "%-18s MaxSum = %.2f, %d pairs\n"
        (Solver.name algorithm) (Matching.maxsum matching)
        (Matching.size matching);
      show_arrangement instance matching)
    [ Solver.Prune; Solver.Min_cost_flow; Solver.Greedy ];
  print_newline ();
  print_endline
    "Note how u1, the most interesting user for both v1 and v3, is assigned\n\
     to only one of them: v1 and v3 conflict.";
