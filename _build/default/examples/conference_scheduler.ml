(* Conference scheduler: parallel-session assignment with GEACC.

   A two-day conference runs sessions in parallel tracks; each session has
   a room capacity, a time slot and a topic vector, and each attendee has
   topic interests and can attend at most one session per slot (sessions in
   the same slot conflict). GEACC assigns attendees to sessions maximising
   total interest while respecting rooms and the timetable.

   The example also demonstrates the text serialisation round-trip: the
   instance and the matching are written to files, read back and
   re-validated.

   Run with: dune exec examples/conference_scheduler.exe *)

open Geacc_core
module Temporal = Geacc_datagen.Temporal
module Rng = Geacc_util.Rng

let n_topics = 6
let n_attendees = 120
let slots = [ (9.0, 10.5); (11.0, 12.5); (14.0, 15.5); (16.0, 17.5) ]
let tracks = 3

let topic_vector rng =
  Array.init n_topics (fun _ -> Rng.float_in rng 0. 1.)

let () =
  let rng = Rng.create ~seed:11 in
  (* Sessions: [tracks] parallel rooms per slot, over two days. *)
  let sessions =
    List.concat_map
      (fun day ->
        List.concat_map
          (fun (start_h, end_h) ->
            List.init tracks (fun track ->
                let start_time = (24. *. float_of_int day) +. start_h in
                ( Temporal.make ~start_time
                    ~end_time:((24. *. float_of_int day) +. end_h)
                    ~location:(float_of_int track, 0.)
                    (),
                  topic_vector rng,
                  20 + Rng.int rng 30 )))
          slots)
      [ 0; 1 ]
    |> Array.of_list
  in
  let schedules = Array.map (fun (s, _, _) -> s) sessions in
  let events =
    Array.mapi
      (fun id (_, attrs, capacity) -> Entity.make ~id ~attrs ~capacity)
      sessions
  in
  let users =
    Array.init n_attendees (fun id ->
        (* Each attendee can attend at most one session per slot; capacity 8
           (= number of slots across both days) caps their schedule. *)
        Entity.make ~id ~attrs:(topic_vector rng) ~capacity:(List.length slots * 2))
  in
  (* Same-slot sessions conflict; rooms are next to each other so only
     overlap matters (generous walking speed). *)
  let conflicts = Temporal.conflicts_of ~speed_kmh:1000. schedules in
  let instance =
    Instance.create
      ~sim:(Similarity.euclidean ~dim:n_topics ~range:1.)
      ~events ~users ~conflicts ()
  in
  Format.printf "Conference: %a@.@." Instance.pp_summary instance;

  let matching = Greedy.solve instance in
  assert (Validate.check_matching matching = []);
  Printf.printf "Greedy-GEACC assigned %d seats, total interest %.1f\n"
    (Matching.size matching) (Matching.maxsum matching);

  (* Occupancy per session. *)
  Array.iteri
    (fun v (sched, _, capacity) ->
      Printf.printf "  day %d %05.1fh track %.0f: %2d/%2d seats\n"
        (int_of_float (sched.Temporal.start_time /. 24.))
        (Float.rem sched.Temporal.start_time 24.)
        (fst sched.Temporal.location) (Matching.event_load matching v)
        capacity)
    sessions;

  (* Serialisation round-trip. *)
  let dir = Filename.temp_dir "geacc" "conference" in
  let instance_path = Filename.concat dir "conference.inst"
  and matching_path = Filename.concat dir "conference.match" in
  Geacc_io.Instance_io.write_instance ~path:instance_path instance;
  Geacc_io.Instance_io.write_pairs ~path:matching_path (Matching.pairs matching);
  let reloaded = Geacc_io.Instance_io.read_instance ~path:instance_path in
  let pairs = Geacc_io.Instance_io.read_pairs ~path:matching_path in
  assert (Validate.check reloaded pairs = []);
  Printf.printf "\nround-trip OK: %s, %s re-validate cleanly\n" instance_path
    matching_path
