lib/io/instance_io.ml: Array Buffer Conflict Entity Fun Geacc_core Instance List Printf Similarity String
