lib/io/instance_io.mli: Geacc_core
