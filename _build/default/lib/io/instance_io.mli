(** Plain-text (de)serialisation of instances and matchings.

    Instance format (line-oriented, ['#'] comments and blank lines ignored):
    {v
    geacc-instance 1
    sim euclidean <dim> <range>     # or: sim gaussian <sigma> | sim cosine
    events <n>
    <capacity> <attr_1> ... <attr_d>
    ...
    users <n>
    <capacity> <attr_1> ... <attr_d>
    ...
    conflicts <m>
    <event_id> <event_id>
    ...
    v}

    Matching format:
    {v
    geacc-matching 1
    pairs <k>
    <event_id> <user_id>
    ...
    v}

    Custom similarities are not serialisable: saving such an instance
    raises. *)

exception Parse_error of { line : int; message : string }

val save_instance : Geacc_core.Instance.t -> string
val write_instance : path:string -> Geacc_core.Instance.t -> unit

val load_instance : string -> Geacc_core.Instance.t
(** @raise Parse_error on malformed input. *)

val read_instance : path:string -> Geacc_core.Instance.t

val save_pairs : (int * int) list -> string
val write_pairs : path:string -> (int * int) list -> unit

val load_pairs : string -> (int * int) list
(** @raise Parse_error on malformed input. *)

val read_pairs : path:string -> (int * int) list
