(** Experiment harness: run algorithms over instances and aggregate the
    paper's three metrics (MaxSum, running time, memory).

    Each measurement validates the produced arrangement — a benchmark run
    doubles as an end-to-end feasibility check — and repeated trials with
    distinct seeds are averaged, mirroring the paper's averaged plots. *)

type measurement = {
  algorithm : Geacc_core.Solver.algorithm;
  maxsum : float;
  matched_pairs : int;
  wall_s : float;
  live_bytes : int;   (** Peak live-heap growth during the solve call. *)
}

val measure :
  ?seed:int -> Geacc_core.Solver.algorithm ->
  (unit -> Geacc_core.Instance.t) -> measurement
(** Runs the algorithm twice with identical seeds — once timed, once under
    the peak-memory sampler (see {!Geacc_util.Measure.run_with_peak}) — and
    validates the output. The instance thunk is called once per run so that
    each run starts from cold per-instance index caches; pass
    [fun () -> instance] to accept warm caches instead.
    @raise Failure if the output is infeasible. *)

type aggregate = {
  algorithm : Geacc_core.Solver.algorithm;
  trials : int;
  mean_maxsum : float;
  mean_wall_s : float;
  mean_live_bytes : float;
}

val average :
  trials:int ->
  make_instance:(seed:int -> Geacc_core.Instance.t) ->
  Geacc_core.Solver.algorithm list ->
  aggregate list
(** [average ~trials ~make_instance algos] builds [trials] instances with
    seeds 1..trials and measures every algorithm on each; per-algorithm
    means, in the order given. *)

val metric :
  [ `Maxsum | `Time_ms | `Memory_mb ] -> aggregate -> float
(** Projects an aggregate onto one of the paper's plot axes. *)

val metric_label : [ `Maxsum | `Time_ms | `Memory_mb ] -> string
