lib/bench_util/harness.mli: Geacc_core
