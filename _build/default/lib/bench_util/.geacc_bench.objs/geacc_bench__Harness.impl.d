lib/bench_util/harness.ml: Format Geacc_core Geacc_util List Matching Measure Rng Solver Stats Validate
