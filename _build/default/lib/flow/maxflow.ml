let solve g ~source ~sink =
  assert (source <> sink);
  let n = Graph.node_count g in
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let queue = Queue.create () in
  let find_path () =
    Array.fill visited 0 n false;
    Array.fill parent_arc 0 n (-1);
    Queue.clear queue;
    visited.(source) <- true;
    Queue.add source queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Graph.iter_out_arcs g u (fun a ->
          let v = Graph.dst g a in
          if (not visited.(v)) && Graph.residual_capacity g a > 0 then begin
            visited.(v) <- true;
            parent_arc.(v) <- a;
            if v = sink then found := true else Queue.add v queue
          end)
    done;
    !found
  in
  let total = ref 0 in
  while find_path () do
    let bottleneck = ref max_int in
    let v = ref sink in
    while !v <> source do
      let a = parent_arc.(!v) in
      let r = Graph.residual_capacity g a in
      if r < !bottleneck then bottleneck := r;
      v := Graph.src g a
    done;
    let v = ref sink in
    while !v <> source do
      let a = parent_arc.(!v) in
      Graph.push g a !bottleneck;
      v := Graph.src g a
    done;
    total := !total + !bottleneck
  done;
  !total
