lib/flow/graph.mli:
