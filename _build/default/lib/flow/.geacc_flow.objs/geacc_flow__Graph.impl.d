lib/flow/graph.ml: Array Stdlib
