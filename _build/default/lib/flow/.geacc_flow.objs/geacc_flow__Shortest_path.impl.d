lib/flow/shortest_path.ml: Array Geacc_pqueue Graph
