lib/flow/mcf.ml: Array Float Graph Shortest_path Stdlib
