lib/flow/shortest_path.mli: Graph
