lib/flow/maxflow.ml: Array Graph Queue
