(** Maximum flow by Edmonds–Karp (BFS augmenting paths), O(V·E²).

    Used to compute the realisable Δ_max of a GEACC flow network and as an
    independent oracle for the SSP solver in tests (a min-cost flow run to
    saturation must route exactly the max-flow value). *)

val solve : Graph.t -> source:int -> sink:int -> int
(** Pushes a maximum flow from source to sink (flow is left in the graph)
    and returns its value. *)
