open Geacc_util
open Geacc_core

type attr_model =
  | Attr_uniform
  | Attr_zipf of float
  | Attr_normal_mixture

type capacity_model =
  | Cap_uniform of int
  | Cap_normal of float * float

type config = {
  n_events : int;
  n_users : int;
  dim : int;
  t_max : float;
  attrs : attr_model;
  event_capacity : capacity_model;
  user_capacity : capacity_model;
  conflict_ratio : float;
}

let default =
  {
    n_events = 100;
    n_users = 1000;
    dim = 20;
    t_max = 10000.;
    attrs = Attr_uniform;
    event_capacity = Cap_uniform 50;
    user_capacity = Cap_uniform 4;
    conflict_ratio = 0.25;
  }

let validate cfg =
  if cfg.n_events < 0 || cfg.n_users < 0 then
    invalid_arg "Synthetic.generate: negative cardinality";
  if cfg.dim <= 0 then invalid_arg "Synthetic.generate: dim must be positive";
  if cfg.t_max <= 0. then invalid_arg "Synthetic.generate: t_max must be positive";
  if cfg.conflict_ratio < 0. || cfg.conflict_ratio > 1. then
    invalid_arg "Synthetic.generate: conflict_ratio outside [0,1]"

let attr_sampler cfg =
  match cfg.attrs with
  | Attr_uniform -> Dist.sampler (Dist.uniform 0. cfg.t_max)
  | Attr_zipf exponent ->
      (* Ranks over a grid of T+1 values in [0, T]: small attribute values
         are the popular ones, as in the paper's Zipf setting. *)
      let n = int_of_float cfg.t_max + 1 in
      Dist.sampler (Dist.zipf ~exponent ~n ~lo:0. ~hi:cfg.t_max ())
  | Attr_normal_mixture ->
      let low =
        Dist.sampler
          (Dist.normal ~mu:(cfg.t_max /. 4.) ~sigma:(cfg.t_max /. 4.) ~lo:0.
             ~hi:cfg.t_max ())
      and high =
        Dist.sampler
          (Dist.normal ~mu:(3. *. cfg.t_max /. 4.) ~sigma:(cfg.t_max /. 4.)
             ~lo:0. ~hi:cfg.t_max ())
      in
      fun rng -> if Rng.bool rng then low rng else high rng

let capacity_sampler model ~clamp_hi =
  let clamp c = Stdlib.max 1 (Stdlib.min clamp_hi c) in
  match model with
  | Cap_uniform hi ->
      if hi < 1 then invalid_arg "Synthetic: capacity upper bound < 1";
      fun rng -> clamp (Rng.int_in rng 1 hi)
  | Cap_normal (mu, sigma) ->
      let d = Dist.normal ~mu ~sigma () in
      let sample = Dist.sampler d in
      fun rng -> clamp (int_of_float (Float.round (sample rng)))

let make_side rng cfg n ~capacity_model ~clamp_hi =
  let attr = attr_sampler cfg in
  let capacity = capacity_sampler capacity_model ~clamp_hi in
  Array.init n (fun id ->
      let attrs = Array.init cfg.dim (fun _ -> attr rng) in
      Entity.make ~id ~attrs ~capacity:(capacity rng))

let generate ~seed ?backend cfg =
  validate cfg;
  let rng = Rng.create ~seed in
  let event_rng = Rng.split rng in
  let user_rng = Rng.split rng in
  let conflict_rng = Rng.split rng in
  let clamp_cv = Stdlib.max 1 cfg.n_users
  and clamp_cu = Stdlib.max 1 cfg.n_events in
  let events =
    make_side event_rng cfg cfg.n_events ~capacity_model:cfg.event_capacity
      ~clamp_hi:clamp_cv
  in
  let users =
    make_side user_rng cfg cfg.n_users ~capacity_model:cfg.user_capacity
      ~clamp_hi:clamp_cu
  in
  let conflicts =
    Conflict_gen.random conflict_rng ~n_events:cfg.n_events
      ~ratio:cfg.conflict_ratio
  in
  let sim = Similarity.euclidean ~dim:cfg.dim ~range:cfg.t_max in
  Instance.create ~sim ?backend ~events ~users ~conflicts ()

let pp_attr ppf = function
  | Attr_uniform -> Format.pp_print_string ppf "uniform"
  | Attr_zipf e -> Format.fprintf ppf "zipf(%g)" e
  | Attr_normal_mixture -> Format.pp_print_string ppf "normal-mixture"

let pp_capacity ppf = function
  | Cap_uniform hi -> Format.fprintf ppf "U[1,%d]" hi
  | Cap_normal (mu, sigma) -> Format.fprintf ppf "N(%g,%g)" mu sigma

let pp_config ppf cfg =
  Format.fprintf ppf
    "|V|=%d |U|=%d d=%d T=%g attrs=%a c_v=%a c_u=%a cf=%.2f" cfg.n_events
    cfg.n_users cfg.dim cfg.t_max pp_attr cfg.attrs pp_capacity
    cfg.event_capacity pp_capacity cfg.user_capacity cfg.conflict_ratio
