open Geacc_util
open Geacc_core

let nth_pair ~n k =
  assert (0 <= k && k < n * (n - 1) / 2);
  let rec row v k =
    let row_len = n - 1 - v in
    if k < row_len then (v, v + 1 + k) else row (v + 1) (k - row_len)
  in
  row 0 k

let random rng ~n_events ~ratio =
  if ratio < 0. || ratio > 1. then
    invalid_arg "Conflict_gen.random: ratio outside [0,1]";
  let cf = Conflict.create ~n_events in
  if n_events >= 2 && ratio > 0. then begin
    let total = n_events * (n_events - 1) / 2 in
    let wanted =
      Stdlib.min total (int_of_float (Float.round (ratio *. float_of_int total)))
    in
    let chosen = Rng.sample_without_replacement rng wanted total in
    Array.iter
      (fun k ->
        let v, w = nth_pair ~n:n_events k in
        Conflict.add cf v w)
      chosen
  end;
  cf
