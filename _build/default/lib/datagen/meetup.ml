open Geacc_util
open Geacc_core

type city = { name : string; n_events : int; n_users : int }

let vancouver = { name = "Vancouver"; n_events = 225; n_users = 2012 }
let auckland = { name = "Auckland"; n_events = 37; n_users = 569 }
let singapore = { name = "Singapore"; n_events = 87; n_users = 1500 }
let cities = [ vancouver; auckland; singapore ]

type capacity_setting = Cap_uniform | Cap_normal

let n_merged_tags = 20

(* An entity's interests are drawn from a Zipf-skewed palette of merged
   tags: a handful of popular topics dominate, mirroring the paper's
   observation that tags like "outdoor" aggregate many original tags. *)
let tag_vector rng ~tag_dist =
  let total_tags = Rng.int_in rng 2 15 in
  let counts = Array.make n_merged_tags 0 in
  for _ = 1 to total_tags do
    let tag = int_of_float (tag_dist rng) in
    counts.(tag) <- counts.(tag) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int total_tags) counts

let capacity_samplers setting =
  match setting with
  | Cap_uniform ->
      ( (fun rng -> Rng.int_in rng 1 50),
        fun rng -> Rng.int_in rng 1 4 )
  | Cap_normal ->
      let cv = Dist.sampler (Dist.normal ~mu:25. ~sigma:12.5 ())
      and cu = Dist.sampler (Dist.normal ~mu:2. ~sigma:1. ()) in
      ( (fun rng -> Stdlib.max 1 (int_of_float (Float.round (cv rng)))),
        fun rng -> Stdlib.max 1 (int_of_float (Float.round (cu rng))) )

let generate ~seed ?(capacities = Cap_uniform) ?(conflict_ratio = 0.25) city =
  if conflict_ratio < 0. || conflict_ratio > 1. then
    invalid_arg "Meetup.generate: conflict_ratio outside [0,1]";
  let rng = Rng.create ~seed in
  let event_rng = Rng.split rng in
  let user_rng = Rng.split rng in
  let conflict_rng = Rng.split rng in
  let tag_dist =
    Dist.sampler
      (Dist.zipf ~exponent:1.0 ~n:n_merged_tags ~lo:0.
         ~hi:(float_of_int (n_merged_tags - 1)) ())
  in
  let sample_cv, sample_cu = capacity_samplers capacities in
  let clamp hi c = Stdlib.min hi c in
  let events =
    Array.init city.n_events (fun id ->
        Entity.make ~id
          ~attrs:(tag_vector event_rng ~tag_dist)
          ~capacity:(clamp city.n_users (sample_cv event_rng)))
  in
  let users =
    Array.init city.n_users (fun id ->
        Entity.make ~id
          ~attrs:(tag_vector user_rng ~tag_dist)
          ~capacity:(clamp city.n_events (sample_cu user_rng)))
  in
  let conflicts =
    Conflict_gen.random conflict_rng ~n_events:city.n_events
      ~ratio:conflict_ratio
  in
  let sim = Similarity.euclidean ~dim:n_merged_tags ~range:1. in
  Instance.create ~sim ~events ~users ~conflicts ()
