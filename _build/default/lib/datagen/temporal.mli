(** Deriving conflict sets from event schedules.

    The paper motivates CF with timetables and travel: two events conflict
    when their time intervals overlap, or when the gap between them is too
    short to travel between their venues (the intro's basketball court "one
    hour away" from the badminton stadium). This module turns concrete
    schedules into a {!Geacc_core.Conflict.t}, which the examples use and
    which gives conflict sets with realistic structure (interval graphs plus
    travel edges) as an alternative to uniform-random CF. *)

type schedule = {
  start_time : float;   (** Hours, on any common clock. *)
  end_time : float;     (** Must satisfy [end_time > start_time]. *)
  location : float * float;  (** Venue position, in km coordinates. *)
}

val make : start_time:float -> end_time:float -> ?location:float * float ->
  unit -> schedule
(** [location] defaults to the origin. *)

val overlaps : schedule -> schedule -> bool
(** Do the two half-open intervals [\[start, end)] intersect? *)

val travel_time : speed_kmh:float -> schedule -> schedule -> float
(** Euclidean venue distance divided by speed, in hours. *)

val compatible : speed_kmh:float -> schedule -> schedule -> bool
(** Can one person attend both events: no overlap, and the gap between them
    covers the travel time. *)

val conflicts_of : ?speed_kmh:float -> schedule array -> Geacc_core.Conflict.t
(** Conflict set over the schedule array's indices: pair [{i,j}] conflicts
    iff not [compatible]. [speed_kmh] defaults to 60. O(n²). *)

val random_schedules :
  rng:Geacc_util.Rng.t ->
  n:int ->
  ?horizon_h:float ->
  ?max_duration_h:float ->
  ?area_km:float ->
  unit ->
  schedule array
(** [n] events with uniform start times in [\[0, horizon_h\]] (default 48),
    durations in (0, max_duration_h\] (default 4) and venues uniform in an
    [area_km]² square (default 30). *)
