(** Random conflict-set generation shared by the dataset generators.

    The paper selects a uniform random subset of event pairs as CF, sized
    by a ratio of [|V|·(|V|-1)/2]. *)

val nth_pair : n:int -> int -> int * int
(** [nth_pair ~n k] decodes flat index [k] (row-major over the strict upper
    triangle) into the unordered pair [(v, w)], [v < w], of [n] items.
    Requires [0 <= k < n·(n-1)/2]. *)

val random : Geacc_util.Rng.t -> n_events:int -> ratio:float -> Geacc_core.Conflict.t
(** A conflict set of [round (ratio · n·(n-1)/2)] distinct uniform pairs.
    Requires [ratio] in [\[0, 1\]]. *)
