lib/datagen/synthetic.ml: Array Conflict_gen Dist Entity Float Format Geacc_core Geacc_util Instance Rng Similarity Stdlib
