lib/datagen/conflict_gen.mli: Geacc_core Geacc_util
