lib/datagen/meetup.mli: Geacc_core
