lib/datagen/temporal.mli: Geacc_core Geacc_util
