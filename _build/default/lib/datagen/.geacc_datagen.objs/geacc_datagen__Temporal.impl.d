lib/datagen/temporal.ml: Array Conflict Geacc_core Geacc_util Rng
