lib/datagen/meetup.ml: Array Conflict_gen Dist Entity Float Geacc_core Geacc_util Instance Rng Similarity Stdlib
