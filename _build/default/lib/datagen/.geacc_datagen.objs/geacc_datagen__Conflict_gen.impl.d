lib/datagen/conflict_gen.ml: Array Conflict Float Geacc_core Geacc_util Rng Stdlib
