lib/datagen/synthetic.mli: Format Geacc_core Geacc_index
