(** Simulated Meetup dataset (paper TABLE II).

    The paper's real dataset assigns each user/event a 20-dimensional vector
    of merged-tag weights: the count of the entity's original tags mapping
    to each merged tag, normalised by the entity's total tag count. We do
    not have the crawl, so this generator reproduces the vectors'
    {e statistical shape}: every entity draws a number of original tags,
    each original tag lands on one of 20 merged tags with Zipf-skewed
    popularity (popular tags like "outdoor" attract most), and the vector is
    the normalised histogram — sparse, non-negative, summing to 1.

    Events inherit their group's tags in the paper; here event vectors are
    drawn from the same tag process, and per-city cardinalities match
    TABLE II exactly. Capacities and conflicts are generated, as in the
    paper, from Uniform or Normal models and a conflict-pair ratio. *)

type city = { name : string; n_events : int; n_users : int }

(** "VA": 225 events, 2012 users. *)
val vancouver : city

(** 37 events, 569 users. *)
val auckland : city

(** 87 events, 1500 users. *)
val singapore : city
val cities : city list

type capacity_setting =
  | Cap_uniform  (** c_v ~ U[1,50], c_u ~ U[1,4] (TABLE II). *)
  | Cap_normal  (** c_v ~ N(25,12.5), c_u ~ N(2,1), clamped >= 1. *)

val n_merged_tags : int
(** 20, the paper's number of merged-tag attributes. *)

val generate :
  seed:int ->
  ?capacities:capacity_setting ->
  ?conflict_ratio:float ->
  city ->
  Geacc_core.Instance.t
(** Defaults: [capacities = Cap_uniform], [conflict_ratio = 0.25]. The
    similarity is the paper's Equation (1) over the tag space
    ([d = 20], [T = 1]). *)
