open Geacc_util
open Geacc_core

type schedule = {
  start_time : float;
  end_time : float;
  location : float * float;
}

let make ~start_time ~end_time ?(location = (0., 0.)) () =
  if end_time <= start_time then
    invalid_arg "Temporal.make: end_time must exceed start_time";
  { start_time; end_time; location }

let overlaps s1 s2 = s1.start_time < s2.end_time && s2.start_time < s1.end_time

let venue_distance s1 s2 =
  let x1, y1 = s1.location and x2, y2 = s2.location in
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

let travel_time ~speed_kmh s1 s2 =
  if speed_kmh <= 0. then invalid_arg "Temporal.travel_time: speed must be positive";
  venue_distance s1 s2 /. speed_kmh

let compatible ~speed_kmh s1 s2 =
  if overlaps s1 s2 then false
  else begin
    (* Order by time; the gap must cover the trip. *)
    let earlier, later =
      if s1.end_time <= s2.start_time then (s1, s2) else (s2, s1)
    in
    later.start_time -. earlier.end_time >= travel_time ~speed_kmh s1 s2
  end

let conflicts_of ?(speed_kmh = 60.) schedules =
  let n = Array.length schedules in
  let cf = Conflict.create ~n_events:n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (compatible ~speed_kmh schedules.(i) schedules.(j)) then
        Conflict.add cf i j
    done
  done;
  cf

let random_schedules ~rng ~n ?(horizon_h = 48.) ?(max_duration_h = 4.)
    ?(area_km = 30.) () =
  if n < 0 then invalid_arg "Temporal.random_schedules: negative n";
  if max_duration_h <= 0.5 then
    invalid_arg "Temporal.random_schedules: max_duration_h must exceed 0.5";
  if horizon_h <= 0. || area_km <= 0. then
    invalid_arg "Temporal.random_schedules: non-positive horizon or area";
  Array.init n (fun _ ->
      let start_time = Rng.float_in rng 0. horizon_h in
      let duration = Rng.float_in rng 0.5 max_duration_h in
      {
        start_time;
        end_time = start_time +. duration;
        location = (Rng.float_in rng 0. area_km, Rng.float_in rng 0. area_km);
      })
