(** Synthetic workload generator (paper TABLE III).

    A {!config} mirrors the paper's factor table; {!default} is the bold
    default setting: |V| = 100, |U| = 1000, d = 20, T = 10000, attributes
    Uniform[0,T], c_v ~ Uniform[1,50], c_u ~ Uniform[1,4], conflict ratio
    0.25. Everything is driven by a single seed; equal configs and seeds
    produce equal instances. *)

type attr_model =
  | Attr_uniform                     (** Uniform on [\[0, T\]]. *)
  | Attr_zipf of float               (** Zipf over [\[0, T\]] with the given
                                         exponent (paper uses 1.3). *)
  | Attr_normal_mixture
      (** Even mixture of N(T/4, T/4) and N(3T/4, T/4), truncated to
          [\[0, T\]] — the paper's two Normal settings. *)

type capacity_model =
  | Cap_uniform of int               (** Uniform integers in [\[1, max\]]. *)
  | Cap_normal of float * float      (** N(mu, sigma) rounded, clamped >= 1. *)

type config = {
  n_events : int;
  n_users : int;
  dim : int;
  t_max : float;                     (** T: attribute range. *)
  attrs : attr_model;
  event_capacity : capacity_model;
  user_capacity : capacity_model;
  conflict_ratio : float;            (** |CF| / (|V|·(|V|-1)/2), in [0,1]. *)
}

val default : config

val generate :
  seed:int -> ?backend:Geacc_index.Nn_backend.t -> config ->
  Geacc_core.Instance.t
(** Builds the instance with the paper's Equation (1) similarity. Generated
    capacities are clamped into [\[1, |U|\]] (events) and [\[1, |V|\]]
    (users), matching the problem statement's assumption; the conflict set
    is a uniform random subset of event pairs of the requested size.
    [backend] selects the NN index (see {!Geacc_core.Instance.create}). *)

val pp_config : Format.formatter -> config -> unit
