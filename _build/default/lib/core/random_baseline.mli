(** The paper's two random baselines (Section V).

    Random-V iterates over events and offers each pair [{v,u}] membership
    with probability [c_v / |U|]; Random-U iterates over users with
    probability [c_u / |V|]. A pair is added only when it satisfies all
    GEACC constraints at that moment, so both baselines always produce
    feasible arrangements. Iteration order is ascending id; randomness comes
    solely from the supplied generator. *)

val random_v : rng:Geacc_util.Rng.t -> Instance.t -> Matching.t
val random_u : rng:Geacc_util.Rng.t -> Instance.t -> Matching.t
