(** Events and users.

    Both sides of the arrangement share one shape (paper Definitions 1–2):
    a dense attribute vector [l] in [\[0,T\]^d] and a capacity — the maximum
    number of attendees for an event, the maximum number of assigned events
    for a user. The [id] of an entity is its index within its side's array
    in an {!Instance.t}. *)

type t = {
  id : int;
  attrs : Geacc_index.Point.t;
  capacity : int;
}

val make : id:int -> attrs:float array -> capacity:int -> t
(** Requires [id >= 0], [capacity >= 0] and a non-empty attribute vector. *)

val dim : t -> int
val pp : Format.formatter -> t -> unit
