type stats = { rounds : int; moves_accepted : int; gained : float }

(* Best feasible pair touching event [v] or user [u] — excluding the
   banned pair — by (sim, v, u) order. *)
let best_incident m instance ~banned ~v ~u =
  let best = ref None in
  let consider v' u' =
    if (v', u') <> banned && Matching.check_add m ~v:v' ~u:u' = None then begin
      let s = Instance.sim instance ~v:v' ~u:u' in
      match !best with
      | Some (s0, v0, u0) when (s0, -v0, -u0) >= (s, -v', -u') -> ()
      | _ -> best := Some (s, v', u')
    end
  in
  for u' = 0 to Instance.n_users instance - 1 do
    consider v u'
  done;
  for v' = 0 to Instance.n_events instance - 1 do
    consider v' u
  done;
  !best

(* One replace move: pull (v,u) out, refill greedily from the incident
   pairs — the removed pair itself is banned, otherwise the refill would
   just put it back — and keep the refill only if MaxSum strictly
   improved. *)
let try_replace m instance ~v ~u =
  let before = Matching.maxsum m in
  Matching.remove_exn m ~v ~u;
  let added = ref [] in
  let rec refill () =
    match best_incident m instance ~banned:(v, u) ~v ~u with
    | Some (_, v', u') ->
        let (_ : float) = Matching.add_exn m ~v:v' ~u:u' in
        added := (v', u') :: !added;
        refill ()
    | None -> ()
  in
  refill ();
  if Matching.maxsum m > before +. 1e-12 then true
  else begin
    (* Revert: drop the refill, restore the original pair. *)
    List.iter (fun (v', u') -> Matching.remove_exn m ~v:v' ~u:u') !added;
    let (_ : float) = Matching.add_exn m ~v ~u in
    false
  end

let add_all_feasible m instance =
  let added = ref 0 in
  for v = 0 to Instance.n_events instance - 1 do
    if Matching.remaining_event_capacity m v > 0 then
      for u = 0 to Instance.n_users instance - 1 do
        match Matching.add m ~v ~u with
        | Ok _ -> incr added
        | Error _ -> ()
      done
  done;
  !added

let improve ?(max_rounds = 8) m =
  if max_rounds < 1 then invalid_arg "Local_search.improve: max_rounds < 1";
  let instance = Matching.instance m in
  let initial = Matching.maxsum m in
  let moves = ref 0 in
  let rounds = ref 0 in
  let progressed = ref true in
  while !progressed && !rounds < max_rounds do
    incr rounds;
    progressed := false;
    if add_all_feasible m instance > 0 then progressed := true;
    List.iter
      (fun (v, u) ->
        (* The pair may already have been displaced by an earlier move. *)
        if Matching.mem m ~v ~u && try_replace m instance ~v ~u then begin
          incr moves;
          progressed := true
        end)
      (Matching.pairs m)
  done;
  {
    rounds = !rounds;
    moves_accepted = !moves;
    gained = Matching.maxsum m -. initial;
  }

let solve ?max_rounds instance =
  let m = Greedy.solve instance in
  let (_ : stats) = improve ?max_rounds m in
  m
