lib/core/similarity.ml: Array Format Geacc_index Printf
