lib/core/random_baseline.ml: Geacc_util Instance Matching
