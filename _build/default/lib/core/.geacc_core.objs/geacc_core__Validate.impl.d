lib/core/validate.ml: Array Conflict Float Format Hashtbl Instance List Matching Printf
