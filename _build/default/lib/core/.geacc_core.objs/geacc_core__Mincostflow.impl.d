lib/core/mincostflow.ml: Array Conflict Float Geacc_flow Instance Int List Matching
