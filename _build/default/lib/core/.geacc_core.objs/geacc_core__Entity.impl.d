lib/core/entity.ml: Array Format Geacc_index
