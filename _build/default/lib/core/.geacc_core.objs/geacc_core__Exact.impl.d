lib/core/exact.ml: Array Float Greedy Instance Int Matching
