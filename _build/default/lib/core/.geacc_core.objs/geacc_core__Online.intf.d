lib/core/online.mli: Geacc_util Instance Matching
