lib/core/conflict.ml: Array Format Int List Printf Set
