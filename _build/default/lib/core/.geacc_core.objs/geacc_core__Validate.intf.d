lib/core/validate.mli: Format Instance Matching
