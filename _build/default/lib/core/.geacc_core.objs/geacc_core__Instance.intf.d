lib/core/instance.mli: Conflict Entity Format Geacc_index Similarity
