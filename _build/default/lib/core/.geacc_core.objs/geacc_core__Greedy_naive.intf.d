lib/core/greedy_naive.mli: Instance Matching
