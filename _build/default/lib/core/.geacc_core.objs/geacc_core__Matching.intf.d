lib/core/matching.mli: Format Instance
