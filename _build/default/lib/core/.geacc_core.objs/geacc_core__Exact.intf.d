lib/core/exact.mli: Instance Matching
