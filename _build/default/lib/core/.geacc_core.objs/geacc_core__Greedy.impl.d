lib/core/greedy.ml: Array Float Geacc_pqueue Hashtbl Instance Int Matching
