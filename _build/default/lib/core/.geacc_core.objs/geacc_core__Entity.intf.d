lib/core/entity.mli: Format Geacc_index
