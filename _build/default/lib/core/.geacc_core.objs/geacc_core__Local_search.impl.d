lib/core/local_search.ml: Greedy Instance List Matching
