lib/core/similarity.mli: Format
