lib/core/greedy_naive.ml: Array Float Instance Int Matching
