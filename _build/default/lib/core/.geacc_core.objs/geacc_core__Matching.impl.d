lib/core/matching.ml: Array Conflict Format Hashtbl Instance List Printf
