lib/core/online.ml: Array Fun Geacc_util Instance Matching
