lib/core/greedy.mli: Instance Matching
