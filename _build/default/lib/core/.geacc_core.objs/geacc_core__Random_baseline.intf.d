lib/core/random_baseline.mli: Geacc_util Instance Matching
