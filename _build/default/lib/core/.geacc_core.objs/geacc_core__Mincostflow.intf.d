lib/core/mincostflow.mli: Instance Matching
