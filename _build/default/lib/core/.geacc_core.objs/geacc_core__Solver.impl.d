lib/core/solver.ml: Exact Geacc_util Greedy Greedy_naive List Local_search Mincostflow Online Printf Random_baseline String
