lib/core/solver.mli: Geacc_util Instance Matching
