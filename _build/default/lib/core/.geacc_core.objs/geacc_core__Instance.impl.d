lib/core/instance.ml: Array Conflict Entity Float Format Geacc_index Int Printf Similarity Stdlib
