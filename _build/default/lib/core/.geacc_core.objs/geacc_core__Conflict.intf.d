lib/core/conflict.mli: Format
