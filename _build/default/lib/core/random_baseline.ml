module Rng = Geacc_util.Rng

let random_v ~rng instance =
  let m = Matching.create instance in
  let n_u = float_of_int (Instance.n_users instance) in
  for v = 0 to Instance.n_events instance - 1 do
    let p = float_of_int (Instance.event_capacity instance v) /. n_u in
    for u = 0 to Instance.n_users instance - 1 do
      if Rng.bernoulli rng p then
        match Matching.add m ~v ~u with Ok _ | Error _ -> ()
    done
  done;
  m

let random_u ~rng instance =
  let m = Matching.create instance in
  let n_v = float_of_int (Instance.n_events instance) in
  for u = 0 to Instance.n_users instance - 1 do
    let p = float_of_int (Instance.user_capacity instance u) /. n_v in
    for v = 0 to Instance.n_events instance - 1 do
      if Rng.bernoulli rng p then
        match Matching.add m ~v ~u with Ok _ | Error _ -> ()
    done
  done;
  m
