let solve instance =
  let n_v = Instance.n_events instance and n_u = Instance.n_users instance in
  let pairs = ref [] in
  for v = n_v - 1 downto 0 do
    for u = n_u - 1 downto 0 do
      let s = Instance.sim instance ~v ~u in
      if s > 0. then pairs := (s, v, u) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  (* Descending similarity, then ascending (v, u): Greedy-GEACC's pop
     order. *)
  Array.sort
    (fun (s1, v1, u1) (s2, v2, u2) ->
      let c = Float.compare s2 s1 in
      if c <> 0 then c
      else
        let c = Int.compare v1 v2 in
        if c <> 0 then c else Int.compare u1 u2)
    pairs;
  let m = Matching.create instance in
  Array.iter
    (fun (_, v, u) -> match Matching.add m ~v ~u with Ok _ | Error _ -> ())
    pairs;
  m
