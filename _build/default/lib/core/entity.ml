type t = { id : int; attrs : Geacc_index.Point.t; capacity : int }

let make ~id ~attrs ~capacity =
  if id < 0 then invalid_arg "Entity.make: negative id";
  if capacity < 0 then invalid_arg "Entity.make: negative capacity";
  if Array.length attrs = 0 then invalid_arg "Entity.make: empty attributes";
  { id; attrs; capacity }

let dim t = Array.length t.attrs

let pp ppf t =
  Format.fprintf ppf "#%d(cap=%d, %a)" t.id t.capacity Geacc_index.Point.pp
    t.attrs
