module Point = Geacc_index.Point

type profile = { sim_of_dist : float -> float; cutoff : float }

type spec =
  | Spec_euclidean of { dim : int; range : float }
  | Spec_gaussian of { sigma : float }
  | Spec_cosine
  | Spec_custom of string

type t = {
  name : string;
  eval : float array -> float array -> float;
  dist_profile : profile option;
  spec : spec;
}

let name t = t.name
let spec t = t.spec
let eval t a b = t.eval a b
let dist_profile t = t.dist_profile

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let euclidean ~dim ~range =
  if dim <= 0 then invalid_arg "Similarity.euclidean: dim must be positive";
  if range <= 0. then invalid_arg "Similarity.euclidean: range must be positive";
  let diameter = sqrt (float_of_int dim *. range *. range) in
  let sim_of_dist d = clamp01 (1. -. (d /. diameter)) in
  {
    name = Printf.sprintf "euclidean(d=%d,T=%g)" dim range;
    eval = (fun a b -> sim_of_dist (Point.dist a b));
    dist_profile = Some { sim_of_dist; cutoff = diameter };
    spec = Spec_euclidean { dim; range };
  }

let gaussian ~sigma =
  if sigma <= 0. then invalid_arg "Similarity.gaussian: sigma must be positive";
  let sim_of_dist d = exp (-.(d *. d) /. (2. *. sigma *. sigma)) in
  {
    name = Printf.sprintf "gaussian(sigma=%g)" sigma;
    eval = (fun a b -> sim_of_dist (Point.dist a b));
    dist_profile = Some { sim_of_dist; cutoff = infinity };
    spec = Spec_gaussian { sigma };
  }

let cosine =
  let eval a b =
    let dot = ref 0. and na = ref 0. and nb = ref 0. in
    for i = 0 to Array.length a - 1 do
      dot := !dot +. (a.(i) *. b.(i));
      na := !na +. (a.(i) *. a.(i));
      nb := !nb +. (b.(i) *. b.(i))
    done;
    if !na = 0. || !nb = 0. then 0.
    else clamp01 (!dot /. (sqrt !na *. sqrt !nb))
  in
  { name = "cosine"; eval; dist_profile = None; spec = Spec_cosine }

let custom ~name ?profile eval =
  { name; eval; dist_profile = profile; spec = Spec_custom name }

let pp ppf t = Format.pp_print_string ppf t.name
