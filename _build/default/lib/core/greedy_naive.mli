(** Reference implementation of Greedy-GEACC without the index machinery.

    Materialises {e every} positive-similarity pair, sorts them once in
    descending similarity (ties by event then user id) and adds each
    feasible pair in order. This processes candidate pairs in exactly the
    order Algorithm 2 pops them from its heap, and feasibility at
    processing time is monotone, so the arrangement is {e identical} to
    {!Greedy.solve} — which makes this both a cross-checking oracle in the
    test suite and the ablation baseline quantifying what the lazy
    NN-stream enumeration buys (Θ(|V|·|U|) memory and a full sort vs.
    touching only the neighbours actually visited). *)

val solve : Instance.t -> Matching.t
