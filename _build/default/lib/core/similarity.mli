(** Interestingness functions (paper Definition 4).

    A similarity maps a pair of attribute vectors to [\[0,1\]]. The paper's
    evaluation uses Equation (1):
    [sim(lv,lu) = 1 - ||lv - lu||_2 / sqrt(d·T²)];
    other functions are explicitly allowed, so this module also provides a
    Gaussian kernel and cosine similarity.

    When a similarity is a decreasing function of Euclidean distance it
    carries a {e distance profile}; index-backed algorithms (Greedy-GEACC,
    Prune-GEACC) then enumerate neighbours through a kd-tree in descending
    similarity. Similarities without a profile (e.g. cosine) still work —
    {!Instance} falls back to sorted scans. *)

type profile = {
  sim_of_dist : float -> float;
      (** Non-increasing; [sim_of_dist (dist lv lu) = eval lv lu]. *)
  cutoff : float;
      (** Distance at which similarity reaches 0 ([infinity] if it never
          does); pairs at distance >= cutoff can never be matched. *)
}

type t

type spec =
  | Spec_euclidean of { dim : int; range : float }
  | Spec_gaussian of { sigma : float }
  | Spec_cosine
  | Spec_custom of string
      (** Named but otherwise opaque; not serialisable. *)

val spec : t -> spec
(** Structural identity of the similarity, used by serialisation. *)

val name : t -> string
val eval : t -> float array -> float array -> float
val dist_profile : t -> profile option

val euclidean : dim:int -> range:float -> t
(** Paper Equation (1) for vectors in [\[0,range\]^dim]:
    [1 - dist/sqrt(dim·range²)], clamped to [\[0,1\]]. Has a profile with
    cutoff [sqrt(dim·range²)]. *)

val gaussian : sigma:float -> t
(** [exp(-d²/(2σ²))] of the Euclidean distance [d]; strictly positive, so
    every pair is matchable. Profile cutoff is [infinity]. Requires
    [sigma > 0]. *)

val cosine : t
(** Cosine of the angle between the vectors clamped to [\[0,1\]]; 0 when
    either vector is null. No distance profile. *)

val custom :
  name:string -> ?profile:profile -> (float array -> float array -> float) -> t
(** Escape hatch for user-supplied similarities. The function must return
    values in [\[0,1\]]; if [profile] is given it must agree with the
    function on every pair. *)

val pp : Format.formatter -> t -> unit
