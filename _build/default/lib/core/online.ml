let check_permutation instance order =
  let n = Instance.n_users instance in
  if Array.length order <> n then
    invalid_arg "Online.solve: order length differs from |U|";
  let seen = Array.make n false in
  Array.iter
    (fun u ->
      if u < 0 || u >= n || seen.(u) then
        invalid_arg "Online.solve: order is not a permutation of the users";
      seen.(u) <- true)
    order

(* Serve one arrival: walk the user's neighbour ranks (descending
   similarity), taking every event that is feasible right now, until the
   user is full or the ranks run out. *)
let serve matching instance u =
  let rec walk rank =
    if Matching.remaining_user_capacity matching u > 0 then
      match Instance.user_neighbor instance ~u ~rank with
      | None -> ()
      | Some (v, _) ->
          (match Matching.add matching ~v ~u with Ok _ | Error _ -> ());
          walk (rank + 1)
  in
  walk 1

let solve ?order instance =
  let order =
    match order with
    | Some o ->
        check_permutation instance o;
        o
    | None -> Array.init (Instance.n_users instance) Fun.id
  in
  let matching = Matching.create instance in
  Array.iter (fun u -> serve matching instance u) order;
  matching

let solve_random_order ~rng instance =
  let order = Array.init (Instance.n_users instance) Fun.id in
  Geacc_util.Rng.shuffle_in_place rng order;
  solve ~order instance
